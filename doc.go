// Package repro reproduces "Characterization of Backfilling Strategies
// for Parallel Job Scheduling" (Srinivasan, Kettimuthu, Subramani &
// Sadayappan, ICPP Workshops 2002) as an executable Go codebase.
//
// The package itself holds only the top-level benchmark suite
// (bench_test.go); the simulator lives in the internal packages:
//
//   - internal/job, internal/workload, internal/swf — job model, synthetic
//     trace generators, and Standard Workload Format parsing.
//   - internal/sched — the availability profile and every backfilling
//     scheduler variant (conservative, EASY, slack-based, depth-k
//     lookahead, selective, preemptive).
//   - internal/sim, internal/metrics — event-driven simulation sessions
//     and the paper's metrics.
//   - internal/sweep, internal/runner — factorial experiment sweeps with
//     parallel, cache-backed execution.
//   - internal/serve — the online scheduling daemon behind cmd/schedd.
//
// DESIGN.md documents the architecture, PERFORMANCE.md the benchmark
// ledger and profiling workflow, and cmd/experiments regenerates the
// paper's tables and figures.
package repro
