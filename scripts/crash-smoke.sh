#!/bin/sh
# crash-smoke is the durability drill: build the real schedd binary, then
# let schedload's kill mode SIGKILL it mid-burst five times in a row on one
# shared journal. Each cycle verifies recovery two independent ways — a
# shadow replay of the journal from genesis and the restarted daemon's own
# checkpoint+tail recovery — and requires both to land on the same state
# hash with every acknowledged write present.
#
# The second drill does the same to a four-shard federation of real schedd
# processes with per-shard journals: one member is SIGKILLed per cycle, its
# three siblings must keep serving reads and acknowledging writes the whole
# time it is down, and the victim must recover to its shadow replay's hash.
#
# The third drill is failover instead of restart: a leader with a follower
# replica behind it is SIGKILLed mid-burst, and the follower must
# self-promote (health probes against the dead leader), land on the shadow
# replay's state hash with every acknowledged write present, and accept new
# writes as the next cycle's leader. Run via `make crash-smoke`.
set -eu

iters=${CRASH_ITERS:-5}
burst=${CRASH_BURST:-300ms}
fed_iters=${CRASH_FED_ITERS:-4}
promote_iters=${CRASH_PROMOTE_ITERS:-5}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/schedd" ./cmd/schedd
go build -o "$workdir/schedload" ./cmd/schedload

"$workdir/schedload" -kill -schedd "$workdir/schedd" \
    -data-dir "$workdir/journal" \
    -procs 32 -writers 2 -iters "$iters" -burst "$burst"

"$workdir/schedload" -kill -shards 4 -schedd "$workdir/schedd" \
    -data-dir "$workdir/fedjournal" \
    -procs 32 -writers 4 -iters "$fed_iters" -burst "$burst"

"$workdir/schedload" -promote -schedd "$workdir/schedd" \
    -data-dir "$workdir/promotejournal" \
    -procs 32 -writers 2 -iters "$promote_iters" -burst "$burst"

echo "crash-smoke: OK ($iters single + $fed_iters federated SIGKILL/recover cycles + $promote_iters leader-kill/promote cycles, no acknowledged write lost)"
