#!/bin/sh
# doclint checks that every package in the module carries a package doc
# comment: a // comment block immediately above the `package` clause in at
# least one of its files. Undocumented packages fail the build; `go doc`
# and pkg.go.dev would render them with an empty synopsis.
#
# The serving stack — internal/fed, internal/replica, internal/serve — and
# the scheduler core internal/sched are additionally held to a stricter
# bar: every exported identifier needs its own doc comment (cmd/doclint,
# an AST-level check), with the rare exemption recorded in
# scripts/doclint-allow.txt. The serving packages are what operators
# script against; internal/sched joined the list with the incremental pass
# machinery (DESIGN.md §15), whose invariants live in those doc comments.
# Run via `make doclint` (part of `make check`).
set -eu

fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
    found=0
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in
        *_test.go) continue ;;
        esac
        # A documented file has a comment line directly before the package
        # clause (no blank line between them).
        if awk '
            /^package / { if (prev ~ /^\/\//) ok = 1; exit }
            { prev = $0 }
            END { exit ok ? 0 : 1 }
        ' "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        rel=${dir#"$(pwd)/"}
        echo "doclint: package $rel has no package doc comment" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "doclint: add a // comment block above the package clause in one file per package" >&2
    exit 1
fi

go run ./cmd/doclint -allow scripts/doclint-allow.txt \
    internal/fed internal/replica internal/serve internal/sched

echo "doclint: all packages documented, gated-package exports all carry doc comments"
