#!/bin/sh
# serve-smoke boots schedd on a random port, submits three jobs through
# schedctl, asserts they complete, and checks the daemon drains clean on
# SIGTERM. Run via `make serve-smoke`.
set -eu

workdir=$(mktemp -d)
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/schedd" ./cmd/schedd
go build -o "$workdir/schedctl" ./cmd/schedctl

# -speed 0 runs virtual time as fast as possible, so the submitted jobs
# complete the moment they are accepted.
"$workdir/schedd" -addr 127.0.0.1:0 -procs 32 -sched easy -speed 0 \
    >"$workdir/schedd.log" 2>&1 &
daemon_pid=$!

# The daemon prints "... listening on http://host:port" once ready.
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/.*listening on \(http:\/\/[^ ]*\).*/\1/p' "$workdir/schedd.log")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "schedd died:"; cat "$workdir/schedd.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "schedd never announced its address"; cat "$workdir/schedd.log"; exit 1; }
echo "schedd up at $addr"

"$workdir/schedctl" -addr "$addr" submit -width 8 -runtime 120
"$workdir/schedctl" -addr "$addr" submit -width 16 -runtime 60
"$workdir/schedctl" -addr "$addr" submit -width 32 -runtime 30

# All three must be done (as-fast-as-possible clock => instant completion).
for id in 1 2 3; do
    "$workdir/schedctl" -addr "$addr" stat "$id" | grep -q "job $id  done" || {
        echo "job $id did not complete:"
        "$workdir/schedctl" -addr "$addr" stat "$id"
        exit 1
    }
done

"$workdir/schedctl" -addr "$addr" metrics | grep -q "schedd_jobs_completed_total 3" || {
    echo "metrics disagree:"; "$workdir/schedctl" -addr "$addr" metrics; exit 1;
}

# Graceful drain: SIGTERM must produce a clean exit.
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "schedd exited non-zero on SIGTERM:"; cat "$workdir/schedd.log"; exit 1; }
grep -q "drained clean" "$workdir/schedd.log" || { echo "no clean-drain message:"; cat "$workdir/schedd.log"; exit 1; }

echo "serve-smoke: OK (3 jobs completed, clean drain)"
