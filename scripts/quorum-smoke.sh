#!/bin/sh
# quorum-smoke is the crash drill for quorum-acknowledged writes: a
# two-shard federation front end running with -ack-quorum 1 and
# -read-route replica, two HTTP followers per shard. Each cycle SIGKILLs
# one follower mid-write-burst (the victim rotates across shards); writes
# must keep acknowledging through the surviving follower — a dead
# follower's registry entry must never vouch for a quorum (the commit-time
# liveness re-check) — no acknowledged write may be lost (independent
# shadow replay of each shard's journal), and both shards' quorum counters
# must finish every cycle with zero degraded and zero rejected writes. A
# replacement follower joins before the next cycle. Run via
# `make quorum-smoke`.
set -eu

iters=${QUORUM_ITERS:-3}
burst=${QUORUM_BURST:-400ms}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/schedd" ./cmd/schedd
go build -o "$workdir/schedload" ./cmd/schedload

"$workdir/schedload" -quorum-drill -schedd "$workdir/schedd" \
    -data-dir "$workdir/journal" \
    -procs 32 -writers 2 -iters "$iters" -burst "$burst"

echo "quorum-smoke: OK ($iters follower-kill cycles under ack-quorum 1, zero acked writes lost, zero degraded quorum acks)"
