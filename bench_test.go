// Package repro's benchmarks regenerate every table and figure of the
// paper (one benchmark per artifact — see DESIGN.md's experiment index) and
// measure the simulator's hot paths: the availability profile, the event
// queue, conservative compression, and each scheduler end to end.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Artifact benchmarks use a reduced job count so a full sweep stays fast;
// cmd/experiments regenerates the artifacts at full scale.
package repro

import (
	"context"
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/job"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// benchParams sizes the per-artifact benchmarks.
func benchParams() exp.Params {
	p := exp.DefaultParams()
	p.Jobs = 800
	return p
}

// benchExperiment runs one paper artifact per iteration on a fresh lab (no
// caching across iterations, so the cost measured is the real regeneration
// cost).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lab, err := exp.NewLab(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		tables, err := e.Run(lab)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable1(b *testing.B)      { benchExperiment(b, "Table1") }
func BenchmarkTable2(b *testing.B)      { benchExperiment(b, "Table2") }
func BenchmarkTable3(b *testing.B)      { benchExperiment(b, "Table3") }
func BenchmarkFigure1(b *testing.B)     { benchExperiment(b, "Figure1") }
func BenchmarkFigure2(b *testing.B)     { benchExperiment(b, "Figure2") }
func BenchmarkTable4(b *testing.B)      { benchExperiment(b, "Table4") }
func BenchmarkTable5(b *testing.B)      { benchExperiment(b, "Table5") }
func BenchmarkTable6(b *testing.B)      { benchExperiment(b, "Table6") }
func BenchmarkFigure3(b *testing.B)     { benchExperiment(b, "Figure3") }
func BenchmarkFigure4(b *testing.B)     { benchExperiment(b, "Figure4") }
func BenchmarkTable7(b *testing.B)      { benchExperiment(b, "Table7") }
func BenchmarkEquivalence(b *testing.B) { benchExperiment(b, "Equivalence") }
func BenchmarkSelective(b *testing.B)   { benchExperiment(b, "Selective") }
func BenchmarkLoadSweep(b *testing.B)   { benchExperiment(b, "LoadSweep") }

func BenchmarkDepthSweep(b *testing.B)          { benchExperiment(b, "DepthSweep") }
func BenchmarkSlackSweep(b *testing.B)          { benchExperiment(b, "SlackSweep") }
func BenchmarkCompressionAblation(b *testing.B) { benchExperiment(b, "CompressionAblation") }
func BenchmarkFairness(b *testing.B)            { benchExperiment(b, "Fairness") }

func BenchmarkConfidence(b *testing.B)      { benchExperiment(b, "Confidence") }
func BenchmarkBurstiness(b *testing.B)      { benchExperiment(b, "Burstiness") }
func BenchmarkBackfillOrder(b *testing.B)   { benchExperiment(b, "BackfillOrder") }
func BenchmarkSignificance(b *testing.B)    { benchExperiment(b, "Significance") }
func BenchmarkPreemption(b *testing.B)      { benchExperiment(b, "Preemption") }
func BenchmarkPolicyMatrix(b *testing.B)    { benchExperiment(b, "PolicyMatrix") }
func BenchmarkPartitioning(b *testing.B)    { benchExperiment(b, "Partitioning") }
func BenchmarkLoadConsistency(b *testing.B) { benchExperiment(b, "LoadConsistency") }
func BenchmarkMultiSite(b *testing.B)       { benchExperiment(b, "MultiSite") }
func BenchmarkDistribution(b *testing.B)    { benchExperiment(b, "Distribution") }

func BenchmarkSchedulerPreemptive(b *testing.B) { benchScheduler(b, "preemptive:10", "FCFS") }

func BenchmarkSchedulerDepth4(b *testing.B) { benchScheduler(b, "depth:4", "FCFS") }
func BenchmarkSchedulerSlack1(b *testing.B) { benchScheduler(b, "slack:1", "FCFS") }

// --- Scheduler end-to-end ablation -----------------------------------------

// benchWorkload builds a fixed 2000-job CTC-model workload with actual
// estimates.
func benchWorkload(b *testing.B) ([]*job.Job, int) {
	b.Helper()
	m, err := workload.NewCTC(0.85)
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := m.Generate(2000, 42)
	if err != nil {
		b.Fatal(err)
	}
	return workload.ApplyEstimates(jobs, workload.Actual{}, 43), m.Procs
}

func benchScheduler(b *testing.B, kind, pol string) {
	b.Helper()
	jobs, procs := benchWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{Procs: procs, Scheduler: kind, Policy: pol}, jobs)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Overall.N != len(jobs) {
			b.Fatal("lost jobs")
		}
	}
}

// BenchmarkBatchRun and BenchmarkSessionStep measure the same workload
// through the two faces of the engine: the batch wrapper (sim.Run, what
// every experiment uses) and the incremental session driven one Step at a
// time (what the online service does). Batch is the regression guard for
// the Session refactor: the wrapper must stay within noise of the old
// monolithic loop, and stepping must not cost materially more than
// draining.
func benchSession(b *testing.B, stepwise bool) {
	b.Helper()
	jobs, procs := benchWorkload(b)
	mk, err := sched.MakerFor("easy", sched.FCFS{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ps []sim.Placement
		if stepwise {
			ss, err := sim.Open(sim.Machine{Procs: procs}, mk(procs), nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, j := range jobs {
				if err := ss.Submit(j); err != nil {
					b.Fatal(err)
				}
			}
			for {
				ok, err := ss.Step()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
			}
			if ps, err = ss.Finish(); err != nil {
				b.Fatal(err)
			}
		} else {
			if ps, err = sim.Run(sim.Machine{Procs: procs}, jobs, mk(procs), nil); err != nil {
				b.Fatal(err)
			}
		}
		if len(ps) != len(jobs) {
			b.Fatal("lost jobs")
		}
	}
}

func BenchmarkBatchRun(b *testing.B)    { benchSession(b, false) }
func BenchmarkSessionStep(b *testing.B) { benchSession(b, true) }

func BenchmarkSchedulerNoBackfill(b *testing.B)   { benchScheduler(b, "none", "FCFS") }
func BenchmarkSchedulerEASY(b *testing.B)         { benchScheduler(b, "easy", "FCFS") }
func BenchmarkSchedulerEASYSJF(b *testing.B)      { benchScheduler(b, "easy", "SJF") }
func BenchmarkSchedulerConservative(b *testing.B) { benchScheduler(b, "conservative", "FCFS") }
func BenchmarkSchedulerSelective(b *testing.B)    { benchScheduler(b, "selective:2", "FCFS") }

// BenchmarkCompression stresses conservative backfilling's compression
// path: R=4 estimates mean every completion opens a hole and re-places the
// whole queue.
func BenchmarkCompression(b *testing.B) {
	m, err := workload.NewCTC(0.9)
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := m.Generate(1500, 7)
	if err != nil {
		b.Fatal(err)
	}
	jobs = workload.ApplyEstimates(jobs, workload.Systematic{R: 4}, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.Config{Procs: m.Procs, Scheduler: "conservative"}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Standing-queue write path ----------------------------------------------

// deepQueueScheduler parks a standing queue of depth wide jobs behind a
// blocker that owns the whole machine, with the pass memo established — the
// state an online daemon sits in whenever demand exceeds capacity.
func deepQueueScheduler(b *testing.B, depth int) (*sched.EASY, int64) {
	b.Helper()
	s := sched.NewEASY(64, sched.FCFS{})
	s.Arrive(0, &job.Job{ID: 1, Runtime: 1 << 40, Estimate: 1 << 40, Width: 64})
	if got := s.Launch(0); len(got) != 1 {
		b.Fatal("blocker did not start")
	}
	for i := 0; i < depth; i++ {
		s.Arrive(1, &job.Job{ID: 2 + i, Arrival: 1, Runtime: 600, Estimate: 900, Width: 32})
	}
	if got := s.Launch(1); got != nil {
		b.Fatal("standing queue started jobs")
	}
	return s, 2
}

// BenchmarkSchedulerNoopLaunch measures the provably-futile pass (DESIGN.md
// §15): a blocked head, a deep standing queue, no events since the last
// completed pass. Before the pass memo this cost an O(depth) sort-and-scan
// per wakeup; the memo answers it in O(1) with zero allocations
// (TestLaunchNoopAllocs pins the allocation half per scheduler kind).
func BenchmarkSchedulerNoopLaunch(b *testing.B) {
	s, now := deepQueueScheduler(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Launch(now) != nil {
			b.Fatal("no-op pass started a job")
		}
		now++
	}
}

// BenchmarkSchedulerDeepQueueSubmit measures the per-submission write cost
// at a standing queue of ~1024: one arrival (ordered insert under a
// time-invariant policy) plus the arrivals-only incremental pass that
// evaluates just the new job against the cached head reservation. The
// scheduler is rebuilt every few thousand iterations (off the timer) so the
// measured depth stays near its nominal value.
func BenchmarkSchedulerDeepQueueSubmit(b *testing.B) {
	var s *sched.EASY
	var now int64
	id, budget := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if budget == 0 {
			b.StopTimer()
			s, now = deepQueueScheduler(b, 1024)
			id, budget = 2000, 4096
			b.StartTimer()
		}
		id++
		budget--
		s.Arrive(now, &job.Job{ID: id, Arrival: now, Runtime: 600, Estimate: 900, Width: 32})
		if s.Launch(now) != nil {
			b.Fatal("blocked queue started a job")
		}
	}
}

// --- Profile micro-benchmarks and the slice-vs-dense ablation ----------------

// buildBusyProfile fills a profile with n staggered reservations.
func buildBusyProfile(procs, n int) *sched.Profile {
	p := sched.NewProfile(procs)
	r := stats.NewRNG(1)
	for i := 0; i < n; i++ {
		from := int64(r.Intn(100000))
		dur := int64(r.Intn(5000) + 100)
		w := r.Intn(procs/4) + 1
		if p.MinFree(from, dur) >= w {
			p.Reserve(from, dur, w)
		}
	}
	return p
}

func BenchmarkProfileFindStart(b *testing.B) {
	p := buildBusyProfile(430, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.FindStart(int64(i%100000), 3600, 64)
	}
}

func BenchmarkProfileReserveRelease(b *testing.B) {
	// The busy region [0, ~105000) gives the profile a realistic point
	// count; the measured reserve/release pairs land beyond it so they are
	// always feasible regardless of b.N.
	p := buildBusyProfile(430, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := 200000 + int64((i*97)%1000)*10
		p.Reserve(from, 1000, 8)
		p.Release(from, 1000, 8)
	}
}

// denseProfile is the ablation baseline: a per-second free-processor array.
// It answers the same FindStart query by brute force, showing why the
// step-function profile is the right structure (DESIGN.md decision 2).
type denseProfile struct {
	free []int
}

func newDenseProfile(procs int, horizon int64) *denseProfile {
	f := make([]int, horizon)
	for i := range f {
		f[i] = procs
	}
	return &denseProfile{free: f}
}

func (d *denseProfile) reserve(from, dur int64, w int) {
	for t := from; t < from+dur && t < int64(len(d.free)); t++ {
		d.free[t] -= w
	}
}

func (d *denseProfile) findStart(from, dur int64, w int) int64 {
search:
	for s := from; s < int64(len(d.free)); s++ {
		for t := s; t < s+dur; t++ {
			if t < int64(len(d.free)) && d.free[t] < w {
				continue search
			}
		}
		return s
	}
	return int64(len(d.free))
}

// BenchmarkProfileFindStartDenseAblation pits the two availability
// representations against each other on an identical reservation pattern
// and query stream: the brute-force per-second free array above (the
// ablation baseline of DESIGN.md decision 2) and the indexed
// step-function Profile. The "indexed" sub-benchmark is the headline
// number PERFORMANCE.md tracks; "dense" shows what the naive
// representation would cost for the very same questions.
func BenchmarkProfileFindStartDenseAblation(b *testing.B) {
	const (
		procs   = 430
		horizon = 200000
	)
	build := func() (*denseProfile, *sched.Profile) {
		d := newDenseProfile(procs, horizon)
		p := sched.NewProfile(procs)
		r := stats.NewRNG(1)
		for i := 0; i < 400; i++ {
			from := int64(r.Intn(100000))
			dur := int64(r.Intn(5000) + 100)
			w := r.Intn(32) + 1
			if p.MinFree(from, dur) >= w {
				p.Reserve(from, dur, w)
				d.reserve(from, dur, w)
			}
		}
		return d, p
	}
	b.Run("dense", func(b *testing.B) {
		d, _ := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.findStart(int64(i%100000), 3600, 64)
		}
	})
	b.Run("indexed", func(b *testing.B) {
		_, p := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.FindStart(int64(i%100000), 3600, 64)
		}
	})
}

// BenchmarkProfileFindStartSaturated is the shape the free-capacity index
// exists for: a long saturated region (2000 step points, every one below
// the queried width) followed by open capacity. FindStart's skip-ahead
// crosses the region a block at a time via the per-block maxima instead
// of point by point. The alternating widths prevent the tiles from
// coalescing into one step.
func BenchmarkProfileFindStartSaturated(b *testing.B) {
	p := sched.NewProfile(430)
	for i, t := 0, int64(0); t < 100000; i, t = i+1, t+50 {
		p.Reserve(t, 50, 399+i%2) // free alternates 31/30: always < 64
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := p.FindStart(0, 3600, 64); s != 100000 {
			b.Fatalf("FindStart = %d, want 100000", s)
		}
	}
}

// --- Event queue -------------------------------------------------------------

func BenchmarkEventQueue(b *testing.B) {
	r := stats.NewRNG(5)
	j := &job.Job{ID: 1}
	times := make([]int64, 1024)
	for i := range times {
		times[i] = int64(r.Intn(1 << 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := sim.NewEventQueue()
		for _, t := range times {
			q.Push(t, sim.Arrival, j)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}

// --- Categorization ------------------------------------------------------------

func BenchmarkCategorize(b *testing.B) {
	jobs, _ := benchWorkload(b)
	th := job.PaperThresholds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := job.CategoryMix(jobs, th)
		if m[job.ShortNarrow] == 0 {
			b.Fatal("empty mix")
		}
	}
}

// --- Workload generation ----------------------------------------------------------

func BenchmarkWorkloadGenerate(b *testing.B) {
	m, err := workload.NewCTC(0.85)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Generate(2000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateModels compares the estimate rewriters.
func BenchmarkEstimateModels(b *testing.B) {
	jobs, _ := benchWorkload(b)
	for _, em := range []workload.EstimateModel{
		workload.Exact{}, workload.Systematic{R: 2}, workload.Actual{},
	} {
		b.Run(em.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := workload.ApplyEstimates(jobs, em, int64(i))
				if len(out) != len(jobs) {
					b.Fatal("lost jobs")
				}
			}
		})
	}
}

// --- Parallel execution engine ---------------------------------------------

// benchSweepDesign is a 24-cell factorial (2 schedulers × 3 policies × 2
// estimate models × 2 loads) over one SDSC-model workload: the serial vs
// parallel pair below measures the runner's worker-pool speedup.
func benchSweepDesign(b *testing.B) sweep.Design {
	b.Helper()
	m, err := workload.NewSDSC(0.8)
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := m.Generate(500, 42)
	if err != nil {
		b.Fatal(err)
	}
	return sweep.Design{
		Workloads:  []sweep.Workload{{Name: "SDSC", Jobs: jobs, Procs: m.Procs}},
		Schedulers: []string{"conservative", "easy"},
		Policies:   []string{"FCFS", "SJF", "XF"},
		Estimates:  []string{"exact", "R=2"},
		Loads:      []float64{0.7, 0.9},
		Seed:       42,
	}
}

func benchSweep(b *testing.B, workers int) {
	d := benchSweepDesign(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := sweep.RunWith(context.Background(), d, sweep.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != 24 {
			b.Fatalf("records = %d, want 24", len(recs))
		}
	}
}

func BenchmarkSweep24CellsSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkSweep24CellsParallel(b *testing.B) { benchSweep(b, runtime.NumCPU()) }

// BenchmarkSweep24CellsCached measures a fully warm cache: every cell is a
// content-addressed hit, so this is the floor a repeated study pays.
func BenchmarkSweep24CellsCached(b *testing.B) {
	d := benchSweepDesign(b)
	cache, err := runner.OpenCache(b.TempDir(), sweep.CacheSalt)
	if err != nil {
		b.Fatal(err)
	}
	opt := sweep.Options{Workers: runtime.NumCPU(), Cache: cache}
	if _, err := sweep.RunWith(context.Background(), d, opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := runner.NewJournal(nil)
		opt.Journal = j
		recs, err := sweep.RunWith(context.Background(), d, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != 24 {
			b.Fatalf("records = %d, want 24", len(recs))
		}
		if s := j.Summary(); s.CacheHits != 24 {
			b.Fatalf("cache hits = %d, want 24", s.CacheHits)
		}
	}
}
