package swf

import (
	"strings"
	"testing"
)

// rec builds one 18-field data line from the few fields these tests vary:
// id, submit, runtime, allocated procs, requested procs, requested time.
func rec(id, submit, runtime, alloc, req, reqTime string) string {
	return strings.Join([]string{
		id, submit, "-1", runtime, alloc, "-1", "-1", req, reqTime,
		"-1", "1", "-1", "-1", "-1", "-1", "-1", "-1", "-1",
	}, " ")
}

// TestParseEdgeCases is the table-driven malformed-input sweep: every case
// is parsed both leniently (counting Skipped) and strictly (expecting an
// error for malformed lines, but not for merely unschedulable ones).
func TestParseEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		input     string
		wantJobs  int
		wantSkip  int
		strictErr bool // Strict mode must reject the input
	}{
		{
			name:     "comment only",
			input:    "; Version: 2\n; Note: nothing here\n",
			wantJobs: 0, wantSkip: 0, strictErr: false,
		},
		{
			name:     "blank lines and whitespace",
			input:    "\n   \n\t\n" + rec("1", "0", "60", "4", "4", "120") + "\n\n",
			wantJobs: 1, wantSkip: 0, strictErr: false,
		},
		{
			name:     "crlf line endings",
			input:    "; MaxProcs: 64\r\n" + rec("1", "0", "60", "4", "4", "120") + "\r\n" + rec("2", "5", "30", "2", "2", "60") + "\r\n",
			wantJobs: 2, wantSkip: 0, strictErr: false,
		},
		{
			name:     "too few fields",
			input:    "1 0 -1 60 4\n",
			wantJobs: 0, wantSkip: 1, strictErr: true,
		},
		{
			name:     "too many fields",
			input:    rec("1", "0", "60", "4", "4", "120") + " 99\n",
			wantJobs: 0, wantSkip: 1, strictErr: true,
		},
		{
			name:     "non-integer field",
			input:    rec("1", "0", "sixty", "4", "4", "120") + "\n",
			wantJobs: 0, wantSkip: 1, strictErr: true,
		},
		{
			name:     "negative submit time",
			input:    rec("1", "-5", "60", "4", "4", "120") + "\n",
			wantJobs: 0, wantSkip: 1, strictErr: true,
		},
		{
			name:     "non-positive job number",
			input:    rec("0", "0", "60", "4", "4", "120") + "\n",
			wantJobs: 0, wantSkip: 1, strictErr: true,
		},
		{
			// Parses fine but describes no schedulable work: skipped even
			// under Strict, by design.
			name:     "no processors requested or allocated",
			input:    rec("1", "0", "60", "-1", "-1", "120") + "\n",
			wantJobs: 0, wantSkip: 1, strictErr: false,
		},
		{
			// Missing runtime (-1) clamps to 0; missing estimate falls back
			// to the runtime and then to the 1-second floor.
			name:     "missing runtime and estimate",
			input:    rec("1", "0", "-1", "4", "4", "-1") + "\n",
			wantJobs: 1, wantSkip: 0, strictErr: false,
		},
		{
			name:     "good line after bad line",
			input:    "garbage\n" + rec("2", "10", "60", "4", "4", "120") + "\n",
			wantJobs: 1, wantSkip: 1, strictErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := Parse(strings.NewReader(tc.input), Options{})
			if err != nil {
				t.Fatalf("lenient parse: %v", err)
			}
			if len(tr.Jobs) != tc.wantJobs || tr.Skipped != tc.wantSkip {
				t.Errorf("lenient: %d jobs, %d skipped; want %d and %d",
					len(tr.Jobs), tr.Skipped, tc.wantJobs, tc.wantSkip)
			}
			for _, j := range tr.Jobs {
				if err := j.Validate(); err != nil {
					t.Errorf("parsed job fails validation: %v", err)
				}
			}
			_, err = Parse(strings.NewReader(tc.input), Options{Strict: true})
			if tc.strictErr && err == nil {
				t.Errorf("strict parse accepted malformed input")
			}
			if !tc.strictErr && err != nil {
				t.Errorf("strict parse rejected acceptable input: %v", err)
			}
		})
	}
}

// TestParseMissingEstimateFloor pins the exact fallback values for the
// missing-runtime/estimate case separately (the table above only checks it
// parses).
func TestParseMissingEstimateFloor(t *testing.T) {
	tr, err := Parse(strings.NewReader(rec("1", "0", "-1", "4", "4", "-1")+"\n"), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(tr.Jobs))
	}
	j := tr.Jobs[0]
	if j.Runtime != 0 || j.Estimate != 1 {
		t.Fatalf("runtime/estimate = %d/%d, want 0/1 (clamped floor)", j.Runtime, j.Estimate)
	}
}
