package swf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/job"
)

// Record is one raw SWF data line: all 18 fields, unknowns as -1. Raw
// records let trace tools transform a log without destroying the fields the
// simulator itself does not model (status, queue, partition, think time…).
type Record [NumFields]int64

// Job converts the record with the same normalisation rules Parse applies,
// or nil if the record describes no schedulable work.
func (r Record) Job() (*job.Job, error) {
	fields := make([]string, NumFields)
	for i, v := range r {
		fields[i] = strconv.FormatInt(v, 10)
	}
	return parseRecord(strings.Join(fields, " "))
}

// RawTrace is a parsed workload keeping full per-record fidelity.
type RawTrace struct {
	Records []Record
	Header  map[string]string
	// Skipped counts malformed lines dropped in non-strict mode.
	Skipped int
}

// ParseRecords reads an SWF stream without any normalisation: every
// 18-field line becomes a Record verbatim.
func ParseRecords(r io.Reader, strict bool) (*RawTrace, error) {
	tr := &RawTrace{Header: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseHeaderComment(tr.Header, line)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != NumFields {
			if strict {
				return nil, fmt.Errorf("swf: line %d: record has %d fields, want %d", lineNo, len(fields), NumFields)
			}
			tr.Skipped++
			continue
		}
		var rec Record
		bad := false
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				if strict {
					return nil, fmt.Errorf("swf: line %d field %d: %w", lineNo, i+1, err)
				}
				bad = true
				break
			}
			rec[i] = v
		}
		if bad {
			tr.Skipped++
			continue
		}
		tr.Records = append(tr.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf: read: %w", err)
	}
	sort.SliceStable(tr.Records, func(i, k int) bool {
		if tr.Records[i][FieldSubmitTime] != tr.Records[k][FieldSubmitTime] {
			return tr.Records[i][FieldSubmitTime] < tr.Records[k][FieldSubmitTime]
		}
		return tr.Records[i][FieldJobNumber] < tr.Records[k][FieldJobNumber]
	})
	return tr, nil
}

// WriteRecords serialises raw records with the header, preserving every
// field byte-for-value.
func WriteRecords(w io.Writer, tr *RawTrace) error {
	bw := bufio.NewWriter(w)
	keys := make([]string, 0, len(tr.Header))
	for k := range tr.Header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(bw, "; %s: %s\n", k, tr.Header[k]); err != nil {
			return fmt.Errorf("swf: write header: %w", err)
		}
	}
	for _, rec := range tr.Records {
		parts := make([]string, NumFields)
		for i, v := range rec {
			parts[i] = strconv.FormatInt(v, 10)
		}
		if _, err := fmt.Fprintln(bw, strings.Join(parts, " ")); err != nil {
			return fmt.Errorf("swf: write record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("swf: flush: %w", err)
	}
	return nil
}

// ApplyJob writes a transformed job's scheduler-relevant fields back into
// the record, leaving every other field (status, queue, memory, …) intact.
func (r *Record) ApplyJob(j *job.Job) {
	r[FieldJobNumber] = int64(j.ID)
	r[FieldSubmitTime] = j.Arrival
	r[FieldRunTime] = j.Runtime
	r[FieldReqProcs] = int64(j.Width)
	r[FieldAllocProcs] = int64(j.Width)
	r[FieldReqTime] = j.Estimate
	r[FieldUserID] = int64(j.User)
}
