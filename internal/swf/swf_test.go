package swf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/stats"
)

const sampleSWF = `; Version: 2
; Computer: IBM SP2
; MaxProcs: 128
; MaxNodes: 128
; Note: synthetic fixture

1 0 10 3600 16 -1 -1 16 7200 -1 1 12 -1 -1 -1 -1 -1 -1
2 100 -1 60 -1 -1 -1 4 120 -1 1 7 -1 -1 -1 -1 -1 -1
3 200 0 500 8 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
`

func TestParseSample(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleSWF), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(tr.Jobs))
	}
	if tr.MaxProcs != 128 {
		t.Fatalf("MaxProcs = %d, want 128", tr.MaxProcs)
	}
	if tr.Header["Computer"] != "IBM SP2" {
		t.Fatalf("Computer header = %q", tr.Header["Computer"])
	}

	j1 := tr.Jobs[0]
	if j1.ID != 1 || j1.Arrival != 0 || j1.Runtime != 3600 || j1.Estimate != 7200 || j1.Width != 16 || j1.User != 12 {
		t.Fatalf("job 1 = %+v", j1)
	}
	// Job 2: requested procs 4 (alloc unknown), estimate 120.
	j2 := tr.Jobs[1]
	if j2.Width != 4 || j2.Estimate != 120 {
		t.Fatalf("job 2 = %+v", j2)
	}
	// Job 3: no requested procs -> allocated 8; no estimate -> runtime.
	j3 := tr.Jobs[2]
	if j3.Width != 8 || j3.Estimate != 500 || j3.User != 0 {
		t.Fatalf("job 3 = %+v", j3)
	}
	for _, j := range tr.Jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("parsed job invalid: %v", err)
		}
	}
}

func TestParseClampsOverrun(t *testing.T) {
	// Runtime 200 with estimate 100: the job overran its limit; parser
	// clamps runtime to the estimate.
	line := "1 0 -1 200 4 -1 -1 4 100 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(line), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].Runtime != 100 || tr.Jobs[0].Estimate != 100 {
		t.Fatalf("job = %+v, want runtime clamped to 100", tr.Jobs[0])
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	input := "garbage line\n1 0 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(input), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1 || tr.Skipped != 1 {
		t.Fatalf("jobs=%d skipped=%d", len(tr.Jobs), tr.Skipped)
	}
}

func TestParseStrictFailsOnMalformed(t *testing.T) {
	input := "not an swf record\n"
	if _, err := Parse(strings.NewReader(input), Options{Strict: true}); err == nil {
		t.Fatal("want error in strict mode")
	}
}

func TestParseStrictErrors(t *testing.T) {
	cases := []string{
		"1 0 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1\n",       // 17 fields
		"1 0 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1 -1\n", // 19 fields
		"x 0 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1\n",    // non-integer
		"1 -5 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1\n",   // negative submit
		"0 0 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1\n",    // job number 0
	}
	for i, in := range cases {
		if _, err := Parse(strings.NewReader(in), Options{Strict: true}); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestParseDropsZeroWidth(t *testing.T) {
	input := "1 0 -1 60 -1 -1 -1 -1 60 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(input), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 0 || tr.Skipped != 1 {
		t.Fatalf("zero-width record should be skipped: jobs=%d skipped=%d", len(tr.Jobs), tr.Skipped)
	}
}

func TestParseMaxJobs(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleSWF), Options{MaxJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(tr.Jobs))
	}
}

func TestParseSortsByArrival(t *testing.T) {
	input := `2 500 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1
1 100 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1
`
	tr, err := Parse(strings.NewReader(input), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].ID != 1 || tr.Jobs[1].ID != 2 {
		t.Fatal("jobs not sorted by arrival")
	}
}

func TestParseMaxProcsFromWidestJob(t *testing.T) {
	input := "1 0 -1 60 256 -1 -1 256 60 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(input), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxProcs != 256 {
		t.Fatalf("MaxProcs = %d, want 256 (from widest job)", tr.MaxProcs)
	}
}

func TestHeaderParsingQuirks(t *testing.T) {
	input := `;MaxProcs: 430 nodes in total
; NoColonHeader
; Empty:
1 0 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1
`
	tr, err := Parse(strings.NewReader(input), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxProcs != 430 {
		t.Fatalf("MaxProcs = %d, want 430 (leading integer of prose value)", tr.MaxProcs)
	}
	if _, ok := tr.Header["NoColonHeader"]; ok {
		t.Fatal("colon-less comment should not become a header")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	r := stats.NewRNG(71)
	f := func(n uint8) bool {
		jobs := make([]*job.Job, 0, int(n)%40)
		clock := int64(0)
		for i := 0; i < int(n)%40; i++ {
			clock += int64(r.Intn(100))
			rt := int64(r.Intn(5000))
			jobs = append(jobs, &job.Job{
				ID:       i + 1,
				Arrival:  clock,
				Runtime:  rt,
				Estimate: rt + int64(r.Intn(1000)) + 1,
				Width:    r.Intn(64) + 1,
				User:     r.Intn(50),
			})
		}
		var buf bytes.Buffer
		in := &Trace{Jobs: jobs, Header: map[string]string{"MaxProcs": "64"}, MaxProcs: 64}
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Parse(&buf, Options{Strict: true})
		if err != nil {
			return false
		}
		if len(out.Jobs) != len(jobs) {
			return false
		}
		for i, j := range jobs {
			g := out.Jobs[i]
			if g.ID != j.ID || g.Arrival != j.Arrival || g.Runtime != j.Runtime ||
				g.Estimate != j.Estimate || g.Width != j.Width || g.User != j.User {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteEmitsMaxProcsWhenMissing(t *testing.T) {
	var buf bytes.Buffer
	tr := &Trace{Jobs: nil, Header: map[string]string{}, MaxProcs: 99}
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "; MaxProcs: 99") {
		t.Fatalf("output missing MaxProcs header: %q", buf.String())
	}
}
