package swf

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/job"
)

func TestParseRecordsKeepsAllFields(t *testing.T) {
	line := "7 100 33 60 4 55 1024 4 120 2048 1 9 3 2 5 1 6 30\n"
	tr, err := ParseRecords(strings.NewReader("; MaxProcs: 64\n"+line), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 {
		t.Fatalf("records = %d", len(tr.Records))
	}
	r := tr.Records[0]
	want := Record{7, 100, 33, 60, 4, 55, 1024, 4, 120, 2048, 1, 9, 3, 2, 5, 1, 6, 30}
	if r != want {
		t.Fatalf("record = %v, want %v", r, want)
	}
	if tr.Header["MaxProcs"] != "64" {
		t.Fatal("header lost")
	}
}

func TestParseRecordsStrictAndLoose(t *testing.T) {
	input := "garbage\n1 0 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	if _, err := ParseRecords(strings.NewReader(input), true); err == nil {
		t.Fatal("strict mode should reject garbage")
	}
	tr, err := ParseRecords(strings.NewReader(input), false)
	if err != nil || len(tr.Records) != 1 || tr.Skipped != 1 {
		t.Fatalf("loose mode: %v, records=%d skipped=%d", err, len(tr.Records), tr.Skipped)
	}
	bad := "1 0 -1 x 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	if _, err := ParseRecords(strings.NewReader(bad), true); err == nil {
		t.Fatal("strict mode should reject non-integer field")
	}
}

func TestRecordsRoundTripLossless(t *testing.T) {
	input := "; Version: 2\n" +
		"2 50 1 30 2 99 512 2 40 256 5 8 7 6 4 3 1 12\n" +
		"1 10 33 60 4 55 1024 4 120 2048 1 9 3 2 5 1 6 30\n"
	tr, err := ParseRecords(strings.NewReader(input), true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ParseRecords(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 2 {
		t.Fatalf("records = %d", len(back.Records))
	}
	// Sorted by submit time: job 1 (t=10) first.
	if back.Records[0][FieldJobNumber] != 1 || back.Records[1][FieldJobNumber] != 2 {
		t.Fatal("records not sorted by submit time")
	}
	for i := range back.Records {
		if back.Records[i] != tr.Records[i] {
			t.Fatalf("record %d changed: %v -> %v", i, tr.Records[i], back.Records[i])
		}
	}
	if back.Header["Version"] != "2" {
		t.Fatal("header lost in round trip")
	}
}

func TestRecordJobMatchesParse(t *testing.T) {
	line := "1 0 10 3600 16 -1 -1 16 7200 -1 1 12 -1 -1 -1 -1 -1 -1"
	tr, err := ParseRecords(strings.NewReader(line+"\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	j, err := tr.Records[0].Job()
	if err != nil {
		t.Fatal(err)
	}
	full, err := Parse(strings.NewReader(line+"\n"), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if *j != *full.Jobs[0] {
		t.Fatalf("Record.Job %+v != Parse %+v", j, full.Jobs[0])
	}
}

func TestRecordApplyJob(t *testing.T) {
	rec := Record{7, 100, 33, 60, 4, 55, 1024, 4, 120, 2048, 1, 9, 3, 2, 5, 1, 6, 30}
	j := &job.Job{ID: 42, Arrival: 500, Runtime: 90, Estimate: 200, Width: 8, User: 77}
	rec.ApplyJob(j)
	if rec[FieldJobNumber] != 42 || rec[FieldSubmitTime] != 500 ||
		rec[FieldRunTime] != 90 || rec[FieldReqProcs] != 8 ||
		rec[FieldReqTime] != 200 || rec[FieldUserID] != 77 {
		t.Fatalf("scheduler fields not applied: %v", rec)
	}
	// Untouched fields survive.
	if rec[FieldWaitTime] != 33 || rec[FieldUsedMemory] != 1024 ||
		rec[FieldStatus] != 1 || rec[FieldQueue] != 5 || rec[FieldThinkTime] != 30 {
		t.Fatalf("non-scheduler fields clobbered: %v", rec)
	}
}
