package swf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse asserts the non-strict parser never panics and never emits an
// invalid job, whatever bytes it is fed. Run with `go test -fuzz=FuzzParse`
// to explore; the seed corpus below runs as a normal test.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sampleSWF))
	f.Add([]byte(""))
	f.Add([]byte("; MaxProcs: 10\n"))
	f.Add([]byte("1 0 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("1 0 -1 60 4\n"))
	f.Add([]byte("-1 -2 -3 -4 -5 -6 -7 -8 -9 -10 -11 -12 -13 -14 -15 -16 -17 -18\n"))
	f.Add([]byte("9223372036854775807 0 -1 60 4 -1 -1 4 60 -1 1 1 -1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("\x1f\x8b garbage that looks gzipped"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // corrupt gzip header: fine, reported as an error
		}
		tr, err := Parse(r, Options{})
		if err != nil {
			return // read errors are fine; panics are not
		}
		for _, j := range tr.Jobs {
			if err := j.Validate(); err != nil {
				t.Fatalf("parser emitted invalid job from %q: %v", data, err)
			}
		}
	})
}

// FuzzRoundTrip asserts that whatever the parser accepts, the writer can
// serialise and the parser re-reads identically.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(sampleSWF))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Parse(strings.NewReader(string(data)), Options{})
		if err != nil || len(tr.Jobs) == 0 {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("write failed on parsed trace: %v", err)
		}
		back, err := Parse(&buf, Options{Strict: true})
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(back.Jobs) != len(tr.Jobs) {
			t.Fatalf("round trip lost jobs: %d -> %d", len(tr.Jobs), len(back.Jobs))
		}
		for i := range tr.Jobs {
			a, b := tr.Jobs[i], back.Jobs[i]
			if a.ID != b.ID || a.Arrival != b.Arrival || a.Runtime != b.Runtime ||
				a.Estimate != b.Estimate || a.Width != b.Width {
				t.Fatalf("round trip changed job %d: %+v -> %+v", i, a, b)
			}
		}
	})
}
