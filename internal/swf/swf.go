// Package swf reads and writes the Standard Workload Format (SWF) used by
// the Parallel Workloads Archive — the format of the CTC and SDSC traces
// the paper's experiments run on. The archive itself is unreachable from an
// offline build, so this package is the drop-in point for real traces: any
// archive .swf file parses into the same []*job.Job the synthetic models
// produce.
//
// An SWF file is a sequence of lines: comments begin with ';' (header
// comments of the form "; Key: Value" are preserved), and each data line
// has 18 whitespace-separated integer fields. Unknown or missing values are
// -1 by convention.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/job"
)

// NumFields is the number of columns in an SWF record.
const NumFields = 18

// Field indices within an SWF record (0-based).
const (
	FieldJobNumber = iota
	FieldSubmitTime
	FieldWaitTime
	FieldRunTime
	FieldAllocProcs
	FieldAvgCPUTime
	FieldUsedMemory
	FieldReqProcs
	FieldReqTime
	FieldReqMemory
	FieldStatus
	FieldUserID
	FieldGroupID
	FieldExecutable
	FieldQueue
	FieldPartition
	FieldPrecedingJob
	FieldThinkTime
)

// Trace is a parsed workload: jobs plus the header metadata.
type Trace struct {
	// Jobs in submit order, all valid per job.Validate.
	Jobs []*job.Job
	// Header holds "; Key: Value" comments, e.g. "MaxProcs" -> "430".
	Header map[string]string
	// MaxProcs is the machine size from the header, or the widest job seen
	// when the header does not say.
	MaxProcs int
	// Skipped counts data lines dropped by option filters or because they
	// were unusable (non-positive width, negative times).
	Skipped int
}

// Options control parsing.
type Options struct {
	// Strict makes any malformed data line a fatal parse error instead of
	// counting it in Skipped.
	Strict bool
	// KeepFailed keeps jobs whose status field says cancelled/failed
	// (status 0 or 5). Default drops only jobs with no usable runtime.
	KeepFailed bool
	// MaxJobs, when > 0, stops after that many parsed jobs.
	MaxJobs int
}

// Parse reads an SWF stream.
func Parse(r io.Reader, opts Options) (*Trace, error) {
	tr := &Trace{Header: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseHeaderComment(tr.Header, line)
			continue
		}
		j, err := parseRecord(line)
		if err != nil {
			if opts.Strict {
				return nil, fmt.Errorf("swf: line %d: %w", lineNo, err)
			}
			tr.Skipped++
			continue
		}
		if j == nil { // unusable record (filtered)
			tr.Skipped++
			continue
		}
		tr.Jobs = append(tr.Jobs, j)
		if opts.MaxJobs > 0 && len(tr.Jobs) >= opts.MaxJobs {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf: read: %w", err)
	}
	tr.MaxProcs = headerInt(tr.Header, "MaxProcs")
	if tr.MaxProcs <= 0 {
		tr.MaxProcs = headerInt(tr.Header, "MaxNodes")
	}
	for _, j := range tr.Jobs {
		if j.Width > tr.MaxProcs {
			tr.MaxProcs = j.Width
		}
	}
	// SWF does not promise submit order; schedulers assume it.
	sort.SliceStable(tr.Jobs, func(i, k int) bool {
		if tr.Jobs[i].Arrival != tr.Jobs[k].Arrival {
			return tr.Jobs[i].Arrival < tr.Jobs[k].Arrival
		}
		return tr.Jobs[i].ID < tr.Jobs[k].ID
	})
	return tr, nil
}

// parseHeaderComment records "; Key: Value" lines.
func parseHeaderComment(h map[string]string, line string) {
	body := strings.TrimSpace(strings.TrimLeft(line, "; "))
	i := strings.Index(body, ":")
	if i <= 0 {
		return
	}
	key := strings.TrimSpace(body[:i])
	val := strings.TrimSpace(body[i+1:])
	if key != "" && val != "" {
		if _, dup := h[key]; !dup {
			h[key] = val
		}
	}
}

func headerInt(h map[string]string, key string) int {
	v, ok := h[key]
	if !ok {
		return 0
	}
	// Headers sometimes carry trailing prose ("430 nodes"); take the
	// leading integer.
	fields := strings.Fields(v)
	if len(fields) == 0 {
		return 0
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0
	}
	return n
}

// parseRecord converts one data line. It returns (nil, nil) for records
// that parse but describe no schedulable work (zero processors).
func parseRecord(line string) (*job.Job, error) {
	fields := strings.Fields(line)
	if len(fields) != NumFields {
		return nil, fmt.Errorf("record has %d fields, want %d", len(fields), NumFields)
	}
	v := make([]int64, NumFields)
	for i, f := range fields {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("field %d: %w", i+1, err)
		}
		v[i] = n
	}

	width := v[FieldReqProcs]
	if width <= 0 {
		width = v[FieldAllocProcs] // requested unknown: fall back to allocated
	}
	if width <= 0 {
		return nil, nil // no processors: not schedulable
	}
	runtime := v[FieldRunTime]
	if runtime < 0 {
		runtime = 0
	}
	estimate := v[FieldReqTime]
	if estimate < 1 {
		estimate = runtime // no estimate recorded: treat as exact
	}
	if estimate < runtime {
		// Real traces contain jobs that overran their limit (grace
		// periods, logging artifacts). Schedulers kill at the limit, so
		// clamp the runtime as the archive's own cleaning scripts do.
		runtime = estimate
	}
	if estimate < 1 {
		estimate = 1
	}
	arrival := v[FieldSubmitTime]
	if arrival < 0 {
		return nil, fmt.Errorf("negative submit time %d", arrival)
	}
	id := int(v[FieldJobNumber])
	if id <= 0 {
		return nil, fmt.Errorf("non-positive job number %d", v[FieldJobNumber])
	}
	user := int(v[FieldUserID])
	if user < 0 {
		user = 0
	}
	return &job.Job{
		ID:       id,
		Arrival:  arrival,
		Runtime:  runtime,
		Estimate: estimate,
		Width:    int(width),
		User:     user,
	}, nil
}

// Write serialises a trace in SWF. Header keys are emitted sorted; fields
// the Job type does not carry are written as -1 (unknown) except wait time
// and status, which are -1 and 1 ("completed").
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	keys := make([]string, 0, len(tr.Header))
	for k := range tr.Header {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(bw, "; %s: %s\n", k, tr.Header[k]); err != nil {
			return fmt.Errorf("swf: write header: %w", err)
		}
	}
	if _, ok := tr.Header["MaxProcs"]; !ok && tr.MaxProcs > 0 {
		if _, err := fmt.Fprintf(bw, "; MaxProcs: %d\n", tr.MaxProcs); err != nil {
			return fmt.Errorf("swf: write header: %w", err)
		}
	}
	for _, j := range tr.Jobs {
		_, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d %d -1 1 %d -1 -1 -1 -1 -1 -1\n",
			j.ID, j.Arrival, j.Runtime, j.Width, j.Width, j.Estimate, j.User)
		if err != nil {
			return fmt.Errorf("swf: write record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("swf: flush: %w", err)
	}
	return nil
}
