package swf

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNewReaderPlain(t *testing.T) {
	tr, err := Parse(mustReader(t, strings.NewReader(sampleSWF)), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
}

func TestNewReaderGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(sampleSWF)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Parse(mustReader(t, &buf), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 3 || tr.MaxProcs != 128 {
		t.Fatalf("gzip parse: jobs=%d procs=%d", len(tr.Jobs), tr.MaxProcs)
	}
}

func TestNewReaderEmpty(t *testing.T) {
	tr, err := Parse(mustReader(t, strings.NewReader("")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 0 {
		t.Fatal("empty input should parse to no jobs")
	}
}

func TestNewReaderOneByte(t *testing.T) {
	// A single byte (shorter than the gzip magic) must not error.
	tr, err := Parse(mustReader(t, strings.NewReader(";")), Options{})
	if err != nil || len(tr.Jobs) != 0 {
		t.Fatalf("one-byte input: %v, %d jobs", err, len(tr.Jobs))
	}
}

func TestNewReaderCorruptGzip(t *testing.T) {
	// Valid magic, garbage body.
	corrupt := append([]byte{0x1f, 0x8b}, []byte("not really gzip")...)
	if _, err := NewReader(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt gzip should error")
	}
}

func TestOpenPlainAndGzip(t *testing.T) {
	dir := t.TempDir()

	plain := filepath.Join(dir, "t.swf")
	if err := os.WriteFile(plain, []byte(sampleSWF), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := Open(plain, Options{Strict: true})
	if err != nil || len(tr.Jobs) != 3 {
		t.Fatalf("Open plain: %v, %d jobs", err, len(tr.Jobs))
	}

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(sampleSWF))
	zw.Close()
	gz := filepath.Join(dir, "t.swf.gz")
	if err := os.WriteFile(gz, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err = Open(gz, Options{Strict: true})
	if err != nil || len(tr.Jobs) != 3 {
		t.Fatalf("Open gzip: %v, %d jobs", err, len(tr.Jobs))
	}

	if _, err := Open(filepath.Join(dir, "missing.swf"), Options{}); err == nil {
		t.Fatal("missing file should error")
	}
}

func mustReader(t *testing.T, r io.Reader) io.Reader {
	t.Helper()
	out, err := NewReader(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
