package swf

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// gzipMagic is the two-byte gzip header.
var gzipMagic = []byte{0x1f, 0x8b}

// NewReader wraps r, transparently decompressing gzip input — the Parallel
// Workloads Archive distributes traces as .swf.gz files. Plain text passes
// through untouched.
func NewReader(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil {
		// Shorter than two bytes: nothing gzip could fit in; hand the
		// buffered bytes through (Parse will report emptiness sensibly).
		if err == io.EOF {
			return br, nil
		}
		return nil, fmt.Errorf("swf: peek: %w", err)
	}
	if head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("swf: gzip: %w", err)
		}
		return zr, nil
	}
	return br, nil
}

// Open reads and parses an SWF file from disk, decompressing .gz content
// automatically (detected by magic bytes, not the file name).
func Open(path string, opts Options) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("swf: %w", err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, err
	}
	return Parse(r, opts)
}
