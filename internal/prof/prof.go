// Package prof wraps runtime/pprof for the command-line tools: one call
// to start a CPU profile and one to snapshot the heap, each writing to a
// named file. cmd/sweep and cmd/experiments expose these as -cpuprofile
// and -memprofile; the analysis workflow is documented in PERFORMANCE.md.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins CPU profiling into path and returns the stop function,
// which flushes and closes the file. The caller must invoke stop before
// the process exits or the profile is truncated.
func StartCPU(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap forces a GC and writes the live-heap profile to path, so the
// snapshot reflects retained memory rather than garbage awaiting
// collection.
func WriteHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
