package trace

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/stats"
)

func tj(id int, arr, rt int64, w int) *job.Job {
	return &job.Job{ID: id, Arrival: arr, Runtime: rt, Estimate: rt + 1, Width: w}
}

func TestScaleLoadHalvesGaps(t *testing.T) {
	jobs := []*job.Job{tj(1, 100, 10, 1), tj(2, 300, 10, 1), tj(3, 700, 10, 1)}
	out, err := ScaleLoad(jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{100, 200, 400}
	for i, w := range want {
		if out[i].Arrival != w {
			t.Errorf("job %d arrival = %d, want %d", i+1, out[i].Arrival, w)
		}
	}
	// Originals untouched.
	if jobs[1].Arrival != 300 {
		t.Fatal("ScaleLoad mutated input")
	}
}

func TestScaleLoadIdentity(t *testing.T) {
	jobs := []*job.Job{tj(1, 5, 10, 1), tj(2, 17, 10, 1)}
	out, err := ScaleLoad(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if out[i].Arrival != jobs[i].Arrival {
			t.Fatal("factor 1 changed arrivals")
		}
	}
}

func TestScaleLoadRejectsBadFactor(t *testing.T) {
	for _, f := range []float64{0, -1} {
		if _, err := ScaleLoad(nil, f); err == nil {
			t.Errorf("factor %v should error", f)
		}
	}
}

func TestScaleLoadEmpty(t *testing.T) {
	out, err := ScaleLoad(nil, 0.5)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty scale: %v %v", out, err)
	}
}

func TestScaleLoadPreservesOrderProperty(t *testing.T) {
	r := stats.NewRNG(81)
	f := func(n uint8, factPct uint8) bool {
		jobs := make([]*job.Job, 0, int(n)%50)
		clock := int64(0)
		for i := 0; i < int(n)%50; i++ {
			clock += int64(r.Intn(1000))
			jobs = append(jobs, tj(i+1, clock, 10, 1))
		}
		factor := float64(factPct%200+1) / 100.0
		out, err := ScaleLoad(jobs, factor)
		if err != nil {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].Arrival < out[i-1].Arrival {
				return false
			}
		}
		if len(out) > 0 && len(jobs) > 0 && out[0].Arrival != jobs[0].Arrival {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleLoadChangesOfferedLoadInversely(t *testing.T) {
	r := stats.NewRNG(83)
	jobs := make([]*job.Job, 0, 500)
	clock := int64(0)
	for i := 0; i < 500; i++ {
		clock += int64(r.Intn(100) + 50)
		jobs = append(jobs, tj(i+1, clock, int64(r.Intn(1000)+100), r.Intn(8)+1))
	}
	base := OfferedLoad(jobs, 32)
	halved, err := ScaleLoad(jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	high := OfferedLoad(halved, 32)
	if math.Abs(high/base-2) > 0.05 {
		t.Fatalf("halving gaps should double offered load: %v -> %v", base, high)
	}
}

func TestFilterWidth(t *testing.T) {
	jobs := []*job.Job{tj(1, 0, 10, 4), tj(2, 1, 10, 64), tj(3, 2, 10, 8)}
	out := FilterWidth(jobs, 8)
	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 3 {
		t.Fatalf("FilterWidth = %v", out)
	}
	out[0].Width = 99
	if jobs[0].Width != 4 {
		t.Fatal("FilterWidth aliases input")
	}
}

func TestWindow(t *testing.T) {
	jobs := []*job.Job{tj(1, 0, 10, 1), tj(2, 100, 10, 1), tj(3, 200, 10, 1)}
	out := Window(jobs, 50, 200)
	if len(out) != 1 || out[0].ID != 2 {
		t.Fatalf("Window = %v", out)
	}
}

func TestRenumber(t *testing.T) {
	jobs := []*job.Job{tj(7, 500, 10, 1), tj(3, 100, 10, 1)}
	out := Renumber(jobs)
	if out[0].ID != 1 || out[0].Arrival != 0 {
		t.Fatalf("first = %+v", out[0])
	}
	if out[1].ID != 2 || out[1].Arrival != 400 {
		t.Fatalf("second = %+v", out[1])
	}
	if len(Renumber(nil)) != 0 {
		t.Fatal("empty renumber")
	}
}

func TestMerge(t *testing.T) {
	a := []*job.Job{tj(1, 100, 10, 1), tj(2, 300, 10, 1)}
	b := []*job.Job{tj(1, 200, 20, 2)}
	out := Merge(a, b)
	if len(out) != 3 {
		t.Fatalf("merged %d jobs", len(out))
	}
	wantArrivals := []int64{100, 200, 300}
	for i, w := range wantArrivals {
		if out[i].Arrival != w {
			t.Fatalf("merged[%d].Arrival = %d, want %d", i, out[i].Arrival, w)
		}
		if out[i].ID != i+1 {
			t.Fatalf("merged[%d].ID = %d, want %d", i, out[i].ID, i+1)
		}
	}
	if out[1].Runtime != 20 {
		t.Fatal("merge lost the interleaved job's fields")
	}
	// Inputs untouched.
	if a[0].ID != 1 || b[0].ID != 1 {
		t.Fatal("Merge mutated inputs")
	}
	if len(Merge()) != 0 {
		t.Fatal("empty merge should be empty")
	}
}

func TestSummarize(t *testing.T) {
	th := job.PaperThresholds()
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Runtime: 100, Estimate: 100, Width: 2},      // SN, well
		{ID: 2, Arrival: 100, Runtime: 7200, Estimate: 30000, Width: 2}, // LN, poor
		{ID: 3, Arrival: 400, Runtime: 100, Estimate: 150, Width: 16},   // SW, well
	}
	s := Summarize(jobs, th)
	if s.Jobs != 3 || s.Span != 400 {
		t.Fatalf("Jobs=%d Span=%d", s.Jobs, s.Span)
	}
	wantWork := float64(100*2 + 7200*2 + 100*16)
	if s.TotalWork != wantWork {
		t.Fatalf("TotalWork = %v, want %v", s.TotalWork, wantWork)
	}
	if s.CategoryCounts[job.ShortNarrow] != 1 || s.CategoryCounts[job.LongNarrow] != 1 || s.CategoryCounts[job.ShortWide] != 1 {
		t.Fatalf("counts = %v", s.CategoryCounts)
	}
	if s.WellEstimated != 2 || s.PoorlyEstimated != 1 {
		t.Fatalf("estimate classes = %d/%d", s.WellEstimated, s.PoorlyEstimated)
	}
	if math.Abs(s.MeanRuntime-(100+7200+100)/3.0) > 1e-9 {
		t.Fatalf("MeanRuntime = %v", s.MeanRuntime)
	}
	if math.Abs(s.MeanWidth-(2+2+16)/3.0) > 1e-9 {
		t.Fatalf("MeanWidth = %v", s.MeanWidth)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, job.PaperThresholds())
	if s.Jobs != 0 || s.TotalWork != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestOfferedLoad(t *testing.T) {
	// 2 jobs, each 100s × 8 procs = 1600 work over span 100 on 16 procs:
	// 1600 / (16×100) = 1.
	jobs := []*job.Job{tj(1, 0, 100, 8), tj(2, 100, 100, 8)}
	if got := OfferedLoad(jobs, 16); math.Abs(got-1) > 1e-9 {
		t.Fatalf("OfferedLoad = %v, want 1", got)
	}
	if OfferedLoad(jobs, 0) != 0 || OfferedLoad(nil, 16) != 0 {
		t.Fatal("degenerate offered load should be 0")
	}
	same := []*job.Job{tj(1, 50, 10, 1), tj(2, 50, 10, 1)}
	if OfferedLoad(same, 16) != 0 {
		t.Fatal("zero-span trace should report 0")
	}
}
