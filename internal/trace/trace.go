// Package trace transforms and summarises job traces: the load-scaling
// transform the paper uses to create its "high load" condition (shrinking
// inter-arrival times), filtering and renumbering helpers, and the trace
// statistics behind Tables 2 and 3 (category mixes, offered load, estimate
// quality).
package trace

import (
	"fmt"
	"sort"

	"repro/internal/job"
)

// ScaleLoad returns a copy of jobs with every inter-arrival gap multiplied
// by factor, preserving arrival order and the first arrival time. A factor
// below 1 compresses the trace — the paper's high-load condition; above 1
// thins it. Runtime, estimate and width are untouched, so the workload's
// per-job character is identical and only the pressure changes.
func ScaleLoad(jobs []*job.Job, factor float64) ([]*job.Job, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("trace: ScaleLoad factor %v must be positive", factor)
	}
	out := job.CloneAll(jobs)
	if len(out) == 0 {
		return out, nil
	}
	sortByArrival(out)
	prevOld := out[0].Arrival
	prevNew := out[0].Arrival
	for i := 1; i < len(out); i++ {
		gap := float64(out[i].Arrival - prevOld)
		prevOld = out[i].Arrival
		prevNew += int64(gap*factor + 0.5)
		out[i].Arrival = prevNew
	}
	return out, nil
}

// FilterWidth returns the jobs no wider than maxWidth (used to replay a
// trace on a smaller machine).
func FilterWidth(jobs []*job.Job, maxWidth int) []*job.Job {
	var out []*job.Job
	for _, j := range jobs {
		if j.Width <= maxWidth {
			out = append(out, j.Clone())
		}
	}
	return out
}

// Window returns clones of the jobs arriving in [from, to).
func Window(jobs []*job.Job, from, to int64) []*job.Job {
	var out []*job.Job
	for _, j := range jobs {
		if j.Arrival >= from && j.Arrival < to {
			out = append(out, j.Clone())
		}
	}
	return out
}

// Renumber returns clones sorted by arrival with IDs reassigned 1..n and
// arrivals shifted so the first job arrives at 0.
func Renumber(jobs []*job.Job) []*job.Job {
	out := job.CloneAll(jobs)
	sortByArrival(out)
	if len(out) == 0 {
		return out
	}
	base := out[0].Arrival
	for i, j := range out {
		j.ID = i + 1
		j.Arrival -= base
	}
	return out
}

func sortByArrival(jobs []*job.Job) {
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].Arrival != jobs[k].Arrival {
			return jobs[i].Arrival < jobs[k].Arrival
		}
		return jobs[i].ID < jobs[k].ID
	})
}

// Merge interleaves several traces by arrival time into one stream with
// fresh sequential IDs — combining a site's queues, or overlaying a
// synthetic burst onto a base trace. Inputs are cloned, never modified.
func Merge(traces ...[]*job.Job) []*job.Job {
	var out []*job.Job
	for _, tr := range traces {
		out = append(out, job.CloneAll(tr)...)
	}
	sortByArrival(out)
	for i, j := range out {
		j.ID = i + 1
	}
	return out
}

// Stats summarises a trace.
type Stats struct {
	Jobs        int
	Span        int64   // last arrival − first arrival, seconds
	TotalWork   float64 // Σ width × runtime, processor-seconds
	MeanRuntime float64
	MeanWidth   float64
	// Mix is the category distribution (Tables 2–3).
	Mix job.Mix
	// CategoryCounts are absolute counts per category.
	CategoryCounts [job.NumCategories]int
	// WellEstimated / PoorlyEstimated count the §5.2 estimate classes.
	WellEstimated   int
	PoorlyEstimated int
	// MeanOverestimate is the mean estimate/runtime factor.
	MeanOverestimate float64
}

// Summarize computes Stats under the given category thresholds.
func Summarize(jobs []*job.Job, th job.Thresholds) Stats {
	s := Stats{Jobs: len(jobs), Mix: job.CategoryMix(jobs, th)}
	if len(jobs) == 0 {
		return s
	}
	minA, maxA := jobs[0].Arrival, jobs[0].Arrival
	var sumRT, sumW, sumOver float64
	for _, j := range jobs {
		if j.Arrival < minA {
			minA = j.Arrival
		}
		if j.Arrival > maxA {
			maxA = j.Arrival
		}
		s.TotalWork += float64(j.Width) * float64(j.Runtime)
		sumRT += float64(j.Runtime)
		sumW += float64(j.Width)
		sumOver += j.OverestimationFactor()
		s.CategoryCounts[th.Classify(j)]++
		if job.ClassifyEstimate(j) == job.WellEstimated {
			s.WellEstimated++
		} else {
			s.PoorlyEstimated++
		}
	}
	s.Span = maxA - minA
	n := float64(len(jobs))
	s.MeanRuntime = sumRT / n
	s.MeanWidth = sumW / n
	s.MeanOverestimate = sumOver / n
	return s
}

// OfferedLoad returns total work divided by machine capacity over the trace
// span: the demand the trace places on a procs-wide machine. Zero-span
// traces report 0.
func OfferedLoad(jobs []*job.Job, procs int) float64 {
	if procs < 1 || len(jobs) < 2 {
		return 0
	}
	s := Summarize(jobs, job.PaperThresholds())
	if s.Span <= 0 {
		return 0
	}
	return s.TotalWork / (float64(procs) * float64(s.Span))
}
