package serve

import (
	"fmt"
	"io"

	"repro/internal/job"
	"repro/internal/metrics"
)

// counters is the server's running tally, updated exclusively from the
// scheduler goroutine (via the session observer and command execution), so
// no locking is needed.
type counters struct {
	submitted int64
	started   int64 // first dispatches (resumes after preemption not re-counted)
	resumed   int64
	completed int64
	cancelled int64
	rejected  int64

	inUse    int   // processors currently busy
	busyArea int64 // ∫ inUse dt in processor·seconds of virtual time
	lastT    int64 // virtual instant busyArea is integrated up to

	startedSet map[int]bool

	// Per-category bounded-slowdown accumulation over completed jobs.
	catSum [job.NumCategories]float64
	catN   [job.NumCategories]int64
}

func newCounters() *counters {
	return &counters{startedSet: make(map[int]bool)}
}

// tick integrates the busy area up to virtual instant now.
func (c *counters) tick(now int64) {
	if now > c.lastT {
		c.busyArea += int64(c.inUse) * (now - c.lastT)
		c.lastT = now
	}
}

// onStart records a dispatch at now.
func (c *counters) onStart(now int64, j *job.Job) {
	c.tick(now)
	c.inUse += j.Width
	if c.startedSet[j.ID] {
		c.resumed++
	} else {
		c.startedSet[j.ID] = true
		c.started++
	}
}

// onSuspend records a preemption at now.
func (c *counters) onSuspend(now int64, j *job.Job) {
	c.tick(now)
	c.inUse -= j.Width
}

// onComplete records a completion at now and folds the job's slowdown into
// its category's running mean.
func (c *counters) onComplete(now int64, j *job.Job, th job.Thresholds) {
	c.tick(now)
	c.inUse -= j.Width
	c.completed++
	delete(c.startedSet, j.ID)
	delay := (now - j.Arrival) - j.Runtime
	if delay < 0 {
		delay = 0
	}
	cat := th.Classify(j)
	c.catSum[cat] += metrics.BoundedSlowdown(delay, j.Runtime)
	c.catN[cat]++
}

// utilization is the busy fraction of the machine over virtual time
// [start, now], after integrating up to now.
func (c *counters) utilization(now int64, procs int) float64 {
	c.tick(now)
	if c.lastT <= 0 || procs <= 0 {
		return 0
	}
	return float64(c.busyArea) / (float64(procs) * float64(c.lastT))
}

// WriteMetrics renders the Prometheus text exposition format from one
// immutable snapshot, kept by hand rather than through a client library: the
// format is five lines of syntax and the repo takes no dependencies. Because
// it reads only the snapshot it is safe on any goroutine, and a draining or
// stopped daemon keeps exposing its final state. Exported so the federation
// front end renders its merged snapshot in the identical format.
func WriteMetrics(w io.Writer, snap *Snapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, format string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s "+format+"\n", name, help, name, name, v)
	}

	counter("schedd_jobs_submitted_total", "Jobs accepted by the service.", snap.Submitted)
	counter("schedd_jobs_started_total", "Jobs dispatched for the first time.", snap.Started)
	counter("schedd_jobs_resumed_total", "Resumes of preempted jobs.", snap.Resumed)
	counter("schedd_jobs_completed_total", "Jobs that finished.", snap.Completed)
	counter("schedd_jobs_cancelled_total", "Jobs withdrawn before starting.", snap.Cancelled)
	counter("schedd_jobs_rejected_total", "Submissions refused (invalid or too wide).", snap.Rejected)

	gauge("schedd_queue_depth", "Jobs waiting in the scheduler queue.", "%d", len(snap.QueuedViews()))
	gauge("schedd_running_jobs", "Jobs currently holding processors.", "%d", len(snap.Running))
	gauge("schedd_procs_total", "Machine size in processors.", "%d", snap.Procs)
	gauge("schedd_procs_busy", "Processors currently in use.", "%d", snap.ProcsBusy)
	gauge("schedd_virtual_time_seconds", "Current virtual time.", "%d", snap.Now)
	gauge("schedd_utilization", "Busy fraction of the machine over virtual time so far.", "%.6f", snap.Utilization)
	gauge("schedd_state_version", "Snapshot publication number of this scrape.", "%d", snap.Version)

	if snap.AuditViolations >= 0 {
		gauge("schedd_audit_violations", "Invariant violations recorded by the audit wrapper.", "%d", snap.AuditViolations)
	}

	fmt.Fprintf(w, "# HELP schedd_slowdown_mean Mean bounded slowdown of completed jobs per paper category.\n# TYPE schedd_slowdown_mean gauge\n")
	for _, cat := range job.Categories() {
		if snap.CatN[cat] == 0 {
			continue
		}
		fmt.Fprintf(w, "schedd_slowdown_mean{category=%q} %.6f\n", cat.String(), snap.CatSum[cat]/float64(snap.CatN[cat]))
	}
}
