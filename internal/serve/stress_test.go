package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"maps"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

// TestServeConcurrentReadersDuringReplay hammers every read endpoint from
// many goroutines while a CTC-model replay runs at maximum speed, then
// through the graceful drain and past it. Run under -race it is the
// concurrency acceptance gate for the lock-free read path; the assertions
// pin the snapshot contract:
//
//   - the state version is monotonically non-decreasing per observer,
//   - every snapshot is internally consistent (busy processors equal the
//     widths of the running set; pending = submitted − completed − cancelled),
//   - the memoized forecast for a version equals a fresh dry-run over the
//     same snapshot's inputs,
//   - /healthz and /metrics keep answering 200 after the loop has exited.
func TestServeConcurrentReadersDuringReplay(t *testing.T) {
	m, err := workload.NewCTC(0.9)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.Generate(400, 11)
	if err != nil {
		t.Fatal(err)
	}
	jobs := workload.ApplyEstimates(raw, workload.Actual{}, 7)

	s, err := New(Options{Procs: m.Procs, Scheduler: "easy", Audit: true, Speed: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Preload(jobs); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()

	h := s.Handler()
	get := func(path string) (*httptest.ResponseRecorder, bool) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec, rec.Code == http.StatusOK
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Health readers: version monotonicity.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for !stop.Load() {
				rec, ok := get("/healthz")
				if !ok {
					report("healthz: %d %s", rec.Code, rec.Body.String())
					return
				}
				var hz healthResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
					report("healthz body: %v", err)
					return
				}
				if hz.Version < last {
					report("healthz version went backwards: %d after %d", hz.Version, last)
					return
				}
				last = hz.Version
			}
		}()
	}

	// Queue readers: per-snapshot consistency.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for !stop.Load() {
				rec, ok := get("/v1/queue")
				if !ok {
					report("queue: %d %s", rec.Code, rec.Body.String())
					return
				}
				var q QueueResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
					report("queue body: %v", err)
					return
				}
				if q.Version < last {
					report("queue version went backwards: %d after %d", q.Version, last)
					return
				}
				last = q.Version
				busy := 0
				for _, v := range q.Running {
					busy += v.Width
				}
				if busy != q.ProcsBusy {
					report("v%d: procs_busy %d but running widths sum to %d", q.Version, q.ProcsBusy, busy)
					return
				}
				if q.ProcsBusy > q.Procs {
					report("v%d: procs_busy %d exceeds machine %d", q.Version, q.ProcsBusy, q.Procs)
					return
				}
			}
		}()
	}

	// Metrics + status readers: exercise the remaining endpoints.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if rec, ok := get("/metrics"); !ok {
				report("metrics: %d", rec.Code)
				return
			}
			id := jobs[i%len(jobs)].ID
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/v1/jobs/%d", id), nil))
			if rec.Code != http.StatusOK {
				report("status %d: %d", id, rec.Code)
				return
			}
		}
	}()

	// Forecast checker: the memoized result for a snapshot must match a
	// fresh dry-run over that same snapshot's captured inputs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := s.Current()
			cached := s.forecastFor(snap).toMap()
			fresh := sched.ForecastFromState(snap.Procs, snap.SimNow, snap.FRunning, snap.FQueued, s.pol, snap.Resv)
			if len(cached) == 0 && len(fresh) == 0 {
				continue
			}
			if !maps.Equal(cached, fresh) {
				report("v%d: cached forecast %v != fresh %v", snap.Version, cached, fresh)
				return
			}
		}
	}()

	// Consistency checks at the snapshot level (no HTTP in the way).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			snap := s.Current()
			if got := snap.Submitted - snap.Completed - snap.Cancelled; int64(snap.Pending) != got {
				report("v%d: pending %d != submitted %d - completed %d - cancelled %d",
					snap.Version, snap.Pending, snap.Submitted, snap.Completed, snap.Cancelled)
				return
			}
		}
	}()

	// Let the readers overlap the replay, then drain under fire.
	deadline := time.Now().Add(15 * time.Second)
	for s.Current().Pending > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The loop is gone; reads must keep working from the final snapshot.
	for _, path := range []string{"/healthz", "/metrics", "/v1/queue"} {
		if rec, ok := get(path); !ok {
			t.Errorf("%s after stop: %d", path, rec.Code)
		}
	}
	final := s.Current()
	if !final.Draining {
		t.Error("final snapshot should be marked draining")
	}
	if final.Pending != 0 {
		t.Errorf("final snapshot still has %d pending jobs", final.Pending)
	}

	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestForecastMemoizedPerVersion pins the core caching guarantee: polling
// the queue any number of times at an unchanged state version performs zero
// additional forecast dry-runs, and a state change invalidates exactly once.
func TestForecastMemoizedPerVersion(t *testing.T) {
	s, stop := frozenServer(t, Options{Procs: 8, Scheduler: "easy"})
	defer stop()
	h := s.Handler()

	// Fill the machine, then queue two jobs so a forecast exists.
	doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 8, Runtime: 100}, nil)
	doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 4, Runtime: 50}, nil)
	doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 2, Runtime: 25}, nil)

	version := s.Current().Version
	base := s.DryRuns()
	if base == 0 {
		t.Fatal("submit responses should have forced at least one dry-run")
	}
	for i := 0; i < 50; i++ {
		var q QueueResponse
		if rec := doJSON(t, h, "GET", "/v1/queue", nil, &q); rec.Code != 200 {
			t.Fatalf("queue: %d", rec.Code)
		}
		if q.Version != version {
			t.Fatalf("state version moved during polling: %d -> %d", version, q.Version)
		}
		if q.Queued[0].PredictedStart == nil {
			t.Fatalf("queued job lost its forecast: %+v", q.Queued[0])
		}
	}
	if got := s.DryRuns(); got != base {
		t.Fatalf("50 polls at one version ran %d extra dry-runs", got-base)
	}

	// A write invalidates: the next poll recomputes, once, and polling the
	// new version is free again.
	doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 1, Runtime: 10}, nil)
	afterSubmit := s.DryRuns()
	if afterSubmit != base+1 {
		t.Fatalf("submit should cost exactly one dry-run, went %d -> %d", base, afterSubmit)
	}
	for i := 0; i < 20; i++ {
		doJSON(t, h, "GET", "/v1/queue", nil, nil)
	}
	if got := s.DryRuns(); got != afterSubmit {
		t.Fatalf("polling the new version ran %d extra dry-runs", got-afterSubmit)
	}
}

// TestBatchedSubmitsShareOnePublish checks the write-batching claim
// deterministically: with a backlog parked in the buffered mailbox, one
// runBatch call executes every command, publishes exactly one snapshot for
// the whole burst, and releases every waiter — so N concurrent submissions
// cost one rebuild and one forecast invalidation, not N. The scheduler loop
// is deliberately not running; the test goroutine plays its role.
func TestBatchedSubmitsShareOnePublish(t *testing.T) {
	s, err := New(Options{Procs: 64, Scheduler: "easy"})
	if err != nil {
		t.Fatal(err)
	}
	s.clock = NewClock(0, 1e-9, time.Now()) // what Run would set up

	const n = 32
	before := s.Current().Version
	cmds := make([]*command, n)
	for i := range cmds {
		cmds[i] = &command{
			fn:   func() { _, _ = s.submitJob(SubmitRequest{Width: 1, Runtime: 1000}) },
			done: make(chan struct{}),
		}
	}
	// Park all but the first in the mailbox, the way a burst of blocked
	// HTTP writers would, then hand the first to the loop body.
	for _, c := range cmds[1:] {
		s.cmds <- c
	}
	s.runBatch(cmds[0])

	for i, c := range cmds {
		select {
		case <-c.done:
		default:
			t.Fatalf("command %d not released", i)
		}
	}
	snap := s.Current()
	if snap.Submitted != n {
		t.Fatalf("submitted %d, want %d", snap.Submitted, n)
	}
	if got := snap.Version - before; got != 1 {
		t.Fatalf("%d submissions produced %d publications, want 1 shared publish", n, got)
	}
}

// TestConcurrentSubmitsReadTheirOwnWrites is the HTTP-level companion: no
// matter how the goroutines interleave with the loop's batching, every
// submitter's 201 response must describe its own job (read-your-writes
// through the snapshot), and the final snapshot must account for all of
// them.
func TestConcurrentSubmitsReadTheirOwnWrites(t *testing.T) {
	s, stop := frozenServer(t, Options{Procs: 4, Scheduler: "easy"})
	defer stop()
	h := s.Handler()

	const n = 32
	var wg sync.WaitGroup
	views := make([]JobView, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 1, Runtime: 1000}, &views[i])
			codes[i] = rec.Code
		}()
	}
	wg.Wait()
	seen := make(map[int]bool, n)
	for i := range views {
		if codes[i] != 201 {
			t.Fatalf("submit %d: %d", i, codes[i])
		}
		if views[i].ID == 0 || seen[views[i].ID] {
			t.Fatalf("submit %d: bad or duplicate id in response: %+v", i, views[i])
		}
		seen[views[i].ID] = true
		if views[i].State != "running" && views[i].State != "queued" {
			t.Fatalf("submit %d: unexpected state %q", i, views[i].State)
		}
	}
	if snap := s.Current(); snap.Submitted != n {
		t.Fatalf("submitted %d, want %d", snap.Submitted, n)
	}
}
