package serve

// Recovery-equivalence tests for the durability layer. They drive the
// mutation paths the scheduler goroutine runs (submitJob, cancel, advance,
// commitWAL) synchronously, then simulate a crash by abandoning the server
// without draining — exactly what SIGKILL leaves on disk — and verify that
// a recovering server reproduces the crashed one byte for byte: equal
// StateHash, equal rendered queue. A third replica replays the journal
// from genesis (the shadow path cmd/schedload's crash mode uses) and must
// land on the same state as the checkpoint+tail recovery.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/wal"
)

func durableOpts(dir string) Options {
	return Options{
		Procs:      64,
		Scheduler:  "conservative",
		Policy:     "FCFS",
		Audit:      true,
		Speed:      -1,
		Durability: DurabilityOptions{Dir: dir},
	}
}

// mutate drives a deterministic mixed workload through the server's own
// mutation paths, committing in batches like runBatch does. Every accepted
// submission and cancellation is returned so callers can assert none is
// lost.
func mutate(t *testing.T, s *Server, n int) (acceptedIDs []int, cancelled []int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id, err := s.submitJob(SubmitRequest{
			Runtime:  int64(60 + 90*(i%7)),
			Estimate: int64(120 + 90*(i%7)),
			Width:    1 + (i*11)%32,
			User:     i % 5,
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		acceptedIDs = append(acceptedIDs, id)
		if i%5 == 4 {
			// Let virtual time move so jobs start and complete between
			// submissions.
			if err := s.sess.AdvanceTo(s.sess.Now() + int64(40*(i%3+1))); err != nil {
				t.Fatal(err)
			}
			s.noteAdvance()
		}
		if i%9 == 8 {
			victim := acceptedIDs[len(acceptedIDs)-1]
			if err := s.cancel(victim); err == nil {
				cancelled = append(cancelled, victim)
			}
		}
		if i%4 == 3 { // batch boundary: group commit
			if err := s.commitWAL(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.commitWAL(); err != nil {
		t.Fatal(err)
	}
	s.publish() // what runBatch does before releasing handlers
	return acceptedIDs, cancelled
}

// queueJSON renders GET /v1/queue to a normalized string.
func queueJSON(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/queue", nil))
	if rec.Code != 200 {
		t.Fatalf("queue: status %d: %s", rec.Code, rec.Body.String())
	}
	var v map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	delete(v, "version") // publication count differs across boots
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// crash abandons the server the way SIGKILL would: release the file
// handles (the OS does this for a dead process) without draining or
// checkpointing.
func crash(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	a, err := New(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	ids, cancelledIDs := mutate(t, a, 60)
	wantHash := a.StateHash()
	wantQueue := queueJSON(t, a)
	crash(t, a)

	b, err := New(durableOpts(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer b.Close()
	if got := b.StateHash(); got != wantHash {
		t.Fatalf("recovered hash %#x, crashed process had %#x", got, wantHash)
	}
	if got := queueJSON(t, b); got != wantQueue {
		t.Fatalf("recovered queue diverged:\n got %s\nwant %s", got, wantQueue)
	}
	ri := b.Recovery()
	if ri == nil || !ri.Replayed() {
		t.Fatalf("recovery info missing or empty: %+v", ri)
	}
	// No acknowledged write lost: every accepted job is known, every
	// acknowledged cancel stayed cancelled.
	for _, id := range ids {
		if _, ok := b.sess.Info(id); !ok {
			t.Fatalf("acknowledged job %d lost in recovery", id)
		}
	}
	for _, id := range cancelledIDs {
		info, _ := b.sess.Info(id)
		if info.State != sim.StateCancelled {
			t.Fatalf("acknowledged cancel of job %d lost: state %v", id, info.State)
		}
	}
}

func TestDurableCheckpointThenTailRecovery(t *testing.T) {
	dir := t.TempDir()
	a, err := New(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, a, 40)
	if err := a.checkpoint(); err != nil {
		t.Fatal(err)
	}
	mutate(t, a, 25) // journal tail past the checkpoint
	wantHash := a.StateHash()
	wantQueue := queueJSON(t, a)
	crash(t, a)

	b, err := New(durableOpts(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer b.Close()
	ri := b.Recovery()
	if ri.CheckpointSeq == 0 || ri.TailRecords == 0 {
		t.Fatalf("expected checkpoint+tail recovery, got %+v", ri)
	}
	if got := b.StateHash(); got != wantHash {
		t.Fatalf("recovered hash %#x, crashed process had %#x", got, wantHash)
	}
	if got := queueJSON(t, b); got != wantQueue {
		t.Fatalf("recovered queue diverged:\n got %s\nwant %s", got, wantQueue)
	}

	// The genesis shadow replay (cmd/schedload's differential check) must
	// agree with the checkpoint+tail recovery.
	b.Close()
	st, err := wal.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	shadowOpts := durableOpts("")
	shadowOpts.Durability = DurabilityOptions{}
	shadow, err := New(shadowOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := shadow.Replay(st.Ops()); err != nil {
		t.Fatal(err)
	}
	if got := shadow.StateHash(); got != wantHash {
		t.Fatalf("shadow genesis replay hash %#x, crashed process had %#x", got, wantHash)
	}
}

func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	a, err := New(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, a, 20)
	wantHash := a.StateHash()
	seg := a.log.SegmentPath()
	crash(t, a)

	// A crash mid-append leaves a partial record at the end of the active
	// segment; it was never acknowledged, so recovery truncates it.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"s":99999,"op":"sub`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b, err := New(durableOpts(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer b.Close()
	if ri := b.Recovery(); ri.TruncatedBytes == 0 {
		t.Fatalf("expected torn-tail truncation, got %+v", ri)
	}
	if got := b.StateHash(); got != wantHash {
		t.Fatalf("recovered hash %#x, acknowledged state had %#x", got, wantHash)
	}
}

func TestDurableCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	a, err := New(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, a, 30)
	seg := a.log.SegmentPath()
	crash(t, a)

	// Flip a byte in an early, acknowledged record: valid records follow,
	// so this is corruption, not a torn tail — recovery must refuse rather
	// than half-apply.
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	idx := len(data) / 3
	data[idx] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := New(durableOpts(dir)); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestDurableConfigMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	a, err := New(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, a, 10)
	if err := a.checkpoint(); err != nil {
		t.Fatal(err)
	}
	crash(t, a)

	opts := durableOpts(dir)
	opts.Scheduler = "easy"
	if _, err := New(opts); err == nil || !strings.Contains(err.Error(), "configured") {
		t.Fatalf("want config-mismatch refusal, got %v", err)
	}
}

func TestDurableSecondWriterLockedOut(t *testing.T) {
	dir := t.TempDir()
	a, err := New(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := New(durableOpts(dir)); !errors.Is(err, wal.ErrLocked) {
		t.Fatalf("want ErrLocked for a second daemon on the same dir, got %v", err)
	}
}

func TestDurableCheckpointNewerThanJournal(t *testing.T) {
	// A checkpoint with its tail segments pruned (or never written past
	// it) recovers from the checkpoint alone.
	dir := t.TempDir()
	a, err := New(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, a, 15)
	if err := a.checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantHash := a.StateHash()
	crash(t, a)
	// Remove the empty post-checkpoint segment: the checkpoint is now
	// newer than every journal file.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range segs {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	b, err := New(durableOpts(dir))
	if err != nil {
		t.Fatalf("recovery from checkpoint alone: %v", err)
	}
	defer b.Close()
	if got := b.StateHash(); got != wantHash {
		t.Fatalf("recovered hash %#x, want %#x", got, wantHash)
	}
}

func TestDurableDurabilityEndpoint(t *testing.T) {
	dir := t.TempDir()
	a, err := New(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	mutate(t, a, 8)

	// The loop is not running; Durability's exec would park. Read the
	// rendered JSON via the direct fill path the drained daemon uses.
	close(a.stopped)
	rec := httptest.NewRecorder()
	a.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/durability", nil))
	if rec.Code != 200 {
		t.Fatalf("durability endpoint: status %d", rec.Code)
	}
	var info DurabilityInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if !info.Enabled || info.Seq == 0 || info.StateHash != a.sess.StateHash() {
		t.Fatalf("unexpected durability info: %+v", info)
	}
	if info.Dir != dir {
		t.Fatalf("durability dir %q, want %q", info.Dir, dir)
	}
}

// TestDurableRunDrainRestart exercises the whole live path: a durable
// server under its real Run loop accepts writes over HTTP, drains on
// context cancel (journaling the drain and writing a parting checkpoint),
// and a restarted daemon recovers the drained terminal state — still
// answering reads, refusing writes.
func TestDurableRunDrainRestart(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts(dir)
	opts.Speed = 1e-9 // frozen clock: the test controls the schedule
	a, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	stop := startServer(t, a)
	h := a.Handler()
	for i := 0; i < 12; i++ {
		rec := doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Runtime: 120, Estimate: 240, Width: 1 + i%8}, nil)
		if rec.Code != 201 {
			t.Fatalf("submit %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	var before DurabilityInfo
	doJSON(t, h, "GET", "/v1/debug/durability", nil, &before)
	if !before.Enabled || before.Seq == 0 {
		t.Fatalf("live durability info: %+v", before)
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	crash(t, a)

	b, err := New(opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer b.Close()
	if !b.drained {
		t.Fatal("restart did not recover the drained state")
	}
	ri := b.Recovery()
	if ri == nil || !ri.Replayed() || ri.CheckpointSeq == 0 {
		t.Fatalf("expected recovery from the parting checkpoint, got %+v", ri)
	}
	snap := b.Current()
	if snap.Completed != 12 {
		t.Fatalf("recovered snapshot has %d completed jobs, want 12", snap.Completed)
	}
	stopB := startServer(t, b)
	rec := doJSON(t, b.Handler(), "POST", "/v1/jobs", SubmitRequest{Runtime: 60, Estimate: 60, Width: 1}, nil)
	if rec.Code != 503 {
		t.Fatalf("drained daemon accepted a submit: status %d", rec.Code)
	}
	if err := stopB(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// FuzzWALReplay is the differential fuzzer the issue asks for: a random
// mutation/commit schedule runs against a durable server, the "process"
// then dies without draining, and both recovery paths — checkpoint+tail in
// New and genesis replay through Replay — must land on the crashed
// process's exact StateHash.
//
// While the program runs, a concurrent reader tails the journal from
// pseudo-random positions and reloads it wholesale — the follower's view
// of a live leader. The single-writer contract promises such a reader only
// ever sees clean frames, a mid-append torn tail, or a pruned position
// (ErrGone, resync and move on); it must never see ErrCorrupt.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{0, 0, 3, 0, 1, 2, 40, 3, 0, 1, 9})
	f.Add([]byte{0, 2, 200, 0, 0, 3, 1, 1, 4, 0, 2, 10, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 3, 2, 255, 1, 0, 4, 3, 0})
	f.Fuzz(func(t *testing.T, program []byte) {
		dir := t.TempDir()
		opts := durableOpts(dir)
		a, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}

		stopReader := make(chan struct{})
		readerErr := make(chan error, 1)
		go func() {
			defer close(readerErr)
			x := uint64(len(program))*2654435761 + 1
			tl := wal.NewTailer(dir, 0)
			for {
				select {
				case <-stopReader:
					return
				default:
				}
				if _, err := tl.Next(32); err != nil {
					if errors.Is(err, wal.ErrCorrupt) {
						readerErr <- fmt.Errorf("concurrent tail: %w", err)
						return
					}
					// ErrGone (our position was pruned) or a directory
					// listing racing the checkpointer: resync from scratch,
					// like a real follower would.
					tl = wal.NewTailer(dir, 0)
					continue
				}
				x = x*1664525 + 1013904223
				switch x % 8 {
				case 0: // jump to a pseudo-random earlier position
					tl = wal.NewTailer(dir, x>>8%97)
				case 1: // a full read-only load of the live journal
					if _, err := wal.Load(dir); err != nil && errors.Is(err, wal.ErrCorrupt) {
						readerErr <- fmt.Errorf("concurrent load: %w", err)
						return
					}
				}
			}
		}()
		checkReader := func() {
			close(stopReader)
			if err := <-readerErr; err != nil {
				t.Fatal(err)
			}
		}

		var ids []int
		for pc := 0; pc < len(program); pc++ {
			switch program[pc] % 5 {
			case 0, 3: // submit (weighted: submissions dominate real load)
				arg := byte(17)
				if pc+1 < len(program) {
					pc++
					arg = program[pc]
				}
				id, err := a.submitJob(SubmitRequest{
					Runtime:  int64(30 + int(arg)*7),
					Estimate: int64(30 + int(arg)*11),
					Width:    1 + int(arg)%opts.Procs,
					User:     int(arg) % 3,
				})
				if err != nil {
					t.Fatalf("submit: %v", err)
				}
				ids = append(ids, id)
			case 1: // cancel some earlier job (404/409 are fine)
				if len(ids) > 0 {
					arg := 0
					if pc+1 < len(program) {
						pc++
						arg = int(program[pc])
					}
					_ = a.cancel(ids[arg%len(ids)])
				}
			case 2: // advance virtual time
				arg := byte(1)
				if pc+1 < len(program) {
					pc++
					arg = program[pc]
				}
				if err := a.sess.AdvanceTo(a.sess.Now() + int64(arg)); err != nil {
					t.Fatal(err)
				}
				a.noteAdvance()
			case 4: // batch boundary, occasionally a checkpoint
				if err := a.commitWAL(); err != nil {
					t.Fatal(err)
				}
				if pc%3 == 0 && a.log.TailRecords() > 0 {
					if err := a.checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := a.commitWAL(); err != nil {
			t.Fatal(err)
		}
		checkReader()
		want := a.StateHash()
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}

		b, err := New(opts)
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		if got := b.StateHash(); got != want {
			t.Fatalf("checkpoint+tail recovery hash %#x, crashed %#x", got, want)
		}
		b.Close()

		st, err := wal.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		shadow, err := New(Options{Procs: opts.Procs, Scheduler: opts.Scheduler, Policy: opts.Policy, Audit: opts.Audit, Speed: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := shadow.Replay(st.Ops()); err != nil {
			t.Fatal(err)
		}
		if got := shadow.StateHash(); got != want {
			t.Fatalf("genesis shadow replay hash %#x, crashed %#x", got, want)
		}
	})
}

// BenchmarkRecovery measures a cold boot over a populated journal — the
// number that checkpoint cadence tuning trades against append overhead.
// "ops256" not "ops-256": benchdiff treats one trailing "-N" as the
// GOMAXPROCS tag and would strip it.
func BenchmarkRecovery(b *testing.B) {
	for _, ops := range []int{256, 2048} {
		b.Run(fmt.Sprintf("ops%d", ops), func(b *testing.B) {
			dir := b.TempDir()
			opts := durableOpts(dir)
			a, err := New(opts)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < ops/2; i++ {
				if _, err := a.submitJob(SubmitRequest{Runtime: 300, Estimate: 600, Width: 1 + i%16}); err != nil {
					b.Fatal(err)
				}
				if err := a.sess.AdvanceTo(a.sess.Now() + 15); err != nil {
					b.Fatal(err)
				}
				a.noteAdvance()
			}
			if err := a.commitWAL(); err != nil {
				b.Fatal(err)
			}
			a.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := New(opts)
				if err != nil {
					b.Fatal(err)
				}
				s.Close()
			}
		})
	}
}
