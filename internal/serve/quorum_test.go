package serve

// Quorum-ack tests: the follower registry's commit-time liveness rule, the
// wait/wake plumbing between HTTP ack goroutines and the scheduler
// goroutine, and the end-to-end write path under -ack-quorum — strict
// rejection, degrade mode, and a live follower satisfying the quorum
// through real /v1/wal pulls.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wal"
)

func TestFollowerRegistryTTLLiveness(t *testing.T) {
	fr := &followerRegistry{}
	now := time.Now()

	// A registry entry whose acknowledged position covers the sequence but
	// whose follower has been silent past FollowerTTL is exactly what a
	// follower killed between registration and commit leaves behind. It
	// must never satisfy a quorum: the process behind it may hold nothing.
	fr.ack("dead", 10, "", now.Add(-FollowerTTL-time.Second))
	if got := fr.liveAckedLocked(10, now); got != 0 {
		t.Fatalf("TTL-expired follower counted toward quorum: liveAcked = %d, want 0", got)
	}
	if fr.waitQuorum(10, 1, 50*time.Millisecond) {
		t.Fatal("waitQuorum satisfied by a TTL-expired follower")
	}

	// The same position from a live follower counts.
	fr.ack("live", 10, "", now)
	if got := fr.liveAckedLocked(10, now); got != 1 {
		t.Fatalf("live follower not counted: liveAcked = %d, want 1", got)
	}
	if !fr.waitQuorum(10, 1, 50*time.Millisecond) {
		t.Fatal("waitQuorum missed a live, caught-up follower")
	}
	// A live follower that has not yet reached the sequence does not count.
	if fr.waitQuorum(11, 1, 50*time.Millisecond) {
		t.Fatal("waitQuorum satisfied below the follower's acknowledged position")
	}
}

func TestWaitQuorumWakesOnAck(t *testing.T) {
	fr := &followerRegistry{}
	go func() {
		time.Sleep(20 * time.Millisecond)
		fr.ack("f1", 5, "", time.Now())
	}()
	start := time.Now()
	if !fr.waitQuorum(5, 1, 5*time.Second) {
		t.Fatal("waitQuorum timed out despite an ack landing")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("waitQuorum took %v — it polled instead of waking on the ack", waited)
	}
}

// quorumOpts is a frozen durable leader holding every commit batch for one
// follower confirmation.
func quorumOpts(dir string, timeout time.Duration, degrade bool) Options {
	o := Options{
		Procs: 8, Scheduler: "easy", Policy: "FCFS", Audit: true, Speed: 1e-9,
		Durability: DurabilityOptions{
			Dir:           dir,
			AckQuorum:     1,
			QuorumTimeout: timeout,
			QuorumDegrade: degrade,
		},
	}
	return o
}

func postJob(h http.Handler, width int) *httptest.ResponseRecorder {
	body, _ := json.Marshal(map[string]any{"width": width, "runtime": 100})
	req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestQuorumDeadFollowerRejectsWrites is the regression for the silent-
// quorum bug: a follower registers (its first /v1/wal pull acknowledges
// seq 0) and is then killed before the next commit. Its registry entry is
// fresh — well inside FollowerTTL — but it will never confirm the batch,
// so in strict mode the write must be refused with 503, not acknowledged
// on the strength of a registration from a dead process.
func TestQuorumDeadFollowerRejectsWrites(t *testing.T) {
	s, stop := frozenServer(t, quorumOpts(t.TempDir(), 100*time.Millisecond, false))
	defer stop()
	h := s.Handler()

	// One pull, then death: the follower registers at seq 0 and vanishes.
	req := httptest.NewRequest("GET", "/v1/wal?follower=ghost&from=1", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("registration pull: %d %s", rec.Code, rec.Body.String())
	}

	rec = postJob(h, 1)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write with only a dead registered follower: %d %s, want 503", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "quorum") {
		t.Fatalf("503 body does not name the quorum: %s", rec.Body.String())
	}
	if got := s.Replication().QuorumRejected; got < 1 {
		t.Fatalf("QuorumRejected = %d, want >= 1", got)
	}
	// The write is on the leader's journal (durable) even though refused —
	// the contract is "not acknowledged", not "not attempted". The job must
	// therefore exist: refusal means the client cannot assume durability,
	// not that the leader discarded the submission.
	if s.DurableSeq() == 0 {
		t.Fatal("refused write never reached the journal")
	}
}

// TestQuorumStaleEntryCoveringSeq drives the commit-time re-validation
// directly: an entry whose acknowledged position covers every future
// sequence but whose last poll is past FollowerTTL must not carry a
// quorum, even though a naive registration-time count would include it.
func TestQuorumStaleEntryCoveringSeq(t *testing.T) {
	s, stop := frozenServer(t, quorumOpts(t.TempDir(), 100*time.Millisecond, false))
	defer stop()
	h := s.Handler()

	// A follower that acknowledged far ahead (as if it had replicated a
	// long history) and then went silent past the TTL.
	s.flw.ack("stale", 1<<30, "", time.Now().Add(-FollowerTTL-time.Second))

	rec := postJob(h, 1)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("write vouched for by a TTL-expired entry: %d %s, want 503", rec.Code, rec.Body.String())
	}
}

func TestQuorumDegradeAcksOnTimeout(t *testing.T) {
	s, stop := frozenServer(t, quorumOpts(t.TempDir(), 50*time.Millisecond, true))
	defer stop()
	h := s.Handler()

	rec := postJob(h, 1)
	if rec.Code != http.StatusCreated {
		t.Fatalf("degrade-mode write: %d %s, want 201", rec.Code, rec.Body.String())
	}
	if got := s.Replication().QuorumDegraded; got < 1 {
		t.Fatalf("QuorumDegraded = %d, want >= 1", got)
	}
}

// pullWAL performs one follower /v1/wal pull against the handler and
// returns the decoded records.
func pullWAL(t *testing.T, h http.Handler, id string, from uint64, wait time.Duration) []wal.Record {
	t.Helper()
	url := fmt.Sprintf("/v1/wal?follower=%s&from=%d", id, from)
	if wait > 0 {
		url += "&wait=" + wait.String()
	}
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("pull %s: %d %s", url, rec.Code, rec.Body.String())
	}
	var recs []wal.Record
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		r, err := wal.DecodeRecord(line)
		if err != nil {
			t.Fatalf("decode shipped record: %v", err)
		}
		recs = append(recs, r)
	}
	return recs
}

// TestQuorumSatisfiedByLiveFollower is the happy path: a simulated
// follower keeps pulling /v1/wal — each pull acknowledging everything it
// previously received — and writes acknowledge within the quorum timeout,
// with no degrade and no rejection.
func TestQuorumSatisfiedByLiveFollower(t *testing.T) {
	s, stop := frozenServer(t, quorumOpts(t.TempDir(), 5*time.Second, false))
	defer stop()
	h := s.Handler()

	followerStop := make(chan struct{})
	followerDone := make(chan struct{})
	var acked atomic.Uint64
	go func() {
		defer close(followerDone)
		from := uint64(1)
		for {
			select {
			case <-followerStop:
				return
			default:
			}
			recs := pullWAL(t, h, "sim", from, 50*time.Millisecond)
			if len(recs) > 0 {
				from = recs[len(recs)-1].Seq + 1
				acked.Store(from - 1)
			}
		}
	}()
	defer func() { close(followerStop); <-followerDone }()

	for i := 0; i < 5; i++ {
		rec := postJob(h, 1+i%4)
		if rec.Code != http.StatusCreated {
			t.Fatalf("write %d under live-follower quorum: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	info := s.Replication()
	if info.QuorumDegraded != 0 || info.QuorumRejected != 0 {
		t.Fatalf("quorum not clean with a live follower: %d degraded, %d rejected", info.QuorumDegraded, info.QuorumRejected)
	}
	if got, want := acked.Load(), s.DurableSeq(); got < want {
		// The follower acks on its next pull; give it one more round.
		deadline := time.Now().Add(2 * time.Second)
		for acked.Load() < want && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if acked.Load() < want {
			t.Fatalf("follower acknowledged %d, leader durable at %d", acked.Load(), want)
		}
	}
}
