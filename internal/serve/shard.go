package serve

// The Shard interface is the federation-facing surface of one cluster
// scheduler, extracted from Server so internal/fed can scatter-gather over
// N of them without reaching into daemon internals. Every method is either
// a lock-free snapshot read (Current, Lookup, Queue) or rides the shard's
// own mailbox (Submit, Cancel) — a federation front end therefore inherits
// the serving layer's concurrency guarantees shard by shard: gathers never
// block a shard's write loop, and a submit is acknowledged only after it is
// durable (when journaling) and visible in the shard's published snapshot.

import (
	"context"
	"errors"

	"repro/internal/job"
	"repro/internal/wal"
)

// Shard is one independent cluster scheduler behind a federation front
// end: its own scheduler goroutine, snapshot publisher, and (optionally)
// write-ahead journal. *Server is the canonical implementation.
type Shard interface {
	// Submit routes one job to this shard's scheduler and returns the
	// accepted job's view, rendered from a snapshot that includes it.
	Submit(req SubmitRequest) (JobView, error)
	// Cancel withdraws a job this shard owns.
	Cancel(id int) error
	// Lookup renders one job's view (with a start forecast for waiting
	// jobs) from the latest published snapshot. It never blocks on the
	// scheduler loop.
	Lookup(id int) (JobView, bool)
	// Queue renders the whole-shard queue listing from the latest
	// published snapshot, forecasts attached.
	Queue() QueueResponse
	// Current returns the latest published snapshot (never nil).
	Current() *Snapshot
	// Preload submits a replay workload before Run starts.
	Preload(jobs []*job.Job) error
	// ReserveIDs marks every job ID up to and including upTo as taken,
	// journaling the reservation when the shard is durable. Valid only
	// before Run, like Preload.
	ReserveIDs(upTo int) error
	// Run drives the shard's scheduler loop until ctx is cancelled, then
	// drains. Recovery reports what boot replayed (nil for a fresh boot).
	Run(ctx context.Context) error
	Recovery() *RecoveryInfo
	// Close releases the shard's journal resources after Run has exited.
	Close() error
}

var _ Shard = (*Server)(nil)

// Submit runs one submission through the scheduler mailbox and returns the
// accepted job rendered from the snapshot published for its batch — the
// programmatic form of POST /v1/jobs, shared by the HTTP handler and the
// federation front end.
func (s *Server) Submit(req SubmitRequest) (JobView, error) {
	if s.followerMode.Load() {
		return JobView{}, s.followerWriteError("submit")
	}
	var id int
	var subErr error
	if err := s.exec(func() { id, subErr = s.submitJob(req) }); err != nil {
		return JobView{}, err
	}
	if subErr != nil {
		return JobView{}, subErr
	}
	// exec returns only after the batch's snapshot is published, so the
	// latest snapshot is guaranteed to contain the new job — and the
	// forecast attached below is the memoized one for that version, shared
	// with every other response at the same state.
	v, ok := s.jobResponse(s.snap.Load(), id)
	if !ok {
		return JobView{}, errors.New("serve: submitted job missing from snapshot")
	}
	return v, nil
}

// Cancel withdraws a queued job through the scheduler mailbox — the
// programmatic form of DELETE /v1/jobs/{id}.
func (s *Server) Cancel(id int) error {
	if s.followerMode.Load() {
		return s.followerWriteError("cancel")
	}
	var cErr error
	if err := s.exec(func() { cErr = s.cancel(id) }); err != nil {
		return err
	}
	return cErr
}

// Lookup renders one job from the latest snapshot on the caller's
// goroutine — the lock-free read path behind GET /v1/jobs/{id}. The
// federation surface always reads snapshots, regardless of
// Options.MailboxReads (which exists only as the measured A/B baseline).
func (s *Server) Lookup(id int) (JobView, bool) {
	return s.jobResponse(s.snap.Load(), id)
}

// Queue renders the queue listing from the latest snapshot with the
// memoized forecast attached — the lock-free read path behind
// GET /v1/queue.
func (s *Server) Queue() QueueResponse {
	snap := s.snap.Load()
	return queueResponse(snap, s.forecastFor(snap))
}

// ReserveIDs raises the server's next-ID floor past upTo (staying in its
// ID congruence class) and journals the reservation, so recovery replays
// it and a restarted shard cannot re-issue an ID the reservation covered.
// Valid only before Run, like Preload.
func (s *Server) ReserveIDs(upTo int) error {
	if s.followerMode.Load() {
		return s.followerWriteError("reserve IDs")
	}
	if upTo < s.nextID {
		return nil
	}
	s.bumpNextID(upTo)
	s.note(wal.Record{Op: wal.OpFloor, ID: upTo})
	return s.commitWAL()
}
