package serve

// Durability wiring: the serve loop journals every accepted mutation into
// internal/wal before the mutating handler is released, and replays the
// journal at boot. The scheduler goroutine owns the Log exclusively, so the
// lock-free read path is untouched — readers keep rendering snapshots and
// never see the journal at all. Group commit falls out of the existing
// batching: runBatch stages one record per mutation and commits the whole
// batch with a single buffered write (and, with Fsync, a single sync)
// before any done-channel closes, so a burst of N acknowledged submits
// costs one disk round-trip instead of N.
//
// Recovery leans on the session's determinism. Boot replays the newest
// valid checkpoint's compacted op prefix, cross-checks the state hash the
// checkpointing daemon pinned, then replays the journal tail. Any
// divergence — hash, clock, next job ID, counters, configuration — fails
// loudly instead of resuming from silently wrong state.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/job"
	"repro/internal/wal"
)

// DurabilityOptions configure the write-ahead journal. The zero value (no
// Dir) disables durability entirely.
type DurabilityOptions struct {
	// Dir is the journal directory. Empty disables the WAL.
	Dir string
	// Fsync syncs the journal once per commit batch before writes are
	// acknowledged. Off, acknowledged writes survive a process crash
	// (SIGKILL) via the page cache but not a machine crash; see
	// PERFORMANCE.md for the measured tradeoff.
	Fsync bool
	// CheckpointEvery bounds how long the replay tail can grow in wall
	// time; checked when the loop wakes up. Defaults to one minute.
	CheckpointEvery time.Duration
	// CheckpointOps checkpoints after this many journal records past the
	// previous checkpoint. Defaults to 4096.
	CheckpointOps int
	// AckQuorum holds each commit batch's acknowledgements until this many
	// followers — live per the FollowerTTL rule at commit time, not merely
	// registered — have confirmed the batch's max seq through the /v1/wal
	// ack channel. 0 (the default) acknowledges on the leader's own commit
	// alone. Synchronous replication: an acknowledged write survives the
	// loss of the leader AND any AckQuorum-1 followers.
	AckQuorum int
	// QuorumTimeout bounds the per-batch quorum wait. Defaults to 2s.
	QuorumTimeout time.Duration
	// QuorumDegrade picks the availability side of a quorum miss: after
	// QuorumTimeout the batch is acknowledged on the leader's commit alone
	// (counted in ReplicationInfo.QuorumDegraded). Off, the batch's writes
	// fail with 503 (the records remain in the leader's journal — the
	// client must treat their fate as unknown).
	QuorumDegrade bool
}

func (d DurabilityOptions) withDefaults() DurabilityOptions {
	if d.CheckpointEvery <= 0 {
		d.CheckpointEvery = time.Minute
	}
	if d.CheckpointOps <= 0 {
		d.CheckpointOps = 4096
	}
	if d.QuorumTimeout <= 0 {
		d.QuorumTimeout = 2 * time.Second
	}
	return d
}

// RecoveryInfo summarises what boot recovery found and replayed; it is
// surfaced in GET /v1/debug/durability and in the daemon's startup log.
type RecoveryInfo struct {
	// CheckpointSeq is the journal position of the checkpoint recovery
	// started from; 0 means recovery replayed from genesis.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// CheckpointOps counts the compacted operations replayed out of the
	// checkpoint; TailRecords counts the journal records replayed past it.
	CheckpointOps int `json:"checkpoint_ops"`
	TailRecords   int `json:"tail_records"`
	// TruncatedBytes is the size of the torn final record removed from the
	// active segment — the expected residue of a crash mid-append.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// Warnings carry non-fatal recovery oddities (e.g. an unreadable newer
	// checkpoint skipped for an older valid one).
	Warnings []string `json:"warnings,omitempty"`
}

// Replayed reports whether boot applied any journaled operation.
func (ri *RecoveryInfo) Replayed() bool { return ri.CheckpointOps > 0 || ri.TailRecords > 0 }

// DurabilityInfo is the GET /v1/debug/durability payload: where the
// journal stands relative to the serving state.
type DurabilityInfo struct {
	Enabled bool   `json:"enabled"`
	Dir     string `json:"dir,omitempty"`
	Fsync   bool   `json:"fsync,omitempty"`
	// SnapshotVersion is the published snapshot's version; SimNow and
	// StateHash describe the live session at the moment of the probe.
	SnapshotVersion uint64 `json:"snapshot_version"`
	SimNow          int64  `json:"sim_now"`
	StateHash       uint64 `json:"state_hash,string"`
	// Seq is the last durable journal record; TailRecords is how many of
	// those a recovery right now would replay past CheckpointSeq.
	Seq              uint64        `json:"seq"`
	CheckpointSeq    uint64        `json:"checkpoint_seq"`
	TailRecords      uint64        `json:"tail_records"`
	CheckpointAgeSec float64       `json:"checkpoint_age_sec,omitempty"`
	Recovery         *RecoveryInfo `json:"recovery,omitempty"`
}

// config is the configuration fingerprint pinned into every checkpoint;
// recovery refuses a journal written under a different one.
func (s *Server) config() wal.Config {
	c := wal.Config{
		Procs:     s.opts.Procs,
		Scheduler: s.opts.Scheduler,
		Policy:    s.opts.Policy,
		Audit:     s.opts.Audit,
	}
	// A standalone daemon (stride 1) leaves the class fields zero so its
	// journals stay interchangeable with pre-federation ones.
	if s.opts.IDStride > 1 {
		c.IDStart, c.IDStride = s.opts.IDStart, s.opts.IDStride
	}
	return c
}

// openWAL locks the data directory, recovers the durable state into the
// freshly built server, and leaves the journal positioned to append.
func (s *Server) openWAL() error {
	d := s.opts.Durability
	l, st, err := wal.Open(d.Dir, wal.Options{Fsync: d.Fsync, Notify: s.notifyAppend})
	if err != nil {
		return err
	}
	s.log = l
	s.ckptAt = time.Now()
	if err := s.recover(st); err != nil {
		l.Close()
		s.log = nil
		return err
	}
	s.walSeq.Store(l.Seq())
	dir := d.Dir
	s.walDirPub.Store(&dir)
	return nil
}

// recover replays a loaded journal into the empty server: checkpoint
// prefix, divergence cross-checks, then the tail. It also seeds the
// in-memory compacted history the next checkpoint will be built from.
func (s *Server) recover(st *wal.State) error {
	ri := &RecoveryInfo{
		TailRecords:    len(st.Tail),
		TruncatedBytes: st.TruncatedBytes,
		Warnings:       st.Warnings,
	}
	if m := st.Checkpoint; m != nil {
		ri.CheckpointSeq = m.Seq
		ri.CheckpointOps = len(st.CheckpointOps)
		if got, want := s.config(), m.Config; got != want {
			return fmt.Errorf("serve: journal %s was written under %+v, daemon is configured %+v",
				s.opts.Durability.Dir, want, got)
		}
		for _, r := range st.CheckpointOps {
			if err := s.apply(r); err != nil {
				return fmt.Errorf("serve: replaying checkpoint op seq %d: %w", r.Seq, err)
			}
		}
		if h := s.sess.StateHash(); h != m.StateHash {
			return fmt.Errorf("serve: checkpoint %d replay diverged: state hash %#x, checkpoint pinned %#x",
				m.Seq, h, m.StateHash)
		}
		if s.sess.Now() != m.SimNow || s.nextID != m.NextID ||
			s.ctr.submitted != m.Submitted || s.ctr.cancelled != m.Cancelled {
			return fmt.Errorf("serve: checkpoint %d replay diverged: clock %d/%d, next id %d/%d, submitted %d/%d, cancelled %d/%d",
				m.Seq, s.sess.Now(), m.SimNow, s.nextID, m.NextID,
				s.ctr.submitted, m.Submitted, s.ctr.cancelled, m.Cancelled)
		}
		if m.Drained {
			s.drained = true
		}
		s.ckptUnix = m.CreatedUnix
	}
	for _, r := range st.Tail {
		if err := s.apply(r); err != nil {
			return fmt.Errorf("serve: replaying journal record seq %d: %w", r.Seq, err)
		}
	}
	for _, r := range st.CheckpointOps {
		s.history = wal.Coalesce(s.history, r)
	}
	for _, r := range st.Tail {
		s.history = wal.Coalesce(s.history, r)
	}
	s.walVer = s.sess.Version()
	s.recovered = ri
	return nil
}

// apply executes one journaled operation against the session. Replay of a
// record the live daemon journaled must succeed; a refusal means the
// journal and the engine disagree, which is corruption, not a client error.
func (s *Server) apply(r wal.Record) error {
	switch r.Op {
	case wal.OpSubmit:
		if r.Job == nil {
			return fmt.Errorf("serve: submit record has no job")
		}
		j := &job.Job{
			ID:       r.Job.ID,
			Arrival:  r.Job.Arrival,
			Runtime:  r.Job.Runtime,
			Estimate: r.Job.Estimate,
			Width:    r.Job.Width,
			User:     r.Job.User,
		}
		if err := s.sess.Submit(j); err != nil {
			return err
		}
		s.ctr.submitted++
		s.bumpNextID(j.ID)
	case wal.OpCancel:
		if !s.sess.Cancel(r.ID) {
			return fmt.Errorf("serve: journaled cancel of job %d did not apply", r.ID)
		}
		s.ctr.cancelled++
	case wal.OpAdvance:
		if err := s.sess.AdvanceTo(r.To); err != nil {
			return err
		}
		s.replayedAdvance = true
	case wal.OpFloor:
		s.bumpNextID(r.ID)
	case wal.OpTerm:
		s.termPub.Store(r.Term)
	case wal.OpDrain:
		s.drained = true
		s.replayedAdvance = true
		for {
			ok, err := s.sess.Step()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
		}
	default:
		return fmt.Errorf("serve: unknown journal op %q", r.Op)
	}
	return nil
}

// Replay applies journal records to a server that has not started Run: the
// genesis-replay path. Tools use it to differentially check the daemon's
// own checkpoint+tail recovery — cmd/schedload's crash mode loads the dead
// daemon's journal with wal.Load, replays it here into a shadow server,
// and compares StateHash against the restarted daemon. Follower replicas
// ride the same path record batch by record batch through ApplyRecords.
func (s *Server) Replay(recs []wal.Record) error {
	return s.ApplyRecords(recs)
}

// StateHash exposes the session digest for equivalence checks. Safe only
// while the scheduler loop is not running (before Run or after it
// returns); live daemons report it through GET /v1/debug/durability.
func (s *Server) StateHash() uint64 { return s.sess.StateHash() }

// Recovery returns what boot recovery replayed, nil when the server
// started fresh (or without durability).
func (s *Server) Recovery() *RecoveryInfo { return s.recovered }

// note stages one journal record for the current commit batch and captures
// the session version it left behind, so noteAdvance can tell "events were
// delivered by the clock" apart from "a staged mutation moved the version".
func (s *Server) note(r wal.Record) {
	if s.log == nil {
		return
	}
	s.walRecs = append(s.walRecs, r)
	s.walVer = s.sess.Version()
}

// noteAdvance stages an advance record if the session processed events
// since the last staged record. The To instant is the session clock after
// the advance: replaying AdvanceTo(To) delivers exactly the instants the
// live advance did, in the same per-instant scheduling passes. When the
// version is unchanged nothing was delivered and the advance needs no
// record at all.
func (s *Server) noteAdvance() {
	if s.log == nil {
		return
	}
	if v := s.sess.Version(); v != s.walVer {
		s.walRecs = append(s.walRecs, wal.Record{Op: wal.OpAdvance, To: s.sess.Now()})
		s.walVer = v
	}
}

// commitWAL makes the staged records durable: one buffered write and, with
// Fsync, one sync for the whole batch — the group commit. Callers must not
// acknowledge the batch (close done-channels) when it fails; the loop
// exits instead and the waiting handlers observe ErrStopped.
func (s *Server) commitWAL() error {
	if s.log == nil || len(s.walRecs) == 0 {
		return nil
	}
	if err := s.log.Append(s.walRecs); err != nil {
		return err
	}
	for _, r := range s.walRecs {
		s.history = wal.Coalesce(s.history, r)
	}
	s.walRecs = s.walRecs[:0]
	s.walSeq.Store(s.log.Seq())
	return nil
}

// notifyAppend is the wal.Options.Notify hook: it wakes /v1/wal long-polls
// the instant appended records become readable (after the kernel write,
// before the fsync), so followers can pull, apply, and confirm a batch
// while the leader's own disk sync is still in flight — which is what lets
// a quorum wait usually find its confirmations already registered.
func (s *Server) notifyAppend() {
	ch := make(chan struct{})
	if old := s.walNotify.Swap(&ch); old != nil {
		close(*old)
	}
}

// maybeCheckpoint writes a checkpoint when the replay tail has grown past
// the configured record count or age. Called by the loop after a commit,
// so the journal and the session agree at the instant the state hash is
// pinned.
func (s *Server) maybeCheckpoint() error {
	if s.log == nil || s.log.TailRecords() == 0 {
		return nil
	}
	d := s.opts.Durability
	if s.log.TailRecords() < uint64(d.CheckpointOps) && time.Since(s.ckptAt) < d.CheckpointEvery {
		return nil
	}
	return s.checkpoint()
}

// checkpoint durably writes the compacted history with the current state's
// fingerprint and prunes the journal behind it — except segments a
// registered follower replica still needs (the retention floor).
func (s *Server) checkpoint() error {
	s.log.SetRetainFloor(s.flw.floor(time.Now()))
	meta := wal.Meta{
		Config:    s.config(),
		SimNow:    s.sess.Now(),
		NextID:    s.nextID,
		Drained:   s.drained,
		StateHash: s.sess.StateHash(),
		Submitted: s.ctr.submitted,
		Cancelled: s.ctr.cancelled,
	}
	if err := s.log.Checkpoint(meta, s.history); err != nil {
		return err
	}
	s.ckptAt = time.Now()
	s.ckptUnix = time.Now().Unix()
	return nil
}

// Durability reports the journal position alongside the serving state.
// Valid once Run has started; after the loop exits it falls back to a
// direct read, which is safe because no writer remains. On a follower the
// report is rendered from the published snapshot only — the applier
// goroutine owns the session, and there is no scheduler loop to ride.
func (s *Server) Durability() DurabilityInfo {
	var info DurabilityInfo
	if s.followerMode.Load() {
		if snap := s.snap.Load(); snap != nil {
			info.SnapshotVersion = snap.Version
			info.SimNow = snap.SimNow
		}
		return info
	}
	fill := func() {
		if snap := s.snap.Load(); snap != nil {
			info.SnapshotVersion = snap.Version
		}
		info.SimNow = s.sess.Now()
		info.StateHash = s.sess.StateHash()
		if s.log == nil {
			return
		}
		info.Enabled = true
		info.Dir = s.opts.Durability.Dir
		info.Fsync = s.opts.Durability.Fsync
		info.Seq = s.log.Seq()
		info.CheckpointSeq = s.log.CheckpointSeq()
		info.TailRecords = s.log.TailRecords()
		if s.ckptUnix > 0 {
			info.CheckpointAgeSec = time.Since(time.Unix(s.ckptUnix, 0)).Seconds()
		}
		info.Recovery = s.recovered
	}
	if err := s.exec(fill); errors.Is(err, ErrStopped) {
		// The loop has exited, so a direct read cannot race it. Any other
		// exec error (a strict-mode quorum miss) means fill already ran.
		fill()
	}
	return info
}

// Close releases the journal (segment file and directory lock). The loop
// must have exited; schedd defers it around Run.
func (s *Server) Close() error {
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// jobRecOf is the journal image of an accepted job.
func jobRecOf(j *job.Job) *wal.JobRec {
	return &wal.JobRec{
		ID:       j.ID,
		Arrival:  j.Arrival,
		Runtime:  j.Runtime,
		Estimate: j.Estimate,
		Width:    j.Width,
		User:     j.User,
	}
}
