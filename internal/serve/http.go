package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// SubmitRequest is the body of POST /v1/jobs. Runtime is the job's actual
// execution time — this is a simulation service, so the "ground truth" the
// engine needs travels with the submission. Estimate defaults to Runtime
// (a perfectly estimated job) when omitted.
type SubmitRequest struct {
	Width    int   `json:"width"`
	Runtime  int64 `json:"runtime"`
	Estimate int64 `json:"estimate,omitempty"`
	User     int   `json:"user,omitempty"`
}

// JobView is the service's representation of one job, returned by submit,
// status, and queue endpoints.
type JobView struct {
	ID       int    `json:"id"`
	State    string `json:"state"`
	Width    int    `json:"width"`
	Runtime  int64  `json:"runtime"`
	Estimate int64  `json:"estimate"`
	Arrival  int64  `json:"arrival"`
	Category string `json:"category"`
	// Start and End are set once the job has started / finished.
	Start *int64 `json:"start,omitempty"`
	End   *int64 `json:"end,omitempty"`
	// PredictedStart is the start-time forecast for queued jobs: exact
	// where the scheduler holds a reservation, a conservative dry-run of
	// the backfill schedule otherwise.
	PredictedStart *int64 `json:"predicted_start,omitempty"`
	// Slowdown is the bounded slowdown, reported for completed jobs.
	Slowdown *float64 `json:"slowdown,omitempty"`
}

// QueueResponse is the body of GET /v1/queue.
type QueueResponse struct {
	// Version is the snapshot publication number the response was rendered
	// from; it increases monotonically with every observable state change.
	Version   uint64    `json:"version"`
	Now       int64     `json:"now"`
	Scheduler string    `json:"scheduler"`
	Procs     int       `json:"procs"`
	ProcsBusy int       `json:"procs_busy"`
	Submitted int64     `json:"submitted"`
	Pending   int       `json:"pending"`
	Queued    []JobView `json:"queued"`
	Running   []JobView `json:"running"`
	Completed int64     `json:"completed"`
	Cancelled int64     `json:"cancelled"`
}

// healthResponse is the body of GET /healthz.
type healthResponse struct {
	Status   string `json:"status"`
	Now      int64  `json:"now"`
	Pending  int    `json:"pending"`
	Version  uint64 `json:"version"`
	Draining bool   `json:"draining,omitempty"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// makeView converts a session snapshot into the wire representation.
func makeView(info sim.JobInfo, th job.Thresholds) JobView {
	j := info.Job
	v := JobView{
		ID:       j.ID,
		State:    info.State.String(),
		Width:    j.Width,
		Runtime:  j.Runtime,
		Estimate: j.Estimate,
		Arrival:  j.Arrival,
		Category: th.Classify(j).String(),
	}
	if info.Start >= 0 {
		start := info.Start
		v.Start = &start
	}
	if info.State == sim.StateDone && info.End >= 0 {
		end := info.End
		v.End = &end
		delay := (info.End - j.Arrival) - j.Runtime
		if delay < 0 {
			delay = 0
		}
		sd := metrics.BoundedSlowdown(delay, j.Runtime)
		v.Slowdown = &sd
	}
	return v
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs       submit a job          → 201 JobView
//	GET    /v1/jobs/{id}  status + forecast     → 200 JobView
//	DELETE /v1/jobs/{id}  cancel a queued job   → 204
//	GET    /v1/queue      whole-service snapshot → 200 QueueResponse
//	GET    /healthz       liveness               → 200 {"status":"ok"}
//	GET    /metrics       Prometheus text format
//	GET    /v1/debug/durability  journal position → 200 DurabilityInfo
//	GET    /v1/debug/replication replication state → 200 ReplicationInfo
//	GET    /v1/wal        journal shipping stream (see ServeWAL)
//
// With Options.Debug, the Go runtime profiler is mounted as well:
//
//	GET    /debug/pprof/  index, plus the usual profile/heap/trace endpoints
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/queue", s.handleQueue)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/debug/durability", s.handleDurability)
	mux.HandleFunc("GET /v1/debug/replication", s.handleReplication)
	mux.HandleFunc("GET /v1/wal", s.ServeWAL)
	if s.opts.Debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// WriteJSON writes v with the given status. Exported so the federation
// front end (internal/fed) renders responses byte-identically to a single
// daemon.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError maps request failures onto HTTP statuses: clientError carries
// its own, ErrStopped means the service is shutting down, anything else is
// an engine failure. Exported for the federation front end, which forwards
// shard errors unchanged.
func WriteError(w http.ResponseWriter, err error) {
	var ce *clientError
	switch {
	case errors.As(err, &ce):
		WriteJSON(w, ce.code, errorResponse{Error: ce.Error()})
	case errors.Is(err, ErrStopped):
		WriteJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		WriteJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	v, err := s.Submit(req)
	if err != nil {
		WriteError(w, err)
		return
	}
	s.writeSeqHeader(w)
	WriteJSON(w, http.StatusCreated, v)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job id"})
		return
	}
	var v JobView
	var ok bool
	if s.opts.MailboxReads {
		if err := s.exec(func() { v, ok = s.mailboxJobView(id) }); err != nil {
			WriteError(w, err)
			return
		}
	} else {
		v, ok = s.Lookup(id)
	}
	if !ok {
		WriteJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + strconv.Itoa(id)})
		return
	}
	WriteJSON(w, http.StatusOK, v)
}

// mailboxJobView is the baseline status path: render the job and (for
// waiting jobs) a fresh uncached forecast on the scheduler goroutine.
func (s *Server) mailboxJobView(id int) (JobView, bool) {
	info, ok := s.sess.Info(id)
	if !ok {
		return JobView{}, false
	}
	v := makeView(info, s.opts.Thresholds)
	if info.State == sim.StateQueued || info.State == sim.StatePending {
		if t, ok := s.forecasts()[id]; ok {
			t := t
			v.PredictedStart = &t
		}
	}
	return v, true
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job id"})
		return
	}
	if err := s.Cancel(id); err != nil {
		WriteError(w, err)
		return
	}
	s.writeSeqHeader(w)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	if s.opts.MailboxReads {
		var snap *Snapshot
		var pred *forecastPred
		if err := s.exec(func() { snap, pred = s.buildSnapshot(), newForecastPred(s.forecasts()) }); err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, queueResponse(snap, pred))
		return
	}
	// Lock-free path: the body bytes are memoized per snapshot version, so
	// pollers of an unchanged state share one render (and one forecast
	// dry-run) no matter how many of them there are.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(s.queueBody(s.snap.Load()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if s.opts.MailboxReads {
		// Even the baseline serves health from the snapshot once the loop
		// is gone: a draining daemon must keep answering its liveness probe.
		if err := s.exec(func() { snap = s.buildSnapshot() }); err != nil && !errors.Is(err, ErrStopped) {
			WriteError(w, err)
			return
		}
	}
	WriteJSON(w, http.StatusOK, healthResponse{
		Status:   "ok",
		Now:      snap.Now,
		Pending:  snap.Pending,
		Version:  snap.Version,
		Draining: snap.Draining,
	})
}

// handleDurability reports the journal position relative to the serving
// state (see DurabilityInfo). It rides the mailbox so the journal fields
// and the state hash are read on the scheduler goroutine.
func (s *Server) handleDurability(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.Durability())
}

// writeSeqHeader stamps a successful write response with the last durable
// journal sequence — by the time the mailbox acknowledges a write, its
// record is on disk, so this seq is at or past the write's own. A client
// that replays it to a follower as ?min_seq= gets read-your-writes.
func (s *Server) writeSeqHeader(w http.ResponseWriter) {
	if seq := s.walSeq.Load(); seq > 0 {
		w.Header().Set("X-Schedd-Seq", strconv.FormatUint(seq, 10))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if s.opts.MailboxReads {
		// The baseline renders fresh per scrape; the ephemeral snapshot
		// shares the published version number, so it must not touch the
		// per-version body memo.
		if err := s.exec(func() { snap = s.buildSnapshot() }); err != nil && !errors.Is(err, ErrStopped) {
			WriteError(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WriteMetrics(w, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write(s.metricsBody(snap))
}
