// Package serve turns the batch simulator into an online scheduling
// service: a long-running daemon that owns one incremental sim.Session,
// accepts job submissions and cancellations over HTTP while virtual time
// flows (real-time, N×-accelerated, or as-fast-as-possible), answers
// status queries with a predicted start time for queued jobs (the
// "showstart" feature of production batch systems), and exposes
// Prometheus metrics.
//
// Concurrency model: exactly one goroutine — the scheduler loop started by
// Run — touches the session, the scheduler, and the counters; that keeps
// the discrete-event core single-threaded (its determinism guarantee).
// Writes (submit, cancel) are closures sent through a mailbox channel; the
// loop drains the mailbox in batches, so a burst of submissions pays one
// snapshot rebuild, not one per request. Reads never enter the mailbox at
// all: after every step or command batch the loop publishes an immutable
// Snapshot through an atomic pointer, and GET /v1/queue, GET /v1/jobs/{id},
// /healthz and /metrics render from the latest snapshot on the HTTP
// goroutines. Start-time forecasts are memoized per snapshot version with
// single-flight coalescing, so the conservative dry-run executes at most
// once per state change regardless of how many clients poll.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/wal"
)

// ErrStopped is returned for writes that reach the server after its
// scheduler loop has exited (or while it is draining). Reads are served
// from the last published snapshot instead, so health checks and metric
// scrapes stay green through a graceful drain.
var ErrStopped = errors.New("serve: scheduler stopped")

// ErrQuorum is returned for writes whose commit batch was durable on the
// leader but did not gather Durability.AckQuorum follower confirmations in
// time (strict mode only; degrade mode acknowledges instead). The records
// ARE in the leader's journal — a recovery or a later quorum will carry
// them — so the client must treat the write's fate as unknown, not absent.
var ErrQuorum = errors.New("serve: write durable on leader but follower ack quorum not reached")

// publishStride bounds how many event instants an as-fast-as-possible
// advance (or a drain) processes between snapshot publications: often
// enough that readers watch a replay progress, rarely enough that the
// rebuild cost stays a rounding error next to event processing.
const publishStride = 64

// Options configure a Server.
type Options struct {
	// Procs is the machine size (required, >= 1).
	Procs int
	// Scheduler is the scheduler kind accepted by sched.MakerFor.
	// Defaults to "easy".
	Scheduler string
	// Policy is the queue priority policy name. Defaults to "FCFS".
	Policy string
	// Audit wraps the live session in the invariant auditor. On by
	// default in cmd/schedd; zero value here means off for tests that
	// want the raw scheduler.
	Audit bool
	// Speed is the virtual-seconds-per-wall-second ratio: 1 is real time,
	// 60 replays a day per wall-clock day-and-a-half of trace per minute,
	// and <= 0 runs as fast as possible (tests, smoke runs).
	Speed float64
	// Thresholds classify completed jobs for the per-category metrics;
	// zero value means the paper's Table 1 thresholds.
	Thresholds job.Thresholds
	// Debug mounts net/http/pprof under /debug/pprof/ on the API mux so a
	// live daemon can be profiled in place (see PERFORMANCE.md). Off by
	// default: the profile endpoints expose stacks and heap contents, so
	// only enable them on trusted listeners.
	Debug bool
	// MailboxReads restores the pre-snapshot read path: every GET rides
	// the scheduler mailbox and recomputes its answer (including the
	// forecast dry-run) on the loop. It exists purely as the measured
	// baseline for the lock-free read path — cmd/schedload and the serving
	// benchmarks run both modes on the same machine to report the speedup.
	MailboxReads bool
	// Durability configures the write-ahead journal; the zero value (no
	// directory) runs the daemon in-memory only. See durable.go.
	Durability DurabilityOptions
	// IDStart and IDStride pin the server's job-ID arithmetic sequence:
	// assigned IDs are IDStart, IDStart+IDStride, IDStart+2·IDStride, ...
	// The defaults (1, 1) are the standalone daemon's 1, 2, 3, ...; a
	// federation gives shard i of N the class (i+1, N) so IDs are globally
	// unique without shards coordinating. See internal/fed.
	IDStart  int
	IDStride int
	// Follower names the leader this server replicates (an address or a
	// journal directory, used verbatim in error messages). A follower
	// server never runs its own scheduler loop: an external applier
	// (internal/replica) feeds it journal records through ApplyRecords and
	// it publishes snapshots for the lock-free read path exactly like a
	// leader. Writes are refused with 421 and the leader's address;
	// Durability.Dir is not opened (it is reserved as the promotion
	// target). Promote lifts the fence. Incompatible with MailboxReads.
	Follower string
}

func (o Options) withDefaults() Options {
	if o.Scheduler == "" {
		o.Scheduler = "easy"
	}
	if o.Policy == "" {
		o.Policy = "FCFS"
	}
	if o.Thresholds == (job.Thresholds{}) {
		o.Thresholds = job.PaperThresholds()
	}
	if o.IDStride < 1 {
		o.IDStride = 1
	}
	if o.IDStart < 1 {
		o.IDStart = 1
	}
	o.Durability = o.Durability.withDefaults()
	return o
}

// command is one mailbox entry: a closure for the scheduler goroutine plus
// the signal the submitting HTTP handler waits on. The loop closes done
// only after the batch containing the command has executed and the
// resulting snapshot is published, so a handler that proceeds to read the
// snapshot is guaranteed to see its own write. err, written before done is
// closed and read only after, carries a batch-level failure that must
// reach the handler without stopping the loop (a missed ack quorum in
// strict mode).
type command struct {
	fn   func()
	done chan struct{}
	err  error
}

// Server is one online scheduling service instance.
type Server struct {
	opts  Options
	pol   sched.Policy
	inner sim.Scheduler  // the raw scheduler (forecast probes its reservations)
	aud   *audit.Auditor // non-nil when Options.Audit
	sess  *sim.Session
	ctr   *counters
	clock *Clock

	cmds    chan *command
	stopped chan struct{}
	nextID  int
	drained bool

	// Lock-free read path state. snap is written only by the scheduler
	// goroutine (and by New/Preload before it starts); fc, the body memos
	// and dryRuns are shared with HTTP goroutines. qbody and mbody cache
	// the marshaled /v1/queue and /metrics bodies per snapshot version
	// (single-flight, like fc), so polling an unchanged state costs a
	// buffer write instead of a fresh render.
	snap           atomic.Pointer[Snapshot]
	fc             atomic.Pointer[forecastEntry]
	qbody          bodyPtr
	mbody          bodyPtr
	dryRuns        atomic.Int64
	fcExtends      atomic.Int64 // dryRuns served by extending the predecessor's schedule
	pub            uint64 // last published snapshot version
	pubSessVersion uint64 // session version the last snapshot was built from
	pubDirty       bool   // counter changed without a session mutation (e.g. a rejected submit)
	batch          []*command

	// Durability state, owned by the scheduler goroutine (see durable.go).
	log             *wal.Log
	walRecs         []wal.Record // staged records of the in-flight commit batch
	walVer          uint64       // session version at the last staged record
	history         []wal.Record // coalesced full replay sequence (next checkpoint's ops)
	ckptAt          time.Time    // wall time of the last checkpoint (age trigger)
	ckptUnix        int64        // unix time of the last durable checkpoint (reporting)
	recovered       *RecoveryInfo
	replayedAdvance bool // recovery replayed a clock advance; resume there

	// Replication state (see replication.go). walSeq mirrors the last
	// durable journal seq for HTTP goroutines; termPub the current
	// leadership term; followerMode fences writes on a replica; walDirPub
	// the journal directory the /v1/wal endpoint streams from.
	walSeq       atomic.Uint64
	termPub      atomic.Uint64
	followerMode atomic.Bool
	walDirPub    atomic.Pointer[string]
	flw          followerRegistry
	replResyncs  atomic.Int64

	// walNotify is closed and replaced on every journal append so /v1/wal
	// long-polls wake immediately instead of on their next poll tick — the
	// latency floor for follower catch-up and therefore for quorum acks.
	// quorumDegraded / quorumRejected count commit batches that missed the
	// follower ack quorum and were acknowledged anyway (degrade mode) or
	// refused with 503 (strict mode).
	walNotify      atomic.Pointer[chan struct{}]
	quorumDegraded atomic.Int64
	quorumRejected atomic.Int64
}

// New builds a server. Run must be called before writes are accepted; the
// read endpoints work immediately, rendering the initial empty snapshot.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Procs < 1 {
		return nil, fmt.Errorf("serve: options have %d processors", opts.Procs)
	}
	pol, err := sched.PolicyByName(opts.Policy)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	mk, err := sched.MakerFor(opts.Scheduler, pol)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		opts:  opts,
		pol:   pol,
		inner: mk(opts.Procs),
		ctr:   newCounters(),
		// The mailbox is buffered so a burst of writers parks in the channel
		// instead of rendezvousing one-by-one with the loop; runBatch then
		// drains the backlog into a single batch (one snapshot rebuild, one
		// forecast invalidation) regardless of how the goroutines interleave.
		cmds:    make(chan *command, 128),
		stopped: make(chan struct{}),
		nextID:  opts.IDStart,
	}
	runnable := s.inner
	if opts.Audit {
		s.aud = audit.New(opts.Procs, s.inner, audit.OptionsForKind(opts.Scheduler, pol))
		runnable = s.aud
	}
	obs := &sim.Observer{
		OnStart:    func(now int64, j *job.Job) { s.ctr.onStart(now, j) },
		OnSuspend:  func(now int64, j *job.Job) { s.ctr.onSuspend(now, j) },
		OnComplete: func(now int64, j *job.Job) { s.ctr.onComplete(now, j, opts.Thresholds) },
	}
	s.sess, err = sim.Open(sim.Machine{Procs: opts.Procs}, runnable, obs)
	if err != nil {
		return nil, err
	}
	// Delta publication (snapshot.go) patches the previous snapshot from
	// the set of jobs each batch touched; tracking must be on before the
	// first snapshot exists so no lineage ever misses a change.
	s.sess.TrackTouched()
	if opts.Follower != "" {
		if opts.MailboxReads {
			return nil, fmt.Errorf("serve: a follower serves the lock-free read path only (MailboxReads is a single-daemon A/B baseline)")
		}
		// The journal directory, if any, belongs to the leader (or is this
		// follower's promotion target); a follower never opens it.
		s.followerMode.Store(true)
	} else if opts.Durability.Dir != "" {
		if err := s.openWAL(); err != nil {
			return nil, err
		}
	}
	s.publish()
	return s, nil
}

// Preload submits a whole workload (an SWF trace or a synthetic model)
// before the loop starts; arrivals fire as virtual time reaches them.
// Valid only before Run.
func (s *Server) Preload(jobs []*job.Job) error {
	if s.followerMode.Load() {
		return s.followerWriteError("preload")
	}
	for _, j := range jobs {
		if err := s.sess.Submit(j); err != nil {
			return err
		}
		s.note(wal.Record{Op: wal.OpSubmit, Job: jobRecOf(j)})
		s.ctr.submitted++
		s.bumpNextID(j.ID)
	}
	if err := s.commitWAL(); err != nil {
		return err
	}
	s.publish()
	return nil
}

// vnow is the server's current virtual time: the wall-clock mapping in
// timed modes, the session's own clock when running as fast as possible.
// Only the scheduler goroutine calls it.
func (s *Server) vnow() int64 {
	if s.clock == nil || s.clock.Max() {
		return s.sess.Now()
	}
	return s.clock.Now(time.Now())
}

// advance processes every event due by the current virtual instant (all of
// them in as-fast-as-possible mode, publishing snapshots along the way so
// readers watch the replay progress).
func (s *Server) advance() error {
	if s.clock == nil {
		// Before Run there is no clock (tests and tools drive the loop's
		// paths synchronously); deliver everything due at the current
		// instant so a submission's arrival is still processed in place.
		return s.sess.AdvanceTo(s.sess.Now())
	}
	if s.clock.Max() {
		for i := 1; ; i++ {
			ok, err := s.sess.Step()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if i%publishStride == 0 {
				s.publish()
			}
		}
	}
	return s.sess.AdvanceTo(s.clock.Now(time.Now()))
}

// Run drives the scheduler loop until ctx is cancelled, then drains:
// submissions stop, the remaining schedule fast-forwards to completion,
// and the end-of-run invariants (no deadlock, clean audit) are checked.
// The returned error is nil for a clean drain.
func (s *Server) Run(ctx context.Context) error {
	if s.followerMode.Load() {
		// A follower has no scheduler loop of its own — its state advances
		// only through ApplyRecords, until Promote lifts the fence.
		return fmt.Errorf("serve: follower replica of %s: Run is valid only after Promote", s.opts.Follower)
	}
	defer close(s.stopped)
	if s.clock == nil {
		// Virtual time starts at the first pending arrival (replay) or 0
		// (live service) — except after a recovery that replayed a clock
		// advance, which resumes exactly where the crashed process stood
		// instead of jumping ahead to the next pending completion.
		base := int64(0)
		if t, ok := s.sess.NextEventTime(); ok {
			base = t
		}
		if s.replayedAdvance {
			base = s.sess.Now()
		}
		s.clock = NewClock(base, s.opts.Speed, time.Now())
	}
	for {
		if err := s.advance(); err != nil {
			return err
		}
		s.noteAdvance()
		if err := s.commitWAL(); err != nil {
			return err
		}
		if err := s.maybeCheckpoint(); err != nil {
			return err
		}
		s.publish()
		var timer *time.Timer
		var timerC <-chan time.Time
		if t, ok := s.sess.NextEventTime(); ok && !s.clock.Max() {
			timer = time.NewTimer(s.clock.WallUntil(t, time.Now()))
			timerC = timer.C
		}
		select {
		case c := <-s.cmds:
			if err := s.runBatch(c); err != nil {
				return err
			}
		case <-timerC:
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return s.drain()
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// runBatch executes first plus every command already waiting in the
// mailbox, commits the batch's journal records with one write (the group
// commit), publishes one snapshot for the whole batch, and only then
// releases the waiting handlers — so each handler reads a snapshot that
// includes its own write, a burst of N submissions costs one snapshot
// rebuild and at most one forecast dry-run instead of N, and nothing is
// acknowledged before it is durable. With Durability.AckQuorum the release
// is additionally held until K live followers confirm the batch's max seq
// (see waitAckQuorum) — synchronous replication riding the same group
// commit. A commit failure leaves the done-channels unclosed and stops the
// loop; the waiting handlers observe ErrStopped instead of a false
// acknowledgement.
func (s *Server) runBatch(first *command) error {
	s.batch = append(s.batch[:0], first)
	for {
		select {
		case c := <-s.cmds:
			s.batch = append(s.batch, c)
			continue
		default:
		}
		break
	}
	for _, c := range s.batch {
		c.fn()
	}
	pre := s.walSeq.Load()
	if err := s.commitWAL(); err != nil {
		return err
	}
	s.publish()
	var batchErr error
	if seq := s.walSeq.Load(); seq > pre {
		batchErr = s.waitAckQuorum(seq)
	}
	for i, c := range s.batch {
		c.err = batchErr
		close(c.done)
		s.batch[i] = nil // drop the closure for the collector
	}
	return nil
}

// waitAckQuorum holds the current commit batch until Durability.AckQuorum
// live followers have confirmed seq through the /v1/wal ack channel. On
// timeout it either degrades to the leader's own ack (QuorumDegrade, the
// availability choice) or returns ErrQuorum so every write in the batch
// fails with 503 (the consistency choice). Liveness is re-validated at
// this moment, not at registration: followers that died or went silent
// since their last poll never count (see followerRegistry.liveAckedLocked).
func (s *Server) waitAckQuorum(seq uint64) error {
	k := s.opts.Durability.AckQuorum
	if k <= 0 || s.log == nil {
		return nil
	}
	if s.flw.waitQuorum(seq, k, s.opts.Durability.QuorumTimeout) {
		return nil
	}
	if s.opts.Durability.QuorumDegrade {
		n := s.quorumDegraded.Add(1)
		logf("serve: ack quorum %d not reached for seq %d within %s — degrading to leader ack (degrade #%d)",
			k, seq, s.opts.Durability.QuorumTimeout, n)
		return nil
	}
	s.quorumRejected.Add(1)
	return &clientError{code: http.StatusServiceUnavailable, err: fmt.Errorf(
		"%w: %d follower(s) required, seq %d, waited %s", ErrQuorum, k, seq, s.opts.Durability.QuorumTimeout)}
}

// drain fast-forwards the session to completion and verifies the close-out
// invariants. Mirrors what SIGTERM means to a real batch daemon: stop
// admissions, let running and queued work finish, then exit. Snapshots keep
// flowing throughout, so /healthz and /metrics stay green for the whole
// drain (and beyond — the last snapshot outlives the loop).
func (s *Server) drain() error {
	s.drained = true
	// Journal the drain before fast-forwarding: a crash mid-drain replays
	// the fast-forward and recovers to the drained terminal state.
	s.note(wal.Record{Op: wal.OpDrain})
	if err := s.commitWAL(); err != nil {
		return err
	}
	s.pubDirty = true // the draining flag itself is an observable change
	s.publish()
	for i := 1; ; i++ {
		ok, err := s.sess.Step()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if i%publishStride == 0 {
			s.publish()
		}
	}
	s.publish()
	if _, err := s.sess.Finish(); err != nil {
		return err
	}
	if s.aud != nil {
		if err := s.aud.Err(); err != nil {
			return err
		}
	}
	// A parting checkpoint makes the next boot instant: recovery reads the
	// drained state straight from the checkpoint instead of replaying the
	// whole journal.
	if s.log != nil {
		if err := s.checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// exec runs fn on the scheduler goroutine and waits until the batch
// containing it has executed and its snapshot is published. It fails with
// ErrStopped once the loop has exited (or never picks the command up
// because a drain is in progress). A non-nil return other than ErrStopped
// (a strict-mode quorum miss) means fn DID run — the batch executed and
// committed on the leader but was not confirmed by enough followers.
func (s *Server) exec(fn func()) error {
	c := &command{fn: fn, done: make(chan struct{})}
	select {
	case s.cmds <- c:
	case <-s.stopped:
		return ErrStopped
	}
	select {
	case <-c.done:
		return c.err
	case <-s.stopped:
		return ErrStopped
	}
}

// appendNotify returns a channel closed at the next journal append. Used
// by /v1/wal long-polls; safe from any goroutine.
func (s *Server) appendNotify() <-chan struct{} {
	if p := s.walNotify.Load(); p != nil {
		return *p
	}
	ch := make(chan struct{})
	if s.walNotify.CompareAndSwap(nil, &ch) {
		return ch
	}
	return *s.walNotify.Load()
}

// submitJob creates and enqueues a job arriving at the current virtual
// instant and advances the session so the arrival is delivered. It returns
// the new job's ID; the handler renders the response from the snapshot
// published after the batch, which is guaranteed to include this job.
func (s *Server) submitJob(req SubmitRequest) (int, error) {
	if s.drained {
		return 0, ErrStopped
	}
	if req.Estimate == 0 {
		req.Estimate = req.Runtime
	}
	j := &job.Job{
		ID:       s.nextID,
		Arrival:  s.vnow(),
		Runtime:  req.Runtime,
		Estimate: req.Estimate,
		Width:    req.Width,
		User:     req.User,
	}
	if err := s.sess.Submit(j); err != nil {
		s.ctr.rejected++
		s.pubDirty = true // visible in /metrics even though the session is unchanged
		return 0, &clientError{code: 400, err: err}
	}
	s.nextID += s.opts.IDStride
	s.ctr.submitted++
	s.note(wal.Record{Op: wal.OpSubmit, Job: jobRecOf(j)})
	// Deliver the arrival immediately so the response reflects the job's
	// real fate at this instant (running already, or queued with a
	// forecast).
	if err := s.advance(); err != nil {
		return 0, err
	}
	s.noteAdvance()
	return j.ID, nil
}

// bumpNextID moves nextID past id while staying in the server's ID
// congruence class (nextID ≡ IDStart mod IDStride, an invariant every
// caller preserves). Preloaded traces and journal replay carry IDs from
// outside the class, so the next live assignment must clear them.
func (s *Server) bumpNextID(id int) {
	if id < s.nextID {
		return
	}
	stride := s.opts.IDStride
	s.nextID += ((id-s.nextID)/stride + 1) * stride
}

// cancel withdraws a job that has not started.
func (s *Server) cancel(id int) error {
	if _, ok := s.sess.Info(id); !ok {
		return &clientError{code: 404, err: fmt.Errorf("serve: unknown job %d", id)}
	}
	if !s.sess.Cancel(id) {
		return &clientError{code: 409, err: fmt.Errorf("serve: job %d is not cancellable (already started or finished)", id)}
	}
	s.ctr.cancelled++
	s.note(wal.Record{Op: wal.OpCancel, ID: id})
	return nil
}

// forecasts computes predicted start times for the current queue on the
// scheduler goroutine — the mailbox read path's uncached dry-run.
func (s *Server) forecasts() map[int]int64 {
	queued := s.sess.Queued()
	if len(queued) == 0 {
		return nil
	}
	running := make([]sched.RunningSlot, 0, len(queued))
	for _, r := range s.sess.Running() {
		running = append(running, sched.RunningSlot{Width: r.Job.Width, EstEnd: r.EstEnd})
	}
	return sched.Forecast(s.inner, s.opts.Procs, s.sess.Now(), running, queued, s.pol)
}

// clientError carries an HTTP status for request-level failures.
type clientError struct {
	code int
	err  error
}

func (e *clientError) Error() string { return e.err.Error() }
func (e *clientError) Unwrap() error { return e.err }
