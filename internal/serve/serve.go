// Package serve turns the batch simulator into an online scheduling
// service: a long-running daemon that owns one incremental sim.Session,
// accepts job submissions and cancellations over HTTP while virtual time
// flows (real-time, N×-accelerated, or as-fast-as-possible), answers
// status queries with a predicted start time for queued jobs (the
// "showstart" feature of production batch systems), and exposes
// Prometheus metrics.
//
// Concurrency model: exactly one goroutine — the scheduler loop started by
// Run — touches the session, the scheduler, and the counters. HTTP
// handlers never share state with it; they send closures through a mailbox
// channel and wait for execution. That keeps the discrete-event core
// single-threaded (its determinism guarantee) while the HTTP layer fans in
// from any number of connections.
package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ErrStopped is returned for requests that reach the server after its
// scheduler loop has exited (or while it is draining).
var ErrStopped = errors.New("serve: scheduler stopped")

// Options configure a Server.
type Options struct {
	// Procs is the machine size (required, >= 1).
	Procs int
	// Scheduler is the scheduler kind accepted by sched.MakerFor.
	// Defaults to "easy".
	Scheduler string
	// Policy is the queue priority policy name. Defaults to "FCFS".
	Policy string
	// Audit wraps the live session in the invariant auditor. On by
	// default in cmd/schedd; zero value here means off for tests that
	// want the raw scheduler.
	Audit bool
	// Speed is the virtual-seconds-per-wall-second ratio: 1 is real time,
	// 60 replays a day per wall-clock day-and-a-half of trace per minute,
	// and <= 0 runs as fast as possible (tests, smoke runs).
	Speed float64
	// Thresholds classify completed jobs for the per-category metrics;
	// zero value means the paper's Table 1 thresholds.
	Thresholds job.Thresholds
	// Debug mounts net/http/pprof under /debug/pprof/ on the API mux so a
	// live daemon can be profiled in place (see PERFORMANCE.md). Off by
	// default: the profile endpoints expose stacks and heap contents, so
	// only enable them on trusted listeners.
	Debug bool
}

func (o Options) withDefaults() Options {
	if o.Scheduler == "" {
		o.Scheduler = "easy"
	}
	if o.Policy == "" {
		o.Policy = "FCFS"
	}
	if o.Thresholds == (job.Thresholds{}) {
		o.Thresholds = job.PaperThresholds()
	}
	return o
}

// Server is one online scheduling service instance.
type Server struct {
	opts  Options
	pol   sched.Policy
	inner sim.Scheduler  // the raw scheduler (forecast probes its reservations)
	aud   *audit.Auditor // non-nil when Options.Audit
	sess  *sim.Session
	ctr   *counters
	clock *Clock

	cmds    chan func()
	stopped chan struct{}
	nextID  int
	drained bool
}

// New builds a server. Run must be called before the HTTP handlers answer.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Procs < 1 {
		return nil, fmt.Errorf("serve: options have %d processors", opts.Procs)
	}
	pol, err := sched.PolicyByName(opts.Policy)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	mk, err := sched.MakerFor(opts.Scheduler, pol)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		opts:    opts,
		pol:     pol,
		inner:   mk(opts.Procs),
		ctr:     newCounters(),
		cmds:    make(chan func()),
		stopped: make(chan struct{}),
		nextID:  1,
	}
	runnable := s.inner
	if opts.Audit {
		s.aud = audit.New(opts.Procs, s.inner, audit.OptionsForKind(opts.Scheduler, pol))
		runnable = s.aud
	}
	obs := &sim.Observer{
		OnStart:    func(now int64, j *job.Job) { s.ctr.onStart(now, j) },
		OnSuspend:  func(now int64, j *job.Job) { s.ctr.onSuspend(now, j) },
		OnComplete: func(now int64, j *job.Job) { s.ctr.onComplete(now, j, opts.Thresholds) },
	}
	s.sess, err = sim.Open(sim.Machine{Procs: opts.Procs}, runnable, obs)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Preload submits a whole workload (an SWF trace or a synthetic model)
// before the loop starts; arrivals fire as virtual time reaches them.
// Valid only before Run.
func (s *Server) Preload(jobs []*job.Job) error {
	for _, j := range jobs {
		if err := s.sess.Submit(j); err != nil {
			return err
		}
		s.ctr.submitted++
		if j.ID >= s.nextID {
			s.nextID = j.ID + 1
		}
	}
	return nil
}

// vnow is the server's current virtual time: the wall-clock mapping in
// timed modes, the session's own clock when running as fast as possible.
// Only the scheduler goroutine calls it.
func (s *Server) vnow() int64 {
	if s.clock == nil || s.clock.Max() {
		return s.sess.Now()
	}
	return s.clock.Now(time.Now())
}

// advance processes every event due by the current virtual instant (all of
// them in as-fast-as-possible mode).
func (s *Server) advance() error {
	if s.clock.Max() {
		for {
			ok, err := s.sess.Step()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	}
	return s.sess.AdvanceTo(s.clock.Now(time.Now()))
}

// Run drives the scheduler loop until ctx is cancelled, then drains:
// submissions stop, the remaining schedule fast-forwards to completion,
// and the end-of-run invariants (no deadlock, clean audit) are checked.
// The returned error is nil for a clean drain.
func (s *Server) Run(ctx context.Context) error {
	defer close(s.stopped)
	if s.clock == nil {
		// Virtual time starts at the first pending arrival (replay) or 0
		// (live service).
		base := int64(0)
		if t, ok := s.sess.NextEventTime(); ok {
			base = t
		}
		s.clock = NewClock(base, s.opts.Speed, time.Now())
	}
	for {
		if err := s.advance(); err != nil {
			return err
		}
		var timer *time.Timer
		var timerC <-chan time.Time
		if t, ok := s.sess.NextEventTime(); ok && !s.clock.Max() {
			timer = time.NewTimer(s.clock.WallUntil(t, time.Now()))
			timerC = timer.C
		}
		select {
		case cmd := <-s.cmds:
			cmd()
		case <-timerC:
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return s.drain()
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// drain fast-forwards the session to completion and verifies the close-out
// invariants. Mirrors what SIGTERM means to a real batch daemon: stop
// admissions, let running and queued work finish, then exit.
func (s *Server) drain() error {
	s.drained = true
	for {
		ok, err := s.sess.Step()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
	}
	if _, err := s.sess.Finish(); err != nil {
		return err
	}
	if s.aud != nil {
		if err := s.aud.Err(); err != nil {
			return err
		}
	}
	return nil
}

// exec runs fn on the scheduler goroutine and waits for it. It fails with
// ErrStopped once the loop has exited (or never picks the command up
// because a drain is in progress).
func (s *Server) exec(fn func()) error {
	done := make(chan struct{})
	select {
	case s.cmds <- func() { fn(); close(done) }:
	case <-s.stopped:
		return ErrStopped
	}
	select {
	case <-done:
		return nil
	case <-s.stopped:
		return ErrStopped
	}
}

// submit creates and enqueues a job arriving at the current virtual
// instant, advances the session so the arrival is delivered, and returns
// the job's view (including its start-time forecast).
func (s *Server) submit(req SubmitRequest) (JobView, error) {
	if s.drained {
		return JobView{}, ErrStopped
	}
	if req.Estimate == 0 {
		req.Estimate = req.Runtime
	}
	j := &job.Job{
		ID:       s.nextID,
		Arrival:  s.vnow(),
		Runtime:  req.Runtime,
		Estimate: req.Estimate,
		Width:    req.Width,
		User:     req.User,
	}
	if err := s.sess.Submit(j); err != nil {
		s.ctr.rejected++
		return JobView{}, &clientError{code: 400, err: err}
	}
	s.nextID++
	s.ctr.submitted++
	// Deliver the arrival immediately so the response reflects the job's
	// real fate at this instant (running already, or queued with a
	// forecast).
	if err := s.advance(); err != nil {
		return JobView{}, err
	}
	return s.view(j.ID)
}

// cancel withdraws a job that has not started.
func (s *Server) cancel(id int) error {
	if _, ok := s.sess.Info(id); !ok {
		return &clientError{code: 404, err: fmt.Errorf("serve: unknown job %d", id)}
	}
	if !s.sess.Cancel(id) {
		return &clientError{code: 409, err: fmt.Errorf("serve: job %d is not cancellable (already started or finished)", id)}
	}
	s.ctr.cancelled++
	return nil
}

// forecasts computes predicted start times for the current queue.
func (s *Server) forecasts() map[int]int64 {
	queued := s.sess.Queued()
	if len(queued) == 0 {
		return nil
	}
	running := make([]sched.RunningSlot, 0, len(queued))
	for _, r := range s.sess.Running() {
		running = append(running, sched.RunningSlot{Width: r.Job.Width, EstEnd: r.EstEnd})
	}
	return sched.Forecast(s.inner, s.opts.Procs, s.sess.Now(), running, queued, s.pol)
}

// view renders one job's status, attaching a forecast when it is queued.
func (s *Server) view(id int) (JobView, error) {
	info, ok := s.sess.Info(id)
	if !ok {
		return JobView{}, &clientError{code: 404, err: fmt.Errorf("serve: unknown job %d", id)}
	}
	v := makeView(info, s.opts.Thresholds)
	if info.State == sim.StateQueued || info.State == sim.StatePending {
		if t, ok := s.forecasts()[id]; ok {
			v.PredictedStart = &t
		}
	}
	return v, nil
}

// queueSnapshot renders the whole service state for GET /v1/queue.
func (s *Server) queueSnapshot() QueueResponse {
	resp := QueueResponse{
		Now:       s.vnow(),
		Scheduler: s.inner.Name(),
		Procs:     s.opts.Procs,
		ProcsBusy: s.ctr.inUse,
		Completed: s.ctr.completed,
		Cancelled: s.ctr.cancelled,
	}
	pred := s.forecasts()
	for _, j := range sched.SortedByPolicy(s.sess.Queued(), s.pol, s.sess.Now()) {
		if info, ok := s.sess.Info(j.ID); ok {
			v := makeView(info, s.opts.Thresholds)
			if t, ok := pred[j.ID]; ok {
				v.PredictedStart = &t
			}
			resp.Queued = append(resp.Queued, v)
		}
	}
	for _, r := range s.sess.Running() {
		resp.Running = append(resp.Running, makeView(r, s.opts.Thresholds))
	}
	return resp
}

// clientError carries an HTTP status for request-level failures.
type clientError struct {
	code int
	err  error
}

func (e *clientError) Error() string { return e.err.Error() }
func (e *clientError) Unwrap() error { return e.err }
