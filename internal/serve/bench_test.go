package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/sched"
)

// benchServer builds a running daemon with a realistically busy state — a
// full machine plus a standing queue — so read benchmarks measure rendering
// against non-trivial snapshots. The virtual clock is effectively frozen, so
// the state (and therefore the snapshot version) holds still while the
// benchmark loops.
func benchServer(b *testing.B, mailbox bool) (*Server, http.Handler) {
	b.Helper()
	s, err := New(Options{Procs: 64, Scheduler: "easy", Speed: 1e-9, MailboxReads: mailbox})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	b.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			b.Fatal("server did not stop")
		}
	})
	h := s.Handler()
	submit := func(width int, runtime int64) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/jobs",
			strings.NewReader(fmt.Sprintf(`{"width":%d,"runtime":%d}`, width, runtime)))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			b.Fatalf("seed submit: %d %s", rec.Code, rec.Body.String())
		}
	}
	// Fill the machine, then park a deep standing queue behind it — the
	// regime where the mailbox baseline's per-request snapshot rebuild and
	// forecast dry-run actually cost something.
	submit(64, 100000)
	for i := 0; i < 256; i++ {
		submit(1+(i%16)*4, int64(1000+100*i))
	}
	return s, h
}

// benchGet drives one endpoint from parallel client goroutines, the shape
// of real scrape/poll traffic.
func benchGet(b *testing.B, h http.Handler, path string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("GET %s: %d", path, rec.Code)
			}
		}
	})
}

// The ServeRead benchmarks are paired: the bare name is the lock-free
// snapshot read path, the Mailbox suffix is the same request forced through
// the scheduler mailbox (Options.MailboxReads) — the pre-snapshot design.
// BENCH_PR5.json records the mailbox numbers as the baseline, so the ledger
// speedup is exactly the read-path win claimed by this change.

func BenchmarkServeReadQueue(b *testing.B) {
	_, h := benchServer(b, false)
	benchGet(b, h, "/v1/queue")
}

func BenchmarkServeReadQueueMailbox(b *testing.B) {
	_, h := benchServer(b, true)
	benchGet(b, h, "/v1/queue")
}

func BenchmarkServeReadStatus(b *testing.B) {
	_, h := benchServer(b, false)
	benchGet(b, h, "/v1/jobs/17")
}

func BenchmarkServeReadStatusMailbox(b *testing.B) {
	_, h := benchServer(b, true)
	benchGet(b, h, "/v1/jobs/17")
}

func BenchmarkServeReadMetrics(b *testing.B) {
	_, h := benchServer(b, false)
	benchGet(b, h, "/metrics")
}

func BenchmarkServeReadMetricsMailbox(b *testing.B) {
	_, h := benchServer(b, true)
	benchGet(b, h, "/metrics")
}

// BenchmarkForecastCached measures what repeated ShowStart polling costs at
// an unchanged state version: a cache hit on the memoized forecast.
// BenchmarkForecastUncached is the same question answered the old way — a
// full conservative-backfill dry-run per request.

func BenchmarkForecastCached(b *testing.B) {
	s, _ := benchServer(b, false)
	snap := s.Current()
	if s.forecastFor(snap) == nil {
		b.Fatal("no forecast for seeded queue")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.forecastFor(snap) == nil {
			b.Fatal("lost forecast")
		}
	}
}

// snapshotBenchServer builds a server (never Run — the bench goroutine owns
// the state, like the scheduler loop would) with a deep completed-job
// history plus a standing queue: the regime where the old full rebuild paid
// O(total jobs ever) per publication while the state a client cares about
// is only the queue.
func snapshotBenchServer(b *testing.B, history, depth int) *Server {
	b.Helper()
	s, err := New(Options{Procs: 64, Scheduler: "easy"})
	if err != nil {
		b.Fatal(err)
	}
	id := 0
	now := int64(0)
	submit := func(width int, runtime int64) {
		id++
		if err := s.sess.Submit(&job.Job{ID: id, Arrival: now, Runtime: runtime, Estimate: runtime, Width: width}); err != nil {
			b.Fatal(err)
		}
		s.ctr.submitted++
	}
	for i := 0; i < history; i++ {
		submit(64, 10)
		now += 10
	}
	if err := s.sess.AdvanceTo(now); err != nil {
		b.Fatal(err)
	}
	submit(64, 1<<40) // blocker: the machine stays full from here on
	for i := 0; i < depth; i++ {
		submit(1+(i%16)*4, int64(1000+100*i))
	}
	if err := s.sess.AdvanceTo(now); err != nil {
		b.Fatal(err)
	}
	s.publish()
	return s
}

// The Snapshot benchmarks are paired like the ServeRead ones: Full is the
// from-scratch rebuild (every job ever re-rendered), Delta the published
// copy-on-write patch path. Their gap is the per-batch write cost the delta
// path removed (PERFORMANCE.md §11); it widens with history while Delta
// tracks only the queue.

func benchSnapshot(b *testing.B, delta bool) {
	s := snapshotBenchServer(b, 20000, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if delta {
			s.pubDirty = true
			s.publish()
		} else if snap := s.buildSnapshot(); snap.Jobs.Len() == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkSnapshotFullRebuild(b *testing.B)  { benchSnapshot(b, false) }
func BenchmarkSnapshotDeltaPublish(b *testing.B) { benchSnapshot(b, true) }

func BenchmarkForecastUncached(b *testing.B) {
	s, _ := benchServer(b, false)
	snap := s.Current()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := sched.ForecastFromState(snap.Procs, snap.SimNow, snap.FRunning, snap.FQueued, s.pol, snap.Resv)
		if m == nil {
			b.Fatal("no forecast")
		}
	}
}
