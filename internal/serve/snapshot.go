package serve

import (
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Snapshot is one immutable view of the whole service state, built by the
// scheduler goroutine after it finishes a step or a command batch and
// published through an atomic pointer. Read endpoints render from the
// latest snapshot and never enter the scheduler mailbox, so read throughput
// is bounded by rendering cost, not by scheduler-loop latency — and reads
// keep working while the daemon drains or after it has stopped.
//
// Everything reachable from a Snapshot is immutable once published: job
// views are value copies, slices and maps are freshly built per publication
// and never written again, and the *job.Job pointers shared with the engine
// point at structs the engine treats as read-only after submission.
type Snapshot struct {
	// Version increases by exactly one per publication; readers use it to
	// detect state changes (and the forecast cache keys on it).
	Version uint64
	// Now is the service's virtual time when the snapshot was taken (the
	// wall-clock mapping in timed modes, the engine clock otherwise).
	Now int64
	// SimNow is the engine's last processed instant: the origin the
	// forecast dry-run plans from, which never runs ahead of the events.
	SimNow int64
	// Draining is set once the daemon has begun its graceful drain.
	Draining bool

	Scheduler string
	Procs     int
	ProcsBusy int
	Pending   int

	// Queued holds the waiting jobs in policy order, Running the dispatched
	// ones in job-ID order; Jobs indexes every submitted job by ID. None of
	// the views carry forecasts — predictions are attached at render time
	// from the memoized forecast for this version.
	Queued  []JobView
	Running []JobView
	Jobs    map[int]JobView

	// Counter values at publication time.
	Submitted, Started, Resumed, Completed, Cancelled, Rejected int64
	Utilization                                                 float64
	// BusyArea is ∫ procs-in-use dt (processor·seconds of virtual time)
	// integrated up to BusyUpTo — the raw terms behind Utilization, carried
	// so a federation can merge utilizations exactly instead of averaging
	// already-divided fractions.
	BusyArea, BusyUpTo int64
	// AuditViolations is -1 when the audit wrapper is off.
	AuditViolations int64
	CatSum          [job.NumCategories]float64
	CatN            [job.NumCategories]int64

	// Forecast inputs: the dry-run over these fields reproduces exactly
	// what the mailbox path would have computed on the scheduler goroutine
	// at this state version.
	FQueued  []*job.Job
	FRunning []sched.RunningSlot
	Resv     map[int]int64
}

// buildSnapshot assembles a Snapshot of the current session state. Only the
// scheduler goroutine may call it. The version is assigned by publish;
// ephemeral snapshots built for the mailbox read path reuse the latest
// published version.
func (s *Server) buildSnapshot() *Snapshot {
	now := s.vnow()
	queued := s.sess.Queued()
	snap := &Snapshot{
		Version:         s.pub,
		Now:             now,
		SimNow:          s.sess.Now(),
		Draining:        s.drained,
		Scheduler:       s.inner.Name(),
		Procs:           s.opts.Procs,
		ProcsBusy:       s.ctr.inUse,
		Pending:         s.sess.Pending(),
		Submitted:       s.ctr.submitted,
		Started:         s.ctr.started,
		Resumed:         s.ctr.resumed,
		Completed:       s.ctr.completed,
		Cancelled:       s.ctr.cancelled,
		Rejected:        s.ctr.rejected,
		Utilization:     s.ctr.utilization(now, s.opts.Procs),
		BusyArea:        s.ctr.busyArea, // utilization() above integrated to now
		BusyUpTo:        s.ctr.lastT,
		AuditViolations: -1,
		CatSum:          s.ctr.catSum,
		CatN:            s.ctr.catN,
		FQueued:         queued,
		Resv:            sched.Reservations(s.inner, queued),
	}
	if s.aud != nil {
		rep := s.aud.Report()
		snap.AuditViolations = int64(len(rep.Violations)) + int64(rep.Truncated)
	}

	infos := s.sess.Infos()
	snap.Jobs = make(map[int]JobView, len(infos))
	for _, info := range infos {
		snap.Jobs[info.Job.ID] = makeView(info, s.opts.Thresholds)
	}
	for _, j := range sched.SortedByPolicy(queued, s.pol, snap.SimNow) {
		if v, ok := snap.Jobs[j.ID]; ok {
			snap.Queued = append(snap.Queued, v)
		}
	}
	running := s.sess.Running()
	snap.FRunning = make([]sched.RunningSlot, 0, len(running))
	for _, r := range running {
		snap.Running = append(snap.Running, makeView(r, s.opts.Thresholds))
		snap.FRunning = append(snap.FRunning, sched.RunningSlot{Width: r.Job.Width, EstEnd: r.EstEnd})
	}
	return snap
}

// publish makes the current state visible to the lock-free read path. It
// is a no-op when nothing a client could observe has changed since the
// last publication, so a scheduler wakeup that processed no events costs
// one integer comparison. Only the scheduler goroutine may call it.
func (s *Server) publish() {
	sv := s.sess.Version()
	if s.snap.Load() != nil && sv == s.pubSessVersion && !s.pubDirty {
		return
	}
	snap := s.buildSnapshot()
	s.pub++
	snap.Version = s.pub
	s.snap.Store(snap)
	s.pubSessVersion = sv
	s.pubDirty = false
}

// forecastEntry memoizes the start-time forecast for one snapshot version.
// ready is closed once pred is filled in, giving concurrent readers of the
// same version single-flight semantics: exactly one runs the dry-run, the
// rest wait on the channel.
type forecastEntry struct {
	version uint64
	ready   chan struct{}
	pred    map[int]int64
}

// forecastFor returns the start-time forecast for snap's state, running the
// conservative dry-run at most once per snapshot version no matter how many
// clients poll. Safe to call from any goroutine.
func (s *Server) forecastFor(snap *Snapshot) map[int]int64 {
	if len(snap.FQueued) == 0 {
		return nil
	}
	for {
		e := s.fc.Load()
		if e != nil && e.version == snap.Version {
			<-e.ready
			return e.pred
		}
		if e != nil && e.version > snap.Version {
			// A newer state is already cached. Don't regress the cache for
			// a reader holding an old snapshot; just compute its view.
			return s.computeForecast(snap)
		}
		ne := &forecastEntry{version: snap.Version, ready: make(chan struct{})}
		if s.fc.CompareAndSwap(e, ne) {
			ne.pred = s.computeForecast(snap)
			close(ne.ready)
			return ne.pred
		}
	}
}

// computeForecast runs the dry-run over the snapshot's captured inputs.
func (s *Server) computeForecast(snap *Snapshot) map[int]int64 {
	s.dryRuns.Add(1)
	return sched.ForecastFromState(snap.Procs, snap.SimNow, snap.FRunning, snap.FQueued, s.pol, snap.Resv)
}

// DryRuns reports how many forecast dry-runs the server has executed —
// the stress test asserts that polling an unchanged state version does not
// add any.
func (s *Server) DryRuns() int64 { return s.dryRuns.Load() }

// Current returns the latest published snapshot. A server always has one:
// New publishes the initial empty state before returning.
func (s *Server) Current() *Snapshot { return s.snap.Load() }

// withForecasts copies views and attaches predicted starts to the jobs
// that are still waiting. The input slice (usually shared with a published
// snapshot) is never modified.
func withForecasts(views []JobView, pred map[int]int64) []JobView {
	if len(views) == 0 {
		return nil
	}
	out := make([]JobView, len(views))
	copy(out, views)
	for i := range out {
		if t, ok := pred[out[i].ID]; ok {
			t := t
			out[i].PredictedStart = &t
		}
	}
	return out
}

// queueResponse renders GET /v1/queue from a snapshot plus its forecast.
func queueResponse(snap *Snapshot, pred map[int]int64) QueueResponse {
	return QueueResponse{
		Version:   snap.Version,
		Now:       snap.Now,
		Scheduler: snap.Scheduler,
		Procs:     snap.Procs,
		ProcsBusy: snap.ProcsBusy,
		Submitted: snap.Submitted,
		Pending:   snap.Pending,
		Queued:    withForecasts(snap.Queued, pred),
		Running:   snap.Running,
		Completed: snap.Completed,
		Cancelled: snap.Cancelled,
	}
}

// jobResponse renders one job's view from a snapshot, attaching the
// memoized forecast when the job is still waiting.
func (s *Server) jobResponse(snap *Snapshot, id int) (JobView, bool) {
	v, ok := snap.Jobs[id]
	if !ok {
		return JobView{}, false
	}
	if v.State == sim.StateQueued.String() || v.State == sim.StatePending.String() {
		if t, ok := s.forecastFor(snap)[id]; ok {
			t := t
			v.PredictedStart = &t
		}
	}
	return v, true
}
