package serve

import (
	"bytes"
	"encoding/json"
	"slices"
	"sync/atomic"

	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

// bodyPtr is the atomic slot a memoized response body lives in.
type bodyPtr = atomic.Pointer[bodyEntry]

// Snapshot is one immutable view of the whole service state, built by the
// scheduler goroutine after it finishes a step or a command batch and
// published through an atomic pointer. Read endpoints render from the
// latest snapshot and never enter the scheduler mailbox, so read throughput
// is bounded by rendering cost, not by scheduler-loop latency — and reads
// keep working while the daemon drains or after it has stopped.
//
// Everything reachable from a Snapshot is immutable once published: job
// views are value copies, slices are freshly built per publication and
// never written again, the job index shares layers with older snapshots
// copy-on-write (see JobIndex), and the *job.Job pointers shared with the
// engine point at structs the engine treats as read-only after submission.
type Snapshot struct {
	// Version increases by exactly one per publication; readers use it to
	// detect state changes (and the forecast cache keys on it).
	Version uint64
	// Now is the service's virtual time when the snapshot was taken (the
	// wall-clock mapping in timed modes, the engine clock otherwise).
	Now int64
	// SimNow is the engine's last processed instant: the origin the
	// forecast dry-run plans from, which never runs ahead of the events.
	SimNow int64
	// Draining is set once the daemon has begun its graceful drain.
	Draining bool

	Scheduler string
	Procs     int
	ProcsBusy int
	Pending   int

	// Running holds the dispatched jobs in job-ID order; Jobs indexes every
	// submitted job by ID; QueuedViews renders the waiting jobs in policy
	// order. None of the views carry forecasts — predictions are attached at
	// render time from the memoized forecast for this version.
	Running []JobView
	Jobs    *JobIndex

	// queued caches the policy-ordered queued views, rendered on first use
	// (QueuedViews) rather than at publication: the write path publishes far
	// more snapshots than anyone renders the queue of, so the O(queue) view
	// build — one JobView copy per waiting job plus the policy sort — runs
	// off the scheduler goroutine, and only for versions a client actually
	// reads. pol is the policy the render sorts by. The cell is the one
	// mutable slot in a published snapshot; the CAS keeps it write-once, so
	// every reader of a version sees the same slice.
	queued atomic.Pointer[[]JobView]
	pol    sched.Policy

	// Counter values at publication time.
	Submitted, Started, Resumed, Completed, Cancelled, Rejected int64
	Utilization                                                 float64
	// BusyArea is ∫ procs-in-use dt (processor·seconds of virtual time)
	// integrated up to BusyUpTo — the raw terms behind Utilization, carried
	// so a federation can merge utilizations exactly instead of averaging
	// already-divided fractions.
	BusyArea, BusyUpTo int64
	// AuditViolations is -1 when the audit wrapper is off.
	AuditViolations int64
	CatSum          [job.NumCategories]float64
	CatN            [job.NumCategories]int64

	// Forecast inputs: the dry-run over these fields reproduces exactly
	// what the mailbox path would have computed on the scheduler goroutine
	// at this state version.
	FQueued  []*job.Job
	FRunning []sched.RunningSlot
	Resv     map[int]int64
}

// JobIndex is a persistent, copy-on-write map from job ID to rendered view.
// A session accumulates every job it has ever seen, so rebuilding a flat
// map per publication costs O(total jobs) even when a batch touched three of
// them — the term PERFORMANCE.md §6 deferred and §11 removes. Instead each
// publication derives a new index from its predecessor: a shared base layer
// (never written after construction) plus a small private patch layer
// holding only the views re-rendered for this snapshot. Lookups probe the
// patch first; when the patch grows past flattenAt the layers are folded
// into a fresh base, so the amortized derivation cost is O(touched), not
// O(total).
//
// Jobs are never deleted from a session, so the index needs no tombstones.
// A nil *JobIndex behaves as empty.
type JobIndex struct {
	base  map[int]JobView // shared with ancestor snapshots; read-only
	patch map[int]JobView // this lineage's overlay; read-only once published
	n     int             // total distinct job IDs across both layers
}

// flattenAt bounds the patch layer. Deriving clones the patch (so every
// snapshot stays immutable), which costs O(|patch|) per publication; the
// bound keeps that clone constant-sized while making the O(total) flatten
// rare — amortized, each job view is copied into a base layer once per
// flattenAt/batch publications.
const flattenAt = 512

// NewJobIndex wraps an eagerly built view map as a single-layer index. The
// map must not be written after the call. Used for full rebuilds and by the
// federation's merged snapshot.
func NewJobIndex(views map[int]JobView) *JobIndex {
	return &JobIndex{base: views, n: len(views)}
}

// Get returns the view for one job ID.
func (x *JobIndex) Get(id int) (JobView, bool) {
	if x == nil {
		return JobView{}, false
	}
	if v, ok := x.patch[id]; ok {
		return v, true
	}
	v, ok := x.base[id]
	return v, ok
}

// Len reports how many jobs the index holds.
func (x *JobIndex) Len() int {
	if x == nil {
		return 0
	}
	return x.n
}

// Range calls fn for every (id, view) pair in unspecified order until fn
// returns false.
func (x *JobIndex) Range(fn func(id int, v JobView) bool) {
	if x == nil {
		return
	}
	for id, v := range x.base {
		if _, shadowed := x.patch[id]; shadowed {
			continue
		}
		if !fn(id, v) {
			return
		}
	}
	for id, v := range x.patch {
		if !fn(id, v) {
			return
		}
	}
}

// derive returns a new index that overlays patches on x, leaving x and
// every older snapshot untouched. Called only by the scheduler goroutine.
func (x *JobIndex) derive(patches map[int]JobView) *JobIndex {
	if len(x.patch)+len(patches) >= flattenAt {
		base := make(map[int]JobView, x.n+len(patches))
		for id, v := range x.base {
			base[id] = v
		}
		for id, v := range x.patch {
			base[id] = v
		}
		for id, v := range patches {
			base[id] = v
		}
		return &JobIndex{base: base, n: len(base)}
	}
	patch := make(map[int]JobView, len(x.patch)+len(patches))
	n := x.n
	for id, v := range x.patch {
		patch[id] = v
	}
	for id, v := range patches {
		if _, ok := patch[id]; !ok {
			if _, ok := x.base[id]; !ok {
				n++
			}
		}
		patch[id] = v
	}
	return &JobIndex{base: x.base, patch: patch, n: n}
}

// buildSnapshot assembles a Snapshot of the current session state by
// rendering every job from scratch. Only the scheduler goroutine may call
// it. The publish path prefers deltaSnapshot and falls back here only for
// the very first publication; the mailbox read path (the measured A/B
// baseline) calls it per read, building ephemeral snapshots that reuse the
// latest published version — and deliberately does NOT consume the
// touched-job set, which belongs to the publication lineage.
func (s *Server) buildSnapshot() *Snapshot {
	infos := s.sess.Infos()
	views := make(map[int]JobView, len(infos))
	for _, info := range infos {
		views[info.Job.ID] = makeView(info, s.opts.Thresholds)
	}
	return s.assembleSnapshot(NewJobIndex(views))
}

// deltaSnapshot assembles a Snapshot by patching prev: only the jobs the
// session touched since prev was built are re-rendered, and the job index
// is derived copy-on-write. Everything proportional to the queue (policy
// order, forecast inputs) is rebuilt — the queue is what the snapshot is
// for — but the per-publication cost no longer carries the O(total jobs)
// re-render that grew without bound as completed jobs accumulated
// (PERFORMANCE.md §11). Only the scheduler goroutine may call it, and only
// on the publication path: it drains the session's touched set.
func (s *Server) deltaSnapshot(prev *Snapshot) *Snapshot {
	jobs := prev.Jobs
	if touched := s.sess.DrainTouched(); len(touched) > 0 {
		patches := make(map[int]JobView, len(touched))
		for _, id := range touched {
			if info, ok := s.sess.Info(id); ok {
				patches[id] = makeView(info, s.opts.Thresholds)
			}
		}
		jobs = jobs.derive(patches)
	}
	return s.assembleSnapshot(jobs)
}

// assembleSnapshot builds the snapshot around a ready job index: scalars
// and counters, the queue in policy order, the running set, and the
// forecast inputs. Shared by the full and delta paths so the two are
// field-for-field identical.
func (s *Server) assembleSnapshot(jobs *JobIndex) *Snapshot {
	now := s.vnow()
	queued := s.sess.Queued()
	snap := &Snapshot{
		Version:         s.pub,
		Now:             now,
		SimNow:          s.sess.Now(),
		Draining:        s.drained,
		Scheduler:       s.inner.Name(),
		Procs:           s.opts.Procs,
		ProcsBusy:       s.ctr.inUse,
		Pending:         s.sess.Pending(),
		Submitted:       s.ctr.submitted,
		Started:         s.ctr.started,
		Resumed:         s.ctr.resumed,
		Completed:       s.ctr.completed,
		Cancelled:       s.ctr.cancelled,
		Rejected:        s.ctr.rejected,
		Utilization:     s.ctr.utilization(now, s.opts.Procs),
		BusyArea:        s.ctr.busyArea, // utilization() above integrated to now
		BusyUpTo:        s.ctr.lastT,
		AuditViolations: -1,
		CatSum:          s.ctr.catSum,
		CatN:            s.ctr.catN,
		Jobs:            jobs,
		FQueued:         queued,
		Resv:            sched.Reservations(s.inner, queued),
		pol:             s.pol,
	}
	if s.aud != nil {
		rep := s.aud.Report()
		snap.AuditViolations = int64(len(rep.Violations)) + int64(rep.Truncated)
	}
	running := s.sess.Running()
	snap.FRunning = make([]sched.RunningSlot, 0, len(running))
	for _, r := range running {
		snap.Running = append(snap.Running, makeView(r, s.opts.Thresholds))
		snap.FRunning = append(snap.FRunning, sched.RunningSlot{Width: r.Job.Width, EstEnd: r.EstEnd})
	}
	return snap
}

// QueuedViews returns the waiting jobs in policy order, rendering them on
// first use and caching the result for every later reader of this snapshot.
// Safe to call from any goroutine. Two concurrent first readers may both
// build the slice; they build identical content and the CAS keeps exactly
// one.
func (s *Snapshot) QueuedViews() []JobView {
	if p := s.queued.Load(); p != nil {
		return *p
	}
	var views []JobView
	for _, j := range sched.SortedByPolicy(s.FQueued, s.pol, s.SimNow) {
		if v, ok := s.Jobs.Get(j.ID); ok {
			views = append(views, v)
		}
	}
	if !s.queued.CompareAndSwap(nil, &views) {
		return *s.queued.Load()
	}
	return views
}

// SetQueuedViews installs pre-rendered queued views. The federation's
// merged snapshot is concatenated from shard views rather than rendered
// from an index, so it seeds the cache directly; call before the snapshot
// is shared.
func (s *Snapshot) SetQueuedViews(views []JobView) { s.queued.Store(&views) }

// publish makes the current state visible to the lock-free read path. It
// is a no-op when nothing a client could observe has changed since the
// last publication, so a scheduler wakeup that processed no events costs
// one integer comparison. Otherwise it patches the previous snapshot
// (deltaSnapshot) rather than rebuilding from every job the session has
// ever seen. Only the scheduler goroutine may call it.
func (s *Server) publish() {
	sv := s.sess.Version()
	prev := s.snap.Load()
	if prev != nil && sv == s.pubSessVersion && !s.pubDirty {
		return
	}
	var snap *Snapshot
	if prev != nil {
		snap = s.deltaSnapshot(prev)
	} else {
		snap = s.buildSnapshot()
	}
	s.pub++
	snap.Version = s.pub
	s.snap.Store(snap)
	s.pubSessVersion = sv
	s.pubDirty = false
}

// forecastEntry memoizes the start-time forecast for one snapshot version.
// ready is closed once the result fields are filled in, giving concurrent
// readers of the same version single-flight semantics: exactly one runs the
// dry-run, the rest wait on the channel.
//
// Beyond the memo, entries form an incremental chain (PERFORMANCE.md §11):
// each records the forecast inputs it was computed from plus the dry-run's
// end state (seed), and the computation for the next version extends that
// schedule with just the new arrivals — instead of re-running the dry-run
// over the whole queue — whenever the state delta is arrivals appended
// after everything already placed, which is exactly the shape every write
// batch has in a deep-queue regime. The seed's profile is mutated by the
// extension, so the successor takes it through an atomic Swap: consumed at
// most once, and a loser falls back to the full dry-run. All fields except
// seed are written before ready closes and read only after it closes.
type forecastEntry struct {
	version  uint64
	ready    chan struct{}
	pred     *forecastPred
	simNow   int64
	frunning []sched.RunningSlot
	fqueued  []*job.Job
	resv     map[int]int64
	seed     atomic.Pointer[sched.ForecastSeed]
}

// forecastPred is the forecast counterpart of JobIndex: a persistent,
// copy-on-write map from job ID to predicted start. Cloning the whole
// prediction map per version would reintroduce the O(queue) per-batch term
// the incremental chain exists to remove, so each extension derives a child
// holding only the new placements in its private patch over the shared,
// read-only base. The patch folds into a fresh base when it crosses
// flattenAt, bounding lookup depth. A nil *forecastPred is a valid empty
// forecast.
type forecastPred struct {
	base  map[int]int64 // shared with predecessor versions; read-only
	patch map[int]int64 // this version's overlay; read-only once published
	n     int           // total distinct job IDs across both layers
}

// newForecastPred wraps an eagerly computed prediction map as a single-layer
// forecast. The map must not be written after the call.
func newForecastPred(pred map[int]int64) *forecastPred {
	if len(pred) == 0 {
		return nil
	}
	return &forecastPred{base: pred, n: len(pred)}
}

// lookup returns the predicted start for one job ID.
func (p *forecastPred) lookup(id int) (int64, bool) {
	if p == nil {
		return 0, false
	}
	if t, ok := p.patch[id]; ok {
		return t, true
	}
	t, ok := p.base[id]
	return t, ok
}

// length reports how many jobs the forecast covers.
func (p *forecastPred) length() int {
	if p == nil {
		return 0
	}
	return p.n
}

// toMap flattens the layers into a plain map — the shape differential tests
// and the mailbox A/B compare against.
func (p *forecastPred) toMap() map[int]int64 {
	if p == nil {
		return nil
	}
	out := make(map[int]int64, p.n)
	for id, t := range p.base {
		out[id] = t
	}
	for id, t := range p.patch {
		out[id] = t
	}
	return out
}

// derive overlays delta on p, leaving p and every older version untouched.
func (p *forecastPred) derive(delta map[int]int64) *forecastPred {
	if p == nil {
		return newForecastPred(delta)
	}
	if len(p.patch)+len(delta) >= flattenAt {
		base := make(map[int]int64, p.n+len(delta))
		for id, t := range p.base {
			base[id] = t
		}
		for id, t := range p.patch {
			base[id] = t
		}
		for id, t := range delta {
			base[id] = t
		}
		return &forecastPred{base: base, n: len(base)}
	}
	patch := make(map[int]int64, len(p.patch)+len(delta))
	n := p.n
	for id, t := range p.patch {
		patch[id] = t
	}
	for id, t := range delta {
		if _, ok := patch[id]; !ok {
			if _, ok := p.base[id]; !ok {
				n++
			}
		}
		patch[id] = t
	}
	return &forecastPred{base: p.base, patch: patch, n: n}
}

// forecastFor returns the start-time forecast for snap's state, running the
// conservative dry-run (or its incremental extension) at most once per
// snapshot version no matter how many clients poll. Safe to call from any
// goroutine.
func (s *Server) forecastFor(snap *Snapshot) *forecastPred {
	if len(snap.FQueued) == 0 {
		return nil
	}
	for {
		e := s.fc.Load()
		if e != nil && e.version == snap.Version {
			<-e.ready
			return e.pred
		}
		if e != nil && e.version > snap.Version {
			// A newer state is already cached. Don't regress the cache for
			// a reader holding an old snapshot; just compute its view.
			return s.computeForecast(snap)
		}
		ne := &forecastEntry{version: snap.Version, ready: make(chan struct{})}
		if s.fc.CompareAndSwap(e, ne) {
			s.fillForecast(e, ne, snap)
			close(ne.ready)
			return ne.pred
		}
	}
}

// fillForecast computes snap's forecast into ne, extending predecessor
// prev's retained dry-run when the state delta permits and falling back to
// the full dry-run otherwise. Either way it seeds ne so the chain continues.
func (s *Server) fillForecast(prev, ne *forecastEntry, snap *Snapshot) {
	s.dryRuns.Add(1)
	ne.simNow = snap.SimNow
	ne.frunning = snap.FRunning
	ne.fqueued = snap.FQueued
	ne.resv = snap.Resv
	if pred, seed, ok := s.extendForecast(prev, snap); ok {
		s.fcExtends.Add(1)
		ne.pred = pred
		ne.seed.Store(seed)
		return
	}
	pred, seed := sched.ForecastFromStateSeeded(snap.Procs, snap.SimNow, snap.FRunning, snap.FQueued, s.pol, snap.Resv)
	ne.pred = newForecastPred(pred)
	ne.seed.Store(seed)
}

// extendForecast tries to derive snap's forecast by extending prev's. The
// extension is sound only when prev's placements are provably unchanged:
// same dry-run origin instant, same running set, prev's queue a pointer
// prefix of snap's (a completion, cancellation, or reorder breaks this),
// reservations unchanged for every job prev placed, and the seed still
// unconsumed. Anything else returns ok=false and the caller re-runs the
// dry-run from scratch.
func (s *Server) extendForecast(prev *forecastEntry, snap *Snapshot) (*forecastPred, *sched.ForecastSeed, bool) {
	if prev == nil || prev.version >= snap.Version {
		return nil, nil, false
	}
	<-prev.ready
	if snap.SimNow != prev.simNow ||
		len(snap.FQueued) < len(prev.fqueued) ||
		!slices.Equal(snap.FRunning, prev.frunning) {
		return nil, nil, false
	}
	for i, j := range prev.fqueued {
		if snap.FQueued[i] != j {
			return nil, nil, false
		}
	}
	newJobs := snap.FQueued[len(prev.fqueued):]
	if !resvCompatible(prev.resv, snap.Resv, newJobs) {
		return nil, nil, false
	}
	seed := prev.seed.Swap(nil)
	if seed == nil {
		return nil, nil, false
	}
	delta, ok := sched.ExtendForecast(seed, snap.SimNow, newJobs, s.pol, snap.Resv)
	if !ok {
		// The arrivals sort mid-queue; the seed was not touched, so hand it
		// back for a later successor whose delta does qualify.
		prev.seed.Store(seed)
		return nil, nil, false
	}
	return prev.pred.derive(delta), seed, true
}

// resvCompatible reports whether the reservations a previous forecast
// applied are unchanged for every job it placed. Entries for the new
// arrivals are fine — the extension applies them — but a changed or
// vanished reservation on an already-placed job would make the patched map
// diverge from a full recompute.
func resvCompatible(old, cur map[int]int64, newJobs []*job.Job) bool {
	if len(old) == 0 && len(cur) == 0 {
		return true
	}
	curNew := 0
	for _, j := range newJobs {
		if _, ok := cur[j.ID]; ok {
			curNew++
		}
	}
	if len(cur)-curNew != len(old) {
		return false
	}
	for id, t := range old {
		if ct, ok := cur[id]; !ok || ct != t {
			return false
		}
	}
	return true
}

// computeForecast runs the full dry-run over the snapshot's captured
// inputs — the path for readers holding a snapshot older than the cache,
// which must not disturb the incremental chain.
func (s *Server) computeForecast(snap *Snapshot) *forecastPred {
	s.dryRuns.Add(1)
	return newForecastPred(sched.ForecastFromState(snap.Procs, snap.SimNow, snap.FRunning, snap.FQueued, s.pol, snap.Resv))
}

// DryRuns reports how many forecast dry-runs the server has executed —
// the stress test asserts that polling an unchanged state version does not
// add any.
func (s *Server) DryRuns() int64 { return s.dryRuns.Load() }

// Current returns the latest published snapshot. A server always has one:
// New publishes the initial empty state before returning.
func (s *Server) Current() *Snapshot { return s.snap.Load() }

// bodyEntry memoizes one marshaled response body for one snapshot version —
// the forecastEntry pattern applied a layer up: once any reader has rendered
// /v1/queue or /metrics for a version, every other reader of that version
// writes the same cached bytes. ready is closed once body is filled in.
type bodyEntry struct {
	version uint64
	ready   chan struct{}
	body    []byte
}

// memoBody returns the cached body for snap's version from cache, rendering
// it at most once per version via render. The never-regress rule matches
// forecastFor: a reader holding an older snapshot than the cache renders
// privately instead of clobbering the newer entry.
func memoBody(cache *bodyPtr, snap *Snapshot, render func() []byte) []byte {
	for {
		e := cache.Load()
		if e != nil && e.version == snap.Version {
			<-e.ready
			return e.body
		}
		if e != nil && e.version > snap.Version {
			return render()
		}
		ne := &bodyEntry{version: snap.Version, ready: make(chan struct{})}
		if cache.CompareAndSwap(e, ne) {
			ne.body = render()
			close(ne.ready)
			return ne.body
		}
	}
}

// queueBody returns the exact bytes GET /v1/queue writes for snap —
// json.Marshal plus the trailing newline json.Encoder appends, so cached
// and uncached responses are byte-identical — memoized per snapshot
// version. Safe to call from any goroutine.
func (s *Server) queueBody(snap *Snapshot) []byte {
	return memoBody(&s.qbody, snap, func() []byte {
		b, err := json.Marshal(queueResponse(snap, s.forecastFor(snap)))
		if err != nil {
			// A QueueResponse is plain data; Marshal cannot fail on it.
			panic("serve: marshal queue response: " + err.Error())
		}
		return append(b, '\n')
	})
}

// metricsBody returns the Prometheus exposition body for snap, memoized per
// snapshot version. The replication layer appends its own gauges after this
// body, so memoizing the serve half stays correct for replicas.
func (s *Server) metricsBody(snap *Snapshot) []byte {
	return memoBody(&s.mbody, snap, func() []byte {
		var buf bytes.Buffer
		WriteMetrics(&buf, snap)
		return buf.Bytes()
	})
}

// withForecasts copies views and attaches predicted starts to the jobs
// that are still waiting. The input slice (usually shared with a published
// snapshot) is never modified.
func withForecasts(views []JobView, pred *forecastPred) []JobView {
	if len(views) == 0 {
		return nil
	}
	out := make([]JobView, len(views))
	copy(out, views)
	for i := range out {
		if t, ok := pred.lookup(out[i].ID); ok {
			t := t
			out[i].PredictedStart = &t
		}
	}
	return out
}

// queueResponse renders GET /v1/queue from a snapshot plus its forecast.
func queueResponse(snap *Snapshot, pred *forecastPred) QueueResponse {
	return QueueResponse{
		Version:   snap.Version,
		Now:       snap.Now,
		Scheduler: snap.Scheduler,
		Procs:     snap.Procs,
		ProcsBusy: snap.ProcsBusy,
		Submitted: snap.Submitted,
		Pending:   snap.Pending,
		Queued:    withForecasts(snap.QueuedViews(), pred),
		Running:   snap.Running,
		Completed: snap.Completed,
		Cancelled: snap.Cancelled,
	}
}

// jobResponse renders one job's view from a snapshot, attaching the
// memoized forecast when the job is still waiting.
func (s *Server) jobResponse(snap *Snapshot, id int) (JobView, bool) {
	v, ok := snap.Jobs.Get(id)
	if !ok {
		return JobView{}, false
	}
	if v.State == sim.StateQueued.String() || v.State == sim.StatePending.String() {
		if t, ok := s.forecastFor(snap).lookup(id); ok {
			t := t
			v.PredictedStart = &t
		}
	}
	return v, true
}
