package serve

// Replication: the leader half of WAL shipping, plus the server-side
// follower plumbing internal/replica drives.
//
// A leader is any server with an open journal. It streams CRC-framed
// journal lines over GET /v1/wal — the exact bytes Append wrote, so a
// follower applies what the leader committed, not a re-encoding — and
// remembers each registered follower's acknowledged position so checkpoint
// pruning keeps the segments a lagging follower still needs (the retention
// floor). When a follower's position has nonetheless been pruned, the
// endpoint falls back to a full-checkpoint resync: the newest checkpoint's
// meta line followed by its compacted ops and the tail, which the follower
// replays through the same cross-checked recovery path boot uses.
//
// A follower is a server built with Options.Follower: no scheduler loop,
// writes fenced with 421, snapshots published by an external applier
// calling ApplyRecords. Promotion — the failover path — attaches a journal,
// fences the old lineage with a term record, and lifts the write fence;
// the journal directory's flock is the mutual exclusion that makes a
// promotion race (two candidates, or a revived old leader) lose loudly
// instead of forking history.

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// logf reports replication events worth an operator's attention (follower
// expiry, forced resyncs, promotions). Tests may silence it.
var logf = log.New(os.Stderr, "", log.LstdFlags).Printf

// FollowerTTL is how long a registered follower's acknowledged position
// pins the retention floor — and keeps the follower eligible for read
// routing and quorum counting — after its last poll. An expired follower
// that comes back may find its position pruned and be forced into a full
// resync — loud, but bounded disk beats unbounded retention for a dead
// replica. Exported so internal/fed applies the same liveness rule when
// balancing reads across follower views.
const FollowerTTL = time.Minute

// walPollInterval paces the long-poll wait loop in the /v1/wal handler.
const walPollInterval = 20 * time.Millisecond

// maxWALBatch bounds how many records one /v1/wal response carries.
const maxWALBatch = 4096

// followerAck is one registered follower's replication position.
type followerAck struct {
	acked    uint64
	addr     string // advertised read URL, "" when the follower serves none
	lastSeen time.Time
}

// FollowerView is one registered follower's position as published on the
// registry's lock-free view pointer: everything a read balancer needs to
// decide eligibility — identity, advertised read address, acknowledged
// journal position, and the wall instant of the last ack (for the
// FollowerTTL liveness rule). Views are sorted by ID so consumers that
// index into them (round-robin spreading, fuzzing) are deterministic.
type FollowerView struct {
	// ID is the follower's self-chosen registration name.
	ID string
	// Addr is the read URL the follower advertised at registration; empty
	// means the follower replicates but serves no reads.
	Addr string
	// Acked is the last journal seq the follower has durably applied.
	Acked uint64
	// LastSeen is the wall time of the follower's latest /v1/wal poll.
	LastSeen time.Time
}

// followerRegistry tracks registered followers' acknowledged positions. It
// is written by HTTP goroutines serving /v1/wal, read by the scheduler
// goroutine at checkpoint time (retention floor) and commit time (quorum
// acks), and consumed lock-free by the federation read balancer through
// the published views pointer.
type followerRegistry struct {
	mu     sync.Mutex
	acks   map[string]*followerAck
	notify chan struct{} // closed on every ack; nil until a waiter or ack creates it

	// views is the lock-free publication of the registry: rebuilt under mu
	// on every mutation, read by any goroutine without taking the lock.
	views atomic.Pointer[[]FollowerView]
}

// ack records that follower id has durably applied through seq, updates
// its advertised read address, and wakes quorum waiters.
func (fr *followerRegistry) ack(id string, seq uint64, addr string, now time.Time) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.acks == nil {
		fr.acks = make(map[string]*followerAck)
	}
	a := fr.acks[id]
	if a == nil {
		a = &followerAck{}
		fr.acks[id] = a
	}
	if seq > a.acked || a.acked == 0 {
		a.acked = seq
	}
	if addr != "" {
		a.addr = addr
	}
	a.lastSeen = now
	fr.republishLocked()
	if fr.notify != nil {
		close(fr.notify)
		fr.notify = nil
	}
}

// republishLocked rebuilds the lock-free views slice. Caller holds mu.
func (fr *followerRegistry) republishLocked() {
	out := make([]FollowerView, 0, len(fr.acks))
	for id, a := range fr.acks {
		out = append(out, FollowerView{ID: id, Addr: a.addr, Acked: a.acked, LastSeen: a.lastSeen})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	fr.views.Store(&out)
}

// Views returns the latest published follower views without locking.
func (fr *followerRegistry) Views() []FollowerView {
	if p := fr.views.Load(); p != nil {
		return *p
	}
	return nil
}

// floor returns the minimum acknowledged seq across live followers —
// the retention floor — expiring silent ones.
func (fr *followerRegistry) floor(now time.Time) uint64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	min := ^uint64(0)
	expired := false
	for id, a := range fr.acks {
		if now.Sub(a.lastSeen) > FollowerTTL {
			logf("serve: follower %q silent for %s, dropping its retention pin at seq %d", id, now.Sub(a.lastSeen).Round(time.Second), a.acked)
			delete(fr.acks, id)
			expired = true
			continue
		}
		if a.acked < min {
			min = a.acked
		}
	}
	if expired {
		fr.republishLocked()
	}
	return min
}

// liveAckedLocked counts followers whose acknowledged position covers seq
// AND whose last poll is within FollowerTTL of now. The liveness re-check
// is load-bearing: a registry entry left behind by a follower that died
// (or went silent) mid-batch must not satisfy a quorum — its process may
// hold nothing, so counting it would acknowledge a write that exists on
// fewer replicas than the operator asked for. Caller holds mu.
func (fr *followerRegistry) liveAckedLocked(seq uint64, now time.Time) int {
	n := 0
	for _, a := range fr.acks {
		if a.acked >= seq && now.Sub(a.lastSeen) <= FollowerTTL {
			n++
		}
	}
	return n
}

// waitQuorum blocks until k followers are live (per FollowerTTL, re-read
// at every check — never from a stale count taken when the batch was
// staged) and have acknowledged seq, or until timeout. It returns whether
// the quorum was met. Called by the scheduler goroutine between a commit
// and the release of the batch's done-channels; acks arrive on HTTP
// goroutines, which wake this wait through the notify channel.
func (fr *followerRegistry) waitQuorum(seq uint64, k int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		now := time.Now()
		fr.mu.Lock()
		if fr.liveAckedLocked(seq, now) >= k {
			fr.mu.Unlock()
			return true
		}
		if fr.notify == nil {
			fr.notify = make(chan struct{})
		}
		ch := fr.notify
		fr.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
			// One last look: an ack may have landed as the timer fired.
			fr.mu.Lock()
			ok := fr.liveAckedLocked(seq, time.Now()) >= k
			fr.mu.Unlock()
			return ok
		}
	}
}

// FollowerStatus is one registered follower's view in ReplicationInfo.
type FollowerStatus struct {
	// ID is the follower's registration name; AckedSeq its acknowledged
	// journal position; AgeSec the seconds since its last poll.
	ID       string  `json:"id"`
	AckedSeq uint64  `json:"acked_seq"`
	AgeSec   float64 `json:"age_sec"`
	// Addr is the read URL the follower advertised, if any.
	Addr string `json:"addr,omitempty"`
}

// snapshot lists the registered followers for the debug endpoint.
func (fr *followerRegistry) snapshot(now time.Time) []FollowerStatus {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]FollowerStatus, 0, len(fr.acks))
	for id, a := range fr.acks {
		out = append(out, FollowerStatus{ID: id, AckedSeq: a.acked, AgeSec: now.Sub(a.lastSeen).Seconds(), Addr: a.addr})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// ReplicationInfo is the GET /v1/debug/replication payload. A leader fills
// the journal-side fields; internal/replica renders the follower-side ones.
type ReplicationInfo struct {
	// Role is "leader" (journal open), "follower" (replicating), or
	// "standalone" (no journal, nothing to ship).
	Role string `json:"role"`
	// Term is the current leadership term: 0 for a lineage that has never
	// failed over, incremented by every promotion.
	Term uint64 `json:"term"`
	// Seq is the last durable journal record (leader side).
	Seq uint64 `json:"seq,omitempty"`
	// Source is the leader a follower replicates from.
	Source string `json:"source,omitempty"`
	// AppliedSeq/LeaderSeq/LagOps/LagVirtual describe a follower's position
	// relative to its leader; LagVirtual is in virtual seconds.
	AppliedSeq uint64 `json:"applied_seq,omitempty"`
	LeaderSeq  uint64 `json:"leader_seq,omitempty"`
	LagOps     uint64 `json:"lag_ops"`
	LagVirtual int64  `json:"lag_virtual_time"`
	// Resyncs counts full-checkpoint resyncs: served (leader) or performed
	// (follower). Nonzero means retention lost the incremental race.
	Resyncs int64 `json:"resyncs,omitempty"`
	// RetainFloor is the leader's current pruning floor (only meaningful
	// while followers are registered).
	RetainFloor uint64           `json:"retain_floor,omitempty"`
	Followers   []FollowerStatus `json:"followers,omitempty"`
	// AckQuorum is the number of follower confirmations each commit batch
	// waits for before acknowledging writes (0: leader-ack only).
	AckQuorum int `json:"ack_quorum,omitempty"`
	// QuorumDegraded counts commit batches acknowledged on the leader's
	// fsync alone after the quorum wait timed out (degrade mode);
	// QuorumRejected counts batches whose writes were refused with 503
	// instead (strict mode). Either being nonzero means follower
	// confirmations are not keeping up with the write load.
	QuorumDegraded int64 `json:"quorum_degraded,omitempty"`
	QuorumRejected int64 `json:"quorum_rejected,omitempty"`
	// Promoted marks a follower that has taken over as leader.
	Promoted bool `json:"promoted,omitempty"`
}

// Replication reports this server's leader-side replication state.
func (s *Server) Replication() ReplicationInfo {
	info := ReplicationInfo{Role: "standalone", Term: s.termPub.Load()}
	if s.followerMode.Load() {
		info.Role = "follower"
		info.Source = s.opts.Follower
		return info
	}
	if dir := s.walDirPub.Load(); dir != nil {
		now := time.Now()
		info.Role = "leader"
		info.Seq = s.walSeq.Load()
		info.Resyncs = s.replResyncs.Load()
		info.Followers = s.flw.snapshot(now)
		if f := s.flw.floor(now); f != ^uint64(0) {
			info.RetainFloor = f
		}
		info.AckQuorum = s.opts.Durability.AckQuorum
		info.QuorumDegraded = s.quorumDegraded.Load()
		info.QuorumRejected = s.quorumRejected.Load()
	}
	return info
}

// FollowerViews returns the latest published view of this leader's
// registered followers — the lock-free feed the federation read balancer
// spreads reads from. Safe from any goroutine; the slice is immutable.
func (s *Server) FollowerViews() []FollowerView { return s.flw.Views() }

// DurableSeq returns the last durable journal sequence number (0 without a
// journal). Safe from any goroutine.
func (s *Server) DurableSeq() uint64 { return s.walSeq.Load() }

// Term returns the current leadership term. Safe from any goroutine.
func (s *Server) Term() uint64 { return s.termPub.Load() }

// followerWriteError is the 421 every write on a follower gets: the
// request reached a server that cannot own it, and the body names the one
// that can.
func (s *Server) followerWriteError(verb string) error {
	return &clientError{
		code: http.StatusMisdirectedRequest,
		err:  fmt.Errorf("serve: follower replica of %s: %s writes on the leader", s.opts.Follower, verb),
	}
}

// ApplyRecords applies a batch of journaled operations from an external
// source — a follower's replication stream — and publishes one snapshot
// for the whole batch, mirroring the leader's one-publish-per-commit-batch
// cadence. Only the applier goroutine may call it, never concurrently with
// a running scheduler loop.
func (s *Server) ApplyRecords(recs []wal.Record) error {
	for _, r := range recs {
		if err := s.apply(r); err != nil {
			return fmt.Errorf("serve: apply record seq %d: %w", r.Seq, err)
		}
		s.history = wal.Coalesce(s.history, r)
	}
	s.walVer = s.sess.Version()
	s.publish()
	return nil
}

// Bootstrap replays a loaded journal state into a fresh, never-Run server
// — the follower's full-resync path. It runs the same cross-checked
// recovery boot uses on its own journal (state hash, clock, counters), so
// a resync lands byte-identically where the leader's checkpoint stood.
func (s *Server) Bootstrap(st *wal.State) error {
	if err := s.recover(st); err != nil {
		return err
	}
	s.publish()
	return nil
}

// Promote turns a follower into a leader. dir is the journal to own from
// here on: the leader's own directory for a shared-disk takeover (the
// flock is the fence — a still-live leader makes Open fail with
// ErrLocked, and the promotion is refused), or an empty/fresh directory
// that gets seeded with the follower's replicated history. applied is the
// last seq the applier has fed through ApplyRecords; any unapplied tail
// found in the journal is replayed first, so nothing acknowledged by the
// old leader is lost. The new lineage is fenced with a term record and an
// immediate checkpoint. With dir == "" the follower promotes in-memory
// only. The caller must not be running ApplyRecords concurrently, and
// should start Run after Promote returns.
func (s *Server) Promote(dir string, fsync bool, applied uint64) (uint64, error) {
	if !s.followerMode.Load() {
		return 0, errors.New("serve: not a follower")
	}
	term := s.termPub.Load() + 1
	if dir != "" {
		l, st, err := wal.Open(dir, wal.Options{Fsync: fsync, Notify: s.notifyAppend})
		if err != nil {
			return 0, fmt.Errorf("serve: promote: %w", err)
		}
		ckptSeq := uint64(0)
		if st.Checkpoint != nil {
			ckptSeq = st.Checkpoint.Seq
			if got, want := s.config(), st.Checkpoint.Config; got != want {
				l.Close()
				return 0, fmt.Errorf("serve: promote: journal %s was written under %+v, follower is configured %+v", dir, want, got)
			}
		}
		switch {
		case st.NextSeq == 1 && applied > 0:
			// Fresh directory: seed the new lineage with the follower's
			// replicated history (Append assigns it fresh contiguous seqs).
			if err := l.Append(s.history); err != nil {
				l.Close()
				return 0, fmt.Errorf("serve: promote: seeding journal: %w", err)
			}
		case applied < ckptSeq:
			l.Close()
			return 0, fmt.Errorf("serve: promote: follower applied through seq %d but the journal's checkpoint covers %d — resync before promoting", applied, ckptSeq)
		default:
			// Shared-directory takeover: finish replaying whatever tail the
			// dead leader committed past our applied position.
			for _, r := range st.Tail {
				if r.Seq <= applied {
					continue
				}
				if err := s.apply(r); err != nil {
					l.Close()
					return 0, fmt.Errorf("serve: promote: finishing tail replay at seq %d: %w", r.Seq, err)
				}
				s.history = wal.Coalesce(s.history, r)
			}
		}
		s.log = l
		s.ckptAt = time.Now()
		s.note(wal.Record{Op: wal.OpTerm, Term: term})
		if err := s.commitWAL(); err != nil {
			return 0, err
		}
		if err := s.checkpoint(); err != nil {
			return 0, err
		}
		s.walDirPub.Store(&dir)
	}
	s.termPub.Store(term)
	s.walVer = s.sess.Version()
	s.followerMode.Store(false)
	s.publish()
	logf("serve: promoted to leader (term %d, journal %q, seq %d)", term, dir, s.walSeq.Load())
	return term, nil
}

// ServeWAL is the leader's journal-shipping endpoint:
//
//	GET /v1/wal?from=N[&follower=ID][&addr=URL][&wait=DUR][&max=N]
//
// It streams CRC-framed journal lines starting at seq N (text/plain, the
// exact bytes on disk). With follower=ID the caller's position (N-1) is
// registered for the retention floor, for quorum-ack counting, and — when
// addr=URL names the follower's own read endpoint — for the federation
// read balancer, which will route eligible reads to that URL. With wait, an up-to-date caller
// long-polls until new records land or the wait expires. When N has been
// pruned the response is a full-checkpoint resync instead, marked with
// X-Schedd-Resync: 1: one meta line, then the checkpoint's compacted ops
// and the tail. Every response carries X-Schedd-Seq (last durable seq),
// X-Schedd-Term, and X-Schedd-Now (published virtual time) so followers
// can measure lag. Exported so internal/fed can mount per-shard streams.
func (s *Server) ServeWAL(w http.ResponseWriter, r *http.Request) {
	dirp := s.walDirPub.Load()
	if dirp == nil {
		WriteJSON(w, http.StatusNotFound, errorResponse{Error: "serve: no journal to replicate (daemon is in-memory or an unpromoted follower)"})
		return
	}
	dir := *dirp
	q := r.URL.Query()
	from := uint64(1)
	if v := q.Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n < 1 {
			WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad from seq"})
			return
		}
		from = n
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad wait duration"})
			return
		}
		if d > 30*time.Second {
			d = 30 * time.Second
		}
		wait = d
	}
	max := maxWALBatch
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad max"})
			return
		}
		if n < max {
			max = n
		}
	}
	if id := q.Get("follower"); id != "" {
		s.flw.ack(id, from-1, q.Get("addr"), time.Now())
	}
	if from > s.walSeq.Load()+1 {
		WriteJSON(w, http.StatusConflict, errorResponse{Error: fmt.Sprintf(
			"serve: follower is ahead of this journal (from %d, durable %d) — diverged lineage?", from, s.walSeq.Load())})
		return
	}

	deadline := time.Now().Add(wait)
	tl := wal.NewTailer(dir, from-1)
	for {
		recs, err := tl.Next(max)
		if errors.Is(err, wal.ErrGone) {
			s.serveResync(w, r, dir, from)
			return
		}
		if err != nil {
			WriteJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		if len(recs) > 0 || time.Now().After(deadline) {
			s.walHeaders(w)
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			var buf []byte
			for _, rec := range recs {
				if buf, err = wal.EncodeRecord(buf, rec); err != nil {
					WriteJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
					return
				}
			}
			w.Write(buf)
			return
		}
		// Wake on the next commit's append notification rather than only on
		// the poll tick: long-polling followers see new records (and can
		// confirm them for a quorum) within a round-trip of the append, not
		// within walPollInterval. The poll tick stays as a fallback for the
		// rare append that slips between the Next call and the channel load.
		select {
		case <-r.Context().Done():
			return
		case <-s.appendNotify():
		case <-time.After(walPollInterval):
		}
	}
}

// serveResync ships the newest checkpoint plus tail — the follower's
// incremental position was pruned, so it must rebuild from scratch. This
// is the loud path: pruning outran a follower the retention floor did not
// (or could not) cover.
func (s *Server) serveResync(w http.ResponseWriter, r *http.Request, dir string, from uint64) {
	st, err := wal.Load(dir)
	if err != nil {
		WriteJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if st.Checkpoint == nil {
		WriteJSON(w, http.StatusInternalServerError, errorResponse{Error: "serve: journal pruned with no checkpoint — corrupt directory"})
		return
	}
	n := s.replResyncs.Add(1)
	logf("serve: follower %q at seq %d forced into full-checkpoint resync (checkpoint %d, resync #%d)",
		r.URL.Query().Get("follower"), from-1, st.Checkpoint.Seq, n)
	buf, err := wal.EncodeMeta(nil, *st.Checkpoint)
	if err != nil {
		WriteJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	for _, rec := range st.Ops() {
		if buf, err = wal.EncodeRecord(buf, rec); err != nil {
			WriteJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
	}
	s.walHeaders(w)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Schedd-Resync", "1")
	w.Header().Set("X-Schedd-Ckpt", strconv.FormatUint(st.Checkpoint.Seq, 10))
	w.Write(buf)
}

// walHeaders attaches the leader-position headers every /v1/wal response
// carries.
func (s *Server) walHeaders(w http.ResponseWriter) {
	h := w.Header()
	h.Set("X-Schedd-Seq", strconv.FormatUint(s.walSeq.Load(), 10))
	h.Set("X-Schedd-Term", strconv.FormatUint(s.termPub.Load(), 10))
	if snap := s.snap.Load(); snap != nil {
		h.Set("X-Schedd-Now", strconv.FormatInt(snap.SimNow, 10))
	}
}

// handleReplication serves GET /v1/debug/replication.
func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.Replication())
}
