package serve

import (
	"math"
	"time"
)

// Clock maps wall-clock time onto the simulation's virtual seconds. Three
// modes cover the service's uses:
//
//   - speed == 1: real time — one virtual second per wall second, the mode
//     a daemon scheduling real submissions runs in.
//   - speed > 1 (or any other positive value): accelerated (or slowed)
//     replay — an SWF trace spanning months plays back in minutes.
//   - speed <= 0: as-fast-as-possible — virtual time jumps straight to the
//     next event, the mode tests, smoke runs and drains use.
//
// The zero time origin is fixed when the server starts; virtual time is
// base + elapsed·speed, truncated to whole seconds (the engine's unit).
type Clock struct {
	start time.Time
	base  int64
	speed float64
}

// NewClock starts a clock at virtual second base, ticking at speed from
// wall instant now. speed <= 0 builds an as-fast-as-possible clock.
func NewClock(base int64, speed float64, now time.Time) *Clock {
	return &Clock{start: now, base: base, speed: speed}
}

// Max reports whether the clock runs in as-fast-as-possible mode.
func (c *Clock) Max() bool { return c.speed <= 0 }

// Now returns the virtual second at wall instant wall. In Max mode there
// is no meaningful mapping; callers use the session's own time instead.
func (c *Clock) Now(wall time.Time) int64 {
	if c.Max() {
		return c.base
	}
	return c.base + int64(wall.Sub(c.start).Seconds()*c.speed)
}

// WallUntil returns how long to sleep from wall instant wall until virtual
// second vt is reached. It never returns a negative duration, and waits that
// overflow a Duration (a far-off event under a very slow clock) saturate to
// the maximum instead of wrapping negative — the wrap made the scheduler
// loop busy-spin on a timer that fired instantly, forever.
func (c *Clock) WallUntil(vt int64, wall time.Time) time.Duration {
	if c.Max() {
		return 0
	}
	secs := float64(vt-c.base)/c.speed - wall.Sub(c.start).Seconds()
	if secs <= 0 {
		return 0
	}
	if secs >= float64(math.MaxInt64/time.Second) {
		return math.MaxInt64
	}
	return time.Duration(secs * float64(time.Second))
}
