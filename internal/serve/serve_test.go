package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestClockTimed(t *testing.T) {
	start := time.Now()
	c := NewClock(100, 2.0, start)
	if c.Max() {
		t.Fatal("speed 2 is not max mode")
	}
	if got := c.Now(start.Add(3 * time.Second)); got != 106 {
		t.Fatalf("Now = %d, want 106", got)
	}
	if got := c.WallUntil(104, start); got != 2*time.Second {
		t.Fatalf("WallUntil = %v, want 2s", got)
	}
	if got := c.WallUntil(90, start); got != 0 {
		t.Fatalf("WallUntil past = %v, want 0", got)
	}
}

func TestClockMax(t *testing.T) {
	c := NewClock(7, 0, time.Now())
	if !c.Max() {
		t.Fatal("speed 0 should be max mode")
	}
	if c.WallUntil(1<<40, time.Now()) != 0 {
		t.Fatal("max clock never sleeps")
	}
}

// startServer runs s in the background and returns a cancel-and-wait
// function handing back Run's error.
func startServer(t *testing.T, s *Server) (stop func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	return func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("server did not stop")
			return nil
		}
	}
}

// frozenServer builds a server whose virtual clock effectively never
// advances on its own (speed ≈ 0 but timed), so tests control the
// schedule purely through submissions.
func frozenServer(t *testing.T, opts Options) (*Server, func() error) {
	t.Helper()
	if opts.Speed == 0 {
		opts.Speed = 1e-9
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, startServer(t, s)
}

func doJSON(t *testing.T, h http.Handler, method, path string, body, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad body %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

func TestServiceSubmitForecastCancel(t *testing.T) {
	s, stop := frozenServer(t, Options{Procs: 8, Scheduler: "easy", Policy: "FCFS", Audit: true})
	h := s.Handler()

	var j1, j2, j3 JobView
	if rec := doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 8, Runtime: 100}, &j1); rec.Code != 201 {
		t.Fatalf("submit 1: %d %s", rec.Code, rec.Body.String())
	}
	if j1.State != "running" || j1.Start == nil || *j1.Start != 0 {
		t.Fatalf("job 1 should start immediately: %+v", j1)
	}
	if rec := doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 8, Runtime: 50, Estimate: 60}, &j2); rec.Code != 201 {
		t.Fatalf("submit 2: %d", rec.Code)
	}
	if j2.State != "queued" || j2.PredictedStart == nil || *j2.PredictedStart != 100 {
		t.Fatalf("job 2 should queue with forecast 100: %+v", j2)
	}
	if rec := doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 4, Runtime: 10}, &j3); rec.Code != 201 {
		t.Fatalf("submit 3: %d", rec.Code)
	}
	// The dry-run stacks j3 behind j2's full-width reservation.
	if j3.PredictedStart == nil || *j3.PredictedStart != 160 {
		t.Fatalf("job 3 forecast: %+v", j3)
	}

	// Width wider than the machine is a client error.
	if rec := doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 9, Runtime: 10}, nil); rec.Code != 400 {
		t.Fatalf("too-wide submit: %d", rec.Code)
	}

	// Cancelling the queued j2 moves j3's forecast up.
	if rec := doJSON(t, h, "DELETE", fmt.Sprintf("/v1/jobs/%d", j2.ID), nil, nil); rec.Code != 204 {
		t.Fatalf("cancel 2: %d", rec.Code)
	}
	var st JobView
	if rec := doJSON(t, h, "GET", fmt.Sprintf("/v1/jobs/%d", j3.ID), nil, &st); rec.Code != 200 {
		t.Fatalf("stat 3: %d", rec.Code)
	}
	if st.PredictedStart == nil || *st.PredictedStart != 100 {
		t.Fatalf("job 3 forecast after cancel: %+v", st)
	}

	// Running and unknown jobs are not cancellable.
	if rec := doJSON(t, h, "DELETE", fmt.Sprintf("/v1/jobs/%d", j1.ID), nil, nil); rec.Code != 409 {
		t.Fatalf("cancel running: %d", rec.Code)
	}
	if rec := doJSON(t, h, "DELETE", "/v1/jobs/999", nil, nil); rec.Code != 404 {
		t.Fatalf("cancel unknown: %d", rec.Code)
	}
	if rec := doJSON(t, h, "GET", "/v1/jobs/999", nil, nil); rec.Code != 404 {
		t.Fatalf("stat unknown: %d", rec.Code)
	}

	var q QueueResponse
	if rec := doJSON(t, h, "GET", "/v1/queue", nil, &q); rec.Code != 200 {
		t.Fatalf("queue: %d", rec.Code)
	}
	if q.ProcsBusy != 8 || len(q.Running) != 1 || len(q.Queued) != 1 || q.Cancelled != 1 {
		t.Fatalf("queue snapshot: %+v", q)
	}

	var hz healthResponse
	if rec := doJSON(t, h, "GET", "/healthz", nil, &hz); rec.Code != 200 || hz.Status != "ok" {
		t.Fatalf("healthz: %d %+v", rec.Code, hz)
	}

	rec := doJSON(t, h, "GET", "/metrics", nil, nil)
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	for _, want := range []string{
		"schedd_jobs_submitted_total 3",
		"schedd_jobs_cancelled_total 1",
		"schedd_jobs_rejected_total 1",
		"schedd_queue_depth 1",
		"schedd_procs_busy 8",
		"schedd_audit_violations 0",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("metrics missing %q in:\n%s", want, rec.Body.String())
		}
	}

	// Graceful drain finishes the two surviving jobs with a clean audit.
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ps := s.sess.Placements()
	if len(ps) != 2 {
		t.Fatalf("placements after drain: %+v", ps)
	}
	if ps[1].Job.ID != j3.ID || ps[1].Start != 100 {
		t.Fatalf("j3 placement: %+v", ps[1])
	}

	// The service refuses work after shutdown.
	if rec := doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 1, Runtime: 1}, nil); rec.Code != 503 {
		t.Fatalf("submit after stop: %d", rec.Code)
	}
}

func TestServiceCompletedJobReportsSlowdown(t *testing.T) {
	s, stop := frozenServer(t, Options{Procs: 4, Scheduler: "conservative", Audit: true})
	h := s.Handler()
	var v JobView
	doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 4, Runtime: 30}, &v)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	// Query the drained server state directly (the HTTP surface is down).
	info, ok := s.sess.Info(v.ID)
	if !ok || info.State != sim.StateDone {
		t.Fatalf("job not done after drain: %+v", info)
	}
	view := makeView(info, s.opts.Thresholds)
	if view.Slowdown == nil || *view.Slowdown != 1 {
		t.Fatalf("no-wait job should have slowdown 1: %+v", view)
	}
}

func TestServiceBadRequests(t *testing.T) {
	s, stop := frozenServer(t, Options{Procs: 4})
	defer stop()
	h := s.Handler()
	if rec := doJSON(t, h, "GET", "/v1/jobs/xyz", nil, nil); rec.Code != 400 {
		t.Fatalf("bad id: %d", rec.Code)
	}
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("bad JSON: %d", rec.Code)
	}
	if rec := doJSON(t, h, "POST", "/v1/jobs", SubmitRequest{Width: 0, Runtime: 5}, nil); rec.Code != 400 {
		t.Fatalf("zero width: %d", rec.Code)
	}
}

// TestServiceReplayEquivalence is the end-to-end acceptance gate: replaying
// a synthetic workload through the daemon under an as-fast-as-possible
// clock must place every job exactly where the offline batch run does, for
// every scheduler kind, with the audit wrapper silent.
func TestServiceReplayEquivalence(t *testing.T) {
	m, err := workload.NewSDSC(0.9)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.Generate(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := workload.ApplyEstimates(raw, workload.Actual{}, 4)
	pol, err := sched.PolicyByName("FCFS")
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range sched.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			mk, err := sched.MakerFor(kind, pol)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sim.Run(sim.Machine{Procs: m.Procs}, jobs, mk(m.Procs), nil)
			if err != nil {
				t.Fatal(err)
			}
			byID := make(map[int]sim.Placement, len(want))
			for _, p := range want {
				byID[p.Job.ID] = p
			}

			s, err := New(Options{Procs: m.Procs, Scheduler: kind, Audit: true, Speed: -1})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Preload(jobs); err != nil {
				t.Fatal(err)
			}
			stop := startServer(t, s)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			// The max-speed clock drains the replay almost immediately;
			// poll health until nothing is pending.
			deadline := time.Now().Add(10 * time.Second)
			for {
				var hz healthResponse
				getJSON(t, ts.URL+"/healthz", &hz)
				if hz.Pending == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("replay did not finish: %+v", hz)
				}
				time.Sleep(10 * time.Millisecond)
			}

			for _, j := range jobs {
				var v JobView
				getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, j.ID), &v)
				p := byID[j.ID]
				if v.State != "done" || v.Start == nil || v.End == nil {
					t.Fatalf("job %d not done: %+v", j.ID, v)
				}
				if *v.Start != p.Start || *v.End != p.End {
					t.Fatalf("job %d: daemon (%d,%d) vs batch (%d,%d)",
						j.ID, *v.Start, *v.End, p.Start, p.End)
				}
			}

			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if !strings.Contains(string(body), "schedd_audit_violations 0") {
				t.Fatalf("audit violations reported:\n%s", body)
			}
			if err := stop(); err != nil {
				t.Fatalf("drain: %v", err)
			}
		})
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{Procs: 0}); err == nil {
		t.Fatal("want error for zero procs")
	}
	if _, err := New(Options{Procs: 4, Scheduler: "nope"}); err == nil {
		t.Fatal("want error for unknown scheduler")
	}
	if _, err := New(Options{Procs: 4, Policy: "nope"}); err == nil {
		t.Fatal("want error for unknown policy")
	}
}

// TestDebugMountsPprof checks that Options.Debug exposes the runtime
// profiler on the API mux — and that without it the endpoints 404, since
// they leak stacks and heap contents.
func TestDebugMountsPprof(t *testing.T) {
	on, err := New(Options{Procs: 4, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	on.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("debug on: GET /debug/pprof/ = %d, want 200", rec.Code)
	}

	off, err := New(Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 404 {
		t.Fatalf("debug off: GET /debug/pprof/ = %d, want 404", rec.Code)
	}
}
