package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/job"
	"repro/internal/sched"
)

// indexContents flattens a JobIndex into a plain map for comparison.
func indexContents(x *JobIndex) map[int]JobView {
	out := make(map[int]JobView, x.Len())
	x.Range(func(id int, v JobView) bool {
		out[id] = v
		return true
	})
	return out
}

// TestJobIndexDerive pins the copy-on-write index: derivation must layer
// without disturbing ancestors, Len must count distinct IDs across layers,
// and crossing flattenAt must fold the layers without changing contents.
func TestJobIndexDerive(t *testing.T) {
	base := map[int]JobView{1: {ID: 1, State: "queued"}, 2: {ID: 2, State: "running"}}
	x0 := NewJobIndex(base)
	x1 := x0.derive(map[int]JobView{2: {ID: 2, State: "done"}, 3: {ID: 3, State: "queued"}})

	if got := x0.Len(); got != 2 {
		t.Fatalf("ancestor Len = %d after derive, want 2", got)
	}
	if v, _ := x0.Get(2); v.State != "running" {
		t.Fatalf("ancestor view mutated: job 2 state %q", v.State)
	}
	if got := x1.Len(); got != 3 {
		t.Fatalf("derived Len = %d, want 3", got)
	}
	if v, _ := x1.Get(2); v.State != "done" {
		t.Fatalf("derived view not patched: job 2 state %q", v.State)
	}
	if _, ok := x1.Get(4); ok {
		t.Fatal("Get invented job 4")
	}

	// Grow past flattenAt one small patch at a time so the fold triggers
	// mid-lineage, then verify contents against an eagerly built map.
	want := indexContents(x1)
	x := x1
	for id := 10; id < 10+2*flattenAt; id += 2 {
		p := map[int]JobView{
			id:     {ID: id, State: "queued"},
			id + 1: {ID: id + 1, State: "running"},
		}
		for k, v := range p {
			want[k] = v
		}
		x = x.derive(p)
	}
	if x.patch != nil && len(x.patch) >= flattenAt {
		t.Fatalf("patch layer grew to %d entries, flatten never fired", len(x.patch))
	}
	if got := indexContents(x); !reflect.DeepEqual(got, want) {
		t.Fatalf("flattened contents diverge: %d entries vs %d wanted", len(got), len(want))
	}
	if got := x.Len(); got != len(want) {
		t.Fatalf("Len = %d, want %d", got, len(want))
	}
	// A nil index is a valid empty one (fed merges guard on it).
	var nilIdx *JobIndex
	if nilIdx.Len() != 0 {
		t.Fatal("nil index has nonzero Len")
	}
	if _, ok := nilIdx.Get(1); ok {
		t.Fatal("nil index returned a view")
	}
	nilIdx.Range(func(int, JobView) bool { t.Fatal("nil index ranged"); return false })
}

// normalizeSnap projects a snapshot onto its comparable content, dropping
// the publication version (the full rebuild is never published, so its
// version lags by construction).
func normalizeSnap(s *Snapshot) map[string]any {
	return map[string]any{
		"now":      s.Now,
		"simnow":   s.SimNow,
		"draining": s.Draining,
		"sched":    s.Scheduler,
		"procs":    s.Procs,
		"busy":     s.ProcsBusy,
		"pending":  s.Pending,
		"queued":   s.QueuedViews(),
		"running":  s.Running,
		"jobs":     indexContents(s.Jobs),
		"counters": []int64{s.Submitted, s.Started, s.Resumed, s.Completed, s.Cancelled, s.Rejected},
		"util":     s.Utilization,
		"busyArea": s.BusyArea,
		"busyUpTo": s.BusyUpTo,
		"audit":    s.AuditViolations,
		"catSum":   s.CatSum,
		"catN":     s.CatN,
		"fqueued":  s.FQueued,
		"frunning": s.FRunning,
		"resv":     s.Resv,
	}
}

// TestDeltaSnapshotMatchesFull is the serving-layer differential suite for
// delta publication (PERFORMANCE.md §11): after every batch of session
// mutations, the snapshot published by the copy-on-write delta path must be
// field-for-field identical to a from-scratch rebuild of the same state —
// including job views re-rendered for completions, cancellations crossing
// the flatten threshold, and queue/forecast inputs.
func TestDeltaSnapshotMatchesFull(t *testing.T) {
	s, err := New(Options{Procs: 8, Scheduler: "easy", Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the session directly: Run never starts, so this goroutine owns
	// the scheduler state exactly like the loop would.
	id := 0
	now := int64(0)
	submit := func(width int, runtime int64) {
		id++
		j := &job.Job{ID: id, Arrival: now, Runtime: runtime, Estimate: runtime + 30, Width: width}
		if err := s.sess.Submit(j); err != nil {
			t.Fatalf("submit %d: %v", id, err)
		}
		s.ctr.submitted++
	}
	check := func(step string) {
		t.Helper()
		s.publish()
		delta := s.Current()
		full := s.buildSnapshot()
		if !reflect.DeepEqual(normalizeSnap(delta), normalizeSnap(full)) {
			t.Fatalf("%s: delta snapshot diverges from full rebuild\ndelta: %+v\nfull:  %+v",
				step, normalizeSnap(delta), normalizeSnap(full))
		}
	}

	check("initial")
	// Enough batches to push the patch layer over flattenAt several times,
	// with completions (existing-job re-renders), mid-stream arrivals and
	// cancels mixed in.
	for round := 0; round < 40; round++ {
		for k := 0; k < 20; k++ {
			submit(1+(id*7)%8, int64(40+(id*13)%200))
		}
		if err := s.sess.AdvanceTo(now); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("round %d arrivals", round))
		if round%3 == 1 {
			victim := id - 5
			if s.sess.Cancel(victim) {
				s.ctr.cancelled++
			}
			check(fmt.Sprintf("round %d cancel", round))
		}
		now += int64(60 + round%40)
		if err := s.sess.AdvanceTo(now); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("round %d advance", round))
	}
	// Drain everything so the terminal all-done state is compared too.
	if err := s.sess.AdvanceTo(now + 1_000_000); err != nil {
		t.Fatal(err)
	}
	check("drained")
	if s.Current().Completed == 0 {
		t.Fatal("scenario completed no jobs; the delta path was never stressed")
	}
}

// TestForecastChainMatchesFull is the differential suite for the
// incremental forecast chain (PERFORMANCE.md §11): at every state version —
// across arrival-only batches (the extension path), cancellations and
// completions (prefix breaks), and clock advances (origin changes) — the
// chained forecast must equal a from-scratch ForecastFromState over the same
// snapshot, and the chain must have actually engaged on the arrival-only
// batches or the test is vacuous.
func TestForecastChainMatchesFull(t *testing.T) {
	for _, kind := range []string{"easy", "conservative"} {
		t.Run(kind, func(t *testing.T) {
			s, err := New(Options{Procs: 8, Scheduler: kind})
			if err != nil {
				t.Fatal(err)
			}
			id := 0
			now := int64(0)
			submit := func(width int, runtime int64) {
				id++
				j := &job.Job{ID: id, Arrival: now, Runtime: runtime, Estimate: runtime + 30, Width: width}
				if err := s.sess.Submit(j); err != nil {
					t.Fatalf("submit %d: %v", id, err)
				}
				s.ctr.submitted++
			}
			check := func(step string) {
				t.Helper()
				s.publish()
				snap := s.Current()
				got := s.forecastFor(snap).toMap()
				want := sched.ForecastFromState(snap.Procs, snap.SimNow, snap.FRunning, snap.FQueued, s.pol, snap.Resv)
				if len(want) == 0 {
					want = nil
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: chained forecast diverges from full dry-run\nchained: %v\nfull:    %v", step, got, want)
				}
			}

			submit(8, 100000) // pin the machine
			if err := s.sess.AdvanceTo(now); err != nil {
				t.Fatal(err)
			}
			check("pin")
			for round := 0; round < 25; round++ {
				for k := 0; k < 7; k++ {
					submit(1+(id*5)%8, int64(50+(id*11)%300))
				}
				check(fmt.Sprintf("round %d arrivals", round))
				switch round % 4 {
				case 1: // cancel mid-queue: breaks the pointer prefix
					if s.sess.Cancel(id - 3) {
						s.ctr.cancelled++
					}
					check(fmt.Sprintf("round %d cancel", round))
				case 2: // advance the clock: moves the dry-run origin
					now += 40
					if err := s.sess.AdvanceTo(now); err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("round %d advance", round))
				}
			}
			if s.fcExtends.Load() == 0 {
				t.Fatal("no forecast was served by extension; the chain never engaged")
			}
			if s.dryRuns.Load() <= s.fcExtends.Load() {
				t.Fatal("every forecast extended; the fallback paths were never exercised")
			}
		})
	}
}

// TestResponseBodyMemo pins the memoized read bodies: repeated GETs of an
// unchanged state must return byte-identical responses, those bytes must
// match what the uncached renderers produce, and a warm cache hit must not
// allocate (beyond the httptest plumbing, which is excluded by calling the
// body functions directly).
func TestResponseBodyMemo(t *testing.T) {
	s, stop := frozenServer(t, Options{Procs: 16, Scheduler: "easy"})
	defer func() {
		if err := stop(); err != nil {
			t.Fatal(err)
		}
	}()
	h := s.Handler()
	submit := func(body string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs", bytes.NewBufferString(body)))
		if rec.Code != http.StatusCreated {
			t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
		}
	}
	submit(`{"width":16,"runtime":100000}`)
	for i := 0; i < 20; i++ {
		submit(`{"width":4,"runtime":500}`)
	}

	get := func(path, wantType string) []byte {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != wantType {
			t.Fatalf("GET %s Content-Type = %q, want %q", path, ct, wantType)
		}
		return rec.Body.Bytes()
	}

	q1 := get("/v1/queue", "application/json")
	q2 := get("/v1/queue", "application/json")
	if !bytes.Equal(q1, q2) {
		t.Fatal("two /v1/queue reads of one version returned different bytes")
	}
	snap := s.Current()
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusOK, queueResponse(snap, s.forecastFor(snap)))
	if !bytes.Equal(q1, rec.Body.Bytes()) {
		t.Fatalf("cached queue body diverges from uncached render:\ncached:   %s\nuncached: %s", q1, rec.Body.Bytes())
	}

	m1 := get("/metrics", "text/plain; version=0.0.4")
	m2 := get("/metrics", "text/plain; version=0.0.4")
	if !bytes.Equal(m1, m2) {
		t.Fatal("two /metrics scrapes of one version returned different bytes")
	}
	var buf bytes.Buffer
	WriteMetrics(&buf, snap)
	if !bytes.Equal(m1, buf.Bytes()) {
		t.Fatal("cached metrics body diverges from uncached render")
	}

	// Warm-hit alloc pins: serving a cached body is a pointer load plus a
	// closed-channel receive, so it must not allocate at all.
	if avg := testing.AllocsPerRun(100, func() {
		if len(s.queueBody(snap)) == 0 {
			t.Fatal("lost queue body")
		}
	}); avg != 0 {
		t.Fatalf("warm queueBody allocates %.1f times per read, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if len(s.metricsBody(snap)) == 0 {
			t.Fatal("lost metrics body")
		}
	}); avg != 0 {
		t.Fatalf("warm metricsBody allocates %.1f times per read, want 0", avg)
	}
}
