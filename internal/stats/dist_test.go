package stats

import (
	"math"
	"testing"
)

// sampleMean draws n samples and returns their mean.
func sampleMean(d Dist, r *RNG, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{M: 120}
	if d.Mean() != 120 {
		t.Fatalf("Mean() = %v, want 120", d.Mean())
	}
	got := sampleMean(d, NewRNG(1), 200000)
	if math.Abs(got-120)/120 > 0.02 {
		t.Fatalf("sample mean = %v, want ~120", got)
	}
}

func TestLognormalFromMoments(t *testing.T) {
	for _, tc := range []struct{ mean, cv float64 }{
		{100, 0.5}, {3600, 2}, {10, 0},
	} {
		d := LognormalFromMoments(tc.mean, tc.cv)
		if math.Abs(d.Mean()-tc.mean)/tc.mean > 1e-9 {
			t.Errorf("mean=%v cv=%v: analytic mean %v", tc.mean, tc.cv, d.Mean())
		}
		got := sampleMean(d, NewRNG(2), 400000)
		tol := 0.05 * (1 + tc.cv) // higher-variance needs looser tolerance
		if math.Abs(got-tc.mean)/tc.mean > tol {
			t.Errorf("mean=%v cv=%v: sample mean %v", tc.mean, tc.cv, got)
		}
	}
}

func TestLognormalFromMomentsPanics(t *testing.T) {
	for _, tc := range []struct{ mean, cv float64 }{{0, 1}, {-5, 1}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LognormalFromMoments(%v,%v): expected panic", tc.mean, tc.cv)
				}
			}()
			LognormalFromMoments(tc.mean, tc.cv)
		}()
	}
}

func TestWeibullMean(t *testing.T) {
	d := Weibull{K: 0.5, Lambda: 100}
	want := 100 * math.Gamma(3) // Gamma(1+1/0.5) = Gamma(3) = 2
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Fatalf("Mean() = %v, want %v", d.Mean(), want)
	}
	got := sampleMean(d, NewRNG(3), 500000)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("sample mean = %v, want ~%v", got, want)
	}
}

func TestWeibullPositive(t *testing.T) {
	d := Weibull{K: 0.7, Lambda: 50}
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("bad Weibull sample %v", v)
		}
	}
}

func TestHyperExpMean(t *testing.T) {
	d := HyperExp{P: 0.8, M1: 10, M2: 1000}
	want := 0.8*10 + 0.2*1000
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Fatalf("Mean() = %v, want %v", d.Mean(), want)
	}
	got := sampleMean(d, NewRNG(5), 400000)
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("sample mean = %v, want ~%v", got, want)
	}
}

func TestUniformDist(t *testing.T) {
	d := Uniform{Lo: 5, Hi: 15}
	if d.Mean() != 10 {
		t.Fatalf("Mean() = %v", d.Mean())
	}
	r := NewRNG(6)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 5 || v >= 15 {
			t.Fatalf("sample %v out of range", v)
		}
	}
}

func TestLogUniformDistMean(t *testing.T) {
	d := LogUniformDist{Lo: 1, Hi: math.E}
	want := (math.E - 1) / 1.0
	if math.Abs(d.Mean()-want) > 1e-12 {
		t.Fatalf("Mean() = %v, want %v", d.Mean(), want)
	}
	if (LogUniformDist{Lo: 3, Hi: 3}).Mean() != 3 {
		t.Fatal("degenerate mean wrong")
	}
	got := sampleMean(d, NewRNG(7), 300000)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("sample mean = %v, want ~%v", got, want)
	}
}

func TestTruncatedStaysInBounds(t *testing.T) {
	d := Truncated{Inner: Exponential{M: 1000}, Lo: 1, Hi: 3600}
	r := NewRNG(8)
	for i := 0; i < 50000; i++ {
		v := d.Sample(r)
		if v < 1 || v > 3600 {
			t.Fatalf("truncated sample %v out of [1,3600]", v)
		}
	}
}

func TestTruncatedImpossibleRangeClamps(t *testing.T) {
	// Constant 5 truncated to [10, 20] can never resample into range;
	// after the attempt budget it must clamp, not loop forever.
	d := Truncated{Inner: Constant{V: 5}, Lo: 10, Hi: 20}
	if v := d.Sample(NewRNG(9)); v != 10 {
		t.Fatalf("clamped sample = %v, want 10", v)
	}
}

func TestDiscreteErrors(t *testing.T) {
	if _, err := NewDiscrete(nil, nil); err == nil {
		t.Error("empty: want error")
	}
	if _, err := NewDiscrete([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatch: want error")
	}
	if _, err := NewDiscrete([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := NewDiscrete([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero total: want error")
	}
	if _, err := NewDiscrete([]float64{1}, []float64{math.NaN()}); err == nil {
		t.Error("NaN weight: want error")
	}
}

func TestDiscreteFrequencies(t *testing.T) {
	d := MustDiscrete([]float64{1, 2, 4, 8}, []float64{4, 3, 2, 1})
	r := NewRNG(10)
	counts := map[float64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	want := map[float64]float64{1: 0.4, 2: 0.3, 4: 0.2, 8: 0.1}
	for v, p := range want {
		got := float64(counts[v]) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("value %v frequency %v, want ~%v", v, got, p)
		}
	}
}

func TestDiscreteZeroWeightNeverSampled(t *testing.T) {
	d := MustDiscrete([]float64{1, 2, 3}, []float64{1, 0, 1})
	r := NewRNG(11)
	for i := 0; i < 50000; i++ {
		if d.Sample(r) == 2 {
			t.Fatal("sampled zero-weight value")
		}
	}
}

func TestDiscreteMeanAndValues(t *testing.T) {
	d := MustDiscrete([]float64{2, 4}, []float64{1, 3})
	if got, want := d.Mean(), 3.5; got != want {
		t.Fatalf("Mean() = %v, want %v", got, want)
	}
	vs := d.Values()
	vs[0] = 99 // must not alias internal state
	if d.Values()[0] != 2 {
		t.Fatal("Values() aliases internal slice")
	}
}

func TestMustDiscretePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustDiscrete(nil, nil)
}

func TestConstant(t *testing.T) {
	d := Constant{V: 42}
	if d.Mean() != 42 || d.Sample(NewRNG(1)) != 42 {
		t.Fatal("Constant misbehaves")
	}
}

func TestMixture(t *testing.T) {
	m := MustMixture([]Dist{Constant{V: 1}, Constant{V: 100}}, []float64{3, 1})
	if got, want := m.Mean(), 0.75*1+0.25*100; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean() = %v, want %v", got, want)
	}
	r := NewRNG(12)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Sample(r) == 1 {
			ones++
		}
	}
	if got := float64(ones) / n; math.Abs(got-0.75) > 0.01 {
		t.Fatalf("component-1 frequency %v, want ~0.75", got)
	}
}

func TestMixtureErrors(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty: want error")
	}
	if _, err := NewMixture([]Dist{Constant{}}, []float64{1, 2}); err == nil {
		t.Error("mismatch: want error")
	}
	if _, err := NewMixture([]Dist{Constant{}}, []float64{-1}); err == nil {
		t.Error("negative weight: want error")
	}
}

func TestMustMixturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustMixture(nil, nil)
}
