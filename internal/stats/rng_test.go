package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("draw %d: %v != %v", i, av, bv)
		}
	}
}

func TestNewRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestForkIndependence(t *testing.T) {
	// A fork taken at the same stream position is deterministic, and
	// consuming from the fork must not perturb the parent.
	a := NewRNG(7)
	b := NewRNG(7)
	fa := a.Fork()
	fb := b.Fork()
	for i := 0; i < 50; i++ {
		fa.Float64() // consume only fa
	}
	for i := 0; i < 100; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("parent streams diverged after fork use at draw %d", i)
		}
	}
	// fb replayed from scratch matches fa's prefix.
	fa2 := NewRNG(7).Fork()
	for i := 0; i < 50; i++ {
		if v1, v2 := fa2.Float64(), fb.Float64(); v1 != v2 {
			t.Fatalf("fork streams differ at draw %d", i)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := NewRNG(99)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", got)
	}
}

func TestRangeBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range(-3,7) = %v out of bounds", v)
		}
	}
}

func TestRangePanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Range(2, 1)
}

func TestIntRange(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.IntRange(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("IntRange(2,5) = %d out of bounds", v)
		}
		seen[v] = true
	}
	for want := 2; want <= 5; want++ {
		if !seen[want] {
			t.Errorf("IntRange never produced %d", want)
		}
	}
	if v := r.IntRange(4, 4); v != 4 {
		t.Fatalf("IntRange(4,4) = %d, want 4", v)
	}
}

func TestIntRangePanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).IntRange(5, 2)
}

func TestLogUniformBounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.LogUniform(10, 1000)
		if v < 10 || v >= 1000 {
			t.Fatalf("LogUniform out of bounds: %v", v)
		}
	}
	if v := r.LogUniform(5, 5); v != 5 {
		t.Fatalf("LogUniform(5,5) = %v, want 5", v)
	}
}

func TestLogUniformEqualMassPerDecade(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	low := 0 // count in [1, 10)
	for i := 0; i < n; i++ {
		if r.LogUniform(1, 100) < 10 {
			low++
		}
	}
	got := float64(low) / n
	if math.Abs(got-0.5) > 0.01 {
		t.Fatalf("first decade mass = %v, want ~0.5", got)
	}
}

func TestLogUniformPanicsOnBadBounds(t *testing.T) {
	for _, tc := range []struct{ lo, hi float64 }{{0, 1}, {-1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogUniform(%v,%v): expected panic", tc.lo, tc.hi)
				}
			}()
			NewRNG(1).LogUniform(tc.lo, tc.hi)
		}()
	}
}

func TestRangeProperty(t *testing.T) {
	r := NewRNG(17)
	f := func(lo float64, span uint8) bool {
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.Abs(lo) > 1e15 {
			return true
		}
		hi := lo + float64(span) + 1
		v := r.Range(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
