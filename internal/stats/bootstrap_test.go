package stats

import (
	"math"
	"testing"
)

func TestBootstrapMeanCIErrors(t *testing.T) {
	if _, err := BootstrapMeanCI(nil, 100, 0.95, 1); err == nil {
		t.Error("empty input should error")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 5, 0.95, 1); err == nil {
		t.Error("too few iterations should error")
	}
	for _, lvl := range []float64{0, 1, -0.5, 1.5} {
		if _, err := BootstrapMeanCI([]float64{1, 2}, 100, lvl, 1); err == nil {
			t.Errorf("level %v should error", lvl)
		}
	}
}

func TestBootstrapMeanCICoversTrueMean(t *testing.T) {
	r := NewRNG(5)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()*3
	}
	ci, err := BootstrapMeanCI(xs, 2000, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > 10 || ci.Hi < 10 {
		t.Fatalf("CI %v does not cover the true mean 10", ci)
	}
	if ci.Hi-ci.Lo > 1.5 {
		t.Fatalf("CI %v implausibly wide for n=400, sd=3", ci)
	}
	if math.Abs(ci.Mean-Mean(xs)) > 1e-12 {
		t.Fatal("CI mean should be the sample mean")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 5, 2, 9, 3, 7}
	a, err := BootstrapMeanCI(xs, 500, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapMeanCI(xs, 500, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed should give identical intervals")
	}
}

func TestBootstrapExcludesZero(t *testing.T) {
	pos := BootstrapCI{Lo: 0.5, Hi: 2}
	neg := BootstrapCI{Lo: -2, Hi: -0.5}
	spans := BootstrapCI{Lo: -1, Hi: 1}
	if !pos.ExcludesZero() || !neg.ExcludesZero() || spans.ExcludesZero() {
		t.Fatal("ExcludesZero wrong")
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	ci, err := BootstrapMeanCI([]float64{4, 4, 4}, 100, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo != 4 || ci.Hi != 4 || ci.Mean != 4 {
		t.Fatalf("constant input CI = %v", ci)
	}
}

func TestBootstrapStringMentionsBounds(t *testing.T) {
	ci := BootstrapCI{Mean: 1.5, Lo: 1, Hi: 2}
	if got := ci.String(); got != "1.500 [1.000, 2.000]" {
		t.Fatalf("String = %q", got)
	}
}

func TestPairedDiff(t *testing.T) {
	d, err := PairedDiff([]float64{3, 5}, []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 2 || d[1] != -5 {
		t.Fatalf("diff = %v", d)
	}
	if _, err := PairedDiff([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}
