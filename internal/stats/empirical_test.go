package stats

import (
	"math"
	"testing"
)

func TestNewEmpiricalErrors(t *testing.T) {
	if _, err := NewEmpirical(nil, false); err == nil {
		t.Fatal("empty observations should error")
	}
}

func TestEmpiricalExactResampling(t *testing.T) {
	obs := []float64{1, 5, 9}
	e, err := NewEmpirical(obs, false)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(1)
	allowed := map[float64]bool{1: true, 5: true, 9: true}
	seen := map[float64]bool{}
	for i := 0; i < 10000; i++ {
		v := e.Sample(r)
		if !allowed[v] {
			t.Fatalf("non-observed value %v from exact resampler", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("only saw %d of 3 values", len(seen))
	}
}

func TestEmpiricalSmoothStaysInRange(t *testing.T) {
	e, err := NewEmpirical([]float64{10, 20, 30}, true)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(2)
	interpolated := false
	for i := 0; i < 10000; i++ {
		v := e.Sample(r)
		if v < 10 || v > 30 {
			t.Fatalf("smooth sample %v out of observed range", v)
		}
		if v != 10 && v != 20 && v != 30 {
			interpolated = true
		}
	}
	if !interpolated {
		t.Fatal("smooth resampler never interpolated")
	}
}

func TestEmpiricalSingleObservation(t *testing.T) {
	e, err := NewEmpirical([]float64{7}, true)
	if err != nil {
		t.Fatal(err)
	}
	if e.Sample(NewRNG(1)) != 7 {
		t.Fatal("single-observation sample wrong")
	}
}

func TestEmpiricalMeanQuantile(t *testing.T) {
	e, err := NewEmpirical([]float64{4, 2, 8, 6}, false)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mean() != 5 {
		t.Fatalf("Mean = %v", e.Mean())
	}
	if e.Quantile(0) != 2 || e.Quantile(1) != 8 {
		t.Fatal("extreme quantiles wrong")
	}
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
	if q := e.Quantile(0.5); q != 4 && q != 6 {
		t.Fatalf("median = %v", q)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	res, err := NewReservoir(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		res.Add(float64(i))
	}
	s := res.Sample()
	if len(s) != 5 || res.Seen() != 5 {
		t.Fatalf("reservoir kept %d of %d", len(s), res.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 1000 stream elements should survive with probability ~10/1000.
	counts := make([]int, 1000)
	const trials = 3000
	for trial := 0; trial < trials; trial++ {
		res, err := NewReservoir(10, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			res.Add(float64(i))
		}
		for _, v := range res.Sample() {
			counts[int(v)]++
		}
	}
	// Expected survival count per element: trials*10/1000 = 30.
	first, last := 0, 0
	for i := 0; i < 100; i++ {
		first += counts[i]
	}
	for i := 900; i < 1000; i++ {
		last += counts[i]
	}
	// Early and late stream positions must be retained at similar rates.
	ratio := float64(first) / float64(last)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("reservoir biased: first/last retention ratio %v", ratio)
	}
}

func TestReservoirErrors(t *testing.T) {
	if _, err := NewReservoir(0, 1); err == nil {
		t.Fatal("zero capacity should error")
	}
}

func TestNormalCI(t *testing.T) {
	var a Accumulator
	if NormalCI(&a) != 0 {
		t.Fatal("empty CI should be 0")
	}
	a.Add(10)
	if NormalCI(&a) != 0 {
		t.Fatal("single-observation CI should be 0")
	}
	for i := 0; i < 99; i++ {
		a.Add(10)
	}
	if NormalCI(&a) != 0 {
		t.Fatal("zero-variance CI should be 0")
	}
	var b Accumulator
	for i := 0; i < 100; i++ {
		b.Add(float64(i % 2)) // variance 0.2525...; sd ~0.5
	}
	want := 1.96 * b.StdDev() / 10
	if math.Abs(NormalCI(&b)-want) > 1e-12 {
		t.Fatalf("CI = %v, want %v", NormalCI(&b), want)
	}
}
