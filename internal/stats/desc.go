package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes running descriptive statistics using Welford's
// algorithm, so means and variances stay numerically stable over millions of
// samples without storing them. The zero value is an empty accumulator ready
// to use.
type Accumulator struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
	sum      float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.sum += x
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (a *Accumulator) Mean() float64 { return a.mean }

// Sum returns the running sum.
func (a *Accumulator) Sum() float64 { return a.sum }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// CV returns the coefficient of variation (stddev/mean), or 0 when the mean
// is zero.
func (a *Accumulator) CV() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.StdDev() / math.Abs(a.mean)
}

// Min returns the smallest observation, or 0 when empty.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest observation, or 0 when empty.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// Merge folds another accumulator into a, as if all of b's observations had
// been added to a. Chan–Golub–LeVeque parallel combination.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	delta := b.mean - a.mean
	n := a.n + b.n
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	a.sum += b.sum
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts internally; for
// repeated queries use Percentiles. Returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// Percentiles returns the percentiles ps of xs, sorting once.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = percentileSorted(s, p)
	}
	return out
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram counts observations into fixed bin edges. Bin i covers
// [Edges[i], Edges[i+1]); observations below the first edge or at/above the
// last edge are counted in Under and Over.
type Histogram struct {
	Edges  []float64
	Counts []int64
	Under  int64
	Over   int64
}

// NewHistogram builds a histogram over the given strictly increasing edges.
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("stats: NewHistogram needs at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: NewHistogram edges must be strictly increasing at %d", i)
		}
	}
	return &Histogram{
		Edges:  append([]float64(nil), edges...),
		Counts: make([]int64, len(edges)-1),
	}, nil
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	if x < h.Edges[0] {
		h.Under++
		return
	}
	if x >= h.Edges[len(h.Edges)-1] {
		h.Over++
		return
	}
	// First edge > x, minus one, is the bin.
	i := sort.SearchFloat64s(h.Edges, x)
	if i < len(h.Edges) && h.Edges[i] == x {
		// x sits exactly on an edge: it belongs to the bin starting at x.
		h.Counts[i]++
		return
	}
	h.Counts[i-1]++
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}
