package stats

import (
	"fmt"
	"math"
	"sort"
)

// Empirical resamples from an observed data set: each draw picks a stored
// observation uniformly, with optional jitter between adjacent order
// statistics so the support is not limited to the exact observed values.
// It is the workhorse of workload fitting (model a machine's future from
// its own log).
type Empirical struct {
	sorted []float64
	smooth bool
}

// NewEmpirical builds an empirical distribution from observations. With
// smooth true, draws interpolate uniformly between adjacent sorted
// observations instead of returning exact values.
func NewEmpirical(observations []float64, smooth bool) (*Empirical, error) {
	if len(observations) == 0 {
		return nil, fmt.Errorf("stats: NewEmpirical with no observations")
	}
	s := append([]float64(nil), observations...)
	sort.Float64s(s)
	return &Empirical{sorted: s, smooth: smooth}, nil
}

// Sample draws one resampled observation.
func (e *Empirical) Sample(r *RNG) float64 {
	i := r.Intn(len(e.sorted))
	v := e.sorted[i]
	if !e.smooth || len(e.sorted) == 1 {
		return v
	}
	// Interpolate toward a random neighbour, staying inside the observed
	// range.
	if i+1 < len(e.sorted) {
		return v + r.Float64()*(e.sorted[i+1]-v)
	}
	return v
}

// Mean returns the sample mean of the observations.
func (e *Empirical) Mean() float64 {
	sum := 0.0
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Quantile returns the q-quantile (0..1) of the observations.
func (e *Empirical) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	return e.sorted[int(q*float64(len(e.sorted)-1)+0.5)]
}

// N returns the number of stored observations.
func (e *Empirical) N() int { return len(e.sorted) }

// Reservoir maintains a fixed-size uniform random sample of a stream
// (Vitter's algorithm R), so traces of any length fit in bounded memory
// before being handed to NewEmpirical.
type Reservoir struct {
	cap  int
	seen int64
	data []float64
	rng  *RNG
}

// NewReservoir returns a reservoir holding at most capacity observations,
// sampling decisions driven by the given seed.
func NewReservoir(capacity int, seed int64) (*Reservoir, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("stats: NewReservoir capacity %d", capacity)
	}
	return &Reservoir{cap: capacity, rng: NewRNG(seed)}, nil
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.data) < r.cap {
		r.data = append(r.data, x)
		return
	}
	// Replace a random element with probability cap/seen.
	if i := r.rng.Int63() % r.seen; i < int64(r.cap) {
		r.data[i] = x
	}
}

// Sample returns a copy of the current reservoir contents.
func (r *Reservoir) Sample() []float64 {
	return append([]float64(nil), r.data...)
}

// Seen returns how many observations were offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// NormalCI returns the half-width of a ~95 % confidence interval for the
// mean of the accumulated observations (1.96 σ/√n). Zero for fewer than
// two observations.
func NormalCI(a *Accumulator) float64 {
	if a.N() < 2 {
		return 0
	}
	return 1.96 * a.StdDev() / math.Sqrt(float64(a.N()))
}
