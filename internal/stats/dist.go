package stats

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a continuous probability distribution that can be sampled with an
// explicit generator. Implementations must be pure: the same RNG stream
// yields the same sample sequence.
type Dist interface {
	// Sample draws one variate.
	Sample(r *RNG) float64
	// Mean returns the distribution's expected value (may be +Inf).
	Mean() float64
}

// Exponential is an exponential distribution with the given mean (1/rate).
type Exponential struct {
	M float64 // mean, must be > 0
}

// Sample draws an exponential variate.
func (d Exponential) Sample(r *RNG) float64 { return d.M * r.ExpFloat64() }

// Mean returns the configured mean.
func (d Exponential) Mean() float64 { return d.M }

// Lognormal is a lognormal distribution: exp(N(Mu, Sigma^2)).
type Lognormal struct {
	Mu    float64 // mean of the underlying normal
	Sigma float64 // stddev of the underlying normal, must be >= 0
}

// Sample draws a lognormal variate.
func (d Lognormal) Sample(r *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*r.NormFloat64())
}

// Mean returns exp(Mu + Sigma^2/2).
func (d Lognormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// LognormalFromMoments builds a Lognormal whose sample mean and coefficient
// of variation (stddev/mean) match the arguments. mean must be positive and
// cv non-negative.
func LognormalFromMoments(mean, cv float64) Lognormal {
	if mean <= 0 {
		panic("stats: LognormalFromMoments requires mean > 0")
	}
	if cv < 0 {
		panic("stats: LognormalFromMoments requires cv >= 0")
	}
	sigma2 := math.Log(1 + cv*cv)
	return Lognormal{
		Mu:    math.Log(mean) - sigma2/2,
		Sigma: math.Sqrt(sigma2),
	}
}

// Weibull is a Weibull distribution with shape K and scale Lambda. Shapes
// below 1 give the heavy-tailed behaviour typical of job runtimes.
type Weibull struct {
	K      float64 // shape, must be > 0
	Lambda float64 // scale, must be > 0
}

// Sample draws a Weibull variate by inversion.
func (d Weibull) Sample(r *RNG) float64 {
	u := r.Float64()
	// Guard the log: Float64 is in [0,1), so 1-u is in (0,1].
	return d.Lambda * math.Pow(-math.Log(1-u), 1/d.K)
}

// Mean returns Lambda * Gamma(1 + 1/K).
func (d Weibull) Mean() float64 { return d.Lambda * math.Gamma(1+1/d.K) }

// HyperExp is a two-phase hyper-exponential distribution: with probability P
// the sample is exponential with mean M1, otherwise exponential with mean M2.
// Hyper-exponentials model the high-variance runtime mixes seen in
// supercomputer traces (many short jobs, a heavy tail of long ones).
type HyperExp struct {
	P      float64 // probability of phase 1, in [0,1]
	M1, M2 float64 // phase means, must be > 0
}

// Sample draws a hyper-exponential variate.
func (d HyperExp) Sample(r *RNG) float64 {
	if r.Bool(d.P) {
		return d.M1 * r.ExpFloat64()
	}
	return d.M2 * r.ExpFloat64()
}

// Mean returns P*M1 + (1-P)*M2.
func (d HyperExp) Mean() float64 { return d.P*d.M1 + (1-d.P)*d.M2 }

// Uniform is a continuous uniform distribution over [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate.
func (d Uniform) Sample(r *RNG) float64 { return r.Range(d.Lo, d.Hi) }

// Mean returns the midpoint.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// LogUniformDist is log-uniform over [Lo, Hi): equal mass per decade.
type LogUniformDist struct {
	Lo, Hi float64 // 0 < Lo <= Hi
}

// Sample draws a log-uniform variate.
func (d LogUniformDist) Sample(r *RNG) float64 { return r.LogUniform(d.Lo, d.Hi) }

// Mean returns (Hi-Lo)/ln(Hi/Lo), the analytic mean of a log-uniform.
func (d LogUniformDist) Mean() float64 {
	if d.Lo == d.Hi {
		return d.Lo
	}
	return (d.Hi - d.Lo) / math.Log(d.Hi/d.Lo)
}

// Truncated clamps an inner distribution to [Lo, Hi] by resampling (up to a
// bounded number of attempts, then clamping). Truncation is how the workload
// models keep "short" runtimes strictly under the one-hour category boundary
// and "long" runtimes above it.
type Truncated struct {
	Inner  Dist
	Lo, Hi float64
}

// Sample draws from Inner until the value lands in [Lo, Hi], clamping after
// 64 failed attempts so sampling always terminates.
func (d Truncated) Sample(r *RNG) float64 {
	for i := 0; i < 64; i++ {
		v := d.Inner.Sample(r)
		if v >= d.Lo && v <= d.Hi {
			return v
		}
	}
	v := d.Inner.Sample(r)
	return math.Min(math.Max(v, d.Lo), d.Hi)
}

// Mean returns the inner mean clamped to the truncation bounds. This is an
// approximation: exact truncated moments are not needed by any caller.
func (d Truncated) Mean() float64 {
	return math.Min(math.Max(d.Inner.Mean(), d.Lo), d.Hi)
}

// Discrete is a finite distribution over arbitrary values with explicit
// weights. It is used for processor-count (width) distributions, which in
// real traces concentrate on powers of two.
type Discrete struct {
	values  []float64
	cum     []float64 // cumulative weights, last element is the total
	weights []float64
}

// NewDiscrete builds a Discrete from parallel slices of values and positive
// weights. It returns an error if the slices mismatch, are empty, or any
// weight is negative or the total is zero.
func NewDiscrete(values, weights []float64) (*Discrete, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("stats: NewDiscrete with no values")
	}
	if len(values) != len(weights) {
		return nil, fmt.Errorf("stats: NewDiscrete values/weights length mismatch: %d vs %d", len(values), len(weights))
	}
	d := &Discrete{
		values:  append([]float64(nil), values...),
		weights: append([]float64(nil), weights...),
		cum:     make([]float64, len(weights)),
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: NewDiscrete weight %d is invalid: %v", i, w)
		}
		total += w
		d.cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: NewDiscrete total weight is zero")
	}
	return d, nil
}

// MustDiscrete is NewDiscrete that panics on error, for static tables.
func MustDiscrete(values, weights []float64) *Discrete {
	d, err := NewDiscrete(values, weights)
	if err != nil {
		panic(err)
	}
	return d
}

// Sample draws one of the configured values with probability proportional to
// its weight.
func (d *Discrete) Sample(r *RNG) float64 {
	total := d.cum[len(d.cum)-1]
	u := r.Float64() * total
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.values) {
		i = len(d.values) - 1
	}
	// SearchFloat64s finds the first cum >= u; when u equals a boundary we
	// may land one short because Float64 can return exactly 0.
	for i < len(d.cum)-1 && d.cum[i] == u && d.weights[i] == 0 {
		i++
	}
	return d.values[i]
}

// Mean returns the weighted average of the values.
func (d *Discrete) Mean() float64 {
	total := d.cum[len(d.cum)-1]
	sum := 0.0
	for i, v := range d.values {
		sum += v * d.weights[i]
	}
	return sum / total
}

// Values returns a copy of the support.
func (d *Discrete) Values() []float64 { return append([]float64(nil), d.values...) }

// Constant is a degenerate distribution that always returns V.
type Constant struct {
	V float64
}

// Sample returns V.
func (d Constant) Sample(*RNG) float64 { return d.V }

// Mean returns V.
func (d Constant) Mean() float64 { return d.V }

// Mixture samples from one of several component distributions chosen by
// weight. It generalises HyperExp to arbitrary components and is used by the
// user-estimate inaccuracy model (a spike of exact estimates mixed with a
// body of padded ones).
type Mixture struct {
	components []Dist
	weights    *Discrete
}

// NewMixture builds a mixture over components with the given positive
// weights.
func NewMixture(components []Dist, weights []float64) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("stats: NewMixture with no components")
	}
	if len(components) != len(weights) {
		return nil, fmt.Errorf("stats: NewMixture components/weights length mismatch: %d vs %d", len(components), len(weights))
	}
	idx := make([]float64, len(components))
	for i := range idx {
		idx[i] = float64(i)
	}
	w, err := NewDiscrete(idx, weights)
	if err != nil {
		return nil, err
	}
	return &Mixture{components: append([]Dist(nil), components...), weights: w}, nil
}

// MustMixture is NewMixture that panics on error, for static tables.
func MustMixture(components []Dist, weights []float64) *Mixture {
	m, err := NewMixture(components, weights)
	if err != nil {
		panic(err)
	}
	return m
}

// Sample picks a component by weight and samples it.
func (m *Mixture) Sample(r *RNG) float64 {
	i := int(m.weights.Sample(r))
	return m.components[i].Sample(r)
}

// Mean returns the weighted average of the component means.
func (m *Mixture) Mean() float64 {
	total := m.weights.cum[len(m.weights.cum)-1]
	sum := 0.0
	for i, c := range m.components {
		sum += c.Mean() * m.weights.weights[i]
	}
	return sum / total
}
