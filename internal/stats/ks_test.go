package stats

import (
	"math"
	"testing"
)

func TestKSStatisticIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	d, err := KSStatistic(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Fatalf("identical samples D = %v, want 0", d)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	d, err := KSStatistic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("disjoint samples D = %v, want 1", d)
	}
}

func TestKSStatisticKnownValue(t *testing.T) {
	// a = {1,2}, b = {1.5}: CDF_a jumps 0.5 at 1 and 2; CDF_b jumps 1 at
	// 1.5. Max gap = 0.5 just above 1.5? CDF_a(1.5)=0.5, CDF_b(1.5)=1 →
	// D = 0.5.
	d, err := KSStatistic([]float64{1, 2}, []float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("D = %v, want 0.5", d)
	}
}

func TestKSStatisticErrors(t *testing.T) {
	if _, err := KSStatistic(nil, []float64{1}); err == nil {
		t.Fatal("empty a should error")
	}
	if _, err := KSStatistic([]float64{1}, nil); err == nil {
		t.Fatal("empty b should error")
	}
}

func TestKSSameDistributionStaysUnderCritical(t *testing.T) {
	r := NewRNG(7)
	dist := LognormalFromMoments(100, 1)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = dist.Sample(r)
		b[i] = dist.Sample(r)
	}
	d, err := KSStatistic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := KSCriticalValue(len(a), len(b), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d >= crit {
		t.Fatalf("same-distribution D = %v exceeds critical %v", d, crit)
	}
}

func TestKSDifferentDistributionsExceedCritical(t *testing.T) {
	r := NewRNG(9)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	d1 := LognormalFromMoments(100, 1)
	d2 := LognormalFromMoments(200, 1)
	for i := range a {
		a[i] = d1.Sample(r)
		b[i] = d2.Sample(r)
	}
	d, err := KSStatistic(a, b)
	if err != nil {
		t.Fatal(err)
	}
	crit, err := KSCriticalValue(len(a), len(b), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if d <= crit {
		t.Fatalf("2x-shifted distribution D = %v below critical %v", d, crit)
	}
}

func TestKSCriticalValueErrors(t *testing.T) {
	if _, err := KSCriticalValue(0, 10, 0.05); err == nil {
		t.Fatal("zero size should error")
	}
	if _, err := KSCriticalValue(10, 10, 0.2); err == nil {
		t.Fatal("unsupported alpha should error")
	}
	v, err := KSCriticalValue(100, 100, 0.05)
	if err != nil || v <= 0 {
		t.Fatalf("critical value = %v, %v", v, err)
	}
}
