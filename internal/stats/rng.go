// Package stats provides the deterministic statistical substrate for the
// backfilling simulator: a seedable random source, the probability
// distributions used by the synthetic workload models (exponential,
// lognormal, hyper-exponential, Weibull, discrete, log-uniform), and
// descriptive statistics (mean, percentiles, histograms) used by the
// metrics layer.
//
// Everything in this package is deterministic given a seed, which is what
// makes the paper's experiments exactly reproducible from run to run.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random number generator. It wraps math/rand with an
// explicit, mandatory seed so simulations never silently depend on global
// state. The zero value is not usable; use NewRNG.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a generator seeded with seed. Two RNGs constructed with the
// same seed produce identical streams.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent generator from r's stream. Forked generators
// let one logical component (e.g. the runtime sampler) consume randomness
// without perturbing another (e.g. the arrival sampler), so adding draws to
// one does not shift the other.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.src.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 { return r.src.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Range returns a uniform value in [lo, hi). It panics if hi < lo.
func (r *RNG) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("stats: Range with hi < lo")
	}
	return lo + (hi-lo)*r.src.Float64()
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("stats: IntRange with hi < lo")
	}
	return lo + r.src.Intn(hi-lo+1)
}

// LogUniform returns a value in [lo, hi) whose logarithm is uniformly
// distributed, i.e. each decade carries equal probability mass. Both bounds
// must be positive and lo <= hi.
func (r *RNG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("stats: LogUniform requires 0 < lo <= hi")
	}
	if lo == hi {
		return lo
	}
	return math.Exp(r.Range(math.Log(lo), math.Log(hi)))
}
