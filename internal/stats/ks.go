package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSStatistic computes the two-sample Kolmogorov–Smirnov statistic: the
// maximum vertical distance between the empirical CDFs of a and b. It is
// how workload fits are validated — a fitted model's samples should sit
// close (small D) to the source trace's.
func KSStatistic(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("stats: KSStatistic with empty sample (%d, %d)", len(a), len(b))
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)

	var d float64
	i, j := 0, 0
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		// Step past every observation equal to the smaller current value
		// in BOTH samples before comparing CDFs, so ties do not create
		// phantom gaps.
		v := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSCriticalValue returns the approximate two-sample critical D at
// significance alpha (supported: 0.10, 0.05, 0.01) for sample sizes na and
// nb: c(α)·sqrt((na+nb)/(na·nb)). Samples with D below this are consistent
// with one distribution at that level.
func KSCriticalValue(na, nb int, alpha float64) (float64, error) {
	if na < 1 || nb < 1 {
		return 0, fmt.Errorf("stats: KSCriticalValue with sizes %d, %d", na, nb)
	}
	var c float64
	switch alpha {
	case 0.10:
		c = 1.22
	case 0.05:
		c = 1.36
	case 0.01:
		c = 1.63
	default:
		return 0, fmt.Errorf("stats: KSCriticalValue alpha %v unsupported (want 0.10, 0.05 or 0.01)", alpha)
	}
	n1, n2 := float64(na), float64(nb)
	return c * math.Sqrt((n1+n2)/(n1*n2)), nil
}
