package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.Min() != 0 || a.Max() != 0 || a.Sum() != 0 {
		t.Fatal("empty accumulator not all-zero")
	}
}

func TestAccumulatorBasic(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if got := a.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Population variance is 4; sample variance = 32/7.
	if got, want := a.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if a.Sum() != 40 {
		t.Fatalf("Sum = %v", a.Sum())
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("single observation should have zero variance")
	}
	if a.Min() != 3 || a.Max() != 3 {
		t.Fatal("single observation min/max wrong")
	}
}

func TestAccumulatorCV(t *testing.T) {
	var a Accumulator
	a.Add(0)
	a.Add(0)
	if a.CV() != 0 {
		t.Fatal("CV with zero mean should be 0")
	}
	var b Accumulator
	b.Add(1)
	b.Add(3)
	want := b.StdDev() / 2
	if math.Abs(b.CV()-want) > 1e-12 {
		t.Fatalf("CV = %v, want %v", b.CV(), want)
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := in[:0]
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var seq, a, b Accumulator
		for _, v := range xs {
			seq.Add(v)
			a.Add(v)
		}
		for _, v := range ys {
			seq.Add(v)
			b.Add(v)
		}
		a.Merge(&b)
		if a.N() != seq.N() {
			return false
		}
		if seq.N() == 0 {
			return true
		}
		closef := func(x, y float64) bool {
			return math.Abs(x-y) <= 1e-6*(1+math.Abs(x)+math.Abs(y))
		}
		return closef(a.Mean(), seq.Mean()) &&
			closef(a.Variance(), seq.Variance()) &&
			a.Min() == seq.Min() && a.Max() == seq.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorMergeEmpties(t *testing.T) {
	var a, b Accumulator
	a.Add(5)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed accumulator")
	}
	var c Accumulator
	c.Merge(&a) // merging into empty copies
	if c.N() != 1 || c.Mean() != 5 || c.Min() != 5 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestMeanMax(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty slice should give 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Max([]float64{3, -1, 7, 2}); got != 7 {
		t.Fatalf("Max = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {-5, 15}, {110, 50},
		{40, 32}, // rank 1.6 -> 20 + 0.6*(35-20) = 29... recompute below
	}
	// p=40: rank = 0.4*4 = 1.6 -> 20*(0.4) + 35*(0.6) = 8 + 21 = 29.
	cases[6].want = 29
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := Percentiles(xs, 0, 50, 100)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Percentiles = %v, want %v", got, want)
		}
	}
	if out := Percentiles(nil, 50, 90); out[0] != 0 || out[1] != 0 {
		t.Fatal("empty Percentiles should be zeros")
	}
}

func TestPercentileSortedAgainstNaive(t *testing.T) {
	r := NewRNG(20)
	f := func(n uint8, p uint8) bool {
		if n == 0 {
			return true
		}
		xs := make([]float64, int(n)%50+1)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		pct := float64(p % 101)
		v := Percentile(xs, pct)
		// The result must be within [min, max].
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 5, 10, 99, 100, 999, 1000, 5000} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2 (1000 is at the last edge)", h.Over)
	}
	wantCounts := []int64{3, 2, 2} // [0,10): 0,5 ... wait 10 goes to bin 1
	// bins: [0,10): {0,5} = 2;  [10,100): {10,99} = 2;  [100,1000): {100,999} = 2
	wantCounts = []int64{2, 2, 2}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram([]float64{1}); err == nil {
		t.Error("single edge: want error")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-increasing edges: want error")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("decreasing edges: want error")
	}
}

func TestHistogramEdgeAssignment(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1) // exactly on interior edge: belongs to [1,2)
	if h.Counts[0] != 0 || h.Counts[1] != 1 {
		t.Fatalf("edge value landed in wrong bin: %v", h.Counts)
	}
}
