package stats

import (
	"fmt"
	"sort"
)

// BootstrapCI is a percentile-bootstrap confidence interval for a mean.
type BootstrapCI struct {
	Mean     float64
	Lo, Hi   float64 // the interval bounds
	Level    float64 // e.g. 0.95
	Resample int     // bootstrap iterations used
}

// ExcludesZero reports whether the interval lies entirely on one side of
// zero — the usual significance read-out for a paired difference.
func (c BootstrapCI) ExcludesZero() bool {
	return c.Lo > 0 || c.Hi < 0
}

// String renders the interval compactly.
func (c BootstrapCI) String() string {
	return fmt.Sprintf("%.3f [%.3f, %.3f]", c.Mean, c.Lo, c.Hi)
}

// BootstrapMeanCI estimates a confidence interval for the mean of xs by
// percentile bootstrap with iters resamples at the given level (0 < level
// < 1), deterministically for a seed. Paired scheduler comparisons feed
// per-job differences through this: unlike a normal approximation it
// survives the wildly skewed slowdown distributions schedulers produce.
func BootstrapMeanCI(xs []float64, iters int, level float64, seed int64) (BootstrapCI, error) {
	if len(xs) == 0 {
		return BootstrapCI{}, fmt.Errorf("stats: BootstrapMeanCI with no observations")
	}
	if iters < 10 {
		return BootstrapCI{}, fmt.Errorf("stats: BootstrapMeanCI with %d iterations (need >= 10)", iters)
	}
	if level <= 0 || level >= 1 {
		return BootstrapCI{}, fmt.Errorf("stats: BootstrapMeanCI level %v out of (0,1)", level)
	}
	r := NewRNG(seed)
	n := len(xs)
	means := make([]float64, iters)
	for it := 0; it < iters; it++ {
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += xs[r.Intn(n)]
		}
		means[it] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	lo := means[int(alpha*float64(iters))]
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	hi := means[hiIdx]
	return BootstrapCI{
		Mean:     Mean(xs),
		Lo:       lo,
		Hi:       hi,
		Level:    level,
		Resample: iters,
	}, nil
}

// PairedDiff returns a[i] − b[i] for equal-length slices; it errors on a
// length mismatch (the pairing is the whole point).
func PairedDiff(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("stats: PairedDiff length mismatch: %d vs %d", len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}
