// Package sweep runs factorial simulation studies: the cross product of
// workloads × schedulers × policies × estimate models × loads, each cell a
// full deterministic simulation, emitted as long-form records ready for any
// analysis tool. The paper's evaluation is one such factorial design; this
// package generalises it so downstream users can define their own.
package sweep

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Workload names one workload axis value: a base job set at a target load.
type Workload struct {
	// Name labels the workload in records.
	Name string
	// Jobs are the base jobs (with exact estimates; estimate models are a
	// separate axis).
	Jobs []*job.Job
	// Procs is the machine size.
	Procs int
	// BaseLoad is the offered load the base jobs realise; used to derive
	// scale factors for the Loads axis (0 means "measure it").
	BaseLoad float64
}

// Design declares the full factorial space.
type Design struct {
	Workloads []Workload
	// Schedulers are sched.MakerFor kind strings.
	Schedulers []string
	// Policies are priority policy names.
	Policies []string
	// Estimates are workload.EstimateModelByName strings; empty means
	// {"exact"}.
	Estimates []string
	// Loads are target offered loads; empty means "as generated".
	Loads []float64
	// Seed drives estimate-model randomness.
	Seed int64
}

// Record is one cell's outcome.
type Record struct {
	Workload    string
	Load        float64
	Scheduler   string
	Policy      string
	Estimates   string
	Jobs        int
	Slowdown    float64
	P95Slowdown float64
	Turnaround  float64
	MaxTurn     int64
	Wait        float64
	Utilization float64
	Gini        float64
	// ByCategory holds mean slowdown per SN/SW/LN/LW.
	ByCategory [job.NumCategories]float64
}

// Run executes every cell and returns records in deterministic axis order.
// Progress, if non-nil, receives one line per completed cell.
func Run(d Design, progress io.Writer) ([]Record, error) {
	if len(d.Workloads) == 0 || len(d.Schedulers) == 0 || len(d.Policies) == 0 {
		return nil, fmt.Errorf("sweep: design needs at least one workload, scheduler and policy")
	}
	estimates := d.Estimates
	if len(estimates) == 0 {
		estimates = []string{"exact"}
	}
	loads := d.Loads
	if len(loads) == 0 {
		loads = []float64{0} // sentinel: as generated
	}

	var out []Record
	for _, w := range d.Workloads {
		if len(w.Jobs) == 0 || w.Procs < 1 {
			return nil, fmt.Errorf("sweep: workload %q is empty or has no machine", w.Name)
		}
		base := w.BaseLoad
		if base == 0 {
			base = trace.OfferedLoad(w.Jobs, w.Procs)
		}
		for _, load := range loads {
			jobsAtLoad := w.Jobs
			effLoad := base
			if load > 0 && base > 0 {
				var err error
				jobsAtLoad, err = trace.ScaleLoad(w.Jobs, base/load)
				if err != nil {
					return nil, fmt.Errorf("sweep: %q at load %v: %w", w.Name, load, err)
				}
				effLoad = load
			}
			for _, est := range estimates {
				em, err := workload.EstimateModelByName(est)
				if err != nil {
					return nil, fmt.Errorf("sweep: %w", err)
				}
				jobsFinal := workload.ApplyEstimates(jobsAtLoad, em, d.Seed+1)
				for _, kind := range d.Schedulers {
					for _, pol := range d.Policies {
						res, err := core.Run(core.Config{
							Procs: w.Procs, Scheduler: kind, Policy: pol, Audit: true,
						}, jobsFinal)
						if err != nil {
							return nil, fmt.Errorf("sweep: %s/%s/%s/%s: %w", w.Name, kind, pol, est, err)
						}
						rec := toRecord(w.Name, effLoad, est, res)
						out = append(out, rec)
						if progress != nil {
							fmt.Fprintf(progress, "%s load=%.2f %s est=%s: slowdown %.2f\n",
								w.Name, effLoad, res.Report.Scheduler, est, rec.Slowdown)
						}
					}
				}
			}
		}
	}
	return out, nil
}

func toRecord(name string, load float64, est string, res *core.Result) Record {
	r := res.Report
	rec := Record{
		Workload:    name,
		Load:        load,
		Scheduler:   res.Config.Scheduler,
		Policy:      res.Config.Policy,
		Estimates:   est,
		Jobs:        r.Overall.N,
		Slowdown:    r.Overall.MeanSlowdown,
		P95Slowdown: r.Overall.P95Slowdown,
		Turnaround:  r.Overall.MeanTurnaround,
		MaxTurn:     r.Overall.MaxTurnaround,
		Wait:        r.Overall.MeanWait,
		Utilization: r.Utilization,
		Gini:        metrics.ComputeFairness(res.Outcomes).GiniSlowdown,
	}
	for _, c := range job.Categories() {
		rec.ByCategory[c] = r.ByCategory[c].MeanSlowdown
	}
	return rec
}

// CSVHeader returns the column names WriteCSV emits.
func CSVHeader() []string {
	cols := []string{
		"workload", "load", "scheduler", "policy", "estimates", "jobs",
		"slowdown", "p95_slowdown", "turnaround", "max_turnaround", "wait",
		"utilization", "gini",
	}
	for _, c := range job.Categories() {
		cols = append(cols, "slowdown_"+strings.ToLower(c.String()))
	}
	return cols
}

// WriteCSV emits records in long form, one row per cell.
func WriteCSV(w io.Writer, recs []Record) error {
	if _, err := fmt.Fprintln(w, strings.Join(CSVHeader(), ",")); err != nil {
		return err
	}
	for _, r := range recs {
		cells := []string{
			r.Workload,
			fmt.Sprintf("%.3f", r.Load),
			r.Scheduler,
			r.Policy,
			r.Estimates,
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%.4f", r.Slowdown),
			fmt.Sprintf("%.4f", r.P95Slowdown),
			fmt.Sprintf("%.1f", r.Turnaround),
			fmt.Sprintf("%d", r.MaxTurn),
			fmt.Sprintf("%.1f", r.Wait),
			fmt.Sprintf("%.4f", r.Utilization),
			fmt.Sprintf("%.4f", r.Gini),
		}
		for _, c := range job.Categories() {
			cells = append(cells, fmt.Sprintf("%.4f", r.ByCategory[c]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
