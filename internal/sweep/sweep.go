// Package sweep runs factorial simulation studies: the cross product of
// workloads × schedulers × policies × estimate models × loads, each cell a
// full deterministic simulation, emitted as long-form records ready for any
// analysis tool. The paper's evaluation is one such factorial design; this
// package generalises it so downstream users can define their own.
package sweep

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Workload names one workload axis value: a base job set at a target load.
type Workload struct {
	// Name labels the workload in records.
	Name string
	// Jobs are the base jobs (with exact estimates; estimate models are a
	// separate axis).
	Jobs []*job.Job
	// Procs is the machine size.
	Procs int
	// BaseLoad is the offered load the base jobs realise; used to derive
	// scale factors for the Loads axis (0 means "measure it").
	BaseLoad float64
}

// Design declares the full factorial space.
type Design struct {
	Workloads []Workload
	// Schedulers are sched.MakerFor kind strings.
	Schedulers []string
	// Policies are priority policy names.
	Policies []string
	// Estimates are workload.EstimateModelByName strings; empty means
	// {"exact"}.
	Estimates []string
	// Loads are target offered loads; empty means "as generated".
	Loads []float64
	// Seed drives estimate-model randomness.
	Seed int64
}

// Record is one cell's outcome.
type Record struct {
	Workload    string
	Load        float64
	Scheduler   string
	Policy      string
	Estimates   string
	Jobs        int
	Slowdown    float64
	P95Slowdown float64
	Turnaround  float64
	MaxTurn     int64
	Wait        float64
	Utilization float64
	Gini        float64
	// ByCategory holds mean slowdown per SN/SW/LN/LW.
	ByCategory [job.NumCategories]float64
}

// CacheSalt versions the sweep's cache entries: bump it whenever Record's
// layout or the simulation semantics change, so stale caches invalidate
// wholesale.
const CacheSalt = "sweep-records-v1"

// Options tune how a sweep executes. The zero value is the legacy serial
// path with no cache, journal or progress.
type Options struct {
	// Workers bounds the pool; <= 0 means one worker per CPU, 1 forces the
	// legacy serial path (cells run inline, in axis order).
	Workers int
	// Cache, when non-nil, short-circuits cells whose canonical spec was
	// computed before (by any process sharing the directory).
	Cache *runner.Cache
	// Journal, when non-nil, receives one JSONL event per cell plus a run
	// summary.
	Journal *runner.Journal
	// Progress, when non-nil, receives one line per simulated cell (the
	// legacy per-cell format).
	Progress io.Writer
	// ShowETA additionally prints the engine's "[done/total] ... eta"
	// lines to Progress.
	ShowETA bool
	// NoAudit disables the per-cell invariant auditor (internal/audit).
	// The zero value keeps auditing on: every cell runs under the checker
	// and any violation fails the sweep.
	NoAudit bool
}

// Run executes every cell serially and returns records in deterministic
// axis order. Progress, if non-nil, receives one line per completed cell.
// It is the legacy entry point, equivalent to RunWith with Workers == 1.
func Run(d Design, progress io.Writer) ([]Record, error) {
	return RunWith(context.Background(), d, Options{Workers: 1, Progress: progress})
}

// cell is one point of the factorial space, with a lazily prepared job set
// shared by every cell of the same (workload, load, estimate) group.
type cell struct {
	key      string
	workload string
	effLoad  float64
	est      string
	sched    string
	pol      string
	procs    int
	prep     func() ([]*job.Job, error)
}

// RunWith executes every cell of the design through the runner engine and
// returns records in the same deterministic axis order as Run: parallel
// and serial sweeps of the same design are byte-identical. Axis values are
// validated eagerly, so a bad scheduler, policy or estimate model errors
// before any simulation (or cache lookup) happens.
func RunWith(ctx context.Context, d Design, opt Options) ([]Record, error) {
	cells, err := enumerate(d)
	if err != nil {
		return nil, err
	}

	printer := runner.NewPrinter(opt.Progress)
	var engineProgress *runner.Printer
	if opt.ShowETA {
		engineProgress = printer
	}

	tasks := make([]runner.Task[Record], len(cells))
	for i, c := range cells {
		c := c
		tasks[i] = runner.Task[Record]{
			Key:       c.key,
			Cacheable: true,
			Fn: func(ctx context.Context) (Record, error) {
				jobs, err := c.prep()
				if err != nil {
					return Record{}, err
				}
				res, err := core.Run(core.Config{
					Procs: c.procs, Scheduler: c.sched, Policy: c.pol, Audit: !opt.NoAudit,
				}, jobs)
				if err != nil {
					return Record{}, fmt.Errorf("sweep: %s/%s/%s/%s: %w", c.workload, c.sched, c.pol, c.est, err)
				}
				rec := toRecord(c.workload, c.effLoad, c.est, res)
				printer.Printf("%s load=%.2f %s est=%s: slowdown %.2f\n",
					c.workload, c.effLoad, res.Report.Scheduler, c.est, rec.Slowdown)
				return rec, nil
			},
		}
	}

	return runner.Run(ctx, tasks, runner.Options{
		Workers:  opt.Workers,
		Cache:    opt.Cache,
		Journal:  opt.Journal,
		Progress: engineProgress,
	})
}

// enumerate validates the design and expands it into cells in axis order.
// Job-set preparation (load scaling, estimate application) is deferred
// behind sync.OnceValues shared per (workload, load, estimate) group, so a
// fully cached sweep never rebuilds job sets and a parallel sweep prepares
// each group exactly once.
func enumerate(d Design) ([]cell, error) {
	if len(d.Workloads) == 0 || len(d.Schedulers) == 0 || len(d.Policies) == 0 {
		return nil, fmt.Errorf("sweep: design needs at least one workload, scheduler and policy")
	}
	estimates := d.Estimates
	if len(estimates) == 0 {
		estimates = []string{"exact"}
	}
	loads := d.Loads
	if len(loads) == 0 {
		loads = []float64{0} // sentinel: as generated
	}

	// Eager axis validation, so errors don't depend on cache state.
	models := make(map[string]workload.EstimateModel, len(estimates))
	for _, est := range estimates {
		em, err := workload.EstimateModelByName(est)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		models[est] = em
	}
	for _, pol := range d.Policies {
		if _, err := sched.PolicyByName(pol); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	refPol, _ := sched.PolicyByName(d.Policies[0])
	for _, kind := range d.Schedulers {
		if _, err := sched.MakerFor(kind, refPol); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}

	var cells []cell
	for _, w := range d.Workloads {
		if len(w.Jobs) == 0 || w.Procs < 1 {
			return nil, fmt.Errorf("sweep: workload %q is empty or has no machine", w.Name)
		}
		w := w
		base := w.BaseLoad
		if base == 0 {
			base = trace.OfferedLoad(w.Jobs, w.Procs)
		}
		fp := fingerprintJobs(w.Jobs, w.Procs)
		for _, load := range loads {
			load, base := load, base
			effLoad := base
			scale := load > 0 && base > 0
			if scale {
				effLoad = load
			}
			atLoad := sync.OnceValues(func() ([]*job.Job, error) {
				if !scale {
					return w.Jobs, nil
				}
				jobs, err := trace.ScaleLoad(w.Jobs, base/load)
				if err != nil {
					return nil, fmt.Errorf("sweep: %q at load %v: %w", w.Name, load, err)
				}
				return jobs, nil
			})
			for _, est := range estimates {
				est := est
				em := models[est]
				prep := sync.OnceValues(func() ([]*job.Job, error) {
					jobs, err := atLoad()
					if err != nil {
						return nil, err
					}
					return workload.ApplyEstimates(jobs, em, d.Seed+1), nil
				})
				for _, kind := range d.Schedulers {
					for _, pol := range d.Policies {
						cells = append(cells, cell{
							key: fmt.Sprintf("sweep|wl=%s|fp=%016x|procs=%d|seed=%d|load=%s|est=%s|sched=%s|pol=%s",
								w.Name, fp, w.Procs, d.Seed, loadKey(load), est, kind, pol),
							workload: w.Name,
							effLoad:  effLoad,
							est:      est,
							sched:    kind,
							pol:      pol,
							procs:    w.Procs,
							prep:     prep,
						})
					}
				}
			}
		}
	}
	return cells, nil
}

// loadKey renders the load axis value for the canonical cell spec.
func loadKey(load float64) string {
	if load <= 0 {
		return "asgen"
	}
	return fmt.Sprintf("%g", load)
}

// fingerprintJobs hashes the full base job set (plus machine size) so the
// cache key is content-addressed: any change to the generated workload —
// different seed, job count, arrival pattern, estimates — changes every
// cell's address.
func fingerprintJobs(jobs []*job.Job, procs int) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf, uint64(v))
		h.Write(buf)
	}
	put(int64(procs))
	put(int64(len(jobs)))
	for _, j := range jobs {
		put(int64(j.ID))
		put(j.Arrival)
		put(j.Runtime)
		put(j.Estimate)
		put(int64(j.Width))
		put(int64(j.User))
	}
	return h.Sum64()
}

func toRecord(name string, load float64, est string, res *core.Result) Record {
	r := res.Report
	rec := Record{
		Workload:    name,
		Load:        load,
		Scheduler:   res.Config.Scheduler,
		Policy:      res.Config.Policy,
		Estimates:   est,
		Jobs:        r.Overall.N,
		Slowdown:    r.Overall.MeanSlowdown,
		P95Slowdown: r.Overall.P95Slowdown,
		Turnaround:  r.Overall.MeanTurnaround,
		MaxTurn:     r.Overall.MaxTurnaround,
		Wait:        r.Overall.MeanWait,
		Utilization: r.Utilization,
		Gini:        metrics.ComputeFairness(res.Outcomes).GiniSlowdown,
	}
	for _, c := range job.Categories() {
		rec.ByCategory[c] = r.ByCategory[c].MeanSlowdown
	}
	return rec
}

// CSVHeader returns the column names WriteCSV emits.
func CSVHeader() []string {
	cols := []string{
		"workload", "load", "scheduler", "policy", "estimates", "jobs",
		"slowdown", "p95_slowdown", "turnaround", "max_turnaround", "wait",
		"utilization", "gini",
	}
	for _, c := range job.Categories() {
		cols = append(cols, "slowdown_"+strings.ToLower(c.String()))
	}
	return cols
}

// WriteCSV emits records in long form, one row per cell.
func WriteCSV(w io.Writer, recs []Record) error {
	if _, err := fmt.Fprintln(w, strings.Join(CSVHeader(), ",")); err != nil {
		return err
	}
	for _, r := range recs {
		cells := []string{
			r.Workload,
			fmt.Sprintf("%.3f", r.Load),
			r.Scheduler,
			r.Policy,
			r.Estimates,
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%.4f", r.Slowdown),
			fmt.Sprintf("%.4f", r.P95Slowdown),
			fmt.Sprintf("%.1f", r.Turnaround),
			fmt.Sprintf("%d", r.MaxTurn),
			fmt.Sprintf("%.1f", r.Wait),
			fmt.Sprintf("%.4f", r.Utilization),
			fmt.Sprintf("%.4f", r.Gini),
		}
		for _, c := range job.Categories() {
			cells = append(cells, fmt.Sprintf("%.4f", r.ByCategory[c]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
