package sweep

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runner"
)

// testDesign is a 2×2×2×2 = 16-cell factorial over the shared test
// workload, exercising every axis.
func testDesign(t *testing.T) Design {
	t.Helper()
	return Design{
		Workloads:  []Workload{testWorkload(t)},
		Schedulers: []string{"easy", "conservative"},
		Policies:   []string{"FCFS", "SJF"},
		Estimates:  []string{"exact", "R=2"},
		Loads:      []float64{0.7, 0.9},
		Seed:       7,
	}
}

func csvOf(t *testing.T, recs []Record) string {
	t.Helper()
	var sb strings.Builder
	if err := WriteCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestParallelMatchesSerial is the determinism guarantee: a parallel sweep
// must produce byte-identical CSV to the serial path, for the same design
// and seed.
func TestParallelMatchesSerial(t *testing.T) {
	d := testDesign(t)
	serial, err := RunWith(context.Background(), d, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunWith(context.Background(), d, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	sCSV, pCSV := csvOf(t, serial), csvOf(t, parallel)
	if sCSV != pCSV {
		t.Fatalf("parallel CSV differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", sCSV, pCSV)
	}
	if lines := strings.Count(sCSV, "\n"); lines != 16+1 {
		t.Fatalf("CSV lines = %d, want 17 (header + 16 cells)", lines)
	}
}

// TestLegacyRunMatchesEngine pins the wrapper: the legacy Run entry point
// and the engine's serial path agree record for record.
func TestLegacyRunMatchesEngine(t *testing.T) {
	d := testDesign(t)
	legacy, err := Run(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := RunWith(context.Background(), d, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := csvOf(t, legacy), csvOf(t, engine); a != b {
		t.Fatal("legacy Run and engine output diverged")
	}
}

func TestCacheHitOnIdenticalSpec(t *testing.T) {
	d := testDesign(t)
	cache, err := runner.OpenCache(t.TempDir(), CacheSalt)
	if err != nil {
		t.Fatal(err)
	}

	cold := runner.NewJournal(nil)
	recs1, err := RunWith(context.Background(), d, Options{Workers: 4, Cache: cache, Journal: cold})
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Summary(); s.Misses != 16 || s.CacheHits != 0 {
		t.Fatalf("cold summary = %+v, want 16 misses", s)
	}

	warm := runner.NewJournal(nil)
	recs2, err := RunWith(context.Background(), d, Options{Workers: 4, Cache: cache, Journal: warm})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Summary(); s.CacheHits != 16 || s.Misses != 0 {
		t.Fatalf("warm summary = %+v, want 16 hits", s)
	}
	if a, b := csvOf(t, recs1), csvOf(t, recs2); a != b {
		t.Fatal("cached records differ from computed records")
	}
}

func TestCacheMissOnAnyFieldChange(t *testing.T) {
	base := Design{
		Workloads:  []Workload{testWorkload(t)},
		Schedulers: []string{"easy"},
		Policies:   []string{"FCFS"},
		Seed:       7,
	}
	cache, err := runner.OpenCache(t.TempDir(), CacheSalt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWith(context.Background(), base, Options{Workers: 1, Cache: cache}); err != nil {
		t.Fatal(err)
	}

	variants := map[string]Design{}
	v := base
	v.Seed = 8
	variants["seed"] = v
	v = base
	v.Schedulers = []string{"conservative"}
	variants["scheduler"] = v
	v = base
	v.Policies = []string{"SJF"}
	variants["policy"] = v
	v = base
	v.Estimates = []string{"R=2"}
	variants["estimate"] = v
	v = base
	v.Loads = []float64{0.9}
	variants["load"] = v

	for field, d := range variants {
		j := runner.NewJournal(nil)
		if _, err := RunWith(context.Background(), d, Options{Workers: 1, Cache: cache, Journal: j}); err != nil {
			t.Fatalf("%s variant: %v", field, err)
		}
		if s := j.Summary(); s.CacheHits != 0 {
			t.Errorf("changing %s still hit the cache: %+v", field, s)
		}
	}

	// A changed job set (different generation seed) must also miss: the
	// key is content-addressed on the jobs themselves.
	j := runner.NewJournal(nil)
	d := base
	w := d.Workloads[0]
	w.Jobs = w.Jobs[:len(w.Jobs)-1]
	d.Workloads = []Workload{w}
	if _, err := RunWith(context.Background(), d, Options{Workers: 1, Cache: cache, Journal: j}); err != nil {
		t.Fatal(err)
	}
	if s := j.Summary(); s.CacheHits != 0 {
		t.Errorf("changing the job set still hit the cache: %+v", s)
	}
}

func TestCacheCorruptionToleratedBySweep(t *testing.T) {
	d := Design{
		Workloads:  []Workload{testWorkload(t)},
		Schedulers: []string{"easy"},
		Policies:   []string{"FCFS", "SJF"},
		Seed:       7,
	}
	dir := t.TempDir()
	cache, err := runner.OpenCache(dir, CacheSalt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunWith(context.Background(), d, Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	// Truncate every cache entry; the rerun must treat them as misses and
	// recompute, not fail.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache files (err=%v)", err)
	}
	for _, f := range files {
		if err := os.Truncate(f, 3); err != nil {
			t.Fatal(err)
		}
	}

	j := runner.NewJournal(nil)
	got, err := RunWith(context.Background(), d, Options{Workers: 2, Cache: cache, Journal: j})
	if err != nil {
		t.Fatalf("corrupted cache failed the sweep: %v", err)
	}
	if s := j.Summary(); s.Misses != 2 || s.CacheHits != 0 {
		t.Fatalf("summary after corruption = %+v, want 2 misses", s)
	}
	if a, b := csvOf(t, want), csvOf(t, got); a != b {
		t.Fatal("recomputed records differ")
	}
}

// TestProgressRoutedThroughSink checks the per-cell lines survive the
// engine path (serial and parallel) and never shear under concurrency —
// every line must be complete and well-formed.
func TestProgressRoutedThroughSink(t *testing.T) {
	d := testDesign(t)
	var sb strings.Builder
	if _, err := RunWith(context.Background(), d, Options{Workers: 1, Progress: &sb}); err != nil {
		t.Fatal(err)
	}
	serialLines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(serialLines) != 16 {
		t.Fatalf("serial progress lines = %d, want 16", len(serialLines))
	}
	for _, line := range serialLines {
		if !strings.Contains(line, "slowdown") {
			t.Errorf("malformed progress line: %q", line)
		}
	}
}
