package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/job"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenJobs is a small handcrafted workload exercising backfilling: wide
// blockers, narrow fillers, and one job whose estimate overruns its runtime
// so compression fires under the R=2 estimate model too.
func goldenJobs() []*job.Job {
	mk := func(id int, arr, rt int64, w int) *job.Job {
		return &job.Job{ID: id, Arrival: arr, Runtime: rt, Estimate: rt, Width: w}
	}
	return []*job.Job{
		mk(1, 0, 600, 6),
		mk(2, 10, 600, 6),
		mk(3, 20, 300, 4),
		mk(4, 30, 120, 2),
		{ID: 5, Arrival: 40, Runtime: 200, Estimate: 500, Width: 3},
		mk(6, 300, 900, 8),
		mk(7, 320, 60, 1),
		mk(8, 340, 60, 1),
		mk(9, 900, 1200, 5),
		mk(10, 950, 180, 2),
		mk(11, 1000, 3600, 1),
		mk(12, 1100, 240, 7),
	}
}

// TestGoldenSweepCSV runs a fixed factorial design end-to-end — workload
// preparation, estimate models, every cell simulated under the auditor —
// and compares the emitted CSV byte-for-byte against the checked-in golden
// file. Any change to scheduling semantics, metrics, or CSV formatting
// shows up as a diff here; regenerate deliberately with
//
//	go test ./internal/sweep -run TestGoldenSweepCSV -update
func TestGoldenSweepCSV(t *testing.T) {
	d := Design{
		Workloads:  []Workload{{Name: "golden", Jobs: goldenJobs(), Procs: 8}},
		Schedulers: []string{"conservative", "easy", "none", "slack:1"},
		Policies:   []string{"FCFS", "SJF"},
		Estimates:  []string{"exact", "R=2"},
		Seed:       7,
	}
	recs, err := Run(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden_sweep.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("sweep CSV deviates from %s — if the change is intentional, regenerate with -update\ngot:\n%s\nwant:\n%s",
			golden, buf.String(), want)
	}

	// The parallel path must emit the identical bytes.
	recs2, err := RunWith(t.Context(), d, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteCSV(&buf2, recs2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), want) {
		t.Fatalf("parallel sweep CSV deviates from the serial golden output")
	}
}
