package sweep

import (
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/workload"
)

func testWorkload(t *testing.T) Workload {
	t.Helper()
	m, err := workload.NewSDSC(0.8)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := m.Generate(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Workload{Name: "sdsc300", Jobs: jobs, Procs: m.Procs}
}

func TestRunFactorial(t *testing.T) {
	d := Design{
		Workloads:  []Workload{testWorkload(t)},
		Schedulers: []string{"easy", "conservative"},
		Policies:   []string{"FCFS", "SJF"},
		Estimates:  []string{"exact", "R=2"},
		Seed:       7,
	}
	recs, err := Run(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*2*2 {
		t.Fatalf("records = %d, want 8", len(recs))
	}
	for _, r := range recs {
		if r.Jobs != 300 {
			t.Errorf("cell %v lost jobs", r)
		}
		if r.Slowdown < 1 {
			t.Errorf("cell %v slowdown < 1", r)
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("cell %v utilization out of range", r)
		}
		if r.Gini < 0 || r.Gini > 1 {
			t.Errorf("cell %v gini out of range", r)
		}
	}
}

func TestRunLoadsAxis(t *testing.T) {
	d := Design{
		Workloads:  []Workload{testWorkload(t)},
		Schedulers: []string{"easy"},
		Policies:   []string{"FCFS"},
		Loads:      []float64{0.5, 0.9},
		Seed:       7,
	}
	recs, err := Run(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Load != 0.5 || recs[1].Load != 0.9 {
		t.Fatalf("loads = %v, %v", recs[0].Load, recs[1].Load)
	}
	if recs[1].Slowdown <= recs[0].Slowdown {
		t.Fatalf("higher load should raise slowdown: %.2f vs %.2f", recs[1].Slowdown, recs[0].Slowdown)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Design{}, nil); err == nil {
		t.Error("empty design should error")
	}
	bad := Design{
		Workloads:  []Workload{{Name: "empty"}},
		Schedulers: []string{"easy"},
		Policies:   []string{"FCFS"},
	}
	if _, err := Run(bad, nil); err == nil {
		t.Error("empty workload should error")
	}
	w := testWorkload(t)
	badSched := Design{
		Workloads: []Workload{w}, Schedulers: []string{"nope"}, Policies: []string{"FCFS"},
	}
	if _, err := Run(badSched, nil); err == nil {
		t.Error("bad scheduler should error")
	}
	badEst := Design{
		Workloads: []Workload{w}, Schedulers: []string{"easy"}, Policies: []string{"FCFS"},
		Estimates: []string{"nope"},
	}
	if _, err := Run(badEst, nil); err == nil {
		t.Error("bad estimate model should error")
	}
}

func TestRunProgress(t *testing.T) {
	var sb strings.Builder
	d := Design{
		Workloads:  []Workload{testWorkload(t)},
		Schedulers: []string{"easy"},
		Policies:   []string{"FCFS"},
	}
	if _, err := Run(d, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "EASY(FCFS)") {
		t.Fatalf("progress missing: %q", sb.String())
	}
}

func TestWriteCSV(t *testing.T) {
	d := Design{
		Workloads:  []Workload{testWorkload(t)},
		Schedulers: []string{"easy"},
		Policies:   []string{"FCFS"},
	}
	recs, err := Run(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	headerCols := strings.Split(lines[0], ",")
	dataCols := strings.Split(lines[1], ",")
	if len(headerCols) != len(dataCols) {
		t.Fatalf("header %d cols vs data %d", len(headerCols), len(dataCols))
	}
	if headerCols[0] != "workload" || dataCols[0] != "sdsc300" {
		t.Fatalf("first column wrong: %q %q", headerCols[0], dataCols[0])
	}
	wantCats := len(job.Categories())
	if got := len(headerCols); got != 13+wantCats {
		t.Fatalf("columns = %d", got)
	}
}
