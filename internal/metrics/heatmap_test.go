package metrics

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestSlot(t *testing.T) {
	cases := []struct {
		t    int64
		d, h int
	}{
		{0, 0, 0},
		{3599, 0, 0},
		{3600, 0, 1},
		{23 * 3600, 0, 23},
		{24 * 3600, 1, 0},
		{7 * 24 * 3600, 0, 0}, // wraps to week start
		{(6*24 + 5) * 3600, 6, 5},
	}
	for _, tc := range cases {
		d, h := slot(tc.t)
		if d != tc.d || h != tc.h {
			t.Errorf("slot(%d) = (%d,%d), want (%d,%d)", tc.t, d, h, tc.d, tc.h)
		}
	}
}

func TestHeatmapAddAverages(t *testing.T) {
	var h Heatmap
	h.Add(0, 2)
	h.Add(7*24*3600, 4) // same cell one week later
	if got := h.Values[0][0]; math.Abs(got-3) > 1e-12 {
		t.Fatalf("cell mean = %v, want 3", got)
	}
	if h.Samples[0][0] != 2 {
		t.Fatalf("samples = %d", h.Samples[0][0])
	}
	if h.Max() != 3 {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestUtilizationHeatmap(t *testing.T) {
	// One job occupying half the machine for the first day.
	ps := []sim.Placement{mkPlacement(1, 0, 0, 24*3600, 4, 24*3600)}
	h, err := UtilizationHeatmap(ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Values[0][5]; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("hour-5 utilization = %v, want 0.5", got)
	}
	if _, err := UtilizationHeatmap(ps, 0); err == nil {
		t.Fatal("zero procs should error")
	}
}

func TestArrivalHeatmap(t *testing.T) {
	ps := []sim.Placement{
		mkPlacement(1, 3600, 3600, 10, 1, 10),     // hour 1
		mkPlacement(2, 3700, 3700, 10, 1, 10),     // hour 1
		mkPlacement(3, 2*3600, 2*3600, 10, 1, 10), // hour 2
	}
	h := ArrivalHeatmap(ps)
	if h.Values[0][1] != 2 {
		t.Fatalf("hour-1 arrivals = %v, want 2", h.Values[0][1])
	}
	if h.Values[0][2] != 1 {
		t.Fatalf("hour-2 arrivals = %v, want 1", h.Values[0][2])
	}
	empty := ArrivalHeatmap(nil)
	if empty.Max() != 0 {
		t.Fatal("empty heatmap should be zero")
	}
}
