package metrics

import (
	"fmt"

	"repro/internal/sim"
)

// Heatmap aggregates a quantity over a week grid: 7 days × 24 hours, value
// averaged over every simulated occurrence of that slot. Day 0 is the
// trace's first day (synthetic traces have no calendar anchor).
type Heatmap struct {
	// Values[d][h] is the mean value in hour h of weekday d.
	Values [7][24]float64
	// Samples[d][h] counts how many simulated hours contributed.
	Samples [7][24]int64
}

// slot returns the (day, hour) cell for an absolute time.
func slot(t int64) (int, int) {
	hour := t / 3600
	return int((hour / 24) % 7), int(hour % 24)
}

// Add folds one sampled value at time t.
func (h *Heatmap) Add(t int64, v float64) {
	d, hr := slot(t)
	n := h.Samples[d][hr]
	h.Values[d][hr] = (h.Values[d][hr]*float64(n) + v) / float64(n+1)
	h.Samples[d][hr] = n + 1
}

// Max returns the largest cell mean.
func (h *Heatmap) Max() float64 {
	max := 0.0
	for d := range h.Values {
		for hr := range h.Values[d] {
			if h.Values[d][hr] > max {
				max = h.Values[d][hr]
			}
		}
	}
	return max
}

// UtilizationHeatmap samples processor usage hourly across the schedule and
// folds it into the week grid as a fraction of procs.
func UtilizationHeatmap(ps []sim.Placement, procs int) (*Heatmap, error) {
	if procs < 1 {
		return nil, fmt.Errorf("metrics: UtilizationHeatmap with %d processors", procs)
	}
	tl, err := Timeline(ps, 3600)
	if err != nil {
		return nil, err
	}
	h := &Heatmap{}
	for _, p := range tl {
		h.Add(p.Time, float64(p.Busy)/float64(procs))
	}
	return h, nil
}

// ArrivalHeatmap counts submissions per week-grid cell (value = jobs per
// sampled hour in that slot).
func ArrivalHeatmap(ps []sim.Placement) *Heatmap {
	// First count raw arrivals per (absolute hour), then fold.
	counts := map[int64]float64{}
	var minHour, maxHour int64
	first := true
	for _, p := range ps {
		hr := p.Job.Arrival / 3600
		counts[hr]++
		if first || hr < minHour {
			minHour = hr
		}
		if first || hr > maxHour {
			maxHour = hr
		}
		first = false
	}
	h := &Heatmap{}
	if first {
		return h
	}
	for hr := minHour; hr <= maxHour; hr++ {
		h.Add(hr*3600, counts[hr])
	}
	return h
}
