package metrics

import (
	"math"
	"sort"
)

// Fairness quantifies how evenly a scheduler spreads delay across jobs —
// the flip side of the paper's worst-case turnaround discussion (EASY's
// unbounded tail is a fairness failure concentrated on a few victims, which
// averages hide).
type Fairness struct {
	// GiniSlowdown is the Gini coefficient of per-job slowdowns: 0 when
	// every job has the same slowdown, approaching 1 when a few jobs
	// absorb all of it.
	GiniSlowdown float64
	// GiniWait is the Gini coefficient of per-job wait times.
	GiniWait float64
	// TailRatio99 is P99/P50 of slowdown — how much worse the unlucky 1 %
	// fare than the typical job (0 when the median slowdown is 0).
	TailRatio99 float64
	// MaxMeanRatio is max/mean slowdown.
	MaxMeanRatio float64
}

// ComputeFairness derives fairness measures from outcomes. An empty input
// yields the zero value.
func ComputeFairness(outs []Outcome) Fairness {
	var f Fairness
	if len(outs) == 0 {
		return f
	}
	slows := make([]float64, len(outs))
	waits := make([]float64, len(outs))
	for i, o := range outs {
		slows[i] = o.Slowdown
		waits[i] = float64(o.Wait)
	}
	f.GiniSlowdown = gini(slows)
	f.GiniWait = gini(waits)

	sorted := append([]float64(nil), slows...)
	sort.Float64s(sorted)
	p50 := quantileSorted(sorted, 0.50)
	p99 := quantileSorted(sorted, 0.99)
	if p50 > 0 {
		f.TailRatio99 = p99 / p50
	}
	mean := 0.0
	for _, v := range slows {
		mean += v
	}
	mean /= float64(len(slows))
	if mean > 0 {
		f.MaxMeanRatio = sorted[len(sorted)-1] / mean
	}
	return f
}

// gini computes the Gini coefficient of non-negative values. Negative
// values are clamped to zero (waits can never be negative; defensive).
func gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	for i, v := range xs {
		if v < 0 {
			v = 0
		}
		s[i] = v
	}
	sort.Float64s(s)
	var cum, total float64
	for i, v := range s {
		// Weighted rank sum formulation: G = (2Σ i·x_i)/(nΣx) − (n+1)/n.
		cum += float64(i+1) * v
		total += v
	}
	n := float64(len(s))
	if total == 0 {
		return 0
	}
	g := (2*cum)/(n*total) - (n+1)/n
	if g < 0 {
		g = 0 // numerical noise on near-uniform inputs
	}
	return g
}

// quantileSorted returns the q-quantile (0..1) of an ascending slice by
// nearest-rank with linear interpolation.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := q * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// UserSummary aggregates outcomes per submitting user — centers care about
// per-user experience, not only per-job averages.
type UserSummary struct {
	User int
	Summary
}

// ByUser groups outcomes by the jobs' User field and summarises each
// group, sorted by user ID. Jobs with user 0 (unknown) form their own
// group.
func ByUser(outs []Outcome) []UserSummary {
	groups := map[int][]Outcome{}
	for _, o := range outs {
		groups[o.Job.User] = append(groups[o.Job.User], o)
	}
	users := make([]int, 0, len(groups))
	for u := range groups {
		users = append(users, u)
	}
	sort.Ints(users)
	out := make([]UserSummary, len(users))
	for i, u := range users {
		out[i] = UserSummary{User: u, Summary: Summarize(groups[u])}
	}
	return out
}
