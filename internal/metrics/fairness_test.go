package metrics

import (
	"math"
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
)

func outcomesWithSlowdowns(slows []float64) []Outcome {
	outs := make([]Outcome, len(slows))
	for i, s := range slows {
		outs[i] = Outcome{
			Job:      &job.Job{ID: i + 1, Runtime: 100, Estimate: 100, Width: 1, User: i % 3},
			Slowdown: s,
			Wait:     int64((s - 1) * 100),
		}
	}
	return outs
}

func TestGiniUniform(t *testing.T) {
	f := ComputeFairness(outcomesWithSlowdowns([]float64{2, 2, 2, 2}))
	if f.GiniSlowdown > 1e-9 {
		t.Fatalf("uniform Gini = %v, want 0", f.GiniSlowdown)
	}
}

func TestGiniConcentrated(t *testing.T) {
	// One job carries everything: Gini approaches (n-1)/n.
	slows := make([]float64, 100)
	slows[0] = 1000
	f := ComputeFairness(outcomesWithSlowdowns(slows))
	if f.GiniSlowdown < 0.95 {
		t.Fatalf("concentrated Gini = %v, want near 1", f.GiniSlowdown)
	}
}

func TestGiniKnownValue(t *testing.T) {
	// {1,3}: mean absolute difference = 2, mean = 2 → G = 2/(2·2) = 0.5·...
	// Exact: G = Σ|xi−xj| / (2n²μ) = (0+2+2+0)/(2·4·2) = 4/16 = 0.25.
	f := ComputeFairness(outcomesWithSlowdowns([]float64{1, 3}))
	if math.Abs(f.GiniSlowdown-0.25) > 1e-9 {
		t.Fatalf("Gini = %v, want 0.25", f.GiniSlowdown)
	}
}

func TestComputeFairnessEmpty(t *testing.T) {
	f := ComputeFairness(nil)
	if f.GiniSlowdown != 0 || f.TailRatio99 != 0 || f.MaxMeanRatio != 0 {
		t.Fatal("empty fairness not zero")
	}
}

func TestTailRatioAndMaxMean(t *testing.T) {
	slows := make([]float64, 100)
	for i := range slows {
		slows[i] = 1
	}
	slows[99] = 101
	f := ComputeFairness(outcomesWithSlowdowns(slows))
	if f.TailRatio99 <= 1 {
		t.Fatalf("TailRatio99 = %v, want > 1", f.TailRatio99)
	}
	mean := (99.0 + 101) / 100
	if math.Abs(f.MaxMeanRatio-101/mean) > 1e-9 {
		t.Fatalf("MaxMeanRatio = %v", f.MaxMeanRatio)
	}
}

func TestByUser(t *testing.T) {
	outs := outcomesWithSlowdowns([]float64{1, 2, 3, 4, 5, 6})
	us := ByUser(outs)
	if len(us) != 3 {
		t.Fatalf("user groups = %d", len(us))
	}
	for i := 1; i < len(us); i++ {
		if us[i].User <= us[i-1].User {
			t.Fatal("user summaries not sorted")
		}
	}
	total := 0
	for _, u := range us {
		total += u.N
	}
	if total != 6 {
		t.Fatalf("user summaries cover %d jobs", total)
	}
	// Users 0,1,2 get jobs {1,4},{2,5},{3,6}.
	if us[0].MeanSlowdown != 2.5 {
		t.Fatalf("user 0 mean = %v", us[0].MeanSlowdown)
	}
}

func TestByUserEmpty(t *testing.T) {
	if len(ByUser(nil)) != 0 {
		t.Fatal("empty ByUser should be empty")
	}
}

func TestTimeline(t *testing.T) {
	ps := []sim.Placement{
		mkPlacement(1, 0, 0, 100, 4, 100),  // busy [0,100)
		mkPlacement(2, 10, 100, 50, 2, 50), // queued [10,100), busy [100,150)
	}
	tl, err := Timeline(ps, 10)
	if err != nil {
		t.Fatal(err)
	}
	at := func(tt int64) TimelinePoint {
		for _, p := range tl {
			if p.Time == tt {
				return p
			}
		}
		t.Fatalf("no sample at %d", tt)
		return TimelinePoint{}
	}
	if p := at(0); p.Busy != 4 || p.Queued != 0 {
		t.Fatalf("t=0: %+v", p)
	}
	if p := at(50); p.Busy != 4 || p.Queued != 1 {
		t.Fatalf("t=50: %+v", p)
	}
	if p := at(100); p.Busy != 2 || p.Queued != 0 {
		t.Fatalf("t=100: %+v", p)
	}
	if p := at(150); p.Busy != 0 {
		t.Fatalf("t=150: %+v", p)
	}
}

func TestTimelineErrors(t *testing.T) {
	if _, err := Timeline(nil, 0); err == nil {
		t.Fatal("zero step should error")
	}
	tl, err := Timeline(nil, 10)
	if err != nil || tl != nil {
		t.Fatal("empty placements should return nil, nil")
	}
}

func TestPeakQueueDepth(t *testing.T) {
	ps := []sim.Placement{
		mkPlacement(1, 0, 0, 1000, 4, 1000),
		mkPlacement(2, 10, 1000, 100, 4, 100),
		mkPlacement(3, 20, 1000, 100, 4, 100),
		mkPlacement(4, 30, 2000, 100, 4, 100),
	}
	// Jobs 2,3,4 all waiting during [30,1000): depth 3.
	if got := PeakQueueDepth(ps); got != 3 {
		t.Fatalf("peak = %d, want 3", got)
	}
	if PeakQueueDepth(nil) != 0 {
		t.Fatal("empty peak should be 0")
	}
}

func TestLossOfCapacity(t *testing.T) {
	// Machine of 4. Job 1 (w2) runs [0,100); job 2 (w4) arrives at 0 but
	// cannot start until 100 (needs the whole machine). During [0,100)
	// the queue is non-empty and 2 processors idle: lost = 100×2. During
	// [100,200) the machine is full and the queue empty: lost 0.
	// Total = 200×4 = 800 → loss = 200/800 = 0.25.
	ps := []sim.Placement{
		mkPlacement(1, 0, 0, 100, 2, 100),
		mkPlacement(2, 0, 100, 100, 4, 100),
	}
	got, err := LossOfCapacity(ps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("loss = %v, want 0.25", got)
	}
}

func TestLossOfCapacityNoQueue(t *testing.T) {
	// A lone job: idle capacity with an empty queue is not "lost".
	ps := []sim.Placement{mkPlacement(1, 0, 0, 100, 1, 100)}
	got, err := LossOfCapacity(ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("loss = %v, want 0", got)
	}
}

func TestLossOfCapacityErrors(t *testing.T) {
	if _, err := LossOfCapacity(nil, 0); err == nil {
		t.Fatal("zero procs should error")
	}
	got, err := LossOfCapacity(nil, 4)
	if err != nil || got != 0 {
		t.Fatalf("empty schedule: %v, %v", got, err)
	}
}

func TestPeakQueueDepthSimultaneous(t *testing.T) {
	// A job starting exactly when another arrives: the start is processed
	// first, so depth never counts both.
	ps := []sim.Placement{
		mkPlacement(1, 0, 5, 10, 1, 10),
		mkPlacement(2, 5, 20, 10, 1, 10),
	}
	if got := PeakQueueDepth(ps); got != 1 {
		t.Fatalf("peak = %d, want 1", got)
	}
}
