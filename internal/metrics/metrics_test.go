package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/sim"
)

func TestBoundedSlowdown(t *testing.T) {
	cases := []struct {
		wait, rt int64
		want     float64
	}{
		{0, 100, 1},
		{100, 100, 2},
		{50, 100, 1.5},
		{0, 1, 1},    // sub-τ runtime clamps to τ
		{10, 1, 2},   // (10+10)/10 with τ=10
		{90, 5, 10},  // (90+10)/10
		{-5, 100, 1}, // negative wait clamps to 0
		{100, 0, 11}, // zero runtime: (100+10)/10
	}
	for _, tc := range cases {
		if got := BoundedSlowdown(tc.wait, tc.rt); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("BoundedSlowdown(%d,%d) = %v, want %v", tc.wait, tc.rt, got, tc.want)
		}
	}
}

func TestBoundedSlowdownAtLeastOne(t *testing.T) {
	f := func(wait uint32, rt uint32) bool {
		return BoundedSlowdown(int64(wait), int64(rt)) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mkPlacement(id int, arr, start, rt int64, w int, est int64) sim.Placement {
	j := &job.Job{ID: id, Arrival: arr, Runtime: rt, Estimate: est, Width: w}
	return sim.Placement{Job: j, Start: start, End: start + rt}
}

func TestFromPlacements(t *testing.T) {
	ps := []sim.Placement{
		mkPlacement(1, 0, 50, 100, 4, 100),      // SN, well estimated
		mkPlacement(2, 10, 10, 7200, 16, 30000), // LW, poorly estimated
	}
	outs := FromPlacements(ps, job.PaperThresholds())
	if len(outs) != 2 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	o := outs[0]
	if o.Wait != 50 || o.Turnaround != 150 {
		t.Fatalf("outcome 0 = %+v", o)
	}
	if math.Abs(o.Slowdown-1.5) > 1e-12 {
		t.Fatalf("slowdown = %v", o.Slowdown)
	}
	if o.Category != job.ShortNarrow || o.EstimateQuality != job.WellEstimated {
		t.Fatalf("classification = %v/%v", o.Category, o.EstimateQuality)
	}
	if outs[1].Category != job.LongWide || outs[1].EstimateQuality != job.PoorlyEstimated {
		t.Fatalf("classification 1 = %v/%v", outs[1].Category, outs[1].EstimateQuality)
	}
}

func TestSummarize(t *testing.T) {
	ps := []sim.Placement{
		mkPlacement(1, 0, 0, 100, 1, 100),   // slowdown 1, turnaround 100
		mkPlacement(2, 0, 100, 100, 1, 100), // slowdown 2, turnaround 200
		mkPlacement(3, 0, 300, 100, 1, 100), // slowdown 4, turnaround 400
	}
	s := Summarize(FromPlacements(ps, job.PaperThresholds()))
	if s.N != 3 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.MeanSlowdown-(1+2+4)/3.0) > 1e-12 {
		t.Fatalf("MeanSlowdown = %v", s.MeanSlowdown)
	}
	if s.MaxTurnaround != 400 || s.MaxWait != 300 {
		t.Fatalf("max turnaround/wait = %d/%d", s.MaxTurnaround, s.MaxWait)
	}
	if s.MaxSlowdown != 4 {
		t.Fatalf("MaxSlowdown = %v", s.MaxSlowdown)
	}
	if s.MedianSlowdown != 2 || s.MedianTurnaround != 200 {
		t.Fatalf("medians = %v/%v", s.MedianSlowdown, s.MedianTurnaround)
	}
	if math.Abs(s.MeanWait-(0+100+300)/3.0) > 1e-12 {
		t.Fatalf("MeanWait = %v", s.MeanWait)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.MeanSlowdown != 0 || s.MaxTurnaround != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestAnalyzeCategoriesAndUtilization(t *testing.T) {
	// Two jobs back to back on a 4-proc machine: utilization = work /
	// (4 × makespan) = (100×4 + 100×2) / (4 × 200) = 600/800.
	ps := []sim.Placement{
		mkPlacement(1, 0, 0, 100, 4, 100),
		mkPlacement(2, 0, 100, 100, 2, 100),
	}
	rep := Analyze("test", ps, job.PaperThresholds(), 4)
	if rep.Scheduler != "test" {
		t.Fatal("name lost")
	}
	if rep.Makespan != 200 {
		t.Fatalf("makespan = %d", rep.Makespan)
	}
	if math.Abs(rep.Utilization-600.0/800.0) > 1e-12 {
		t.Fatalf("utilization = %v", rep.Utilization)
	}
	if rep.ByCategory[job.ShortNarrow].N != 2 {
		t.Fatalf("SN count = %d", rep.ByCategory[job.ShortNarrow].N)
	}
	if rep.ByQuality[job.WellEstimated].N != 2 {
		t.Fatalf("well-estimated count = %d", rep.ByQuality[job.WellEstimated].N)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze("x", nil, job.PaperThresholds(), 4)
	if rep.Overall.N != 0 || rep.Utilization != 0 {
		t.Fatal("empty analyze not zero")
	}
}

func TestSubsetSummary(t *testing.T) {
	ps := []sim.Placement{
		mkPlacement(1, 0, 0, 100, 1, 100),
		mkPlacement(2, 0, 100, 100, 1, 100),
		mkPlacement(3, 0, 300, 100, 1, 100),
	}
	outs := FromPlacements(ps, job.PaperThresholds())
	s := SubsetSummary(outs, map[int]bool{1: true, 3: true})
	if s.N != 2 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.MeanSlowdown-(1+4)/2.0) > 1e-12 {
		t.Fatalf("MeanSlowdown = %v", s.MeanSlowdown)
	}
}

func TestPercentChange(t *testing.T) {
	got, err := PercentChange(4, 3)
	if err != nil || math.Abs(got-(-25)) > 1e-12 {
		t.Fatalf("PercentChange = %v, %v", got, err)
	}
	got, err = PercentChange(2, 3)
	if err != nil || math.Abs(got-50) > 1e-12 {
		t.Fatalf("PercentChange = %v, %v", got, err)
	}
	if _, err := PercentChange(0, 1); err == nil {
		t.Fatal("zero base should error")
	}
}

func TestFingerprintEquality(t *testing.T) {
	a := []sim.Placement{
		mkPlacement(1, 0, 0, 100, 1, 100),
		mkPlacement(2, 0, 100, 100, 1, 100),
	}
	// Same schedule, different slice order.
	b := []sim.Placement{a[1], a[0]}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint should be order independent")
	}
	// Different start time changes the fingerprint.
	c := []sim.Placement{
		mkPlacement(1, 0, 0, 100, 1, 100),
		mkPlacement(2, 0, 101, 100, 1, 100),
	}
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("fingerprint should detect a moved job")
	}
	if Fingerprint(nil) != Fingerprint([]sim.Placement{}) {
		t.Fatal("empty fingerprints should match")
	}
}
