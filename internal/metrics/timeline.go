package metrics

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// TimelinePoint samples system state at one instant.
type TimelinePoint struct {
	Time int64
	// Busy is the number of processors in use.
	Busy int
	// Queued is the number of jobs that have arrived but not started.
	Queued int
}

// Timeline samples processor usage and queue depth at fixed intervals over
// a finished schedule. It reconstructs both signals from placements alone,
// so any scheduler's run can be inspected after the fact. step must be
// positive; placements may be in any order.
func Timeline(ps []sim.Placement, step int64) ([]TimelinePoint, error) {
	if step <= 0 {
		return nil, fmt.Errorf("metrics: Timeline step %d must be positive", step)
	}
	if len(ps) == 0 {
		return nil, nil
	}

	type edge struct {
		t     int64
		dBusy int // processor delta at t
		dQ    int // queue-depth delta at t
	}
	edges := make([]edge, 0, len(ps)*3)
	minT, maxT := ps[0].Job.Arrival, ps[0].End
	for _, p := range ps {
		edges = append(edges,
			edge{t: p.Job.Arrival, dQ: +1},
			edge{t: p.Start, dBusy: +p.Job.Width, dQ: -1},
			edge{t: p.End, dBusy: -p.Job.Width},
		)
		if p.Job.Arrival < minT {
			minT = p.Job.Arrival
		}
		if p.End > maxT {
			maxT = p.End
		}
	}
	sort.Slice(edges, func(i, k int) bool { return edges[i].t < edges[k].t })

	var out []TimelinePoint
	busy, queued := 0, 0
	i := 0
	for t := minT; t <= maxT; t += step {
		for i < len(edges) && edges[i].t <= t {
			busy += edges[i].dBusy
			queued += edges[i].dQ
			i++
		}
		out = append(out, TimelinePoint{Time: t, Busy: busy, Queued: queued})
	}
	return out, nil
}

// LossOfCapacity measures the fraction of machine capacity that sat idle
// *while work was waiting* — the classic packing-inefficiency metric: idle
// processors with an empty queue are just low load, but idle processors
// with queued jobs are capacity the scheduler failed to deliver. Computed
// from the placements' exact event edges over [first arrival, last
// completion].
func LossOfCapacity(ps []sim.Placement, procs int) (float64, error) {
	if procs < 1 {
		return 0, fmt.Errorf("metrics: LossOfCapacity with %d processors", procs)
	}
	if len(ps) == 0 {
		return 0, nil
	}
	type edge struct {
		t     int64
		dBusy int
		dQ    int
		kind  int // starts/completions (0) before arrivals (1) at ties
	}
	edges := make([]edge, 0, len(ps)*3)
	minT, maxT := ps[0].Job.Arrival, ps[0].End
	for _, p := range ps {
		edges = append(edges,
			edge{t: p.Job.Arrival, dQ: +1, kind: 1},
			edge{t: p.Start, dBusy: +p.Job.Width, dQ: -1, kind: 0},
			edge{t: p.End, dBusy: -p.Job.Width, kind: 0},
		)
		if p.Job.Arrival < minT {
			minT = p.Job.Arrival
		}
		if p.End > maxT {
			maxT = p.End
		}
	}
	sort.Slice(edges, func(i, k int) bool {
		if edges[i].t != edges[k].t {
			return edges[i].t < edges[k].t
		}
		return edges[i].kind < edges[k].kind
	})

	var lost, total int64
	busy, queued := 0, 0
	prev := minT
	for _, e := range edges {
		if e.t > prev {
			span := e.t - prev
			total += span * int64(procs)
			if queued > 0 {
				lost += span * int64(procs-busy)
			}
			prev = e.t
		}
		busy += e.dBusy
		queued += e.dQ
	}
	if total == 0 {
		return 0, nil
	}
	return float64(lost) / float64(total), nil
}

// PeakQueueDepth returns the largest queue depth over the schedule,
// computed exactly from the event edges (not sampled).
func PeakQueueDepth(ps []sim.Placement) int {
	type edge struct {
		t  int64
		dq int
		// starts sort before arrivals at the same instant: a job that
		// starts the moment another arrives frees its slot first.
		kind int
	}
	edges := make([]edge, 0, len(ps)*2)
	for _, p := range ps {
		edges = append(edges, edge{t: p.Job.Arrival, dq: +1, kind: 1})
		edges = append(edges, edge{t: p.Start, dq: -1, kind: 0})
	}
	sort.Slice(edges, func(i, k int) bool {
		if edges[i].t != edges[k].t {
			return edges[i].t < edges[k].t
		}
		return edges[i].kind < edges[k].kind
	})
	depth, peak := 0, 0
	for _, e := range edges {
		depth += e.dq
		if depth > peak {
			peak = depth
		}
	}
	return peak
}
