package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
)

// ExampleBoundedSlowdown shows the paper's metric: the 10-second threshold
// keeps very short jobs from dominating averages.
func ExampleBoundedSlowdown() {
	fmt.Println(metrics.BoundedSlowdown(90, 100)) // waited 90s for a 100s job
	fmt.Println(metrics.BoundedSlowdown(90, 1))   // waited 90s for a 1s job: τ=10 caps the blowup
	// Output:
	// 1.9
	// 10
}
