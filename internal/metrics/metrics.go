// Package metrics turns raw schedule placements into the quantities the
// paper reports: per-job bounded slowdown, turnaround and wait times,
// aggregated overall, per job category (SN/SW/LN/LW), and per estimate
// quality (well/poorly estimated), plus worst-case statistics, machine
// utilization, and a schedule fingerprint used to test the §4.1 priority
// equivalence property.
package metrics

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SlowdownTau is the bounded-slowdown threshold: "The threshold of 10
// seconds is used to limit the influence of very short jobs on the metric."
const SlowdownTau = 10

// BoundedSlowdown computes (wait + max(runtime, τ)) / max(runtime, τ).
func BoundedSlowdown(wait, runtime int64) float64 {
	rt := runtime
	if rt < SlowdownTau {
		rt = SlowdownTau
	}
	if wait < 0 {
		wait = 0
	}
	return float64(wait+rt) / float64(rt)
}

// Outcome is the scheduling result for one job.
type Outcome struct {
	Job   *job.Job
	Start int64
	End   int64
	// Wait is the queueing delay before the first dispatch (Start −
	// Arrival).
	Wait int64
	// Delay is the total time the job was not running while in the system
	// (Turnaround − Runtime). For contiguous execution Delay == Wait;
	// preempted jobs additionally accumulate suspension time.
	Delay           int64
	Turnaround      int64 // End − Arrival
	Slowdown        float64
	Category        job.Category
	EstimateQuality job.EstimateQuality
}

// FromPlacements converts engine placements into outcomes, classifying each
// job under the given thresholds. Slowdown is computed from the total
// delay, so it prices suspension time for preempted jobs and reduces to the
// paper's definition for contiguous ones.
func FromPlacements(ps []sim.Placement, th job.Thresholds) []Outcome {
	out := make([]Outcome, len(ps))
	for i, p := range ps {
		wait := p.Start - p.Job.Arrival
		turnaround := p.End - p.Job.Arrival
		delay := turnaround - p.Job.Runtime
		if delay < 0 {
			delay = 0
		}
		out[i] = Outcome{
			Job:             p.Job,
			Start:           p.Start,
			End:             p.End,
			Wait:            wait,
			Delay:           delay,
			Turnaround:      turnaround,
			Slowdown:        BoundedSlowdown(delay, p.Job.Runtime),
			Category:        th.Classify(p.Job),
			EstimateQuality: job.ClassifyEstimate(p.Job),
		}
	}
	return out
}

// Summary aggregates outcomes.
type Summary struct {
	N                int
	MeanSlowdown     float64
	MeanTurnaround   float64
	MeanWait         float64
	MaxSlowdown      float64
	MaxTurnaround    int64 // the paper's worst-case turnaround (Tables 4, 7)
	MaxWait          int64
	P95Slowdown      float64
	MedianSlowdown   float64
	MedianTurnaround float64
}

// Summarize aggregates a set of outcomes; an empty set yields the zero
// Summary.
func Summarize(outs []Outcome) Summary {
	s := Summary{N: len(outs)}
	if len(outs) == 0 {
		return s
	}
	var sd, ta, wt stats.Accumulator
	sds := make([]float64, len(outs))
	tas := make([]float64, len(outs))
	for i, o := range outs {
		sd.Add(o.Slowdown)
		ta.Add(float64(o.Turnaround))
		wt.Add(float64(o.Wait))
		sds[i] = o.Slowdown
		tas[i] = float64(o.Turnaround)
		if o.Turnaround > s.MaxTurnaround {
			s.MaxTurnaround = o.Turnaround
		}
		if o.Wait > s.MaxWait {
			s.MaxWait = o.Wait
		}
	}
	s.MeanSlowdown = sd.Mean()
	s.MeanTurnaround = ta.Mean()
	s.MeanWait = wt.Mean()
	s.MaxSlowdown = sd.Max()
	qs := stats.Percentiles(sds, 50, 95)
	s.MedianSlowdown, s.P95Slowdown = qs[0], qs[1]
	s.MedianTurnaround = stats.Percentile(tas, 50)
	return s
}

// Report is the full per-run analysis.
type Report struct {
	Scheduler string
	Overall   Summary
	// ByCategory holds one summary per SN/SW/LN/LW category.
	ByCategory [job.NumCategories]Summary
	// ByQuality holds summaries for well- and poorly-estimated jobs.
	ByQuality [job.NumEstimateQualities]Summary
	// Utilization is delivered work / (procs × makespan), makespan running
	// from the first start to the last completion.
	Utilization float64
	// LossOfCapacity is the fraction of capacity idle while jobs waited —
	// the packing inefficiency the scheduler is responsible for.
	LossOfCapacity float64
	// Makespan is last completion − first start.
	Makespan int64
}

// Analyze builds a Report from placements.
func Analyze(schedName string, ps []sim.Placement, th job.Thresholds, procs int) Report {
	outs := FromPlacements(ps, th)
	rep := Report{Scheduler: schedName, Overall: Summarize(outs)}

	var perCat [job.NumCategories][]Outcome
	var perQual [job.NumEstimateQualities][]Outcome
	for _, o := range outs {
		perCat[o.Category] = append(perCat[o.Category], o)
		perQual[o.EstimateQuality] = append(perQual[o.EstimateQuality], o)
	}
	for c := range perCat {
		rep.ByCategory[c] = Summarize(perCat[c])
	}
	for q := range perQual {
		rep.ByQuality[q] = Summarize(perQual[q])
	}

	if len(ps) > 0 && procs > 0 {
		first, last := ps[0].Start, ps[0].End
		var work float64
		for _, p := range ps {
			if p.Start < first {
				first = p.Start
			}
			if p.End > last {
				last = p.End
			}
			work += float64(p.Job.Width) * float64(p.Job.Runtime)
		}
		rep.Makespan = last - first
		if rep.Makespan > 0 {
			rep.Utilization = work / (float64(procs) * float64(rep.Makespan))
		}
		if loss, err := LossOfCapacity(ps, procs); err == nil {
			rep.LossOfCapacity = loss
		}
	}
	return rep
}

// SubsetSummary summarises the outcomes of a specific set of job IDs —
// used by the Figure 4 analysis, which compares the *same* jobs under
// different estimate regimes.
func SubsetSummary(outs []Outcome, ids map[int]bool) Summary {
	var sel []Outcome
	for _, o := range outs {
		if ids[o.Job.ID] {
			sel = append(sel, o)
		}
	}
	return Summarize(sel)
}

// PercentChange returns 100 × (v − base)/base: the paper's Figure 2
// "relative change in slowdown" view. A zero base with nonzero v reports
// +Inf-free sentinel 0 and an error.
func PercentChange(base, v float64) (float64, error) {
	if base == 0 {
		return 0, fmt.Errorf("metrics: percent change against zero base")
	}
	return 100 * (v - base) / base, nil
}

// Fingerprint hashes the schedule (job ID, start) pairs, order-independent
// via sorting, so two runs can be compared for exact schedule equality —
// the §4.1 priority-equivalence check.
func Fingerprint(ps []sim.Placement) uint64 {
	type pair struct {
		id    int
		start int64
	}
	pairs := make([]pair, len(ps))
	for i, p := range ps {
		pairs[i] = pair{p.Job.ID, p.Start}
	}
	sort.Slice(pairs, func(i, k int) bool {
		if pairs[i].id != pairs[k].id {
			return pairs[i].id < pairs[k].id
		}
		return pairs[i].start < pairs[k].start
	})
	h := fnv.New64a()
	var buf [16]byte
	for _, p := range pairs {
		putUint64(buf[0:8], uint64(p.id))
		putUint64(buf[8:16], uint64(p.start))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
