// End-to-end fuzzing of every registered scheduler through the event engine
// under the invariant auditor. This lives in the external test package so it
// can import internal/audit (which itself imports sched for the
// differential harness).
package sched_test

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/job"
	"repro/internal/sched"
)

// decodeWorkload turns fuzz bytes into a machine size and a small job set:
// byte 0 picks the processor count, then each 4-byte group is one job
// (arrival delta, runtime, estimate overrun, width). A zero overrun byte
// yields an exact estimate, so the fuzzer can reach the regime where the
// conservative oracle comparison applies.
func decodeWorkload(data []byte) (int, []*job.Job) {
	if len(data) == 0 {
		return 0, nil
	}
	procs := int(data[0]%13) + 4 // 4..16
	data = data[1:]
	const maxJobs = 24
	var jobs []*job.Job
	clock := int64(0)
	for i := 0; i+3 < len(data) && len(jobs) < maxJobs; i += 4 {
		clock += int64(data[i] % 50)
		rt := int64(data[i+1]%120) + 1
		jobs = append(jobs, &job.Job{
			ID:       len(jobs) + 1,
			Arrival:  clock,
			Runtime:  rt,
			Estimate: rt + int64(data[i+2]%60),
			Width:    int(data[i+3])%procs + 1,
		})
	}
	return procs, jobs
}

// FuzzSchedulerRun runs each decoded workload through every registered
// scheduler kind under the audit wrapper: any invariant violation, engine
// error, or panic fails the input. When every estimate is exact,
// conservative backfilling under FCFS is additionally checked against the
// independent brute-force oracle.
func FuzzSchedulerRun(f *testing.F) {
	// The canonical backfill scenario (exact estimates, 10 processors).
	f.Add([]byte("\x06\x00\x63\x00\x05\x01\x63\x00\x05\x01\x31\x00\x03"))
	// Overestimated runtimes: compression and kill-at-estimate paths fire.
	f.Add([]byte("\x0c\x00\x20\x10\x07\x05\x40\x3b\x03\x02\x08\x2c\x01\x09\x50\x1e\x06"))
	// Degenerate: smallest machine, one unit job.
	f.Add([]byte("\x00\x00\x00\x00\x00"))
	pol, err := sched.PolicyByName("FCFS")
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		procs, jobs := decodeWorkload(data)
		if len(jobs) == 0 {
			t.Skip()
		}
		exact := true
		for _, j := range jobs {
			if j.Estimate != j.Runtime {
				exact = false
				break
			}
		}
		for _, kind := range sched.Kinds() {
			mk, err := sched.MakerFor(kind, pol)
			if err != nil {
				t.Fatal(err)
			}
			ps, rep, err := audit.Run(procs, jobs, mk(procs), audit.OptionsForKind(kind, pol))
			if err != nil {
				t.Fatalf("%s: engine: %v\nworkload (procs=%d): %v", kind, err, procs, jobs)
			}
			if err := rep.Err(); err != nil {
				t.Fatalf("%s: %v\nworkload (procs=%d): %v", kind, err, procs, jobs)
			}
			if exact && kind == "conservative" {
				want := audit.OracleStarts(procs, jobs)
				for _, p := range ps {
					if p.Start != want[p.Job.ID] {
						t.Fatalf("conservative/FCFS: job %d starts at %d, oracle says %d\nworkload (procs=%d): %v",
							p.Job.ID, p.Start, want[p.Job.ID], procs, jobs)
					}
				}
			}
		}
	})
}
