package sched

import (
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestPreemptiveConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewPreemptive(0, FCFS{}, 2, 60) },
		func() { NewPreemptive(8, nil, 2, 60) },
		func() { NewPreemptive(8, FCFS{}, 0.5, 60) },
		func() { NewPreemptive(8, FCFS{}, 2, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
	if got := NewPreemptive(8, SJF{}, 5, 60).Name(); got != "Preemptive(SJF,xf>=5)" {
		t.Fatalf("Name = %q", got)
	}
}

// TestGoldenPreemption: a wide job starves behind a long narrow job; once
// its xfactor crosses the threshold it preempts the low-priority runner,
// which resumes afterwards with exactly its remaining work.
func TestGoldenPreemption(t *testing.T) {
	// Machine 10. j1: w4, runtime 10000, starts at 0 (never blocks j2's
	// shadow — j2 needs all 10 procs).
	// j2: w10, est 100, arrives at 10. EASY alone: must wait until j1
	// completes at 10000. Preemptive with threshold 5: j2's xfactor hits 5
	// at wait = 4×est = 400, i.e. t=410. The next event after that... no
	// events occur between 10 and 10000! Preemption needs a wake-up; give
	// the workload a heartbeat of tiny jobs so decisions happen.
	jobs := []*job.Job{
		exactJob(1, 0, 10000, 4),
		exactJob(2, 10, 100, 10),
	}
	// Heartbeat: 1-proc 1-second jobs every 50s. They backfill instantly
	// beside j1 (ending before any shadow) while capacity remains.
	id := 3
	for t0 := int64(50); t0 <= 1000; t0 += 50 {
		jobs = append(jobs, exactJob(id, t0, 1, 1))
		id++
	}

	s := NewPreemptive(10, FCFS{}, 5, 60)
	aud := NewAuditor(10)
	ps, err := sim.Run(sim.Machine{Procs: 10}, jobs, s, aud.Observer())
	if err != nil {
		t.Fatal(err)
	}
	if err := aud.Err(); err != nil {
		t.Fatal(err)
	}
	byID := map[int]sim.Placement{}
	for _, p := range ps {
		byID[p.Job.ID] = p
	}
	j2 := byID[2]
	if j2.Start > 1000 {
		t.Fatalf("starving wide job started at %d; preemption did not fire", j2.Start)
	}
	if j2.Start < 410 {
		t.Fatalf("wide job started at %d, before its xfactor could reach the threshold", j2.Start)
	}
	if j2.End != j2.Start+100 {
		t.Fatalf("wide job ran non-contiguously: %+v", j2)
	}
	// The victim resumed and completed all its work: total elapsed exceeds
	// its runtime by its suspension time.
	j1 := byID[1]
	if j1.End-j1.Start <= j1.Job.Runtime {
		t.Fatalf("victim was never suspended: %+v", j1)
	}
	suspendedFor := (j1.End - j1.Start) - j1.Job.Runtime
	if suspendedFor < 100 {
		t.Fatalf("victim suspension %ds shorter than the preemptor's runtime", suspendedFor)
	}
}

// TestPreemptiveNoPreemptionBelowThreshold: with a huge threshold the
// scheduler is plain EASY.
func TestPreemptiveMatchesEASYWithHugeThreshold(t *testing.T) {
	const procs = 32
	for trial := 0; trial < 6; trial++ {
		jobs := genWorkload(stats.NewRNG(int64(1200+trial)), 150, procs, 1)
		easy := runOn(t, procs, jobs, NewEASY(procs, FCFS{}))
		pre := runOn(t, procs, jobs, NewPreemptive(procs, FCFS{}, 1e18, 60))
		for id := range easy {
			if pre[id] != easy[id] {
				t.Fatalf("trial %d: job %d differs: EASY %d vs preemptive %d", trial, id, easy[id], pre[id])
			}
		}
	}
}

func TestPreemptiveValidOnRandomWorkloads(t *testing.T) {
	const procs = 32
	for trial := 0; trial < 8; trial++ {
		jobs := genWorkload(stats.NewRNG(int64(1300+trial)), 200, procs, 1)
		for _, threshold := range []float64{2, 5, 20} {
			s := NewPreemptive(procs, FCFS{}, threshold, 60)
			aud := NewAuditor(procs)
			ps, err := sim.Run(sim.Machine{Procs: procs}, jobs, s, aud.Observer())
			if err != nil {
				t.Fatalf("trial %d threshold %v: %v", trial, threshold, err)
			}
			if err := aud.Err(); err != nil {
				t.Fatalf("trial %d threshold %v: %v", trial, threshold, err)
			}
			if len(ps) != len(jobs) {
				t.Fatalf("lost jobs: %d of %d", len(ps), len(jobs))
			}
			// Every job's elapsed time covers its full runtime.
			for _, p := range ps {
				if p.End-p.Start < p.Job.Runtime {
					t.Fatalf("%v finished too fast: %+v", p.Job, p)
				}
			}
		}
	}
}

func TestPreemptiveActuallyPreempts(t *testing.T) {
	const procs = 32
	preempted := false
	for trial := 0; trial < 8 && !preempted; trial++ {
		jobs := genWorkload(stats.NewRNG(int64(1400+trial)), 250, procs, 1)
		s := NewPreemptive(procs, FCFS{}, 2, 60)
		obs := &sim.Observer{OnSuspend: func(now int64, j *job.Job) { preempted = true }}
		if _, err := sim.Run(sim.Machine{Procs: procs}, jobs, s, obs); err != nil {
			t.Fatal(err)
		}
	}
	if !preempted {
		t.Fatal("threshold 2 never triggered a preemption on busy workloads")
	}
}

func TestPreemptiveImprovesWorstCaseOverEASY(t *testing.T) {
	// On a fixed busy workload, preemption should cut the maximum wide-job
	// delay relative to plain EASY(SJF) (the configuration whose tail
	// Table 4 flags).
	const procs = 32
	jobs := genWorkload(stats.NewRNG(1500), 300, procs, 1)
	maxDelay := func(s sim.Scheduler) int64 {
		aud := NewAuditor(procs)
		ps, err := sim.Run(sim.Machine{Procs: procs}, jobs, s, aud.Observer())
		if err != nil {
			t.Fatal(err)
		}
		if err := aud.Err(); err != nil {
			t.Fatal(err)
		}
		var worst int64
		for _, p := range ps {
			if d := p.End - p.Job.Arrival; d > worst {
				worst = d
			}
		}
		return worst
	}
	easy := maxDelay(NewEASY(procs, SJF{}))
	pre := maxDelay(NewPreemptive(procs, SJF{}, 3, 60))
	if pre > easy {
		t.Fatalf("preemptive worst case %d exceeds EASY's %d", pre, easy)
	}
}
