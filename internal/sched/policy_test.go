package sched

import (
	"math"
	"sort"
	"testing"

	"repro/internal/job"
	"repro/internal/stats"
)

func pj(id int, arrival, estimate int64, width int) *job.Job {
	return &job.Job{ID: id, Arrival: arrival, Runtime: estimate, Estimate: estimate, Width: width}
}

func TestFCFSOrder(t *testing.T) {
	a, b := pj(1, 10, 100, 1), pj(2, 20, 1, 1)
	if !(FCFS{}).Less(a, b, 1000) {
		t.Fatal("earlier arrival should come first")
	}
	if (FCFS{}).Less(b, a, 1000) {
		t.Fatal("later arrival should not come first")
	}
}

func TestFCFSTieBreaksByID(t *testing.T) {
	a, b := pj(1, 10, 100, 1), pj(2, 10, 1, 1)
	if !(FCFS{}).Less(a, b, 0) || (FCFS{}).Less(b, a, 0) {
		t.Fatal("equal arrivals should order by ID")
	}
}

func TestSJFOrder(t *testing.T) {
	short, long := pj(5, 50, 60, 1), pj(1, 0, 7200, 1)
	if !(SJF{}).Less(short, long, 100) {
		t.Fatal("shorter estimate should come first despite later arrival")
	}
	// Equal estimates fall back to FCFS.
	a, b := pj(1, 10, 60, 1), pj(2, 5, 60, 1)
	if !(SJF{}).Less(b, a, 100) {
		t.Fatal("equal estimates should order by arrival")
	}
}

func TestLJFOrder(t *testing.T) {
	short, long := pj(5, 50, 60, 1), pj(1, 0, 7200, 1)
	if !(LJF{}).Less(long, short, 100) {
		t.Fatal("longer estimate should come first under LJF")
	}
}

func TestXFactorValue(t *testing.T) {
	j := pj(1, 100, 50, 1)
	cases := []struct {
		now  int64
		want float64
	}{
		{100, 1}, // no wait
		{150, 2}, // wait 50, est 50
		{50, 1},  // now before arrival clamps wait to 0
		{600, (500 + 50.0) / 50.0},
	}
	for _, tc := range cases {
		if got := XFactor(j, tc.now); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("XFactor(now=%d) = %v, want %v", tc.now, got, tc.want)
		}
	}
	z := &job.Job{ID: 2, Arrival: 0, Estimate: 0, Width: 1}
	if got := XFactor(z, 10); got != 11 {
		t.Errorf("zero-estimate xfactor = %v, want 11 (clamped to 1s)", got)
	}
}

func TestXFPrefersGrownShortJob(t *testing.T) {
	// A short job that has waited has a much larger xfactor than a long
	// job that has waited equally.
	short := pj(1, 0, 60, 1)  // xf at 600: 11
	long := pj(2, 0, 3600, 1) // xf at 600: 1.166
	if !(XF{}).Less(short, long, 600) {
		t.Fatal("short waited job should outrank long one under XF")
	}
	// At arrival both have xf 1: falls to FCFS tiebreak.
	a, b := pj(1, 0, 60, 1), pj(2, 0, 120, 1)
	if !(XF{}).Less(a, b, 0) {
		t.Fatal("equal xfactors should order by arrival/ID")
	}
}

func TestWFPWeightsWidth(t *testing.T) {
	narrow := pj(1, 0, 100, 1)
	wide := pj(2, 0, 100, 32)
	if !(WFP{}).Less(wide, narrow, 100) {
		t.Fatal("wider job should outrank narrow one under WFP at equal xf")
	}
}

func TestPoliciesRegistry(t *testing.T) {
	ps := Policies()
	if len(ps) != 5 {
		t.Fatalf("Policies() returned %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name()] = true
	}
	for _, want := range []string{"FCFS", "SJF", "XF", "LJF", "WFP"} {
		if !names[want] {
			t.Errorf("missing policy %s", want)
		}
	}
}

func TestPolicyByName(t *testing.T) {
	p, err := PolicyByName("SJF")
	if err != nil || p.Name() != "SJF" {
		t.Fatalf("PolicyByName(SJF) = %v, %v", p, err)
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy should error")
	}
}

// TestPoliciesTotalOrder verifies every policy induces a strict weak
// ordering usable by sort: irreflexive, asymmetric, and deterministic.
func TestPoliciesTotalOrder(t *testing.T) {
	r := stats.NewRNG(51)
	jobs := make([]*job.Job, 60)
	for i := range jobs {
		jobs[i] = &job.Job{
			ID:       i + 1,
			Arrival:  int64(r.Intn(20)), // many ties
			Runtime:  int64(r.Intn(5)*60 + 60),
			Estimate: int64(r.Intn(5)*60 + 60),
			Width:    r.Intn(4) + 1,
		}
	}
	for _, pol := range Policies() {
		now := int64(500)
		for _, a := range jobs {
			if pol.Less(a, a, now) {
				t.Fatalf("%s: Less(a,a) true", pol.Name())
			}
			for _, b := range jobs {
				if a != b && pol.Less(a, b, now) && pol.Less(b, a, now) {
					t.Fatalf("%s: Less not asymmetric for %v / %v", pol.Name(), a, b)
				}
				if a != b && !pol.Less(a, b, now) && !pol.Less(b, a, now) {
					t.Fatalf("%s: jobs %d and %d incomparable (order not total)", pol.Name(), a.ID, b.ID)
				}
			}
		}
		// Sorting twice from shuffled inputs gives the same order.
		s1 := append([]*job.Job(nil), jobs...)
		s2 := append([]*job.Job(nil), jobs...)
		for i, k := range r.Perm(len(s2)) {
			s2[i], s2[k] = s2[k], s2[i]
		}
		sortQueue(s1, pol, now)
		sortQueue(s2, pol, now)
		for i := range s1 {
			if s1[i].ID != s2[i].ID {
				t.Fatalf("%s: order depends on input permutation at %d", pol.Name(), i)
			}
		}
	}
}

func TestSortQueueFCFSIsArrivalSorted(t *testing.T) {
	r := stats.NewRNG(53)
	jobs := make([]*job.Job, 40)
	for i := range jobs {
		jobs[i] = &job.Job{ID: i + 1, Arrival: int64(r.Intn(1000)), Estimate: 60, Width: 1}
	}
	sortQueue(jobs, FCFS{}, 0)
	if !sort.SliceIsSorted(jobs, func(i, k int) bool {
		if jobs[i].Arrival != jobs[k].Arrival {
			return jobs[i].Arrival < jobs[k].Arrival
		}
		return jobs[i].ID < jobs[k].ID
	}) {
		t.Fatal("FCFS sort not by arrival")
	}
}
