package sched

import (
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestDepthKConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewDepthK(0, FCFS{}, 1) },
		func() { NewDepthK(4, nil, 1) },
		func() { NewDepthK(4, FCFS{}, 0) },
		func() { NewSlackBased(0, FCFS{}, 1) },
		func() { NewSlackBased(4, nil, 1) },
		func() { NewSlackBased(4, FCFS{}, -1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDepthKNames(t *testing.T) {
	if got := NewDepthK(8, SJF{}, 4).Name(); got != "DepthK(SJF,k=4)" {
		t.Fatalf("Name = %q", got)
	}
	if got := NewSlackBased(8, XF{}, 1.5).Name(); got != "Slack(XF,s=1.5)" {
		t.Fatalf("Name = %q", got)
	}
	if got := NewConservativeNoCompression(8, FCFS{}).Name(); got != "ConservativeNC(FCFS)" {
		t.Fatalf("Name = %q", got)
	}
}

// TestDepthK1MatchesEASY is the implementation cross-check: lookahead-1
// backfilling over the availability profile must produce exactly the EASY
// shadow/extra schedule — two independent formulations of the same policy.
func TestDepthK1MatchesEASY(t *testing.T) {
	const procs = 32
	for trial := 0; trial < 12; trial++ {
		jobs := genWorkload(stats.NewRNG(int64(700+trial)), 150, procs, 1)
		for _, pol := range []Policy{FCFS{}, SJF{}, XF{}} {
			easy := runOn(t, procs, jobs, NewEASY(procs, pol))
			dk := runOn(t, procs, jobs, NewDepthK(procs, pol, 1))
			for id, s := range easy {
				if dk[id] != s {
					t.Fatalf("trial %d %s: job %d starts differ: EASY %d vs DepthK(1) %d",
						trial, pol.Name(), id, s, dk[id])
				}
			}
		}
	}
}

// TestDepthKGolden reuses the EASY golden scenarios at k=1.
func TestDepthKGolden(t *testing.T) {
	starts := runOn(t, 10, backfillScenario(), NewDepthK(10, FCFS{}, 1))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 2})

	// Shadow protection scenario: w5 would delay the head, w4 fits extra.
	jobs := []*job.Job{
		exactJob(1, 0, 100, 5),
		exactJob(2, 1, 100, 6),
		exactJob(3, 2, 500, 5),
	}
	starts = runOn(t, 10, jobs, NewDepthK(10, FCFS{}, 1))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 200})
}

// TestDepthKDepthMatters: deeper lookahead produces genuinely different
// schedules on a busy workload (k=1 vs k=16 must not coincide), and every
// depth remains valid under audit.
func TestDepthKDepthMatters(t *testing.T) {
	const procs = 32
	diverged := false
	for trial := 0; trial < 6; trial++ {
		jobs := genWorkload(stats.NewRNG(int64(900+trial)), 200, procs, 1)
		k1 := runOn(t, procs, jobs, NewDepthK(procs, FCFS{}, 1))
		k16 := runOn(t, procs, jobs, NewDepthK(procs, FCFS{}, 16))
		for id := range k1 {
			if k1[id] != k16[id] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("k=1 and k=16 produced identical schedules on every trial — depth appears inert")
	}
}

// TestDepthKProtectedJobNeverStarved: on a fixed busy workload, the mean
// wait of wide jobs should not degrade when moving from k=1 to deeper
// protection (reservations shield exactly the jobs that cannot backfill).
func TestDepthKDeepHelpsWideJobs(t *testing.T) {
	const procs = 32
	var k1Wide, k8Wide float64
	var n int
	jobs := genWorkload(stats.NewRNG(910), 300, procs, 1)
	k1 := runOn(t, procs, jobs, NewDepthK(procs, FCFS{}, 1))
	k8 := runOn(t, procs, jobs, NewDepthK(procs, FCFS{}, 8))
	for _, j := range jobs {
		if j.Width > procs/2 {
			k1Wide += float64(k1[j.ID] - j.Arrival)
			k8Wide += float64(k8[j.ID] - j.Arrival)
			n++
		}
	}
	if n == 0 {
		t.Skip("no wide jobs in workload")
	}
	if k8Wide > k1Wide*1.25 {
		t.Fatalf("deep protection made wide jobs wait 25%%+ longer: k1=%.0f k8=%.0f (n=%d)", k1Wide/float64(n), k8Wide/float64(n), n)
	}
}

func TestDepthKValidAndDeterministic(t *testing.T) {
	const procs = 32
	jobs := genWorkload(stats.NewRNG(801), 200, procs, 1)
	for _, k := range []int{1, 2, 4, 16} {
		a := runOn(t, procs, jobs, NewDepthK(procs, FCFS{}, k))
		b := runOn(t, procs, jobs, NewDepthK(procs, FCFS{}, k))
		for id := range a {
			if a[id] != b[id] {
				t.Fatalf("k=%d: nondeterministic", k)
			}
		}
	}
}

// --- Slack-based ------------------------------------------------------------

func TestSlackGoldenBackfill(t *testing.T) {
	// The canonical backfill scenario: slack-based also runs J3 early.
	starts := runOn(t, 10, backfillScenario(), NewSlackBased(10, FCFS{}, 1))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 2})
}

func TestSlackZeroNeverDelaysGuarantees(t *testing.T) {
	// With slack 0, the guarantee equals the first planned start; jobs must
	// start at or before it.
	const procs = 32
	jobs := genWorkload(stats.NewRNG(802), 150, procs, 1)
	s := NewSlackBased(procs, FCFS{}, 0)
	promise := map[int]int64{}
	obs := &sim.Observer{
		OnArrive: func(now int64, j *job.Job) {
			if g, ok := s.Guarantee(j.ID); ok {
				promise[j.ID] = g
			}
		},
		OnStart: func(now int64, j *job.Job) {
			if g, ok := promise[j.ID]; ok && now > g {
				t.Fatalf("job %d started at %d past guarantee %d (slack 0)", j.ID, now, g)
			}
		},
	}
	if _, err := sim.Run(sim.Machine{Procs: procs}, jobs, s, obs); err != nil {
		t.Fatal(err)
	}
	if v := s.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestSlackGuaranteeHonoredAcrossFactors(t *testing.T) {
	const procs = 32
	for _, sf := range []float64{0, 0.5, 2} {
		jobs := genWorkload(stats.NewRNG(803), 120, procs, 1)
		s := NewSlackBased(procs, XF{}, sf)
		promise := map[int]int64{}
		obs := &sim.Observer{
			OnArrive: func(now int64, j *job.Job) {
				if g, ok := s.Guarantee(j.ID); ok {
					promise[j.ID] = g
				}
			},
			OnStart: func(now int64, j *job.Job) {
				if g, ok := promise[j.ID]; ok && now > g {
					t.Fatalf("slack %v: job %d started at %d past guarantee %d", sf, j.ID, now, g)
				}
			},
		}
		aud := NewAuditor(procs)
		audObs := aud.Observer()
		combined := &sim.Observer{
			OnArrive: obs.OnArrive,
			OnStart: func(now int64, j *job.Job) {
				obs.OnStart(now, j)
				audObs.OnStart(now, j)
			},
			OnComplete: audObs.OnComplete,
		}
		if _, err := sim.Run(sim.Machine{Procs: procs}, jobs, s, combined); err != nil {
			t.Fatal(err)
		}
		if err := aud.Err(); err != nil {
			t.Fatal(err)
		}
		if v := s.Violations(); len(v) != 0 {
			t.Fatalf("slack %v: violations: %v", sf, v)
		}
	}
}

func TestSlackZeroEqualsConservative(t *testing.T) {
	// With slack factor 0 no displacement is permitted and compression is
	// conservative's, so the schedules must be bit-identical.
	const procs = 32
	for trial := 0; trial < 8; trial++ {
		jobs := genWorkload(stats.NewRNG(int64(820+trial)), 150, procs, 1)
		for _, pol := range []Policy{FCFS{}, SJF{}} {
			cons := runOn(t, procs, jobs, NewConservative(procs, pol))
			slack := runOn(t, procs, jobs, NewSlackBased(procs, pol, 0))
			for id, st := range cons {
				if slack[id] != st {
					t.Fatalf("trial %d %s: job %d starts differ: conservative %d vs slack0 %d",
						trial, pol.Name(), id, st, slack[id])
				}
			}
		}
	}
}

func TestSlackDisplacementHappens(t *testing.T) {
	// Machine 10. Blocker w10 [0,100). K (w10, est 500) reserved [100,600)
	// with slack 1 → guarantee 100+500=600. Then j (w10, est 100) arrives:
	// displacing K lets j run [100,200) and K at [200,700), within K's
	// guarantee. Conservative (slack 0) would keep arrival order.
	jobs := []*job.Job{
		exactJob(1, 0, 100, 10),
		exactJob(2, 1, 500, 10), // K
		exactJob(3, 2, 100, 10), // j, short
	}
	withSlack := runOn(t, 10, jobs, NewSlackBased(10, FCFS{}, 1))
	wantStarts(t, withSlack, map[int]int64{1: 0, 3: 100, 2: 200})
	noSlack := runOn(t, 10, jobs, NewSlackBased(10, FCFS{}, 0))
	wantStarts(t, noSlack, map[int]int64{1: 0, 2: 100, 3: 600})
}

func TestSlackBeatsConservativeOnPacking(t *testing.T) {
	// With generous slack, short arrivals squeeze ahead, so mean wait on a
	// busy fixed-seed workload should not be worse than conservative's.
	const procs = 32
	jobs := genWorkload(stats.NewRNG(804), 200, procs, 1)
	meanWait := func(s sim.Scheduler) float64 {
		starts := runOn(t, procs, jobs, s)
		var sum float64
		for _, j := range jobs {
			sum += float64(starts[j.ID] - j.Arrival)
		}
		return sum / float64(len(jobs))
	}
	cons := meanWait(NewConservative(procs, FCFS{}))
	slack := meanWait(NewSlackBased(procs, FCFS{}, 2))
	if slack > cons*1.05 {
		t.Fatalf("slack-based mean wait %.1f much worse than conservative %.1f", slack, cons)
	}
}

// --- Conservative no-compression ablation -------------------------------------

func TestConservativeNoCompressionNeedsTimers(t *testing.T) {
	// Blocker estimates 1000 but finishes at 100. Without compression the
	// queued job must still start at its reservation (1000) — which only a
	// timer event can trigger — rather than deadlocking or jumping early.
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Runtime: 100, Estimate: 1000, Width: 10},
		exactJob(2, 1, 50, 10),
	}
	starts := runOn(t, 10, jobs, NewConservativeNoCompression(10, FCFS{}))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 1000})

	// The compressing scheduler pulls job 2 to the actual completion.
	starts = runOn(t, 10, jobs, NewConservative(10, FCFS{}))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100})
}

func TestConservativeNoCompressionValid(t *testing.T) {
	const procs = 32
	jobs := genWorkload(stats.NewRNG(805), 150, procs, 1)
	s := NewConservativeNoCompression(procs, FCFS{})
	runOn(t, procs, jobs, s)
	if v := s.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestConservativeCompressionHelpsOnAverage(t *testing.T) {
	// Per-job starts are NOT pointwise comparable across the two variants
	// (compression changes the profile later arrivals reserve against —
	// a Graham-style anomaly can move an individual job later), but on a
	// busy workload with overestimated runtimes compression must win on
	// mean wait: it is the mechanism that exploits early-completion holes.
	const procs = 32
	jobs := genWorkload(stats.NewRNG(806), 200, procs, 1)
	for i := range jobs {
		jobs[i].Estimate = jobs[i].Runtime * 3
	}
	meanWait := func(s sim.Scheduler) float64 {
		starts := runOn(t, procs, jobs, s)
		var sum float64
		for _, j := range jobs {
			sum += float64(starts[j.ID] - j.Arrival)
		}
		return sum / float64(len(jobs))
	}
	with := meanWait(NewConservative(procs, FCFS{}))
	without := meanWait(NewConservativeNoCompression(procs, FCFS{}))
	if with >= without {
		t.Fatalf("compression mean wait %.1f not below no-compression %.1f", with, without)
	}
}
