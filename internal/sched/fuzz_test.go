package sched

import (
	"testing"

	"repro/internal/stats"
)

// FuzzProfileOps drives the availability profile with an op stream decoded
// from fuzz bytes, checking structural invariants after every operation.
// Reserves are gated on MinFree so the capacity panics stay unreachable;
// if the fuzzer finds a way to corrupt the structure anyway, check() or an
// unexpected panic reports it.
func FuzzProfileOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 252, 251, 250})
	f.Fuzz(func(t *testing.T, data []byte) {
		const procs = 16
		p := NewProfile(procs)
		type window struct {
			from, dur int64
			width     int
		}
		var live []window
		r := stats.NewRNG(1)
		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 3
			from := int64(data[i+1]) * 16
			dur := int64(data[i+2]%200) + 1
			width := int(data[i+3]%procs) + 1
			switch op {
			case 0: // reserve if feasible
				if p.MinFree(from, dur) >= width {
					p.Reserve(from, dur, width)
					live = append(live, window{from, dur, width})
				}
			case 1: // release a live window
				if len(live) > 0 {
					k := r.Intn(len(live))
					w := live[k]
					live = append(live[:k], live[k+1:]...)
					p.Release(w.from, w.dur, w.width)
				}
			case 2: // query
				s := p.FindStart(from, dur, width)
				if s < from {
					t.Fatalf("FindStart(%d,...) = %d before from", from, s)
				}
				if !p.FitsAt(s, dur, width) {
					t.Fatalf("FindStart result does not fit")
				}
			}
			if err := p.Check(); err != nil {
				t.Fatalf("profile invariant broken: %v", err)
			}
		}
	})
}
