package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewProfileAllFree(t *testing.T) {
	p := NewProfile(64)
	if p.Procs() != 64 {
		t.Fatalf("Procs = %d", p.Procs())
	}
	for _, tt := range []int64{0, 1, 1000, 1 << 40} {
		if got := p.FreeAt(tt); got != 64 {
			t.Fatalf("FreeAt(%d) = %d, want 64", tt, got)
		}
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestNewProfilePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewProfile(0)
}

func TestReserveAndFreeAt(t *testing.T) {
	p := NewProfile(10)
	p.Reserve(100, 50, 4) // [100,150) uses 4
	cases := []struct {
		t    int64
		want int
	}{
		{0, 10}, {99, 10}, {100, 6}, {149, 6}, {150, 10}, {200, 10},
	}
	for _, tc := range cases {
		if got := p.FreeAt(tc.t); got != tc.want {
			t.Errorf("FreeAt(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestOverlappingReservations(t *testing.T) {
	p := NewProfile(10)
	p.Reserve(0, 100, 3)
	p.Reserve(50, 100, 3) // overlap in [50,100)
	if got := p.FreeAt(75); got != 4 {
		t.Fatalf("FreeAt(75) = %d, want 4", got)
	}
	if got := p.FreeAt(25); got != 7 {
		t.Fatalf("FreeAt(25) = %d, want 7", got)
	}
	if got := p.FreeAt(120); got != 7 {
		t.Fatalf("FreeAt(120) = %d, want 7", got)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveReleaseRoundTrip(t *testing.T) {
	p := NewProfile(10)
	p.Reserve(10, 20, 5)
	p.Release(10, 20, 5)
	if p.NumPoints() != 1 {
		t.Fatalf("points = %d, want fully coalesced 1", p.NumPoints())
	}
	if p.FreeAt(15) != 10 {
		t.Fatal("round trip did not restore capacity")
	}
}

func TestReservePanicsOnOversubscription(t *testing.T) {
	p := NewProfile(4)
	p.Reserve(0, 10, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on oversubscription")
		}
	}()
	p.Reserve(5, 10, 2)
}

func TestReleasePanicsBeyondCapacity(t *testing.T) {
	p := NewProfile(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-release")
		}
	}()
	p.Release(0, 10, 1)
}

func TestAdjustPanicsOnBadArgs(t *testing.T) {
	p := NewProfile(4)
	for _, f := range []func(){
		func() { p.Reserve(0, 0, 1) },
		func() { p.Reserve(0, -5, 1) },
		func() { p.Reserve(0, 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMinFree(t *testing.T) {
	p := NewProfile(10)
	p.Reserve(100, 50, 4)
	p.Reserve(200, 50, 9)
	cases := []struct {
		from, dur int64
		want      int
	}{
		{0, 50, 10},
		{0, 101, 6},  // touches [100,150)
		{0, 100, 10}, // stops exactly at 100
		{100, 50, 6},
		{100, 150, 1}, // spans both reservations
		{150, 50, 10}, // gap between them
		{250, 1000, 10},
		{150, 0, 10}, // zero duration = instant query
	}
	for _, tc := range cases {
		if got := p.MinFree(tc.from, tc.dur); got != tc.want {
			t.Errorf("MinFree(%d,%d) = %d, want %d", tc.from, tc.dur, got, tc.want)
		}
	}
}

func TestFitsAt(t *testing.T) {
	p := NewProfile(10)
	p.Reserve(100, 50, 4)
	if !p.FitsAt(0, 100, 10) {
		t.Error("should fit before the reservation")
	}
	if p.FitsAt(0, 101, 7) {
		t.Error("7 wide should not fit across the reservation")
	}
	if !p.FitsAt(50, 200, 6) {
		t.Error("6 wide fits everywhere")
	}
}

func TestFindStartImmediate(t *testing.T) {
	p := NewProfile(10)
	if got := p.FindStart(5, 100, 10); got != 5 {
		t.Fatalf("FindStart on empty profile = %d, want 5", got)
	}
}

func TestFindStartAfterBusyPeriod(t *testing.T) {
	p := NewProfile(10)
	p.Reserve(0, 100, 8) // only 2 free until t=100
	if got := p.FindStart(0, 50, 4); got != 100 {
		t.Fatalf("FindStart = %d, want 100", got)
	}
	if got := p.FindStart(0, 50, 2); got != 0 {
		t.Fatalf("narrow job should start now, got %d", got)
	}
}

func TestFindStartHole(t *testing.T) {
	// Busy [0,100) and [200,300); a hole [100,200) takes a job of dur<=100.
	p := NewProfile(10)
	p.Reserve(0, 100, 8)
	p.Reserve(200, 100, 8)
	if got := p.FindStart(0, 100, 4); got != 100 {
		t.Fatalf("job fitting the hole: FindStart = %d, want 100", got)
	}
	if got := p.FindStart(0, 101, 4); got != 300 {
		t.Fatalf("job too long for the hole: FindStart = %d, want 300", got)
	}
}

func TestFindStartFromInsideBusy(t *testing.T) {
	p := NewProfile(10)
	p.Reserve(0, 100, 8)
	if got := p.FindStart(50, 10, 4); got != 100 {
		t.Fatalf("FindStart = %d, want 100", got)
	}
}

func TestFindStartExactFit(t *testing.T) {
	p := NewProfile(8)
	p.Reserve(0, 100, 8)
	// Machine totally busy; an 8-wide job starts exactly at 100.
	if got := p.FindStart(0, 10, 8); got != 100 {
		t.Fatalf("FindStart = %d, want 100", got)
	}
}

func TestFindStartPanicsOnTooWide(t *testing.T) {
	p := NewProfile(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.FindStart(0, 10, 9)
}

func TestFindStartDegenerateArgs(t *testing.T) {
	p := NewProfile(8)
	// Zero/negative width and duration are clamped to 1.
	if got := p.FindStart(7, 0, 0); got != 7 {
		t.Fatalf("FindStart with degenerate args = %d, want 7", got)
	}
}

func TestTrim(t *testing.T) {
	p := NewProfile(10)
	p.Reserve(0, 100, 4)
	p.Reserve(200, 100, 6)
	p.Trim(150)
	if p.FreeAt(150) != 10 || p.FreeAt(250) != 4 || p.FreeAt(350) != 10 {
		t.Fatal("Trim changed future values")
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	p.Trim(250) // first point becomes mid-reservation
	if p.FreeAt(250) != 4 || p.FreeAt(300) != 10 {
		t.Fatal("second Trim changed future values")
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := NewProfile(10)
	p.Reserve(0, 100, 4)
	c := p.Clone()
	c.Reserve(0, 100, 4)
	if p.FreeAt(50) != 6 {
		t.Fatal("clone shares state with original")
	}
	if c.FreeAt(50) != 2 {
		t.Fatal("clone did not record its own reservation")
	}
}

// TestProfileRandomOpsInvariants drives the profile with random reserve /
// release / trim sequences (releases only of windows previously reserved),
// checking structural invariants and consistency with a brute-force model.
func TestProfileRandomOpsInvariants(t *testing.T) {
	r := stats.NewRNG(31)
	type window struct {
		from, dur int64
		width     int
	}
	const procs = 32
	const horizon = 1000
	for trial := 0; trial < 200; trial++ {
		p := NewProfile(procs)
		model := make([]int, horizon) // in-use per second
		var live []window
		for op := 0; op < 60; op++ {
			switch {
			case len(live) > 0 && r.Bool(0.35):
				// Release a random live window.
				i := r.Intn(len(live))
				w := live[i]
				live = append(live[:i], live[i+1:]...)
				p.Release(w.from, w.dur, w.width)
				for s := w.from; s < w.from+w.dur; s++ {
					model[s] -= w.width
				}
			default:
				from := int64(r.Intn(horizon / 2))
				dur := int64(r.Intn(horizon/2-1) + 1)
				width := r.Intn(procs) + 1
				if p.MinFree(from, dur) < width {
					continue // would oversubscribe; skip
				}
				p.Reserve(from, dur, width)
				live = append(live, window{from, dur, width})
				for s := from; s < from+dur; s++ {
					model[s] += width
				}
			}
			if err := p.Check(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
			// Spot-check agreement with the brute-force model.
			for k := 0; k < 8; k++ {
				at := int64(r.Intn(horizon))
				if got, want := p.FreeAt(at), procs-model[at]; got != want {
					t.Fatalf("trial %d op %d: FreeAt(%d) = %d, model says %d", trial, op, at, got, want)
				}
			}
		}
	}
}

// TestFindStartAgainstBruteForce compares FindStart with a per-second
// brute-force search on random profiles.
func TestFindStartAgainstBruteForce(t *testing.T) {
	r := stats.NewRNG(37)
	const procs = 16
	const horizon = 400
	for trial := 0; trial < 300; trial++ {
		p := NewProfile(procs)
		model := make([]int, horizon)
		// Random feasible reservations.
		for k := 0; k < 10; k++ {
			from := int64(r.Intn(horizon / 2))
			dur := int64(r.Intn(horizon/3) + 1)
			width := r.Intn(procs) + 1
			if p.MinFree(from, dur) < width {
				continue
			}
			p.Reserve(from, dur, width)
			for s := from; s < from+dur; s++ {
				model[s] += width
			}
		}
		from := int64(r.Intn(horizon / 2))
		dur := int64(r.Intn(horizon/4) + 1)
		width := r.Intn(procs) + 1

		got := p.FindStart(from, dur, width)

		want := int64(-1)
	search:
		for s := from; s < horizon; s++ {
			for u := s; u < s+dur; u++ {
				inUse := 0
				if u < horizon {
					inUse = model[u]
				}
				if procs-inUse < width {
					continue search
				}
			}
			want = s
			break
		}
		if want == -1 {
			// Feasible only at/after the horizon where the model is empty:
			// FindStart must return something >= horizon start of free tail.
			if got < int64(0) {
				t.Fatalf("trial %d: negative start", trial)
			}
			continue
		}
		if got != want {
			t.Fatalf("trial %d: FindStart(from=%d,dur=%d,w=%d) = %d, brute force %d", trial, from, dur, width, got, want)
		}
	}
}

func TestProfileQuickReserveFindStartConsistent(t *testing.T) {
	// Property: whatever FindStart returns is actually feasible, and no
	// earlier instant in [from, result) is.
	r := stats.NewRNG(41)
	f := func(nres uint8) bool {
		p := NewProfile(16)
		for k := 0; k < int(nres%12); k++ {
			from := int64(r.Intn(200))
			dur := int64(r.Intn(100) + 1)
			width := r.Intn(16) + 1
			if p.MinFree(from, dur) >= width {
				p.Reserve(from, dur, width)
			}
		}
		from := int64(r.Intn(200))
		dur := int64(r.Intn(100) + 1)
		width := r.Intn(16) + 1
		s := p.FindStart(from, dur, width)
		if s < from {
			return false
		}
		if !p.FitsAt(s, dur, width) {
			return false
		}
		// The instant just before s (if >= from) must not fit — otherwise
		// FindStart was not the earliest. (Check one instant only: full
		// minimality is covered by the brute-force test.)
		if s > from && p.FitsAt(s-1, dur, width) {
			return false
		}
		return p.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
