package sched

import (
	"fmt"
	"slices"

	"repro/internal/job"
)

// Preemptive implements selective preemption in the spirit of the authors'
// companion paper (Kettimuthu et al., "Selective preemption strategies for
// parallel job scheduling", ICPP 2002, cited as [6]): EASY backfilling
// augmented with suspension. When a queued job's expansion factor crosses
// PreemptThreshold and it still cannot start, the scheduler suspends the
// cheapest set of running victims — lowest priority first — wide enough to
// make room, subject to two safeguards that prevent thrash:
//
//   - a victim must have run at least MinRun seconds since its last
//     dispatch, so work always progresses between preemptions;
//   - a victim's own expansion factor must be strictly below the starving
//     job's, so preemption always flows from less- to more-starved work and
//     cycles cannot tighten.
//
// Suspended jobs return to the queue with their elapsed runtime banked;
// they resume (running only their remainder) like any other start, and
// their growing expansion factor makes them preempt-back candidates —
// bounded, not unbounded, by the safeguards above.
type Preemptive struct {
	procs            int
	pol              Policy
	preemptThreshold float64
	minRun           int64

	free    int
	queue   []*job.Job
	running []runInfo
	// consumed banks elapsed runtime per suspended/running job so the
	// scheduler can plan with remaining estimates.
	consumed map[int]int64
	// protected marks jobs started via preemption: they run to completion
	// and are never victims themselves. Without this, a preempted-for job
	// and its victims can trade the machine back and forth as their
	// expansion factors leapfrog (both grow with time-in-system).
	protected map[int]bool

	// runScratch is reused by headReservation's sorted snapshot of the
	// running set, so shadow computations stop allocating per event.
	runScratch []runInfo
}

// DefaultMinRun is the default guaranteed run quantum between preemptions.
const DefaultMinRun = 300

// NewPreemptive returns a preemptive EASY scheduler. threshold is the
// expansion factor at which a waiting job may trigger preemption (>= 1);
// minRun is the guaranteed quantum (>= 1; DefaultMinRun is a sensible
// choice). It panics on invalid arguments.
func NewPreemptive(procs int, pol Policy, threshold float64, minRun int64) *Preemptive {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewPreemptive with %d processors", procs))
	}
	if pol == nil {
		panic("sched: NewPreemptive with nil policy")
	}
	if threshold < 1 {
		panic(fmt.Sprintf("sched: NewPreemptive threshold %v < 1", threshold))
	}
	if minRun < 1 {
		panic(fmt.Sprintf("sched: NewPreemptive minRun %d < 1", minRun))
	}
	return &Preemptive{
		procs:            procs,
		pol:              pol,
		preemptThreshold: threshold,
		minRun:           minRun,
		free:             procs,
		consumed:         make(map[int]int64),
		protected:        make(map[int]bool),
	}
}

// Name returns e.g. "Preemptive(FCFS,xf>=5)".
func (s *Preemptive) Name() string {
	return fmt.Sprintf("Preemptive(%s,xf>=%g)", s.pol.Name(), s.preemptThreshold)
}

// Arrive queues the job.
func (s *Preemptive) Arrive(_ int64, j *job.Job) { s.queue = append(s.queue, j) }

// Complete returns the job's processors.
func (s *Preemptive) Complete(_ int64, j *job.Job) {
	s.free += j.Width
	delete(s.consumed, j.ID)
	delete(s.protected, j.ID)
	for i := range s.running {
		if s.running[i].j.ID == j.ID {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("sched: Preemptive completion for unknown %v", j))
}

// remainingEstimate is the job's wall-limit remainder given the runtime it
// has already consumed across dispatches.
func (s *Preemptive) remainingEstimate(j *job.Job) int64 {
	rem := j.Estimate - s.consumed[j.ID]
	if rem < 1 {
		rem = 1
	}
	return rem
}

// Launch satisfies sim.Scheduler; the engine uses LaunchAndPreempt when the
// scheduler is registered as a Preemptor, but Launch keeps the type usable
// anywhere a plain scheduler is expected (it simply never preempts).
func (s *Preemptive) Launch(now int64) []*job.Job {
	starts, _ := s.launch(now, false)
	return starts
}

// LaunchAndPreempt implements sim.Preemptor.
func (s *Preemptive) LaunchAndPreempt(now int64) (starts, suspends []*job.Job) {
	return s.launch(now, true)
}

// launch runs the EASY pass and, when allowed, the preemption step.
func (s *Preemptive) launch(now int64, allowPreempt bool) (starts, suspends []*job.Job) {
	sortQueue(s.queue, s.pol, now)

	start := func(j *job.Job) {
		s.free -= j.Width
		s.running = append(s.running, runInfo{j: j, start: now, estEnd: now + s.remainingEstimate(j)})
		starts = append(starts, j)
	}

	// Phase 1: heads that fit.
	for len(s.queue) > 0 && s.queue[0].Width <= s.free {
		start(s.queue[0])
		s.queue = s.queue[1:]
	}
	if len(s.queue) == 0 {
		return starts, nil
	}

	// Phase 2+3: the EASY shadow reservation and backfill pass for the
	// blocked head.
	head := s.queue[0]
	shadow, extra := s.headReservation(head)
	kept := s.queue[:1]
	for _, j := range s.queue[1:] {
		fitsNow := j.Width <= s.free
		switch {
		case fitsNow && now+s.remainingEstimate(j) <= shadow:
			start(j)
		case fitsNow && j.Width <= extra:
			start(j)
			extra -= j.Width
		default:
			kept = append(kept, j)
		}
	}
	s.queue = kept

	// Phase 4: selective preemption for the most starved waiting job. The
	// trigger deliberately looks beyond the priority head: under SJF the
	// starving wide job is by definition *never* the head — that is the
	// starvation mechanism — so head-only preemption would never fire.
	if !allowPreempt {
		return starts, nil
	}
	starving := -1
	starvingXF := s.preemptThreshold
	for i, j := range s.queue {
		if xf := XFactor(j, now); xf >= starvingXF {
			starving = i
			starvingXF = xf
		}
	}
	if starving < 0 {
		return starts, nil
	}
	target := s.queue[starving]
	victims := s.chooseVictims(now, target, starvingXF)
	if victims == nil {
		return starts, nil
	}
	for _, v := range victims {
		suspends = append(suspends, v.j)
		s.suspend(now, v)
	}
	// The starving job starts in the space the victims vacated and runs
	// to completion (protected from counter-preemption).
	s.queue = append(s.queue[:starving], s.queue[starving+1:]...)
	s.protected[target.ID] = true
	start(target)
	return starts, suspends
}

// chooseVictims picks the cheapest set of running jobs (ascending priority:
// the *last* jobs the policy would run) whose suspension frees enough
// processors for the starving head, or nil if no admissible set exists.
func (s *Preemptive) chooseVictims(now int64, head *job.Job, headXF float64) []runInfo {
	candidates := make([]runInfo, 0, len(s.running))
	for _, r := range s.running {
		if s.protected[r.j.ID] {
			continue // itself started via preemption: runs to completion
		}
		if now-r.start < s.minRun {
			continue // guaranteed quantum not yet served
		}
		if XFactor(r.j, now) >= headXF {
			continue // as starved as the head: not an admissible victim
		}
		candidates = append(candidates, r)
	}
	// Lowest priority first — suspend the jobs the policy values least.
	slices.SortStableFunc(candidates, func(a, b runInfo) int {
		return policyCmp(s.pol, b.j, a.j, now)
	})
	freed := s.free
	var chosen []runInfo
	for _, c := range candidates {
		if freed >= head.Width {
			break
		}
		chosen = append(chosen, c)
		freed += c.j.Width
	}
	if freed < head.Width {
		return nil
	}
	return chosen
}

// suspend moves a running job back to the queue, banking its elapsed
// runtime.
func (s *Preemptive) suspend(now int64, r runInfo) {
	s.consumed[r.j.ID] += now - r.start
	s.free += r.j.Width
	for i := range s.running {
		if s.running[i].j.ID == r.j.ID {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	s.queue = append(s.queue, r.j)
}

// headReservation mirrors EASY's shadow computation using remaining
// estimates.
func (s *Preemptive) headReservation(head *job.Job) (shadow int64, extra int) {
	s.runScratch = append(s.runScratch[:0], s.running...)
	runners := s.runScratch
	sortRunnersByEnd(runners)
	avail := s.free
	for i, r := range runners {
		avail += r.j.Width
		if avail < head.Width {
			continue
		}
		// Runners ending at the same instant also release their
		// processors by the shadow time; count them toward extra.
		for _, rr := range runners[i+1:] {
			if rr.estEnd != r.estEnd {
				break
			}
			avail += rr.j.Width
		}
		return r.estEnd, avail - head.Width
	}
	panic(fmt.Sprintf("sched: Preemptive cannot place head %v on %d processors", head, s.procs))
}

// QueuedJobs returns the jobs still waiting (including suspended ones).
func (s *Preemptive) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), s.queue...)
}
