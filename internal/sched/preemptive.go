package sched

import (
	"fmt"
	"slices"

	"repro/internal/job"
)

// Preemptive implements selective preemption in the spirit of the authors'
// companion paper (Kettimuthu et al., "Selective preemption strategies for
// parallel job scheduling", ICPP 2002, cited as [6]): EASY backfilling
// augmented with suspension. When a queued job's expansion factor crosses
// PreemptThreshold and it still cannot start, the scheduler suspends the
// cheapest set of running victims — lowest priority first — wide enough to
// make room, subject to two safeguards that prevent thrash:
//
//   - a victim must have run at least MinRun seconds since its last
//     dispatch, so work always progresses between preemptions;
//   - a victim's own expansion factor must be strictly below the starving
//     job's, so preemption always flows from less- to more-starved work and
//     cycles cannot tighten.
//
// Suspended jobs return to the queue with their elapsed runtime banked;
// they resume (running only their remainder) like any other start, and
// their growing expansion factor makes them preempt-back candidates —
// bounded, not unbounded, by the safeguards above.
type Preemptive struct {
	procs            int
	pol              Policy
	preemptThreshold float64
	minRun           int64

	free    int
	queue   []*job.Job
	running []runInfo
	// consumed banks elapsed runtime per suspended/running job so the
	// scheduler can plan with remaining estimates.
	consumed map[int]int64
	// protected marks jobs started via preemption: they run to completion
	// and are never victims themselves. Without this, a preempted-for job
	// and its victims can trade the machine back and forth as their
	// expansion factors leapfrog (both grow with time-in-system).
	protected map[int]bool

	// runScratch is reused by headReservation's sorted snapshot of the
	// running set, so shadow computations stop allocating per event.
	runScratch []runInfo

	// Incremental-pass state (DESIGN.md §15), mirroring EASY's: the cached
	// phase-2 reservation of the last completed pass plus the arrivals
	// since. nextAt additionally bounds the preemption trigger — the
	// earliest instant any queued job's expansion factor reaches
	// PreemptThreshold. memoAllow records whether that pass ran the
	// preemption phase; a call with the other mode cannot reuse it.
	memo       passMemo
	memoAllow  bool
	blocked    bool
	cachedHead *job.Job
	shadow     int64
	extra      int
	new        []*job.Job
}

// DefaultMinRun is the default guaranteed run quantum between preemptions.
const DefaultMinRun = 300

// NewPreemptive returns a preemptive EASY scheduler. threshold is the
// expansion factor at which a waiting job may trigger preemption (>= 1);
// minRun is the guaranteed quantum (>= 1; DefaultMinRun is a sensible
// choice). It panics on invalid arguments.
func NewPreemptive(procs int, pol Policy, threshold float64, minRun int64) *Preemptive {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewPreemptive with %d processors", procs))
	}
	if pol == nil {
		panic("sched: NewPreemptive with nil policy")
	}
	if threshold < 1 {
		panic(fmt.Sprintf("sched: NewPreemptive threshold %v < 1", threshold))
	}
	if minRun < 1 {
		panic(fmt.Sprintf("sched: NewPreemptive minRun %d < 1", minRun))
	}
	return &Preemptive{
		procs:            procs,
		pol:              pol,
		preemptThreshold: threshold,
		minRun:           minRun,
		free:             procs,
		consumed:         make(map[int]int64),
		protected:        make(map[int]bool),
		memo:             newPassMemo(pol),
	}
}

// Name returns e.g. "Preemptive(FCFS,xf>=5)".
func (s *Preemptive) Name() string {
	return fmt.Sprintf("Preemptive(%s,xf>=%g)", s.pol.Name(), s.preemptThreshold)
}

// Arrive queues the job at its policy position (time-invariant policies
// keep the queue permanently sorted; dynamic ones append and re-sort at
// the next pass).
func (s *Preemptive) Arrive(now int64, j *job.Job) {
	s.memo.noteArrival()
	if s.memo.timeInv {
		s.queue = orderedInsert(s.queue, j, s.pol, now)
		s.new = append(s.new, j)
		return
	}
	s.queue = append(s.queue, j)
}

// Complete returns the job's processors and invalidates the pass memo.
func (s *Preemptive) Complete(_ int64, j *job.Job) {
	s.memo.invalidate()
	s.free += j.Width
	delete(s.consumed, j.ID)
	delete(s.protected, j.ID)
	for i := range s.running {
		if s.running[i].j.ID == j.ID {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("sched: Preemptive completion for unknown %v", j))
}

// remainingEstimate is the job's wall-limit remainder given the runtime it
// has already consumed across dispatches.
func (s *Preemptive) remainingEstimate(j *job.Job) int64 {
	rem := j.Estimate - s.consumed[j.ID]
	if rem < 1 {
		rem = 1
	}
	return rem
}

// Launch satisfies sim.Scheduler; the engine uses LaunchAndPreempt when the
// scheduler is registered as a Preemptor, but Launch keeps the type usable
// anywhere a plain scheduler is expected (it simply never preempts).
func (s *Preemptive) Launch(now int64) []*job.Job {
	starts, _ := s.launch(now, false)
	return starts
}

// LaunchAndPreempt implements sim.Preemptor.
func (s *Preemptive) LaunchAndPreempt(now int64) (starts, suspends []*job.Job) {
	return s.launch(now, true)
}

// launch runs the EASY pass and, when allowed, the preemption step. Futile
// passes are skipped via the memo (whose nextAt also bounds the preemption
// trigger); arrivals-only passes against an unchanged blocked head evaluate
// just the new jobs, as in EASY.
func (s *Preemptive) launch(now int64, allowPreempt bool) (starts, suspends []*job.Job) {
	if allowPreempt == s.memoAllow {
		if s.memo.canSkip(now) {
			return nil, nil
		}
		if out, ok := s.launchIncremental(now); ok {
			return out, nil
		}
	}
	return s.launchFull(now, allowPreempt)
}

// launchIncremental mirrors EASY's arrivals-only pass with the extra
// precondition that no job — old (bounded by nextAt) or new (checked here)
// — has reached the preemption threshold, so phase 4 provably does
// nothing. Reports false when a full pass must run.
func (s *Preemptive) launchIncremental(now int64) ([]*job.Job, bool) {
	if !s.memo.arrivalsOnly() || !s.blocked || now >= s.memo.nextAt {
		return nil, false
	}
	if len(s.queue) == 0 || s.queue[0] != s.cachedHead {
		return nil, false // an arrival displaced the head: new reservation holder
	}
	for _, j := range s.new {
		if XFactor(j, now) >= s.preemptThreshold {
			return nil, false // the arrival could trigger preemption
		}
	}
	sortQueue(s.new, s.pol, now)
	nextAt := s.memo.nextAt
	var out []*job.Job
	for _, j := range s.new {
		fitsNow := j.Width <= s.free
		switch {
		case fitsNow && now+s.remainingEstimate(j) <= s.shadow:
			s.startRun(now, j)
			s.queue = removeJob(s.queue, j)
			out = append(out, j)
		case fitsNow && j.Width <= s.extra:
			s.startRun(now, j)
			s.extra -= j.Width
			s.queue = removeJob(s.queue, j)
			out = append(out, j)
		default:
			nextAt = minInt64(nextAt, xfCrossTime(j, s.preemptThreshold, now))
		}
	}
	s.clearNew()
	s.memo.completePass(now, nextAt)
	return out, true
}

// startRun dispatches j at now (queue removal is the caller's business).
func (s *Preemptive) startRun(now int64, j *job.Job) {
	s.free -= j.Width
	s.running = append(s.running, runInfo{j: j, start: now, estEnd: now + s.remainingEstimate(j)})
}

// launchFull is the unconditional pass.
func (s *Preemptive) launchFull(now int64, allowPreempt bool) (starts, suspends []*job.Job) {
	sortQueue(s.queue, s.pol, now)

	start := func(j *job.Job) {
		s.startRun(now, j)
		starts = append(starts, j)
	}

	// Phase 1: heads that fit.
	n := 0
	for n < len(s.queue) && s.queue[n].Width <= s.free {
		start(s.queue[n])
		n++
	}
	s.queue = compactFront(s.queue, n)
	if len(s.queue) == 0 {
		s.finishPass(now, false, allowPreempt, noWake)
		return starts, nil
	}

	// Phase 2+3: the EASY shadow reservation and backfill pass for the
	// blocked head.
	head := s.queue[0]
	s.shadow, s.extra = s.headReservation(head)
	kept := s.queue[:1]
	for _, j := range s.queue[1:] {
		fitsNow := j.Width <= s.free
		switch {
		case fitsNow && now+s.remainingEstimate(j) <= s.shadow:
			start(j)
		case fitsNow && j.Width <= s.extra:
			start(j)
			s.extra -= j.Width
		default:
			kept = append(kept, j)
		}
	}
	s.queue = clearTail(s.queue, len(kept))

	// Phase 4: selective preemption for the most starved waiting job. The
	// trigger deliberately looks beyond the priority head: under SJF the
	// starving wide job is by definition *never* the head — that is the
	// starvation mechanism — so head-only preemption would never fire.
	if allowPreempt {
		starving := -1
		starvingXF := s.preemptThreshold
		for i, j := range s.queue {
			if xf := XFactor(j, now); xf >= starvingXF {
				starving = i
				starvingXF = xf
			}
		}
		if starving >= 0 {
			if victims := s.chooseVictims(now, s.queue[starving], starvingXF); victims != nil {
				target := s.queue[starving]
				for _, v := range victims {
					suspends = append(suspends, v.j)
					s.suspend(now, v)
				}
				// The starving job starts in the space the victims vacated
				// and runs to completion (protected from counter-preemption).
				copy(s.queue[starving:], s.queue[starving+1:])
				s.queue = clearTail(s.queue, len(s.queue)-1)
				s.protected[target.ID] = true
				start(target)
				// Suspension re-queued the victims at the tail, out of
				// policy order, and freed structure mid-pass: the next pass
				// must run — and sort — in full.
				s.memo.invalidate()
				s.clearNew()
				return starts, suspends
			}
		}
	}

	// The pass is a fixpoint. The only time-triggered action left is the
	// preemption threshold: bound it by the earliest crossing among queued
	// jobs (xfCrossTime returns now itself for a job already past it, e.g.
	// when preemption just failed for lack of admissible victims, so only
	// same-instant repeats are skipped in that state).
	nextAt := int64(noWake)
	for _, j := range s.queue {
		nextAt = minInt64(nextAt, xfCrossTime(j, s.preemptThreshold, now))
	}
	s.finishPass(now, true, allowPreempt, nextAt)
	return starts, nil
}

// finishPass records the pass conclusion (see EASY.finishPass).
func (s *Preemptive) finishPass(now int64, blocked, allow bool, nextAt int64) {
	s.blocked = blocked
	s.cachedHead = nil
	if blocked {
		s.cachedHead = s.queue[0]
	}
	s.memoAllow = allow
	s.clearNew()
	s.memo.completePass(now, nextAt)
}

// clearNew empties the new-arrivals buffer without retaining job pointers.
func (s *Preemptive) clearNew() {
	for i := range s.new {
		s.new[i] = nil
	}
	s.new = s.new[:0]
}

// chooseVictims picks the cheapest set of running jobs (ascending priority:
// the *last* jobs the policy would run) whose suspension frees enough
// processors for the starving head, or nil if no admissible set exists.
func (s *Preemptive) chooseVictims(now int64, head *job.Job, headXF float64) []runInfo {
	candidates := make([]runInfo, 0, len(s.running))
	for _, r := range s.running {
		if s.protected[r.j.ID] {
			continue // itself started via preemption: runs to completion
		}
		if now-r.start < s.minRun {
			continue // guaranteed quantum not yet served
		}
		if XFactor(r.j, now) >= headXF {
			continue // as starved as the head: not an admissible victim
		}
		candidates = append(candidates, r)
	}
	// Lowest priority first — suspend the jobs the policy values least.
	slices.SortStableFunc(candidates, func(a, b runInfo) int {
		return policyCmp(s.pol, b.j, a.j, now)
	})
	freed := s.free
	var chosen []runInfo
	for _, c := range candidates {
		if freed >= head.Width {
			break
		}
		chosen = append(chosen, c)
		freed += c.j.Width
	}
	if freed < head.Width {
		return nil
	}
	return chosen
}

// suspend moves a running job back to the queue, banking its elapsed
// runtime.
func (s *Preemptive) suspend(now int64, r runInfo) {
	s.consumed[r.j.ID] += now - r.start
	s.free += r.j.Width
	for i := range s.running {
		if s.running[i].j.ID == r.j.ID {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	s.queue = append(s.queue, r.j)
}

// headReservation mirrors EASY's shadow computation using remaining
// estimates.
func (s *Preemptive) headReservation(head *job.Job) (shadow int64, extra int) {
	s.runScratch = append(s.runScratch[:0], s.running...)
	runners := s.runScratch
	sortRunnersByEnd(runners)
	avail := s.free
	for i, r := range runners {
		avail += r.j.Width
		if avail < head.Width {
			continue
		}
		// Runners ending at the same instant also release their
		// processors by the shadow time; count them toward extra.
		for _, rr := range runners[i+1:] {
			if rr.estEnd != r.estEnd {
				break
			}
			avail += rr.j.Width
		}
		return r.estEnd, avail - head.Width
	}
	panic(fmt.Sprintf("sched: Preemptive cannot place head %v on %d processors", head, s.procs))
}

// QueuedJobs returns the jobs still waiting (including suspended ones).
func (s *Preemptive) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), s.queue...)
}
