package sched

import (
	"fmt"
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/stats"
)

// runOn simulates jobs on a procs-wide machine and returns start times by
// job ID, failing the test on any error or audit violation.
func runOn(t *testing.T, procs int, jobs []*job.Job, s sim.Scheduler) map[int]int64 {
	t.Helper()
	aud := NewAuditor(procs)
	ps, err := sim.Run(sim.Machine{Procs: procs}, jobs, s, aud.Observer())
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	starts := make(map[int]int64, len(ps))
	for _, p := range ps {
		starts[p.Job.ID] = p.Start
	}
	return starts
}

func wantStarts(t *testing.T, got map[int]int64, want map[int]int64) {
	t.Helper()
	for id, w := range want {
		if got[id] != w {
			t.Errorf("job %d started at %d, want %d", id, got[id], w)
		}
	}
}

// exactJob builds a job whose estimate equals its runtime.
func exactJob(id int, arr, rt int64, w int) *job.Job {
	return &job.Job{ID: id, Arrival: arr, Runtime: rt, Estimate: rt, Width: w}
}

// --- Golden scenario 1: the canonical backfill example -------------------
//
// Machine 10. J1 (w6) runs [0,100). J2 (w6) must wait for it. J3 (w4,
// 50s) fits beside J1 and ends before J2 could start anyway, so both
// backfilling schedulers run it immediately; the no-backfill baseline makes
// it wait behind J2.

func backfillScenario() []*job.Job {
	return []*job.Job{
		exactJob(1, 0, 100, 6),
		exactJob(2, 1, 100, 6),
		exactJob(3, 2, 50, 4),
	}
}

func TestGoldenBackfillEASY(t *testing.T) {
	starts := runOn(t, 10, backfillScenario(), NewEASY(10, FCFS{}))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 2})
}

func TestGoldenBackfillConservative(t *testing.T) {
	starts := runOn(t, 10, backfillScenario(), NewConservative(10, FCFS{}))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 2})
}

func TestGoldenBackfillNoBackfill(t *testing.T) {
	starts := runOn(t, 10, backfillScenario(), NewNoBackfill(10, FCFS{}))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 100})
}

func TestGoldenBackfillSelective(t *testing.T) {
	// With a high threshold nothing is promoted, so pure backfilling: J3
	// starts immediately, like EASY.
	starts := runOn(t, 10, backfillScenario(), NewSelective(10, FCFS{}, 100))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 2})
}

// --- Golden scenario 2: SJF separates EASY from conservative -------------
//
// Machine 10, blocker J0 [0,100) w10. A long 10-wide job A arrives before a
// short 10-wide job B. Under conservative backfilling with accurate
// estimates reservations are granted in arrival order no matter the
// priority policy (§4.1), so A runs first. EASY(SJF) reorders the queue:
// B jumps ahead.

func sjfScenario() []*job.Job {
	return []*job.Job{
		exactJob(1, 0, 100, 10),  // blocker
		exactJob(2, 1, 1000, 10), // A: long
		exactJob(3, 2, 10, 10),   // B: short
	}
}

func TestGoldenSJFConservativeKeepsArrivalOrder(t *testing.T) {
	for _, pol := range []Policy{FCFS{}, SJF{}, XF{}} {
		starts := runOn(t, 10, sjfScenario(), NewConservative(10, pol))
		wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 1100})
	}
}

func TestGoldenSJFEASYReorders(t *testing.T) {
	starts := runOn(t, 10, sjfScenario(), NewEASY(10, SJF{}))
	wantStarts(t, starts, map[int]int64{1: 0, 3: 100, 2: 110})
}

func TestGoldenFCFSEASYKeepsOrder(t *testing.T) {
	starts := runOn(t, 10, sjfScenario(), NewEASY(10, FCFS{}))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 1100})
}

// --- Golden scenario 3: EASY protects the head's reservation -------------
//
// Machine 10, blocker [0,100) w5. Head J2 (w6) waits for the blocker's
// processors at shadow time 100 with extra = 4. A long narrow J3 (w5) fits
// now but would eat into the head's processors at the shadow time, so EASY
// must NOT backfill it; a w4 variant fits inside extra and must backfill.

func TestGoldenEASYShadowBlocksBackfill(t *testing.T) {
	jobs := []*job.Job{
		exactJob(1, 0, 100, 5),
		exactJob(2, 1, 100, 6),
		exactJob(3, 2, 500, 5), // would delay the head
	}
	starts := runOn(t, 10, jobs, NewEASY(10, FCFS{}))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 200})
}

func TestGoldenEASYExtraNodesAllowBackfill(t *testing.T) {
	jobs := []*job.Job{
		exactJob(1, 0, 100, 5),
		exactJob(2, 1, 100, 6),
		exactJob(3, 2, 500, 4), // fits in the head's extra nodes
	}
	starts := runOn(t, 10, jobs, NewEASY(10, FCFS{}))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 2})
}

// --- Golden scenario 4: early completion opens holes ---------------------
//
// The blocker estimates 100s but finishes at 40. Conservative compression
// must pull the queued jobs' guarantees forward to the actual completion.

func TestGoldenEarlyCompletionCompression(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Runtime: 40, Estimate: 100, Width: 10},
		exactJob(2, 1, 100, 6),
		exactJob(3, 2, 100, 4),
	}
	for _, s := range []sim.Scheduler{
		NewConservative(10, FCFS{}),
		NewEASY(10, FCFS{}),
		NewSelective(10, FCFS{}, 5),
	} {
		starts := runOn(t, 10, jobs, s)
		wantStarts(t, starts, map[int]int64{1: 0, 2: 40, 3: 40})
	}
}

// --- Golden scenario 5: no-backfill head-of-line blocking ----------------

func TestGoldenNoBackfillHeadOfLine(t *testing.T) {
	// A single waiting wide job blocks a stream of narrow ones.
	jobs := []*job.Job{
		exactJob(1, 0, 100, 10),
		exactJob(2, 1, 100, 10),
		exactJob(3, 2, 1, 1),
		exactJob(4, 3, 1, 1),
	}
	starts := runOn(t, 10, jobs, NewNoBackfill(10, FCFS{}))
	wantStarts(t, starts, map[int]int64{1: 0, 2: 100, 3: 200, 4: 200})
}

// --- Golden scenario 6: selective promotion bounds starvation ------------

func TestGoldenSelectivePromotion(t *testing.T) {
	// Wide job W (w10) arrives at t=1 with estimate 100 (xfactor crosses 2
	// when it has waited 100s). A stream of narrow 100s jobs arrives that
	// would starve W forever under pure backfilling; after promotion W gets
	// a reservation that the stream cannot push back.
	jobs := []*job.Job{
		exactJob(1, 0, 100, 5), // initial blocker half machine
		exactJob(2, 1, 100, 10),
	}
	// Narrow stream: one 100s w5 job every 50s; any two overlap to keep
	// five processors busy at all times.
	id := 3
	for t0 := int64(2); t0 < 2000; t0 += 50 {
		jobs = append(jobs, exactJob(id, t0, 100, 5))
		id++
	}
	// Under selective with threshold 2, W is promoted once its xfactor
	// reaches 2 (after waiting ~100s) and then starts at the earliest hole.
	starts := runOn(t, 10, jobs, NewSelective(10, FCFS{}, 2))
	wStart := starts[2]
	if wStart > 400 {
		t.Fatalf("promoted wide job started at %d; promotion failed to bound its wait", wStart)
	}
	// Sanity: the narrow stream does keep flowing before W runs.
	if starts[3] != 2 {
		t.Fatalf("first stream job should backfill at 2, got %d", starts[3])
	}
}

func TestSelectiveHighThresholdMatchesNoReservations(t *testing.T) {
	// With an enormous threshold selective never promotes; every start
	// decision is "fits now", which on this workload matches EASY with the
	// same policy because the head's shadow never blocks anything.
	jobs := genWorkload(stats.NewRNG(61), 80, 32, 0.5)
	sel := runOn(t, 32, jobs, NewSelective(32, FCFS{}, 1e18))
	if len(sel) != len(jobs) {
		t.Fatalf("selective lost jobs: %d of %d", len(sel), len(jobs))
	}
}

// --- Randomized cross-scheduler properties --------------------------------

// genWorkload builds a random but valid workload: n jobs on a procs-wide
// machine with mean offered load controlled by loadScale.
func genWorkload(r *stats.RNG, n, procs int, loadScale float64) []*job.Job {
	jobs := make([]*job.Job, 0, n)
	clock := int64(0)
	for i := 1; i <= n; i++ {
		clock += int64(r.Intn(200) + 1)
		rt := int64(r.Intn(3000) + 1)
		est := rt
		if r.Bool(0.5) {
			est = rt + int64(r.Intn(int(float64(rt)*3)+1))
		}
		w := r.Intn(procs) + 1
		if r.Bool(0.7) {
			w = r.Intn(procs/4) + 1 // mostly narrow
		}
		_ = loadScale
		jobs = append(jobs, &job.Job{
			ID: i, Arrival: clock, Runtime: rt, Estimate: est, Width: w,
		})
	}
	return jobs
}

func allMakers(procs int) map[string]func() sim.Scheduler {
	makers := map[string]func() sim.Scheduler{}
	for _, pol := range Policies() {
		pol := pol
		makers["EASY/"+pol.Name()] = func() sim.Scheduler { return NewEASY(procs, pol) }
		makers["EASYBestFit/"+pol.Name()] = func() sim.Scheduler { return NewEASYWithOrder(procs, pol, BestFit) }
		makers["EASYShortestFit/"+pol.Name()] = func() sim.Scheduler { return NewEASYWithOrder(procs, pol, ShortestFit) }
		makers["Conservative/"+pol.Name()] = func() sim.Scheduler { return NewConservative(procs, pol) }
		makers["ConservativeNC/"+pol.Name()] = func() sim.Scheduler { return NewConservativeNoCompression(procs, pol) }
		makers["NoBackfill/"+pol.Name()] = func() sim.Scheduler { return NewNoBackfill(procs, pol) }
		makers["Selective/"+pol.Name()] = func() sim.Scheduler { return NewSelective(procs, pol, 3) }
		makers["SelectiveAdaptive/"+pol.Name()] = func() sim.Scheduler { return NewSelectiveAdaptive(procs, pol) }
		makers["DepthK4/"+pol.Name()] = func() sim.Scheduler { return NewDepthK(procs, pol, 4) }
		makers["Slack1/"+pol.Name()] = func() sim.Scheduler { return NewSlackBased(procs, pol, 1) }
		makers["Preemptive/"+pol.Name()] = func() sim.Scheduler { return NewPreemptive(procs, pol, 3, 60) }
	}
	return makers
}

func TestAllSchedulersValidOnRandomWorkloads(t *testing.T) {
	const procs = 32
	for trial := 0; trial < 8; trial++ {
		jobs := genWorkload(stats.NewRNG(int64(100+trial)), 120, procs, 1)
		for name, mk := range allMakers(procs) {
			t.Run(fmt.Sprintf("%s/trial%d", name, trial), func(t *testing.T) {
				runOn(t, procs, jobs, mk())
			})
		}
	}
}

func TestSchedulersDeterministic(t *testing.T) {
	const procs = 32
	jobs := genWorkload(stats.NewRNG(7), 150, procs, 1)
	for name, mk := range allMakers(procs) {
		a := runOn(t, procs, jobs, mk())
		b := runOn(t, procs, jobs, mk())
		for id, s := range a {
			if b[id] != s {
				t.Fatalf("%s: job %d start differs across identical runs: %d vs %d", name, id, s, b[id])
			}
		}
	}
}

// TestConservativePriorityEquivalence is the paper's §4.1 claim: with
// accurate estimates, conservative backfilling produces the identical
// schedule under every priority policy.
func TestConservativePriorityEquivalence(t *testing.T) {
	const procs = 32
	for trial := 0; trial < 10; trial++ {
		r := stats.NewRNG(int64(200 + trial))
		jobs := genWorkload(r, 150, procs, 1)
		for _, j := range jobs {
			j.Estimate = j.Runtime // accurate estimates
			if j.Estimate < 1 {
				j.Estimate = 1
			}
		}
		ref := runOn(t, procs, jobs, NewConservative(procs, FCFS{}))
		for _, pol := range []Policy{SJF{}, XF{}, LJF{}, WFP{}} {
			got := runOn(t, procs, jobs, NewConservative(procs, pol))
			for id, s := range ref {
				if got[id] != s {
					t.Fatalf("trial %d: conservative(%s) differs from conservative(FCFS) on job %d: %d vs %d (violates §4.1 equivalence)",
						trial, pol.Name(), id, got[id], s)
				}
			}
		}
	}
}

// TestConservativePoliciesDivergeWithInaccurateEstimates is the flip side
// of §4.1: once estimates are inaccurate, holes appear and priority
// policies can (and on a busy workload, do) produce different schedules.
func TestConservativePoliciesDivergeWithInaccurateEstimates(t *testing.T) {
	const procs = 32
	r := stats.NewRNG(303)
	jobs := genWorkload(r, 200, procs, 1)
	for _, j := range jobs {
		j.Estimate = j.Runtime * 4 // systematic overestimation R=4
	}
	ref := runOn(t, procs, jobs, NewConservative(procs, FCFS{}))
	got := runOn(t, procs, jobs, NewConservative(procs, SJF{}))
	same := true
	for id, s := range ref {
		if got[id] != s {
			same = false
			break
		}
	}
	if same {
		t.Fatal("conservative(FCFS) and conservative(SJF) identical even with R=4 — compression appears not to be priority-driven")
	}
}

// TestConservativeGuaranteeMonotone verifies the no-delay guarantee: a
// queued job's reservation never moves later, and it starts no later than
// the guarantee it received at arrival.
func TestConservativeGuaranteeMonotone(t *testing.T) {
	const procs = 32
	for _, pol := range []Policy{FCFS{}, SJF{}, XF{}} {
		jobs := genWorkload(stats.NewRNG(400), 200, procs, 1)
		cons := NewConservative(procs, pol)
		promise := map[int]int64{}
		check := func(now int64) {
			for _, q := range cons.QueuedJobs() {
				resv, ok := cons.Reservation(q.ID)
				if !ok {
					t.Fatalf("queued job %d without reservation", q.ID)
				}
				if old, seen := promise[q.ID]; seen && resv > old {
					t.Fatalf("job %d guarantee moved later: %d -> %d", q.ID, old, resv)
				}
				promise[q.ID] = resv
			}
		}
		obs := &sim.Observer{
			OnArrive:   func(now int64, j *job.Job) { check(now) },
			OnComplete: func(now int64, j *job.Job) { check(now) },
			OnStart: func(now int64, j *job.Job) {
				if p, ok := promise[j.ID]; ok && now > p {
					t.Fatalf("job %d started at %d, later than its guarantee %d", j.ID, now, p)
				}
			},
		}
		if _, err := sim.Run(sim.Machine{Procs: procs}, jobs, cons, obs); err != nil {
			t.Fatal(err)
		}
		if v := cons.Violations(); len(v) != 0 {
			t.Fatalf("conservative recorded violations: %v", v)
		}
	}
}

// TestSelectiveNoInternalViolations runs selective over random workloads
// and requires a clean violation log.
func TestSelectiveNoInternalViolations(t *testing.T) {
	const procs = 32
	for trial := 0; trial < 5; trial++ {
		jobs := genWorkload(stats.NewRNG(int64(500+trial)), 150, procs, 1)
		for _, mk := range []func() *Selective{
			func() *Selective { return NewSelective(procs, FCFS{}, 2) },
			func() *Selective { return NewSelectiveAdaptive(procs, XF{}) },
		} {
			s := mk()
			runOn(t, procs, jobs, s)
			if v := s.Violations(); len(v) != 0 {
				t.Fatalf("%s: violations: %v", s.Name(), v)
			}
		}
	}
}

// TestBackfillingNeverWorseThanNoBackfillOnMakespan checks a fixed-seed
// statistical expectation: on a busy workload, EASY and conservative both
// finish the last job no later than the no-backfill baseline. (Not a
// theorem in general, but deterministic for these seeds and a strong
// regression canary.)
func TestBackfillingBeatsNoBackfillOnFixedSeeds(t *testing.T) {
	const procs = 32
	for _, seed := range []int64{1, 2, 3} {
		jobs := genWorkload(stats.NewRNG(seed), 200, procs, 1)
		meanWait := func(s sim.Scheduler) float64 {
			starts := runOn(t, procs, jobs, s)
			var sum float64
			for _, j := range jobs {
				sum += float64(starts[j.ID] - j.Arrival)
			}
			return sum / float64(len(jobs))
		}
		none := meanWait(NewNoBackfill(procs, FCFS{}))
		easy := meanWait(NewEASY(procs, FCFS{}))
		cons := meanWait(NewConservative(procs, FCFS{}))
		if easy > none {
			t.Errorf("seed %d: EASY mean wait %.1f worse than no-backfill %.1f", seed, easy, none)
		}
		if cons > none {
			t.Errorf("seed %d: conservative mean wait %.1f worse than no-backfill %.1f", seed, cons, none)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewEASY(0, FCFS{}) },
		func() { NewEASY(4, nil) },
		func() { NewConservative(0, FCFS{}) },
		func() { NewConservative(4, nil) },
		func() { NewNoBackfill(0, FCFS{}) },
		func() { NewNoBackfill(4, nil) },
		func() { NewSelective(0, FCFS{}, 2) },
		func() { NewSelective(4, nil, 2) },
		func() { NewSelective(4, FCFS{}, 0.5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSchedulerNames(t *testing.T) {
	cases := []struct {
		s    sim.Scheduler
		want string
	}{
		{NewEASY(4, FCFS{}), "EASY(FCFS)"},
		{NewConservative(4, SJF{}), "Conservative(SJF)"},
		{NewNoBackfill(4, XF{}), "NoBackfill(XF)"},
		{NewSelective(4, FCFS{}, 2), "Selective(FCFS,xf>=2)"},
		{NewSelectiveAdaptive(4, FCFS{}), "Selective(FCFS,adaptive)"},
	}
	for _, tc := range cases {
		if tc.s.Name() != tc.want {
			t.Errorf("Name() = %q, want %q", tc.s.Name(), tc.want)
		}
	}
}

func TestMakerFor(t *testing.T) {
	for _, kind := range []string{"conservative", "easy", "none", "selective:2.5", "selective:adaptive"} {
		mk, err := MakerFor(kind, FCFS{})
		if err != nil {
			t.Fatalf("MakerFor(%q): %v", kind, err)
		}
		if s := mk(16); s == nil {
			t.Fatalf("MakerFor(%q) built nil scheduler", kind)
		}
	}
	for _, bad := range []string{"bogus", "selective:abc", "selective:0.5"} {
		if _, err := MakerFor(bad, FCFS{}); err == nil {
			t.Errorf("MakerFor(%q): want error", bad)
		}
	}
}

func TestKindsListed(t *testing.T) {
	ks := Kinds()
	if len(ks) == 0 {
		t.Fatal("no kinds")
	}
	for _, k := range ks {
		if _, err := MakerFor(k, FCFS{}); err != nil {
			t.Errorf("listed kind %q not accepted: %v", k, err)
		}
	}
}

func TestSelectiveThresholdAccessors(t *testing.T) {
	s := NewSelective(8, FCFS{}, 4)
	if s.Threshold() != 4 {
		t.Fatalf("Threshold = %v", s.Threshold())
	}
	a := NewSelectiveAdaptive(8, FCFS{})
	if a.Threshold() != 1 {
		t.Fatalf("adaptive threshold before any start = %v, want 1", a.Threshold())
	}
}
