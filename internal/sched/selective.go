package sched

import (
	"fmt"

	"repro/internal/job"
)

// Selective implements the selective-reservation backfilling strategy the
// paper proposes as future work (§6) and develops in the authors' follow-up
// ("Selective Reservation Strategies for Backfill Job Scheduling"): no job
// holds a reservation at first, so backfilling is as unconstrained as
// possible; a job is promoted to a guaranteed reservation only once its
// expansion factor (expected slowdown) crosses a threshold. Judiciously
// chosen, the threshold keeps the number of blocking reservations small
// while protecting exactly the jobs that are starving — bounding the
// worst-case turnaround that unmodified aggressive backfilling lets grow
// without limit.
//
// Threshold semantics: a fixed XFactorThreshold > 0 promotes a job when
// XFactor(j, now) >= threshold. With AdaptiveThreshold, the threshold is
// the running mean of the expansion factors of all jobs at their start
// times (at least 1), so it tracks the load the machine is actually
// delivering.
type Selective struct {
	procs     int
	pol       Policy
	threshold float64
	adaptive  bool

	profile *Profile
	queue   []*job.Job
	resv    map[int]int64 // promoted job ID -> guaranteed start
	running map[int]runInfo

	sumXF    float64
	nStarted int64

	// holes mirrors Conservative.holes: compression runs only after
	// capacity was freed or a previous pass moved a reservation; otherwise
	// the pass is provably the identity and is skipped.
	holes bool

	violations []string

	// memo skips futile passes (DESIGN.md §15). nextAt is the minimum over
	// promoted jobs' reserved starts, unpromoted jobs' earliest feasible
	// backfill windows (FindStart is stable on an unchanged profile), and
	// the instants their expansion factors cross the promotion threshold.
	// new buffers arrivals since the last pass for the arrivals-only path.
	memo passMemo
	new  []*job.Job
}

// NewSelective returns a selective backfilling scheduler with a fixed
// expansion-factor threshold (must be >= 1). It panics on invalid
// arguments.
func NewSelective(procs int, pol Policy, threshold float64) *Selective {
	if threshold < 1 {
		panic(fmt.Sprintf("sched: NewSelective threshold %v < 1", threshold))
	}
	s := newSelective(procs, pol)
	s.threshold = threshold
	return s
}

// NewSelectiveAdaptive returns a selective backfilling scheduler whose
// threshold adapts to the running mean start-time expansion factor.
func NewSelectiveAdaptive(procs int, pol Policy) *Selective {
	s := newSelective(procs, pol)
	s.adaptive = true
	return s
}

func newSelective(procs int, pol Policy) *Selective {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewSelective with %d processors", procs))
	}
	if pol == nil {
		panic("sched: NewSelective with nil policy")
	}
	return &Selective{
		procs:   procs,
		pol:     pol,
		profile: NewProfile(procs),
		resv:    make(map[int]int64),
		running: make(map[int]runInfo),
		memo:    newPassMemo(pol),
	}
}

// Name returns e.g. "Selective(FCFS,xf>=5)" or "Selective(FCFS,adaptive)".
func (s *Selective) Name() string {
	if s.adaptive {
		return fmt.Sprintf("Selective(%s,adaptive)", s.pol.Name())
	}
	return fmt.Sprintf("Selective(%s,xf>=%g)", s.pol.Name(), s.threshold)
}

// Threshold returns the promotion threshold in effect right now.
func (s *Selective) Threshold() float64 {
	if !s.adaptive {
		return s.threshold
	}
	if s.nStarted == 0 {
		return 1
	}
	t := s.sumXF / float64(s.nStarted)
	if t < 1 {
		t = 1
	}
	return t
}

// Promoted reports whether job id currently holds a reservation, and its
// guaranteed start if so.
func (s *Selective) Promoted(id int) (int64, bool) {
	t, ok := s.resv[id]
	return t, ok
}

// Violations returns internal invariant breaches detected so far.
func (s *Selective) Violations() []string {
	return append([]string(nil), s.violations...)
}

// Arrive queues the job without any reservation.
func (s *Selective) Arrive(now int64, j *job.Job) {
	s.memo.noteArrival()
	if s.memo.timeInv {
		s.queue = orderedInsert(s.queue, j, s.pol, now)
		s.new = append(s.new, j)
		return
	}
	s.queue = append(s.queue, j)
}

// Complete releases the unused tail of the job's planned window and
// compresses the promoted jobs' reservations, exactly as conservative
// backfilling does for its (larger) reserved set.
func (s *Selective) Complete(now int64, j *job.Job) {
	ri, ok := s.running[j.ID]
	if !ok {
		panic(fmt.Sprintf("sched: Selective completion for unknown %v", j))
	}
	delete(s.running, j.ID)
	released := now < ri.estEnd
	if released {
		s.profile.Release(now, ri.estEnd-now, j.Width)
		s.holes = true
	}
	s.profile.Trim(now)
	if s.holes {
		s.compress(now)
	}
	// Unlike Conservative, launches here read the profile directly (the
	// unpromoted-backfill probe), so any released capacity invalidates —
	// not just a compression pass that moved a reservation.
	if released || s.holes {
		s.memo.invalidate()
	}
}

// compress moves promoted reservations earlier when holes open. A pass
// that moves a job keeps holes set (its vacated slot may enable further
// moves); a pass that moves nothing clears it, so hole-free completions
// skip the replan loop entirely.
func (s *Selective) compress(now int64) {
	sortQueue(s.queue, s.pol, now)
	moved := false
	for _, j := range s.queue {
		old, promoted := s.resv[j.ID]
		if !promoted || old <= now {
			continue
		}
		if !s.profile.anyAtLeastBefore(now, old, j.Width) {
			continue // no instant before old has room: the job cannot move
		}
		start := s.profile.EarlierStart(now, old, j.Estimate, j.Width)
		if start >= old {
			continue // cannot move; the profile was never touched
		}
		moved = true
		s.profile.Release(old, j.Estimate, j.Width)
		s.profile.Reserve(start, j.Estimate, j.Width)
		s.resv[j.ID] = start
	}
	s.holes = moved
}

// promote grants reservations to queued jobs whose expansion factor has
// crossed the threshold. Promotion processes jobs in priority order so the
// neediest pick their slots first.
func (s *Selective) promote(now int64) {
	threshold := s.Threshold()
	for _, j := range s.queue {
		if _, already := s.resv[j.ID]; already {
			continue
		}
		if XFactor(j, now) < threshold {
			continue
		}
		start := s.profile.FindStart(now, j.Estimate, j.Width)
		s.profile.Reserve(start, j.Estimate, j.Width)
		s.resv[j.ID] = start
	}
}

// Launch promotes starving jobs, starts promoted jobs whose guaranteed time
// has arrived, and backfills unpromoted jobs anywhere they fit right now
// without disturbing any reservation. Futile passes — before the memo's
// nextAt bound — are skipped; an arrivals-only pass probes just the new
// jobs against the unchanged profile.
func (s *Selective) Launch(now int64) []*job.Job {
	if s.memo.canSkip(now) {
		return nil
	}
	if s.launchIncremental(now) {
		return nil
	}
	return s.launchFull(now)
}

// launchIncremental handles a pass whose only changes since the last one
// are arrivals, when no previously queued job can act yet (now is before
// the memo's bound). Each new job is probed exactly as the full pass
// would: if it is promotable or could backfill right now the full pass
// must run; otherwise its earliest feasible window and threshold-crossing
// time fold into the bound and the pass is complete — the queue is already
// in policy order from insertion. Reports whether the pass was handled.
func (s *Selective) launchIncremental(now int64) bool {
	if !s.memo.arrivalsOnly() || now >= s.memo.nextAt {
		return false
	}
	threshold := s.Threshold()
	s.profile.Trim(now)
	nextAt := s.memo.nextAt
	for _, j := range s.new {
		if XFactor(j, now) >= threshold {
			return false // promotion due: reservations would move
		}
		start := s.profile.FindStart(now, j.Estimate, j.Width)
		if start == now {
			return false // the arrival can backfill immediately
		}
		nextAt = minInt64(nextAt, start)
		nextAt = minInt64(nextAt, xfCrossTime(j, threshold, now))
	}
	s.clearNew()
	s.memo.completePass(now, nextAt)
	return true
}

// launchFull is the unconditional selective pass.
func (s *Selective) launchFull(now int64) []*job.Job {
	s.profile.Trim(now)
	sortQueue(s.queue, s.pol, now)
	s.promote(now)

	var out []*job.Job
	nextAt := int64(noWake)
	kept := s.queue[:0]
	for _, j := range s.queue {
		start, promoted := s.resv[j.ID]
		switch {
		case promoted && start <= now:
			if start < now {
				s.violations = append(s.violations,
					fmt.Sprintf("%v launched at %d after its reservation %d", j, now, start))
				if rem := start + j.Estimate - now; rem > 0 {
					s.profile.Release(now, rem, j.Width)
				}
				s.profile.Reserve(now, j.Estimate, j.Width)
				s.holes = true
			}
			delete(s.resv, j.ID)
			s.start(j, now)
			out = append(out, j)
		case promoted:
			nextAt = minInt64(nextAt, start)
			kept = append(kept, j)
		default:
			if probe := s.profile.FindStart(now, j.Estimate, j.Width); probe == now {
				s.profile.Reserve(now, j.Estimate, j.Width)
				s.start(j, now)
				out = append(out, j)
			} else {
				// Later reservations in this same pass can only push the
				// job's feasible window later, so the probe taken at its
				// queue position is a safe lower bound.
				nextAt = minInt64(nextAt, probe)
				kept = append(kept, j)
			}
		}
	}
	s.queue = clearTail(s.queue, len(kept))

	// The adaptive threshold moves with every start, so the pass may end
	// below some waiter's expansion factor — promotion is due in a further
	// pass at this same instant, and the memo must not certify a fixpoint.
	threshold := s.Threshold()
	atFixpoint := true
	for _, j := range s.queue {
		if _, promoted := s.resv[j.ID]; promoted {
			continue
		}
		if XFactor(j, now) >= threshold {
			atFixpoint = false
			break
		}
		nextAt = minInt64(nextAt, xfCrossTime(j, threshold, now))
	}
	s.clearNew()
	if atFixpoint {
		s.memo.completePass(now, nextAt)
	} else {
		s.memo.invalidate()
	}
	return out
}

// clearNew empties the new-arrivals buffer without retaining job pointers.
func (s *Selective) clearNew() {
	for i := range s.new {
		s.new[i] = nil
	}
	s.new = s.new[:0]
}

// start records the running window and the start-time expansion factor that
// feeds the adaptive threshold.
func (s *Selective) start(j *job.Job, now int64) {
	s.running[j.ID] = runInfo{j: j, start: now, estEnd: now + j.Estimate}
	s.sumXF += XFactor(j, now)
	s.nStarted++
}

// QueuedJobs returns the jobs still waiting.
func (s *Selective) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), s.queue...)
}

// ProfilePoints reports the current size of the availability profile's
// step function (the benchmark ledger records its distribution per
// scheduler kind).
func (s *Selective) ProfilePoints() int { return s.profile.NumPoints() }
