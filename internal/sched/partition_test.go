package sched

import (
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/stats"
)

// shortLongPartition builds a 10+22 split: short jobs (<= 1h estimates) on
// the small partition, the rest on the large one, EASY(FCFS) in both.
func shortLongPartition() *Partitioned {
	sizes := []int{10, 22}
	return NewPartitioned(sizes, RuntimeRouter(3600, sizes), func(procs, _ int) sim.Scheduler {
		return NewEASY(procs, FCFS{})
	})
}

func TestPartitionedConstructorPanics(t *testing.T) {
	mk := func(procs, _ int) sim.Scheduler { return NewEASY(procs, FCFS{}) }
	cases := []func(){
		func() { NewPartitioned(nil, RuntimeRouter(1, []int{1, 1}), mk) },
		func() { NewPartitioned([]int{4}, nil, mk) },
		func() { NewPartitioned([]int{4}, func(*job.Job) int { return 0 }, nil) },
		func() { NewPartitioned([]int{0}, func(*job.Job) int { return 0 }, mk) },
		func() { RuntimeRouter(1, []int{1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPartitionedName(t *testing.T) {
	p := shortLongPartition()
	name := p.Name()
	if !strings.Contains(name, "10:EASY(FCFS)") || !strings.Contains(name, "22:EASY(FCFS)") {
		t.Fatalf("Name = %q", name)
	}
	if p.Procs() != 32 {
		t.Fatalf("Procs = %d", p.Procs())
	}
}

func TestPartitionedIsolation(t *testing.T) {
	// A long job filling the long partition must not delay short jobs, and
	// vice versa — the defining property of static partitioning.
	jobs := []*job.Job{
		exactJob(1, 0, 10000, 22), // long partition, fills it
		exactJob(2, 1, 10000, 22), // long partition, must wait
		exactJob(3, 2, 100, 4),    // short job: starts immediately on its own partition
	}
	starts := runOn(t, 32, jobs, shortLongPartition())
	wantStarts(t, starts, map[int]int64{1: 0, 2: 10000, 3: 2})
}

func TestPartitionedWasteVsSharedPool(t *testing.T) {
	// The classic result: on a busy mixed workload the shared backfilling
	// pool beats the static split on mean wait, because partitions idle
	// while the other side queues.
	const procs = 32
	jobs := genWorkload(stats.NewRNG(1600), 300, procs, 1)
	// Cap widths at the small partition size for routable jobs.
	for _, j := range jobs {
		if j.Width > 22 {
			j.Width = 22
		}
	}
	meanWait := func(s sim.Scheduler) float64 {
		starts := runOn(t, procs, jobs, s)
		var sum float64
		for _, j := range jobs {
			sum += float64(starts[j.ID] - j.Arrival)
		}
		return sum / float64(len(jobs))
	}
	shared := meanWait(NewEASY(procs, FCFS{}))
	split := meanWait(shortLongPartition())
	if shared >= split {
		t.Fatalf("shared pool mean wait %.1f not below static split %.1f", shared, split)
	}
}

func TestPartitionedValidAndDeterministic(t *testing.T) {
	const procs = 32
	jobs := genWorkload(stats.NewRNG(1601), 200, procs, 1)
	for _, j := range jobs {
		if j.Width > 22 {
			j.Width = 22
		}
	}
	a := runOn(t, procs, jobs, shortLongPartition())
	b := runOn(t, procs, jobs, shortLongPartition())
	for id := range a {
		if a[id] != b[id] {
			t.Fatal("partitioned scheduler nondeterministic")
		}
	}
}

func TestRuntimeRouterOverflow(t *testing.T) {
	sizes := []int{8, 24}
	r := RuntimeRouter(3600, sizes)
	short := &job.Job{ID: 1, Estimate: 60, Width: 4}
	if r(short) != 0 {
		t.Fatal("short narrow job should route to partition 0")
	}
	wideShort := &job.Job{ID: 2, Estimate: 60, Width: 16}
	if r(wideShort) != 1 {
		t.Fatal("short wide job should overflow to the large partition")
	}
	long := &job.Job{ID: 3, Estimate: 7200, Width: 4}
	if r(long) != 1 {
		t.Fatal("long job should route to partition 1")
	}
}

func TestPartitionedMixedInnerSchedulers(t *testing.T) {
	// Different inner schedulers per partition, including one that needs
	// engine timers (conservative-nc), must compose.
	sizes := []int{10, 22}
	p := NewPartitioned(sizes, RuntimeRouter(3600, sizes), func(procs, idx int) sim.Scheduler {
		if idx == 0 {
			return NewConservativeNoCompression(procs, FCFS{})
		}
		return NewEASY(procs, SJF{})
	})
	jobs := genWorkload(stats.NewRNG(1602), 150, 32, 1)
	for _, j := range jobs {
		if j.Width > 22 {
			j.Width = 22
		}
	}
	runOn(t, 32, jobs, p)
}
