package sched

import (
	"fmt"
	"testing"

	"repro/internal/job"
)

// This file differentially fuzzes the incremental pass machinery
// (DESIGN.md §15): every scheduler kind runs the same random
// arrive/advance/complete/cancel program twice — live, with the pass memo
// and fast paths enabled, and as a pristine reference with forceFull set so
// every Launch replays the whole queue — and the two must agree on every
// start decision, suspension, and queue permutation at every step. This is
// the proof obligation behind the no-op skip, the arrivals-only paths, and
// the blocked-width watermark: a skipped or abbreviated pass must be
// observably identical to the full pass it avoided.

// incrSched is the scheduler surface the differential driver exercises.
type incrSched interface {
	Arrive(now int64, j *job.Job)
	Complete(now int64, j *job.Job)
	Launch(now int64) []*job.Job
	QueuedJobs() []*job.Job
	Cancel(now int64, j *job.Job) bool
}

// forceFullPasses turns s into the reference copy: every skip and
// incremental path is disabled, so each Launch sorts and scans in full.
func forceFullPasses(s incrSched) {
	switch v := s.(type) {
	case *EASY:
		v.memo.forceFull = true
	case *NoBackfill:
		v.memo.forceFull = true
	case *Conservative:
		v.memo.forceFull = true
	case *SlackBased:
		v.memo.forceFull = true
	case *Selective:
		v.memo.forceFull = true
	case *DepthK:
		v.memo.forceFull = true
	case *Preemptive:
		v.memo.forceFull = true
	default:
		panic(fmt.Sprintf("forceFullPasses: unknown scheduler %T", s))
	}
}

// incrMakers builds the scheduler matrix the fuzzer covers: every kind,
// including both EASY candidate orders and the adaptive selective
// threshold, constructed twice per cell (live + reference).
func incrMakers(procs int, pol Policy) map[string]func() incrSched {
	return map[string]func() incrSched{
		"none":         func() incrSched { return NewNoBackfill(procs, pol) },
		"easy":         func() incrSched { return NewEASY(procs, pol) },
		"easy:bestfit": func() incrSched { return NewEASYWithOrder(procs, pol, BestFit) },
		"easy:shortestfit": func() incrSched {
			return NewEASYWithOrder(procs, pol, ShortestFit)
		},
		"conservative":    func() incrSched { return NewConservative(procs, pol) },
		"conservative-nc": func() incrSched { return NewConservativeNoCompression(procs, pol) },
		"selective:2":     func() incrSched { return NewSelective(procs, pol, 2) },
		"selective:adaptive": func() incrSched {
			return NewSelectiveAdaptive(procs, pol)
		},
		"depth:2":     func() incrSched { return NewDepthK(procs, pol, 2) },
		"slack:1":     func() incrSched { return NewSlackBased(procs, pol, 1) },
		"preemptive:2": func() incrSched {
			return NewPreemptive(procs, pol, 2, 25)
		},
	}
}

// incrRun is one running job in the driver's mini event loop.
type incrRun struct {
	j     *job.Job
	start int64
	end   int64 // completion instant: start + remaining runtime
}

// incrDriver replays one fuzz program against a live/reference pair,
// failing the test at the first divergence.
type incrDriver struct {
	t         *testing.T
	name      string
	live, ref incrSched
	now       int64
	runs      []incrRun
	// ran banks wall time already executed per job ID, so a job suspended
	// by the preemptive scheduler resumes with only its remainder.
	ran map[int]int64
}

func ids(jobs []*job.Job) []int {
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// launch runs one scheduling pass on both sides at d.now and checks that
// the start sequences, suspension sequences, and resulting queue
// permutations agree; started jobs enter the mini event loop with their
// true (remaining) runtimes.
func (d *incrDriver) launch() {
	var liveStarts, refStarts, liveSusp, refSusp []*job.Job
	if lp, ok := d.live.(*Preemptive); ok {
		liveStarts, liveSusp = lp.LaunchAndPreempt(d.now)
		refStarts, refSusp = d.ref.(*Preemptive).LaunchAndPreempt(d.now)
	} else {
		liveStarts = d.live.Launch(d.now)
		refStarts = d.ref.Launch(d.now)
	}
	if !sameIDs(ids(liveStarts), ids(refStarts)) {
		d.t.Fatalf("%s: t=%d starts diverge: live=%v ref=%v",
			d.name, d.now, ids(liveStarts), ids(refStarts))
	}
	if !sameIDs(ids(liveSusp), ids(refSusp)) {
		d.t.Fatalf("%s: t=%d suspends diverge: live=%v ref=%v",
			d.name, d.now, ids(liveSusp), ids(refSusp))
	}
	lq, rq := ids(d.live.QueuedJobs()), ids(d.ref.QueuedJobs())
	if !sameIDs(lq, rq) {
		d.t.Fatalf("%s: t=%d queues diverge: live=%v ref=%v", d.name, d.now, lq, rq)
	}
	for _, j := range liveSusp {
		for i := range d.runs {
			if d.runs[i].j.ID == j.ID {
				d.ran[j.ID] += d.now - d.runs[i].start
				d.runs = append(d.runs[:i], d.runs[i+1:]...)
				break
			}
		}
	}
	for _, j := range liveStarts {
		d.runs = append(d.runs, incrRun{j: j, start: d.now, end: d.now + (j.Runtime - d.ran[j.ID])})
	}
}

// advanceTo moves time forward to target, delivering each completion at its
// own instant (with a comparing pass after every event) on the way. Wake
// requests from Waker schedulers are honored exactly as the engine honors
// them: conservative-nc's fixed reservations must be claimed at their
// instant, or two overdue wide reservations realign against each other —
// a state real sessions never produce.
func (d *incrDriver) advanceTo(target int64) {
	for {
		next := -1
		for i := range d.runs {
			if d.runs[i].end > target {
				continue
			}
			if next < 0 || d.runs[i].end < d.runs[next].end ||
				(d.runs[i].end == d.runs[next].end && d.runs[i].j.ID < d.runs[next].j.ID) {
				next = i
			}
		}
		wake := int64(0)
		if w, ok := d.live.(interface{ NextWake(int64) int64 }); ok {
			wake = w.NextWake(d.now)
		}
		if wake > d.now && wake <= target && (next < 0 || wake < d.runs[next].end) {
			d.now = wake
			d.launch()
			continue
		}
		if next < 0 {
			break
		}
		r := d.runs[next]
		d.runs = append(d.runs[:next], d.runs[next+1:]...)
		d.now = r.end
		d.ran[r.j.ID] = r.j.Runtime
		d.live.Complete(d.now, r.j)
		d.ref.Complete(d.now, r.j)
		d.launch()
	}
	d.now = target
	d.launch()
}

// FuzzLaunchIncremental decodes each input into a machine size and an
// operation program, and replays it through every scheduler kind × policy
// cell with the incremental machinery both enabled and disabled. Any
// divergence in starts, suspensions, or queue order fails the input.
func FuzzLaunchIncremental(f *testing.F) {
	// A blocked-head backfill scenario with arrivals landing mid-block,
	// an exact-estimate batch, and a cancel-heavy program.
	f.Add([]byte("\x06\x00\x08\x40\x10\x00\x02\x05\x00\x03\x30\x00\x01\x20\x05\x04\x21"))
	f.Add([]byte("\x0a\x00\x04\x10\x00\x00\x06\x20\x00\x03\x63\x00\x01\x01\x01\x01\x01\x06\x02"))
	f.Add([]byte("\x04\x05\x03\x63\x30\x02\x00\x01\x3c\x00\x04\x40\x03\x80\x05\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		procs := int(data[0]%13) + 4 // 4..16
		program := data[1:]
		if len(program) > 120 {
			program = program[:120]
		}
		pols := []Policy{FCFS{}, SJF{}, XF{}, WFP{}}
		for _, pol := range pols {
			for name, mk := range incrMakers(procs, pol) {
				runIncrProgram(t, fmt.Sprintf("%s/%s", name, pol.Name()), mk, procs, program)
			}
		}
	})
}

// runIncrProgram replays one decoded op program against a fresh live/ref
// pair. Ops: 0-2 arrive, 3-4 advance, 5 repeat the pass at the same
// instant, 6-7 cancel a queued job.
func runIncrProgram(t *testing.T, name string, mk func() incrSched, procs int, program []byte) {
	live, ref := mk(), mk()
	forceFullPasses(ref)
	d := &incrDriver{t: t, name: name, live: live, ref: ref, ran: make(map[int]int64)}
	nextID := 1
	const maxJobs = 24
	for i := 0; i < len(program); i++ {
		switch op := program[i] % 8; {
		case op <= 2 && nextID <= maxJobs:
			if i+3 >= len(program) {
				return
			}
			rt := int64(program[i+1]%100) + 1
			j := &job.Job{
				ID:       nextID,
				Arrival:  d.now,
				Runtime:  rt,
				Estimate: rt + int64(program[i+2]%50),
				Width:    int(program[i+3])%procs + 1,
			}
			i += 3
			nextID++
			d.live.Arrive(d.now, j)
			d.ref.Arrive(d.now, j)
			d.launch()
		case op <= 4:
			if i+1 >= len(program) {
				return
			}
			delta := int64(program[i+1]%200) + 1
			i++
			d.advanceTo(d.now + delta)
		case op == 5:
			d.launch()
		default:
			if i+1 >= len(program) {
				return
			}
			q := d.live.QueuedJobs()
			i++
			if len(q) == 0 {
				continue
			}
			victim := q[int(program[i])%len(q)]
			lok := d.live.Cancel(d.now, victim)
			rok := d.ref.Cancel(d.now, victim)
			if lok != rok {
				t.Fatalf("%s: t=%d cancel(%d) diverges: live=%v ref=%v",
					name, d.now, victim.ID, lok, rok)
			}
			d.launch()
		}
	}
	// Drain: run the backlog to empty so tail-of-schedule decisions (where
	// reservations finally come due) are compared as well.
	for range [64]struct{}{} {
		if len(d.runs) == 0 && len(d.live.QueuedJobs()) == 0 {
			break
		}
		d.advanceTo(d.now + 500)
	}
}
