package sched

import (
	"sort"

	"repro/internal/job"
)

// RunningSlot describes one running job for start-time forecasting: the
// processors it holds and the instant its estimate guarantees them back.
type RunningSlot struct {
	Width  int
	EstEnd int64
}

// ShowStart predicts a start time for every queued job — the feature
// production batch schedulers expose as "showstart" (Maui/Moab) or
// "squeue --start" (Slurm). The forecast snapshots the machine (running
// jobs occupy their processors until their estimated ends) and dry-runs a
// conservative backfill schedule over the queue in priority order: each job
// is placed at the earliest hole that fits its estimate and width, and the
// hole is reserved before the next job is placed.
//
// The result is exact for reservation-based schedulers with exact
// estimates, and an upper-bound-flavoured estimate for aggressive ones
// (EASY may start a job earlier via backfilling; early completions compress
// every prediction forward). That is the same fidelity real showstart
// implementations offer, because the future workload is unknowable either
// way.
//
// queued is not modified; the returned map is keyed by job ID.
func ShowStart(procs int, now int64, running []RunningSlot, queued []*job.Job, pol Policy) map[int]int64 {
	p := NewProfile(procs)
	for _, r := range running {
		if r.EstEnd > now && r.Width > 0 {
			p.Reserve(now, r.EstEnd-now, r.Width)
		}
	}
	q := append([]*job.Job(nil), queued...)
	sortQueue(q, pol, now)
	out := make(map[int]int64, len(q))
	for _, j := range q {
		st := p.FindStart(now, j.Estimate, j.Width)
		p.Reserve(st, j.Estimate, j.Width)
		out[j.ID] = st
	}
	return out
}

// Reservist is the optional scheduler capability of reporting the
// reservation (guaranteed start) it currently holds for a queued job.
// Conservative and slack-based schedulers implement it; the serving layer
// prefers a real reservation over a ShowStart forecast when available.
type Reservist interface {
	Reservation(id int) (int64, bool)
}

// Forecast combines both prediction sources for one queue snapshot: the
// scheduler's own reservations where it holds them, and the ShowStart
// dry-run for everything else. Predictions never precede now.
func Forecast(s interface{ Name() string }, procs int, now int64, running []RunningSlot, queued []*job.Job, pol Policy) map[int]int64 {
	out := ShowStart(procs, now, running, queued, pol)
	if r, ok := s.(Reservist); ok {
		for _, j := range queued {
			if t, ok := r.Reservation(j.ID); ok {
				out[j.ID] = t
			}
		}
	}
	for id, t := range out {
		if t < now {
			out[id] = now
		}
	}
	return out
}

// SortedByPolicy returns a copy of jobs ordered by the policy at now —
// the order a scheduler would serve them in, which is also the order
// status endpoints should display.
func SortedByPolicy(jobs []*job.Job, pol Policy, now int64) []*job.Job {
	q := append([]*job.Job(nil), jobs...)
	sort.SliceStable(q, func(i, k int) bool { return pol.Less(q[i], q[k], now) })
	return q
}
