package sched

import (
	"slices"
	"sync"

	"repro/internal/job"
)

// RunningSlot describes one running job for start-time forecasting: the
// processors it holds and the instant its estimate guarantees them back.
type RunningSlot struct {
	Width  int
	EstEnd int64
}

// scratchProfiles pools the dry-run profiles ShowStart builds its schedule
// in. A forecast is read-mostly work that serving layers may run on any
// goroutine, so the pool is the concurrency-safe way to reuse the backing
// arrays across forecasts instead of allocating a fresh profile per call.
var scratchProfiles sync.Pool

// getScratchProfile returns a reset profile for procs processors, reusing
// pooled storage when the machine size matches.
func getScratchProfile(procs int) *Profile {
	if v := scratchProfiles.Get(); v != nil {
		p := v.(*Profile)
		if p.Procs() == procs {
			p.Reset()
			return p
		}
	}
	return NewProfile(procs)
}

func putScratchProfile(p *Profile) { scratchProfiles.Put(p) }

// ShowStart predicts a start time for every queued job — the feature
// production batch schedulers expose as "showstart" (Maui/Moab) or
// "squeue --start" (Slurm). The forecast snapshots the machine (running
// jobs occupy their processors until their estimated ends) and dry-runs a
// conservative backfill schedule over the queue in priority order: each job
// is placed at the earliest hole that fits its estimate and width, and the
// hole is reserved before the next job is placed.
//
// The result is exact for reservation-based schedulers with exact
// estimates, and an upper-bound-flavoured estimate for aggressive ones
// (EASY may start a job earlier via backfilling; early completions compress
// every prediction forward). That is the same fidelity real showstart
// implementations offer, because the future workload is unknowable either
// way.
//
// queued is not modified; the returned map is keyed by job ID. The dry-run
// profile comes from an internal pool, so steady-state forecasting does not
// allocate a profile per call.
func ShowStart(procs int, now int64, running []RunningSlot, queued []*job.Job, pol Policy) map[int]int64 {
	p := getScratchProfile(procs)
	defer putScratchProfile(p)
	return showStartInto(p, now, running, queued, pol)
}

// showStartInto runs the ShowStart dry-run in the caller-supplied profile,
// which must be freshly reset and sized to the machine.
func showStartInto(p *Profile, now int64, running []RunningSlot, queued []*job.Job, pol Policy) map[int]int64 {
	for _, r := range running {
		if r.EstEnd > now && r.Width > 0 {
			p.Reserve(now, r.EstEnd-now, r.Width)
		}
	}
	q := append([]*job.Job(nil), queued...)
	sortQueue(q, pol, now)
	out := make(map[int]int64, len(q))
	for _, j := range q {
		st := p.FindStart(now, j.Estimate, j.Width)
		p.Reserve(st, j.Estimate, j.Width)
		out[j.ID] = st
	}
	return out
}

// Reservist is the optional scheduler capability of reporting the
// reservation (guaranteed start) it currently holds for a queued job.
// Conservative and slack-based schedulers implement it; the serving layer
// prefers a real reservation over a ShowStart forecast when available.
type Reservist interface {
	Reservation(id int) (int64, bool)
}

// Reservations captures the reservations scheduler s holds for the queued
// jobs, or nil when s is not a Reservist. The returned map is an immutable
// snapshot: callers may consult it from other goroutines long after the
// scheduler has moved on, which is how the serving layer separates the
// cheap on-loop capture from the off-loop dry-run.
func Reservations(s any, queued []*job.Job) map[int]int64 {
	r, ok := s.(Reservist)
	if !ok {
		return nil
	}
	var out map[int]int64
	for _, j := range queued {
		if t, ok := r.Reservation(j.ID); ok {
			if out == nil {
				out = make(map[int]int64, len(queued))
			}
			out[j.ID] = t
		}
	}
	return out
}

// ForecastFromState is the pure form of Forecast: it predicts start times
// from an explicit state capture (machine size, clock, running slots, queue
// and pre-captured reservations) without touching any scheduler. Because
// every input is a snapshot, it is safe to call from any goroutine — the
// serving layer memoizes its result per state version.
func ForecastFromState(procs int, now int64, running []RunningSlot, queued []*job.Job, pol Policy, resv map[int]int64) map[int]int64 {
	out := ShowStart(procs, now, running, queued, pol)
	for id, t := range resv {
		if _, ok := out[id]; ok {
			out[id] = t
		}
	}
	for id, t := range out {
		if t < now {
			out[id] = now
		}
	}
	return out
}

// Forecast combines both prediction sources for one queue snapshot: the
// scheduler's own reservations where it holds them, and the ShowStart
// dry-run for everything else. Predictions never precede now.
func Forecast(s interface{ Name() string }, procs int, now int64, running []RunningSlot, queued []*job.Job, pol Policy) map[int]int64 {
	return ForecastFromState(procs, now, running, queued, pol, Reservations(s, queued))
}

// SortedByPolicy returns a copy of jobs ordered by the policy at now —
// the order a scheduler would serve them in, which is also the order
// status endpoints should display.
func SortedByPolicy(jobs []*job.Job, pol Policy, now int64) []*job.Job {
	q := append([]*job.Job(nil), jobs...)
	slices.SortStableFunc(q, func(a, b *job.Job) int { return policyCmp(pol, a, b, now) })
	return q
}
