package sched

import (
	"slices"
	"sync"

	"repro/internal/job"
)

// RunningSlot describes one running job for start-time forecasting: the
// processors it holds and the instant its estimate guarantees them back.
type RunningSlot struct {
	Width  int
	EstEnd int64
}

// scratchProfiles pools the dry-run profiles ShowStart builds its schedule
// in. A forecast is read-mostly work that serving layers may run on any
// goroutine, so the pool is the concurrency-safe way to reuse the backing
// arrays across forecasts instead of allocating a fresh profile per call.
var scratchProfiles sync.Pool

// getScratchProfile returns a reset profile for procs processors, reusing
// pooled storage when the machine size matches.
func getScratchProfile(procs int) *Profile {
	if v := scratchProfiles.Get(); v != nil {
		p := v.(*Profile)
		if p.Procs() == procs {
			p.Reset()
			return p
		}
	}
	return NewProfile(procs)
}

func putScratchProfile(p *Profile) { scratchProfiles.Put(p) }

// ShowStart predicts a start time for every queued job — the feature
// production batch schedulers expose as "showstart" (Maui/Moab) or
// "squeue --start" (Slurm). The forecast snapshots the machine (running
// jobs occupy their processors until their estimated ends) and dry-runs a
// conservative backfill schedule over the queue in priority order: each job
// is placed at the earliest hole that fits its estimate and width, and the
// hole is reserved before the next job is placed.
//
// The result is exact for reservation-based schedulers with exact
// estimates, and an upper-bound-flavoured estimate for aggressive ones
// (EASY may start a job earlier via backfilling; early completions compress
// every prediction forward). That is the same fidelity real showstart
// implementations offer, because the future workload is unknowable either
// way.
//
// queued is not modified; the returned map is keyed by job ID. The dry-run
// profile comes from an internal pool, so steady-state forecasting does not
// allocate a profile per call.
func ShowStart(procs int, now int64, running []RunningSlot, queued []*job.Job, pol Policy) map[int]int64 {
	p := getScratchProfile(procs)
	defer putScratchProfile(p)
	return showStartInto(p, now, running, queued, pol)
}

// showStartInto runs the ShowStart dry-run in the caller-supplied profile,
// which must be freshly reset and sized to the machine.
func showStartInto(p *Profile, now int64, running []RunningSlot, queued []*job.Job, pol Policy) map[int]int64 {
	out, _ := showStartSeeded(p, now, running, queued, pol)
	return out
}

// showStartSeeded is showStartInto plus the dry-run's tail: the policy-last
// queued job placed, which an incremental extension needs to verify that
// later arrivals really sort after everything already in the schedule.
func showStartSeeded(p *Profile, now int64, running []RunningSlot, queued []*job.Job, pol Policy) (map[int]int64, *job.Job) {
	for _, r := range running {
		if r.EstEnd > now && r.Width > 0 {
			p.Reserve(now, r.EstEnd-now, r.Width)
		}
	}
	q := append([]*job.Job(nil), queued...)
	sortQueue(q, pol, now)
	out := make(map[int]int64, len(q))
	var tail *job.Job
	for _, j := range q {
		st := p.FindStart(now, j.Estimate, j.Width)
		p.Reserve(st, j.Estimate, j.Width)
		out[j.ID] = st
		tail = j
	}
	return out, tail
}

// Reservist is the optional scheduler capability of reporting the
// reservation (guaranteed start) it currently holds for a queued job.
// Conservative and slack-based schedulers implement it; the serving layer
// prefers a real reservation over a ShowStart forecast when available.
type Reservist interface {
	Reservation(id int) (int64, bool)
}

// Reservations captures the reservations scheduler s holds for the queued
// jobs, or nil when s is not a Reservist. The returned map is an immutable
// snapshot: callers may consult it from other goroutines long after the
// scheduler has moved on, which is how the serving layer separates the
// cheap on-loop capture from the off-loop dry-run.
func Reservations(s any, queued []*job.Job) map[int]int64 {
	r, ok := s.(Reservist)
	if !ok {
		return nil
	}
	var out map[int]int64
	for _, j := range queued {
		if t, ok := r.Reservation(j.ID); ok {
			if out == nil {
				out = make(map[int]int64, len(queued))
			}
			out[j.ID] = t
		}
	}
	return out
}

// applyResvClamp post-processes a raw dry-run: scheduler-held reservations
// override the conservative placement (they are guarantees, the dry-run is
// an estimate), and no prediction may precede now.
func applyResvClamp(out map[int]int64, resv map[int]int64, now int64) {
	for id, t := range resv {
		if _, ok := out[id]; ok {
			out[id] = t
		}
	}
	for id, t := range out {
		if t < now {
			out[id] = now
		}
	}
}

// ForecastFromState is the pure form of Forecast: it predicts start times
// from an explicit state capture (machine size, clock, running slots, queue
// and pre-captured reservations) without touching any scheduler. Because
// every input is a snapshot, it is safe to call from any goroutine — the
// serving layer memoizes its result per state version.
func ForecastFromState(procs int, now int64, running []RunningSlot, queued []*job.Job, pol Policy, resv map[int]int64) map[int]int64 {
	out := ShowStart(procs, now, running, queued, pol)
	applyResvClamp(out, resv, now)
	return out
}

// ForecastSeed is the reusable end state of one ShowStart dry-run: the final
// conservative schedule and the policy-last job placed into it. A caller
// that retains the seed alongside the predictions can extend the forecast
// with later arrivals via ExtendForecast instead of re-running the dry-run
// over the whole queue — the O(queue) term the serving layer's write path
// removes (PERFORMANCE.md §11). The profile inside a seed is owned by the
// seed (never pooled) and is mutated by ExtendForecast, so a seed must be
// consumed at most once.
type ForecastSeed struct {
	profile *Profile
	tail    *job.Job
}

// ForecastFromStateSeeded is ForecastFromState plus the dry-run's seed for
// incremental extension.
func ForecastFromStateSeeded(procs int, now int64, running []RunningSlot, queued []*job.Job, pol Policy, resv map[int]int64) (map[int]int64, *ForecastSeed) {
	p := NewProfile(procs)
	out, tail := showStartSeeded(p, now, running, queued, pol)
	applyResvClamp(out, resv, now)
	return out, &ForecastSeed{profile: p, tail: tail}
}

// ExtendForecast extends a seeded forecast with newly arrived jobs, avoiding
// the full dry-run when every arrival sorts at or after the seed's tail
// under pol at now (always true for arrival-ordered policies like FCFS; the
// stable sort puts an equal-keyed later arrival after the tail). resv is the
// reservation capture for the extended state. On success the seed's profile
// has the new jobs placed, the seed's tail is advanced, and the returned
// delta holds predictions for exactly the new jobs — the caller overlays it
// on the predictions the seed was built with, which stay untouched so
// snapshots of the older version keep their forecast. ok is false, with the
// seed untouched, when some arrival sorts before the tail: the extension
// would mispredict, and the caller must fall back to a full dry-run.
func ExtendForecast(seed *ForecastSeed, now int64, newJobs []*job.Job, pol Policy, resv map[int]int64) (map[int]int64, bool) {
	for _, j := range newJobs {
		if seed.tail != nil && policyCmp(pol, j, seed.tail, now) < 0 {
			return nil, false
		}
	}
	sorted := SortedByPolicy(newJobs, pol, now)
	delta := make(map[int]int64, len(sorted))
	for _, j := range sorted {
		st := seed.profile.FindStart(now, j.Estimate, j.Width)
		seed.profile.Reserve(st, j.Estimate, j.Width)
		if t, ok := resv[j.ID]; ok {
			st = t
		}
		if st < now {
			st = now
		}
		delta[j.ID] = st
		seed.tail = j
	}
	return delta, true
}

// Forecast combines both prediction sources for one queue snapshot: the
// scheduler's own reservations where it holds them, and the ShowStart
// dry-run for everything else. Predictions never precede now.
func Forecast(s interface{ Name() string }, procs int, now int64, running []RunningSlot, queued []*job.Job, pol Policy) map[int]int64 {
	return ForecastFromState(procs, now, running, queued, pol, Reservations(s, queued))
}

// SortedByPolicy returns a copy of jobs ordered by the policy at now —
// the order a scheduler would serve them in, which is also the order
// status endpoints should display.
func SortedByPolicy(jobs []*job.Job, pol Policy, now int64) []*job.Job {
	q := append([]*job.Job(nil), jobs...)
	slices.SortStableFunc(q, func(a, b *job.Job) int { return policyCmp(pol, a, b, now) })
	return q
}
