package sched

import (
	"testing"

	"repro/internal/job"
	"repro/internal/stats"
)

// refConservative is an independent brute-force re-implementation of
// conservative backfilling used as a test oracle: per-second free-processor
// arrays instead of the step-function profile, and a simple re-derivation
// of the event loop. It shares no code with the production scheduler, so
// agreement on random workloads is strong evidence both are right.
//
// Restricted to FCFS and accurate estimates (runtime == estimate): in that
// regime compression never changes anything, so the semantics are
// unambiguous — every job is reserved, in arrival order, at the earliest
// instant that fits given all earlier reservations.
type refConservative struct {
	horizon int64
	free    []int
}

func newRefConservative(procs int, horizon int64) *refConservative {
	f := make([]int, horizon)
	for i := range f {
		f[i] = procs
	}
	return &refConservative{horizon: horizon, free: f}
}

// place reserves the earliest feasible window at or after arrival and
// returns its start.
func (r *refConservative) place(arrival, dur int64, width int) int64 {
search:
	for s := arrival; s+dur <= r.horizon; s++ {
		for t := s; t < s+dur; t++ {
			if r.free[t] < width {
				continue search
			}
		}
		for t := s; t < s+dur; t++ {
			r.free[t] -= width
		}
		return s
	}
	panic("oracle: horizon too small")
}

// TestConservativeAgainstBruteForceOracle compares the production
// conservative scheduler with the per-second oracle on many small random
// workloads with exact estimates under FCFS.
func TestConservativeAgainstBruteForceOracle(t *testing.T) {
	const procs = 8
	r := stats.NewRNG(1001)
	for trial := 0; trial < 150; trial++ {
		n := r.Intn(25) + 3
		jobs := make([]*job.Job, 0, n)
		clock := int64(0)
		var totalWork int64
		for i := 1; i <= n; i++ {
			clock += int64(r.Intn(30))
			rt := int64(r.Intn(60) + 1)
			w := r.Intn(procs) + 1
			jobs = append(jobs, &job.Job{
				ID: i, Arrival: clock, Runtime: rt, Estimate: rt, Width: w,
			})
			totalWork += rt
		}

		// Oracle: place jobs in arrival order (ties by ID, matching the
		// simulator's deterministic ordering).
		oracle := newRefConservative(procs, clock+totalWork*int64(procs)+100)
		wantStart := make(map[int]int64, n)
		for _, j := range jobs {
			wantStart[j.ID] = oracle.place(j.Arrival, j.Estimate, j.Width)
		}

		got := runOn(t, procs, jobs, NewConservative(procs, FCFS{}))
		for id, want := range wantStart {
			if got[id] != want {
				t.Fatalf("trial %d: job %d starts at %d, oracle says %d\nworkload: %v",
					trial, id, got[id], want, jobs)
			}
		}
	}
}

// TestSlackZeroAgainstOracle extends the oracle check to the slack-based
// scheduler at slack 0, which must behave identically.
func TestSlackZeroAgainstOracle(t *testing.T) {
	const procs = 8
	r := stats.NewRNG(1002)
	for trial := 0; trial < 60; trial++ {
		n := r.Intn(20) + 3
		jobs := make([]*job.Job, 0, n)
		clock := int64(0)
		var totalWork int64
		for i := 1; i <= n; i++ {
			clock += int64(r.Intn(30))
			rt := int64(r.Intn(60) + 1)
			w := r.Intn(procs) + 1
			jobs = append(jobs, &job.Job{
				ID: i, Arrival: clock, Runtime: rt, Estimate: rt, Width: w,
			})
			totalWork += rt
		}
		oracle := newRefConservative(procs, clock+totalWork*int64(procs)+100)
		wantStart := make(map[int]int64, n)
		for _, j := range jobs {
			wantStart[j.ID] = oracle.place(j.Arrival, j.Estimate, j.Width)
		}
		got := runOn(t, procs, jobs, NewSlackBased(procs, FCFS{}, 0))
		for id, want := range wantStart {
			if got[id] != want {
				t.Fatalf("trial %d: job %d starts at %d, oracle says %d", trial, id, got[id], want)
			}
		}
	}
}
