package sched

// Check exposes the profile invariant checker to tests.
func (p *Profile) Check() error { return p.check() }
