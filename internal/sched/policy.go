package sched

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/job"
)

// Policy orders the idle queue. Less reports whether a should be considered
// for scheduling before b at instant now. Policies must induce a strict
// total order for any fixed now (the implementations here all fall back to
// arrival time and then job ID), so queue ordering — and therefore the whole
// simulation — is deterministic.
//
// XFactor-style policies are dynamic: a job's priority rises as it waits, so
// schedulers re-sort the queue at every scheduling event rather than keeping
// a static order.
type Policy interface {
	// Name is the short label used in reports: FCFS, SJF, XF, ...
	Name() string
	// Less orders jobs a before b at time now.
	Less(a, b *job.Job, now int64) bool
}

// tieBreak orders by arrival then ID; every policy ends with it so the
// ordering is total.
func tieBreak(a, b *job.Job) bool {
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

// FCFS is first-come first-served: a job's priority is its wait time, i.e.
// earlier arrivals come first. This is the most common production policy
// and the paper's default.
type FCFS struct{}

// Name returns "FCFS".
func (FCFS) Name() string { return "FCFS" }

// Less orders by arrival time.
func (FCFS) Less(a, b *job.Job, _ int64) bool { return tieBreak(a, b) }

// SJF is shortest-job first: "the priority of a job is inversely
// proportional to its user estimated run time". Ties break FCFS.
type SJF struct{}

// Name returns "SJF".
func (SJF) Name() string { return "SJF" }

// Less orders by user estimate, shortest first.
func (SJF) Less(a, b *job.Job, _ int64) bool {
	if a.Estimate != b.Estimate {
		return a.Estimate < b.Estimate
	}
	return tieBreak(a, b)
}

// LJF is longest-job first, the mirror of SJF, included as an extension for
// ablation studies (it is the classic bad idea that starves short jobs).
type LJF struct{}

// Name returns "LJF".
func (LJF) Name() string { return "LJF" }

// Less orders by user estimate, longest first.
func (LJF) Less(a, b *job.Job, _ int64) bool {
	if a.Estimate != b.Estimate {
		return a.Estimate > b.Estimate
	}
	return tieBreak(a, b)
}

// XFactor computes a job's expansion factor at time now:
//
//	xfactor = (wait + estimated runtime) / estimated runtime
//
// A job that has not waited has xfactor 1; short jobs' xfactors grow much
// faster than long jobs', so XFactor implicitly favours short jobs while
// still aging long ones (the paper's "expansion Factor" policy).
func XFactor(j *job.Job, now int64) float64 {
	wait := now - j.Arrival
	if wait < 0 {
		wait = 0
	}
	est := j.Estimate
	if est < 1 {
		est = 1
	}
	return float64(wait+est) / float64(est)
}

// XF is the expansion-factor policy: highest xfactor first.
type XF struct{}

// Name returns "XF".
func (XF) Name() string { return "XF" }

// Less orders by xfactor at now, largest first.
func (XF) Less(a, b *job.Job, now int64) bool {
	xa, xb := XFactor(a, now), XFactor(b, now)
	if xa != xb {
		return xa > xb
	}
	return tieBreak(a, b)
}

// WFP is a width-weighted aging policy (an extension beyond the paper): it
// scales the expansion factor by the job's width so that wide jobs — the
// ones that struggle to backfill — age faster. Included for the selective
// backfilling and ablation experiments.
type WFP struct{}

// Name returns "WFP".
func (WFP) Name() string { return "WFP" }

// Less orders by width-weighted xfactor, largest first.
func (WFP) Less(a, b *job.Job, now int64) bool {
	xa := XFactor(a, now) * float64(a.Width)
	xb := XFactor(b, now) * float64(b.Width)
	if xa != xb {
		return xa > xb
	}
	return tieBreak(a, b)
}

// Policies returns the registry of named priority policies.
func Policies() []Policy {
	return []Policy{FCFS{}, SJF{}, XF{}, LJF{}, WFP{}}
}

// PolicyByName looks up a policy by its Name (case-sensitive).
func PolicyByName(name string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("sched: unknown policy %q", name)
}

// sortQueue orders jobs in place by policy priority at time now. Queues are
// re-sorted at every scheduling event but rarely change order between
// events (new arrivals append at the tail; dynamic policies like XFactor
// reorder slowly), so the sort is tuned for the nearly-sorted case: a
// linear already-sorted check, then an allocation-free stable insertion
// sort for small or almost-ordered queues, falling back to the library
// sort only for long unordered queues. Every policy induces a strict total
// order, so all stable algorithms produce the identical permutation.
func sortQueue(queue []*job.Job, pol Policy, now int64) {
	sorted := true
	for i := 1; i < len(queue); i++ {
		if pol.Less(queue[i], queue[i-1], now) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	if len(queue) <= 64 {
		for i := 1; i < len(queue); i++ {
			j := queue[i]
			k := i - 1
			for k >= 0 && pol.Less(j, queue[k], now) {
				queue[k+1] = queue[k]
				k--
			}
			queue[k+1] = j
		}
		return
	}
	if kp, ok := pol.(keyedPolicy); ok {
		sortQueueKeyed(queue, kp, now)
		return
	}
	slices.SortStableFunc(queue, func(a, b *job.Job) int {
		return policyCmp(pol, a, b, now)
	})
}

// keyedPolicy is implemented by time-dependent policies whose ordering is a
// single float64 key (largest first) ahead of the arrival/ID tie-break.
// Sorting through it computes each job's key exactly once per epoch — the
// instant the sort runs at — instead of twice per comparison; the cache is
// valid only within that epoch, because the keys themselves move with time.
type keyedPolicy interface {
	Policy
	// key returns the job's priority key at now (larger sorts earlier).
	key(j *job.Job, now int64) float64
}

func (XF) key(j *job.Job, now int64) float64 { return XFactor(j, now) }

func (WFP) key(j *job.Job, now int64) float64 { return XFactor(j, now) * float64(j.Width) }

// keyedJob pairs one queue entry with its memoized key for the current
// sort epoch.
type keyedJob struct {
	key float64
	j   *job.Job
}

// keyScratch pools the decorated slices sortQueueKeyed sorts, so large
// keyed sorts stop allocating once a scratch of the working size exists.
// A pool (rather than per-scheduler scratch) keeps the fast path shared by
// every caller of sortQueue — compression passes included — and safe under
// the runner's parallel experiments.
var keyScratch = sync.Pool{New: func() any { return new([]keyedJob) }}

// sortQueueKeyed sorts a long queue under a keyed (time-dependent) policy
// by decorating each job with its key once and sorting the decorated
// slice. The comparison mirrors the policies' Less exactly: key
// descending, then the shared tie-break — so the permutation is identical
// to the comparator path the small-queue insertion sort uses.
func sortQueueKeyed(queue []*job.Job, pol keyedPolicy, now int64) {
	sp := keyScratch.Get().(*[]keyedJob)
	scratch := (*sp)[:0]
	for _, j := range queue {
		scratch = append(scratch, keyedJob{key: pol.key(j, now), j: j})
	}
	slices.SortStableFunc(scratch, func(a, b keyedJob) int {
		switch {
		case a.key > b.key:
			return -1
		case a.key < b.key:
			return 1
		case tieBreak(a.j, b.j):
			return -1
		case tieBreak(b.j, a.j):
			return 1
		default:
			return 0
		}
	})
	for i := range scratch {
		queue[i] = scratch[i].j
		scratch[i].j = nil // no stale job pointers parked in the pool
	}
	*sp = scratch
	keyScratch.Put(sp)
}

// policyCmp lifts a policy's strict-weak-order Less into the three-way
// comparison slices.SortStableFunc requires. Both calls are needed:
// returning 0 for "not less" alone would not be antisymmetric, and the
// policies' comparator-totality tests pin exactly the properties (totality,
// antisymmetry, transitivity) that make this lift order-preserving.
func policyCmp(pol Policy, a, b *job.Job, now int64) int {
	if pol.Less(a, b, now) {
		return -1
	}
	if pol.Less(b, a, now) {
		return 1
	}
	return 0
}
