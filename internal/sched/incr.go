package sched

import (
	"math"
	"sort"

	"repro/internal/job"
)

// This file is the shared infrastructure behind incremental scheduling
// passes (DESIGN.md §15): generation/dirty tracking so a Launch that
// provably cannot start anything returns without touching the queue,
// ordered insertion so queues stay in policy order without per-event
// re-sorts, and the blocked-width watermark that lets head-gated
// schedulers skip passes after completions too small to matter.
//
// The correctness contract every user of passMemo relies on: a skipped
// pass must be observably identical to running the full pass — same (empty)
// start list, same queue order, same internal state. The differential
// fuzzer FuzzLaunchIncremental pins exactly that, scheduler by scheduler,
// against a reference copy with the memo disabled.

// noWake is the "no time-triggered action pending" sentinel for
// passMemo.nextAt: with an unchanged queue and machine, no future instant
// can make a pass start anything.
const noWake = math.MaxInt64

// noWatermark is the "no job failed to start" sentinel for
// passMemo.blockedW: any amount of freed capacity must invalidate.
const noWatermark = math.MaxInt32

// PolicyTimeInvariant reports whether pol orders any two jobs identically
// at every instant. FCFS, SJF and LJF compare static job fields only;
// XFactor-family policies age jobs at estimate-dependent rates, so their
// relative order changes as time passes. Incremental schedulers use this
// to decide whether a queue sorted at one instant is still sorted at a
// later one (and therefore whether a pass can be skipped when time alone
// has advanced).
func PolicyTimeInvariant(pol Policy) bool {
	switch pol.(type) {
	case FCFS, SJF, LJF:
		return true
	}
	return false
}

// passMemo is the generation/dirty state one scheduler keeps between
// Launch passes. Events that could change what a pass does fall in two
// classes: structural changes (completions, cancellations, suspensions,
// reservation compression — anything that frees capacity or moves
// guarantees) mark the memo dirty and force a full pass; arrivals are
// counted separately because most schedulers can fold a new job into the
// previous pass's cached conclusion without replaying it (the
// arrivals-only fast path each scheduler implements on top of this).
type passMemo struct {
	// timeInv caches PolicyTimeInvariant(pol) at construction.
	timeInv bool
	// forceFull disables every skip and fast path; the differential
	// fuzzer's reference schedulers set it so both sides share one
	// implementation.
	forceFull bool

	valid    bool  // a pass has completed since the last structural change
	dirty    bool  // structural change since the last completed pass
	arrivals int   // arrivals since the last completed pass
	lastNow  int64 // instant of the last completed pass
	// nextAt is the earliest future instant at which a pass could start
	// (or promote, or preempt) a job with no further events — the minimum
	// over pending reservations, replanned starts, and threshold-crossing
	// times, or noWake when the blocked state is time-independent. It must
	// never be later than the true earliest action (stale-low is a futile
	// full pass; stale-high would skip real work).
	nextAt int64
	// blockedW is the narrowest width that failed to start during the last
	// pass (noWatermark when every queued job started). Head-gated
	// schedulers use it as the watermark: capacity freed while still below
	// it cannot unblock anything.
	blockedW int
}

// newPassMemo returns the initial memo for a scheduler under pol.
func newPassMemo(pol Policy) passMemo {
	return passMemo{timeInv: PolicyTimeInvariant(pol), blockedW: noWatermark}
}

// noteArrival records one arrival since the last pass.
func (m *passMemo) noteArrival() { m.arrivals++ }

// invalidate records a structural change: the next Launch runs in full.
func (m *passMemo) invalidate() {
	m.dirty = true
	m.valid = false
}

// canSkip reports whether a pass at now is provably a no-op. Same-instant
// repeats of a completed pass are always skippable (a pass runs to its own
// fixpoint); advancing time is skippable only under a time-invariant
// policy (otherwise the queue order, and with it the head and its shadow,
// may change) and only before nextAt.
func (m *passMemo) canSkip(now int64) bool {
	if m.forceFull || !m.valid || m.dirty || m.arrivals > 0 {
		return false
	}
	if now == m.lastNow {
		return true
	}
	return m.timeInv && now < m.nextAt
}

// arrivalsOnly reports whether the only changes since the last completed
// pass are new arrivals — the precondition for every scheduler's
// incremental arrival path. The path additionally requires a
// time-invariant policy: the cached conclusions (shadow times,
// reservations, replanned starts) were derived under the pass-time queue
// order.
func (m *passMemo) arrivalsOnly() bool {
	return !m.forceFull && m.valid && !m.dirty && m.arrivals > 0 && m.timeInv
}

// completePass records a finished pass at now with the given
// time-trigger lower bound.
func (m *passMemo) completePass(now, nextAt int64) {
	m.valid = true
	m.dirty = false
	m.arrivals = 0
	m.lastNow = now
	m.nextAt = nextAt
}

// orderedInsert places j into queue at its policy position, preserving
// sorted order. Policies induce a strict total order, so the sorted
// permutation is unique and inserting is equivalent to appending and
// re-sorting. Callers only use it under time-invariant policies, where an
// order established at arrival time holds at every later instant.
func orderedInsert(queue []*job.Job, j *job.Job, pol Policy, now int64) []*job.Job {
	i := sort.Search(len(queue), func(k int) bool { return pol.Less(j, queue[k], now) })
	queue = append(queue, nil)
	copy(queue[i+1:], queue[i:])
	queue[i] = j
	return queue
}

// clearTail nils out the elements of q beyond n and returns q[:n].
// Compaction loops that shrink a queue in place must clear the abandoned
// tail: the backing array otherwise keeps pointers to started jobs live
// for the queue's whole lifetime.
func clearTail(q []*job.Job, n int) []*job.Job {
	tail := q[n:]
	for i := range tail {
		tail[i] = nil
	}
	return q[:n]
}

// compactFront removes the first n elements of q in place (preserving
// order) and clears the vacated tail, so the backing array neither leaks
// its prefix (the re-slice q = q[n:] abandons it) nor retains pointers to
// the removed jobs.
func compactFront(q []*job.Job, n int) []*job.Job {
	if n == 0 {
		return q
	}
	copy(q, q[n:])
	return clearTail(q, len(q)-n)
}

// xfCrossTime returns the earliest instant t >= from at which
// XFactor(j, t) reaches threshold: the promotion/preemption trigger time
// incremental passes use as a wake-up bound. The closed form
// arrival + ceil((threshold-1)·estimate) is adjusted by at most a step in
// either direction to stay exact under floating-point rounding.
func xfCrossTime(j *job.Job, threshold float64, from int64) int64 {
	if XFactor(j, from) >= threshold {
		return from
	}
	est := j.Estimate
	if est < 1 {
		est = 1
	}
	d := (threshold - 1) * float64(est)
	if d >= math.MaxInt64/2 {
		return noWake
	}
	t := j.Arrival + int64(math.Ceil(d))
	for t > from && XFactor(j, t-1) >= threshold {
		t--
	}
	for XFactor(j, t) < threshold {
		t++
	}
	if t < from {
		t = from
	}
	return t
}

// minInt64 returns the smaller of a and b.
func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
