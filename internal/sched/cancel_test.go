package sched

import (
	"testing"

	"repro/internal/job"
	"repro/internal/stats"
)

func TestCancelQueueRemoval(t *testing.T) {
	// All queue-only schedulers: cancel removes exactly the target.
	type canceler interface {
		Canceler
		Arrive(now int64, j *job.Job)
		QueuedJobs() []*job.Job
	}
	builders := map[string]func() canceler{
		"EASY":       func() canceler { return NewEASY(8, FCFS{}) },
		"NoBackfill": func() canceler { return NewNoBackfill(8, FCFS{}) },
		"DepthK":     func() canceler { return NewDepthK(8, FCFS{}, 2) },
		"Preemptive": func() canceler { return NewPreemptive(8, FCFS{}, 5, 60) },
	}
	for name, mk := range builders {
		t.Run(name, func(t *testing.T) {
			s := mk()
			j1 := exactJob(1, 0, 100, 8)
			j2 := exactJob(2, 0, 100, 8)
			s.Arrive(0, j1)
			s.Arrive(0, j2)
			if !s.Cancel(0, j1) {
				t.Fatal("cancel of queued job failed")
			}
			if s.Cancel(0, j1) {
				t.Fatal("second cancel should report false")
			}
			q := s.QueuedJobs()
			if len(q) != 1 || q[0].ID != 2 {
				t.Fatalf("queue after cancel = %v", q)
			}
			if s.Cancel(0, exactJob(99, 0, 10, 1)) {
				t.Fatal("cancel of unknown job should report false")
			}
		})
	}
}

func TestConservativeCancelReleasesReservation(t *testing.T) {
	// j1 runs [0,100) on the whole machine; j2 reserved [100,200); j3
	// reserved [200,300). Cancelling j2 must compress j3 to 100.
	s := NewConservative(10, FCFS{})
	j1 := exactJob(1, 0, 100, 10)
	j2 := exactJob(2, 0, 100, 10)
	j3 := exactJob(3, 0, 100, 10)
	s.Arrive(0, j1)
	s.Arrive(0, j2)
	s.Arrive(0, j3)
	s.Launch(0) // starts j1

	if r, _ := s.Reservation(3); r != 200 {
		t.Fatalf("j3 initially reserved at %d, want 200", r)
	}
	if !s.Cancel(0, j2) {
		t.Fatal("cancel failed")
	}
	if r, _ := s.Reservation(3); r != 100 {
		t.Fatalf("j3 after cancel reserved at %d, want 100 (compressed into the hole)", r)
	}
	if _, ok := s.Reservation(2); ok {
		t.Fatal("cancelled job still holds a reservation")
	}
	if len(s.Violations()) != 0 {
		t.Fatalf("violations: %v", s.Violations())
	}
}

func TestConservativeCancelOfStartableJob(t *testing.T) {
	// A job whose reservation time has arrived (resv == now) can still be
	// cancelled before Launch claims it; the window [now, now+est) must be
	// released so capacity accounting stays exact.
	s := NewConservative(10, FCFS{})
	j1 := exactJob(1, 0, 100, 10)
	s.Arrive(0, j1)
	if !s.Cancel(0, j1) {
		t.Fatal("cancel failed")
	}
	// The full machine must be reservable again right now.
	j2 := exactJob(2, 0, 100, 10)
	s.Arrive(0, j2)
	if r, _ := s.Reservation(2); r != 0 {
		t.Fatalf("after cancelling j1, j2 reserved at %d, want 0", r)
	}
}

func TestSlackCancelReleasesReservation(t *testing.T) {
	s := NewSlackBased(10, FCFS{}, 1)
	j1 := exactJob(1, 0, 100, 10)
	j2 := exactJob(2, 0, 100, 10)
	j3 := exactJob(3, 0, 100, 10)
	s.Arrive(0, j1)
	s.Arrive(0, j2)
	s.Arrive(0, j3)
	s.Launch(0)
	if !s.Cancel(0, j2) {
		t.Fatal("cancel failed")
	}
	if r, _ := s.Reservation(3); r != 100 {
		t.Fatalf("j3 after cancel reserved at %d, want 100", r)
	}
	if _, ok := s.Guarantee(2); ok {
		t.Fatal("cancelled job still holds a guarantee")
	}
	if s.Cancel(0, j2) {
		t.Fatal("double cancel should report false")
	}
}

func TestSelectiveCancelPromotedJob(t *testing.T) {
	s := NewSelective(10, FCFS{}, 1) // threshold 1: promote immediately
	j1 := exactJob(1, 0, 100, 10)
	j2 := exactJob(2, 0, 100, 10)
	s.Arrive(0, j1)
	s.Arrive(0, j2)
	s.Launch(0) // starts j1, promotes j2 with a reservation at 100
	if _, promoted := s.Promoted(2); !promoted {
		t.Fatal("j2 should be promoted at threshold 1")
	}
	if !s.Cancel(0, j2) {
		t.Fatal("cancel failed")
	}
	if _, promoted := s.Promoted(2); promoted {
		t.Fatal("cancelled job still promoted")
	}
	// Capacity must be free at 100 again: a new arrival can take it.
	j3 := exactJob(3, 0, 100, 10)
	s.Arrive(0, j3)
	out := s.Launch(0)
	if len(out) != 0 {
		t.Fatalf("j3 should queue behind running j1, got %v", out)
	}
	if v := s.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestPreemptiveCancelRefusesSuspendedJob(t *testing.T) {
	s := NewPreemptive(8, FCFS{}, 5, 60)
	j := exactJob(1, 0, 100, 4)
	s.Arrive(0, j)
	s.consumed[j.ID] = 10 // simulate banked work from a suspension
	if s.Cancel(0, j) {
		t.Fatal("suspended job must not be cancellable")
	}
}

// TestCancelUnderRandomLoad drives conservative backfilling through a full
// hand-rolled event loop — arrivals, completions AND random cancellations —
// checking that the profile never corrupts (its Reserve/Release panics are
// the detector) and that every surviving job runs within capacity.
func TestCancelUnderRandomLoad(t *testing.T) {
	r := stats.NewRNG(1900)
	for trial := 0; trial < 30; trial++ {
		const procs = 16
		s := NewConservative(procs, FCFS{})

		type completion struct {
			at int64
			j  *job.Job
		}
		var pending []completion
		inUse := 0
		now := int64(0)

		deliverUntil := func(limit int64) {
			for {
				// Earliest pending completion time within the limit.
				next := int64(-1)
				for _, c := range pending {
					if c.at <= limit && (next == -1 || c.at < next) {
						next = c.at
					}
				}
				if next == -1 {
					return
				}
				// Batch every completion at that instant before launching,
				// exactly as the engine does: a start at t may reuse the
				// processors of any job whose work ends at t.
				kept := pending[:0]
				for _, c := range pending {
					if c.at == next {
						s.Complete(c.at, c.j)
						inUse -= c.j.Width
					} else {
						kept = append(kept, c)
					}
				}
				pending = kept
				for _, st := range s.Launch(next) {
					inUse += st.Width
					pending = append(pending, completion{next + st.Runtime, st})
				}
				if inUse > procs {
					t.Fatalf("trial %d: capacity exceeded (%d > %d)", trial, inUse, procs)
				}
			}
		}

		for i := 1; i <= 40; i++ {
			now += int64(r.Intn(120))
			deliverUntil(now)
			j := &job.Job{
				ID: i, Arrival: now,
				Runtime: int64(r.Intn(500) + 1), Width: r.Intn(procs) + 1,
			}
			j.Estimate = j.Runtime
			s.Arrive(now, j)
			for _, st := range s.Launch(now) {
				inUse += st.Width
				pending = append(pending, completion{now + st.Runtime, st})
			}
			if inUse > procs {
				t.Fatalf("trial %d: capacity exceeded (%d > %d)", trial, inUse, procs)
			}
			if r.Bool(0.3) {
				q := s.QueuedJobs()
				if len(q) > 0 {
					s.Cancel(now, q[r.Intn(len(q))])
					// Compression inside Cancel can pull a survivor to
					// "now"; the caller owes it a Launch pass, exactly as
					// grid.Run's fixed-point sweep provides.
					for _, st := range s.Launch(now) {
						inUse += st.Width
						pending = append(pending, completion{now + st.Runtime, st})
					}
					if inUse > procs {
						t.Fatalf("trial %d: capacity exceeded after cancel (%d > %d)", trial, inUse, procs)
					}
				}
			}
		}
		deliverUntil(1 << 60) // drain
		if v := s.Violations(); len(v) != 0 {
			t.Fatalf("trial %d: violations: %v", trial, v)
		}
	}
}
