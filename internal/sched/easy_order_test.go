package sched

import (
	"testing"

	"repro/internal/job"
	"repro/internal/stats"
)

func TestBackfillOrderString(t *testing.T) {
	if FirstFit.String() != "firstfit" || BestFit.String() != "bestfit" || ShortestFit.String() != "shortestfit" {
		t.Fatal("order names wrong")
	}
	if BackfillOrder(9).String() == "" {
		t.Fatal("unknown order should stringify")
	}
}

func TestEASYOrderNames(t *testing.T) {
	if got := NewEASYWithOrder(8, FCFS{}, BestFit).Name(); got != "EASY(FCFS,bestfit)" {
		t.Fatalf("Name = %q", got)
	}
	if got := NewEASYWithOrder(8, FCFS{}, FirstFit).Name(); got != "EASY(FCFS)" {
		t.Fatalf("default-order Name = %q", got)
	}
}

func TestNewEASYWithOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEASYWithOrder(8, FCFS{}, BackfillOrder(99))
}

// TestGoldenBestFitPacksWider builds a hole where two simultaneous
// candidates compete: A (w2, higher priority) and B (w4). Both are
// eligible via the head's extra nodes (extra = 4); starting either leaves
// too little for the other. FirstFit takes A (priority order); BestFit
// takes the wider B.
func TestGoldenBestFitPacksWider(t *testing.T) {
	jobs := []*job.Job{
		exactJob(1, 0, 100, 6), // running [0,100), free 4
		exactJob(2, 1, 100, 6), // head: blocked, shadow 100, extra 4
		exactJob(3, 2, 500, 2), // candidate A (long: cannot finish by shadow)
		exactJob(4, 2, 500, 4), // candidate B (long, wider), same arrival batch
	}
	ff := runOn(t, 10, jobs, NewEASYWithOrder(10, FCFS{}, FirstFit))
	bf := runOn(t, 10, jobs, NewEASYWithOrder(10, FCFS{}, BestFit))

	// FirstFit: A (w2) backfills at t=2 via extra, leaving free 2 < B.
	if ff[3] != 2 {
		t.Fatalf("FirstFit: candidate A start = %d, want 2", ff[3])
	}
	if ff[4] == 2 {
		t.Fatalf("FirstFit: candidate B should lose the hole, got %d", ff[4])
	}
	// BestFit: B (w4) wins the hole; A is left out (free 0).
	if bf[4] != 2 {
		t.Fatalf("BestFit: candidate B start = %d, want 2", bf[4])
	}
	if bf[3] == 2 {
		t.Fatalf("BestFit: candidate A should lose the hole, started at %d", bf[3])
	}
}

func TestGoldenShortestFitPrefersShortCandidate(t *testing.T) {
	// Same structure; candidates differ in estimate, equal width, same
	// arrival batch.
	jobs := []*job.Job{
		exactJob(1, 0, 100, 6),
		exactJob(2, 1, 100, 6), // head, extra 4
		exactJob(3, 2, 900, 4), // long candidate (priority order first)
		exactJob(4, 2, 400, 4), // shorter candidate
	}
	ff := runOn(t, 10, jobs, NewEASYWithOrder(10, FCFS{}, FirstFit))
	sf := runOn(t, 10, jobs, NewEASYWithOrder(10, FCFS{}, ShortestFit))
	if ff[3] != 2 {
		t.Fatalf("FirstFit should take the higher-priority candidate at 2, got %d", ff[3])
	}
	if sf[4] != 2 || sf[3] == 2 {
		t.Fatalf("ShortestFit should take the shorter candidate at 2: got j3=%d j4=%d", sf[3], sf[4])
	}
}

func TestEASYOrdersValidAndDeterministic(t *testing.T) {
	const procs = 32
	jobs := genWorkload(stats.NewRNG(1101), 200, procs, 1)
	for _, order := range []BackfillOrder{FirstFit, BestFit, ShortestFit} {
		a := runOn(t, procs, jobs, NewEASYWithOrder(procs, FCFS{}, order))
		b := runOn(t, procs, jobs, NewEASYWithOrder(procs, FCFS{}, order))
		for id := range a {
			if a[id] != b[id] {
				t.Fatalf("order %v nondeterministic", order)
			}
		}
	}
}

func TestEASYOrdersDivergeOnBusyWorkload(t *testing.T) {
	const procs = 32
	diverged := false
	for trial := 0; trial < 6 && !diverged; trial++ {
		jobs := genWorkload(stats.NewRNG(int64(1110+trial)), 250, procs, 1)
		ff := runOn(t, procs, jobs, NewEASYWithOrder(procs, FCFS{}, FirstFit))
		bf := runOn(t, procs, jobs, NewEASYWithOrder(procs, FCFS{}, BestFit))
		for id := range ff {
			if ff[id] != bf[id] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("bestfit never diverged from firstfit — order appears inert")
	}
}
