package sched

import (
	"testing"

	"repro/internal/job"
)

// TestProfileSteadyStateAllocs pins the profile's allocation behavior: once
// the backing array has grown to the working size, reserve/release pairs —
// including the boundary splits and re-merges they trigger — must not
// allocate. Regressing this (e.g. by rebuilding slices in adjust or
// re-slicing away spare capacity) multiplies GC pressure across every
// scheduler, so the test fails on any nonzero figure.
func TestProfileSteadyStateAllocs(t *testing.T) {
	p := NewProfile(430)
	for i := 0; i < 64; i++ {
		p.Reserve(int64(i)*100, 50, 3)
	}
	for i := 0; i < 64; i++ {
		p.Release(int64(i)*100, 50, 3)
	}
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		from := 200000 + int64((i*97)%1000)*10
		p.Reserve(from, 1000, 8)
		p.Release(from, 1000, 8)
		i++
	}); avg != 0 {
		t.Fatalf("steady-state Reserve/Release allocates %.1f times per pair, want 0", avg)
	}
}

// TestProfileTrimAllocs drives the rolling-window pattern every scheduler
// produces — reserve ahead, trim behind — and requires it to settle at zero
// allocations. Trim must copy survivors down into the head of the backing
// array; the old re-slice (points = points[i:]) abandoned the prefix, so
// capacity shrank forever and every later insertion eventually reallocated.
func TestProfileTrimAllocs(t *testing.T) {
	p := NewProfile(64)
	var now int64
	step := func() {
		p.Reserve(now+1000, 50, 1)
		p.Trim(now)
		now += 10
	}
	for i := 0; i < 200; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Fatalf("rolling reserve+trim allocates %.1f times per step, want 0", avg)
	}
}

// TestProfileEarlierStartAllocsAndPurity checks the two properties the
// compression loops rely on: EarlierStart never mutates the profile and,
// once the index is built, never allocates.
func TestProfileEarlierStartAllocsAndPurity(t *testing.T) {
	p := NewProfile(430)
	// Grow past indexMinPoints so the indexed query paths run.
	for i, tt := 0, int64(0); tt < 20000; i, tt = i+1, tt+50 {
		p.Reserve(tt, 50, 399+i%2)
	}
	if p.NumPoints() < indexMinPoints {
		t.Fatalf("setup too small: %d points, need >= %d", p.NumPoints(), indexMinPoints)
	}
	p.Reserve(30000, 500, 64)
	p.FindStart(0, 3600, 64) // builds the index

	before := append([]point(nil), p.points...)
	if avg := testing.AllocsPerRun(100, func() {
		p.EarlierStart(0, 30000, 500, 64)
	}); avg != 0 {
		t.Fatalf("EarlierStart allocates %.1f times per call, want 0", avg)
	}
	if len(before) != len(p.points) {
		t.Fatalf("EarlierStart changed the point count: %d -> %d", len(before), len(p.points))
	}
	for k := range before {
		if before[k] != p.points[k] {
			t.Fatalf("EarlierStart mutated point %d: %+v -> %+v", k, before[k], p.points[k])
		}
	}
}

// TestLaunchNoopAllocs pins the no-op pass fast path (DESIGN.md §15): with
// a deep standing queue behind a blocked head and no events since the last
// completed pass, Launch must return in O(1) with zero allocations — for
// every scheduler kind, at the same instant and (under time-invariant
// policies) at later ones. This is the property that decouples the write
// path's per-submit cost from queue depth; regressing it re-introduces the
// O(depth) scan PERFORMANCE.md §8 measured.
func TestLaunchNoopAllocs(t *testing.T) {
	for name, mk := range incrMakers(16, FCFS{}) {
		s := mk()
		// One wide head that can never start plus a deep tail of wide jobs.
		wide := &job.Job{ID: 1, Arrival: 0, Runtime: 5000, Estimate: 6000, Width: 16}
		s.Arrive(0, wide)
		s.Launch(0) // starts the head; machine now full
		for id := 2; id <= 514; id++ {
			s.Arrive(1, &job.Job{ID: id, Arrival: 1, Runtime: 1000, Estimate: 1200, Width: 12})
		}
		s.Launch(1) // the full pass that establishes the memo
		now := int64(2)
		if avg := testing.AllocsPerRun(200, func() {
			if got := s.Launch(now); got != nil {
				t.Fatalf("%s: no-op Launch at t=%d started %d jobs", name, now, len(got))
			}
			now++
		}); avg != 0 {
			t.Fatalf("%s: no-op Launch allocates %.1f times per pass, want 0", name, avg)
		}
	}
}
