package sched

import (
	"fmt"
	"strings"

	"repro/internal/job"
	"repro/internal/sim"
)

// Partitioned statically splits the machine into independent partitions,
// each running its own scheduler over its own processors — how many centers
// operated before backfilling made shared pools viable (separate "short"
// and "long" queues with dedicated nodes). A Router assigns every arriving
// job to a partition; widths must fit the assigned partition.
//
// The Partitioning experiment uses this as the historical baseline: static
// splits waste capacity whenever one partition idles while another queues,
// and quantifying that waste against a shared backfilling pool is the
// classic argument for the schedulers this repository studies.
type Partitioned struct {
	name       string
	partitions []sim.Scheduler
	sizes      []int
	router     Router
	assigned   map[int]int // job ID -> partition index
}

// Router assigns a job to a partition index. It must be deterministic and
// must return an index whose partition is at least as wide as the job.
type Router func(j *job.Job) int

// NewPartitioned builds a partitioned scheduler. sizes gives each
// partition's processor count; mk constructs the scheduler for one
// partition given its size and index. It panics on invalid arguments
// (empty sizes, non-positive size, nil router/make).
func NewPartitioned(sizes []int, router Router, mk func(procs, idx int) sim.Scheduler) *Partitioned {
	if len(sizes) == 0 {
		panic("sched: NewPartitioned with no partitions")
	}
	if router == nil {
		panic("sched: NewPartitioned with nil router")
	}
	if mk == nil {
		panic("sched: NewPartitioned with nil scheduler constructor")
	}
	p := &Partitioned{
		sizes:    append([]int(nil), sizes...),
		router:   router,
		assigned: map[int]int{},
	}
	names := make([]string, len(sizes))
	for i, size := range sizes {
		if size < 1 {
			panic(fmt.Sprintf("sched: partition %d has %d processors", i, size))
		}
		s := mk(size, i)
		p.partitions = append(p.partitions, s)
		names[i] = fmt.Sprintf("%d:%s", size, s.Name())
	}
	p.name = fmt.Sprintf("Partitioned[%s]", strings.Join(names, "|"))
	return p
}

// Procs returns the total processor count across partitions.
func (p *Partitioned) Procs() int {
	total := 0
	for _, s := range p.sizes {
		total += s
	}
	return total
}

// Name identifies the composite scheduler.
func (p *Partitioned) Name() string { return p.name }

// Arrive routes the job to its partition.
func (p *Partitioned) Arrive(now int64, j *job.Job) {
	idx := p.router(j)
	if idx < 0 || idx >= len(p.partitions) {
		panic(fmt.Sprintf("sched: router sent %v to partition %d of %d", j, idx, len(p.partitions)))
	}
	if j.Width > p.sizes[idx] {
		panic(fmt.Sprintf("sched: router sent %v (width %d) to partition %d of %d processors", j, j.Width, idx, p.sizes[idx]))
	}
	p.assigned[j.ID] = idx
	p.partitions[idx].Arrive(now, j)
}

// Complete forwards the completion to the owning partition.
func (p *Partitioned) Complete(now int64, j *job.Job) {
	idx, ok := p.assigned[j.ID]
	if !ok {
		panic(fmt.Sprintf("sched: Partitioned completion for unrouted %v", j))
	}
	delete(p.assigned, j.ID)
	p.partitions[idx].Complete(now, j)
}

// Launch concatenates every partition's launches.
func (p *Partitioned) Launch(now int64) []*job.Job {
	var out []*job.Job
	for _, s := range p.partitions {
		out = append(out, s.Launch(now)...)
	}
	return out
}

// QueuedJobs concatenates every partition's queue.
func (p *Partitioned) QueuedJobs() []*job.Job {
	var out []*job.Job
	for _, s := range p.partitions {
		out = append(out, s.QueuedJobs()...)
	}
	return out
}

// NextWake forwards to partitions implementing sim.Waker and returns the
// earliest requested wake-up.
func (p *Partitioned) NextWake(now int64) int64 {
	var next int64
	for _, s := range p.partitions {
		if w, ok := s.(sim.Waker); ok {
			if t := w.NextWake(now); t > now && (next == 0 || t < next) {
				next = t
			}
		}
	}
	return next
}

// RuntimeRouter routes jobs by estimated runtime: jobs with estimates at or
// below threshold go to partition 0 (the "short" partition), the rest to
// partition 1 — the classic short/long queue split. Jobs too wide for their
// runtime-chosen partition overflow to the other if it fits them.
func RuntimeRouter(threshold int64, sizes []int) Router {
	if len(sizes) != 2 {
		panic(fmt.Sprintf("sched: RuntimeRouter needs exactly 2 partitions, got %d", len(sizes)))
	}
	return func(j *job.Job) int {
		idx := 1
		if j.Estimate <= threshold {
			idx = 0
		}
		if j.Width > sizes[idx] {
			idx = 1 - idx // overflow to the other partition
		}
		return idx
	}
}
