package sched

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// TestAllRegistryKindsConformance drives every scheduler kind the registry
// can build through the same busy workload under audit: every kind must
// schedule all jobs validly and deterministically. This is the conformance
// battery a new scheduler must pass to be registered.
func TestAllRegistryKindsConformance(t *testing.T) {
	const procs = 32
	kinds := append(Kinds(), "selective:3", "depth:8", "slack:0.5", "preemptive:5")
	jobs := genWorkload(stats.NewRNG(1700), 180, procs, 1)
	for _, kind := range kinds {
		for _, polName := range []string{"FCFS", "SJF", "XF"} {
			pol, err := PolicyByName(polName)
			if err != nil {
				t.Fatal(err)
			}
			mk, err := MakerFor(kind, pol)
			if err != nil {
				t.Fatalf("MakerFor(%q): %v", kind, err)
			}
			name := kind + "/" + polName
			t.Run(name, func(t *testing.T) {
				a := runOn(t, procs, jobs, mk(procs))
				b := runOn(t, procs, jobs, mk(procs))
				for id := range a {
					if a[id] != b[id] {
						t.Fatalf("%s: nondeterministic", name)
					}
				}
			})
		}
	}
}

// TestRegistryErrorMessagesNameTheKind keeps the operator-facing error
// useful.
func TestRegistryErrorMessagesNameTheKind(t *testing.T) {
	_, err := MakerFor("wat", FCFS{})
	if err == nil || !strings.Contains(err.Error(), "wat") {
		t.Fatalf("error should name the unknown kind: %v", err)
	}
	for _, bad := range []string{"depth:x", "depth:0", "slack:x", "preemptive:x", "preemptive:0.5"} {
		if _, err := MakerFor(bad, FCFS{}); err == nil {
			t.Errorf("MakerFor(%q): want error", bad)
		}
	}
}
