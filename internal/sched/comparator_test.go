package sched

import (
	"testing"

	"repro/internal/job"
)

// TestHeadReservationCountsSimultaneousFinishers pins the shadow
// computation's handling of runners whose estimates end at the same
// instant: all of them release processors at the shadow time, so all of
// them count toward the head's extra. (A regression here was found by the
// differential harness: under-counting extra made EASY diverge from
// depth-1 lookahead.)
func TestHeadReservationCountsSimultaneousFinishers(t *testing.T) {
	s := NewEASY(8, FCFS{})
	a := &job.Job{ID: 1, Arrival: 0, Runtime: 10, Estimate: 10, Width: 2}
	b := &job.Job{ID: 2, Arrival: 0, Runtime: 10, Estimate: 10, Width: 2}
	s.Arrive(0, a)
	s.Arrive(0, b)
	if got := s.Launch(0); len(got) != 2 {
		t.Fatalf("setup: started %d jobs, want 2", len(got))
	}

	head := &job.Job{ID: 3, Arrival: 0, Runtime: 30, Estimate: 30, Width: 6}
	shadow, extra := s.headReservation(head)
	if shadow != 10 || extra != 2 {
		t.Fatalf("headReservation = (%d, %d), want (10, 2): both runners end at 10", shadow, extra)
	}

	// The candidate overruns the shadow but fits in the extra processors,
	// so it must backfill.
	cand := &job.Job{ID: 4, Arrival: 0, Runtime: 100, Estimate: 100, Width: 2}
	s.Arrive(0, head)
	s.Arrive(0, cand)
	started := s.Launch(0)
	if len(started) != 1 || started[0].ID != cand.ID {
		t.Fatalf("Launch = %v, want the width-2 candidate backfilled into extra", started)
	}
}

// TestHeadReservationDeterministicUnderReordering checks the comparator
// behind the shadow computation is total: runners inserted in any order
// (equal estimate ends, distinct IDs) give the same reservation. The sort
// tie-breaks on job ID, so the scan order — and therefore the schedule —
// cannot depend on map or insertion order.
func TestHeadReservationDeterministicUnderReordering(t *testing.T) {
	mk := func(order []int) (int64, int) {
		s := NewEASY(8, FCFS{})
		jobs := map[int]*job.Job{
			1: {ID: 1, Arrival: 0, Runtime: 10, Estimate: 10, Width: 3},
			2: {ID: 2, Arrival: 0, Runtime: 10, Estimate: 10, Width: 2},
			3: {ID: 3, Arrival: 0, Runtime: 10, Estimate: 10, Width: 2},
		}
		for _, id := range order {
			s.Arrive(0, jobs[id])
		}
		if got := s.Launch(0); len(got) != 3 {
			t.Fatalf("setup: started %d jobs, want 3", len(got))
		}
		return s.headReservation(&job.Job{ID: 9, Arrival: 0, Runtime: 5, Estimate: 5, Width: 4})
	}
	wantShadow, wantExtra := mk([]int{1, 2, 3})
	for _, order := range [][]int{{3, 2, 1}, {2, 1, 3}, {1, 3, 2}} {
		shadow, extra := mk(order)
		if shadow != wantShadow || extra != wantExtra {
			t.Fatalf("order %v: headReservation = (%d, %d), want (%d, %d)",
				order, shadow, extra, wantShadow, wantExtra)
		}
	}
}

// TestPreemptiveHeadReservationSimultaneousFinishers is the same
// simultaneous-finish pin for the preemptive scheduler's copy of the
// shadow computation.
func TestPreemptiveHeadReservationSimultaneousFinishers(t *testing.T) {
	s := NewPreemptive(8, FCFS{}, 10, DefaultMinRun)
	a := &job.Job{ID: 1, Arrival: 0, Runtime: 10, Estimate: 10, Width: 2}
	b := &job.Job{ID: 2, Arrival: 0, Runtime: 10, Estimate: 10, Width: 2}
	s.Arrive(0, a)
	s.Arrive(0, b)
	if starts, _ := s.LaunchAndPreempt(0); len(starts) != 2 {
		t.Fatalf("setup: started %d jobs, want 2", len(starts))
	}
	shadow, extra := s.headReservation(&job.Job{ID: 3, Arrival: 0, Runtime: 30, Estimate: 30, Width: 6})
	if shadow != 10 || extra != 2 {
		t.Fatalf("headReservation = (%d, %d), want (10, 2)", shadow, extra)
	}
}
