package sched

import (
	"fmt"

	"repro/internal/job"
)

// DepthK is lookahead-k backfilling: at every scheduling event the first K
// jobs of the priority-ordered queue receive reservations on a freshly
// rebuilt availability profile, and the remaining jobs backfill wherever
// they fit right now without disturbing those reservations.
//
// K interpolates between the paper's two subjects: K=1 is exactly
// aggressive (EASY) backfilling — only the head is protected — and K→∞
// protects every queued job like conservative backfilling does (though
// without conservative's *persistent* guarantees: reservations are
// recomputed from scratch each event, so a job's planned start can move
// later as higher-priority work arrives). The K knob is the ablation for
// how much reservation "roofing" costs, the design dimension DESIGN.md
// calls out.
type DepthK struct {
	procs   int
	pol     Policy
	k       int
	queue   []*job.Job
	running []runInfo

	// scratch is the replan profile rebuilt by every Launch; reusing one
	// profile keeps the per-event rebuild allocation-free once its backing
	// array has grown to the plan's working size.
	scratch *Profile
}

// NewDepthK returns a lookahead-k backfilling scheduler. It panics if
// procs < 1, pol is nil, or k < 1.
func NewDepthK(procs int, pol Policy, k int) *DepthK {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewDepthK with %d processors", procs))
	}
	if pol == nil {
		panic("sched: NewDepthK with nil policy")
	}
	if k < 1 {
		panic(fmt.Sprintf("sched: NewDepthK with depth %d", k))
	}
	return &DepthK{procs: procs, pol: pol, k: k}
}

// Name returns e.g. "DepthK(FCFS,k=4)".
func (s *DepthK) Name() string { return fmt.Sprintf("DepthK(%s,k=%d)", s.pol.Name(), s.k) }

// Arrive queues the job.
func (s *DepthK) Arrive(_ int64, j *job.Job) { s.queue = append(s.queue, j) }

// Complete forgets the running record.
func (s *DepthK) Complete(_ int64, j *job.Job) {
	for i := range s.running {
		if s.running[i].j.ID == j.ID {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("sched: DepthK completion for unknown %v", j))
}

// Launch rebuilds the short-horizon plan: running jobs occupy the profile
// through their estimates, the first K queued jobs reserve their earliest
// slots in priority order (starting immediately when that slot is now),
// and the rest backfill greedily.
func (s *DepthK) Launch(now int64) []*job.Job {
	sortQueue(s.queue, s.pol, now)

	if s.scratch == nil {
		s.scratch = NewProfile(s.procs)
	} else {
		s.scratch.Reset()
	}
	p := s.scratch
	for _, r := range s.running {
		if r.estEnd > now {
			p.Reserve(now, r.estEnd-now, r.j.Width)
		}
	}

	var out []*job.Job
	kept := s.queue[:0]
	reserved := 0
	for _, j := range s.queue {
		start := p.FindStart(now, j.Estimate, j.Width)
		switch {
		case start == now:
			p.Reserve(now, j.Estimate, j.Width)
			s.running = append(s.running, runInfo{j: j, start: now, estEnd: now + j.Estimate})
			out = append(out, j)
		case reserved < s.k:
			// Protected: hold the slot so lower-priority jobs cannot
			// delay it.
			p.Reserve(start, j.Estimate, j.Width)
			reserved++
			kept = append(kept, j)
		default:
			// Unprotected: stays queued without a reservation.
			kept = append(kept, j)
		}
	}
	s.queue = kept
	return out
}

// QueuedJobs returns the jobs still waiting.
func (s *DepthK) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), s.queue...)
}
