package sched

import (
	"fmt"

	"repro/internal/job"
)

// DepthK is lookahead-k backfilling: at every scheduling event the first K
// jobs of the priority-ordered queue receive reservations on a freshly
// rebuilt availability profile, and the remaining jobs backfill wherever
// they fit right now without disturbing those reservations.
//
// K interpolates between the paper's two subjects: K=1 is exactly
// aggressive (EASY) backfilling — only the head is protected — and K→∞
// protects every queued job like conservative backfilling does (though
// without conservative's *persistent* guarantees: reservations are
// recomputed from scratch each event, so a job's planned start can move
// later as higher-priority work arrives). The K knob is the ablation for
// how much reservation "roofing" costs, the design dimension DESIGN.md
// calls out.
//
// Passes are incremental (DESIGN.md §15): the end-of-pass plan profile is
// kept, and an arrival that sorts behind the last protected job extends the
// plan in place — probed against the cached profile exactly as the full
// rebuild would probe it — instead of replanning the whole queue.
type DepthK struct {
	procs   int
	pol     Policy
	k       int
	queue   []*job.Job
	running []runInfo

	// scratch is the replan profile rebuilt by every full Launch; reusing
	// one profile keeps the per-event rebuild allocation-free once its
	// backing array has grown to the plan's working size. Between passes it
	// holds the end-of-pass plan the incremental path extends.
	scratch *Profile

	memo passMemo
	new  []*job.Job
	// lastProtected is the lowest-priority job holding a plan reservation
	// after the last pass (nil when none); an arrival sorting ahead of it
	// changes the protected set and forces a replan. protected is how many
	// plan reservations that pass granted.
	lastProtected *job.Job
	protected     int
}

// NewDepthK returns a lookahead-k backfilling scheduler. It panics if
// procs < 1, pol is nil, or k < 1.
func NewDepthK(procs int, pol Policy, k int) *DepthK {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewDepthK with %d processors", procs))
	}
	if pol == nil {
		panic("sched: NewDepthK with nil policy")
	}
	if k < 1 {
		panic(fmt.Sprintf("sched: NewDepthK with depth %d", k))
	}
	return &DepthK{procs: procs, pol: pol, k: k, memo: newPassMemo(pol)}
}

// Name returns e.g. "DepthK(FCFS,k=4)".
func (s *DepthK) Name() string { return fmt.Sprintf("DepthK(%s,k=%d)", s.pol.Name(), s.k) }

// Arrive queues the job at its policy position (time-invariant policies
// keep the queue permanently sorted; dynamic ones append and re-sort at
// the next pass).
func (s *DepthK) Arrive(now int64, j *job.Job) {
	s.memo.noteArrival()
	if s.memo.timeInv {
		s.queue = orderedInsert(s.queue, j, s.pol, now)
		s.new = append(s.new, j)
		return
	}
	s.queue = append(s.queue, j)
}

// Complete forgets the running record. Freed capacity moves every plan
// slot, so the memo is invalidated and the next pass replans.
func (s *DepthK) Complete(_ int64, j *job.Job) {
	s.memo.invalidate()
	for i := range s.running {
		if s.running[i].j.ID == j.ID {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("sched: DepthK completion for unknown %v", j))
}

// Launch rebuilds the short-horizon plan: running jobs occupy the profile
// through their estimates, the first K queued jobs reserve their earliest
// slots in priority order (starting immediately when that slot is now),
// and the rest backfill greedily. Futile passes are skipped via the memo;
// arrivals sorting behind the last protected job extend the cached plan
// instead of replanning.
func (s *DepthK) Launch(now int64) []*job.Job {
	if s.memo.canSkip(now) {
		return nil
	}
	if out, ok := s.launchIncremental(now); ok {
		return out
	}
	return s.launchFull(now)
}

// launchIncremental extends the cached plan with the arrivals since the
// last pass. It applies only when every new job sorts behind the last
// protected job — then the replanned first-K set and all existing plan
// slots are provably identical, and each new job lands exactly where the
// full rebuild would place it: started if its earliest slot is now,
// protected if the plan still has reservation depth to grant, unprotected
// otherwise.
func (s *DepthK) launchIncremental(now int64) ([]*job.Job, bool) {
	if !s.memo.arrivalsOnly() || now >= s.memo.nextAt || s.scratch == nil {
		return nil, false
	}
	for _, j := range s.new {
		if s.lastProtected != nil && s.pol.Less(j, s.lastProtected, now) {
			return nil, false // the arrival outranks a protected job: replan
		}
	}
	sortQueue(s.new, s.pol, now)
	nextAt := s.memo.nextAt
	var out []*job.Job
	for _, j := range s.new {
		start := s.scratch.FindStart(now, j.Estimate, j.Width)
		switch {
		case start == now:
			s.scratch.Reserve(now, j.Estimate, j.Width)
			s.running = append(s.running, runInfo{j: j, start: now, estEnd: now + j.Estimate})
			s.queue = removeJob(s.queue, j)
			out = append(out, j)
		case s.protected < s.k:
			// A pass that ends under depth K protected its whole queue, so
			// a job sorting after lastProtected is next in line for a slot.
			s.scratch.Reserve(start, j.Estimate, j.Width)
			s.protected++
			s.lastProtected = j
			nextAt = minInt64(nextAt, start)
		default:
			nextAt = minInt64(nextAt, start)
		}
	}
	s.clearNew()
	s.memo.completePass(now, nextAt)
	return out, true
}

// launchFull is the unconditional replan pass.
func (s *DepthK) launchFull(now int64) []*job.Job {
	sortQueue(s.queue, s.pol, now)

	if s.scratch == nil {
		s.scratch = NewProfile(s.procs)
	} else {
		s.scratch.Reset()
	}
	p := s.scratch
	for _, r := range s.running {
		if r.estEnd > now {
			p.Reserve(now, r.estEnd-now, r.j.Width)
		}
	}

	var out []*job.Job
	nextAt := int64(noWake)
	kept := s.queue[:0]
	s.protected = 0
	s.lastProtected = nil
	for _, j := range s.queue {
		start := p.FindStart(now, j.Estimate, j.Width)
		switch {
		case start == now:
			p.Reserve(now, j.Estimate, j.Width)
			s.running = append(s.running, runInfo{j: j, start: now, estEnd: now + j.Estimate})
			out = append(out, j)
		case s.protected < s.k:
			// Protected: hold the slot so lower-priority jobs cannot
			// delay it.
			p.Reserve(start, j.Estimate, j.Width)
			s.protected++
			s.lastProtected = j
			nextAt = minInt64(nextAt, start)
			kept = append(kept, j)
		default:
			// Unprotected: stays queued without a reservation. Its probe is
			// a safe lower bound on when it could first act (reservations
			// made later in the pass only push it later).
			nextAt = minInt64(nextAt, start)
			kept = append(kept, j)
		}
	}
	s.queue = clearTail(s.queue, len(kept))
	s.clearNew()
	s.memo.completePass(now, nextAt)
	return out
}

// clearNew empties the new-arrivals buffer without retaining job pointers.
func (s *DepthK) clearNew() {
	for i := range s.new {
		s.new[i] = nil
	}
	s.new = s.new[:0]
}

// QueuedJobs returns the jobs still waiting.
func (s *DepthK) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), s.queue...)
}
