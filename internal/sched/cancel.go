package sched

import "repro/internal/job"

// Canceler is an optional scheduler extension: withdrawing a queued job
// before it starts. Multi-site grid scheduling needs it — a job submitted
// to several sites simultaneously is cancelled everywhere else the moment
// one site starts it (Subramani et al., "Distributed job scheduling on
// computational grids using multiple simultaneous requests", HPDC 2002,
// the paper's reference [12]).
//
// Cancel returns false when the job is not currently queued (already
// started or never seen); schedulers must treat that as a harmless no-op.
//
// Contract: after cancelling, the caller must give the scheduler another
// Launch pass at the same instant before time advances — reservation-based
// schedulers compress into the freed capacity, which can make a surviving
// job startable "now". grid.Run's fixed-point launch sweep provides this.
type Canceler interface {
	Cancel(now int64, j *job.Job) bool
}

// removeQueued deletes a job from a queue slice by ID, reporting whether it
// was present. The vacated slot is cleared so the backing array does not
// retain the cancelled job.
func removeQueued(queue []*job.Job, id int) ([]*job.Job, bool) {
	for i, q := range queue {
		if q.ID == id {
			copy(queue[i:], queue[i+1:])
			return clearTail(queue, len(queue)-1), true
		}
	}
	return queue, false
}

// Cancel withdraws a queued job from EASY's queue.
func (s *EASY) Cancel(_ int64, j *job.Job) bool {
	var ok bool
	s.queue, ok = removeQueued(s.queue, j.ID)
	if ok {
		s.memo.invalidate()
	}
	return ok
}

// Cancel withdraws a queued job from the no-backfill queue.
func (s *NoBackfill) Cancel(_ int64, j *job.Job) bool {
	var ok bool
	s.queue, ok = removeQueued(s.queue, j.ID)
	if ok {
		s.memo.invalidate()
	}
	return ok
}

// Cancel withdraws a queued job from the lookahead-k queue (reservations
// are stateless, so nothing else needs releasing).
func (s *DepthK) Cancel(_ int64, j *job.Job) bool {
	var ok bool
	s.queue, ok = removeQueued(s.queue, j.ID)
	if ok {
		s.memo.invalidate()
	}
	return ok
}

// Cancel withdraws a queued job from the preemptive scheduler. Suspended
// jobs cannot be cancelled (they hold banked work); Cancel reports false
// for them so the caller knows the job is bound to this site.
func (s *Preemptive) Cancel(_ int64, j *job.Job) bool {
	if s.consumed[j.ID] > 0 {
		return false
	}
	var ok bool
	s.queue, ok = removeQueued(s.queue, j.ID)
	if ok {
		s.memo.invalidate()
	}
	return ok
}

// Cancel withdraws a queued job from conservative backfilling, releasing
// its reservation and compressing the remaining queue into the hole it
// leaves.
func (s *Conservative) Cancel(now int64, j *job.Job) bool {
	var ok bool
	s.queue, ok = removeQueued(s.queue, j.ID)
	if !ok {
		return false
	}
	s.memo.invalidate()
	start := s.resv[j.ID]
	delete(s.resv, j.ID)
	end := start + j.Estimate
	if end > now {
		from := start
		if from < now {
			from = now
		}
		s.profile.Release(from, end-from, j.Width)
		s.holes = true
	}
	if !s.noCompress && s.holes {
		s.compress(now)
	}
	return true
}

// Cancel withdraws a queued job from the slack-based scheduler, releasing
// its reservation and compressing into the hole.
func (s *SlackBased) Cancel(now int64, j *job.Job) bool {
	var ok bool
	s.queue, ok = removeQueued(s.queue, j.ID)
	if !ok {
		return false
	}
	s.memo.invalidate()
	start := s.resv[j.ID]
	delete(s.resv, j.ID)
	delete(s.guarantee, j.ID)
	end := start + j.Estimate
	if end > now {
		from := start
		if from < now {
			from = now
		}
		s.profile.Release(from, end-from, j.Width)
		s.holes = true
	}
	// Reuse the completion-path compression: it walks the queue in
	// priority order pulling reservations into freed space.
	if s.holes {
		s.compress(now)
	}
	return true
}

// Cancel withdraws a queued job from the selective scheduler, releasing a
// promoted job's reservation.
func (s *Selective) Cancel(now int64, j *job.Job) bool {
	var ok bool
	s.queue, ok = removeQueued(s.queue, j.ID)
	if !ok {
		return false
	}
	s.memo.invalidate()
	if start, promoted := s.resv[j.ID]; promoted {
		delete(s.resv, j.ID)
		end := start + j.Estimate
		if end > now {
			from := start
			if from < now {
				from = now
			}
			s.profile.Release(from, end-from, j.Width)
			s.holes = true
		}
		if s.holes {
			s.compress(now)
		}
	}
	return true
}
