package sched

import (
	"testing"

	"repro/internal/stats"
)

// naiveProfile is the reference implementation the indexed Profile is
// differentially fuzzed against: the same step-function semantics written
// in the most obvious way — full-pass splits, full-pass coalescing,
// point-by-point scans, and no index. Every operation the real Profile
// accelerates is re-answered here by brute force.
type naiveProfile struct {
	procs  int
	points []point
}

func newNaiveProfile(procs int) *naiveProfile {
	return &naiveProfile{procs: procs, points: []point{{T: 0, Free: procs}}}
}

// split ensures a point exists at exactly t.
func (n *naiveProfile) split(t int64) {
	if t <= n.points[0].T {
		if t < n.points[0].T {
			n.points = append([]point{{T: t, Free: n.points[0].Free}}, n.points...)
		}
		return
	}
	for i := len(n.points) - 1; i >= 0; i-- {
		if n.points[i].T == t {
			return
		}
		if n.points[i].T < t {
			n.points = append(n.points, point{})
			copy(n.points[i+2:], n.points[i+1:])
			n.points[i+1] = point{T: t, Free: n.points[i].Free}
			return
		}
	}
}

func (n *naiveProfile) adjust(from, dur int64, delta int) {
	end := from + dur
	n.split(from)
	n.split(end)
	for i := range n.points {
		if n.points[i].T >= from && n.points[i].T < end {
			n.points[i].Free += delta
		}
	}
	out := n.points[:1]
	for _, pt := range n.points[1:] {
		if pt.Free != out[len(out)-1].Free {
			out = append(out, pt)
		}
	}
	n.points = out
}

func (n *naiveProfile) minFree(from, dur int64) int {
	m := n.points[0].Free
	for _, pt := range n.points {
		if pt.T > from {
			break
		}
		m = pt.Free
	}
	end := from + dur
	for _, pt := range n.points {
		if pt.T > from && pt.T < end && pt.Free < m {
			m = pt.Free
		}
	}
	return m
}

func (n *naiveProfile) findStart(from, dur int64, width int) int64 {
	if width < 1 {
		width = 1
	}
	if dur < 1 {
		dur = 1
	}
	if n.minFree(from, dur) >= width {
		return from
	}
	for _, pt := range n.points {
		if pt.T <= from {
			continue
		}
		if n.minFree(pt.T, dur) >= width {
			return pt.T
		}
	}
	// Unreachable for finite reservations: the tail always has all
	// processors free.
	return n.points[len(n.points)-1].T
}

func (n *naiveProfile) trim(now int64) {
	i := 0
	for k, pt := range n.points {
		if pt.T <= now {
			i = k
		}
	}
	if i == 0 {
		return
	}
	n.points = n.points[i:]
	if n.points[0].T < now {
		n.points[0].T = now
	}
}

// earlierStart is the oracle for Profile.EarlierStart: actually release
// the window on a scratch copy, re-run findStart, and clamp at limit —
// exactly the round trip the compression loops used to pay.
func (n *naiveProfile) earlierStart(from, limit, dur int64, width int) int64 {
	c := &naiveProfile{procs: n.procs, points: append([]point(nil), n.points...)}
	c.adjust(limit, dur, width)
	s := c.findStart(from, dur, width)
	if s > limit {
		s = limit
	}
	return s
}

// FuzzProfileEquivalence drives the indexed Profile and the naive
// reference through the same randomized op stream and fails on any
// divergence — in query answers, in the resulting step function, or in
// the structural invariants check() enforces. Reserve widths are small
// relative to the op count so long streams push the profile past
// indexMinPoints and exercise the block-summary paths, not just the
// short-scan fallbacks.
func FuzzProfileEquivalence(f *testing.F) {
	f.Add([]byte{0, 10, 50, 3, 0, 40, 80, 2, 2, 5, 100, 4})
	f.Add([]byte{0, 0, 1, 1, 1, 0, 1, 1, 4, 8, 1, 1})
	f.Add([]byte{5, 20, 30, 2, 0, 20, 30, 2, 5, 20, 30, 2, 3, 0, 200, 1})
	// A long alternating stream that grows the profile well past
	// indexMinPoints, so the indexed query paths run against the naive
	// answers rather than the small-profile linear fallbacks.
	long := make([]byte, 0, 4*3*256)
	for i := 0; i < 256; i++ {
		long = append(long,
			0, byte(i), byte(i%37+1), byte(i%5+1), // reserve
			2, byte(255-i), byte(i%53+1), byte(i%7+1), // findstart
			byte(3+i%3), byte(i), byte(i%29+1), byte(i%5+1), // query/trim/earlier
		)
	}
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		const procs = 16
		p := NewProfile(procs)
		n := newNaiveProfile(procs)
		type window struct {
			from, dur int64
			width     int
		}
		var live []window
		r := stats.NewRNG(1)
		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 6
			from := int64(data[i+1]) * 16
			dur := int64(data[i+2]%200) + 1
			width := int(data[i+3]%procs) + 1
			switch op {
			case 0: // reserve if feasible
				if got, want := p.MinFree(from, dur), n.minFree(from, dur); got != want {
					t.Fatalf("op %d: MinFree(%d,%d) = %d, naive %d", i, from, dur, got, want)
				}
				if n.minFree(from, dur) >= width {
					p.Reserve(from, dur, width)
					n.adjust(from, dur, -width)
					live = append(live, window{from, dur, width})
				}
			case 1: // release a live window
				if len(live) > 0 {
					k := r.Intn(len(live))
					w := live[k]
					live = append(live[:k], live[k+1:]...)
					p.Release(w.from, w.dur, w.width)
					n.adjust(w.from, w.dur, w.width)
				}
			case 2: // find a start
				got := p.FindStart(from, dur, width)
				want := n.findStart(from, dur, width)
				if got != want {
					t.Fatalf("op %d: FindStart(%d,%d,%d) = %d, naive %d", i, from, dur, width, got, want)
				}
			case 3: // point queries
				if got, want := p.FreeAt(from), n.minFree(from, 0); got != want {
					t.Fatalf("op %d: FreeAt(%d) = %d, naive %d", i, from, got, want)
				}
				if got, want := p.MinFree(from, dur), n.minFree(from, dur); got != want {
					t.Fatalf("op %d: MinFree(%d,%d) = %d, naive %d", i, from, dur, got, want)
				}
			case 4: // trim, abandoning windows that begin in the past
				p.Trim(from)
				n.trim(from)
				kept := live[:0]
				for _, w := range live {
					if w.from >= from {
						kept = append(kept, w)
					}
				}
				live = kept
			case 5: // EarlierStart against the release-and-refind oracle
				if len(live) > 0 {
					w := live[r.Intn(len(live))]
					f0 := p.points[0].T
					got := p.EarlierStart(f0, w.from, w.dur, w.width)
					want := n.earlierStart(f0, w.from, w.dur, w.width)
					if got != want {
						t.Fatalf("op %d: EarlierStart(%d,%d,%d,%d) = %d, oracle %d",
							i, f0, w.from, w.dur, w.width, got, want)
					}
				}
			}
			if err := p.Check(); err != nil {
				t.Fatalf("op %d: profile invariant broken: %v", i, err)
			}
			if len(p.points) != len(n.points) {
				t.Fatalf("op %d: %d points, naive %d", i, len(p.points), len(n.points))
			}
			for k := range p.points {
				if p.points[k] != n.points[k] {
					t.Fatalf("op %d: point %d = %+v, naive %+v", i, k, p.points[k], n.points[k])
				}
			}
		}
	})
}
