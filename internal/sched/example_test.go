package sched_test

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/sched"
)

func exampleJob(id int, arr, est int64, w int) *job.Job {
	return &job.Job{ID: id, Arrival: arr, Runtime: est, Estimate: est, Width: w}
}

// ExampleProfile shows the availability profile answering the core
// backfilling question: when can a job start?
func ExampleProfile() {
	p := sched.NewProfile(10)
	p.Reserve(0, 100, 8)   // a running job: 8 procs through t=100
	p.Reserve(200, 50, 10) // a reservation holding the whole machine at [200,250)

	fmt.Println(p.FindStart(0, 60, 2))  // fits beside the running job now
	fmt.Println(p.FindStart(0, 60, 4))  // must wait for t=100, and 100+60 clears 200? no: 100..160 fits
	fmt.Println(p.FindStart(0, 120, 4)) // 120s window must clear the t=200 roof
	// Output:
	// 0
	// 100
	// 250
}

// ExampleXFactor shows how a job's expansion factor grows as it waits —
// fast for short jobs, slowly for long ones.
func ExampleXFactor() {
	short := exampleJob(1, 0, 600, 1)  // 10-minute job
	long := exampleJob(2, 0, 36000, 1) // 10-hour job
	fmt.Printf("%.1f %.2f\n", sched.XFactor(short, 3600), sched.XFactor(long, 3600))
	// Output:
	// 7.0 1.10
}
