package sched

import (
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
)

func fj(id int, arr, rt int64, w int) *job.Job {
	return &job.Job{ID: id, Arrival: arr, Runtime: rt, Estimate: rt, Width: w}
}

func TestShowStartEmptyMachine(t *testing.T) {
	q := []*job.Job{fj(1, 0, 100, 4)}
	got := ShowStart(8, 50, nil, q, FCFS{})
	if got[1] != 50 {
		t.Fatalf("predicted %d, want 50 (starts immediately on an empty machine)", got[1])
	}
}

func TestShowStartWaitsForRunners(t *testing.T) {
	running := []RunningSlot{{Width: 6, EstEnd: 200}, {Width: 2, EstEnd: 120}}
	q := []*job.Job{fj(1, 0, 100, 4)}
	got := ShowStart(8, 100, running, q, FCFS{})
	// 4 procs free only when the 6-wide runner ends.
	if got[1] != 200 {
		t.Fatalf("predicted %d, want 200", got[1])
	}
}

func TestShowStartBackfillsNarrowJob(t *testing.T) {
	running := []RunningSlot{{Width: 7, EstEnd: 500}}
	q := []*job.Job{
		fj(1, 0, 1000, 8), // head: must wait for the whole machine
		fj(2, 0, 100, 1),  // fits the 1-proc hole right now
	}
	got := ShowStart(8, 100, running, q, FCFS{})
	if got[1] != 500 {
		t.Fatalf("head predicted %d, want 500", got[1])
	}
	if got[2] != 100 {
		t.Fatalf("narrow predicted %d, want 100 (backfills immediately)", got[2])
	}
}

func TestShowStartChainsReservations(t *testing.T) {
	// Two full-width jobs queue behind a full-width runner: predictions
	// stack one estimate after another.
	running := []RunningSlot{{Width: 8, EstEnd: 100}}
	q := []*job.Job{fj(1, 0, 50, 8), fj(2, 0, 30, 8)}
	got := ShowStart(8, 10, running, q, FCFS{})
	if got[1] != 100 || got[2] != 150 {
		t.Fatalf("predicted (%d, %d), want (100, 150)", got[1], got[2])
	}
}

// TestForecastMatchesConservativeExact pins the forecast's exactness
// property: under conservative backfilling with exact estimates there is no
// compression, so the prediction taken at any instant equals the real start
// for every queued job.
func TestForecastMatchesConservativeExact(t *testing.T) {
	const procs = 8
	jobs := []*job.Job{
		fj(1, 0, 100, 8),
		fj(2, 0, 200, 4),
		fj(3, 5, 50, 4),
		fj(4, 10, 80, 8),
		fj(5, 20, 30, 2),
	}
	s := NewConservative(procs, FCFS{})
	ss, err := sim.Open(sim.Machine{Procs: procs}, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := ss.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	// Advance until every job has arrived, then forecast the queue.
	if err := ss.AdvanceTo(20); err != nil {
		t.Fatal(err)
	}
	var running []RunningSlot
	for _, r := range ss.Running() {
		running = append(running, RunningSlot{Width: r.Job.Width, EstEnd: r.EstEnd})
	}
	queued := ss.Queued()
	if len(queued) == 0 {
		t.Fatal("expected a backlog at t=20")
	}
	pred := Forecast(s, procs, ss.Now(), running, queued, FCFS{})

	ps, err := ss.Drain()
	if err != nil {
		t.Fatal(err)
	}
	actual := make(map[int]int64, len(ps))
	for _, p := range ps {
		actual[p.Job.ID] = p.Start
	}
	for _, j := range queued {
		if pred[j.ID] != actual[j.ID] {
			t.Errorf("job %d: predicted start %d, actual %d", j.ID, pred[j.ID], actual[j.ID])
		}
	}
}

// TestForecastNeverBeforeNow guards the clamp: a stale reservation in the
// past must be reported as "now", not as a time the client cannot act on.
func TestForecastNeverBeforeNow(t *testing.T) {
	q := []*job.Job{fj(1, 0, 10, 1)}
	got := Forecast(staleReservist{}, 8, 500, nil, q, FCFS{})
	if got[1] != 500 {
		t.Fatalf("predicted %d, want clamped to 500", got[1])
	}
}

type staleReservist struct{}

func (staleReservist) Name() string                  { return "stale" }
func (staleReservist) Reservation(int) (int64, bool) { return 17, true }

func TestSortedByPolicy(t *testing.T) {
	a, b := fj(1, 0, 100, 1), fj(2, 0, 10, 1)
	got := SortedByPolicy([]*job.Job{a, b}, SJF{}, 0)
	if got[0].ID != 2 {
		t.Fatalf("SJF should order the short job first, got %d", got[0].ID)
	}
}
