package sched

import (
	"fmt"

	"repro/internal/job"
)

// NoBackfill is the classic space-sharing scheduler without backfilling:
// jobs are considered strictly in priority order and scheduling stops at the
// first job that does not fit. It is the baseline whose poor utilization
// motivated backfilling in the first place (§2 of the paper).
//
// Passes are incremental (DESIGN.md §15): the queue stays in policy order
// via ordered insertion under time-invariant policies, and the pass memo's
// blocked-width watermark skips passes entirely while the head remains too
// wide — a completion only matters once cumulative free capacity reaches
// the head's width.
type NoBackfill struct {
	procs int
	pol   Policy
	free  int
	queue []*job.Job

	memo       passMemo
	cachedHead *job.Job
}

// NewNoBackfill returns a no-backfilling scheduler for a machine with procs
// processors under the given priority policy. It panics if procs < 1 or pol
// is nil.
func NewNoBackfill(procs int, pol Policy) *NoBackfill {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewNoBackfill with %d processors", procs))
	}
	if pol == nil {
		panic("sched: NewNoBackfill with nil policy")
	}
	return &NoBackfill{procs: procs, pol: pol, free: procs, memo: newPassMemo(pol)}
}

// Name returns e.g. "NoBackfill(FCFS)".
func (s *NoBackfill) Name() string { return fmt.Sprintf("NoBackfill(%s)", s.pol.Name()) }

// Arrive queues the job at its policy position (time-invariant policies
// keep the queue permanently sorted; dynamic ones append and re-sort at
// the next pass).
func (s *NoBackfill) Arrive(now int64, j *job.Job) {
	s.memo.noteArrival()
	if s.memo.timeInv {
		s.queue = orderedInsert(s.queue, j, s.pol, now)
		return
	}
	s.queue = append(s.queue, j)
}

// Complete returns the job's processors. The memo is invalidated only when
// the accumulated free capacity reaches the blocked head's width: anything
// less cannot start the head, and no other job may jump it.
func (s *NoBackfill) Complete(_ int64, j *job.Job) {
	s.free += j.Width
	if s.free >= s.memo.blockedW {
		s.memo.invalidate()
	}
}

// Launch starts jobs from the head of the priority-ordered queue until the
// head no longer fits. No job ever jumps an earlier one. A pass the memo
// proves futile — same instant, or a still-too-wide head under a
// time-invariant policy — returns immediately; arrivals that sort behind a
// blocked head are equally futile.
func (s *NoBackfill) Launch(now int64) []*job.Job {
	if s.memo.canSkip(now) {
		return nil
	}
	if s.memo.arrivalsOnly() && len(s.queue) > 0 && s.queue[0] == s.cachedHead {
		// The blocked head is unchanged, so every arrival sorted behind it
		// and nothing can start.
		s.memo.completePass(now, noWake)
		return nil
	}
	sortQueue(s.queue, s.pol, now)
	var out []*job.Job
	n := 0
	for n < len(s.queue) && s.queue[n].Width <= s.free {
		s.free -= s.queue[n].Width
		out = append(out, s.queue[n])
		n++
	}
	s.queue = compactFront(s.queue, n)
	s.memo.blockedW = noWatermark
	s.cachedHead = nil
	if len(s.queue) > 0 {
		s.memo.blockedW = s.queue[0].Width
		s.cachedHead = s.queue[0]
	}
	s.memo.completePass(now, noWake)
	return out
}

// QueuedJobs returns the jobs still waiting.
func (s *NoBackfill) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), s.queue...)
}
