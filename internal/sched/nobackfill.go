package sched

import (
	"fmt"

	"repro/internal/job"
)

// NoBackfill is the classic space-sharing scheduler without backfilling:
// jobs are considered strictly in priority order and scheduling stops at the
// first job that does not fit. It is the baseline whose poor utilization
// motivated backfilling in the first place (§2 of the paper).
type NoBackfill struct {
	procs int
	pol   Policy
	free  int
	queue []*job.Job
}

// NewNoBackfill returns a no-backfilling scheduler for a machine with procs
// processors under the given priority policy. It panics if procs < 1 or pol
// is nil.
func NewNoBackfill(procs int, pol Policy) *NoBackfill {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewNoBackfill with %d processors", procs))
	}
	if pol == nil {
		panic("sched: NewNoBackfill with nil policy")
	}
	return &NoBackfill{procs: procs, pol: pol, free: procs}
}

// Name returns e.g. "NoBackfill(FCFS)".
func (s *NoBackfill) Name() string { return fmt.Sprintf("NoBackfill(%s)", s.pol.Name()) }

// Arrive queues the job.
func (s *NoBackfill) Arrive(_ int64, j *job.Job) { s.queue = append(s.queue, j) }

// Complete returns the job's processors.
func (s *NoBackfill) Complete(_ int64, j *job.Job) { s.free += j.Width }

// Launch starts jobs from the head of the priority-ordered queue until the
// head no longer fits. No job ever jumps an earlier one.
func (s *NoBackfill) Launch(now int64) []*job.Job {
	sortQueue(s.queue, s.pol, now)
	var out []*job.Job
	for len(s.queue) > 0 && s.queue[0].Width <= s.free {
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.free -= j.Width
		out = append(out, j)
	}
	return out
}

// QueuedJobs returns the jobs still waiting.
func (s *NoBackfill) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), s.queue...)
}
