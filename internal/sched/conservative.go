package sched

import (
	"fmt"

	"repro/internal/job"
)

// Conservative implements conservative backfilling (Mu'alem & Feitelson
// 2001): every job receives a start-time reservation the moment it enters
// the system, at the earliest instant that does not delay any previously
// existing guarantee. A job may move forward later — when an early
// completion opens a hole — but its guaranteed start never moves back.
//
// Because reservations are granted in arrival order, the queue priority
// policy matters only when holes appear: queued jobs are then reconsidered
// ("compressed") in priority order. With perfectly accurate user estimates
// no holes ever appear, which is exactly the paper's §4.1 observation that
// all priority policies yield the identical schedule.
type Conservative struct {
	procs      int
	pol        Policy
	noCompress bool
	profile    *Profile
	queue      []*job.Job
	resv       map[int]int64 // queued job ID -> guaranteed start time
	running    map[int]runInfo

	// holes records whether free capacity has appeared in the profile (an
	// early-completion release, a cancellation, or a compression pass that
	// actually moved a job, which frees the mover's old slot) since the
	// last compression pass. While holes is false a compression pass is
	// provably the identity — arrivals and exact-time launches only consume
	// capacity, and FindStart at a later now can never return an earlier
	// slot from an unchanged profile — so Complete skips the whole
	// release/FindStart/reserve replan loop.
	holes bool

	// violations collects internal invariant breaches (never expected);
	// tests read them via Violations.
	violations []string

	// memo skips provably futile passes: launches are gated purely on
	// "reservation due" (resv[id] <= now), so while now is before the
	// earliest pending reservation and nothing has structurally changed, a
	// pass starts nothing (DESIGN.md §15). memo.nextAt tracks that earliest
	// reservation; reservations granted at Arrive fold into it, and
	// compression (which only moves reservations earlier) invalidates.
	memo passMemo
}

// NewConservative returns a conservative backfilling scheduler for a
// machine with procs processors under the given priority policy. It panics
// if procs < 1 or pol is nil.
func NewConservative(procs int, pol Policy) *Conservative {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewConservative with %d processors", procs))
	}
	if pol == nil {
		panic("sched: NewConservative with nil policy")
	}
	return &Conservative{
		procs:   procs,
		pol:     pol,
		profile: NewProfile(procs),
		resv:    make(map[int]int64),
		running: make(map[int]runInfo),
		memo:    newPassMemo(pol),
	}
}

// NewConservativeNoCompression returns a conservative scheduler that never
// re-places reservations when jobs finish early: holes left by early
// completions stay unexploited. It is the ablation for DESIGN.md decision 3
// — compression is where the priority policy earns its keep under
// inaccurate estimates, and this variant quantifies that.
func NewConservativeNoCompression(procs int, pol Policy) *Conservative {
	s := NewConservative(procs, pol)
	s.noCompress = true
	return s
}

// Name returns e.g. "Conservative(FCFS)" or "ConservativeNC(FCFS)" for the
// no-compression ablation.
func (s *Conservative) Name() string {
	if s.noCompress {
		return fmt.Sprintf("ConservativeNC(%s)", s.pol.Name())
	}
	return fmt.Sprintf("Conservative(%s)", s.pol.Name())
}

// Reservation returns the guaranteed start time of a queued job and whether
// the job is currently queued. Tests use it to verify the no-delay
// guarantee.
func (s *Conservative) Reservation(id int) (int64, bool) {
	t, ok := s.resv[id]
	return t, ok
}

// Violations returns internal invariant breaches detected so far (always
// empty unless there is a bug).
func (s *Conservative) Violations() []string {
	return append([]string(nil), s.violations...)
}

// Arrive grants the arriving job the earliest reservation that respects all
// existing guarantees, and queues it. The new reservation folds into the
// memo's earliest-pending bound so futile-pass skipping stays exact.
func (s *Conservative) Arrive(now int64, j *job.Job) {
	s.profile.Trim(now)
	start := s.profile.FindStart(now, j.Estimate, j.Width)
	s.profile.Reserve(start, j.Estimate, j.Width)
	s.resv[j.ID] = start
	s.memo.noteArrival()
	s.memo.nextAt = minInt64(s.memo.nextAt, start)
	if s.memo.timeInv {
		s.queue = orderedInsert(s.queue, j, s.pol, now)
		return
	}
	s.queue = append(s.queue, j)
}

// Complete releases the unused tail of the job's planned window (when it
// finished before its estimate) and compresses the queue: each waiting job,
// in priority order, moves to the earliest start that is no later than its
// existing guarantee.
func (s *Conservative) Complete(now int64, j *job.Job) {
	ri, ok := s.running[j.ID]
	if !ok {
		panic(fmt.Sprintf("sched: Conservative completion for unknown %v", j))
	}
	delete(s.running, j.ID)
	if now < ri.estEnd {
		s.profile.Release(now, ri.estEnd-now, j.Width)
		s.holes = true
	}
	s.profile.Trim(now)
	if !s.noCompress && s.holes {
		s.compress(now)
		// Launches are gated purely on the reservation map, which a
		// completion changes only through compression — so the memo
		// survives unless this pass actually moved a reservation (compress
		// leaves holes set exactly when it did).
		if s.holes {
			s.memo.invalidate()
		}
	}
}

// compress re-places queued reservations in priority order. Each job's
// reservation only ever moves earlier: its old slot remains feasible by
// construction, so FindStart can never be later (guarded anyway). A pass
// that moves at least one job leaves holes set, because the mover's
// vacated slot could let an earlier-processed job move on the next pass; a
// pass that moves nothing clears it, making the next pass skippable until
// capacity is freed again.
func (s *Conservative) compress(now int64) {
	sortQueue(s.queue, s.pol, now)
	moved := false
	for _, j := range s.queue {
		old := s.resv[j.ID]
		if old <= now {
			continue // already startable; Launch will take it
		}
		if !s.profile.anyAtLeastBefore(now, old, j.Width) {
			continue // no instant before old has room: the job cannot move
		}
		start := s.profile.EarlierStart(now, old, j.Estimate, j.Width)
		if start >= old {
			continue // cannot move; the profile was never touched
		}
		moved = true
		s.profile.Release(old, j.Estimate, j.Width)
		s.profile.Reserve(start, j.Estimate, j.Width)
		s.resv[j.ID] = start
	}
	s.holes = moved
}

// Launch starts every queued job whose guaranteed start has arrived. A
// pass before the earliest pending reservation — the memo's nextAt, kept
// exact through arrivals — provably starts nothing and returns
// immediately.
func (s *Conservative) Launch(now int64) []*job.Job {
	if s.memo.canSkip(now) {
		return nil
	}
	if s.memo.arrivalsOnly() && now < s.memo.nextAt {
		// Every reservation, the new arrivals' included, is still in the
		// future; the queue is already in policy order from insertion.
		s.memo.completePass(now, s.memo.nextAt)
		return nil
	}
	sortQueue(s.queue, s.pol, now)
	var out []*job.Job
	nextAt := int64(noWake)
	kept := s.queue[:0]
	for _, j := range s.queue {
		start, ok := s.resv[j.ID]
		if !ok {
			panic(fmt.Sprintf("sched: Conservative queued %v has no reservation", j))
		}
		if start > now {
			nextAt = minInt64(nextAt, start)
			kept = append(kept, j)
			continue
		}
		if start < now {
			// A reservation should always be claimed at its exact instant
			// (every resource release is a completion event that triggers
			// compression). Realign the planned window defensively so the
			// profile stays consistent, and record the anomaly.
			s.violations = append(s.violations,
				fmt.Sprintf("%v launched at %d after its reservation %d", j, now, start))
			if rem := start + j.Estimate - now; rem > 0 {
				s.profile.Release(now, rem, j.Width)
			}
			s.profile.Reserve(now, j.Estimate, j.Width)
			s.holes = true
		}
		delete(s.resv, j.ID)
		s.running[j.ID] = runInfo{j: j, start: now, estEnd: now + j.Estimate}
		out = append(out, j)
	}
	s.queue = clearTail(s.queue, len(kept))
	s.memo.completePass(now, nextAt)
	return out
}

// NextWake reports the earliest pending reservation. With compression
// enabled every startable job is pulled to "now" at some completion event,
// so no wake-ups are needed; the no-compression ablation's fixed
// reservations can land between events and need a timer.
func (s *Conservative) NextWake(now int64) int64 {
	if !s.noCompress {
		return 0
	}
	var next int64
	for _, t := range s.resv {
		if t > now && (next == 0 || t < next) {
			next = t
		}
	}
	return next
}

// QueuedJobs returns the jobs still waiting.
func (s *Conservative) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), s.queue...)
}

// ProfilePoints reports the current size of the availability profile's
// step function (the benchmark ledger records its distribution per
// scheduler kind).
func (s *Conservative) ProfilePoints() int { return s.profile.NumPoints() }
