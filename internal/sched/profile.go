// Package sched implements the parallel job schedulers the paper studies:
// conservative backfilling, aggressive (EASY) backfilling, a
// no-backfilling baseline, and the selective-reservation scheme sketched in
// the paper's future work — each parameterised by a queue priority policy
// (FCFS, SJF, XFactor, and extensions).
//
// The shared substrate is Profile, a step function recording how many
// processors are free at every future instant. Schedulers plan with user
// estimates: a job's planned window is [start, start+Estimate), and when it
// finishes early the tail of the window is released, creating the "holes"
// whose exploitation distinguishes the policies.
package sched

import "fmt"

// point is one step of the profile: free processors from T (inclusive)
// until the next point's time (exclusive). The last point extends forever.
type point struct {
	T    int64
	Free int
}

// Profile tracks free processors over future time as a sorted step
// function. A fresh profile has all processors free from time 0. Reserve
// subtracts capacity over a window; Release returns it. FindStart answers
// the backfilling question: the earliest instant from which a given number
// of processors stays free for a given duration.
//
// Profile methods panic on capacity violations (reserving more processors
// than are free): schedulers must FindStart (or check FitsAt) before
// reserving, so a violation is always a scheduler bug, not an input error.
type Profile struct {
	procs  int
	points []point
}

// NewProfile returns a profile for a machine with procs processors, all
// free from time 0. It panics if procs < 1.
func NewProfile(procs int) *Profile {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewProfile with %d processors", procs))
	}
	return &Profile{procs: procs, points: []point{{T: 0, Free: procs}}}
}

// Procs returns the machine size the profile was built with.
func (p *Profile) Procs() int { return p.procs }

// Clone returns an independent deep copy.
func (p *Profile) Clone() *Profile {
	return &Profile{procs: p.procs, points: append([]point(nil), p.points...)}
}

// NumPoints returns the current number of step points (for tests and
// benchmarks).
func (p *Profile) NumPoints() int { return len(p.points) }

// FreeAt returns the number of free processors at instant t. Instants
// before the first point report the first point's value (the profile does
// not record history).
func (p *Profile) FreeAt(t int64) int {
	i := p.indexAt(t)
	return p.points[i].Free
}

// indexAt returns the index of the step containing t: the last point with
// T <= t, or 0 when t precedes all points.
func (p *Profile) indexAt(t int64) int {
	lo, hi := 0, len(p.points)
	// Binary search for the first point with T > t.
	for lo < hi {
		mid := (lo + hi) / 2
		if p.points[mid].T <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// MinFree returns the minimum number of free processors over the window
// [from, from+dur). A non-positive duration reports FreeAt(from).
func (p *Profile) MinFree(from, dur int64) int {
	if dur <= 0 {
		return p.FreeAt(from)
	}
	end := from + dur
	min := p.procs
	for i := p.indexAt(from); i < len(p.points); i++ {
		if p.points[i].T >= end {
			break
		}
		if p.points[i].Free < min {
			min = p.points[i].Free
		}
	}
	return min
}

// FitsAt reports whether width processors are free throughout
// [from, from+dur).
func (p *Profile) FitsAt(from, dur int64, width int) bool {
	return p.MinFree(from, dur) >= width
}

// FindStart returns the earliest instant s >= from such that width
// processors remain free throughout [s, s+dur). It panics if width exceeds
// the machine size (such a job can never run). The scan walks candidate
// start times: from itself, then every subsequent step point, skipping
// ahead past any point that violates the requirement.
func (p *Profile) FindStart(from, dur int64, width int) int64 {
	if width > p.procs {
		panic(fmt.Sprintf("sched: FindStart width %d exceeds machine size %d", width, p.procs))
	}
	if width < 1 {
		width = 1
	}
	if dur < 1 {
		dur = 1
	}
	start := from
	i := p.indexAt(from)
	for {
		// Check the window [start, start+dur) beginning at step i.
		ok := true
		end := start + dur
		for k := i; k < len(p.points); k++ {
			if p.points[k].T >= end {
				break
			}
			if p.points[k].Free < width {
				// Violation: the next candidate start is the first point
				// after this one with enough free processors.
				next := k + 1
				for next < len(p.points) && p.points[next].Free < width {
					next++
				}
				if next == len(p.points) {
					// The tail of the profile never frees enough — cannot
					// happen when reservations are finite and width <=
					// procs, because the last point always has all
					// processors free.
					panic("sched: FindStart ran off the end of the profile")
				}
				start = p.points[next].T
				i = next
				ok = false
				break
			}
		}
		if ok {
			return start
		}
	}
}

// Reserve subtracts width processors over [from, from+dur). It panics if
// the window would drive free capacity negative (callers must check with
// FindStart or FitsAt first) or on non-positive duration/width.
func (p *Profile) Reserve(from, dur int64, width int) {
	p.adjust(from, dur, -width)
}

// Release returns width processors over [from, from+dur). It panics if the
// window would exceed the machine size (releasing something never
// reserved) or on non-positive duration/width.
func (p *Profile) Release(from, dur int64, width int) {
	p.adjust(from, dur, width)
}

// adjust adds delta to the free count over [from, from+dur).
func (p *Profile) adjust(from, dur int64, delta int) {
	if dur <= 0 {
		panic(fmt.Sprintf("sched: profile adjust with duration %d", dur))
	}
	if delta == 0 {
		panic("sched: profile adjust with zero width")
	}
	end := from + dur
	p.split(from)
	p.split(end)
	for i := range p.points {
		if p.points[i].T < from {
			continue
		}
		if p.points[i].T >= end {
			break
		}
		f := p.points[i].Free + delta
		if f < 0 {
			panic(fmt.Sprintf("sched: reservation over-subscribes machine at t=%d (free %d, delta %d)", p.points[i].T, p.points[i].Free, delta))
		}
		if f > p.procs {
			panic(fmt.Sprintf("sched: release exceeds machine size at t=%d (free %d, delta %d, procs %d)", p.points[i].T, p.points[i].Free, delta, p.procs))
		}
		p.points[i].Free = f
	}
	p.coalesce()
}

// split ensures a point exists exactly at time t (t at or after the first
// point). Inserting a point does not change the function's value anywhere.
func (p *Profile) split(t int64) {
	if t <= p.points[0].T {
		if t < p.points[0].T {
			// Extend the profile into the past with the same free count;
			// this only happens if a caller reserves before the first
			// point, which Trim can make possible.
			p.points = append([]point{{T: t, Free: p.points[0].Free}}, p.points...)
		}
		return
	}
	i := p.indexAt(t)
	if p.points[i].T == t {
		return
	}
	p.points = append(p.points, point{})
	copy(p.points[i+2:], p.points[i+1:])
	p.points[i+1] = point{T: t, Free: p.points[i].Free}
}

// coalesce merges adjacent points with equal free counts.
func (p *Profile) coalesce() {
	out := p.points[:1]
	for _, pt := range p.points[1:] {
		if pt.Free != out[len(out)-1].Free {
			out = append(out, pt)
		}
	}
	p.points = out
}

// Trim discards step points strictly before now, keeping the value at now
// as the new first point. Schedulers call it at each event to keep the
// profile from growing with simulated time.
func (p *Profile) Trim(now int64) {
	i := p.indexAt(now)
	if i == 0 {
		return
	}
	p.points = p.points[i:]
	if p.points[0].T < now {
		p.points[0].T = now
	}
}

// check verifies internal invariants (sortedness, bounds, coalescing); it
// is exported to tests via export_test.go.
func (p *Profile) check() error {
	if len(p.points) == 0 {
		return fmt.Errorf("sched: profile has no points")
	}
	for i, pt := range p.points {
		if pt.Free < 0 || pt.Free > p.procs {
			return fmt.Errorf("sched: point %d free=%d out of [0,%d]", i, pt.Free, p.procs)
		}
		if i > 0 {
			if pt.T <= p.points[i-1].T {
				return fmt.Errorf("sched: points not strictly increasing at %d", i)
			}
			if pt.Free == p.points[i-1].Free {
				return fmt.Errorf("sched: uncoalesced equal points at %d", i)
			}
		}
	}
	if p.points[len(p.points)-1].Free != p.procs {
		return fmt.Errorf("sched: profile tail has %d free, want all %d (reservations must be finite)", p.points[len(p.points)-1].Free, p.procs)
	}
	return nil
}
