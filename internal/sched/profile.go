// Package sched implements the parallel job schedulers the paper studies:
// conservative backfilling, aggressive (EASY) backfilling, a
// no-backfilling baseline, and the selective-reservation scheme sketched in
// the paper's future work — each parameterised by a queue priority policy
// (FCFS, SJF, XFactor, and extensions).
//
// The shared substrate is Profile, a step function recording how many
// processors are free at every future instant. Schedulers plan with user
// estimates: a job's planned window is [start, start+Estimate), and when it
// finishes early the tail of the window is released, creating the "holes"
// whose exploitation distinguishes the policies.
package sched

import "fmt"

// point is one step of the profile: free processors from T (inclusive)
// until the next point's time (exclusive). The last point extends forever.
type point struct {
	T    int64
	Free int
}

// Index geometry: the free-capacity index summarises blocks of 2^blockBits
// consecutive points with their min and max free counts. 32 points per
// block keeps the summary arrays tiny (a cache line each for typical
// profiles) while letting queries skip whole blocks of infeasible or
// feasible points at a time.
const (
	blockBits = 5
	blockSize = 1 << blockBits

	// indexMinPoints is the profile size below which queries stay with
	// plain linear scans: rebuilding block summaries after every mutation
	// costs more than it saves until the step function is a few blocks
	// long. Once a query has paid for a rebuild the summaries stay valid
	// until the next mutation, and smaller profiles keep using them.
	indexMinPoints = 4 * blockSize
)

// Profile tracks free processors over future time as a sorted step
// function. A fresh profile has all processors free from time 0. Reserve
// subtracts capacity over a window; Release returns it. FindStart answers
// the backfilling question: the earliest instant from which a given number
// of processors stays free for a given duration.
//
// Queries are accelerated by a free-capacity index: per-block min/max
// summaries of the step points, rebuilt lazily after mutations. Short scans
// never touch the index; long scans consult it to leap over runs of points
// that are uniformly feasible (MinFree) or uniformly infeasible (the
// skip-ahead in FindStart), so a FindStart over a badly fragmented profile
// costs O(n/B + B) per candidate window instead of O(n).
//
// Profile methods panic on capacity violations (reserving more processors
// than are free): schedulers must FindStart (or check FitsAt) before
// reserving, so a violation is always a scheduler bug, not an input error.
type Profile struct {
	procs  int
	points []point

	// blkMin/blkMax hold the free-capacity index: min and max of
	// points[k].Free over each block of blockSize points. idxOK marks the
	// summaries as current; every mutation clears it and the next long
	// query rebuilds in one linear pass.
	blkMin []int
	blkMax []int
	idxOK  bool
}

// NewProfile returns a profile for a machine with procs processors, all
// free from time 0. It panics if procs < 1.
func NewProfile(procs int) *Profile {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewProfile with %d processors", procs))
	}
	return &Profile{procs: procs, points: []point{{T: 0, Free: procs}}}
}

// Procs returns the machine size the profile was built with.
func (p *Profile) Procs() int { return p.procs }

// Clone returns an independent deep copy.
func (p *Profile) Clone() *Profile {
	return &Profile{procs: p.procs, points: append([]point(nil), p.points...)}
}

// Reset restores the all-free state while keeping the backing storage, so
// replan loops can reuse one scratch profile instead of allocating a fresh
// one per pass.
func (p *Profile) Reset() {
	p.points = p.points[:1]
	p.points[0] = point{T: 0, Free: p.procs}
	p.idxOK = false
}

// NumPoints returns the current number of step points (for tests and
// benchmarks).
func (p *Profile) NumPoints() int { return len(p.points) }

// FreeAt returns the number of free processors at instant t. Instants
// before the first point report the first point's value (the profile does
// not record history).
func (p *Profile) FreeAt(t int64) int {
	i := p.indexAt(t)
	return p.points[i].Free
}

// indexAt returns the index of the step containing t: the last point with
// T <= t, or 0 when t precedes all points. The boundary fast paths matter:
// schedulers trim the profile to "now" at every event, so queries at now
// hit the first point, and placements into the far future hit the last.
func (p *Profile) indexAt(t int64) int {
	if t <= p.points[0].T {
		return 0
	}
	if n := len(p.points); t >= p.points[n-1].T {
		return n - 1
	}
	lo, hi := 0, len(p.points)
	// Binary search for the first point with T > t.
	for lo < hi {
		mid := (lo + hi) / 2
		if p.points[mid].T <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// ensureIndex rebuilds the block summaries if a mutation invalidated them.
// The rebuild is one linear pass writing n/blockSize aggregates, so lazy
// rebuilding keeps mutation-heavy phases (compression churn) from paying
// for an index they never consult.
func (p *Profile) ensureIndex() {
	if p.idxOK {
		return
	}
	nb := (len(p.points) + blockSize - 1) >> blockBits
	if cap(p.blkMin) < nb {
		p.blkMin = make([]int, nb)
		p.blkMax = make([]int, nb)
	} else {
		p.blkMin = p.blkMin[:nb]
		p.blkMax = p.blkMax[:nb]
	}
	for b := 0; b < nb; b++ {
		lo := b << blockBits
		hi := lo + blockSize
		if hi > len(p.points) {
			hi = len(p.points)
		}
		mn, mx := p.points[lo].Free, p.points[lo].Free
		for k := lo + 1; k < hi; k++ {
			f := p.points[k].Free
			if f < mn {
				mn = f
			}
			if f > mx {
				mx = f
			}
		}
		p.blkMin[b], p.blkMax[b] = mn, mx
	}
	p.idxOK = true
}

// MinFree returns the minimum number of free processors over the window
// [from, from+dur). A non-positive duration reports FreeAt(from).
func (p *Profile) MinFree(from, dur int64) int {
	if dur <= 0 {
		return p.FreeAt(from)
	}
	end := from + dur
	pts := p.points
	i := p.indexAt(from)
	m := pts[i].Free
	// Scan directly to the end of i's block; short windows finish here
	// without ever touching the index.
	k := i + 1
	stop := (i>>blockBits + 1) << blockBits
	if stop > len(pts) {
		stop = len(pts)
	}
	for ; k < stop; k++ {
		if pts[k].T >= end {
			return m
		}
		if pts[k].Free < m {
			m = pts[k].Free
		}
	}
	if k >= len(pts) || pts[k].T >= end {
		return m
	}
	if !p.idxOK && len(pts) < indexMinPoints {
		for ; k < len(pts) && pts[k].T < end; k++ {
			if pts[k].Free < m {
				m = pts[k].Free
			}
		}
		return m
	}
	// Long window: fold in whole blocks via the index, scanning only the
	// final partial block.
	p.ensureIndex()
	for b := k >> blockBits; b < len(p.blkMin); b++ {
		lo := b << blockBits
		hi := lo + blockSize
		if hi > len(pts) {
			hi = len(pts)
		}
		if pts[hi-1].T < end {
			if p.blkMin[b] < m {
				m = p.blkMin[b]
			}
			continue
		}
		for k = lo; k < hi && pts[k].T < end; k++ {
			if pts[k].Free < m {
				m = pts[k].Free
			}
		}
		break
	}
	return m
}

// FitsAt reports whether width processors are free throughout
// [from, from+dur).
func (p *Profile) FitsAt(from, dur int64, width int) bool {
	return p.MinFree(from, dur) >= width
}

// anyAtLeastBefore reports whether some instant in [from, end) has at
// least width processors free. Compression loops use it as a cheap
// necessary condition: a reservation starting at end can only move
// earlier if width processors are free at some earlier instant, and the
// answer is exact even before the job's own window is released because
// that window lies entirely at or after end.
func (p *Profile) anyAtLeastBefore(from, end int64, width int) bool {
	if from >= end {
		return false
	}
	k := p.nextAtLeast(p.indexAt(from), width)
	return k < len(p.points) && p.points[k].T < end
}

// EarlierStart computes where a job of the given width and duration,
// currently reserved at limit, would land if its reservation were
// released and re-found from `from` — without mutating the profile. It
// returns limit when the job cannot move, so callers skip the
// release/re-reserve round trip entirely for immovable jobs.
//
// The result equals Release(limit,dur,width) + FindStart(from,dur,width)
// exactly, split by whether the candidate window overlaps the job's own
// slot [limit, limit+dur):
//
//   - a window ending at or before limit never touches the slot, so the
//     un-released profile answers for it directly (findStartBefore);
//   - a window overlapping the slot needs width free only on [s, limit),
//     because the release credits the job's own width back over
//     [limit, limit+dur) — free counts are never negative, so the
//     released profile always has at least width free there. The
//     earliest such s is the start of the contiguous width-feasible run
//     ending at limit (runStartBefore).
//
// Any window-before-limit start precedes any overlapping start, so the
// first class that yields a start wins.
func (p *Profile) EarlierStart(from, limit, dur int64, width int) int64 {
	if width > p.procs {
		panic(fmt.Sprintf("sched: EarlierStart width %d exceeds machine size %d", width, p.procs))
	}
	if width < 1 {
		width = 1
	}
	if dur < 1 {
		dur = 1
	}
	if limit <= from {
		return limit
	}
	if s, ok := p.findStartBefore(from, dur, width, limit-dur); ok {
		return s
	}
	if s, ok := p.runStartBefore(from, limit, width); ok {
		return s
	}
	return limit
}

// findStartBefore is FindStart restricted to starts at or before
// maxStart; ok is false when the earliest feasible start lies beyond it.
func (p *Profile) findStartBefore(from, dur int64, width int, maxStart int64) (int64, bool) {
	if maxStart < from {
		return 0, false
	}
	if from >= p.points[len(p.points)-1].T {
		return from, true
	}
	start := from
	i := p.indexAt(from)
	for {
		v := p.firstBelow(i, start+dur, width)
		if v < 0 {
			return start, true
		}
		n := p.nextAtLeast(v+1, width)
		if n == len(p.points) {
			return 0, false
		}
		start = p.points[n].T
		if start > maxStart {
			return 0, false
		}
		i = n
	}
}

// runStartBefore returns the earliest instant s >= from such that width
// processors stay free throughout [s, limit) — the head of the
// contiguous feasible run ending at limit; ok is false when even the
// instant just before limit lacks width.
func (p *Profile) runStartBefore(from, limit int64, width int) (int64, bool) {
	j := p.indexAt(limit - 1)
	if p.points[j].Free < width {
		return 0, false
	}
	for j > 0 && p.points[j].T > from && p.points[j-1].Free >= width {
		j--
	}
	s := p.points[j].T
	if s < from {
		s = from
	}
	if s >= limit {
		return 0, false
	}
	return s, true
}

// FindStart returns the earliest instant s >= from such that width
// processors remain free throughout [s, s+dur). It panics if width exceeds
// the machine size (such a job can never run).
//
// The scan walks candidate start times: from itself, then the first point
// after each violation with enough free processors. Both the violation
// search and the skip-ahead consult the free-capacity index, so runs of
// feasible points inside a window and runs of infeasible points between
// candidate windows are crossed a block at a time rather than point by
// point — this is what keeps FindStart from going quadratic on badly
// fragmented profiles.
func (p *Profile) FindStart(from, dur int64, width int) int64 {
	if width > p.procs {
		panic(fmt.Sprintf("sched: FindStart width %d exceeds machine size %d", width, p.procs))
	}
	if width < 1 {
		width = 1
	}
	if dur < 1 {
		dur = 1
	}
	if from >= p.points[len(p.points)-1].T {
		// The tail step always has every processor free, so any window
		// starting in it fits immediately.
		return from
	}
	start := from
	i := p.indexAt(from)
	for {
		v := p.firstBelow(i, start+dur, width)
		if v < 0 {
			return start
		}
		// Violation at v: the next candidate start is the first point
		// after it with enough free processors.
		n := p.nextAtLeast(v+1, width)
		if n == len(p.points) {
			// The tail of the profile never frees enough — cannot happen
			// when reservations are finite and width <= procs, because the
			// last point always has all processors free.
			panic("sched: FindStart ran off the end of the profile")
		}
		start = p.points[n].T
		i = n
	}
}

// firstBelow returns the index of the first point k >= i with T < end and
// Free < width, or -1 if every point in the window satisfies width. Index
// i is the step containing the window's start, so its value counts even
// when its recorded T lies at or beyond end — which happens when the
// window starts before the first point (the profile does not record
// history; the first point's value extends into the past, matching
// FreeAt).
func (p *Profile) firstBelow(i int, end int64, width int) int {
	pts := p.points
	if pts[i].Free < width {
		return i
	}
	// Direct scan to the end of i's block.
	k := i + 1
	stop := (i>>blockBits + 1) << blockBits
	if stop > len(pts) {
		stop = len(pts)
	}
	for ; k < stop; k++ {
		if pts[k].T >= end {
			return -1
		}
		if pts[k].Free < width {
			return k
		}
	}
	if k >= len(pts) {
		return -1
	}
	if !p.idxOK && len(pts) < indexMinPoints {
		for ; k < len(pts); k++ {
			if pts[k].T >= end {
				return -1
			}
			if pts[k].Free < width {
				return k
			}
		}
		return -1
	}
	// Block-at-a-time: skip whole blocks whose minimum already satisfies
	// width, scan only blocks that contain a potential violation.
	p.ensureIndex()
	for b := k >> blockBits; b < len(p.blkMin); b++ {
		lo := b << blockBits
		hi := lo + blockSize
		if hi > len(pts) {
			hi = len(pts)
		}
		if pts[lo].T >= end {
			return -1
		}
		if p.blkMin[b] >= width {
			continue
		}
		for k = lo; k < hi; k++ {
			if pts[k].T >= end {
				return -1
			}
			if pts[k].Free < width {
				return k
			}
		}
	}
	return -1
}

// nextAtLeast returns the index of the first point k >= i with
// Free >= width, or len(points) if none exists. This is FindStart's
// skip-ahead: the block maxima let it jump clean over saturated regions.
func (p *Profile) nextAtLeast(i, width int) int {
	pts := p.points
	k := i
	stop := (i>>blockBits + 1) << blockBits
	if stop > len(pts) {
		stop = len(pts)
	}
	for ; k < stop; k++ {
		if pts[k].Free >= width {
			return k
		}
	}
	if k >= len(pts) {
		return len(pts)
	}
	if !p.idxOK && len(pts) < indexMinPoints {
		for ; k < len(pts); k++ {
			if pts[k].Free >= width {
				return k
			}
		}
		return len(pts)
	}
	p.ensureIndex()
	for b := k >> blockBits; b < len(p.blkMax); b++ {
		if p.blkMax[b] < width {
			continue
		}
		lo := b << blockBits
		hi := lo + blockSize
		if hi > len(pts) {
			hi = len(pts)
		}
		for k = lo; k < hi; k++ {
			if pts[k].Free >= width {
				return k
			}
		}
	}
	return len(pts)
}

// Reserve subtracts width processors over [from, from+dur). It panics if
// the window would drive free capacity negative (callers must check with
// FindStart or FitsAt first) or on non-positive duration/width.
func (p *Profile) Reserve(from, dur int64, width int) {
	p.adjust(from, dur, -width)
}

// Release returns width processors over [from, from+dur). It panics if the
// window would exceed the machine size (releasing something never
// reserved) or on non-positive duration/width.
func (p *Profile) Release(from, dur int64, width int) {
	p.adjust(from, dur, width)
}

// adjust adds delta to the free count over [from, from+dur). One binary
// search locates the window; boundary points are split in place as needed,
// the delta is applied to the points inside the window, and at most the
// two boundary pairs the delta could have made equal are re-merged —
// interior neighbours all move by the same delta, so their inequality (a
// structural invariant) is preserved and no full coalescing pass is
// needed.
func (p *Profile) adjust(from, dur int64, delta int) {
	if dur <= 0 {
		panic(fmt.Sprintf("sched: profile adjust with duration %d", dur))
	}
	if delta == 0 {
		panic("sched: profile adjust with zero width")
	}
	end := from + dur

	// Locate (or create) the point at exactly from; i is its index.
	// splitFrom records whether the point pre-existed: a freshly split
	// point starts delta away from its predecessor and can never merge.
	// frontExtended marks the one case that can leave an equal-adjacent
	// pair beyond the boundary checks below: extending into the past
	// copies the first point's value into a synthetic step, and after the
	// delta the original first point can match its new predecessor.
	var i int
	splitFrom := false
	frontExtended := false
	origFirstT := p.points[0].T
	if from <= p.points[0].T {
		if from < p.points[0].T {
			// Extend the profile into the past with the same free count;
			// this only happens if a caller reserves before the first
			// point, which Trim can make possible.
			p.insertPoint(0, point{T: from, Free: p.points[0].Free})
			splitFrom = true
			frontExtended = true
		}
		i = 0
	} else {
		i = p.indexAt(from)
		if p.points[i].T != from {
			p.insertPoint(i+1, point{T: from, Free: p.points[i].Free})
			i++
			splitFrom = true
		}
	}

	// Apply the delta through the window; j ends as the first index at or
	// beyond end. No point is inserted or removed inside this loop, so the
	// slice header can be hoisted out of it.
	pts := p.points
	j := i
	for ; j < len(pts) && pts[j].T < end; j++ {
		f := pts[j].Free + delta
		if f < 0 {
			panic(fmt.Sprintf("sched: reservation over-subscribes machine at t=%d (free %d, delta %d)", pts[j].T, pts[j].Free, delta))
		}
		if f > p.procs {
			panic(fmt.Sprintf("sched: release exceeds machine size at t=%d (free %d, delta %d, procs %d)", pts[j].T, pts[j].Free, delta, p.procs))
		}
		pts[j].Free = f
	}
	// Ensure a point at exactly end so the delta stops there. Its value is
	// the pre-delta value of the step it splits, i.e. the last modified
	// point minus the delta. A freshly split end point differs from its
	// predecessor by exactly delta, so it never merges.
	if j == len(p.points) || p.points[j].T != end {
		p.insertPoint(j, point{T: end, Free: p.points[j-1].Free - delta})
	} else if p.points[j].Free == p.points[j-1].Free {
		p.removePoint(j)
	}
	if !splitFrom && i > 0 && p.points[i].Free == p.points[i-1].Free {
		p.removePoint(i)
	}
	if frontExtended {
		// The original first point sits at index 1, or 2 if the end split
		// landed before it (or it may already have merged away). Remove it
		// if the synthetic past step left it redundant.
		for m := 1; m <= 2 && m < len(p.points); m++ {
			if p.points[m].T == origFirstT {
				if p.points[m].Free == p.points[m-1].Free {
					p.removePoint(m)
				}
				break
			}
		}
	}
	p.idxOK = false
}

// insertPoint inserts pt at index k, shifting the tail up. The slice's
// spare capacity is reused; nothing is allocated once the backing array
// has grown to the profile's working size.
func (p *Profile) insertPoint(k int, pt point) {
	p.points = append(p.points, point{})
	copy(p.points[k+1:], p.points[k:])
	p.points[k] = pt
}

// removePoint deletes points[k] in place. Index 0 is never removed, so the
// profile always keeps at least one point.
func (p *Profile) removePoint(k int) {
	copy(p.points[k:], p.points[k+1:])
	p.points = p.points[:len(p.points)-1]
}

// Trim discards step points strictly before now, keeping the value at now
// as the new first point. Schedulers call it at each event to keep the
// profile from growing with simulated time. The survivors are copied down
// in place so the backing array's head capacity is reused rather than
// abandoned behind a re-slice.
func (p *Profile) Trim(now int64) {
	i := p.indexAt(now)
	if i == 0 {
		return
	}
	n := copy(p.points, p.points[i:])
	p.points = p.points[:n]
	if p.points[0].T < now {
		p.points[0].T = now
	}
	p.idxOK = false
}

// check verifies internal invariants (sortedness, bounds, coalescing, and
// index consistency); it is exported to tests via export_test.go.
func (p *Profile) check() error {
	if len(p.points) == 0 {
		return fmt.Errorf("sched: profile has no points")
	}
	for i, pt := range p.points {
		if pt.Free < 0 || pt.Free > p.procs {
			return fmt.Errorf("sched: point %d free=%d out of [0,%d]", i, pt.Free, p.procs)
		}
		if i > 0 {
			if pt.T <= p.points[i-1].T {
				return fmt.Errorf("sched: points not strictly increasing at %d", i)
			}
			if pt.Free == p.points[i-1].Free {
				return fmt.Errorf("sched: uncoalesced equal points at %d", i)
			}
		}
	}
	if p.points[len(p.points)-1].Free != p.procs {
		return fmt.Errorf("sched: profile tail has %d free, want all %d (reservations must be finite)", p.points[len(p.points)-1].Free, p.procs)
	}
	if p.idxOK {
		nb := (len(p.points) + blockSize - 1) >> blockBits
		if len(p.blkMin) != nb || len(p.blkMax) != nb {
			return fmt.Errorf("sched: index has %d/%d blocks, want %d", len(p.blkMin), len(p.blkMax), nb)
		}
		for b := 0; b < nb; b++ {
			lo := b << blockBits
			hi := lo + blockSize
			if hi > len(p.points) {
				hi = len(p.points)
			}
			mn, mx := p.points[lo].Free, p.points[lo].Free
			for k := lo + 1; k < hi; k++ {
				f := p.points[k].Free
				if f < mn {
					mn = f
				}
				if f > mx {
					mx = f
				}
			}
			if p.blkMin[b] != mn || p.blkMax[b] != mx {
				return fmt.Errorf("sched: stale index block %d: min %d/%d max %d/%d", b, p.blkMin[b], mn, p.blkMax[b], mx)
			}
		}
	}
	return nil
}
