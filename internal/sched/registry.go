package sched

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/job"
	"repro/internal/sim"
)

// Maker constructs a fresh scheduler for a machine with the given processor
// count. Experiments use Makers so that every simulation starts from clean
// scheduler state.
type Maker func(procs int) sim.Scheduler

// MakerFor returns a Maker by scheduler kind name. Recognised kinds:
//
//	"conservative"       — conservative backfilling
//	"conservative-nc"    — conservative without compression (ablation)
//	"easy"               — aggressive (EASY) backfilling
//	"easy:bestfit"       — EASY preferring the widest backfill candidate
//	"easy:shortestfit"   — EASY preferring the shortest backfill candidate
//	"none"               — no backfilling
//	"selective:<x>"      — selective backfilling, fixed xfactor threshold x
//	"selective:adaptive" — selective with the adaptive threshold
//	"depth:<k>"          — lookahead-k backfilling (k=1 behaves like EASY)
//	"slack:<s>"          — slack-based backfilling with slack factor s
//	"preemptive:<x>"     — EASY with selective preemption at xfactor x
//
// The policy argument selects the queue priority.
func MakerFor(kind string, pol Policy) (Maker, error) {
	switch {
	case kind == "conservative":
		return func(procs int) sim.Scheduler { return NewConservative(procs, pol) }, nil
	case kind == "conservative-nc":
		return func(procs int) sim.Scheduler { return NewConservativeNoCompression(procs, pol) }, nil
	case kind == "easy":
		return func(procs int) sim.Scheduler { return NewEASY(procs, pol) }, nil
	case kind == "easy:bestfit":
		return func(procs int) sim.Scheduler { return NewEASYWithOrder(procs, pol, BestFit) }, nil
	case kind == "easy:shortestfit":
		return func(procs int) sim.Scheduler { return NewEASYWithOrder(procs, pol, ShortestFit) }, nil
	case kind == "none":
		return func(procs int) sim.Scheduler { return NewNoBackfill(procs, pol) }, nil
	case kind == "selective:adaptive":
		return func(procs int) sim.Scheduler { return NewSelectiveAdaptive(procs, pol) }, nil
	case strings.HasPrefix(kind, "selective:"):
		x, err := strconv.ParseFloat(strings.TrimPrefix(kind, "selective:"), 64)
		if err != nil {
			return nil, fmt.Errorf("sched: bad selective threshold in %q: %w", kind, err)
		}
		if x < 1 {
			return nil, fmt.Errorf("sched: selective threshold %v < 1", x)
		}
		return func(procs int) sim.Scheduler { return NewSelective(procs, pol, x) }, nil
	case strings.HasPrefix(kind, "depth:"):
		k, err := strconv.Atoi(strings.TrimPrefix(kind, "depth:"))
		if err != nil {
			return nil, fmt.Errorf("sched: bad depth in %q: %w", kind, err)
		}
		if k < 1 {
			return nil, fmt.Errorf("sched: depth %d < 1", k)
		}
		return func(procs int) sim.Scheduler { return NewDepthK(procs, pol, k) }, nil
	case strings.HasPrefix(kind, "preemptive:"):
		x, err := strconv.ParseFloat(strings.TrimPrefix(kind, "preemptive:"), 64)
		if err != nil {
			return nil, fmt.Errorf("sched: bad preemption threshold in %q: %w", kind, err)
		}
		if x < 1 {
			return nil, fmt.Errorf("sched: preemption threshold %v < 1", x)
		}
		return func(procs int) sim.Scheduler { return NewPreemptive(procs, pol, x, DefaultMinRun) }, nil
	case strings.HasPrefix(kind, "slack:"):
		sf, err := strconv.ParseFloat(strings.TrimPrefix(kind, "slack:"), 64)
		if err != nil {
			return nil, fmt.Errorf("sched: bad slack factor in %q: %w", kind, err)
		}
		if sf < 0 {
			return nil, fmt.Errorf("sched: slack factor %v < 0", sf)
		}
		return func(procs int) sim.Scheduler { return NewSlackBased(procs, pol, sf) }, nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler kind %q (want conservative, conservative-nc, easy, none, selective:<x>, depth:<k>, or slack:<s>)", kind)
	}
}

// Kinds lists representative scheduler kind names MakerFor accepts.
func Kinds() []string {
	return []string{
		"conservative", "conservative-nc", "easy", "easy:bestfit",
		"easy:shortestfit", "none", "selective:adaptive", "depth:2",
		"slack:1", "preemptive:10",
	}
}

// Auditor checks schedule-validity invariants online through a
// sim.Observer: processor capacity is never exceeded, no job starts before
// it arrives, and every start/complete pairs up. Call Err after the run.
type Auditor struct {
	procs  int
	inUse  int
	active map[int]bool
	errs   []string
}

// NewAuditor returns an auditor for a machine with procs processors.
func NewAuditor(procs int) *Auditor {
	return &Auditor{procs: procs, active: make(map[int]bool)}
}

// Observer returns the sim.Observer wired to this auditor.
func (a *Auditor) Observer() *sim.Observer {
	return &sim.Observer{
		OnStart: func(now int64, j *job.Job) {
			if now < j.Arrival {
				a.errs = append(a.errs, fmt.Sprintf("%v started at %d before arrival", j, now))
			}
			if a.active[j.ID] {
				a.errs = append(a.errs, fmt.Sprintf("%v started twice", j))
			}
			a.active[j.ID] = true
			a.inUse += j.Width
			if a.inUse > a.procs {
				a.errs = append(a.errs, fmt.Sprintf("capacity exceeded at t=%d: %d > %d", now, a.inUse, a.procs))
			}
		},
		OnSuspend: func(now int64, j *job.Job) {
			if !a.active[j.ID] {
				a.errs = append(a.errs, fmt.Sprintf("%v suspended without running", j))
			}
			delete(a.active, j.ID)
			a.inUse -= j.Width
		},
		OnComplete: func(now int64, j *job.Job) {
			if !a.active[j.ID] {
				a.errs = append(a.errs, fmt.Sprintf("%v completed without starting", j))
			}
			delete(a.active, j.ID)
			a.inUse -= j.Width
		},
	}
}

// Err returns an error summarising all violations, or nil.
func (a *Auditor) Err() error {
	if len(a.errs) == 0 {
		return nil
	}
	return fmt.Errorf("sched: %d audit violations; first: %s", len(a.errs), a.errs[0])
}
