package sched

import (
	"fmt"

	"repro/internal/job"
)

// runInfo tracks one running job with the window the scheduler planned for
// it (start through start+Estimate).
type runInfo struct {
	j      *job.Job
	start  int64
	estEnd int64
}

// sortRunnersByEnd orders runInfos by (estEnd, job ID) with an insertion
// sort: shadow computations sort the running set at every scheduling
// event, and it is almost always already ordered from the previous event,
// so the nearly-sorted case is linear and allocation-free.
func sortRunnersByEnd(rs []runInfo) {
	for i := 1; i < len(rs); i++ {
		r := rs[i]
		k := i - 1
		for k >= 0 && (rs[k].estEnd > r.estEnd || (rs[k].estEnd == r.estEnd && rs[k].j.ID > r.j.ID)) {
			rs[k+1] = rs[k]
			k--
		}
		rs[k+1] = r
	}
}

// EASY is aggressive backfilling as introduced by the EASY LoadLeveler
// scheduler (Lifka 1995; Skovira et al. 1996): only the job at the head of
// the priority queue holds a reservation. Any other queued job may leap
// forward as long as starting it now does not delay that single reservation
// — either it terminates (by its estimate) before the head's shadow time, or
// it fits within the "extra" processors the head does not need.
//
// The paper calls this simply "aggressive backfilling"; combined with SJF or
// XFactor priority it wins on average slowdown, at the cost of an unbounded
// worst-case delay for jobs that never reach the head (Tables 4 and 7).
type EASY struct {
	procs   int
	pol     Policy
	order   BackfillOrder
	free    int
	queue   []*job.Job
	running []runInfo

	// runScratch is reused by headReservation's sorted snapshot of the
	// running set, so shadow computations stop allocating per event.
	runScratch []runInfo
}

// BackfillOrder selects which eligible candidate an EASY backfill pass
// prefers — a classic tuning knob from the backfilling literature. The
// queue *priority* still decides who is head and holds the reservation;
// the order only breaks competition among backfill candidates.
type BackfillOrder int

const (
	// FirstFit takes candidates in priority order (the default and what
	// the paper simulates).
	FirstFit BackfillOrder = iota
	// BestFit prefers the widest job that fits, packing the hole tightly.
	BestFit
	// ShortestFit prefers the candidate with the smallest estimate,
	// minimising how long backfilled work lingers.
	ShortestFit
)

// String names the order.
func (o BackfillOrder) String() string {
	switch o {
	case FirstFit:
		return "firstfit"
	case BestFit:
		return "bestfit"
	case ShortestFit:
		return "shortestfit"
	default:
		return fmt.Sprintf("BackfillOrder(%d)", int(o))
	}
}

// NewEASY returns an aggressive backfilling scheduler for a machine with
// procs processors under the given priority policy. It panics if procs < 1
// or pol is nil.
func NewEASY(procs int, pol Policy) *EASY {
	return NewEASYWithOrder(procs, pol, FirstFit)
}

// NewEASYWithOrder returns EASY with an explicit backfill candidate order.
func NewEASYWithOrder(procs int, pol Policy, order BackfillOrder) *EASY {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewEASY with %d processors", procs))
	}
	if pol == nil {
		panic("sched: NewEASY with nil policy")
	}
	if order < FirstFit || order > ShortestFit {
		panic(fmt.Sprintf("sched: NewEASY with unknown backfill order %d", order))
	}
	return &EASY{procs: procs, pol: pol, order: order, free: procs}
}

// Name returns e.g. "EASY(FCFS)" or "EASY(FCFS,bestfit)".
func (s *EASY) Name() string {
	if s.order == FirstFit {
		return fmt.Sprintf("EASY(%s)", s.pol.Name())
	}
	return fmt.Sprintf("EASY(%s,%s)", s.pol.Name(), s.order)
}

// Arrive queues the job.
func (s *EASY) Arrive(_ int64, j *job.Job) { s.queue = append(s.queue, j) }

// Complete returns the job's processors and forgets its running record.
func (s *EASY) Complete(_ int64, j *job.Job) {
	s.free += j.Width
	for i := range s.running {
		if s.running[i].j.ID == j.ID {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("sched: EASY completion for unknown %v", j))
}

// Launch implements one EASY scheduling pass: start priority-order heads
// while they fit, then compute the blocked head's shadow reservation and
// backfill lower-priority jobs against it.
func (s *EASY) Launch(now int64) []*job.Job {
	sortQueue(s.queue, s.pol, now)
	var out []*job.Job

	start := func(j *job.Job) {
		s.free -= j.Width
		s.running = append(s.running, runInfo{j: j, start: now, estEnd: now + j.Estimate})
		out = append(out, j)
	}

	// Phase 1: the head of the queue starts whenever it fits.
	for len(s.queue) > 0 && s.queue[0].Width <= s.free {
		start(s.queue[0])
		s.queue = s.queue[1:]
	}
	if len(s.queue) == 0 {
		return out
	}

	// Phase 2: the head is blocked. Give it the sole reservation: the
	// shadow time is when, by current estimates, enough processors will
	// have been freed; extra is what remains beyond the head's need then.
	head := s.queue[0]
	shadow, extra := s.headReservation(head)

	// Phase 3: backfill the rest of the queue. A job may start now iff it
	// fits now AND it either finishes (per its estimate) by the shadow
	// time or only uses processors the head will not need. FirstFit takes
	// candidates in priority order in one pass; BestFit/ShortestFit
	// repeatedly pick the preferred eligible candidate (each start changes
	// eligibility, so selection iterates).
	if s.order == FirstFit {
		kept := s.queue[:1]
		for _, j := range s.queue[1:] {
			fitsNow := j.Width <= s.free
			switch {
			case fitsNow && now+j.Estimate <= shadow:
				start(j)
			case fitsNow && j.Width <= extra:
				start(j)
				extra -= j.Width
			default:
				kept = append(kept, j)
			}
		}
		s.queue = kept
		return out
	}

	rest := append([]*job.Job(nil), s.queue[1:]...)
	for {
		bestIdx := -1
		bestUsesExtra := false
		for i, j := range rest {
			if j.Width > s.free {
				continue
			}
			byShadow := now+j.Estimate <= shadow
			if !byShadow && j.Width > extra {
				continue
			}
			if bestIdx == -1 || s.prefer(j, rest[bestIdx]) {
				bestIdx = i
				bestUsesExtra = !byShadow
			}
		}
		if bestIdx == -1 {
			break
		}
		j := rest[bestIdx]
		start(j)
		if bestUsesExtra {
			extra -= j.Width
		}
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
	}
	s.queue = append(s.queue[:1], rest...)
	return out
}

// prefer reports whether candidate a beats b under the configured backfill
// order (ties keep the earlier — higher-priority — candidate).
func (s *EASY) prefer(a, b *job.Job) bool {
	switch s.order {
	case BestFit:
		return a.Width > b.Width
	case ShortestFit:
		return a.Estimate < b.Estimate
	default:
		return false
	}
}

// headReservation computes the shadow time at which the blocked head job
// could start by current estimates, and the extra processors free at that
// time beyond the head's requirement.
func (s *EASY) headReservation(head *job.Job) (shadow int64, extra int) {
	s.runScratch = append(s.runScratch[:0], s.running...)
	runners := s.runScratch
	sortRunnersByEnd(runners)
	avail := s.free
	for i, r := range runners {
		avail += r.j.Width
		if avail < head.Width {
			continue
		}
		// Processors released by runners ending at the same instant are
		// also free at the shadow time and count toward extra.
		for _, rr := range runners[i+1:] {
			if rr.estEnd != r.estEnd {
				break
			}
			avail += rr.j.Width
		}
		return r.estEnd, avail - head.Width
	}
	// Unreachable for valid inputs: the head's width is at most the
	// machine size, so draining every runner always frees enough.
	panic(fmt.Sprintf("sched: EASY cannot place head %v on %d processors", head, s.procs))
}

// QueuedJobs returns the jobs still waiting.
func (s *EASY) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), s.queue...)
}
