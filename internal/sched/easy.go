package sched

import (
	"fmt"

	"repro/internal/job"
)

// runInfo tracks one running job with the window the scheduler planned for
// it (start through start+Estimate).
type runInfo struct {
	j      *job.Job
	start  int64
	estEnd int64
}

// sortRunnersByEnd orders runInfos by (estEnd, job ID) with an insertion
// sort: shadow computations sort the running set at every scheduling
// event, and it is almost always already ordered from the previous event,
// so the nearly-sorted case is linear and allocation-free.
func sortRunnersByEnd(rs []runInfo) {
	for i := 1; i < len(rs); i++ {
		r := rs[i]
		k := i - 1
		for k >= 0 && (rs[k].estEnd > r.estEnd || (rs[k].estEnd == r.estEnd && rs[k].j.ID > r.j.ID)) {
			rs[k+1] = rs[k]
			k--
		}
		rs[k+1] = r
	}
}

// EASY is aggressive backfilling as introduced by the EASY LoadLeveler
// scheduler (Lifka 1995; Skovira et al. 1996): only the job at the head of
// the priority queue holds a reservation. Any other queued job may leap
// forward as long as starting it now does not delay that single reservation
// — either it terminates (by its estimate) before the head's shadow time, or
// it fits within the "extra" processors the head does not need.
//
// The paper calls this simply "aggressive backfilling"; combined with SJF or
// XFactor priority it wins on average slowdown, at the cost of an unbounded
// worst-case delay for jobs that never reach the head (Tables 4 and 7).
//
// Passes are incremental (DESIGN.md §15): the queue is kept in policy order
// by ordered insertion under time-invariant policies, a pass memo skips
// launches that provably cannot start anything, and an arrivals-only pass
// evaluates just the new jobs against the cached shadow reservation instead
// of rescanning the whole queue. Every fast path is pinned behavior-
// identical to the full pass by FuzzLaunchIncremental.
type EASY struct {
	procs   int
	pol     Policy
	order   BackfillOrder
	free    int
	queue   []*job.Job
	running []runInfo

	// runScratch is reused by headReservation's sorted snapshot of the
	// running set, so shadow computations stop allocating per event.
	runScratch []runInfo

	// Incremental-pass state. memo tracks what changed since the last
	// completed pass; blocked/cachedHead/shadow/extra cache the phase-2
	// reservation of that pass so an arrivals-only pass can extend it; new
	// buffers the arrivals since the last pass (already ordered-inserted
	// into queue — this is the "which jobs are new" view of them).
	memo       passMemo
	blocked    bool
	cachedHead *job.Job
	shadow     int64
	extra      int
	new        []*job.Job
}

// BackfillOrder selects which eligible candidate an EASY backfill pass
// prefers — a classic tuning knob from the backfilling literature. The
// queue *priority* still decides who is head and holds the reservation;
// the order only breaks competition among backfill candidates.
type BackfillOrder int

const (
	// FirstFit takes candidates in priority order (the default and what
	// the paper simulates).
	FirstFit BackfillOrder = iota
	// BestFit prefers the widest job that fits, packing the hole tightly.
	BestFit
	// ShortestFit prefers the candidate with the smallest estimate,
	// minimising how long backfilled work lingers.
	ShortestFit
)

// String names the order.
func (o BackfillOrder) String() string {
	switch o {
	case FirstFit:
		return "firstfit"
	case BestFit:
		return "bestfit"
	case ShortestFit:
		return "shortestfit"
	default:
		return fmt.Sprintf("BackfillOrder(%d)", int(o))
	}
}

// NewEASY returns an aggressive backfilling scheduler for a machine with
// procs processors under the given priority policy. It panics if procs < 1
// or pol is nil.
func NewEASY(procs int, pol Policy) *EASY {
	return NewEASYWithOrder(procs, pol, FirstFit)
}

// NewEASYWithOrder returns EASY with an explicit backfill candidate order.
func NewEASYWithOrder(procs int, pol Policy, order BackfillOrder) *EASY {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewEASY with %d processors", procs))
	}
	if pol == nil {
		panic("sched: NewEASY with nil policy")
	}
	if order < FirstFit || order > ShortestFit {
		panic(fmt.Sprintf("sched: NewEASY with unknown backfill order %d", order))
	}
	return &EASY{procs: procs, pol: pol, order: order, free: procs, memo: newPassMemo(pol)}
}

// Name returns e.g. "EASY(FCFS)" or "EASY(FCFS,bestfit)".
func (s *EASY) Name() string {
	if s.order == FirstFit {
		return fmt.Sprintf("EASY(%s)", s.pol.Name())
	}
	return fmt.Sprintf("EASY(%s,%s)", s.pol.Name(), s.order)
}

// Arrive queues the job at its policy position (time-invariant policies
// keep the queue permanently sorted; dynamic ones append and re-sort at
// the next pass).
func (s *EASY) Arrive(now int64, j *job.Job) {
	s.memo.noteArrival()
	if s.memo.timeInv {
		s.queue = orderedInsert(s.queue, j, s.pol, now)
		s.new = append(s.new, j)
		return
	}
	s.queue = append(s.queue, j)
}

// Complete returns the job's processors and forgets its running record.
// Freed capacity can unblock the head or move the shadow, so the pass memo
// is invalidated.
func (s *EASY) Complete(_ int64, j *job.Job) {
	s.memo.invalidate()
	s.free += j.Width
	for i := range s.running {
		if s.running[i].j.ID == j.ID {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("sched: EASY completion for unknown %v", j))
}

// Launch implements one EASY scheduling pass: start priority-order heads
// while they fit, then compute the blocked head's shadow reservation and
// backfill lower-priority jobs against it. A pass the memo proves futile
// returns immediately; an arrivals-only pass under a time-invariant policy
// evaluates just the new jobs against the cached reservation.
func (s *EASY) Launch(now int64) []*job.Job {
	if s.memo.canSkip(now) {
		return nil
	}
	if out, ok := s.launchIncremental(now); ok {
		return out
	}
	return s.launchFull(now)
}

// start dispatches j at now (queue removal is the caller's business).
func (s *EASY) start(now int64, j *job.Job) {
	s.free -= j.Width
	s.running = append(s.running, runInfo{j: j, start: now, estEnd: now + j.Estimate})
}

// launchIncremental extends the last pass's conclusion with the arrivals
// since: with no structural change, a time-invariant policy, and the same
// blocked head, every previously kept job is still unstartable (free and
// extra only shrank, the shadow is fixed, and now only grew), so only the
// new jobs need evaluating — against the cached shadow/extra, in their
// policy order, exactly as the full pass would at their queue positions.
// It reports false when the precondition fails and a full pass must run.
func (s *EASY) launchIncremental(now int64) ([]*job.Job, bool) {
	if !s.memo.arrivalsOnly() || s.order != FirstFit || !s.blocked {
		return nil, false
	}
	if len(s.queue) == 0 || s.queue[0] != s.cachedHead {
		return nil, false // an arrival displaced the head: new reservation holder
	}
	sortQueue(s.new, s.pol, now)
	var out []*job.Job
	for _, j := range s.new {
		fitsNow := j.Width <= s.free
		switch {
		case fitsNow && now+j.Estimate <= s.shadow:
			s.start(now, j)
			s.queue = removeJob(s.queue, j)
			out = append(out, j)
		case fitsNow && j.Width <= s.extra:
			s.start(now, j)
			s.extra -= j.Width
			s.queue = removeJob(s.queue, j)
			out = append(out, j)
		default:
			if !fitsNow && j.Width < s.memo.blockedW {
				s.memo.blockedW = j.Width
			}
		}
	}
	s.clearNew()
	s.memo.completePass(now, noWake)
	return out, true
}

// launchFull is the unconditional EASY pass.
func (s *EASY) launchFull(now int64) []*job.Job {
	sortQueue(s.queue, s.pol, now)
	var out []*job.Job
	s.memo.blockedW = noWatermark

	// Phase 1: the head of the queue starts whenever it fits.
	n := 0
	for n < len(s.queue) && s.queue[n].Width <= s.free {
		s.start(now, s.queue[n])
		out = append(out, s.queue[n])
		n++
	}
	s.queue = compactFront(s.queue, n)
	if len(s.queue) == 0 {
		s.finishPass(now, false)
		return out
	}

	// Phase 2: the head is blocked. Give it the sole reservation: the
	// shadow time is when, by current estimates, enough processors will
	// have been freed; extra is what remains beyond the head's need then.
	head := s.queue[0]
	s.shadow, s.extra = s.headReservation(head)
	s.memo.blockedW = head.Width

	// Phase 3: backfill the rest of the queue. A job may start now iff it
	// fits now AND it either finishes (per its estimate) by the shadow
	// time or only uses processors the head will not need. FirstFit takes
	// candidates in priority order in one pass; BestFit/ShortestFit
	// repeatedly pick the preferred eligible candidate (each start changes
	// eligibility, so selection iterates).
	if s.order == FirstFit {
		kept := s.queue[:1]
		for _, j := range s.queue[1:] {
			fitsNow := j.Width <= s.free
			switch {
			case fitsNow && now+j.Estimate <= s.shadow:
				s.start(now, j)
				out = append(out, j)
			case fitsNow && j.Width <= s.extra:
				s.start(now, j)
				s.extra -= j.Width
				out = append(out, j)
			default:
				if !fitsNow && j.Width < s.memo.blockedW {
					s.memo.blockedW = j.Width
				}
				kept = append(kept, j)
			}
		}
		s.queue = clearTail(s.queue, len(kept))
		s.finishPass(now, true)
		return out
	}

	rest := append([]*job.Job(nil), s.queue[1:]...)
	for {
		bestIdx := -1
		bestUsesExtra := false
		for i, j := range rest {
			if j.Width > s.free {
				continue
			}
			byShadow := now+j.Estimate <= s.shadow
			if !byShadow && j.Width > s.extra {
				continue
			}
			if bestIdx == -1 || s.prefer(j, rest[bestIdx]) {
				bestIdx = i
				bestUsesExtra = !byShadow
			}
		}
		if bestIdx == -1 {
			break
		}
		j := rest[bestIdx]
		s.start(now, j)
		out = append(out, j)
		if bestUsesExtra {
			s.extra -= j.Width
		}
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
	}
	for _, j := range rest {
		if j.Width > s.free && j.Width < s.memo.blockedW {
			s.memo.blockedW = j.Width
		}
	}
	oldLen := len(s.queue)
	q := append(s.queue[:1], rest...)
	s.queue = clearTail(q[:oldLen], len(q))
	s.finishPass(now, true)
	return out
}

// finishPass records the pass's conclusion in the memo. A blocked queue
// under a time-invariant policy stays blocked until an event arrives —
// free capacity cannot grow, the shadow cannot move, and the by-shadow
// window only narrows as now advances — so the time-trigger bound is
// "never".
func (s *EASY) finishPass(now int64, blocked bool) {
	s.blocked = blocked
	s.cachedHead = nil
	if blocked {
		s.cachedHead = s.queue[0]
	}
	s.clearNew()
	s.memo.completePass(now, noWake)
}

// clearNew empties the new-arrivals buffer without retaining job pointers.
func (s *EASY) clearNew() {
	for i := range s.new {
		s.new[i] = nil
	}
	s.new = s.new[:0]
}

// removeJob deletes j from q in place, preserving order and clearing the
// vacated slot.
func removeJob(q []*job.Job, j *job.Job) []*job.Job {
	for i, e := range q {
		if e == j {
			copy(q[i:], q[i+1:])
			return clearTail(q, len(q)-1)
		}
	}
	return q
}

// prefer reports whether candidate a beats b under the configured backfill
// order (ties keep the earlier — higher-priority — candidate).
func (s *EASY) prefer(a, b *job.Job) bool {
	switch s.order {
	case BestFit:
		return a.Width > b.Width
	case ShortestFit:
		return a.Estimate < b.Estimate
	default:
		return false
	}
}

// headReservation computes the shadow time at which the blocked head job
// could start by current estimates, and the extra processors free at that
// time beyond the head's requirement.
func (s *EASY) headReservation(head *job.Job) (shadow int64, extra int) {
	s.runScratch = append(s.runScratch[:0], s.running...)
	runners := s.runScratch
	sortRunnersByEnd(runners)
	avail := s.free
	for i, r := range runners {
		avail += r.j.Width
		if avail < head.Width {
			continue
		}
		// Processors released by runners ending at the same instant are
		// also free at the shadow time and count toward extra.
		for _, rr := range runners[i+1:] {
			if rr.estEnd != r.estEnd {
				break
			}
			avail += rr.j.Width
		}
		return r.estEnd, avail - head.Width
	}
	// Unreachable for valid inputs: the head's width is at most the
	// machine size, so draining every runner always frees enough.
	panic(fmt.Sprintf("sched: EASY cannot place head %v on %d processors", head, s.procs))
}

// QueuedJobs returns the jobs still waiting.
func (s *EASY) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), s.queue...)
}
