package sched

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/job"
)

// SlackBased implements slack-based backfilling in the spirit of Talby &
// Feitelson (IPPS 1999), the third backfilling family the paper cites:
// like conservative backfilling every job holds a reservation, but an
// arriving job may take a slot that *delays* existing reservations, as long
// as no job is pushed past its guarantee. A job's guarantee is fixed when
// it first receives a reservation:
//
//	guarantee = first reserved start + SlackFactor × estimate
//
// so SlackFactor 0 degenerates to conservative backfilling (nobody may be
// delayed at all) while larger factors let short new work squeeze in ahead,
// trading bounded per-job delay for better packing.
//
// Displacement is pairwise: the arrival may displace one existing
// reservation, re-placing the displaced job within its guarantee. All
// other windows stay fixed, which keeps the scheduler free of
// list-scheduling anomalies — a replanned-from-scratch variant can push
// jobs past their guarantees even when capacity only grew (Graham's
// anomaly), so reservations here are persistent exactly as in conservative
// backfilling, and early completions compress jobs one at a time.
type SlackBased struct {
	procs       int
	pol         Policy
	slackFactor float64

	profile   *Profile
	queue     []*job.Job
	resv      map[int]int64 // job ID -> reserved start
	guarantee map[int]int64 // job ID -> latest permitted start
	running   map[int]runInfo

	// holes mirrors Conservative.holes: compression passes run only after
	// capacity has been freed (early completion, cancellation, a
	// displacement that rearranged windows, or a pass that moved a job);
	// otherwise the pass is provably the identity and is skipped.
	holes bool

	violations []string

	// memo mirrors Conservative's: launches are gated purely on "reserved
	// start due", so passes before the earliest pending reservation are
	// skipped (DESIGN.md §15). Arrivals fold both their own reservation and
	// any displaced victim's new start into memo.nextAt.
	memo passMemo
}

// NewSlackBased returns a slack-based backfilling scheduler. It panics if
// procs < 1, pol is nil, or slackFactor < 0.
func NewSlackBased(procs int, pol Policy, slackFactor float64) *SlackBased {
	if procs < 1 {
		panic(fmt.Sprintf("sched: NewSlackBased with %d processors", procs))
	}
	if pol == nil {
		panic("sched: NewSlackBased with nil policy")
	}
	if slackFactor < 0 {
		panic(fmt.Sprintf("sched: NewSlackBased with slack factor %v", slackFactor))
	}
	return &SlackBased{
		procs:       procs,
		pol:         pol,
		slackFactor: slackFactor,
		profile:     NewProfile(procs),
		resv:        make(map[int]int64),
		guarantee:   make(map[int]int64),
		running:     make(map[int]runInfo),
		memo:        newPassMemo(pol),
	}
}

// Name returns e.g. "Slack(FCFS,s=1)".
func (s *SlackBased) Name() string {
	return fmt.Sprintf("Slack(%s,s=%g)", s.pol.Name(), s.slackFactor)
}

// Guarantee returns a queued job's latest permitted start.
func (s *SlackBased) Guarantee(id int) (int64, bool) {
	g, ok := s.guarantee[id]
	return g, ok
}

// Reservation returns a queued job's current reserved start.
func (s *SlackBased) Reservation(id int) (int64, bool) {
	t, ok := s.resv[id]
	return t, ok
}

// Violations returns internal invariant breaches detected so far.
func (s *SlackBased) Violations() []string {
	return append([]string(nil), s.violations...)
}

// Arrive reserves the arriving job either at the earliest slot that
// disturbs nobody (the conservative placement) or, when better, at a slot
// freed by displacing a single existing reservation whose owner can be
// re-placed within its guarantee.
func (s *SlackBased) Arrive(now int64, j *job.Job) {
	s.profile.Trim(now)

	bestStart := s.profile.FindStart(now, j.Estimate, j.Width)
	bestVictim := -1
	bestVictimStart := int64(0)

	if s.slackFactor > 0 && bestStart > now {
		// Try displacing each queued reservation in turn (windows of all
		// other jobs stay fixed, so feasibility checks are exact).
		for _, k := range s.queue {
			old := s.resv[k.ID]
			if old <= now {
				continue // startable now; Launch owns it
			}
			s.profile.Release(old, k.Estimate, k.Width)
			cand := s.profile.FindStart(now, j.Estimate, j.Width)
			if cand < bestStart {
				// Where would k land if j takes this slot?
				s.profile.Reserve(cand, j.Estimate, j.Width)
				kNew := s.profile.FindStart(now, k.Estimate, k.Width)
				s.profile.Release(cand, j.Estimate, j.Width)
				if kNew <= s.guarantee[k.ID] {
					bestStart = cand
					bestVictim = k.ID
					bestVictimStart = kNew
				}
			}
			s.profile.Reserve(old, k.Estimate, k.Width)
			if bestStart == now {
				break
			}
		}
	}

	if bestVictim >= 0 {
		victim := s.findQueued(bestVictim)
		s.profile.Release(s.resv[bestVictim], victim.Estimate, victim.Width)
		s.profile.Reserve(bestStart, j.Estimate, j.Width)
		s.profile.Reserve(bestVictimStart, victim.Estimate, victim.Width)
		s.resv[bestVictim] = bestVictimStart
		// Displacement rearranged existing windows, so parts of the
		// victim's old slot may now be free.
		s.holes = true
	} else {
		s.profile.Reserve(bestStart, j.Estimate, j.Width)
	}
	s.resv[j.ID] = bestStart
	slack := int64(s.slackFactor * float64(j.Estimate))
	s.guarantee[j.ID] = bestStart + slack
	s.memo.noteArrival()
	// The arrival's reservation bounds the next possible start; a displaced
	// victim only moved later, so folding its old (earlier) bound kept by a
	// previous pass remains a safe lower bound, and its new start is folded
	// too for exactness.
	s.memo.nextAt = minInt64(s.memo.nextAt, bestStart)
	if bestVictim >= 0 {
		s.memo.nextAt = minInt64(s.memo.nextAt, bestVictimStart)
	}
	if s.memo.timeInv {
		s.queue = orderedInsert(s.queue, j, s.pol, now)
		return
	}
	s.queue = append(s.queue, j)
}

// findQueued returns the queued job with the given ID.
func (s *SlackBased) findQueued(id int) *job.Job {
	for _, k := range s.queue {
		if k.ID == id {
			return k
		}
	}
	panic(fmt.Sprintf("sched: SlackBased lost queued job %d", id))
}

// Complete releases the unused tail of the finished job's window and
// compresses reservations in priority order, conservative-style: each job
// moves to the earliest start no later than its current reservation.
func (s *SlackBased) Complete(now int64, j *job.Job) {
	ri, ok := s.running[j.ID]
	if !ok {
		panic(fmt.Sprintf("sched: SlackBased completion for unknown %v", j))
	}
	delete(s.running, j.ID)
	if now < ri.estEnd {
		s.profile.Release(now, ri.estEnd-now, j.Width)
		s.holes = true
	}
	s.profile.Trim(now)
	if s.holes {
		s.compress(now)
		// As in Conservative: the reservation map is all Launch reads, and
		// compression is the only way a completion changes it.
		if s.holes {
			s.memo.invalidate()
		}
	}
}

// compress pulls reservations earlier in priority order, exactly as
// conservative backfilling does. A pass that moves a job keeps holes set
// (its vacated slot may enable further moves); a pass that moves nothing
// clears it.
func (s *SlackBased) compress(now int64) {
	sortQueue(s.queue, s.pol, now)
	moved := false
	for _, k := range s.queue {
		old := s.resv[k.ID]
		if old <= now {
			continue
		}
		if !s.profile.anyAtLeastBefore(now, old, k.Width) {
			continue // no instant before old has room: the job cannot move
		}
		start := s.profile.EarlierStart(now, old, k.Estimate, k.Width)
		if start >= old {
			continue // cannot move; the profile was never touched
		}
		moved = true
		s.profile.Release(old, k.Estimate, k.Width)
		s.profile.Reserve(start, k.Estimate, k.Width)
		s.resv[k.ID] = start
	}
	s.holes = moved
}

// Launch starts every queued job whose reserved start has arrived. Passes
// before the earliest pending reservation are skipped via the memo.
func (s *SlackBased) Launch(now int64) []*job.Job {
	if s.memo.canSkip(now) {
		return nil
	}
	if s.memo.arrivalsOnly() && now < s.memo.nextAt {
		s.memo.completePass(now, s.memo.nextAt)
		return nil
	}
	sortQueue(s.queue, s.pol, now)
	var out []*job.Job
	nextAt := int64(noWake)
	kept := s.queue[:0]
	for _, j := range s.queue {
		start := s.resv[j.ID]
		if start > now {
			nextAt = minInt64(nextAt, start)
			kept = append(kept, j)
			continue
		}
		if g := s.guarantee[j.ID]; now > g {
			s.violations = append(s.violations,
				fmt.Sprintf("%v started at %d past its guarantee %d", j, now, g))
		}
		if start < now {
			// Reservations are claimed at their exact instant (see the
			// conservative scheduler); realign defensively.
			s.violations = append(s.violations,
				fmt.Sprintf("%v launched at %d after its reservation %d", j, now, start))
			if rem := start + j.Estimate - now; rem > 0 {
				s.profile.Release(now, rem, j.Width)
			}
			s.profile.Reserve(now, j.Estimate, j.Width)
			s.holes = true
		}
		delete(s.resv, j.ID)
		delete(s.guarantee, j.ID)
		s.running[j.ID] = runInfo{j: j, start: now, estEnd: now + j.Estimate}
		out = append(out, j)
	}
	s.queue = clearTail(s.queue, len(kept))
	s.memo.completePass(now, nextAt)
	return out
}

// QueuedJobs returns the jobs still waiting, in priority order.
func (s *SlackBased) QueuedJobs() []*job.Job {
	out := append([]*job.Job(nil), s.queue...)
	slices.SortStableFunc(out, func(a, b *job.Job) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// ProfilePoints reports the current size of the availability profile's
// step function (the benchmark ledger records its distribution per
// scheduler kind).
func (s *SlackBased) ProfilePoints() int { return s.profile.NumPoints() }
