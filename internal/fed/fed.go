// Package fed is the sharded multi-cluster federation front end: one HTTP
// surface over N independent cluster shards, each a full serve.Server —
// its own scheduler goroutine, incremental sim.Session, lock-free snapshot
// publisher, and (optionally) write-ahead journal in its own directory.
//
// Writes are routed: a pluggable policy (consistent hashing by user, or
// width-aware least-loaded placement driven by each shard's published
// snapshot) picks exactly one shard per job, and the submission then rides
// that shard's mailbox with the single-cluster guarantees intact —
// acknowledged only after it is durable (when journaling) and visible in
// the shard's snapshot. Reads are scatter-gathered: /v1/queue, /metrics,
// /healthz and job lookups load every shard's atomic snapshot pointer and
// merge off-loop, so a gather never blocks any shard's write loop and the
// federation keeps serving while shards drain. Shards never talk to each
// other; the only cross-shard coordination is arithmetic — shard i of N
// assigns job IDs in the congruence class i+1 (mod N), so IDs are globally
// unique with zero synchronization, and preloaded trace IDs are fenced off
// with a journaled ID-floor reservation.
//
// A federation of one shard is the degenerate identity: it routes every
// job to shard 0 and serves that shard's responses unmerged, byte-identical
// to a standalone serve.Server — the replay-equivalence suite pins this, so
// everything the federation layer adds is provably zero-distortion.
package fed

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/job"
	"repro/internal/serve"
)

// Options configure a Federation.
type Options struct {
	// Shards is the cluster count (≥ 1).
	Shards int
	// Route names the placement policy: "hash" (default) or "width".
	Route string
	// Shard is the per-shard server template; Procs is the size of each
	// shard's machine, so the federation's total capacity is
	// Shards × Procs. MailboxReads is rejected — the federation serves the
	// lock-free path only.
	Shard serve.Options
	// DataDir, when set, gives shard i its own journal directory
	// DataDir/shard-<i> (created if missing). Empty runs in-memory.
	DataDir string
	// ReadRoute names the read-routing policy: "leader" (default) renders
	// every read from the shard leaders' published snapshots; "replica"
	// spreads reads across each shard's registered followers whose
	// replication lag is within MaxLagOps, falling back to the leader when
	// no follower qualifies (see readroute.go).
	ReadRoute string
	// MaxLagOps bounds follower staleness for replica read routing: a
	// follower more than this many journal records behind its leader's
	// durable position is ejected from read rotation until it catches up.
	// Zero means DefaultMaxLagOps.
	MaxLagOps uint64
}

// Federation is a scatter-gather front end over N cluster shards.
type Federation struct {
	opts      Options
	router    Router
	shards    []serve.Shard
	balancers []*ReadBalancer // per shard; nil slice when ReadRoute is "leader"
}

// ShardDir names shard i's journal directory under a federation data dir.
// cmd/schedload's crash drill points shadow replays at the same layout.
func ShardDir(dataDir string, i int) string {
	return filepath.Join(dataDir, fmt.Sprintf("shard-%03d", i))
}

// New builds the shards and the routing policy. Any shard with an existing
// journal recovers during construction; after recovery the federation
// re-fences the global ID floor so no shard can re-issue an ID another
// shard already holds.
func New(opts Options) (*Federation, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("fed: federation needs at least one shard, have %d", opts.Shards)
	}
	if opts.Shard.MailboxReads {
		return nil, fmt.Errorf("fed: the federation serves the lock-free read path only (MailboxReads is a single-daemon A/B baseline)")
	}
	router, err := RouterByName(opts.Route, opts.Shards)
	if err != nil {
		return nil, err
	}
	f := &Federation{opts: opts, router: router}
	for i := 0; i < opts.Shards; i++ {
		so := opts.Shard
		so.IDStart, so.IDStride = i+1, opts.Shards
		if opts.DataDir != "" {
			so.Durability.Dir = ShardDir(opts.DataDir, i)
			if err := os.MkdirAll(so.Durability.Dir, 0o755); err != nil {
				f.Close()
				return nil, err
			}
		}
		s, err := serve.New(so)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fed: shard %d: %w", i, err)
		}
		f.shards = append(f.shards, s)
	}
	// Recovered shards may hold preloaded trace IDs outside every
	// congruence class; re-apply the global floor before any live submit.
	if err := f.reserveFloor(f.maxKnownID()); err != nil {
		f.Close()
		return nil, err
	}
	switch opts.ReadRoute {
	case "", "leader":
	case "replica":
		maxLag := opts.MaxLagOps
		if maxLag == 0 {
			maxLag = DefaultMaxLagOps
		}
		for _, sh := range f.shards {
			f.balancers = append(f.balancers, newReadBalancer(sh, maxLag))
		}
	default:
		f.Close()
		return nil, fmt.Errorf("fed: unknown read route %q (want leader or replica)", opts.ReadRoute)
	}
	return f, nil
}

// Shards exposes the shard list (index = shard number) for introspection:
// tests, the status endpoint, and cmd/schedd's recovery report.
func (f *Federation) Shards() []serve.Shard { return f.shards }

// Router exposes the active placement policy.
func (f *Federation) Router() Router { return f.router }

// maxKnownID scans every shard's snapshot for the highest job ID in play.
func (f *Federation) maxKnownID() int {
	max := 0
	for _, sh := range f.shards {
		sh.Current().Jobs.Range(func(id int, _ serve.JobView) bool {
			if id > max {
				max = id
			}
			return true
		})
	}
	return max
}

// reserveFloor fences IDs ≤ upTo on every shard (no-op per shard when its
// next ID is already above the floor).
func (f *Federation) reserveFloor(upTo int) error {
	if upTo <= 0 {
		return nil
	}
	for i, sh := range f.shards {
		if err := sh.ReserveIDs(upTo); err != nil {
			return fmt.Errorf("fed: shard %d: reserve ids ≤ %d: %w", i, upTo, err)
		}
	}
	return nil
}

// Preload partitions a replay workload across the shards with the same
// routing policy live submissions use, feeding the width policy the
// backlog it has itself accumulated (snapshots cannot see still-pending
// arrivals). Trace IDs are preserved, so after partitioning every shard's
// ID floor is raised past the highest preloaded ID. Valid only before Run.
func (f *Federation) Preload(jobs []*job.Job) error {
	parts, maxID := partitionJobs(f.router, f.preloadLoads(), jobs)
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		if err := f.shards[i].Preload(part); err != nil {
			return fmt.Errorf("fed: shard %d: preload: %w", i, err)
		}
	}
	return f.reserveFloor(maxID)
}

// preloadLoads seeds the partitioner's load accounting from the shards'
// current snapshots, so preloading into a recovered federation starts from
// the recovered backlog instead of assuming empty shards.
func (f *Federation) preloadLoads() []Load {
	loads := make([]Load, len(f.shards))
	for i, sh := range f.shards {
		loads[i] = loadOf(sh.Current())
	}
	return loads
}

// partitionJobs routes each job in order and accumulates the routed work
// into the load vector the next decision sees. Every job lands in exactly
// one part; the fuzz harness pins that, plus determinism of the whole
// partition. Returns the parts and the highest job ID seen.
func partitionJobs(r Router, loads []Load, jobs []*job.Job) ([][]*job.Job, int) {
	parts := make([][]*job.Job, len(loads))
	maxID := 0
	for _, j := range jobs {
		i := r.Route(KeyOf(j), loads)
		parts[i] = append(parts[i], j)
		loads[i].QueuedWork += int64(j.Width) * j.Estimate
		if j.ID > maxID {
			maxID = j.ID
		}
	}
	return parts, maxID
}

// Run drives every shard's scheduler loop until ctx is cancelled, then
// waits for all of them to drain. A shard failing mid-run cancels its
// siblings (a federation with a dead shard is misconfigured or corrupt,
// not half-healthy); the first error wins. Reads keep serving from the
// last published snapshots throughout, exactly like a single daemon.
func (f *Federation) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, len(f.shards))
	for _, sh := range f.shards {
		sh := sh
		go func() { errc <- sh.Run(ctx) }()
	}
	var first error
	for range f.shards {
		if err := <-errc; err != nil && first == nil {
			first = err
			cancel()
		}
	}
	return first
}

// Close releases every shard's journal resources. Safe on a partially
// constructed federation.
func (f *Federation) Close() error {
	var first error
	for _, sh := range f.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// liveLoads reads the routing load vector from the shards' published
// snapshots — atomic loads, no locks, never touching a scheduler loop.
func (f *Federation) liveLoads() []Load {
	loads := make([]Load, len(f.shards))
	for i, sh := range f.shards {
		loads[i] = loadOf(sh.Current())
	}
	return loads
}

// Submit routes one submission to its shard and forwards the result. The
// returned view carries the shard-assigned, globally unique job ID.
func (f *Federation) Submit(req serve.SubmitRequest) (serve.JobView, error) {
	v, _, err := f.submitShard(req)
	return v, err
}

// submitShard is Submit with the handling shard attached, so the HTTP
// write path can stamp the response with that shard's durable seq.
func (f *Federation) submitShard(req serve.SubmitRequest) (serve.JobView, serve.Shard, error) {
	k := Key{User: req.User, Width: req.Width, Estimate: req.Estimate}
	if k.Estimate == 0 {
		k.Estimate = req.Runtime // mirrors the shard's own default
	}
	i := f.router.Route(k, f.liveLoads())
	v, err := f.shards[i].Submit(req)
	return v, f.shards[i], err
}

// owner finds the shard holding job id by scanning published snapshots.
// IDs are globally unique (congruence classes for live submits, a fenced
// floor for preloads), so at most one shard matches.
func (f *Federation) owner(id int) (serve.Shard, bool) {
	sh, _, ok := f.ownerIdx(id)
	return sh, ok
}

// ownerIdx is owner with the shard index attached, for the read router
// (the balancer of the owning shard proxies that shard's job lookups).
func (f *Federation) ownerIdx(id int) (serve.Shard, int, bool) {
	for i, sh := range f.shards {
		if _, ok := sh.Current().Jobs.Get(id); ok {
			return sh, i, true
		}
	}
	return nil, -1, false
}

// Lookup renders one job's view from its owning shard's snapshot. A shard
// acknowledges a submit only after publishing the snapshot containing it,
// so a client always finds its own acknowledged jobs.
func (f *Federation) Lookup(id int) (serve.JobView, bool) {
	sh, ok := f.owner(id)
	if !ok {
		return serve.JobView{}, false
	}
	return sh.Lookup(id)
}

// Cancel withdraws a job on whichever shard owns it. The bool reports
// whether any shard knew the ID at all; an unknown ID is forwarded to
// shard 0 so the resulting error (and the wire response rendered from it)
// is the same one a single daemon would produce.
func (f *Federation) Cancel(id int) (bool, error) {
	_, ok := f.owner(id)
	_, err := f.cancelShard(id)
	return ok, err
}

// cancelShard is Cancel with the handling shard attached (shard 0 for
// unknown IDs, whose error bytes match a single daemon's), so the HTTP
// write path can stamp the response with that shard's durable seq.
func (f *Federation) cancelShard(id int) (serve.Shard, error) {
	sh, ok := f.owner(id)
	if !ok {
		return f.shards[0], f.shards[0].Cancel(id)
	}
	return sh, sh.Cancel(id)
}
