package fed

// Replica-routed equivalence and balancer tests. The identity claim
// extends PR 8's: a 1-shard federation routing reads to a real, caught-up
// follower must render byte-identical responses to a leader-only
// federation fed the same mutations — every read endpoint, error bodies
// included — because the follower's mirror at equal applied seq IS the
// leader's state. The balancer itself is held to its eligibility contract
// by a unit test (ejection/readmission accounting) and a fuzzer over the
// pure selection function.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/replica"
	"repro/internal/serve"
)

// fakeReplShard is a replicatedShard with settable views, for driving the
// balancer without a real leader.
type fakeReplShard struct {
	views atomic.Pointer[[]serve.FollowerView]
	seq   atomic.Uint64
}

func (f *fakeReplShard) FollowerViews() []serve.FollowerView {
	if p := f.views.Load(); p != nil {
		return *p
	}
	return nil
}
func (f *fakeReplShard) DurableSeq() uint64 { return f.seq.Load() }

func (f *fakeReplShard) set(seq uint64, views ...serve.FollowerView) {
	f.seq.Store(seq)
	f.views.Store(&views)
}

func TestReadBalancerEjectionReadmission(t *testing.T) {
	sh := &fakeReplShard{}
	b := &ReadBalancer{shard: sh, maxLag: 10, inRotation: make(map[string]bool)}
	now := time.Now()
	live := func(acked uint64) serve.FollowerView {
		return serve.FollowerView{ID: "f1", Addr: "http://f1", Acked: acked, LastSeen: now}
	}

	// Caught up: in rotation.
	sh.set(100, live(100))
	if addr, ok := b.Pick(0); !ok || addr != "http://f1" {
		t.Fatalf("Pick = %q, %v; want the caught-up follower", addr, ok)
	}

	// Lag crosses the bound: ejected, reads fall back to the leader.
	sh.set(200, live(100))
	if _, ok := b.Pick(0); ok {
		t.Fatal("picked a follower lagging past the bound")
	}
	if got := b.ejections.Load(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}

	// Catches back up: readmitted.
	sh.set(200, live(200))
	if _, ok := b.Pick(0); !ok {
		t.Fatal("caught-up follower not readmitted")
	}
	if got := b.readmissions.Load(); got != 1 {
		t.Fatalf("readmissions = %d, want 1", got)
	}

	// Barrier pinning: a follower behind the floor is skipped even while
	// plain-read eligible.
	sh.set(205, live(200))
	if _, ok := b.Pick(201); ok {
		t.Fatal("routed a min_seq barrier to a follower behind the floor")
	}
	if _, ok := b.Pick(200); !ok {
		t.Fatal("refused a barrier the follower has acked")
	}

	// Registry drops the follower entirely (TTL expiry on the leader):
	// counted as one more ejection, accounting conserved.
	sh.set(205)
	if _, ok := b.Pick(0); ok {
		t.Fatal("picked from an empty registry")
	}
	if ej, re := b.ejections.Load(), b.readmissions.Load(); ej != 2 || re != 1 {
		t.Fatalf("counters = %d ejections, %d readmissions; want 2, 1", ej, re)
	}
}

// routedHarness is a 1-shard replica-routed federation with one real
// follower replicating over HTTP and advertising a live read endpoint,
// plus a leader-only twin federation fed identical mutations.
type routedHarness struct {
	routed *Federation
	plain  *Federation
	rep    *replica.Replica
	stop   []func()
}

func (h *routedHarness) close() {
	for i := len(h.stop) - 1; i >= 0; i-- {
		h.stop[i]()
	}
}

// catchUp pulls the follower to the shard leader's durable position and
// acknowledges it (the ack rides the next pull), then confirms the
// balancer shows it eligible.
func (h *routedHarness) catchUp(t *testing.T) uint64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := h.rep.Sync(); err != nil {
			t.Fatalf("follower sync: %v", err)
		}
		st := h.routed.RouteStatus()[0]
		if len(st.Followers) == 1 && st.Followers[0].Eligible && st.Followers[0].AckedSeq == st.LeaderSeq {
			return st.LeaderSeq
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never became eligible at the leader position: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newRoutedHarness(t *testing.T) *routedHarness {
	t.Helper()
	h := &routedHarness{}
	shardOpts := serve.Options{Procs: 16, Scheduler: "easy", Policy: "FCFS", Audit: true, Speed: 1e-9}

	routed, rstop := frozenFed(t, Options{Shards: 1, Shard: shardOpts, DataDir: t.TempDir(), ReadRoute: "replica"})
	h.routed = routed
	h.stop = append(h.stop, func() { rstop() })
	plain, pstop := frozenFed(t, Options{Shards: 1, Shard: shardOpts, DataDir: t.TempDir()})
	h.plain = plain
	h.stop = append(h.stop, func() { pstop() })

	// The shard's journal stream must be reachable over real HTTP for the
	// follower, and the follower's own surface for the balancer's proxy.
	fedTS := httptest.NewServer(routed.Handler())
	h.stop = append(h.stop, fedTS.Close)
	folTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.rep.Handler().ServeHTTP(w, r)
	}))
	h.stop = append(h.stop, folTS.Close)

	rep, err := replica.New(replica.Options{
		Source:    fedTS.URL + "/v1/shards/0",
		Serve:     shardOpts,
		ID:        "ro-equiv",
		Advertise: folTS.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.rep = rep
	h.stop = append(h.stop, func() { rep.Close() })
	return h
}

// mutateBoth drives the identical mutation stream through both
// federations, asserting the write surfaces agree byte for byte too. The
// follower syncs after every write so it applies one pull per commit
// batch: queue responses carry the snapshot publication count as
// "version", so byte-identity requires the follower to publish at the
// leader's one-publish-per-commit-batch cadence — the same contract
// PR 8's leader/follower equivalence pins.
func mutateBoth(t *testing.T, h *routedHarness) {
	t.Helper()
	sync := func() {
		t.Helper()
		if err := h.rep.Sync(); err != nil {
			t.Fatalf("follower sync: %v", err)
		}
	}
	for i := 0; i < 20; i++ {
		req := serve.SubmitRequest{Width: 1 + (i*3)%16, Runtime: int64(100 + 50*i), User: i % 4}
		ra := doJSON(t, h.routed.Handler(), "POST", "/v1/jobs", req, nil)
		rb := doJSON(t, h.plain.Handler(), "POST", "/v1/jobs", req, nil)
		if ra.Code != rb.Code || ra.Body.String() != rb.Body.String() {
			t.Fatalf("submit %d diverged:\nrouted: %d %s\nplain:  %d %s", i, ra.Code, ra.Body.String(), rb.Code, rb.Body.String())
		}
		sync()
	}
	for _, req := range [][2]string{{"DELETE", "/v1/jobs/7"}, {"DELETE", "/v1/jobs/99999"}} {
		ca, ba := body(t, h.routed.Handler(), req[0], req[1])
		cb, bb := body(t, h.plain.Handler(), req[0], req[1])
		if ca != cb || ba != bb {
			t.Fatalf("%s %s diverged: %d %q vs %d %q", req[0], req[1], ca, ba, cb, bb)
		}
		sync()
	}
}

// TestFedRoutedByteIdentical is the replica-routing identity proof: with a
// caught-up advertised follower in rotation, every read endpoint of the
// routed federation — proxied over real HTTP to the follower — renders the
// bytes the leader-only federation renders, including 404 and bad-id
// error bodies. The routing counters must show the reads actually went to
// the follower; byte-identity of a fallback would prove nothing.
func TestFedRoutedByteIdentical(t *testing.T) {
	h := newRoutedHarness(t)
	defer h.close()
	mutateBoth(t, h)
	h.catchUp(t)

	before := h.routed.RouteStatus()[0].Proxied
	compareReads(t, h.plain.Handler(), h.routed.Handler(), 20)
	st := h.routed.RouteStatus()[0]
	if st.Proxied == before {
		t.Fatal("equivalence pass never proxied a read to the follower")
	}
	if st.Fallbacks != 0 {
		t.Fatalf("%d reads fell back to the leader with a healthy follower in rotation", st.Fallbacks)
	}
}

// TestFedRoutedMinSeq pins the read-consistency contract of a routed
// 1-shard federation: barriers at or below the leader's durable position
// answer 200, barriers beyond it answer 504 with the documented body, and
// malformed floors answer 400 — on both the merged and the per-job path.
func TestFedRoutedMinSeq(t *testing.T) {
	h := newRoutedHarness(t)
	defer h.close()
	mutateBoth(t, h)
	seq := h.catchUp(t)

	for _, path := range []string{
		fmt.Sprintf("/v1/queue?min_seq=%d", seq),
		fmt.Sprintf("/healthz?min_seq=%d", seq),
		fmt.Sprintf("/v1/jobs/1?min_seq=%d", seq),
	} {
		if code, b := body(t, h.routed.Handler(), "GET", path); code != http.StatusOK {
			t.Fatalf("GET %s = %d %s, want 200", path, code, b)
		}
	}
	for _, path := range []string{
		fmt.Sprintf("/v1/queue?min_seq=%d", seq+1000),
		fmt.Sprintf("/v1/jobs/1?min_seq=%d", seq+1000),
		fmt.Sprintf("/v1/jobs/99999?min_seq=%d", seq+1000), // unknown job: the barrier still answers first
	} {
		code, b := body(t, h.routed.Handler(), "GET", path)
		if code != http.StatusGatewayTimeout {
			t.Fatalf("GET %s = %d %s, want 504", path, code, b)
		}
		if !strings.Contains(b, "no member has applied min_seq") {
			t.Fatalf("GET %s: 504 body does not state the barrier: %s", path, b)
		}
	}
	if code, b := body(t, h.routed.Handler(), "GET", "/v1/queue?min_seq=nope"); code != http.StatusBadRequest || !strings.Contains(b, "bad min_seq") {
		t.Fatalf("malformed min_seq = %d %s, want 400 bad min_seq", code, b)
	}
}

// TestFedRoutedFallbackOnDeadFollower: a follower that stops answering
// costs fallbacks, never client-visible errors — the worst case of replica
// routing is leader-only service.
func TestFedRoutedFallbackOnDeadFollower(t *testing.T) {
	h := newRoutedHarness(t)
	defer h.close()
	mutateBoth(t, h)
	h.catchUp(t)

	// Re-point the follower's advertised address at a closed listener by
	// re-registering through a pull carrying the dead URL: the registry
	// entry stays TTL-live, so the balancer keeps picking it, and every
	// proxy attempt fails at the transport — the fallback path is the test.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // a URL that refuses connections
	rec := httptest.NewRecorder()
	h.routed.Handler().ServeHTTP(rec, httptest.NewRequest("GET",
		fmt.Sprintf("/v1/shards/0/wal?follower=ro-equiv&from=%d&addr=%s", h.rep.AppliedSeq()+1, dead.URL), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("re-registration pull: %d %s", rec.Code, rec.Body.String())
	}

	fb0 := h.routed.RouteStatus()[0].Fallbacks
	for _, path := range []string{"/v1/queue", "/healthz", "/v1/jobs/1", "/metrics"} {
		if code, b := body(t, h.routed.Handler(), "GET", path); code != http.StatusOK {
			t.Fatalf("GET %s with dead follower = %d %s, want 200 via leader fallback", path, code, b)
		}
	}
	if fb := h.routed.RouteStatus()[0].Fallbacks; fb <= fb0 {
		t.Fatalf("fallback counter did not move (before %d, after %d) — reads never tried the dead follower", fb0, fb)
	}
}

// FuzzReadBalancer holds the pure selection function to the routing
// contract for any follower population the fuzzer invents:
//
//   - determinism: the same views and cursor pick the same follower;
//   - safety: a pick is always advertised, TTL-live, within the lag bound,
//     and at or past the barrier floor — a min_seq read never lands on a
//     lagging follower;
//   - completeness: -1 is returned only when no follower qualifies;
//   - conservation: sweeping the round-robin cursor visits exactly the
//     qualified followers, each once per revolution — ejected members get
//     no traffic, readmitted members rejoin the rotation.
func FuzzReadBalancer(f *testing.F) {
	f.Add(uint8(3), uint64(1), uint64(100), uint64(0), uint64(0), uint64(64))
	f.Add(uint8(0), uint64(2), uint64(0), uint64(0), uint64(7), uint64(0))
	f.Add(uint8(8), uint64(3), uint64(1<<40), uint64(1<<39), uint64(3), uint64(1024))
	f.Add(uint8(5), uint64(0xbeef), uint64(500), uint64(501), uint64(1), uint64(1))
	f.Fuzz(func(t *testing.T, nViews uint8, seed, leaderSeq, minSeq, rr, maxLag uint64) {
		now := time.Unix(1_700_000_000, 0)
		rng := seed
		n := int(nViews % 12)
		views := make([]serve.FollowerView, n)
		for i := range views {
			v := serve.FollowerView{ID: fmt.Sprintf("f%02d", i)}
			if splitmix64(&rng)%4 != 0 { // 3/4 advertise a read URL
				v.Addr = "http://" + v.ID
			}
			// Acked somewhere around the leader position, sometimes far behind.
			back := splitmix64(&rng) % (maxLag*2 + 16)
			if back < leaderSeq {
				v.Acked = leaderSeq - back
			}
			// LastSeen from "just now" to well past the TTL.
			age := time.Duration(splitmix64(&rng)%uint64(2*serve.FollowerTTL)) - serve.FollowerTTL/2
			if age < 0 {
				age = 0
			}
			v.LastSeen = now.Add(-age)
			views[i] = v
		}

		qualified := func(v serve.FollowerView) bool {
			return eligibleAt(v, leaderSeq, now, maxLag) && v.Acked >= minSeq
		}

		got := pickFrom(views, leaderSeq, now, minSeq, rr, maxLag)
		if again := pickFrom(views, leaderSeq, now, minSeq, rr, maxLag); again != got {
			t.Fatalf("pickFrom not deterministic: %d then %d", got, again)
		}
		if got >= 0 {
			v := views[got]
			if v.Addr == "" {
				t.Fatalf("picked follower %d with no read address", got)
			}
			if now.Sub(v.LastSeen) > serve.FollowerTTL {
				t.Fatalf("picked TTL-expired follower %d (age %v)", got, now.Sub(v.LastSeen))
			}
			if leaderSeq > v.Acked && leaderSeq-v.Acked > maxLag {
				t.Fatalf("picked lag-ejected follower %d (lag %d > %d)", got, leaderSeq-v.Acked, maxLag)
			}
			if v.Acked < minSeq {
				t.Fatalf("picked follower %d behind the min_seq barrier (%d < %d)", got, v.Acked, minSeq)
			}
		} else {
			for i, v := range views {
				if qualified(v) {
					t.Fatalf("pickFrom returned -1 with qualified follower %d: %+v", i, v)
				}
			}
		}

		// Conservation over one round-robin revolution: exactly the
		// qualified set, each member once.
		want := map[int]bool{}
		for i, v := range views {
			if qualified(v) {
				want[i] = true
			}
		}
		if len(want) > 0 {
			seen := map[int]int{}
			for c := uint64(0); c < uint64(len(want)); c++ {
				i := pickFrom(views, leaderSeq, now, minSeq, c, maxLag)
				if i < 0 {
					t.Fatalf("cursor %d returned -1 with %d qualified followers", c, len(want))
				}
				seen[i]++
			}
			for i, n := range seen {
				if !want[i] {
					t.Fatalf("rotation visited unqualified follower %d", i)
				}
				if n != 1 {
					t.Fatalf("rotation visited follower %d %d times in one revolution", i, n)
				}
			}
			if len(seen) != len(want) {
				t.Fatalf("rotation covered %d of %d qualified followers", len(seen), len(want))
			}
		}
	})
}

// TestFedRoutedWriteSeqBarrier pins read-your-writes through the front
// end: a durable federation's write responses carry X-Schedd-Seq (the
// owning shard's durable seq, as a standalone daemon's would), and
// replaying that value as ?min_seq= succeeds immediately — the leader
// itself satisfies a barrier at its own durable position even before any
// follower catches up. Cancels carry the header too.
func TestFedRoutedWriteSeqBarrier(t *testing.T) {
	h := newRoutedHarness(t)
	defer h.close()

	var seq string
	// Job 1 fills the machine and runs; job 2 queues behind it (cancellable).
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.routed.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/jobs",
			strings.NewReader(`{"width":16,"runtime":300}`)))
		if rec.Code != http.StatusCreated {
			t.Fatalf("submit = %d %s, want 201", rec.Code, rec.Body.String())
		}
		if seq = rec.Header().Get("X-Schedd-Seq"); seq == "" {
			t.Fatalf("durable federation write response missing X-Schedd-Seq")
		}
	}
	path := "/v1/queue?min_seq=" + seq
	if code, b := body(t, h.routed.Handler(), "GET", path); code != http.StatusOK {
		t.Fatalf("GET %s = %d %s, want 200 (read-your-writes)", path, code, b)
	}

	rec := httptest.NewRecorder()
	h.routed.Handler().ServeHTTP(rec, httptest.NewRequest("DELETE", "/v1/jobs/2", nil))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("cancel = %d %s, want 204", rec.Code, rec.Body.String())
	}
	if cs := rec.Header().Get("X-Schedd-Seq"); cs == "" {
		t.Fatalf("cancel response missing X-Schedd-Seq")
	} else if c, s := atoi64(t, cs), atoi64(t, seq); c <= s {
		t.Fatalf("cancel seq %d not past submit seq %d", c, s)
	}
}

func atoi64(t *testing.T, s string) uint64 {
	t.Helper()
	var v uint64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		t.Fatalf("bad seq %q: %v", s, err)
	}
	return v
}
