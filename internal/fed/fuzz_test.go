package fed

import (
	"fmt"
	"testing"

	"repro/internal/job"
)

// splitmix64 is the fuzz harness's deterministic expander: one 64-bit seed
// fans out into however many pseudo-random values a case needs.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FuzzShardRouter holds both routing policies to the placement contract no
// matter what workload shape the fuzzer invents:
//
//   - determinism: the same key against the same loads routes to the same
//     shard, twice in a row and across fresh router instances;
//   - hash stability: hash placement ignores the load vector entirely, so
//     no amount of unrelated traffic rebalances an existing user;
//   - conservation: partitioning a workload loses no job and duplicates no
//     job — every ID lands in exactly one part;
//   - feasibility: the width policy never picks an infeasible shard while
//     a feasible one exists;
//   - purity: routing never mutates the caller's load vector.
func FuzzShardRouter(f *testing.F) {
	f.Add(uint8(4), false, uint64(1), uint16(50))
	f.Add(uint8(4), true, uint64(2), uint16(50))
	f.Add(uint8(1), false, uint64(3), uint16(10))
	f.Add(uint8(7), true, uint64(0xdead), uint16(200))
	f.Fuzz(func(t *testing.T, nShards uint8, useWidth bool, seed uint64, n uint16) {
		shards := 1 + int(nShards%8)
		count := int(n % 256)
		route := "hash"
		if useWidth {
			route = "width"
		}
		r, err := RouterByName(route, shards)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RouterByName(route, shards)
		if err != nil {
			t.Fatal(err)
		}

		rng := seed
		loads := make([]Load, shards)
		for i := range loads {
			loads[i] = Load{
				Procs:      8 << (splitmix64(&rng) % 4), // 8..64
				Busy:       int(splitmix64(&rng) % 64),
				QueuedWork: int64(splitmix64(&rng) % 1_000_000),
			}
		}
		jobs := make([]*job.Job, count)
		for i := range jobs {
			jobs[i] = &job.Job{
				ID:       i + 1,
				User:     int(splitmix64(&rng) % 300),
				Width:    1 + int(splitmix64(&rng)%96),
				Runtime:  1 + int64(splitmix64(&rng)%100_000),
				Estimate: 1 + int64(splitmix64(&rng)%100_000),
			}
		}

		maxProcs := 0
		for _, ld := range loads {
			if ld.Procs > maxProcs {
				maxProcs = ld.Procs
			}
		}
		clone := func(src []Load) []Load {
			out := make([]Load, len(src))
			copy(out, src)
			return out
		}

		for _, j := range jobs {
			k := KeyOf(j)
			before := clone(loads)
			got := r.Route(k, loads)
			if got < 0 || got >= shards {
				t.Fatalf("route %+v: shard %d out of range [0,%d)", k, got, shards)
			}
			for i := range loads {
				if loads[i] != before[i] {
					t.Fatalf("route %+v mutated loads[%d]: %+v -> %+v", k, i, before[i], loads[i])
				}
			}
			if again := r.Route(k, loads); again != got {
				t.Fatalf("route %+v not deterministic: %d then %d", k, got, again)
			}
			if fresh := r2.Route(k, loads); fresh != got {
				t.Fatalf("route %+v differs across router instances: %d vs %d", k, got, fresh)
			}
			if !useWidth {
				// Hash placement must not depend on load at all: identical
				// keys stay put no matter what the rest of the federation
				// is doing (rebalance-free stability).
				if moved := r.Route(k, make([]Load, shards)); moved != got {
					t.Fatalf("hash route %+v depends on loads: %d vs %d", k, got, moved)
				}
			}
			if useWidth && j.Width <= maxProcs && loads[got].Procs < j.Width {
				t.Fatalf("width route %+v picked infeasible shard %d (%d procs) while a feasible shard exists", k, got, loads[got].Procs)
			}
		}

		// Conservation: every job in exactly one part, IDs preserved.
		parts, maxID := partitionJobs(r, clone(loads), jobs)
		if len(parts) != shards {
			t.Fatalf("partition produced %d parts for %d shards", len(parts), shards)
		}
		seen := make(map[int]int, count)
		total := 0
		for p, part := range parts {
			total += len(part)
			for _, j := range part {
				if prev, dup := seen[j.ID]; dup {
					t.Fatalf("job %d in parts %d and %d", j.ID, prev, p)
				}
				seen[j.ID] = p
			}
		}
		if total != count {
			t.Fatalf("partition holds %d jobs, want %d", total, count)
		}
		wantMax := 0
		for _, j := range jobs {
			if _, ok := seen[j.ID]; !ok {
				t.Fatalf("job %d lost by partition", j.ID)
			}
			if j.ID > wantMax {
				wantMax = j.ID
			}
		}
		if maxID != wantMax {
			t.Fatalf("partition reports max ID %d, want %d", maxID, wantMax)
		}

		// Re-partitioning the same jobs from the same starting loads is
		// byte-for-byte the same split.
		parts2, _ := partitionJobs(r, clone(loads), jobs)
		for p := range parts {
			if fmt.Sprint(idsOf(parts[p])) != fmt.Sprint(idsOf(parts2[p])) {
				t.Fatalf("partition not deterministic at part %d", p)
			}
		}
	})
}

func idsOf(jobs []*job.Job) []int {
	ids := make([]int, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID
	}
	return ids
}
