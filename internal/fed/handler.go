package fed

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/serve"
)

// healthResponse mirrors serve's /healthz body field for field (and in
// field order), so a one-shard federation's health probe is byte-identical
// to a standalone daemon's.
type healthResponse struct {
	Status   string `json:"status"`
	Now      int64  `json:"now"`
	Pending  int    `json:"pending"`
	Version  uint64 `json:"version"`
	Draining bool   `json:"draining,omitempty"`
}

// errorResponse mirrors serve's error body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the federation's HTTP API — the same surface a single
// daemon serves, plus the per-shard status listing:
//
//	POST   /v1/jobs       route to a shard, submit  → 201 JobView
//	GET    /v1/jobs/{id}  status + forecast         → 200 JobView
//	DELETE /v1/jobs/{id}  cancel on the owning shard → 204
//	GET    /v1/queue      merged queue listing       → 200 QueueResponse
//	GET    /healthz       merged liveness            → 200 {"status":"ok"}
//	GET    /metrics       Prometheus text format, merged
//	GET    /v1/shards     per-shard state            → 200 [ShardStatus]
//	GET    /v1/shards/{shard}/wal  that shard's journal stream (replication)
//	GET    /v1/shards/{shard}/replication  that shard's leader-side state
//	GET    /v1/debug/routing  read-routing state     → 200 RoutingInfo
//
// With Options.ReadRoute "leader" (the default) every GET renders from
// published snapshots on the HTTP goroutine; no read ever enters a shard's
// scheduler mailbox. With "replica" the snapshot-read endpoints are instead
// served through the per-shard read balancers (readroute.go): proxied to a
// lag-eligible follower when one exists, rendered on the leader otherwise,
// with ?min_seq= barrier reads pinned to a caught-up member.
func (f *Federation) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", f.handleSubmit)
	mux.HandleFunc("DELETE /v1/jobs/{id}", f.handleCancel)
	mux.HandleFunc("GET /v1/shards", f.handleShards)
	mux.HandleFunc("GET /v1/shards/{shard}/wal", f.handleShardWAL)
	mux.HandleFunc("GET /v1/shards/{shard}/replication", f.handleShardReplication)
	mux.HandleFunc("GET /v1/debug/routing", f.handleRouting)
	if f.routeReplica() {
		mux.HandleFunc("GET /v1/jobs/{id}", f.handleStatusRouted)
		mux.HandleFunc("GET /v1/queue", f.handleQueueRouted)
		mux.HandleFunc("GET /healthz", f.handleHealthzRouted)
		mux.HandleFunc("GET /metrics", f.handleMetricsRouted)
	} else {
		mux.HandleFunc("GET /v1/jobs/{id}", f.handleStatus)
		mux.HandleFunc("GET /v1/queue", f.handleQueue)
		mux.HandleFunc("GET /healthz", f.handleHealthz)
		mux.HandleFunc("GET /metrics", f.handleMetrics)
	}
	return mux
}

// walShard is the slice of the Shard surface replication needs; *serve.Server
// implements it, test fakes need not.
type walShard interface {
	ServeWAL(http.ResponseWriter, *http.Request)
}

// replShard is the slice of the Shard surface the per-shard replication
// debug endpoint needs; *serve.Server implements it.
type replShard interface {
	Replication() serve.ReplicationInfo
}

// handleShardReplication exposes each shard leader's replication state
// (registered followers, ack-quorum counters) under
// GET /v1/shards/{shard}/replication — the federated analogue of a
// standalone daemon's /v1/debug/replication, and what the quorum drills
// assert on.
func (f *Federation) handleShardReplication(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || i < 0 || i >= len(f.shards) {
		serve.WriteJSON(w, http.StatusNotFound, errorResponse{Error: "unknown shard " + r.PathValue("shard")})
		return
	}
	rs, ok := f.shards[i].(replShard)
	if !ok {
		serve.WriteJSON(w, http.StatusNotFound, errorResponse{Error: "shard reports no replication state"})
		return
	}
	serve.WriteJSON(w, http.StatusOK, rs.Replication())
}

// handleShardWAL exposes each durable shard's journal stream, so a replica
// set can follow a federation shard by shard: a follower of shard i tails
// GET /v1/shards/i/wal exactly as it would a standalone leader's /v1/wal.
func (f *Federation) handleShardWAL(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || i < 0 || i >= len(f.shards) {
		serve.WriteJSON(w, http.StatusNotFound, errorResponse{Error: "unknown shard " + r.PathValue("shard")})
		return
	}
	ws, ok := f.shards[i].(walShard)
	if !ok {
		serve.WriteJSON(w, http.StatusNotFound, errorResponse{Error: "shard does not ship its journal"})
		return
	}
	ws.ServeWAL(w, r)
}

func (f *Federation) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	v, sh, err := f.submitShard(req)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	writeSeqHeader(w, sh)
	serve.WriteJSON(w, http.StatusCreated, v)
}

// writeSeqHeader mirrors the standalone daemon's header of the same name:
// a successful write response names the owning shard's last durable seq —
// at or past the write's own, since the shard acks after durability — so
// the client can replay it as a ?min_seq= read barrier (on the front end
// or directly on a follower). In-memory shards have no seq and stamp
// nothing, matching a journal-less daemon.
func writeSeqHeader(w http.ResponseWriter, sh serve.Shard) {
	if rs, ok := sh.(replicatedShard); ok {
		if seq := rs.DurableSeq(); seq > 0 {
			w.Header().Set("X-Schedd-Seq", strconv.FormatUint(seq, 10))
		}
	}
}

func (f *Federation) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job id"})
		return
	}
	v, ok := f.Lookup(id)
	if !ok {
		serve.WriteJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + strconv.Itoa(id)})
		return
	}
	serve.WriteJSON(w, http.StatusOK, v)
}

func (f *Federation) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job id"})
		return
	}
	sh, cErr := f.cancelShard(id)
	if cErr != nil {
		serve.WriteError(w, cErr)
		return
	}
	writeSeqHeader(w, sh)
	w.WriteHeader(http.StatusNoContent)
}

func (f *Federation) handleQueue(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, f.Queue())
}

func (f *Federation) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var hr healthResponse
	if len(f.shards) == 1 {
		snap := f.shards[0].Current()
		hr = healthResponse{Status: "ok", Now: snap.Now, Pending: snap.Pending,
			Version: snap.Version, Draining: snap.Draining}
	} else {
		snap := f.MergedSnapshot()
		hr = healthResponse{Status: "ok", Now: snap.Now, Pending: snap.Pending,
			Version: snap.Version, Draining: snap.Draining}
	}
	serve.WriteJSON(w, http.StatusOK, hr)
}

func (f *Federation) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	serve.WriteMetrics(w, f.MergedSnapshot())
}

func (f *Federation) handleShards(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, f.Status())
}

// handleRouting serves GET /v1/debug/routing: the active read-route mode
// and, under replica routing, every shard balancer's follower table and
// proxy/ejection counters — the payload the failure drills assert on.
func (f *Federation) handleRouting(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, f.Routing())
}

// minSeq parses the ?min_seq= read-barrier floor, answering 400 (and
// returning ok=false) on a malformed value. Absent means 0: no barrier.
func (f *Federation) minSeq(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	ms := r.URL.Query().Get("min_seq")
	if ms == "" {
		return 0, true
	}
	min, err := strconv.ParseUint(ms, 10, 64)
	if err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad min_seq"})
		return 0, false
	}
	return min, true
}

// leaderSeq returns shard i's durable journal position (0 when the shard
// journals nothing — an in-memory federation has no sequence space, so
// every positive barrier on it times out by design).
func (f *Federation) leaderSeq(i int) uint64 {
	if rs, ok := f.shards[i].(replicatedShard); ok {
		return rs.DurableSeq()
	}
	return 0
}

// maxLeaderSeq is the highest durable position across the shards, the
// barrier authority for reads that resolve to no single shard (an unknown
// job ID).
func (f *Federation) maxLeaderSeq() uint64 {
	var max uint64
	for i := range f.shards {
		if s := f.leaderSeq(i); s > max {
			max = s
		}
	}
	return max
}

// writeBarrierTimeout is the federation's 504 Gateway Timeout: the barrier
// asked for state no eligible follower has applied and the leader itself
// has not journaled — the requested sequence does not exist on any member
// this front end can reach.
func (f *Federation) writeBarrierTimeout(w http.ResponseWriter, leaderSeq, min uint64) {
	serve.WriteJSON(w, http.StatusGatewayTimeout, errorResponse{Error: fmt.Sprintf(
		"fed: no member has applied min_seq %d (leader durable seq %d)", min, leaderSeq)})
}

// handleStatusRouted is handleStatus under replica routing: the owning
// shard's balancer proxies the lookup to one of that shard's followers
// (barrier-pinned when ?min_seq= is set), falling back to the leader's
// local snapshot render when no follower qualifies or the proxy fails.
func (f *Federation) handleStatusRouted(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job id"})
		return
	}
	min, ok := f.minSeq(w, r)
	if !ok {
		return
	}
	sh, i, found := f.ownerIdx(id)
	if !found {
		// No shard owns the ID. The leaders are jointly authoritative for
		// "unknown job" — unless the barrier names a future sequence none
		// of them has journaled yet.
		if max := f.maxLeaderSeq(); min > max {
			f.writeBarrierTimeout(w, max, min)
			return
		}
		serve.WriteJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + strconv.Itoa(id)})
		return
	}
	b := f.balancers[i]
	if addr, picked := b.Pick(min); picked && b.proxyRead(w, r, addr) {
		return
	}
	if seq := f.leaderSeq(i); min > seq {
		f.writeBarrierTimeout(w, seq, min)
		return
	}
	if v, ok := sh.Lookup(id); ok {
		serve.WriteJSON(w, http.StatusOK, v)
		return
	}
	serve.WriteJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + strconv.Itoa(id)})
}

// handleQueueRouted is handleQueue under replica routing. A single-shard
// federation proxies the whole request to one follower (byte-identity with
// the leader render is pinned by the equivalence suite); a multi-shard one
// folds per-shard queue listings — each fetched from a follower when one
// is eligible, rendered on the leader otherwise — through the same merge
// the leader-mode gather uses. QueueResponse is JSON-roundtrip-lossless,
// so a folded body is byte-identical to an all-leader merge at equal
// applied state.
func (f *Federation) handleQueueRouted(w http.ResponseWriter, r *http.Request) {
	min, ok := f.minSeq(w, r)
	if !ok {
		return
	}
	if len(f.shards) == 1 {
		b := f.balancers[0]
		if addr, picked := b.Pick(min); picked && b.proxyRead(w, r, addr) {
			return
		}
		if seq := f.leaderSeq(0); min > seq {
			f.writeBarrierTimeout(w, seq, min)
			return
		}
		serve.WriteJSON(w, http.StatusOK, f.shards[0].Queue())
		return
	}
	// Merged reads never 504 on the barrier: the per-shard leader fallback
	// is its own authority, and min_seq on a merged endpoint is a
	// follower-selection floor, not a cross-shard ordering claim (sequence
	// spaces are per shard — see OPERATIONS.md).
	parts := make([]serve.QueueResponse, len(f.shards))
	for i, sh := range f.shards {
		b := f.balancers[i]
		if addr, picked := b.Pick(min); picked {
			var qr serve.QueueResponse
			if b.fetchJSON(addr+"/v1/queue", &qr) {
				parts[i] = qr
				continue
			}
		}
		parts[i] = sh.Queue()
	}
	serve.WriteJSON(w, http.StatusOK, mergeQueues(parts))
}

// handleHealthzRouted is handleHealthz under replica routing, with the
// same single-shard whole-proxy / multi-shard fold split as the queue.
func (f *Federation) handleHealthzRouted(w http.ResponseWriter, r *http.Request) {
	min, ok := f.minSeq(w, r)
	if !ok {
		return
	}
	if len(f.shards) == 1 {
		b := f.balancers[0]
		if addr, picked := b.Pick(min); picked && b.proxyRead(w, r, addr) {
			return
		}
		if seq := f.leaderSeq(0); min > seq {
			f.writeBarrierTimeout(w, seq, min)
			return
		}
		f.handleHealthz(w, r)
		return
	}
	out := healthResponse{Status: "ok"}
	for i, sh := range f.shards {
		b := f.balancers[i]
		var hr healthResponse
		got := false
		if addr, picked := b.Pick(min); picked {
			got = b.fetchJSON(addr+"/healthz", &hr)
		}
		if !got {
			snap := sh.Current()
			hr = healthResponse{Status: "ok", Now: snap.Now, Pending: snap.Pending,
				Version: snap.Version, Draining: snap.Draining}
		}
		out.Version += hr.Version
		if hr.Now > out.Now {
			out.Now = hr.Now
		}
		out.Pending += hr.Pending
		out.Draining = out.Draining || hr.Draining
	}
	serve.WriteJSON(w, http.StatusOK, out)
}

// handleMetricsRouted is handleMetrics under replica routing. Only a
// single-shard federation proxies /metrics to a follower (the proxy header
// makes the replica serve the leader-shaped body, without its own gauge
// suffix). A merged /metrics renders from the leaders' raw snapshot
// integrals — busy areas and per-category slowdown sums the Prometheus
// text format does not carry — so it cannot be folded from follower
// bodies and stays leader-rendered (see DESIGN.md §14).
func (f *Federation) handleMetricsRouted(w http.ResponseWriter, r *http.Request) {
	min, ok := f.minSeq(w, r)
	if !ok {
		return
	}
	if len(f.shards) == 1 {
		b := f.balancers[0]
		if addr, picked := b.Pick(min); picked && b.proxyRead(w, r, addr) {
			return
		}
		if seq := f.leaderSeq(0); min > seq {
			f.writeBarrierTimeout(w, seq, min)
			return
		}
	}
	f.handleMetrics(w, r)
}
