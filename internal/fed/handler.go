package fed

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/serve"
)

// healthResponse mirrors serve's /healthz body field for field (and in
// field order), so a one-shard federation's health probe is byte-identical
// to a standalone daemon's.
type healthResponse struct {
	Status   string `json:"status"`
	Now      int64  `json:"now"`
	Pending  int    `json:"pending"`
	Version  uint64 `json:"version"`
	Draining bool   `json:"draining,omitempty"`
}

// errorResponse mirrors serve's error body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the federation's HTTP API — the same surface a single
// daemon serves, plus the per-shard status listing:
//
//	POST   /v1/jobs       route to a shard, submit  → 201 JobView
//	GET    /v1/jobs/{id}  status + forecast         → 200 JobView
//	DELETE /v1/jobs/{id}  cancel on the owning shard → 204
//	GET    /v1/queue      merged queue listing       → 200 QueueResponse
//	GET    /healthz       merged liveness            → 200 {"status":"ok"}
//	GET    /metrics       Prometheus text format, merged
//	GET    /v1/shards     per-shard state            → 200 [ShardStatus]
//	GET    /v1/shards/{shard}/wal  that shard's journal stream (replication)
//
// Every GET renders from published snapshots on the HTTP goroutine; no
// read ever enters a shard's scheduler mailbox.
func (f *Federation) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", f.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", f.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", f.handleCancel)
	mux.HandleFunc("GET /v1/queue", f.handleQueue)
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.HandleFunc("GET /v1/shards", f.handleShards)
	mux.HandleFunc("GET /v1/shards/{shard}/wal", f.handleShardWAL)
	return mux
}

// walShard is the slice of the Shard surface replication needs; *serve.Server
// implements it, test fakes need not.
type walShard interface {
	ServeWAL(http.ResponseWriter, *http.Request)
}

// handleShardWAL exposes each durable shard's journal stream, so a replica
// set can follow a federation shard by shard: a follower of shard i tails
// GET /v1/shards/i/wal exactly as it would a standalone leader's /v1/wal.
func (f *Federation) handleShardWAL(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil || i < 0 || i >= len(f.shards) {
		serve.WriteJSON(w, http.StatusNotFound, errorResponse{Error: "unknown shard " + r.PathValue("shard")})
		return
	}
	ws, ok := f.shards[i].(walShard)
	if !ok {
		serve.WriteJSON(w, http.StatusNotFound, errorResponse{Error: "shard does not ship its journal"})
		return
	}
	ws.ServeWAL(w, r)
}

func (f *Federation) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	v, err := f.Submit(req)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	serve.WriteJSON(w, http.StatusCreated, v)
}

func (f *Federation) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job id"})
		return
	}
	v, ok := f.Lookup(id)
	if !ok {
		serve.WriteJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + strconv.Itoa(id)})
		return
	}
	serve.WriteJSON(w, http.StatusOK, v)
}

func (f *Federation) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		serve.WriteJSON(w, http.StatusBadRequest, errorResponse{Error: "bad job id"})
		return
	}
	if _, cErr := f.Cancel(id); cErr != nil {
		serve.WriteError(w, cErr)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (f *Federation) handleQueue(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, f.Queue())
}

func (f *Federation) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var hr healthResponse
	if len(f.shards) == 1 {
		snap := f.shards[0].Current()
		hr = healthResponse{Status: "ok", Now: snap.Now, Pending: snap.Pending,
			Version: snap.Version, Draining: snap.Draining}
	} else {
		snap := f.MergedSnapshot()
		hr = healthResponse{Status: "ok", Now: snap.Now, Pending: snap.Pending,
			Version: snap.Version, Draining: snap.Draining}
	}
	serve.WriteJSON(w, http.StatusOK, hr)
}

func (f *Federation) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	serve.WriteMetrics(w, f.MergedSnapshot())
}

func (f *Federation) handleShards(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, http.StatusOK, f.Status())
}
