package fed

// Replay equivalence: the proof that the federation layer adds zero
// distortion. A one-shard federation must render byte-identical responses
// to a bare serve.Server for the same request stream — not "equivalent",
// identical bytes, pinned both on a live standing queue (forecasts
// attached) and after a full trace drain. An N-shard federation cannot be
// byte-identical to one big cluster (it IS N small ones), so there the
// suite bounds the distortion instead: per-category mean bounded slowdown
// of a width-routed federation must stay within a constant factor of
// dedicated per-stream clusters of the same size.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/serve"
	"repro/internal/workload"
)

// body issues one request against a handler and returns status and body.
func body(t *testing.T, h http.Handler, method, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec.Code, rec.Body.String()
}

// sdscJobs generates the standard equivalence workload.
func sdscJobs(t *testing.T, n int, seed int64) ([]*job.Job, int) {
	t.Helper()
	m, err := workload.NewSDSC(0.9)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return workload.ApplyEstimates(raw, workload.Actual{}, seed+1), m.Procs
}

// drain polls until nothing is pending on the handler's health endpoint.
func drain(t *testing.T, h http.Handler) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var hz struct {
			Pending int `json:"pending"`
		}
		if rec := doJSON(t, h, "GET", "/healthz", nil, &hz); rec.Code != 200 {
			t.Fatalf("healthz: %d", rec.Code)
		}
		if hz.Pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replay did not drain")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFedSingleShardByteIdentical is the identity half of the equivalence
// suite: every read endpoint of a 1-shard federation must render the same
// bytes as a standalone server fed the same mutations, both mid-flight
// with a standing queue and after a max-speed trace drain.
func TestFedSingleShardByteIdentical(t *testing.T) {
	t.Run("standing-queue", func(t *testing.T) {
		opts := serve.Options{Procs: 16, Scheduler: "easy", Policy: "FCFS", Audit: true, Speed: 1e-9}
		srv, err := serve.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		f, stop := frozenFed(t, Options{Shards: 1, Shard: opts})
		defer stop()
		scancel := startServe(t, srv)
		defer scancel()

		for i := 0; i < 20; i++ {
			req := serve.SubmitRequest{Width: 1 + (i*3)%16, Runtime: int64(100 + 50*i), User: i % 4}
			var a, b serve.JobView
			ra := doJSON(t, srv.Handler(), "POST", "/v1/jobs", req, &a)
			rb := doJSON(t, f.Handler(), "POST", "/v1/jobs", req, &b)
			if ra.Code != rb.Code || ra.Body.String() != rb.Body.String() {
				t.Fatalf("submit %d diverged:\nserver: %d %s\nfed:    %d %s", i, ra.Code, ra.Body.String(), rb.Code, rb.Body.String())
			}
		}
		// One cancel, one error-path probe, then compare every read.
		for _, req := range [][2]string{{"DELETE", "/v1/jobs/7"}, {"DELETE", "/v1/jobs/99999"}} {
			ca, ba := body(t, srv.Handler(), req[0], req[1])
			cb, bb := body(t, f.Handler(), req[0], req[1])
			if ca != cb || ba != bb {
				t.Fatalf("%s %s diverged: %d %q vs %d %q", req[0], req[1], ca, ba, cb, bb)
			}
		}
		compareReads(t, srv.Handler(), f.Handler(), 20)
	})

	t.Run("trace-drain", func(t *testing.T) {
		jobs, procs := sdscJobs(t, 200, 3)
		opts := serve.Options{Procs: procs, Scheduler: "easy", Policy: "FCFS", Audit: true, Speed: -1}

		srv, err := serve.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Preload(jobs); err != nil {
			t.Fatal(err)
		}
		f, err := New(Options{Shards: 1, Shard: opts})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Preload(jobs); err != nil {
			t.Fatal(err)
		}
		scancel := startServe(t, srv)
		defer scancel()
		fstop := startFedRun(t, f)
		defer fstop()

		drain(t, srv.Handler())
		drain(t, f.Handler())
		compareReads(t, srv.Handler(), f.Handler(), len(jobs))
	})
}

// compareReads asserts byte-identity across the whole read surface.
func compareReads(t *testing.T, a, b http.Handler, jobs int) {
	t.Helper()
	paths := []string{"/v1/queue", "/metrics", "/healthz", "/v1/jobs/99999", "/v1/jobs/notanid"}
	for id := 1; id <= jobs; id++ {
		paths = append(paths, fmt.Sprintf("/v1/jobs/%d", id))
	}
	for _, p := range paths {
		ca, ba := body(t, a, "GET", p)
		cb, bb := body(t, b, "GET", p)
		if ca != cb {
			t.Fatalf("GET %s: status %d vs %d", p, ca, cb)
		}
		if ba != bb {
			t.Fatalf("GET %s diverged:\nserver: %s\nfed:    %s", p, ba, bb)
		}
	}
}

// startServe runs a bare server in the background.
func startServe(t *testing.T, s *serve.Server) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	return func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("server did not stop")
		}
		s.Close()
	}
}

// startFedRun runs a prebuilt federation in the background.
func startFedRun(t *testing.T, f *Federation) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	return func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("federation did not stop")
		}
		f.Close()
	}
}

// TestFedShardedSlowdownBounded is the N-shard half: four independent SDSC
// streams through a width-routed 4-shard federation must land within a
// constant factor of the same four streams on four dedicated clusters of
// the same size. The paper's per-category mean bounded slowdowns are the
// yardstick: sharding may cost some backfill flexibility at the split
// points, but it must not change the performance regime of any category.
func TestFedShardedSlowdownBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trace drain")
	}
	const shards = 4
	streams := make([][]*job.Job, shards)
	var procs int
	for s := range streams {
		jobs, p := sdscJobs(t, 150, int64(11+s))
		procs = p
		// Relabel IDs and users so the four streams are disjoint: IDs into
		// per-stream ranges, users into per-stream blocks.
		for _, j := range jobs {
			j.ID += s * 1000
			j.User += s * 500
		}
		streams[s] = jobs
	}

	// Baseline: each stream on its own dedicated cluster.
	var baseSum [job.NumCategories]float64
	var baseN [job.NumCategories]int64
	for s, jobs := range streams {
		srv, err := serve.New(serve.Options{Procs: procs, Scheduler: "easy", Policy: "FCFS", Audit: true, Speed: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Preload(jobs); err != nil {
			t.Fatalf("stream %d: %v", s, err)
		}
		scancel := startServe(t, srv)
		drain(t, srv.Handler())
		snap := srv.Current()
		for c := job.Category(0); c < job.NumCategories; c++ {
			baseSum[c] += snap.CatSum[c]
			baseN[c] += snap.CatN[c]
		}
		scancel()
	}

	// Federation: all four streams through the width router.
	merged := make([]*job.Job, 0, 4*150)
	for _, jobs := range streams {
		merged = append(merged, jobs...)
	}
	f, err := New(Options{Shards: shards, Route: "width", Shard: serve.Options{Procs: procs, Scheduler: "easy", Policy: "FCFS", Audit: true, Speed: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Preload(merged); err != nil {
		t.Fatal(err)
	}
	fstop := startFedRun(t, f)
	drain(t, f.Handler())
	snap := f.MergedSnapshot()
	if got := snap.Completed + snap.Cancelled; got != int64(len(merged)) {
		t.Fatalf("federation finished %d of %d jobs", got, len(merged))
	}
	fstop()

	for c := job.Category(0); c < job.NumCategories; c++ {
		if baseN[c] == 0 || snap.CatN[c] == 0 {
			continue
		}
		base := baseSum[c] / float64(baseN[c])
		fedMean := snap.CatSum[c] / float64(snap.CatN[c])
		// Routing cannot see future arrivals, so the federation's split is
		// coarser than four dedicated clusters; allow a generous constant
		// factor plus an additive floor for near-1 slowdowns.
		if fedMean > base*3+10 {
			t.Errorf("category %s: federation mean slowdown %.2f vs dedicated %.2f (bound 3x+10)", c, fedMean, base)
		}
	}
}
