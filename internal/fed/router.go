package fed

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/job"
	"repro/internal/serve"
)

// Key is the routing view of one job-to-be: everything a placement policy
// may consult before the job exists anywhere. Routers must be pure
// functions of (Key, loads) — the fuzz harness holds them to that.
type Key struct {
	// User identifies the submitting user; the hash policy keys on it so
	// one user's jobs share a shard (queue affinity, deterministic
	// placement).
	User int
	// Width is the requested processor count; the width policy refuses to
	// place a job on a shard it cannot fit.
	Width int
	// Estimate is the user's runtime estimate, the work term in the
	// width policy's load score.
	Estimate int64
}

// KeyOf builds the routing key for a concrete job (trace preload path).
func KeyOf(j *job.Job) Key {
	return Key{User: j.User, Width: j.Width, Estimate: j.Estimate}
}

// Load is one shard's routing-relevant load, read from its lock-free
// snapshot (live path) or accumulated by the partitioner (preload path).
type Load struct {
	// Procs is the shard's machine size.
	Procs int
	// Busy is the processors currently running jobs.
	Busy int
	// QueuedWork is Σ width·estimate over the shard's waiting jobs, in
	// processor·seconds — the backlog the shard still has to place.
	QueuedWork int64
}

// loadOf derives the routing load from a shard snapshot. FQueued is the
// snapshot's captured queue (the forecast inputs), so the work sum sees
// exactly the jobs a forecast at this version would plan.
func loadOf(snap *serve.Snapshot) Load {
	ld := Load{Procs: snap.Procs, Busy: snap.ProcsBusy}
	for _, j := range snap.FQueued {
		ld.QueuedWork += int64(j.Width) * j.Estimate
	}
	return ld
}

// Router picks the destination shard for one job. Implementations must be
// deterministic in their inputs and must return an index in [0, len(loads)).
type Router interface {
	Name() string
	Route(k Key, loads []Load) int
}

// RouterByName builds the routing policy for a federation of n shards:
// "hash" (consistent hashing by user) or "width" (width-aware
// least-loaded).
func RouterByName(name string, n int) (Router, error) {
	switch name {
	case "", "hash":
		return newHashRouter(n), nil
	case "width":
		return widthRouter{}, nil
	default:
		return nil, fmt.Errorf("fed: unknown routing policy %q (have hash, width)", name)
	}
}

// hash64 is FNV-1a over s — stable across processes and Go versions, which
// the replay-equivalence suite relies on.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// hashRouter places by consistent hashing on the user: each shard owns
// ringReplicas pseudo-random points on a 64-bit ring, and a key goes to the
// shard owning the first point at or clockwise of the key's hash. Identical
// keys always land identically, placement is independent of submission
// history, and growing the federation from N to N+1 shards remaps only the
// keys falling into the new shard's arcs (~1/(N+1) of them) instead of
// reshuffling everything, so a resharded cluster keeps most users' queue
// affinity.
type hashRouter struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// ringReplicas is the virtual-node count per shard. 64 points per shard
// keeps the largest arc within a few percent of fair for the shard counts
// the daemon runs (≤ 64) while the ring stays small enough to search in a
// handful of cache lines.
const ringReplicas = 64

func newHashRouter(n int) *hashRouter {
	pts := make([]ringPoint, 0, n*ringReplicas)
	for i := 0; i < n; i++ {
		for r := 0; r < ringReplicas; r++ {
			pts = append(pts, ringPoint{hash: hash64(fmt.Sprintf("shard-%d-vnode-%d", i, r)), shard: i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].hash != pts[b].hash {
			return pts[a].hash < pts[b].hash
		}
		return pts[a].shard < pts[b].shard // full determinism even on a 64-bit collision
	})
	return &hashRouter{points: pts}
}

func (h *hashRouter) Name() string { return "hash" }

func (h *hashRouter) Route(k Key, _ []Load) int {
	x := hash64(fmt.Sprintf("user-%d", k.User))
	i := sort.Search(len(h.points), func(i int) bool { return h.points[i].hash >= x })
	if i == len(h.points) {
		i = 0 // wrap: the first point owns the arc past the last one
	}
	return h.points[i].shard
}

// widthRouter places each job on the least-loaded shard that can fit it:
// among shards with Procs ≥ Width, the one with the smallest backlog per
// processor (QueuedWork/Procs, ties broken by busy fraction, then by the
// key's hash so a cold federation spreads instead of piling onto shard 0).
// When no shard can fit the job, it goes to the widest shard, whose
// scheduler rejects it with the same 400 a single cluster of that size
// would give.
type widthRouter struct{}

func (widthRouter) Name() string { return "width" }

func (widthRouter) Route(k Key, loads []Load) int {
	feasible := make([]int, 0, len(loads))
	for i, ld := range loads {
		if ld.Procs >= k.Width {
			feasible = append(feasible, i)
		}
	}
	if len(feasible) == 0 {
		widest := 0
		for i, ld := range loads {
			if ld.Procs > loads[widest].Procs {
				widest = i
			}
		}
		return widest
	}
	best := feasible[0]
	for _, i := range feasible[1:] {
		if widthLess(loads[i], loads[best]) {
			best = i
		}
	}
	// Break exact ties by key hash over the tied shards: deterministic for
	// identical keys, but different users fan out instead of all landing on
	// the lowest index while every shard is equally idle.
	tied := feasible[:0]
	for _, i := range feasible {
		if !widthLess(loads[best], loads[i]) && !widthLess(loads[i], loads[best]) {
			tied = append(tied, i)
		}
	}
	if len(tied) > 1 {
		return tied[hash64(fmt.Sprintf("user-%d", k.User))%uint64(len(tied))]
	}
	return best
}

// widthLess orders shard loads: smaller backlog per processor first, then
// smaller busy fraction.
func widthLess(a, b Load) bool {
	// QueuedWork/Procs compared cross-multiplied to stay in integers.
	qa, qb := a.QueuedWork*int64(b.Procs), b.QueuedWork*int64(a.Procs)
	if qa != qb {
		return qa < qb
	}
	return a.Busy*b.Procs < b.Busy*a.Procs
}
