package fed

// Race/stress layer: the federation's read surface hammered from many
// goroutines while every shard replays a trace at full speed. Run under
// -race (make fed-race, the fed-race CI job) this proves the scatter-gather
// path shares no unsynchronized state with the shard write loops; the
// assertions prove the merge's ordering contract — per-shard versions only
// grow, the merged version only grows, and gathering never wedges a shard's
// drain.

import (
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestFedConcurrentReadStress(t *testing.T) {
	const shards = 4
	jobs, procs := sdscJobs(t, 400, 5)
	f, err := New(Options{Shards: shards, Route: "width", Shard: serve.Options{Procs: procs, Scheduler: "easy", Policy: "FCFS", Audit: true, Speed: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Preload(jobs); err != nil {
		t.Fatal(err)
	}
	stop := startFedRun(t, f)

	var (
		wg      sync.WaitGroup
		halt    atomic.Bool
		gathers atomic.Int64
	)
	fail := make(chan string, 16)
	h := f.Handler()

	// Per-shard version monotonicity, observed through the status gather.
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := make([]uint64, shards)
		for !halt.Load() {
			rows := f.Status()
			for i, r := range rows {
				if r.Shard != i {
					select {
					case fail <- "status rows out of shard order":
					default:
					}
					return
				}
				if r.Version < last[i] {
					select {
					case fail <- "per-shard version went backwards":
					default:
					}
					return
				}
				last[i] = r.Version
			}
			gathers.Add(1)
		}
	}()

	// Merged version monotonicity through the queue endpoint.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for !halt.Load() {
			q := f.Queue()
			if q.Version < last {
				select {
				case fail <- "merged version went backwards":
				default:
				}
				return
			}
			last = q.Version
			gathers.Add(1)
		}
	}()

	// HTTP readers: the endpoints a dashboard would poll during a drain.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/v1/queue", "/metrics", "/healthz", "/v1/shards"}
			for i := 0; !halt.Load(); i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", paths[i%len(paths)], nil))
				if rec.Code != 200 {
					select {
					case fail <- "read endpoint failed mid-drain: " + rec.Body.String():
					default:
					}
					return
				}
				gathers.Add(1)
			}
		}()
	}

	// MergedSnapshot consistency: capacity is constant, counters only grow.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastDone int64
		for !halt.Load() {
			snap := f.MergedSnapshot()
			if snap.Procs != shards*procs {
				select {
				case fail <- "merged capacity changed mid-run":
				default:
				}
				return
			}
			if snap.Completed < lastDone {
				select {
				case fail <- "merged completed counter went backwards":
				default:
				}
				return
			}
			lastDone = snap.Completed
			gathers.Add(1)
		}
	}()

	// The replay must drain while the readers hammer: if a gather could
	// block a shard's write loop, this times out instead of finishing.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if f.MergedSnapshot().Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			halt.Store(true)
			wg.Wait()
			t.Fatal("replay did not drain under read load")
		}
		time.Sleep(5 * time.Millisecond)
	}
	halt.Store(true)
	wg.Wait()
	close(fail)
	if msg, ok := <-fail; ok {
		t.Fatal(msg)
	}

	snap := f.MergedSnapshot()
	if got := snap.Completed + snap.Cancelled; got != int64(len(jobs)) {
		t.Fatalf("drained %d of %d jobs", got, len(jobs))
	}
	if snap.AuditViolations != 0 {
		t.Fatalf("audit violations: %d", snap.AuditViolations)
	}
	if gathers.Load() == 0 {
		t.Fatal("stress readers never completed a gather")
	}
	stop()
}
