package fed

// Replica-aware read routing. When Options.ReadRoute is "replica", the
// federation spreads GET traffic across each shard leader's registered
// followers instead of rendering every read from the leader's snapshot:
// a per-shard ReadBalancer consumes the leader's lock-free follower views
// (registration id, advertised read URL, durably-acked journal seq, last
// poll time) and round-robins eligible followers, proxying the whole
// request to the chosen follower's own HTTP surface. A follower is
// eligible only while it advertises a read address, its registration is
// TTL-live, and its replication lag (leader durable seq minus acked seq)
// is within Options.MaxLagOps; crossing the bound ejects it from rotation
// and catching back up readmits it, with both transitions counted for the
// operator surface. Barrier reads (?min_seq=N) additionally pin the pick
// to a follower that has acked ≥ N — or to the leader, which is always
// its own authority — so replica routing never weakens read-your-writes.
// Every routed endpoint falls back to the leader's local rendering when
// no follower qualifies or the proxy round-trip fails, so the worst case
// of replica routing is exactly leader-only service.

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// DefaultMaxLagOps is the follower staleness bound applied when
// Options.MaxLagOps is zero: followers more than this many journal
// records behind the leader's durable position are ejected from read
// rotation until they catch back up.
const DefaultMaxLagOps = 1024

// proxyTimeout bounds one proxied read round-trip to a follower. A
// follower that cannot answer within it costs the client one fallback to
// the leader, never an error.
const proxyTimeout = 5 * time.Second

// replicatedShard is the slice of the shard surface read routing needs;
// *serve.Server implements it, test fakes need not (a shard without it
// simply never routes to followers).
type replicatedShard interface {
	// FollowerViews returns the shard leader's registered followers as an
	// immutable, ID-sorted slice (lock-free snapshot).
	FollowerViews() []serve.FollowerView
	// DurableSeq returns the leader's last durable journal sequence.
	DurableSeq() uint64
}

// ReadBalancer routes one shard's reads across that shard's registered
// followers. All methods are safe for concurrent use from HTTP goroutines;
// the hot path (Pick) loads the leader's published follower views and
// never takes the shard's locks.
type ReadBalancer struct {
	shard  replicatedShard // nil when the shard exposes no follower registry
	maxLag uint64
	rr     atomic.Uint64 // round-robin cursor across eligible followers

	proxied   atomic.Int64 // reads served by a follower
	fallbacks atomic.Int64 // proxy attempts that fell back to the leader

	mu           sync.Mutex
	inRotation   map[string]bool // follower ID → last observed eligibility
	ejections    atomic.Int64    // eligible → ineligible transitions observed
	readmissions atomic.Int64    // ineligible → eligible transitions observed
}

// newReadBalancer builds one shard's balancer. Shards that do not expose a
// follower registry (test fakes) get a balancer that always answers "use
// the leader".
func newReadBalancer(sh serve.Shard, maxLag uint64) *ReadBalancer {
	b := &ReadBalancer{maxLag: maxLag, inRotation: make(map[string]bool)}
	if rs, ok := sh.(replicatedShard); ok {
		b.shard = rs
	}
	return b
}

// eligibleAt reports whether one follower view may serve plain (non-barrier)
// reads at the given leader position and wall time: it must advertise a
// read address, be TTL-live, and lag the leader by at most maxLag records.
func eligibleAt(v serve.FollowerView, leaderSeq uint64, now time.Time, maxLag uint64) bool {
	if v.Addr == "" || now.Sub(v.LastSeen) > serve.FollowerTTL {
		return false
	}
	var lag uint64
	if leaderSeq > v.Acked {
		lag = leaderSeq - v.Acked
	}
	return lag <= maxLag
}

// pickFrom is the pure selection function behind Pick, fuzzed directly:
// given the follower views, the leader's durable seq, the wall clock, a
// barrier floor (0 for plain reads), a round-robin cursor, and the lag
// bound, it returns the index of the follower to route to, or -1 for
// "serve from the leader". It is deterministic in its arguments and never
// returns a follower that is lag-ejected, TTL-expired, unadvertised, or
// behind the barrier floor.
func pickFrom(views []serve.FollowerView, leaderSeq uint64, now time.Time, minSeq, rr, maxLag uint64) int {
	eligible := make([]int, 0, len(views))
	for i, v := range views {
		if !eligibleAt(v, leaderSeq, now, maxLag) {
			continue
		}
		if v.Acked < minSeq {
			continue
		}
		eligible = append(eligible, i)
	}
	if len(eligible) == 0 {
		return -1
	}
	return eligible[rr%uint64(len(eligible))]
}

// Pick chooses the follower to serve the next read, or reports ok=false
// when the read should render on the leader (no registry, no eligible
// follower, or none has acked minSeq). It also advances the shard's
// ejection/readmission accounting from the freshly observed views.
func (b *ReadBalancer) Pick(minSeq uint64) (addr string, ok bool) {
	if b.shard == nil {
		return "", false
	}
	views := b.shard.FollowerViews()
	leaderSeq := b.shard.DurableSeq()
	now := time.Now()
	b.observe(views, leaderSeq, now)
	i := pickFrom(views, leaderSeq, now, minSeq, b.rr.Add(1)-1, b.maxLag)
	if i < 0 {
		return "", false
	}
	return views[i].Addr, true
}

// observe diffs the current views against the last observed rotation state
// and counts ejections (a follower that was serving reads crossed the lag
// bound, expired, or dropped its address) and readmissions (it qualified
// again). Followers that vanish from the registry entirely count as
// ejected once.
func (b *ReadBalancer) observe(views []serve.FollowerView, leaderSeq uint64, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := make(map[string]bool, len(views))
	for _, v := range views {
		el := eligibleAt(v, leaderSeq, now, b.maxLag)
		seen[v.ID] = true
		was, known := b.inRotation[v.ID]
		switch {
		case el && (!known || !was):
			if known {
				b.readmissions.Add(1)
			}
			b.inRotation[v.ID] = true
		case !el && known && was:
			b.ejections.Add(1)
			b.inRotation[v.ID] = false
		case !known:
			b.inRotation[v.ID] = false
		}
	}
	for id, was := range b.inRotation {
		if !seen[id] {
			if was {
				b.ejections.Add(1)
			}
			delete(b.inRotation, id)
		}
	}
}

// FollowerRouteStatus is one follower's row in the routing debug payload.
type FollowerRouteStatus struct {
	// ID is the follower's registration name.
	ID string `json:"id"`
	// Addr is the advertised read URL (empty = replicates, serves nothing).
	Addr string `json:"addr,omitempty"`
	// AckedSeq is the last journal seq the follower durably applied.
	AckedSeq uint64 `json:"acked_seq"`
	// LagOps is the leader's durable seq minus AckedSeq (0 if caught up).
	LagOps uint64 `json:"lag_ops"`
	// AgeSec is the wall-clock age of the follower's latest poll.
	AgeSec float64 `json:"age_sec"`
	// Eligible reports whether the follower is currently in read rotation.
	Eligible bool `json:"eligible"`
}

// RouteStatus is one shard's row of GET /v1/debug/routing: the balancer's
// live view of its followers plus the routing counters the failure drills
// assert on.
type RouteStatus struct {
	// Shard is the shard index the row describes.
	Shard int `json:"shard"`
	// LeaderSeq is the shard leader's last durable journal seq.
	LeaderSeq uint64 `json:"leader_seq"`
	// MaxLagOps is the staleness bound this balancer ejects at.
	MaxLagOps uint64 `json:"max_lag_ops"`
	// Proxied counts reads served by a follower.
	Proxied int64 `json:"proxied"`
	// Fallbacks counts proxy attempts that fell back to the leader.
	Fallbacks int64 `json:"fallbacks"`
	// Ejections counts eligible→ineligible transitions observed.
	Ejections int64 `json:"ejections"`
	// Readmissions counts ineligible→eligible transitions observed.
	Readmissions int64 `json:"readmissions"`
	// Followers lists the shard's registered followers in ID order.
	Followers []FollowerRouteStatus `json:"followers,omitempty"`
}

// Status renders the balancer's debug row.
func (b *ReadBalancer) Status(shard int) RouteStatus {
	st := RouteStatus{
		Shard:        shard,
		MaxLagOps:    b.maxLag,
		Proxied:      b.proxied.Load(),
		Fallbacks:    b.fallbacks.Load(),
		Ejections:    b.ejections.Load(),
		Readmissions: b.readmissions.Load(),
	}
	if b.shard == nil {
		return st
	}
	views := b.shard.FollowerViews()
	leaderSeq := b.shard.DurableSeq()
	now := time.Now()
	b.observe(views, leaderSeq, now)
	st.LeaderSeq = leaderSeq
	st.Ejections = b.ejections.Load()
	st.Readmissions = b.readmissions.Load()
	for _, v := range views {
		var lag uint64
		if leaderSeq > v.Acked {
			lag = leaderSeq - v.Acked
		}
		st.Followers = append(st.Followers, FollowerRouteStatus{
			ID:       v.ID,
			Addr:     v.Addr,
			AckedSeq: v.Acked,
			LagOps:   lag,
			AgeSec:   now.Sub(v.LastSeen).Seconds(),
			Eligible: eligibleAt(v, leaderSeq, now, b.maxLag),
		})
	}
	return st
}

// routeReplica reports whether replica read routing is active.
func (f *Federation) routeReplica() bool { return len(f.balancers) > 0 }

// RouteStatus reports every shard balancer's state in shard order, nil
// when read routing is "leader".
func (f *Federation) RouteStatus() []RouteStatus {
	if !f.routeReplica() {
		return nil
	}
	out := make([]RouteStatus, len(f.balancers))
	for i, b := range f.balancers {
		out[i] = b.Status(i)
	}
	return out
}

// fedProxyHeader marks a proxied read so the follower serves the
// leader-shaped body (in particular, /metrics without the replica gauge
// suffix — the federation is asking on behalf of a client that addressed
// the federation, not the replica).
const fedProxyHeader = "X-Schedd-Fed-Proxy"

// proxyRead forwards the request to one follower and relays the response
// verbatim (status, content type, X-Schedd-* headers, body). It reports
// whether the follower answered at all; a transport failure leaves the
// ResponseWriter untouched so the caller can fall back to the leader.
// HTTP-level errors from the follower (404, 504 …) are relayed, not
// retried: at equal applied seq the follower's error body is the body the
// leader would have produced, and a barrier 504 is a real answer.
func (b *ReadBalancer) proxyRead(w http.ResponseWriter, r *http.Request, addr string) bool {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, addr+r.URL.RequestURI(), nil)
	if err != nil {
		b.fallbacks.Add(1)
		return false
	}
	req.Header.Set(fedProxyHeader, "1")
	resp, err := proxyClient.Do(req)
	if err != nil {
		b.fallbacks.Add(1)
		return false
	}
	defer resp.Body.Close()
	for _, h := range proxiedHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	b.proxied.Add(1)
	return true
}

// fetchJSON pulls one JSON document from a follower for a merged render,
// counting it as a proxied read on success and a fallback on failure (the
// caller then renders that shard's part from the leader).
func (b *ReadBalancer) fetchJSON(url string, v any) bool {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		b.fallbacks.Add(1)
		return false
	}
	req.Header.Set(fedProxyHeader, "1")
	resp, err := proxyClient.Do(req)
	if err != nil {
		b.fallbacks.Add(1)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.fallbacks.Add(1)
		return false
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		b.fallbacks.Add(1)
		return false
	}
	b.proxied.Add(1)
	return true
}

// RoutingInfo is the GET /v1/debug/routing payload.
type RoutingInfo struct {
	// ReadRoute is the active policy, "leader" or "replica".
	ReadRoute string `json:"read_route"`
	// Shards holds one balancer row per shard under replica routing.
	Shards []RouteStatus `json:"shards,omitempty"`
}

// Routing reports the federation's read-routing state.
func (f *Federation) Routing() RoutingInfo {
	mode := "leader"
	if f.routeReplica() {
		mode = "replica"
	}
	return RoutingInfo{ReadRoute: mode, Shards: f.RouteStatus()}
}

// proxiedHeaders is the header allowlist relayed from follower responses:
// the content type plus the replication-position headers clients chain
// into ?min_seq= barriers.
var proxiedHeaders = []string{"Content-Type", "X-Schedd-Seq", "X-Schedd-Term", "X-Schedd-Now"}

// proxyClient is the shared client for follower read proxying.
var proxyClient = &http.Client{Timeout: proxyTimeout}
