package fed

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/serve"
)

func BenchmarkFedRouteHash(b *testing.B) {
	r, err := RouterByName("hash", 8)
	if err != nil {
		b.Fatal(err)
	}
	loads := make([]Load, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Route(Key{User: i % 500, Width: 1 + i%64, Estimate: 1000}, loads)
	}
}

func BenchmarkFedRouteWidth(b *testing.B) {
	r, err := RouterByName("width", 8)
	if err != nil {
		b.Fatal(err)
	}
	loads := make([]Load, 8)
	for i := range loads {
		loads[i] = Load{Procs: 64, Busy: i * 7 % 64, QueuedWork: int64(i * 12345)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Route(Key{User: i % 500, Width: 1 + i%64, Estimate: 1000}, loads)
	}
}

// benchFed builds a running 4-shard federation with a standing queue, the
// state a gather has to merge.
func benchFed(b *testing.B, shards, queued int) (*Federation, func()) {
	b.Helper()
	f, err := New(Options{Shards: shards, Route: "width", Shard: serve.Options{Procs: 64, Scheduler: "easy", Policy: "FCFS", Speed: 1e-9}})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	for s := 0; s < shards; s++ {
		if _, err := f.Submit(serve.SubmitRequest{Width: 64, Runtime: 1_000_000, User: s}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < queued; i++ {
		if _, err := f.Submit(serve.SubmitRequest{Width: 1 + i%32, Runtime: 5_000, User: i % 200}); err != nil {
			b.Fatal(err)
		}
	}
	return f, func() {
		cancel()
		<-done
		f.Close()
	}
}

func BenchmarkFedGatherQueue(b *testing.B) {
	for _, shards := range []int{1, 4} {
		// Hyphen-free sub-bench name: benchdiff strips the trailing
		// -GOMAXPROCS suffix, which would swallow a "-1"/"-4" here.
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			f, stop := benchFed(b, shards, 256)
			defer stop()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if q := f.Queue(); q.Procs != shards*64 {
					b.Fatal("bad merge")
				}
			}
		})
	}
}

func BenchmarkFedMergedSnapshot(b *testing.B) {
	f, stop := benchFed(b, 4, 256)
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := f.MergedSnapshot(); s.Procs != 4*64 {
			b.Fatal("bad merge")
		}
	}
}
