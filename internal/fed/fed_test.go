package fed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/workload"
)

// frozenFed builds a federation whose shards' virtual clocks effectively
// never advance (speed ≈ 0 but timed), runs it, and returns a
// cancel-and-wait stop function.
func frozenFed(t *testing.T, opts Options) (*Federation, func() error) {
	t.Helper()
	if opts.Shard.Speed == 0 {
		opts.Shard.Speed = 1e-9
	}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	return f, func() error {
		cancel()
		select {
		case err := <-done:
			f.Close()
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("federation did not stop")
			return nil
		}
	}
}

func doJSON(t *testing.T, h http.Handler, method, path string, body, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad body %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

func TestFederationRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{Shards: 0, Shard: serve.Options{Procs: 8}}); err == nil {
		t.Fatal("want error for zero shards")
	}
	if _, err := New(Options{Shards: 2, Shard: serve.Options{Procs: 8, MailboxReads: true}}); err == nil {
		t.Fatal("want error for mailbox reads")
	}
	if _, err := New(Options{Shards: 2, Route: "nope", Shard: serve.Options{Procs: 8}}); err == nil {
		t.Fatal("want error for unknown route")
	}
}

// TestFederationSubmitLookupCancel drives the full write surface over HTTP
// against two shards: IDs are globally unique and congruent to their
// shard's class, lookups find the owning shard, cancels land there too.
func TestFederationSubmitLookupCancel(t *testing.T) {
	f, stop := frozenFed(t, Options{Shards: 2, Route: "hash", Shard: serve.Options{Procs: 8, Scheduler: "easy", Policy: "FCFS", Audit: true}})
	defer stop()
	h := f.Handler()

	seen := map[int]bool{}
	views := make([]serve.JobView, 0, 12)
	for i := 0; i < 12; i++ {
		var v serve.JobView
		rec := doJSON(t, h, "POST", "/v1/jobs", serve.SubmitRequest{Width: 1 + i%8, Runtime: 500, User: i % 5}, &v)
		if rec.Code != http.StatusCreated {
			t.Fatalf("submit %d: %d %s", i, rec.Code, rec.Body.String())
		}
		if seen[v.ID] {
			t.Fatalf("duplicate job ID %d across shards", v.ID)
		}
		seen[v.ID] = true
		views = append(views, v)
	}

	// Every ID must sit in the congruence class of the shard that owns it:
	// shard i of N only ever assigns IDs ≡ i+1 (mod N).
	for id := range seen {
		found := -1
		for i, sh := range f.Shards() {
			if _, ok := sh.Current().Jobs.Get(id); ok {
				if found >= 0 {
					t.Fatalf("job %d on two shards (%d and %d)", id, found, i)
				}
				found = i
			}
		}
		if found < 0 {
			t.Fatalf("job %d on no shard", id)
		}
		if want := found + 1; (id-want)%2 != 0 {
			t.Fatalf("job %d on shard %d: not in congruence class %d mod 2", id, found, want)
		}
	}

	// Same user, same shard: hash routing is deterministic per key.
	shardOf := func(id int) int {
		for i, sh := range f.Shards() {
			if _, ok := sh.Current().Jobs.Get(id); ok {
				return i
			}
		}
		return -1
	}
	for u := 0; u < 5; u++ {
		want := -1
		for i, v := range views {
			if i%5 != u {
				continue
			}
			got := shardOf(v.ID)
			if want == -1 {
				want = got
			} else if got != want {
				t.Fatalf("user %d split across shards %d and %d", u, want, got)
			}
		}
	}

	var v serve.JobView
	target := views[len(views)-1]
	if rec := doJSON(t, h, "GET", fmt.Sprintf("/v1/jobs/%d", target.ID), nil, &v); rec.Code != 200 || v.ID != target.ID {
		t.Fatalf("lookup %d: %d %+v", target.ID, rec.Code, v)
	}
	if rec := doJSON(t, h, "GET", "/v1/jobs/99999", nil, nil); rec.Code != 404 {
		t.Fatalf("lookup of unknown job: %d", rec.Code)
	}

	// Cancel a queued job through the front end; the owning shard must
	// record it.
	victim := -1
	for _, view := range views {
		if view.State == "queued" {
			victim = view.ID
			break
		}
	}
	if victim < 0 {
		t.Fatal("no queued job to cancel; widen the submissions")
	}
	if rec := doJSON(t, h, "DELETE", fmt.Sprintf("/v1/jobs/%d", victim), nil, nil); rec.Code != 204 {
		t.Fatalf("cancel %d: %d", victim, rec.Code)
	}
	if rec := doJSON(t, h, "GET", fmt.Sprintf("/v1/jobs/%d", victim), nil, &v); rec.Code != 200 || v.State != "cancelled" {
		t.Fatalf("cancelled job %d: %d %+v", victim, rec.Code, v)
	}
	if rec := doJSON(t, h, "DELETE", "/v1/jobs/99999", nil, nil); rec.Code != 404 {
		t.Fatalf("cancel of unknown job: %d", rec.Code)
	}

	// A job wider than every shard is a client error, same as a single
	// cluster of that size would give.
	if rec := doJSON(t, h, "POST", "/v1/jobs", serve.SubmitRequest{Width: 9, Runtime: 10}, nil); rec.Code != 400 {
		t.Fatalf("too-wide submit: %d", rec.Code)
	}
}

// TestFederationPreloadPartition preloads a trace through the router and
// checks conservation (every job on exactly one shard, none lost or
// duplicated) plus the ID floor: live submissions after a preload must not
// collide with any trace ID.
func TestFederationPreloadPartition(t *testing.T) {
	m, err := workload.NewSDSC(0.9)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.Generate(80, 7)
	if err != nil {
		t.Fatal(err)
	}
	jobs := workload.ApplyEstimates(raw, workload.Actual{}, 8)

	for _, route := range []string{"hash", "width"} {
		t.Run(route, func(t *testing.T) {
			f, err := New(Options{Shards: 3, Route: route, Shard: serve.Options{Procs: m.Procs, Scheduler: "easy", Policy: "FCFS", Speed: 1e-9}})
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Preload(jobs); err != nil {
				t.Fatal(err)
			}
			counts := make([]int, 3)
			maxID := 0
			for i, sh := range f.Shards() {
				snap := sh.Current()
				counts[i] = snap.Jobs.Len()
				snap.Jobs.Range(func(id int, _ serve.JobView) bool {
					if id > maxID {
						maxID = id
					}
					return true
				})
			}
			total := counts[0] + counts[1] + counts[2]
			if total != len(jobs) {
				t.Fatalf("partition lost or duplicated jobs: %v sums to %d, want %d", counts, total, len(jobs))
			}
			for _, j := range jobs {
				if _, ok := f.Lookup(j.ID); !ok {
					t.Fatalf("preloaded job %d not reachable through the front end", j.ID)
				}
			}

			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() { done <- f.Run(ctx) }()
			v, err := f.Submit(serve.SubmitRequest{Width: 1, Runtime: 60, User: 42})
			if err != nil {
				t.Fatal(err)
			}
			if v.ID <= maxID {
				t.Fatalf("live submit got ID %d inside the preloaded range (max trace ID %d)", v.ID, maxID)
			}
			cancel()
			<-done
			f.Close()
		})
	}
}

// TestFederationStatus checks the per-shard listing: one row per shard in
// shard order, capacities reported per shard.
func TestFederationStatus(t *testing.T) {
	f, stop := frozenFed(t, Options{Shards: 3, Shard: serve.Options{Procs: 16, Scheduler: "easy", Policy: "FCFS"}})
	defer stop()

	var rows []ShardStatus
	if rec := doJSON(t, f.Handler(), "GET", "/v1/shards", nil, &rows); rec.Code != 200 {
		t.Fatalf("shards: %d", rec.Code)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for i, r := range rows {
		if r.Shard != i || r.Procs != 16 || r.Scheduler == "" {
			t.Fatalf("row %d: %+v", i, r)
		}
	}

	var q serve.QueueResponse
	if rec := doJSON(t, f.Handler(), "GET", "/v1/queue", nil, &q); rec.Code != 200 {
		t.Fatalf("queue: %d", rec.Code)
	}
	if q.Procs != 48 {
		t.Fatalf("merged capacity %d, want 48", q.Procs)
	}
}

// TestRouterHashDeterministicAndStable pins the hash ring's contract: a key
// routes identically no matter the load vector, and growing the ring moves
// only a minority of keys.
func TestRouterHashDeterministicAndStable(t *testing.T) {
	r4, _ := RouterByName("hash", 4)
	r5, _ := RouterByName("hash", 5)
	loadsA := make([]Load, 4)
	loadsB := []Load{{Busy: 9, QueuedWork: 1e6}, {}, {Busy: 3}, {QueuedWork: 5}}
	moved := 0
	for u := 0; u < 1000; u++ {
		k := Key{User: u, Width: 1, Estimate: 100}
		a, b := r4.Route(k, loadsA), r4.Route(k, loadsB)
		if a != b {
			t.Fatalf("user %d: hash placement depends on load (%d vs %d)", u, a, b)
		}
		if r4.Route(k, loadsA) != a {
			t.Fatalf("user %d: hash placement not deterministic", u)
		}
		if r5.Route(k, make([]Load, 5)) != a {
			moved++
		}
	}
	// Consistent hashing: going 4 → 5 shards should remap roughly 1/5 of
	// the keys, not reshuffle everything. Allow a generous band.
	if moved > 400 {
		t.Fatalf("adding a shard moved %d/1000 keys; ring is not consistent", moved)
	}
	if moved == 0 {
		t.Fatal("adding a shard moved no keys; new shard gets no load")
	}
}

// TestRouterWidth pins the width policy: infeasible shards are never
// chosen while a feasible one exists, the least-loaded feasible shard wins,
// and a job too wide for everyone goes to the widest shard.
func TestRouterWidth(t *testing.T) {
	r, _ := RouterByName("width", 3)
	loads := []Load{
		{Procs: 8, Busy: 0, QueuedWork: 0},
		{Procs: 32, Busy: 32, QueuedWork: 1000},
		{Procs: 32, Busy: 0, QueuedWork: 0},
	}
	if got := r.Route(Key{User: 1, Width: 16}, loads); got != 2 {
		t.Fatalf("width 16 routed to %d, want the idle 32-proc shard 2", got)
	}
	if got := r.Route(Key{User: 1, Width: 64}, loads); got != 1 {
		t.Fatalf("width 64 routed to %d, want a widest shard", got)
	}
	got := r.Route(Key{User: 1, Width: 4}, loads)
	if got == 1 {
		t.Fatalf("width 4 routed to the loaded shard 1 over idle ones")
	}
	if r.Name() != "width" {
		t.Fatalf("name %q", r.Name())
	}
}
