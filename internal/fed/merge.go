package fed

// Scatter-gather merging. A gather loads every shard's published snapshot
// (one atomic pointer read each) and folds them into the single-cluster
// wire shapes, so federation clients see the same API a standalone daemon
// serves. Merge order is stable: shards are always folded in index order,
// and each shard's internal ordering (policy order for queues, job-ID
// order for running jobs) is preserved by concatenation — two gathers over
// unchanged shards render identical bytes. A single-shard federation
// short-circuits to the shard's own rendering, which is what makes the
// 1-shard replay-equivalence suite byte-identical by construction.

import (
	"repro/internal/job"
	"repro/internal/serve"
)

// gather returns one published snapshot per shard, in shard order. Each is
// immutable; the vector is a consistent-enough cut for serving (each
// shard's snapshot is internally consistent, and per-shard versions only
// grow between gathers).
func (f *Federation) gather() []*serve.Snapshot {
	snaps := make([]*serve.Snapshot, len(f.shards))
	for i, sh := range f.shards {
		snaps[i] = sh.Current()
	}
	return snaps
}

// Queue renders the federated GET /v1/queue: every shard's queue listing
// (forecasts attached by the shard's own memoized dry-run) concatenated in
// shard order, counters summed, Version the sum of shard versions (each
// shard's version is monotonic, so the sum is too), Now the furthest
// shard's clock.
func (f *Federation) Queue() serve.QueueResponse {
	if len(f.shards) == 1 {
		return f.shards[0].Queue()
	}
	parts := make([]serve.QueueResponse, len(f.shards))
	for i, sh := range f.shards {
		parts[i] = sh.Queue()
	}
	return mergeQueues(parts)
}

// mergeQueues folds per-shard queue listings (in shard order) into the
// federated shape. Shared by the leader-mode gather and the replica-routed
// fold, which fetches some parts from followers — both produce identical
// bytes at equal applied state because the fold itself is order- and
// value-deterministic.
func mergeQueues(parts []serve.QueueResponse) serve.QueueResponse {
	var out serve.QueueResponse
	for i, r := range parts {
		if i == 0 {
			out.Scheduler = r.Scheduler
		}
		out.Version += r.Version
		if r.Now > out.Now {
			out.Now = r.Now
		}
		out.Procs += r.Procs
		out.ProcsBusy += r.ProcsBusy
		out.Submitted += r.Submitted
		out.Pending += r.Pending
		out.Completed += r.Completed
		out.Cancelled += r.Cancelled
		out.Queued = append(out.Queued, r.Queued...)
		out.Running = append(out.Running, r.Running...)
	}
	return out
}

// MergedSnapshot folds the shard snapshots into one federation-wide
// snapshot in the single-cluster shape: counters and category sums added,
// utilization recomputed from the shards' raw busy areas (not averaged
// fractions), queues concatenated in shard order. /metrics renders from
// it; tests read the merged category slowdowns off it.
func (f *Federation) MergedSnapshot() *serve.Snapshot {
	snaps := f.gather()
	if len(snaps) == 1 {
		return snaps[0]
	}
	out := &serve.Snapshot{Scheduler: snaps[0].Scheduler, AuditViolations: -1}
	var busyArea, procsArea int64
	audited := false
	for _, s := range snaps {
		out.Version += s.Version
		if s.Now > out.Now {
			out.Now = s.Now
		}
		if s.SimNow > out.SimNow {
			out.SimNow = s.SimNow
		}
		out.Draining = out.Draining || s.Draining
		out.Procs += s.Procs
		out.ProcsBusy += s.ProcsBusy
		out.Pending += s.Pending
		out.Submitted += s.Submitted
		out.Started += s.Started
		out.Resumed += s.Resumed
		out.Completed += s.Completed
		out.Cancelled += s.Cancelled
		out.Rejected += s.Rejected
		busyArea += s.BusyArea
		procsArea += int64(s.Procs) * s.BusyUpTo
		if s.AuditViolations >= 0 {
			if !audited {
				audited = true
				out.AuditViolations = 0
			}
			out.AuditViolations += s.AuditViolations
		}
		for c := job.Category(0); c < job.NumCategories; c++ {
			out.CatSum[c] += s.CatSum[c]
			out.CatN[c] += s.CatN[c]
		}
		out.Running = append(out.Running, s.Running...)
	}
	var queued []serve.JobView
	for _, s := range snaps {
		queued = append(queued, s.QueuedViews()...)
	}
	out.SetQueuedViews(queued)
	out.BusyArea, out.BusyUpTo = busyArea, out.Now
	if procsArea > 0 {
		out.Utilization = float64(busyArea) / float64(procsArea)
	}
	views := make(map[int]serve.JobView)
	for _, s := range snaps {
		s.Jobs.Range(func(id int, v serve.JobView) bool {
			views[id] = v
			return true
		})
	}
	out.Jobs = serve.NewJobIndex(views)
	return out
}

// ShardStatus is one row of GET /v1/shards: the per-shard state behind the
// merged surface, for operators and the federation tests.
type ShardStatus struct {
	Shard      int    `json:"shard"`
	Scheduler  string `json:"scheduler"`
	Procs      int    `json:"procs"`
	ProcsBusy  int    `json:"procs_busy"`
	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
	Pending    int    `json:"pending"`
	Version    uint64 `json:"version"`
	Now        int64  `json:"now"`
	Submitted  int64  `json:"submitted"`
	Completed  int64  `json:"completed"`
	Cancelled  int64  `json:"cancelled"`
	Draining   bool   `json:"draining,omitempty"`
}

// Status reports every shard's current state in shard order.
func (f *Federation) Status() []ShardStatus {
	out := make([]ShardStatus, len(f.shards))
	for i, snap := range f.gather() {
		out[i] = ShardStatus{
			Shard:      i,
			Scheduler:  snap.Scheduler,
			Procs:      snap.Procs,
			ProcsBusy:  snap.ProcsBusy,
			QueueDepth: len(snap.QueuedViews()),
			Running:    len(snap.Running),
			Pending:    snap.Pending,
			Version:    snap.Version,
			Now:        snap.Now,
			Submitted:  snap.Submitted,
			Completed:  snap.Completed,
			Cancelled:  snap.Cancelled,
			Draining:   snap.Draining,
		}
	}
	return out
}
