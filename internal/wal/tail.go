package wal

// Tailing: the read side of journal shipping. A Tailer follows a journal
// directory another process is actively appending to, returning complete
// records in sequence order and never mutating anything on disk. It is the
// primitive under follower replicas (internal/replica) and the leader's
// /v1/wal streaming endpoint.
//
// The contract with the single writer makes this safe without any
// coordination: records carry strictly increasing sequence numbers, a
// writer only ever appends to the newest segment, and a segment becomes
// immutable ("sealed") the moment a newer one exists. A partial or
// CRC-failing final line is therefore either an append caught mid-frame or
// a crash's torn tail — the Tailer stops in front of it and picks up on
// the next call, by which time the appender has finished the frame or a
// recovering writer has truncated it. Undecodable bytes with valid records
// after them can only be real corruption and fail loudly, exactly like
// recovery.

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// ErrGone is returned when the record after the Tailer's position has been
// pruned from the directory — a checkpoint retired the segments a lagging
// reader still needed. The reader cannot continue incrementally and must
// resync from the newest checkpoint (see Load). The retention floor
// (Log.SetRetainFloor) exists to keep registered followers out of this
// path; hitting it is loud by design.
var ErrGone = errors.New("wal: tail position pruned")

// Tailer incrementally reads a journal directory past a starting sequence
// number. Not safe for concurrent use; one goroutine per Tailer.
type Tailer struct {
	dir  string
	seq  uint64 // last record returned
	path string // segment currently being read; "" means locate on next call
	off  int64  // offset of the first unread byte in path
}

// NewTailer positions a reader so its first record will be after+1.
func NewTailer(dir string, after uint64) *Tailer {
	return &Tailer{dir: dir, seq: after}
}

// Seq returns the sequence number of the last record returned.
func (t *Tailer) Seq() uint64 { return t.seq }

// Next returns up to max complete records past the Tailer's position (all
// of them when max <= 0). An empty result with a nil error means caught
// up: nothing new is durable yet, poll again later. ErrGone means the
// position was pruned and the reader must resync; ErrCorrupt means the
// journal itself is damaged.
func (t *Tailer) Next(max int) ([]Record, error) {
	if max <= 0 {
		max = int(^uint(0) >> 1)
	}
	var out []Record
	for len(out) < max {
		if t.path == "" {
			ok, err := t.locate()
			if err != nil || !ok {
				return out, err
			}
		}
		if err := t.scan(max, &out); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				// The segment was pruned while we held its path. Relocate:
				// either a newer segment still covers our position, or the
				// journal moved on without us and locate reports ErrGone.
				t.path, t.off = "", 0
				continue
			}
			return out, err
		}
		if len(out) >= max {
			return out, nil
		}
		// End of the current segment. If a newer segment exists ours is
		// sealed — one final scan (the writer never returns to a sealed
		// segment) and then relocate picks up the successor. Otherwise we
		// are caught up with the live appender.
		newer, err := t.newerSegmentExists()
		if err != nil {
			return out, err
		}
		if !newer {
			return out, nil
		}
		if err := t.scan(max, &out); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return out, err
		}
		t.path, t.off = "", 0
	}
	return out, nil
}

// locate finds the segment containing seq+1 and positions the Tailer at
// its start (records at or below seq inside it are skipped by scan).
// Returns false with a nil error when the journal holds nothing past the
// position yet.
func (t *Tailer) locate() (bool, error) {
	segs, err := listSorted(t.dir, segPrefix, segSuffix)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil // directory not created yet
		}
		return false, err
	}
	if len(segs) == 0 {
		if t.seq == 0 {
			return false, nil // journal never written
		}
		return false, fmt.Errorf("%w: no segments left in %s, reader at seq %d", ErrGone, t.dir, t.seq)
	}
	want := t.seq + 1
	idx := -1
	for i, s := range segs {
		if s.first <= want {
			idx = i
		}
	}
	if idx == -1 {
		return false, fmt.Errorf("%w: next record %d precedes oldest segment %s", ErrGone, want, segs[0].path)
	}
	t.path, t.off = segs[idx].path, 0
	return true, nil
}

// scan decodes complete framed lines from the current segment starting at
// the stored offset, appending records past the Tailer's position onto out
// (up to max total). It stops in front of a partial or undecodable final
// line — an in-flight append or a torn crash tail — leaving the offset
// there for the next call.
func (t *Tailer) scan(max int, out *[]Record) error {
	data, err := os.ReadFile(t.path)
	if err != nil {
		return err // fs.ErrNotExist bubbles to Next's relocate path
	}
	if t.off > int64(len(data)) {
		// We never move the offset past undecodable bytes, and a recovering
		// writer only ever truncates those, so a file shrinking below the
		// offset means the journal was rewritten under us.
		return fmt.Errorf("%w: segment %s shrank below read offset %d", ErrCorrupt, t.path, t.off)
	}
	for t.off < int64(len(data)) && len(*out) < max {
		rest := data[t.off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return nil // partial final line: the appender is mid-frame
		}
		r, decErr := decodeRecord(rest[:nl])
		if decErr != nil {
			if anyValidRecord(rest[nl+1:]) {
				return fmt.Errorf("%w: %s at byte %d: %v", ErrCorrupt, t.path, t.off, decErr)
			}
			return nil // torn tail: wait for the writer to finish or truncate it
		}
		if r.Seq > t.seq {
			if r.Seq != t.seq+1 {
				return fmt.Errorf("%w: %s jumps from seq %d to %d", ErrCorrupt, t.path, t.seq, r.Seq)
			}
			*out = append(*out, r)
			t.seq = r.Seq
		}
		t.off += int64(nl) + 1
	}
	return nil
}

// newerSegmentExists reports whether the directory holds a segment past
// the one currently being read.
func (t *Tailer) newerSegmentExists() (bool, error) {
	first, ok := parseSeq(filepath.Base(t.path), segPrefix, segSuffix)
	if !ok {
		return false, fmt.Errorf("wal: unparseable segment name %s", t.path)
	}
	segs, err := listSorted(t.dir, segPrefix, segSuffix)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	for _, s := range segs {
		if s.first > first {
			return true, nil
		}
	}
	return false, nil
}
