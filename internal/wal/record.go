// Package wal is the scheduling daemon's durability layer: an append-only,
// CRC-framed, fsync-batched JSONL write-ahead journal of every mailbox
// mutation (submit, cancel, clock advance, drain), plus periodic checkpoints
// that bound recovery cost and let old journal segments be deleted.
//
// The design leans on the fact that the event engine is deterministic: a
// sim.Session's state is a pure function of the ordered mutation sequence
// applied to it. The journal therefore records logical operations, not
// state diffs, and recovery is replay. A checkpoint is an order-preserving
// compaction of the operation prefix it covers (consecutive clock advances
// collapse into the last one — the only rewrite that provably cannot change
// how events group into scheduling passes) together with the replaying
// server's state hash, so a recovering daemon can verify that replaying the
// checkpoint lands byte-identically where the checkpointing daemon stood.
//
// On-disk layout inside a data directory:
//
//	wal-<firstseq>.log        journal segments, CRC-framed JSONL
//	checkpoint-<seq>.ckpt     checkpoints; <seq> is the last op covered
//	LOCK                      flock guard against two daemons sharing a dir
//
// Each journal line is "crc32c(payload) in 8 hex digits, a space, the JSON
// payload, newline". A torn final record (partial line, or a CRC mismatch on
// the very last record) is the expected signature of a crash mid-append and
// is truncated away on recovery; a bad record with valid records after it
// can only be corruption and fails recovery loudly. Records carry strictly
// increasing sequence numbers so a gap between a checkpoint and its tail —
// or between segments — is detected instead of silently half-applied.
package wal

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Op enumerates the journaled mutation kinds.
const (
	// OpSubmit records one accepted job submission (the full job record,
	// including the arrival instant the daemon assigned).
	OpSubmit = "submit"
	// OpCancel records a successful cancellation of a queued or pending job.
	OpCancel = "cancel"
	// OpAdvance records that the session processed every event up to and
	// including virtual instant To. Replaying AdvanceTo(To) regroups the
	// same events into the same per-instant scheduling passes.
	OpAdvance = "advance"
	// OpDrain records the start of a graceful drain: admissions stopped and
	// the remaining schedule fast-forwards to completion. Replay re-runs the
	// fast-forward, so a crash mid-drain recovers to the drained state.
	OpDrain = "drain"
	// OpFloor records an ID reservation: every job ID up to and including ID
	// is taken, so the next assigned ID must land above it (in the daemon's
	// own ID congruence class — see serve.Options.IDStride). Federation
	// front ends journal one after partitioning a preloaded trace, so a
	// recovered shard cannot re-issue an ID a sibling shard already holds.
	OpFloor = "floor"
	// OpTerm fences a leadership change: a promoted follower appends one
	// with the incremented term before accepting its first write, so any
	// process replaying the journal — including a revived old leader — sees
	// that the lineage moved on. The record mutates no scheduling state.
	OpTerm = "term"
)

// JobRec is the journaled form of a submitted job. It mirrors job.Job field
// for field; wal keeps its own struct so the on-disk schema is explicit and
// cannot drift silently when the in-memory job grows fields.
type JobRec struct {
	ID       int   `json:"id"`
	Arrival  int64 `json:"arr"`
	Runtime  int64 `json:"rt"`
	Estimate int64 `json:"est"`
	Width    int   `json:"w"`
	User     int   `json:"u,omitempty"`
}

// Record is one journal entry. Seq is assigned by the Writer at append time
// and is strictly increasing across the whole journal (checkpoints included).
type Record struct {
	Seq  uint64  `json:"s"`
	Op   string  `json:"op"`
	Job  *JobRec `json:"job,omitempty"`  // OpSubmit
	ID   int     `json:"id,omitempty"`   // OpCancel, OpFloor
	To   int64   `json:"to,omitempty"`   // OpAdvance
	Term uint64  `json:"term,omitempty"` // OpTerm
}

// castagnoli is the CRC32-C table; the same polynomial storage systems use,
// chosen over IEEE for its error-detection properties on short records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFramed encodes payload as one CRC-framed journal line onto dst.
func appendFramed(dst, payload []byte) []byte {
	dst = append(dst, []byte(fmt.Sprintf("%08x ", crc32.Checksum(payload, castagnoli)))...)
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// appendRecord encodes one record as a framed line onto dst.
func appendRecord(dst []byte, r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return dst, fmt.Errorf("wal: encode record %d: %w", r.Seq, err)
	}
	return appendFramed(dst, payload), nil
}

// unframe validates one journal line (without its trailing newline) and
// returns the JSON payload.
func unframe(line []byte) ([]byte, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("wal: short or unframed line (%d bytes)", len(line))
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, fmt.Errorf("wal: bad CRC field: %w", err)
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("wal: CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	return payload, nil
}

// decodeRecord validates and decodes one framed journal line.
func decodeRecord(line []byte) (Record, error) {
	payload, err := unframe(line)
	if err != nil {
		return Record{}, err
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return Record{}, fmt.Errorf("wal: bad record JSON: %w", err)
	}
	switch r.Op {
	case OpSubmit, OpCancel, OpAdvance, OpDrain, OpFloor, OpTerm:
	default:
		return Record{}, fmt.Errorf("wal: unknown op %q at seq %d", r.Op, r.Seq)
	}
	return r, nil
}

// EncodeRecord appends r as one CRC-framed journal line (newline included)
// onto dst — the exact bytes Append would write. Exported for the
// replication endpoint, which streams journal frames over HTTP.
func EncodeRecord(dst []byte, r Record) ([]byte, error) {
	return appendRecord(dst, r)
}

// DecodeRecord validates and decodes one framed journal line (without its
// trailing newline) — the follower half of EncodeRecord.
func DecodeRecord(line []byte) (Record, error) {
	return decodeRecord(line)
}

// Coalesce appends r to ops, collapsing consecutive advances: an advance
// directly after another advance replaces it, because AdvanceTo(t2) after
// AdvanceTo(t1<=t2) processes exactly the instants the pair did, in the same
// per-instant groups. Advances separated by a submit or cancel are NOT
// merged — that would regroup same-instant events into a different
// scheduling pass. This is the only compaction checkpoints apply.
func Coalesce(ops []Record, r Record) []Record {
	if r.Op == OpAdvance && len(ops) > 0 && ops[len(ops)-1].Op == OpAdvance {
		ops[len(ops)-1] = r
		return ops
	}
	return append(ops, r)
}
