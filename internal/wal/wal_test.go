package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string) (*Log, *State) {
	t.Helper()
	l, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, st
}

func submitRec(id int) Record {
	return Record{Op: OpSubmit, Job: &JobRec{ID: id, Arrival: int64(id) * 10, Runtime: 60, Estimate: 120, Width: 4, User: 7}}
}

func TestEmptyJournal(t *testing.T) {
	dir := t.TempDir()
	l, st := mustOpen(t, dir)
	if st.Checkpoint != nil || len(st.Tail) != 0 || st.NextSeq != 1 {
		t.Fatalf("fresh dir recovered %+v", st)
	}
	if l.Seq() != 0 {
		t.Fatalf("fresh log Seq = %d", l.Seq())
	}
	// A dir that does not exist yet behaves the same through Load.
	st2, err := Load(filepath.Join(dir, "nonexistent"))
	if err != nil || st2.NextSeq != 1 {
		t.Fatalf("Load(missing) = %+v, %v", st2, err)
	}
}

func TestAppendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	batch1 := []Record{submitRec(1), {Op: OpAdvance, To: 10}}
	batch2 := []Record{submitRec(2), {Op: OpCancel, ID: 1}, {Op: OpAdvance, To: 25}}
	if err := l.Append(batch1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(batch2); err != nil {
		t.Fatal(err)
	}
	if l.Seq() != 5 {
		t.Fatalf("Seq = %d, want 5", l.Seq())
	}
	l.Close()

	_, st := mustOpen(t, dir)
	if st.Checkpoint != nil {
		t.Fatal("no checkpoint was written")
	}
	want := append(append([]Record{}, batch1...), batch2...)
	if !reflect.DeepEqual(st.Tail, want) {
		t.Fatalf("recovered tail %+v\nwant %+v", st.Tail, want)
	}
	if st.NextSeq != 6 {
		t.Fatalf("NextSeq = %d, want 6", st.NextSeq)
	}
}

func TestTornTailPartialLine(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Record{submitRec(1), submitRec(2)}); err != nil {
		t.Fatal(err)
	}
	seg := l.SegmentPath()
	l.Close()
	// Simulate a crash mid-append: half a record, no newline.
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`deadbeef {"s":3,"op":"sub`)
	f.Close()

	l2, st := mustOpen(t, dir)
	if len(st.Tail) != 2 || st.TruncatedBytes == 0 {
		t.Fatalf("torn tail: recovered %d records, truncated %d bytes", len(st.Tail), st.TruncatedBytes)
	}
	// The journal must be appendable again at seq 3.
	if err := l2.Append([]Record{submitRec(3)}); err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 3 {
		t.Fatalf("Seq after torn recovery = %d, want 3", l2.Seq())
	}
}

func TestTornTailBadCRC(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Record{submitRec(1), submitRec(2), submitRec(3)}); err != nil {
		t.Fatal(err)
	}
	seg := l.SegmentPath()
	l.Close()
	// Flip a byte inside the LAST record's payload: torn write, truncate.
	data, _ := os.ReadFile(seg)
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	corrupted := strings.Join(lines[:len(lines)-1], "") + flipPayloadByte(last) + "\n"
	os.WriteFile(seg, []byte(corrupted), 0o644)

	_, st := mustOpen(t, dir)
	if len(st.Tail) != 2 {
		t.Fatalf("bad-CRC tail: recovered %d records, want 2", len(st.Tail))
	}
}

func TestCorruptMidFileFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Record{submitRec(1), submitRec(2), submitRec(3)}); err != nil {
		t.Fatal(err)
	}
	seg := l.SegmentPath()
	l.Close()
	// Flip a byte in the SECOND record: valid data follows, so this is
	// corruption, not a torn tail — recovery must refuse, never half-apply.
	data, _ := os.ReadFile(seg)
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	lines[1] = flipPayloadByte(strings.TrimSuffix(lines[1], "\n")) + "\n"
	os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644)

	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	var history []Record
	for i := 1; i <= 4; i++ {
		recs := []Record{submitRec(i), {Op: OpAdvance, To: int64(i) * 10}}
		if err := l.Append(recs); err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			history = Coalesce(history, r)
		}
	}
	meta := Meta{SimNow: 40, NextID: 5, StateHash: 0xfeedface12345678, Submitted: 4,
		Config: Config{Procs: 64, Scheduler: "easy", Policy: "FCFS", Audit: true}}
	if err := l.Checkpoint(meta, history); err != nil {
		t.Fatal(err)
	}
	if l.CheckpointSeq() != 8 {
		t.Fatalf("CheckpointSeq = %d, want 8", l.CheckpointSeq())
	}
	tail := []Record{submitRec(5), {Op: OpAdvance, To: 50}}
	if err := l.Append(tail); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, st := mustOpen(t, dir)
	if st.Checkpoint == nil {
		t.Fatalf("no checkpoint recovered (warnings: %v)", st.Warnings)
	}
	if st.Checkpoint.Seq != 8 || st.Checkpoint.StateHash != meta.StateHash || st.Checkpoint.Config != meta.Config {
		t.Fatalf("checkpoint meta %+v", st.Checkpoint)
	}
	if !reflect.DeepEqual(st.CheckpointOps, history) {
		t.Fatalf("checkpoint ops %+v\nwant %+v", st.CheckpointOps, history)
	}
	if !reflect.DeepEqual(st.Tail, tail) {
		t.Fatalf("tail %+v\nwant %+v", st.Tail, tail)
	}
	if st.NextSeq != 11 {
		t.Fatalf("NextSeq = %d, want 11", st.NextSeq)
	}
}

func TestCheckpointPrunesOldFiles(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	var history []Record
	for round := 0; round < 3; round++ {
		for i := 1; i <= 2; i++ {
			recs := []Record{submitRec(round*2 + i)}
			if err := l.Append(recs); err != nil {
				t.Fatal(err)
			}
			history = Coalesce(history, recs[0])
		}
		if err := l.Checkpoint(Meta{NextID: round*2 + 3}, history); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	ckpts, _ := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"))
	if len(ckpts) != 1 {
		t.Fatalf("prune left %d checkpoints: %v", len(ckpts), ckpts)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) != 1 {
		t.Fatalf("prune left %d segments: %v", len(segs), segs)
	}
	_, st := mustOpen(t, dir)
	if st.Checkpoint == nil || st.Checkpoint.Seq != 6 || len(st.Tail) != 0 {
		t.Fatalf("post-prune recovery %+v", st)
	}
}

func TestCheckpointNewerThanJournal(t *testing.T) {
	// A checkpoint whose seq exceeds every journal record (stale segments
	// lying around, covered ones pruned) recovers from the checkpoint alone.
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	recs := []Record{submitRec(1)}
	if err := l.Append(recs); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(Meta{NextID: 2}, recs); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Remove every segment, leaving only the checkpoint.
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	for _, s := range segs {
		os.Remove(s)
	}
	_, st := mustOpen(t, dir)
	if st.Checkpoint == nil || st.Checkpoint.Seq != 1 || len(st.Tail) != 0 || st.NextSeq != 2 {
		t.Fatalf("checkpoint-only recovery %+v", st)
	}
}

func TestInvalidCheckpointFallsBackToGenesis(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Record{submitRec(1), submitRec(2)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// A garbage checkpoint file: skipped with a warning; the full journal
	// still anchors recovery from genesis.
	os.WriteFile(filepath.Join(dir, ckptName(2)), []byte("not a checkpoint\n"), 0o644)
	_, st := mustOpen(t, dir)
	if st.Checkpoint != nil || len(st.Tail) != 2 {
		t.Fatalf("genesis fallback %+v", st)
	}
	if len(st.Warnings) == 0 {
		t.Fatal("broken checkpoint produced no warning")
	}
}

func TestInvalidCheckpointWithPrunedJournalFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	recs := []Record{submitRec(1)}
	if err := l.Append(recs); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(Meta{NextID: 2}, recs); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Record{submitRec(2)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Destroy the only checkpoint. The genesis segment was pruned, so the
	// surviving tail starts at seq 2 — recovery must refuse to guess.
	ckpts, _ := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"))
	for _, c := range ckpts {
		os.WriteFile(c, []byte("garbage\n"), 0o644)
	}
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("stale-checkpoint recovery: err = %v, want ErrCorrupt", err)
	}
}

func TestSequenceGapFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Record{submitRec(1), submitRec(2), submitRec(3)}); err != nil {
		t.Fatal(err)
	}
	seg := l.SegmentPath()
	l.Close()
	// Drop the middle record entirely (clean line removal, CRCs intact).
	data, _ := os.ReadFile(seg)
	lines := strings.SplitAfter(string(data), "\n")
	os.WriteFile(seg, []byte(lines[0]+lines[2]), 0o644)
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sequence gap: err = %v, want ErrCorrupt", err)
	}
}

func TestLockExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open: err = %v, want ErrLocked", err)
	}
	l.Close()
	l2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	l2.Close()
}

func TestCoalesce(t *testing.T) {
	var ops []Record
	ops = Coalesce(ops, Record{Seq: 1, Op: OpSubmit, Job: &JobRec{ID: 1}})
	ops = Coalesce(ops, Record{Seq: 2, Op: OpAdvance, To: 10})
	ops = Coalesce(ops, Record{Seq: 3, Op: OpAdvance, To: 20})
	ops = Coalesce(ops, Record{Seq: 4, Op: OpSubmit, Job: &JobRec{ID: 2}})
	ops = Coalesce(ops, Record{Seq: 5, Op: OpAdvance, To: 20})
	if len(ops) != 4 {
		t.Fatalf("coalesced to %d ops, want 4: %+v", len(ops), ops)
	}
	if ops[1].Seq != 3 || ops[1].To != 20 {
		t.Fatalf("consecutive advances should keep the later one, got %+v", ops[1])
	}
	if ops[3].Seq != 5 {
		t.Fatalf("advance after a submit must not merge backwards, got %+v", ops[3])
	}
}

func TestFsyncAppend(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]Record{submitRec(1)}); err != nil {
		t.Fatalf("fsync append: %v", err)
	}
}

// flipPayloadByte corrupts one byte inside a framed line's JSON payload so
// the stored CRC no longer matches.
func flipPayloadByte(line string) string {
	b := []byte(line)
	b[len(b)-2] ^= 0x01
	return string(b)
}
