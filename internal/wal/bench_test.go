package wal

// The WAL benchmarks feed the repo's benchmark ledger (PERFORMANCE.md,
// BENCH_PR6.json): BenchmarkWALAppend measures the group-commit append path
// without fsync — the configuration the sustained-write-QPS acceptance
// number is recorded under — at batch sizes bracketing the mailbox's
// behaviour (1 = idle trickle, 64 = saturated burst). The fsync variant is
// deliberately named outside the tracked pattern: its cost is the storage
// stack's, not this code's, and shared CI runners make it too noisy to gate.

import (
	"fmt"
	"testing"
)

func benchAppend(b *testing.B, batch int, fsync bool) {
	l, _, err := Open(b.TempDir(), Options{Fsync: fsync})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	recs := make([]Record, batch)
	for i := range recs {
		if i%2 == 0 {
			recs[i] = Record{Op: OpSubmit, Job: &JobRec{ID: i + 1, Arrival: 100, Runtime: 600, Estimate: 1200, Width: 8}}
		} else {
			recs[i] = Record{Op: OpAdvance, To: int64(i) * 50}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(l.buf)))
}

// Sub-benchmark names avoid a trailing dash-number: benchdiff strips one
// "-N" suffix as the GOMAXPROCS tag, which would swallow "batch-64".
func BenchmarkWALAppend(b *testing.B) {
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) { benchAppend(b, batch, false) })
	}
}

func BenchmarkWALFsyncedAppend(b *testing.B) {
	b.Run("batch64", func(b *testing.B) { benchAppend(b, 64, true) })
}
