package wal

import (
	"errors"
	"os"
	"sync"
	"testing"
)

// drainTailer pulls everything currently available.
func drainTailer(t *testing.T, tl *Tailer) []Record {
	t.Helper()
	recs, err := tl.Next(0)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	return recs
}

func TestLoadDoesNotTruncateLiveJournal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Record{submitRec(1), submitRec(2)}); err != nil {
		t.Fatal(err)
	}
	// Simulate an appender caught mid-frame: the first half of a valid
	// record at the tail of the active segment, exactly what a concurrent
	// reader can observe during a write(2).
	rec3 := submitRec(3)
	rec3.Seq = 3
	frame, err := EncodeRecord(nil, rec3)
	if err != nil {
		t.Fatal(err)
	}
	seg := l.SegmentPath()
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame[:len(frame)/2])
	f.Close()
	before, _ := os.Stat(seg)

	st, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(st.Tail) != 2 || st.NextSeq != 3 {
		t.Fatalf("read-only load saw %d records, NextSeq %d", len(st.Tail), st.NextSeq)
	}
	if st.TruncatedBytes == 0 {
		t.Fatal("read-only load did not report the torn bytes")
	}
	after, _ := os.Stat(seg)
	if after.Size() != before.Size() {
		t.Fatalf("Load mutated a live journal: segment %d bytes -> %d", before.Size(), after.Size())
	}
	// The appender finishes its write: the frame Load refused to truncate
	// completes, and the next read-only load sees the record whole.
	f, _ = os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write(frame[len(frame)/2:])
	f.Close()
	st, err = Load(dir)
	if err != nil {
		t.Fatalf("Load after frame completion: %v", err)
	}
	if len(st.Tail) != 3 || st.Tail[2].Seq != 3 || st.TruncatedBytes != 0 {
		t.Fatalf("completed frame lost: %d records, truncated %d", len(st.Tail), st.TruncatedBytes)
	}
}

func TestLoadDoesNotTakeWriterLock(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Record{submitRec(1)}); err != nil {
		t.Fatal(err)
	}
	// The writer holds the flock; a read-only Load must not care.
	if _, err := Load(dir); err != nil {
		t.Fatalf("Load against a locked live journal: %v", err)
	}
	// And Load must not leave a lock behind that blocks a future writer.
	l.Close()
	if _, _, err := Open(dir, Options{}); err != nil {
		t.Fatalf("reopen after Load: %v", err)
	}
}

func TestTailerFollowsAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	tl := NewTailer(dir, 0)

	if err := l.Append([]Record{submitRec(1), submitRec(2)}); err != nil {
		t.Fatal(err)
	}
	if got := drainTailer(t, tl); len(got) != 2 || got[1].Seq != 2 {
		t.Fatalf("first drain = %+v", got)
	}
	// Checkpoint rotates to a fresh segment; the tailer must cross the
	// boundary without losing or duplicating records.
	if err := l.Checkpoint(Meta{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]Record{submitRec(3), submitRec(4)}); err != nil {
		t.Fatal(err)
	}
	got := drainTailer(t, tl)
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Fatalf("post-rotation drain = %+v", got)
	}
	if tl.Seq() != 4 {
		t.Fatalf("tailer seq = %d, want 4", tl.Seq())
	}
	// Caught up: polling again returns nothing, no error.
	if got := drainTailer(t, tl); len(got) != 0 {
		t.Fatalf("caught-up drain returned %d records", len(got))
	}
	// Records appended after a quiet poll still arrive.
	if err := l.Append([]Record{submitRec(5)}); err != nil {
		t.Fatal(err)
	}
	if got := drainTailer(t, tl); len(got) != 1 || got[0].Seq != 5 {
		t.Fatalf("post-quiet drain = %+v", got)
	}
}

func TestTailerRestartMidSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	var recs []Record
	for i := 1; i <= 10; i++ {
		recs = append(recs, submitRec(i))
	}
	if err := l.Append(recs); err != nil {
		t.Fatal(err)
	}
	// A reader that died at seq 6 resumes exactly after it, even though 6
	// sits in the middle of a segment.
	tl := NewTailer(dir, 6)
	got := drainTailer(t, tl)
	if len(got) != 4 || got[0].Seq != 7 || got[3].Seq != 10 {
		t.Fatalf("mid-segment restart drain = %+v", got)
	}
	// Restarting past the end is simply caught up.
	if got := drainTailer(t, NewTailer(dir, 10)); len(got) != 0 {
		t.Fatalf("at-end restart returned %d records", len(got))
	}
}

func TestTailerBatchLimit(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	var recs []Record
	for i := 1; i <= 7; i++ {
		recs = append(recs, submitRec(i))
	}
	if err := l.Append(recs); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, 0)
	for _, want := range []int{3, 3, 1, 0} {
		got, err := tl.Next(3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("Next(3) returned %d records, want %d", len(got), want)
		}
	}
	if tl.Seq() != 7 {
		t.Fatalf("tailer seq = %d, want 7", tl.Seq())
	}
}

func TestTailerStopsAtTornTailThenResumes(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Record{submitRec(1)}); err != nil {
		t.Fatal(err)
	}
	seg := l.SegmentPath()
	l.Close()
	f, _ := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`deadbeef {"s":2,"op":"sub`)
	f.Close()

	tl := NewTailer(dir, 0)
	if got := drainTailer(t, tl); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("torn-tail drain = %+v", got)
	}
	// A recovering writer truncates the torn frame and appends fresh
	// records; the stopped tailer continues seamlessly.
	l2, _ := mustOpen(t, dir)
	if err := l2.Append([]Record{submitRec(2), submitRec(3)}); err != nil {
		t.Fatal(err)
	}
	got := drainTailer(t, tl)
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("post-truncate drain = %+v", got)
	}
}

func TestTailerGoneAfterPrune(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Record{submitRec(1), submitRec(2)}); err != nil {
		t.Fatal(err)
	}
	// The checkpoint prunes the only segment holding seqs 1-2; a reader
	// still positioned at 0 cannot continue incrementally.
	if err := l.Checkpoint(Meta{}, nil); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, 0)
	if _, err := tl.Next(0); !errors.Is(err, ErrGone) {
		t.Fatalf("pruned tail: err = %v, want ErrGone", err)
	}
}

func TestRetainFloorKeepsSegmentsForLaggingFollower(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	if err := l.Append([]Record{submitRec(1), submitRec(2)}); err != nil {
		t.Fatal(err)
	}
	// A registered follower has only acknowledged seq 0; the retention
	// floor must keep the segment alive through the checkpoint.
	l.SetRetainFloor(0)
	if err := l.Checkpoint(Meta{}, nil); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, 0)
	got := drainTailer(t, tl)
	if len(got) != 2 || got[0].Seq != 1 {
		t.Fatalf("retained drain = %+v", got)
	}
	if l.OldestSeq() != 1 {
		t.Fatalf("OldestSeq = %d, want 1", l.OldestSeq())
	}
	// The follower catches up and acks; the next checkpoint may prune.
	l.SetRetainFloor(l.Seq())
	if err := l.Append([]Record{submitRec(3)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(Meta{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewTailer(dir, 0).Next(0); !errors.Is(err, ErrGone) {
		t.Fatalf("caught-up floor: err = %v, want ErrGone after prune", err)
	}
}

func TestTailerConcurrentWithAppender(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	const total = 400
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= total; i++ {
			if err := l.Append([]Record{submitRec(i)}); err != nil {
				t.Error(err)
				return
			}
			if i%97 == 0 {
				// Rotations mid-stream: the floor keeps everything readable.
				l.SetRetainFloor(0)
				if err := l.Checkpoint(Meta{}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	tl := NewTailer(dir, 0)
	var got []Record
	for len(got) < total {
		recs, err := tl.Next(16)
		if err != nil {
			t.Fatalf("concurrent tail: %v (at %d records)", err, len(got))
		}
		got = append(got, recs...)
	}
	wg.Wait()
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestFloorAndTermRecordsSurviveReload(t *testing.T) {
	// Regression: OpFloor was journaled (federated preload fencing) but
	// missing from the decode switch, so any journal holding one failed to
	// reload. OpTerm rides the same check.
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	recs := []Record{submitRec(1), {Op: OpFloor, ID: 500}, {Op: OpTerm, Term: 3}}
	if err := l.Append(recs); err != nil {
		t.Fatal(err)
	}
	l.Close()
	st, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(st.Tail) != 3 {
		t.Fatalf("reloaded %d records, want 3", len(st.Tail))
	}
	if st.Tail[1].Op != OpFloor || st.Tail[1].ID != 500 {
		t.Fatalf("floor record corrupted: %+v", st.Tail[1])
	}
	if st.Tail[2].Op != OpTerm || st.Tail[2].Term != 3 {
		t.Fatalf("term record corrupted: %+v", st.Tail[2])
	}
}

func TestRecordFrameRoundTrip(t *testing.T) {
	r := Record{Seq: 42, Op: OpTerm, Term: 7}
	line, err := EncodeRecord(nil, r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecord(line[:len(line)-1]) // strip newline
	if err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("round trip: %+v != %+v", back, r)
	}
	m := Meta{Format: FormatVersion, Seq: 9, SimNow: 123, NextID: 4, StateHash: 99}
	mline, err := EncodeMeta(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	mback, err := DecodeMeta(mline[:len(mline)-1])
	if err != nil {
		t.Fatal(err)
	}
	if mback != m {
		t.Fatalf("meta round trip: %+v != %+v", mback, m)
	}
}
