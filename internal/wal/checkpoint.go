package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// FormatVersion is bumped whenever the on-disk encoding changes
// incompatibly; recovery refuses journals from the future.
const FormatVersion = 1

// Config pins the server configuration a journal was written under.
// Recovery refuses to replay a journal into a differently configured
// scheduler — a 128-proc EASY journal applied to a 64-proc conservative
// daemon would "succeed" into silent nonsense.
type Config struct {
	Procs     int    `json:"procs"`
	Scheduler string `json:"scheduler"`
	Policy    string `json:"policy"`
	Audit     bool   `json:"audit"`
	// IDStart/IDStride pin a federated shard's job-ID congruence class
	// (shard i of N assigns IDs i+1, i+1+N, ...). Zero for a standalone
	// daemon, so pre-federation journals stay recoverable.
	IDStart  int `json:"id_start,omitempty"`
	IDStride int `json:"id_stride,omitempty"`
}

// Meta is a checkpoint's header: where in the journal it stands and what
// state replaying its ops must reproduce.
type Meta struct {
	Format int    `json:"format"`
	Seq    uint64 `json:"seq"` // last journal record the checkpoint covers
	Ops    int    `json:"ops"` // number of compacted op lines that follow
	Config Config `json:"config"`

	// SimNow, NextID and Drained describe the serving state at Seq; the
	// recovering server cross-checks them after replay.
	SimNow  int64 `json:"sim_now"`
	NextID  int   `json:"next_id"`
	Drained bool  `json:"drained,omitempty"`
	// StateHash is sim.Session.StateHash() at Seq, encoded as a decimal
	// string so JSON number round-tripping cannot shave low bits.
	StateHash uint64 `json:"state_hash,string"`
	// Submitted/Cancelled counter values at Seq (replay cross-check).
	Submitted int64 `json:"submitted"`
	Cancelled int64 `json:"cancelled"`

	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// EncodeMeta appends m as one CRC-framed header line (newline included) —
// the first line of a checkpoint file, reused verbatim by the replication
// endpoint's full-resync response.
func EncodeMeta(dst []byte, m Meta) ([]byte, error) {
	header, err := json.Marshal(m)
	if err != nil {
		return dst, fmt.Errorf("wal: encode checkpoint meta: %w", err)
	}
	return appendFramed(dst, header), nil
}

// DecodeMeta validates and decodes one framed meta line (without its
// trailing newline).
func DecodeMeta(line []byte) (Meta, error) {
	header, err := unframe(line)
	if err != nil {
		return Meta{}, fmt.Errorf("wal: meta line: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(header, &meta); err != nil {
		return Meta{}, fmt.Errorf("wal: meta line: %w", err)
	}
	if meta.Format != FormatVersion {
		return Meta{}, fmt.Errorf("wal: meta has format %d, this build reads %d", meta.Format, FormatVersion)
	}
	return meta, nil
}

// writeCheckpoint durably writes one checkpoint file: meta line followed by
// meta.Ops framed record lines, all CRC-framed, written to a temp file,
// synced, then renamed into place so a crash never leaves a half-visible
// checkpoint under its final name.
func writeCheckpoint(dir string, meta Meta, ops []Record) error {
	if meta.CreatedUnix == 0 {
		meta.CreatedUnix = time.Now().Unix()
	}
	header, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("wal: encode checkpoint meta: %w", err)
	}
	buf := appendFramed(nil, header)
	for _, r := range ops {
		if buf, err = appendRecord(buf, r); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ckptName(meta.Seq))); err != nil {
		return fmt.Errorf("wal: publish checkpoint: %w", err)
	}
	return nil
}

// readCheckpoint loads and fully validates one checkpoint file. Any defect
// — framing, CRC, JSON, op count, op sequence — invalidates the whole file;
// a checkpoint is all-or-nothing by design.
func readCheckpoint(path string) (Meta, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("wal: %w", err)
	}
	lines := bytes.Split(data, []byte{'\n'})
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return Meta{}, nil, fmt.Errorf("wal: checkpoint %s is empty", path)
	}
	header, err := unframe(lines[0])
	if err != nil {
		return Meta{}, nil, fmt.Errorf("wal: checkpoint %s header: %w", path, err)
	}
	var meta Meta
	if err := json.Unmarshal(header, &meta); err != nil {
		return Meta{}, nil, fmt.Errorf("wal: checkpoint %s meta: %w", path, err)
	}
	if meta.Format != FormatVersion {
		return Meta{}, nil, fmt.Errorf("wal: checkpoint %s has format %d, this build reads %d", path, meta.Format, FormatVersion)
	}
	if len(lines)-1 != meta.Ops {
		return Meta{}, nil, fmt.Errorf("wal: checkpoint %s has %d op lines, meta promises %d", path, len(lines)-1, meta.Ops)
	}
	ops := make([]Record, 0, meta.Ops)
	var lastSeq uint64
	for i, line := range lines[1:] {
		r, err := decodeRecord(line)
		if err != nil {
			return Meta{}, nil, fmt.Errorf("wal: checkpoint %s op %d: %w", path, i, err)
		}
		if r.Seq <= lastSeq || r.Seq > meta.Seq {
			return Meta{}, nil, fmt.Errorf("wal: checkpoint %s op %d: seq %d out of order (cover is %d)", path, i, r.Seq, meta.Seq)
		}
		lastSeq = r.Seq
		ops = append(ops, r)
	}
	return meta, ops, nil
}
