package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
)

// ErrCorrupt wraps every unrecoverable journal defect: a CRC mismatch with
// valid records after it, a sequence gap inside the replay tail, a
// checkpoint whose op list fails validation with no older fallback, or a
// mismatch between a segment's name and its first record. Recovery fails
// loudly on these — half-applying a journal is the one thing a durability
// layer must never do.
var ErrCorrupt = errors.New("wal: corrupt journal")

// ErrLocked is returned when another process holds the data directory.
var ErrLocked = errors.New("wal: data directory locked by another process")

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	lockName   = "LOCK"
)

func segName(firstSeq uint64) string  { return fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, segSuffix) }
func ckptName(seq uint64) string      { return fmt.Sprintf("%s%016d%s", ckptPrefix, seq, ckptSuffix) }
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// segInfo is the Log's bookkeeping for one on-disk segment.
type segInfo struct {
	path        string
	first, last uint64 // last == first-1 when the segment is empty
}

// Options configure a Log.
type Options struct {
	// Fsync syncs the segment file after every Append (group commit: one
	// sync covers the whole batch). Off, appends still reach the kernel
	// before a write is acknowledged — surviving a process crash (SIGKILL)
	// but not a machine crash. See PERFORMANCE.md for the measured
	// tradeoff.
	Fsync bool
	// NoLock skips the flock guard (tests that intentionally reopen a dir
	// while simulating a crashed owner).
	NoLock bool
	// Notify, when set, is called by Append after a batch's records have
	// reached the kernel but before the fsync. That is the earliest instant
	// a tailing reader can see the bytes, so waking followers here lets
	// their pull/apply/ack round-trip overlap the leader's own disk sync —
	// the overlap that makes a follower ack quorum nearly free under Fsync.
	// Called on the appending goroutine; must not block.
	Notify func()
}

// Log is an open journal: the append side of the WAL plus checkpoint
// management. A Log is single-writer by contract (the scheduler goroutine);
// it is not internally synchronized.
type Log struct {
	dir  string
	opts Options
	lock *os.File
	f    *os.File // active segment
	segs []segInfo
	seq    uint64 // last assigned sequence number
	ckpt   uint64 // seq covered by the newest durable checkpoint (0: none)
	retain uint64 // keep segments holding records past this seq (follower floor)
	buf    []byte // append scratch, reused across batches
}

// Open locks dir (creating it if needed), recovers the durable state —
// newest valid checkpoint plus the journal tail past it, truncating a torn
// final record — and returns the Log positioned to append after the last
// surviving record. The returned State is what the caller must replay.
func Open(dir string, opts Options) (*Log, *State, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, retain: ^uint64(0)}
	if !opts.NoLock {
		lf, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
			lf.Close()
			return nil, nil, fmt.Errorf("%w: %s", ErrLocked, dir)
		}
		l.lock = lf
	}
	st, segs, err := load(dir, true)
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	l.segs = segs
	l.seq = st.NextSeq - 1
	if st.Checkpoint != nil {
		l.ckpt = st.Checkpoint.Seq
	}
	// Append to the newest segment, or start the journal's first one.
	if len(l.segs) == 0 {
		if err := l.rotate(l.seq + 1); err != nil {
			l.Close()
			return nil, nil, err
		}
	} else {
		f, err := os.OpenFile(l.segs[len(l.segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			l.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
	}
	return l, st, nil
}

// Seq returns the sequence number of the last appended (or recovered)
// record; 0 means the journal is empty.
func (l *Log) Seq() uint64 { return l.seq }

// CheckpointSeq returns the sequence covered by the newest durable
// checkpoint, 0 when none exists.
func (l *Log) CheckpointSeq() uint64 { return l.ckpt }

// SegmentPath returns the active segment's path.
func (l *Log) SegmentPath() string {
	if len(l.segs) == 0 {
		return ""
	}
	return l.segs[len(l.segs)-1].path
}

// TailRecords reports how many journal records sit past the newest
// checkpoint — the length of the replay tail a recovery would process now.
func (l *Log) TailRecords() uint64 { return l.seq - l.ckpt }

// SetRetainFloor tells pruning to keep every segment holding records past
// seq — the minimum acknowledged position across registered follower
// replicas, so a lagging follower can keep tailing incrementally instead
// of being forced into a full-checkpoint resync. The default (MaxUint64)
// retains nothing extra. Takes effect at the next Checkpoint.
func (l *Log) SetRetainFloor(seq uint64) { l.retain = seq }

// RetainFloor returns the current follower retention floor.
func (l *Log) RetainFloor() uint64 { return l.retain }

// OldestSeq returns the first sequence number still readable from the
// journal's segments (0 when the journal is empty) — a tail reader
// positioned before it must resync from the checkpoint instead.
func (l *Log) OldestSeq() uint64 {
	for _, s := range l.segs {
		if s.last >= s.first {
			return s.first
		}
	}
	return 0
}

// Append assigns sequence numbers to recs, writes them as one buffered
// write, and (with Options.Fsync) syncs once for the whole batch — the
// group commit that keeps a burst of N acknowledged writes at one disk
// round-trip instead of N. On error the records must be considered not
// durable; the caller must not acknowledge them.
func (l *Log) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.buf = l.buf[:0]
	seq := l.seq
	for i := range recs {
		seq++
		recs[i].Seq = seq
		var err error
		l.buf, err = appendRecord(l.buf, recs[i])
		if err != nil {
			return err
		}
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if l.opts.Notify != nil {
		l.opts.Notify()
	}
	if l.opts.Fsync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	l.seq = seq
	l.segs[len(l.segs)-1].last = seq
	return nil
}

// rotate closes the active segment and starts a fresh one whose first
// record will carry firstSeq.
func (l *Log) rotate(firstSeq uint64) error {
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.segs = append(l.segs, segInfo{path: path, first: firstSeq, last: firstSeq - 1})
	return l.syncDir()
}

// syncDir makes directory-level mutations (new segment, checkpoint rename,
// prune) durable.
func (l *Log) syncDir() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// Checkpoint durably writes a checkpoint covering every record appended so
// far (meta.Seq is forced to the Log's current seq), rotates to a fresh
// segment, and prunes checkpoints and segments the new checkpoint makes
// redundant. The ops slice must replay to the exact state described by
// meta — the recovering side verifies meta.StateHash against its replay.
func (l *Log) Checkpoint(meta Meta, ops []Record) error {
	meta.Format = FormatVersion
	meta.Seq = l.seq
	meta.Ops = len(ops)
	if err := writeCheckpoint(l.dir, meta, ops); err != nil {
		return err
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	l.ckpt = meta.Seq
	if err := l.rotate(l.seq + 1); err != nil {
		return err
	}
	l.prune()
	return nil
}

// prune removes checkpoints older than the newest one and segments fully
// covered by it — except segments still above the follower retention floor
// (SetRetainFloor), which a registered replica has yet to acknowledge.
// Best effort: a leftover file is re-pruned on the next checkpoint and
// never confuses recovery, which filters by sequence.
func (l *Log) prune() {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), ckptPrefix, ckptSuffix); ok && seq < l.ckpt {
			os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
	if len(l.segs) == 0 {
		return
	}
	active := len(l.segs) - 1
	keep := l.segs[:0]
	for i, s := range l.segs {
		if i != active && s.last <= l.ckpt && s.last <= l.retain {
			os.Remove(s.path)
			continue
		}
		keep = append(keep, s)
	}
	l.segs = keep
	l.syncDir()
}

// Close releases the segment file and the directory lock. Safe to call
// multiple times.
func (l *Log) Close() error {
	var first error
	if l.f != nil {
		first = l.f.Close()
		l.f = nil
	}
	if l.lock != nil {
		l.lock.Close() // closing the fd releases the flock
		l.lock = nil
	}
	return first
}

// listSorted returns dir entries matching prefix/suffix sorted by their
// embedded sequence number.
func listSorted(dir, prefix, suffix string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []segInfo
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, segInfo{path: filepath.Join(dir, e.Name()), first: seq})
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].first < out[k].first })
	return out, nil
}
