package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// State is everything recovery needs: the newest valid checkpoint (with its
// compacted op prefix) and the journal tail past it. Replaying
// CheckpointOps then Tail, in order, reconstructs the durable state.
type State struct {
	// Checkpoint is nil when recovery starts from genesis.
	Checkpoint    *Meta
	CheckpointOps []Record
	// Tail holds the journal records past the checkpoint, contiguous from
	// Checkpoint.Seq+1 (or from 1 at genesis).
	Tail []Record
	// NextSeq is 1 + the highest sequence number the journal has used.
	NextSeq uint64
	// TruncatedBytes counts bytes of torn final record in the newest
	// segment — the expected residue of a crash mid-append, or of reading a
	// live journal mid-write. A writer Open removes them from the file; a
	// read-only Load leaves the file untouched and just ignores them.
	TruncatedBytes int64
	// Warnings records non-fatal oddities (e.g. an unreadable newer
	// checkpoint that was skipped for an older valid one).
	Warnings []string
}

// Ops returns the full replay sequence: checkpoint prefix then tail.
func (st *State) Ops() []Record {
	out := make([]Record, 0, len(st.CheckpointOps)+len(st.Tail))
	out = append(out, st.CheckpointOps...)
	return append(out, st.Tail...)
}

// Load recovers the durable state from dir without opening it for writing:
// no flock is taken and nothing on disk is mutated, so it is safe against a
// journal another process is actively appending to. A torn final record —
// a crash's residue, or an append caught mid-frame — is ignored (reported
// in TruncatedBytes), never truncated; the caller sees the journal as of
// the last complete record and can simply load again for a newer view.
// Tools (the crash-mode shadow replay) and follower replicas' full-resync
// path both read journals this way.
func Load(dir string) (*State, error) {
	st, _, err := load(dir, false)
	return st, err
}

// load scans dir and returns the recovered state plus per-segment info for
// the Log's bookkeeping. With truncate, a torn final record is removed from
// the active segment (the writer's boot path); without, it is left in place
// and ignored (the read-only path — truncating would destroy bytes a live
// appender may still be writing).
func load(dir string, truncate bool) (*State, []segInfo, error) {
	st := &State{NextSeq: 1}

	// Newest checkpoint that fully validates wins; broken ones are skipped
	// with a warning as long as an older checkpoint or a genesis-complete
	// journal can still anchor recovery.
	ckpts, err := listSorted(dir, ckptPrefix, ckptSuffix)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return st, nil, nil
		}
		return nil, nil, err
	}
	for i := len(ckpts) - 1; i >= 0; i-- {
		meta, ops, err := readCheckpoint(ckpts[i].path)
		if err != nil {
			st.Warnings = append(st.Warnings, err.Error())
			continue
		}
		st.Checkpoint = &meta
		st.CheckpointOps = ops
		break
	}
	ckptSeq := uint64(0)
	if st.Checkpoint != nil {
		ckptSeq = st.Checkpoint.Seq
	}

	segs, err := listSorted(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, nil, err
	}
	var all []Record
	for i := range segs {
		isLast := i == len(segs)-1
		recs, tornAt, err := scanSegment(segs[i].path, isLast)
		if err != nil {
			return nil, nil, err
		}
		if tornAt >= 0 {
			fi, err := os.Stat(segs[i].path)
			if err != nil {
				return nil, nil, fmt.Errorf("wal: %w", err)
			}
			st.TruncatedBytes = fi.Size() - tornAt
			if truncate {
				if err := os.Truncate(segs[i].path, tornAt); err != nil {
					return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
				}
			}
		}
		if len(recs) > 0 && recs[0].Seq != segs[i].first {
			return nil, nil, fmt.Errorf("%w: segment %s starts at seq %d, name promises %d",
				ErrCorrupt, segs[i].path, recs[0].Seq, segs[i].first)
		}
		for k := 1; k < len(recs); k++ {
			if recs[k].Seq != recs[k-1].Seq+1 {
				return nil, nil, fmt.Errorf("%w: segment %s jumps from seq %d to %d",
					ErrCorrupt, segs[i].path, recs[k-1].Seq, recs[k].Seq)
			}
		}
		segs[i].last = segs[i].first - 1
		if len(recs) > 0 {
			segs[i].last = recs[len(recs)-1].Seq
		}
		all = append(all, recs...)
	}

	// The replay tail is everything past the checkpoint. It must be
	// contiguous from ckptSeq+1 — a gap means a segment the checkpoint does
	// not cover went missing, and replaying around it would half-apply.
	for _, r := range all {
		if r.Seq <= ckptSeq {
			continue // compacted into the checkpoint; pruning just hadn't caught up
		}
		want := ckptSeq + uint64(len(st.Tail)) + 1
		if r.Seq != want {
			return nil, nil, fmt.Errorf("%w: journal tail needs seq %d next but found %d (checkpoint covers through %d)",
				ErrCorrupt, want, r.Seq, ckptSeq)
		}
		st.Tail = append(st.Tail, r)
	}
	st.NextSeq = ckptSeq + uint64(len(st.Tail)) + 1
	return st, segs, nil
}

// scanSegment reads one segment's records. In the last (active) segment a
// trailing defect — partial line or failed CRC with nothing valid after it
// — is a torn write: scanSegment reports the byte offset to truncate at.
// Anywhere else a defect is corruption.
func scanSegment(path string, isLast bool) (recs []Record, tornAt int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, -1, fmt.Errorf("wal: %w", err)
	}
	offset := 0
	for offset < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			// Partial final line: torn in the active segment, corrupt in a
			// sealed one.
			if isLast {
				return recs, int64(offset), nil
			}
			return nil, -1, fmt.Errorf("%w: sealed segment %s ends mid-record", ErrCorrupt, path)
		}
		r, decErr := decodeRecord(data[offset : offset+nl])
		if decErr != nil {
			if isLast && !anyValidRecord(data[offset+nl+1:]) {
				return recs, int64(offset), nil
			}
			return nil, -1, fmt.Errorf("%w: %s at byte %d: %v", ErrCorrupt, path, offset, decErr)
		}
		recs = append(recs, r)
		offset += nl + 1
	}
	return recs, -1, nil
}

// anyValidRecord reports whether rest contains at least one decodable
// record — the discriminator between a torn tail (nothing valid after the
// damage; truncate) and mid-file corruption (valid data after the damage;
// fail loudly rather than drop acknowledged writes).
func anyValidRecord(rest []byte) bool {
	for _, line := range bytes.Split(rest, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		if _, err := decodeRecord(line); err == nil {
			return true
		}
	}
	return false
}
