// Package grid simulates multi-site job scheduling with multiple
// simultaneous requests, after the authors' companion paper (Subramani,
// Kettimuthu, Srinivasan & Sadayappan, "Distributed job scheduling on
// computational grids using multiple simultaneous requests", HPDC 2002 —
// the paper's reference [12]): each job is submitted to K sites at once,
// the first site to actually start it wins, and the other copies are
// cancelled. Redundant requests let jobs exploit whichever site happens to
// have a hole, without any global load information.
//
// The package runs its own event loop over per-site schedulers from the
// sched package; any scheduler implementing sched.Canceler participates.
package grid

import (
	"fmt"
	"sort"

	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Site is one machine in the grid.
type Site struct {
	// Name labels the site in placements.
	Name string
	// Procs is the machine size.
	Procs int
	// Make constructs the site's scheduler.
	Make sched.Maker
}

// Routing selects which sites receive each job.
type Routing int

const (
	// Single submits each job to one site chosen round-robin among the
	// sites wide enough for it — the no-information baseline.
	Single Routing = iota
	// ReplicateAll submits each job to every site wide enough for it; the
	// first start wins (the companion paper's multiple simultaneous
	// requests).
	ReplicateAll
	// LeastLoaded submits to the single site with the least outstanding
	// work (an omniscient-information baseline the paper compares
	// against).
	LeastLoaded
)

// String names the routing.
func (r Routing) String() string {
	switch r {
	case Single:
		return "single"
	case ReplicateAll:
		return "replicate-all"
	case LeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("Routing(%d)", int(r))
	}
}

// Placement records where a job ran.
type Placement struct {
	Job   *job.Job
	Site  int
	Start int64
	End   int64
}

// siteState is the per-site simulation state.
type siteState struct {
	cfg       Site
	scheduler sim.Scheduler
	canceler  sched.Canceler
	// pendingWork tracks outstanding runtime×width for LeastLoaded.
	pendingWork int64
}

// Run simulates jobs across the sites under the given routing and returns
// one placement per job. Jobs wider than every site are rejected. With
// ReplicateAll the per-site schedulers must implement sched.Canceler.
func Run(sites []Site, jobs []*job.Job, routing Routing) ([]Placement, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("grid: no sites")
	}
	states := make([]*siteState, len(sites))
	maxProcs := 0
	for i, s := range sites {
		if s.Procs < 1 {
			return nil, fmt.Errorf("grid: site %q has %d processors", s.Name, s.Procs)
		}
		if s.Make == nil {
			return nil, fmt.Errorf("grid: site %q has no scheduler", s.Name)
		}
		scheduler := s.Make(s.Procs)
		st := &siteState{cfg: s, scheduler: scheduler}
		st.canceler, _ = scheduler.(sched.Canceler)
		if routing == ReplicateAll && st.canceler == nil {
			return nil, fmt.Errorf("grid: site %q scheduler %s cannot cancel queued jobs (required for replicate-all)", s.Name, scheduler.Name())
		}
		states[i] = st
		if s.Procs > maxProcs {
			maxProcs = s.Procs
		}
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("grid: %w", err)
		}
		if j.Width > maxProcs {
			return nil, fmt.Errorf("grid: %v fits no site (max %d processors)", j, maxProcs)
		}
	}

	q := sim.NewEventQueue()
	for _, j := range jobs {
		q.Push(j.Arrival, sim.Arrival, j)
	}

	placedAt := make(map[int]int, len(jobs))    // job ID -> site (once started)
	submitted := make(map[int][]int, len(jobs)) // job ID -> sites holding a copy
	completionSite := make(map[int]int, len(jobs))
	placements := make([]Placement, 0, len(jobs))
	rr := 0 // round-robin cursor for Single

	eligible := func(j *job.Job) []int {
		var out []int
		for i, st := range states {
			if j.Width <= st.cfg.Procs {
				out = append(out, i)
			}
		}
		return out
	}

	route := func(j *job.Job) []int {
		sites := eligible(j)
		switch routing {
		case ReplicateAll:
			return sites
		case LeastLoaded:
			best := sites[0]
			for _, i := range sites[1:] {
				if states[i].pendingWork < states[best].pendingWork {
					best = i
				}
			}
			return []int{best}
		default: // Single: round-robin over eligible sites
			pick := sites[rr%len(sites)]
			rr++
			return []int{pick}
		}
	}

	for q.Len() > 0 {
		head, _ := q.Peek()
		now := head.Time
		for {
			if h, ok := q.Peek(); !ok || h.Time != now {
				break
			}
			e, _ := q.Pop()
			switch e.Kind {
			case sim.Completion:
				site := completionSite[e.Job.ID]
				states[site].scheduler.Complete(now, e.Job)
				states[site].pendingWork -= int64(e.Job.Width) * e.Job.Runtime
			case sim.Arrival:
				targets := route(e.Job)
				submitted[e.Job.ID] = targets
				for _, i := range targets {
					states[i].scheduler.Arrive(now, e.Job)
					states[i].pendingWork += int64(e.Job.Width) * e.Job.Runtime
				}
			}
		}

		// Launch sites repeatedly until a fixed point: a start at one site
		// cancels copies elsewhere, and a cancellation frees capacity (or
		// compresses reservations to "now") at a site whose Launch already
		// ran this instant, so a single pass can strand startable jobs
		// until the next event. Each iteration either starts a job or
		// stops, so the loop terminates.
		for {
			progressed := false
			for i, st := range states {
				for _, j := range st.scheduler.Launch(now) {
					progressed = true
					if winner, dup := placedAt[j.ID]; dup {
						return nil, fmt.Errorf("grid: %v started at sites %d and %d — cancellation failed", j, winner, i)
					}
					placedAt[j.ID] = i
					completionSite[j.ID] = i
					placements = append(placements, Placement{Job: j, Site: i, Start: now, End: now + j.Runtime})
					q.Push(now+j.Runtime, sim.Completion, j)
					// Withdraw the other copies.
					for _, other := range submitted[j.ID] {
						if other == i {
							continue
						}
						if states[other].canceler == nil || !states[other].canceler.Cancel(now, j) {
							return nil, fmt.Errorf("grid: could not cancel %v at site %d after it started at site %d", j, other, i)
						}
						states[other].pendingWork -= int64(j.Width) * j.Runtime
					}
					delete(submitted, j.ID)
				}
			}
			if !progressed {
				break
			}
		}
	}

	for i, st := range states {
		leftovers := 0
		for _, j := range st.scheduler.QueuedJobs() {
			if _, placed := placedAt[j.ID]; !placed {
				leftovers++
			}
		}
		if leftovers > 0 {
			return nil, fmt.Errorf("grid: site %d deadlocked with %d unplaced jobs", i, leftovers)
		}
	}
	if len(placements) != len(jobs) {
		return nil, fmt.Errorf("grid: %d placements for %d jobs", len(placements), len(jobs))
	}

	sort.Slice(placements, func(i, k int) bool {
		if placements[i].Start != placements[k].Start {
			return placements[i].Start < placements[k].Start
		}
		return placements[i].Job.ID < placements[k].Job.ID
	})
	return placements, nil
}

// ToSimPlacements converts grid placements to engine placements so the
// metrics package can analyze them.
func ToSimPlacements(ps []Placement) []sim.Placement {
	out := make([]sim.Placement, len(ps))
	for i, p := range ps {
		out[i] = sim.Placement{Job: p.Job, Start: p.Start, End: p.End}
	}
	return out
}
