package grid

import (
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

func easySites(n, procs int) []Site {
	sites := make([]Site, n)
	for i := range sites {
		sites[i] = Site{
			Name:  string(rune('A' + i)),
			Procs: procs,
			Make:  func(p int) sim.Scheduler { return sched.NewEASY(p, sched.FCFS{}) },
		}
	}
	return sites
}

func gj(id int, arr, rt int64, w int) *job.Job {
	return &job.Job{ID: id, Arrival: arr, Runtime: rt, Estimate: rt, Width: w}
}

// gridWorkload builds a random valid workload for procs-wide sites.
func gridWorkload(r *stats.RNG, n, procs int) []*job.Job {
	jobs := make([]*job.Job, 0, n)
	clock := int64(0)
	for i := 1; i <= n; i++ {
		clock += int64(r.Intn(120) + 1)
		rt := int64(r.Intn(3000) + 1)
		w := r.Intn(procs) + 1
		if r.Bool(0.7) {
			w = r.Intn(procs/4) + 1
		}
		jobs = append(jobs, gj(i, clock, rt, w))
	}
	return jobs
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, nil, Single); err == nil {
		t.Error("no sites should error")
	}
	bad := []Site{{Name: "x", Procs: 0, Make: func(p int) sim.Scheduler { return sched.NewEASY(1, sched.FCFS{}) }}}
	if _, err := Run(bad, nil, Single); err == nil {
		t.Error("zero-proc site should error")
	}
	noMake := []Site{{Name: "x", Procs: 4}}
	if _, err := Run(noMake, nil, Single); err == nil {
		t.Error("missing scheduler should error")
	}
	sites := easySites(2, 8)
	tooWide := []*job.Job{gj(1, 0, 10, 99)}
	if _, err := Run(sites, tooWide, Single); err == nil {
		t.Error("job fitting no site should error")
	}
	invalid := []*job.Job{{ID: 1, Runtime: 10, Estimate: 5, Width: 1}}
	if _, err := Run(sites, invalid, Single); err == nil {
		t.Error("invalid job should error")
	}
}

func TestReplicateAllRequiresCanceler(t *testing.T) {
	sites := []Site{{
		Name:  "nc",
		Procs: 8,
		// SelectiveAdaptive implements Cancel; build something that does
		// not: wrap via an anonymous non-canceling scheduler is overkill —
		// the Partitioned meta-scheduler does not implement Canceler.
		Make: func(p int) sim.Scheduler {
			sizes := []int{p / 2, p - p/2}
			return sched.NewPartitioned(sizes, sched.RuntimeRouter(60, sizes), func(pp, _ int) sim.Scheduler {
				return sched.NewEASY(pp, sched.FCFS{})
			})
		},
	}}
	_, err := Run(sites, nil, ReplicateAll)
	if err == nil || !strings.Contains(err.Error(), "cannot cancel") {
		t.Fatalf("want canceler error, got %v", err)
	}
}

func TestSingleRoundRobin(t *testing.T) {
	// Two idle sites, two simultaneous jobs: round-robin sends one each;
	// both start immediately.
	sites := easySites(2, 8)
	jobs := []*job.Job{gj(1, 0, 100, 8), gj(2, 0, 100, 8)}
	ps, err := Run(sites, jobs, Single)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].Start != 0 || ps[1].Start != 0 {
		t.Fatalf("both jobs should start at 0: %+v", ps)
	}
	if ps[0].Site == ps[1].Site {
		t.Fatal("round-robin should spread the jobs")
	}
}

func TestReplicationFindsTheIdleSite(t *testing.T) {
	// Site A busy until 1000; site B idle from t=10. A single submission
	// that lands on A waits; replication runs on B immediately.
	sites := easySites(2, 8)
	jobs := []*job.Job{
		gj(1, 0, 1000, 8), // occupies whichever site round-robin picks first (A)
		gj(2, 1, 1000, 8), // occupies B
		gj(3, 2, 50, 8),   // the probe: replicated, must wait for the earliest site
		gj(4, 3, 50, 8),
	}
	single, err := Run(sites, jobs, Single)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := Run(sites, jobs, ReplicateAll)
	if err != nil {
		t.Fatal(err)
	}
	wait := func(ps []Placement) int64 {
		var sum int64
		for _, p := range ps {
			sum += p.Start - p.Job.Arrival
		}
		return sum
	}
	if wait(repl) > wait(single) {
		t.Fatalf("replication total wait %d worse than single %d", wait(repl), wait(single))
	}
}

func TestEveryJobRunsExactlyOnce(t *testing.T) {
	sites := easySites(3, 16)
	jobs := gridWorkload(stats.NewRNG(1800), 200, 16)
	for _, routing := range []Routing{Single, ReplicateAll, LeastLoaded} {
		ps, err := Run(sites, jobs, routing)
		if err != nil {
			t.Fatalf("%v: %v", routing, err)
		}
		if len(ps) != len(jobs) {
			t.Fatalf("%v: %d placements for %d jobs", routing, len(ps), len(jobs))
		}
		seen := map[int]bool{}
		for _, p := range ps {
			if seen[p.Job.ID] {
				t.Fatalf("%v: job %d ran twice", routing, p.Job.ID)
			}
			seen[p.Job.ID] = true
			if p.Site < 0 || p.Site >= len(sites) {
				t.Fatalf("%v: bad site %d", routing, p.Site)
			}
			if p.Start < p.Job.Arrival {
				t.Fatalf("%v: %v started before arrival", routing, p.Job)
			}
		}
	}
}

func TestGridDeterministic(t *testing.T) {
	sites := easySites(3, 16)
	jobs := gridWorkload(stats.NewRNG(1801), 150, 16)
	a, err := Run(sites, jobs, ReplicateAll)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sites, jobs, ReplicateAll)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("grid run nondeterministic")
		}
	}
}

func TestReplicationBeatsSingleOnMeanWait(t *testing.T) {
	// The companion paper's headline: redundant requests reduce turnaround
	// by exploiting whichever site has a hole.
	sites := easySites(4, 16)
	jobs := gridWorkload(stats.NewRNG(1802), 400, 16)
	meanWait := func(routing Routing) float64 {
		ps, err := Run(sites, jobs, routing)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range ps {
			sum += float64(p.Start - p.Job.Arrival)
		}
		return sum / float64(len(ps))
	}
	single := meanWait(Single)
	repl := meanWait(ReplicateAll)
	if repl >= single {
		t.Fatalf("replicate-all mean wait %.1f not below single %.1f", repl, single)
	}
}

func TestGridWithConservativeSites(t *testing.T) {
	sites := []Site{
		{Name: "A", Procs: 16, Make: func(p int) sim.Scheduler { return sched.NewConservative(p, sched.FCFS{}) }},
		{Name: "B", Procs: 16, Make: func(p int) sim.Scheduler { return sched.NewConservative(p, sched.FCFS{}) }},
	}
	jobs := gridWorkload(stats.NewRNG(1803), 150, 16)
	ps, err := Run(sites, jobs, ReplicateAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(jobs) {
		t.Fatalf("placements = %d", len(ps))
	}
}

func TestHeterogeneousSiteWidths(t *testing.T) {
	// Wide jobs only fit the big site; narrow ones go anywhere.
	sites := []Site{
		{Name: "small", Procs: 8, Make: func(p int) sim.Scheduler { return sched.NewEASY(p, sched.FCFS{}) }},
		{Name: "big", Procs: 32, Make: func(p int) sim.Scheduler { return sched.NewEASY(p, sched.FCFS{}) }},
	}
	jobs := []*job.Job{
		gj(1, 0, 100, 32), // only fits big
		gj(2, 1, 100, 4),
		gj(3, 2, 100, 16), // only fits big
	}
	ps, err := Run(sites, jobs, ReplicateAll)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if p.Job.Width > 8 && p.Site != 1 {
			t.Fatalf("%v placed at small site", p.Job)
		}
	}
}

func TestRoutingString(t *testing.T) {
	if Single.String() != "single" || ReplicateAll.String() != "replicate-all" || LeastLoaded.String() != "least-loaded" {
		t.Fatal("routing names wrong")
	}
	if Routing(9).String() == "" {
		t.Fatal("unknown routing should stringify")
	}
}

func TestToSimPlacements(t *testing.T) {
	ps := []Placement{{Job: gj(1, 0, 10, 1), Site: 0, Start: 5, End: 15}}
	sp := ToSimPlacements(ps)
	if len(sp) != 1 || sp[0].Start != 5 || sp[0].End != 15 || sp[0].Job.ID != 1 {
		t.Fatalf("converted = %+v", sp)
	}
}
