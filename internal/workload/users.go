package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/stats"
)

// SessionModel generates workloads through a population of simulated users
// instead of a memoryless renewal process. Each user alternates between
// idle periods and working sessions; within a session, submissions follow
// think times and are frequently *repetitions* of the user's previous job
// (parameter sweeps, restarted crashes). Session structure produces the
// burstiness and temporal locality real logs show and renewal processes
// miss (Zilber/Talby-style user modeling), which stresses backfilling very
// differently: bursts of near-identical jobs arrive together.
type SessionModel struct {
	// Base supplies the machine, category mix and per-category runtime and
	// width distributions.
	Base *Model
	// Users is the active population size (>= 1).
	Users int
	// ThinkMean is the mean think time between a session's submissions,
	// seconds (> 0).
	ThinkMean float64
	// IdleMean is the mean gap between a user's sessions, seconds (> 0).
	IdleMean float64
	// JobsPerSession is the mean session length in jobs (>= 1); session
	// lengths are geometric.
	JobsPerSession float64
	// RepeatP is the probability a submission repeats the user's previous
	// job shape with jittered runtime, in [0, 1].
	RepeatP float64
}

// Validate reports the first problem with the configuration.
func (s *SessionModel) Validate() error {
	if s.Base == nil {
		return fmt.Errorf("workload: SessionModel without base model")
	}
	if err := s.Base.Validate(); err != nil {
		return err
	}
	if s.Users < 1 {
		return fmt.Errorf("workload: SessionModel with %d users", s.Users)
	}
	if s.ThinkMean <= 0 || s.IdleMean <= 0 {
		return fmt.Errorf("workload: SessionModel think/idle means must be positive (%v, %v)", s.ThinkMean, s.IdleMean)
	}
	if s.JobsPerSession < 1 {
		return fmt.Errorf("workload: SessionModel JobsPerSession %v < 1", s.JobsPerSession)
	}
	if s.RepeatP < 0 || s.RepeatP > 1 {
		return fmt.Errorf("workload: SessionModel RepeatP %v out of [0,1]", s.RepeatP)
	}
	return nil
}

// userState tracks one simulated user's submission process.
type userState struct {
	id      int
	next    int64 // next submission time
	last    *job.Job
	inBurst bool
}

// Generate produces n jobs, deterministically for a given seed, merged from
// all users' submission streams in arrival order.
func (s *SessionModel) Generate(n int, seed int64) ([]*job.Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: Generate(%d)", n)
	}
	root := stats.NewRNG(seed)
	timingRNG := root.Fork()
	shapeRNG := root.Fork()
	catRNG := root.Fork()

	catDist := stats.MustDiscrete(
		[]float64{float64(job.ShortNarrow), float64(job.ShortWide), float64(job.LongNarrow), float64(job.LongWide)},
		[]float64{s.Base.Mix[job.ShortNarrow], s.Base.Mix[job.ShortWide], s.Base.Mix[job.LongNarrow], s.Base.Mix[job.LongWide]},
	)

	users := make([]*userState, s.Users)
	for i := range users {
		users[i] = &userState{
			id: i + 1,
			// Stagger initial sessions across one idle period.
			next: int64(timingRNG.Float64() * s.IdleMean),
		}
	}

	continueP := 1 - 1/s.JobsPerSession // geometric continuation probability

	jobs := make([]*job.Job, 0, n)
	for len(jobs) < n {
		// Next submitting user (linear scan: populations are small).
		u := users[0]
		for _, cand := range users[1:] {
			if cand.next < u.next || (cand.next == u.next && cand.id < u.id) {
				u = cand
			}
		}

		j := s.drawJob(u, catDist, catRNG, shapeRNG)
		j.ID = len(jobs) + 1
		j.Arrival = u.next
		j.User = u.id
		jobs = append(jobs, j)
		u.last = j

		// Schedule the user's next submission.
		if timingRNG.Bool(continueP) {
			u.inBurst = true
			u.next += int64(math.Ceil(stats.Exponential{M: s.ThinkMean}.Sample(timingRNG))) + 1
		} else {
			u.inBurst = false
			u.next += int64(math.Ceil(stats.Exponential{M: s.IdleMean}.Sample(timingRNG))) + 1
		}
	}

	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].Arrival != jobs[k].Arrival {
			return jobs[i].Arrival < jobs[k].Arrival
		}
		return jobs[i].ID < jobs[k].ID
	})
	for i, j := range jobs {
		j.ID = i + 1
	}
	return jobs, nil
}

// drawJob produces the next job for a user: either a jittered repeat of the
// user's previous job or a fresh draw from the base model.
func (s *SessionModel) drawJob(u *userState, catDist *stats.Discrete, catRNG, shapeRNG *stats.RNG) *job.Job {
	if u.last != nil && u.inBurst && shapeRNG.Bool(s.RepeatP) {
		rt := int64(float64(u.last.Runtime) * shapeRNG.Range(0.8, 1.25))
		if rt < 1 {
			rt = 1
		}
		if rt > s.Base.MaxRuntime {
			rt = s.Base.MaxRuntime
		}
		return &job.Job{Runtime: rt, Estimate: rt, Width: u.last.Width}
	}
	c := job.Category(int(catDist.Sample(catRNG)))
	rlo, rhi := s.Base.runtimeRange(c)
	rt := sampleDuration(s.Base.Runtime[c], shapeRNG, rlo, rhi)
	wlo, whi := s.Base.widthRange(c)
	w := sampleWidth(s.Base.Width[c], shapeRNG, wlo, whi)
	return &job.Job{Runtime: rt, Estimate: rt, Width: w}
}

// NewSessionCTC returns a session-based CTC-like model with typical user
// parameters, roughly calibrated to the target offered load by sizing the
// user population.
func NewSessionCTC(load float64) (*SessionModel, error) {
	base, err := NewCTC(load)
	if err != nil {
		return nil, err
	}
	s := &SessionModel{
		Base:           base,
		ThinkMean:      600,      // 10 min between a session's submissions
		IdleMean:       6 * 3600, // 6 h between sessions
		JobsPerSession: 6,
		RepeatP:        0.6,
	}
	if err := s.CalibrateUsers(load); err != nil {
		return nil, err
	}
	return s, nil
}

// CalibrateUsers sizes the user population so the generated offered load
// approximates the target: mean work per job divided by the per-user
// submission rate.
func (s *SessionModel) CalibrateUsers(load float64) error {
	if load <= 0 || load > 1.5 {
		return fmt.Errorf("workload: CalibrateUsers(%v) out of (0, 1.5]", load)
	}
	if s.Base == nil {
		return fmt.Errorf("workload: CalibrateUsers without base model")
	}
	mw, err := s.Base.MeanWork(20000)
	if err != nil {
		return err
	}
	// A user submits JobsPerSession jobs per (session + idle) cycle; the
	// session lasts (JobsPerSession-1)·ThinkMean.
	cycle := (s.JobsPerSession-1)*s.ThinkMean + s.IdleMean
	ratePerUser := s.JobsPerSession / cycle     // jobs per second per user
	target := load * float64(s.Base.Procs) / mw // total jobs per second needed
	users := int(math.Round(target / ratePerUser))
	if users < 1 {
		users = 1
	}
	s.Users = users
	return nil
}
