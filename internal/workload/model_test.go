package workload

import (
	"math"
	"testing"

	"repro/internal/job"
	"repro/internal/stats"
)

func testModel() *Model {
	return newSP2Model("test", 64, job.Mix{0.4, 0.2, 0.3, 0.1}, 12*3600)
}

func TestModelValidateOK(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidateFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"zero procs", func(m *Model) { m.Procs = 0 }},
		{"mix does not sum", func(m *Model) { m.Mix = job.Mix{0.9, 0, 0, 0} }},
		{"negative mix", func(m *Model) { m.Mix = job.Mix{1.2, 0.2, -0.4, 0} }},
		{"missing runtime dist", func(m *Model) { m.Runtime[job.ShortNarrow] = nil }},
		{"missing width dist", func(m *Model) { m.Width[job.LongWide] = nil }},
		{"missing interarrival", func(m *Model) { m.Interarrival = nil }},
		{"max runtime too small", func(m *Model) { m.MaxRuntime = 3600 }},
		{"no users", func(m *Model) { m.Users = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testModel()
			tc.mutate(m)
			if err := m.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestGenerateBasics(t *testing.T) {
	m := testModel()
	jobs, err := m.Generate(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 500 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	prevArrival := int64(-1)
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if j.ID != i+1 {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
		if j.Arrival < prevArrival {
			t.Fatal("arrivals not monotone")
		}
		prevArrival = j.Arrival
		if j.Width > m.Procs {
			t.Fatalf("job wider than machine: %v", j)
		}
		if j.Estimate != j.Runtime {
			t.Fatalf("Generate should produce exact estimates, got %v", j)
		}
		if j.Runtime > m.MaxRuntime {
			t.Fatalf("runtime beyond cap: %v", j)
		}
		if j.User < 1 || j.User > m.Users {
			t.Fatalf("user out of range: %v", j)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := testModel()
	a, err := m.Generate(200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Generate(200, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("job %d differs across same-seed runs", i)
		}
	}
	c, err := m.Generate(200, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if *a[i] != *c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGenerateRespectsCategoryBounds(t *testing.T) {
	m := testModel()
	jobs, err := m.Generate(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	th := m.Thresholds
	for _, j := range jobs {
		c := th.Classify(j)
		// Every job must land in *some* category with consistent bounds —
		// i.e. widths/runtimes never straddle: a short job is <= 3600 etc.
		switch c {
		case job.ShortNarrow:
			if j.Runtime > 3600 || j.Width > 8 {
				t.Fatalf("misclassified %v", j)
			}
		case job.LongWide:
			if j.Runtime <= 3600 || j.Width <= 8 {
				t.Fatalf("misclassified %v", j)
			}
		}
	}
}

func TestGenerateMatchesTargetMix(t *testing.T) {
	m := testModel()
	jobs, err := m.Generate(20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	mix := job.CategoryMix(jobs, m.Thresholds)
	for _, c := range job.Categories() {
		if math.Abs(mix[c]-m.Mix[c]) > 0.02 {
			t.Errorf("%v fraction = %.4f, target %.4f", c, mix[c], m.Mix[c])
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	m := testModel()
	if _, err := m.Generate(-1, 0); err == nil {
		t.Error("negative n should error")
	}
	bad := testModel()
	bad.Procs = 0
	if _, err := bad.Generate(10, 0); err == nil {
		t.Error("invalid model should error")
	}
}

func TestCalibrateLoad(t *testing.T) {
	m := testModel()
	if err := m.CalibrateLoad(0.9, 20000); err != nil {
		t.Fatal(err)
	}
	jobs, err := m.Generate(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical offered load = total work / (procs × span).
	var work float64
	for _, j := range jobs {
		work += float64(j.Width) * float64(j.Runtime)
	}
	span := float64(jobs[len(jobs)-1].Arrival - jobs[0].Arrival)
	load := work / (float64(m.Procs) * span)
	if math.Abs(load-0.9) > 0.15 {
		t.Fatalf("calibrated offered load = %.3f, want ~0.9", load)
	}
}

func TestCalibrateLoadRejectsBadTarget(t *testing.T) {
	m := testModel()
	for _, bad := range []float64{0, -0.5, 2.0} {
		if err := m.CalibrateLoad(bad, 100); err == nil {
			t.Errorf("CalibrateLoad(%v) should error", bad)
		}
	}
}

func TestNewCTC(t *testing.T) {
	m, err := NewCTC(0.85)
	if err != nil {
		t.Fatal(err)
	}
	if m.Procs != 430 || m.Name != "CTC" {
		t.Fatalf("model = %+v", m)
	}
	jobs, err := m.Generate(10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	mix := job.CategoryMix(jobs, m.Thresholds)
	for _, c := range job.Categories() {
		if math.Abs(mix[c]-CTCMix[c]) > 0.02 {
			t.Errorf("CTC %v fraction = %.4f, target %.4f (Table 2)", c, mix[c], CTCMix[c])
		}
	}
}

func TestNewSDSC(t *testing.T) {
	m, err := NewSDSC(0.85)
	if err != nil {
		t.Fatal(err)
	}
	if m.Procs != 128 || m.Name != "SDSC" {
		t.Fatalf("model = %+v", m)
	}
	jobs, err := m.Generate(10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	mix := job.CategoryMix(jobs, m.Thresholds)
	for _, c := range job.Categories() {
		if math.Abs(mix[c]-SDSCMix[c]) > 0.02 {
			t.Errorf("SDSC %v fraction = %.4f, target %.4f (Table 3)", c, mix[c], SDSCMix[c])
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"CTC", "ctc", "SDSC", "sdsc"} {
		if _, err := ByName(name, 0.8); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("LANL", 0.8); err == nil {
		t.Error("unknown model should error")
	}
}

func TestMeanWorkPositive(t *testing.T) {
	m := testModel()
	mw, err := m.MeanWork(5000)
	if err != nil {
		t.Fatal(err)
	}
	if mw <= 0 {
		t.Fatalf("MeanWork = %v", mw)
	}
	// Mean work should be stable across calls (fixed internal seed).
	mw2, _ := m.MeanWork(5000)
	if mw != mw2 {
		t.Fatal("MeanWork not deterministic")
	}
}

func TestPaperMixesSumToOne(t *testing.T) {
	for name, mix := range map[string]job.Mix{"CTC": CTCMix, "SDSC": SDSCMix} {
		sum := 0.0
		for _, v := range mix {
			sum += v
		}
		if math.Abs(sum-1) > 0.005 {
			t.Errorf("%s mix sums to %v", name, sum)
		}
	}
}

func TestWideWidthsSmallMachine(t *testing.T) {
	// A 12-proc machine has no powers of two above 8; the distribution
	// must still produce valid wide widths (9..12).
	d := wideWidths(12)
	r := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < 1 {
			t.Fatalf("bad width sample %v", v)
		}
	}
}
