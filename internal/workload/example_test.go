package workload_test

import (
	"fmt"
	"log"

	"repro/internal/job"
	"repro/internal/workload"
)

// ExampleApplyEstimates shows the estimate models the paper studies:
// systematic overestimation multiplies every runtime, while the Actual
// model mimics real user behaviour.
func ExampleApplyEstimates() {
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Runtime: 1000, Estimate: 1000, Width: 4},
	}
	r2 := workload.ApplyEstimates(jobs, workload.Systematic{R: 2}, 1)
	fmt.Println(r2[0].Estimate)
	exact := workload.ApplyEstimates(r2, workload.Exact{}, 1)
	fmt.Println(exact[0].Estimate)
	// Output:
	// 2000
	// 1000
}

// ExampleModel_Generate builds the paper's CTC stand-in and checks its
// category mix against Table 2.
func ExampleModel_Generate() {
	model, err := workload.NewCTC(0.85)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := model.Generate(5000, 42)
	if err != nil {
		log.Fatal(err)
	}
	mix := job.CategoryMix(jobs, job.PaperThresholds())
	fmt.Printf("SN within 2%% of Table 2: %v\n", mix[job.ShortNarrow] > 0.43 && mix[job.ShortNarrow] < 0.47)
	// Output:
	// SN within 2% of Table 2: true
}
