package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/job"
	"repro/internal/stats"
)

// EstimateModel rewrites jobs' user runtime estimates. Models must keep
// estimates valid: at least 1 second and at least the job's runtime (the
// scheduler kills jobs at the limit, so a trace with runtime > estimate is
// inconsistent).
type EstimateModel interface {
	// Name labels the model in reports, e.g. "exact", "R=2", "actual".
	Name() string
	// Estimate returns the user's estimate for j.
	Estimate(j *job.Job, r *stats.RNG) int64
}

// ApplyEstimates returns cloned jobs with estimates rewritten by m,
// deterministically for a given seed. Input jobs are not modified.
func ApplyEstimates(jobs []*job.Job, m EstimateModel, seed int64) []*job.Job {
	r := stats.NewRNG(seed)
	out := make([]*job.Job, len(jobs))
	for i, j := range jobs {
		c := j.Clone()
		est := m.Estimate(c, r)
		if min := c.Runtime; est < min {
			est = min
		}
		if est < 1 {
			est = 1
		}
		c.Estimate = est
		out[i] = c
	}
	return out
}

// Keep preserves whatever estimates the jobs already carry (a parsed SWF
// trace's native estimates, for instance).
type Keep struct{}

// Name returns "keep".
func (Keep) Name() string { return "keep" }

// Estimate returns the job's existing estimate.
func (Keep) Estimate(j *job.Job, _ *stats.RNG) int64 { return j.Estimate }

// Exact sets every estimate equal to the actual runtime — the idealised
// assumption of §4 of the paper.
type Exact struct{}

// Name returns "exact".
func (Exact) Name() string { return "exact" }

// Estimate returns the job's runtime (floored at 1 second).
func (Exact) Estimate(j *job.Job, _ *stats.RNG) int64 {
	if j.Runtime < 1 {
		return 1
	}
	return j.Runtime
}

// Systematic multiplies every runtime by a fixed factor R — the paper's §5.1
// systematic overestimation study (R = 1, 2, 4).
type Systematic struct {
	R float64
}

// Name returns e.g. "R=2".
func (s Systematic) Name() string {
	return "R=" + strconv.FormatFloat(s.R, 'g', -1, 64)
}

// Estimate returns ceil(R × runtime), at least 1.
func (s Systematic) Estimate(j *job.Job, _ *stats.RNG) int64 {
	rt := j.Runtime
	if rt < 1 {
		rt = 1
	}
	est := int64(math.Ceil(s.R * float64(rt)))
	if est < rt {
		est = rt
	}
	if est < 1 {
		est = 1
	}
	return est
}

// Actual models the estimates real users supply, following the shape
// measured by Mu'alem & Feitelson on the SP2 logs: a spike of accurate
// estimates, a body where the runtime is a roughly uniform fraction of the
// estimate (so the overestimation factor 1/f has a heavy tail), and
// rounding of estimates up to "human" wall-limit values. Each synthetic
// user carries a habitual padding style so the same user's jobs look alike.
type Actual struct {
	// ExactFraction is the probability a job's estimate is dead-on
	// (default 0.15 when zero).
	ExactFraction float64
	// MinFraction bounds how small runtime/estimate can get in the body
	// (default 0.05 when zero). Smaller means wilder overestimates.
	MinFraction float64
	// MaxEstimate caps estimates at the queue's wall-limit, as production
	// schedulers do (default 18 h when zero). The cap is what makes
	// poorly-estimated jobs predominantly *short* jobs that died early —
	// a long job cannot carry a 20× estimate because the queue would
	// reject it.
	MaxEstimate int64
	// AbortFraction is the probability a job behaves like a crashed run:
	// its estimate is an hour-scale wall limit unrelated to its (often
	// tiny) runtime (default 0.15 when zero). Archive traces are full of
	// such jobs, and they dominate the slowdown deterioration the paper
	// reports for actual estimates — a 30-second crash holding a 4-hour
	// limit waits like a 4-hour job. Set negative to disable.
	AbortFraction float64
	// PerUser, when true, additionally scales padding by a per-user
	// habitual factor derived from the job's User field.
	PerUser bool
}

// Name returns "actual".
func (Actual) Name() string { return "actual" }

// Estimate draws the estimate for j.
func (a Actual) Estimate(j *job.Job, r *stats.RNG) int64 {
	exactP := a.ExactFraction
	if exactP == 0 {
		exactP = 0.15
	}
	minF := a.MinFraction
	if minF == 0 {
		minF = 0.05
	}
	maxEst := a.MaxEstimate
	if maxEst == 0 {
		maxEst = 18 * 3600
	}
	abortP := a.AbortFraction
	if abortP == 0 {
		abortP = 0.10
	}
	rt := j.Runtime
	if rt < 1 {
		rt = 1
	}
	if r.Bool(exactP) {
		return rt
	}
	if abortP > 0 && r.Bool(abortP) {
		// Crashed run: the user asked for a typical hour-scale limit.
		limit := abortLimits.Sample(r)
		est := int64(limit)
		if est > maxEst {
			est = maxEst
		}
		if est < rt {
			est = rt
		}
		return est
	}
	// runtime = f × estimate with f ~ Uniform(minF, 1): the estimate is
	// runtime / f.
	f := r.Range(minF, 1)
	est := float64(rt) / f
	if a.PerUser {
		est *= userPadFactor(j.User)
	}
	rounded := roundUpHuman(int64(math.Ceil(est)), rt)
	if rounded > maxEst {
		rounded = maxEst
	}
	if rounded < rt {
		rounded = rt // never below the runtime, even against the cap
	}
	return rounded
}

// userPadFactor derives a stable habitual padding multiplier in [1, 2]
// from a user ID.
func userPadFactor(user int) float64 {
	// Cheap deterministic hash onto [0, 1).
	h := uint64(user)*2654435761 + 12345
	h ^= h >> 13
	frac := float64(h%1000) / 1000
	return 1 + frac
}

// abortLimits is the distribution of wall limits carried by crashed runs:
// the hour-scale values users habitually request.
var abortLimits = stats.MustDiscrete(
	[]float64{900, 1800, 3600, 2 * 3600, 4 * 3600, 6 * 3600},
	[]float64{2, 3, 4, 3, 2, 1},
)

// humanLimits are the wall-limit values users actually type, in seconds.
var humanLimits = []int64{
	60, 120, 300, 600, 900, 1200, 1800, 2700, 3600, // up to 1 h
	2 * 3600, 3 * 3600, 4 * 3600, 6 * 3600, 8 * 3600,
	10 * 3600, 12 * 3600, 15 * 3600, 18 * 3600, 24 * 3600,
	36 * 3600, 48 * 3600, 72 * 3600,
}

// roundUpHuman rounds est up to the next human wall-limit value, never
// below floor. Estimates beyond the largest human limit round up to whole
// hours.
func roundUpHuman(est, floor int64) int64 {
	if est < floor {
		est = floor
	}
	for _, h := range humanLimits {
		if h >= est {
			return maxInt64(h, floor)
		}
	}
	hours := (est + 3599) / 3600
	return maxInt64(hours*3600, floor)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// EstimateModelByName parses "exact", "actual", or "R=<factor>".
func EstimateModelByName(name string) (EstimateModel, error) {
	switch {
	case name == "keep":
		return Keep{}, nil
	case name == "exact":
		return Exact{}, nil
	case name == "actual":
		return Actual{}, nil
	case strings.HasPrefix(name, "R="):
		r, err := strconv.ParseFloat(strings.TrimPrefix(name, "R="), 64)
		if err != nil || r < 1 {
			return nil, fmt.Errorf("workload: bad overestimation factor in %q", name)
		}
		return Systematic{R: r}, nil
	default:
		return nil, fmt.Errorf("workload: unknown estimate model %q (want keep, exact, actual, or R=<factor>)", name)
	}
}
