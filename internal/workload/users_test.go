package workload

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func testSessionModel(t *testing.T) *SessionModel {
	t.Helper()
	s := &SessionModel{
		Base:           testModel(),
		Users:          40,
		ThinkMean:      300,
		IdleMean:       4 * 3600,
		JobsPerSession: 5,
		RepeatP:        0.5,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionModelValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SessionModel)
	}{
		{"nil base", func(s *SessionModel) { s.Base = nil }},
		{"invalid base", func(s *SessionModel) { s.Base.Procs = 0 }},
		{"no users", func(s *SessionModel) { s.Users = 0 }},
		{"zero think", func(s *SessionModel) { s.ThinkMean = 0 }},
		{"zero idle", func(s *SessionModel) { s.IdleMean = 0 }},
		{"short sessions", func(s *SessionModel) { s.JobsPerSession = 0.5 }},
		{"bad repeat", func(s *SessionModel) { s.RepeatP = 1.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSessionModel(t)
			tc.mutate(s)
			if err := s.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestSessionGenerateBasics(t *testing.T) {
	s := testSessionModel(t)
	jobs, err := s.Generate(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1000 {
		t.Fatalf("generated %d", len(jobs))
	}
	prev := int64(-1)
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if j.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = j.Arrival
		if j.ID != i+1 {
			t.Fatalf("IDs not sequential at %d", i)
		}
		if j.User < 1 || j.User > s.Users {
			t.Fatalf("user out of range: %v", j)
		}
		if j.Width > s.Base.Procs {
			t.Fatalf("too wide: %v", j)
		}
	}
}

func TestSessionGenerateDeterministic(t *testing.T) {
	s := testSessionModel(t)
	a, err := s.Generate(400, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Generate(400, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("job %d differs across same-seed runs", i)
		}
	}
}

func TestSessionBurstiness(t *testing.T) {
	// Session arrivals must be burstier than a renewal process: the
	// squared coefficient of variation of inter-arrival gaps should
	// clearly exceed 1 (exponential gives ~1).
	s := testSessionModel(t)
	jobs, err := s.Generate(4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	var gaps []float64
	for i := 1; i < len(jobs); i++ {
		gaps = append(gaps, float64(jobs[i].Arrival-jobs[i-1].Arrival))
	}
	mean, varsum := 0.0, 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv2 := varsum / float64(len(gaps)) / (mean * mean)
	if cv2 < 1.2 {
		t.Fatalf("interarrival CV² = %.2f; session arrivals should be bursty (> 1.2)", cv2)
	}
}

func TestSessionRepetition(t *testing.T) {
	// Consecutive same-user jobs should frequently share their width
	// (repeated submissions), far above what independent draws produce.
	s := testSessionModel(t)
	jobs, err := s.Generate(3000, 5)
	if err != nil {
		t.Fatal(err)
	}
	lastWidth := map[int]int{}
	same, pairs := 0, 0
	for _, j := range jobs {
		if w, ok := lastWidth[j.User]; ok {
			pairs++
			if w == j.Width {
				same++
			}
		}
		lastWidth[j.User] = j.Width
	}
	frac := float64(same) / float64(pairs)
	if frac < 0.35 {
		t.Fatalf("same-user consecutive width match rate %.2f; repetition not happening", frac)
	}
}

func TestNewSessionCTCCalibration(t *testing.T) {
	s, err := NewSessionCTC(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Users < 10 {
		t.Fatalf("calibrated users = %d, implausibly low", s.Users)
	}
	jobs, err := s.Generate(4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	load := trace.OfferedLoad(jobs, s.Base.Procs)
	if math.Abs(load-0.7) > 0.25 {
		t.Fatalf("calibrated offered load %.2f, want ~0.7 (session models are rougher than renewal ones)", load)
	}
}

func TestCalibrateUsersErrors(t *testing.T) {
	s := testSessionModel(t)
	if err := s.CalibrateUsers(0); err == nil {
		t.Error("zero load should error")
	}
	s.Base = nil
	if err := s.CalibrateUsers(0.5); err == nil {
		t.Error("nil base should error")
	}
}

func TestSessionGenerateErrors(t *testing.T) {
	s := testSessionModel(t)
	if _, err := s.Generate(-1, 0); err == nil {
		t.Error("negative n should error")
	}
	s.Users = 0
	if _, err := s.Generate(10, 0); err == nil {
		t.Error("invalid model should error")
	}
}
