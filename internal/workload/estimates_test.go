package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/stats"
)

func estJobs() []*job.Job {
	return []*job.Job{
		{ID: 1, Arrival: 0, Runtime: 100, Estimate: 100, Width: 4, User: 1},
		{ID: 2, Arrival: 10, Runtime: 3600, Estimate: 3600, Width: 16, User: 2},
		{ID: 3, Arrival: 20, Runtime: 0, Estimate: 1, Width: 1, User: 3},
		{ID: 4, Arrival: 30, Runtime: 7200, Estimate: 7200, Width: 64, User: 1},
	}
}

func TestExactModel(t *testing.T) {
	out := ApplyEstimates(estJobs(), Exact{}, 1)
	for _, j := range out {
		want := j.Runtime
		if want < 1 {
			want = 1
		}
		if j.Estimate != want {
			t.Errorf("job %d estimate = %d, want %d", j.ID, j.Estimate, want)
		}
		if err := j.Validate(); err != nil {
			t.Errorf("job %d invalid: %v", j.ID, err)
		}
	}
	if (Exact{}).Name() != "exact" {
		t.Error("Exact name")
	}
}

func TestSystematicModel(t *testing.T) {
	out := ApplyEstimates(estJobs(), Systematic{R: 2}, 1)
	if out[0].Estimate != 200 {
		t.Errorf("R=2 on 100s job: estimate = %d", out[0].Estimate)
	}
	if out[1].Estimate != 7200 {
		t.Errorf("R=2 on 3600s job: estimate = %d", out[1].Estimate)
	}
	if out[2].Estimate != 2 { // runtime 0 treated as 1s
		t.Errorf("R=2 on 0s job: estimate = %d", out[2].Estimate)
	}
	if (Systematic{R: 4}).Name() != "R=4" {
		t.Error("Systematic name")
	}
}

func TestSystematicR1IsExact(t *testing.T) {
	a := ApplyEstimates(estJobs(), Systematic{R: 1}, 1)
	b := ApplyEstimates(estJobs(), Exact{}, 1)
	for i := range a {
		if a[i].Estimate != b[i].Estimate {
			t.Fatalf("R=1 differs from exact on job %d", a[i].ID)
		}
	}
}

func TestApplyEstimatesDoesNotMutateInput(t *testing.T) {
	in := estJobs()
	ApplyEstimates(in, Systematic{R: 4}, 1)
	if in[0].Estimate != 100 {
		t.Fatal("ApplyEstimates mutated its input")
	}
}

func TestApplyEstimatesDeterministic(t *testing.T) {
	a := ApplyEstimates(estJobs(), Actual{}, 9)
	b := ApplyEstimates(estJobs(), Actual{}, 9)
	for i := range a {
		if a[i].Estimate != b[i].Estimate {
			t.Fatal("Actual estimates not deterministic for fixed seed")
		}
	}
}

func TestActualEstimatesValid(t *testing.T) {
	m := testModel()
	jobs, err := m.Generate(3000, 13)
	if err != nil {
		t.Fatal(err)
	}
	out := ApplyEstimates(jobs, Actual{}, 17)
	for _, j := range out {
		if err := j.Validate(); err != nil {
			t.Fatalf("actual-estimate job invalid: %v", err)
		}
		if j.Estimate < j.Runtime {
			t.Fatalf("estimate below runtime: %v", j)
		}
	}
}

func TestActualEstimatesMixOfQualities(t *testing.T) {
	// The actual model must produce both well and poorly estimated jobs in
	// non-trivial proportions — the split §5.2 depends on.
	m := testModel()
	jobs, err := m.Generate(5000, 19)
	if err != nil {
		t.Fatal(err)
	}
	out := ApplyEstimates(jobs, Actual{}, 23)
	var well, poor int
	for _, j := range out {
		if job.ClassifyEstimate(j) == job.WellEstimated {
			well++
		} else {
			poor++
		}
	}
	wellFrac := float64(well) / float64(len(out))
	if wellFrac < 0.25 || wellFrac > 0.85 {
		t.Fatalf("well-estimated fraction = %.3f; the model should produce a real mix", wellFrac)
	}
}

func TestActualExactFraction(t *testing.T) {
	jobs := make([]*job.Job, 4000)
	for i := range jobs {
		jobs[i] = &job.Job{ID: i + 1, Runtime: 1000, Estimate: 1000, Width: 1, User: i % 50}
	}
	out := ApplyEstimates(jobs, Actual{ExactFraction: 0.3}, 29)
	exact := 0
	for _, j := range out {
		if j.Estimate == j.Runtime {
			exact++
		}
	}
	got := float64(exact) / float64(len(out))
	if math.Abs(got-0.3) > 0.04 {
		t.Fatalf("exact fraction = %.3f, want ~0.3", got)
	}
}

func TestActualPerUserConsistency(t *testing.T) {
	// Same-user jobs should share a padding habit: the model must be
	// deterministic in the user ID component.
	if userPadFactor(7) != userPadFactor(7) {
		t.Fatal("userPadFactor not deterministic")
	}
	if userPadFactor(7) < 1 || userPadFactor(7) > 2 {
		t.Fatalf("userPadFactor out of [1,2]: %v", userPadFactor(7))
	}
	diff := false
	for u := 0; u < 20; u++ {
		if userPadFactor(u) != userPadFactor(0) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("all users share the same pad factor")
	}
}

func TestRoundUpHuman(t *testing.T) {
	cases := []struct {
		est, floor, want int64
	}{
		{50, 1, 60},
		{60, 1, 60},
		{61, 1, 120},
		{3000, 1, 3600},
		{3601, 1, 2 * 3600},
		{100 * 3600, 1, 100 * 3600},   // beyond table: whole hours
		{100*3600 + 1, 1, 101 * 3600}, // rounds up to next hour
		{30, 45, 60},                  // floor respected via next human value
		{50, 100, 120},                // floor pushes past 60
	}
	for _, tc := range cases {
		if got := roundUpHuman(tc.est, tc.floor); got != tc.want {
			t.Errorf("roundUpHuman(%d, %d) = %d, want %d", tc.est, tc.floor, got, tc.want)
		}
	}
}

func TestRoundUpHumanProperty(t *testing.T) {
	f := func(est uint32, floor uint16) bool {
		e, fl := int64(est%1000000), int64(floor)
		got := roundUpHuman(e, fl)
		return got >= e && got >= fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateModelByName(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"exact", "exact"},
		{"actual", "actual"},
		{"R=2", "R=2"},
		{"R=4.5", "R=4.5"},
	}
	for _, tc := range cases {
		m, err := EstimateModelByName(tc.in)
		if err != nil {
			t.Errorf("EstimateModelByName(%q): %v", tc.in, err)
			continue
		}
		if m.Name() != tc.want {
			t.Errorf("EstimateModelByName(%q).Name() = %q", tc.in, m.Name())
		}
	}
	for _, bad := range []string{"", "bogus", "R=", "R=abc", "R=0.5"} {
		if _, err := EstimateModelByName(bad); err == nil {
			t.Errorf("EstimateModelByName(%q): want error", bad)
		}
	}
}

func TestActualOverestimationHeavyTail(t *testing.T) {
	// The 1/f shape implies a mean overestimation factor well above 2.
	jobs := make([]*job.Job, 5000)
	for i := range jobs {
		jobs[i] = &job.Job{ID: i + 1, Runtime: 1000, Estimate: 1000, Width: 1, User: i % 50}
	}
	out := ApplyEstimates(jobs, Actual{}, 31)
	var acc stats.Accumulator
	for _, j := range out {
		acc.Add(j.OverestimationFactor())
	}
	if acc.Mean() < 2 {
		t.Fatalf("mean overestimation factor = %.2f; expected a heavy tail > 2", acc.Mean())
	}
	if acc.Max() < 5 {
		t.Fatalf("max overestimation factor = %.2f; tail too light", acc.Max())
	}
}
