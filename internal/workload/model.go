// Package workload generates synthetic parallel job traces statistically
// calibrated to the two archive traces the paper evaluates on — the
// 430-node Cornell Theory Center (CTC) SP2 trace and the 128-node San Diego
// Supercomputer Center (SDSC) SP2 trace — and implements the user runtime
// estimate models the paper studies: exact estimates, systematic
// overestimation by a factor R, and archive-like "actual" estimates.
//
// The Parallel Workloads Archive is unreachable from an offline build, so
// these models substitute for the real logs. Calibration targets the
// properties the paper's analysis actually depends on: the SN/SW/LN/LW
// category mix of Tables 2–3, heavy-tailed runtimes, power-of-two-biased
// widths, and a tunable offered load. Real .swf files drop in through
// package swf when available.
package workload

import (
	"fmt"
	"math"

	"repro/internal/job"
	"repro/internal/stats"
)

// Model is a statistical description of one machine's workload. Each job
// draws a category from Mix, then a runtime and width from that category's
// distributions; arrivals are a renewal process with the Interarrival
// distribution.
type Model struct {
	// Name labels the model in reports ("CTC", "SDSC").
	Name string
	// Procs is the machine size.
	Procs int
	// Thresholds are the category boundaries used for calibration.
	Thresholds job.Thresholds
	// Mix is the target category distribution (must sum to ~1).
	Mix job.Mix
	// Runtime holds one runtime distribution per category, in seconds.
	// Samples are clamped to the category's runtime range.
	Runtime [job.NumCategories]stats.Dist
	// Width holds one width distribution per category, in processors.
	// Samples are rounded and clamped to the category's width range.
	Width [job.NumCategories]stats.Dist
	// Interarrival is the gap between consecutive submissions, in seconds.
	Interarrival stats.Dist
	// MaxRuntime caps long-job runtimes (seconds).
	MaxRuntime int64
	// Users is the size of the synthetic user population.
	Users int
	// Daily, when non-nil, modulates arrival intensity by hour of day
	// (24 positive weights; weight 2 means twice the submission rate).
	// Real traces have a strong day/night cycle that stresses schedulers
	// with bursts; see StandardDaily.
	Daily []float64
	// Weekly, when non-nil, additionally modulates intensity by day of
	// week (7 positive weights, day 0 = the trace's first day); see
	// StandardWeekly for the usual weekday/weekend shape.
	Weekly []float64
}

// StandardWeekly returns the usual submission week: five working days, a
// quieter Saturday and Sunday (days 5 and 6). Weights average 1.
func StandardWeekly() []float64 {
	w := []float64{1.2, 1.25, 1.25, 1.2, 1.1, 0.5, 0.5}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	scale := 7 / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}

// StandardDaily returns a typical supercomputer submission cycle: quiet
// nights, a morning ramp, sustained working-hours load, an evening tail.
// Weights average 1 so calibrated load is unchanged.
func StandardDaily() []float64 {
	w := []float64{
		0.4, 0.3, 0.3, 0.3, 0.3, 0.4, // 00–05
		0.6, 0.9, 1.3, 1.6, 1.8, 1.8, // 06–11
		1.7, 1.7, 1.8, 1.8, 1.6, 1.4, // 12–17
		1.2, 1.0, 0.8, 0.7, 0.6, 0.5, // 18–23
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	scale := 24 / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}

// Validate reports the first problem with the model's configuration.
func (m *Model) Validate() error {
	if m.Procs < 1 {
		return fmt.Errorf("workload: model %q has %d processors", m.Name, m.Procs)
	}
	total := 0.0
	for _, p := range m.Mix {
		if p < 0 {
			return fmt.Errorf("workload: model %q has a negative mix entry", m.Name)
		}
		total += p
	}
	if math.Abs(total-1) > 0.01 {
		return fmt.Errorf("workload: model %q mix sums to %v, want 1", m.Name, total)
	}
	for _, c := range job.Categories() {
		if m.Runtime[c] == nil {
			return fmt.Errorf("workload: model %q missing runtime distribution for %v", m.Name, c)
		}
		if m.Width[c] == nil {
			return fmt.Errorf("workload: model %q missing width distribution for %v", m.Name, c)
		}
	}
	if m.Interarrival == nil {
		return fmt.Errorf("workload: model %q missing interarrival distribution", m.Name)
	}
	if m.MaxRuntime <= m.Thresholds.MaxShortRuntime {
		return fmt.Errorf("workload: model %q MaxRuntime %d must exceed the short/long boundary %d", m.Name, m.MaxRuntime, m.Thresholds.MaxShortRuntime)
	}
	if m.Users < 1 {
		return fmt.Errorf("workload: model %q has %d users", m.Name, m.Users)
	}
	if m.Daily != nil {
		if len(m.Daily) != 24 {
			return fmt.Errorf("workload: model %q Daily has %d weights, want 24", m.Name, len(m.Daily))
		}
		for h, w := range m.Daily {
			if w <= 0 {
				return fmt.Errorf("workload: model %q Daily[%d] = %v must be positive", m.Name, h, w)
			}
		}
	}
	if m.Weekly != nil {
		if len(m.Weekly) != 7 {
			return fmt.Errorf("workload: model %q Weekly has %d weights, want 7", m.Name, len(m.Weekly))
		}
		for d, w := range m.Weekly {
			if w <= 0 {
				return fmt.Errorf("workload: model %q Weekly[%d] = %v must be positive", m.Name, d, w)
			}
		}
	}
	return nil
}

// runtimeRange returns the [lo, hi] runtime bounds for a category.
func (m *Model) runtimeRange(c job.Category) (int64, int64) {
	if c.Short() {
		return 1, m.Thresholds.MaxShortRuntime
	}
	return m.Thresholds.MaxShortRuntime + 1, m.MaxRuntime
}

// widthRange returns the [lo, hi] width bounds for a category.
func (m *Model) widthRange(c job.Category) (int, int) {
	if c.Narrow() {
		hi := m.Thresholds.MaxNarrowWidth
		if hi > m.Procs {
			hi = m.Procs
		}
		return 1, hi
	}
	return m.Thresholds.MaxNarrowWidth + 1, m.Procs
}

// Generate produces n jobs with exact estimates (Estimate == Runtime),
// deterministically for a given seed. Apply an EstimateModel afterwards for
// inaccurate-estimate experiments.
func (m *Model) Generate(n int, seed int64) ([]*job.Job, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: Generate(%d)", n)
	}
	root := stats.NewRNG(seed)
	// Independent streams per component: adding jobs or tweaking one
	// distribution does not reshuffle the others.
	arrivalRNG := root.Fork()
	catRNG := root.Fork()
	runtimeRNG := root.Fork()
	widthRNG := root.Fork()
	userRNG := root.Fork()

	catDist := stats.MustDiscrete(
		[]float64{float64(job.ShortNarrow), float64(job.ShortWide), float64(job.LongNarrow), float64(job.LongWide)},
		[]float64{m.Mix[job.ShortNarrow], m.Mix[job.ShortWide], m.Mix[job.LongNarrow], m.Mix[job.LongWide]},
	)

	jobs := make([]*job.Job, 0, n)
	clock := int64(0)
	for i := 1; i <= n; i++ {
		gap := m.Interarrival.Sample(arrivalRNG)
		if m.Daily != nil {
			// Busier hours compress the gap to the next submission.
			gap /= m.Daily[(clock/3600)%24]
		}
		if m.Weekly != nil {
			gap /= m.Weekly[(clock/(24*3600))%7]
		}
		clock += clampDuration(gap, 0, 1<<40)
		c := job.Category(int(catDist.Sample(catRNG)))
		rlo, rhi := m.runtimeRange(c)
		rt := sampleDuration(m.Runtime[c], runtimeRNG, rlo, rhi)
		wlo, whi := m.widthRange(c)
		w := sampleWidth(m.Width[c], widthRNG, wlo, whi)
		jobs = append(jobs, &job.Job{
			ID:       i,
			Arrival:  clock,
			Runtime:  rt,
			Estimate: rt,
			Width:    w,
			User:     userRNG.Intn(m.Users) + 1,
		})
	}
	return jobs, nil
}

// sampleDuration draws from d, rounds to whole seconds and clamps to
// [lo, hi].
func sampleDuration(d stats.Dist, r *stats.RNG, lo, hi int64) int64 {
	return clampDuration(d.Sample(r), lo, hi)
}

// clampDuration rounds a duration to whole seconds within [lo, hi].
func clampDuration(v float64, lo, hi int64) int64 {
	n := int64(math.Round(v))
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}

// sampleWidth draws from d, rounds and clamps to [lo, hi].
func sampleWidth(d stats.Dist, r *stats.RNG, lo, hi int) int {
	v := int(math.Round(d.Sample(r)))
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MeanWork estimates the model's mean work per job (width × runtime,
// processor-seconds) by Monte-Carlo sampling with a fixed internal seed.
func (m *Model) MeanWork(samples int) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if samples < 1 {
		samples = 1
	}
	jobs, err := m.Generate(samples, 987654321)
	if err != nil {
		return 0, err
	}
	var acc stats.Accumulator
	for _, j := range jobs {
		acc.Add(float64(j.Width) * float64(j.Runtime))
	}
	return acc.Mean(), nil
}

// CalibrateLoad replaces the model's interarrival distribution with an
// exponential whose mean produces the given offered load (fraction of the
// machine's capacity demanded per unit time): mean gap = mean work /
// (procs × load). The paper's "normal" load corresponds to the trace's
// native utilization (~0.55–0.65 for CTC) and "high load" shrinks gaps
// until offered load approaches 0.9.
func (m *Model) CalibrateLoad(load float64, samples int) error {
	if load <= 0 || load > 1.5 {
		return fmt.Errorf("workload: CalibrateLoad(%v) out of (0, 1.5]", load)
	}
	mw, err := m.MeanWork(samples)
	if err != nil {
		return err
	}
	m.Interarrival = stats.Exponential{M: mw / (float64(m.Procs) * load)}
	return nil
}
