package workload

import (
	"math"
	"testing"

	"repro/internal/job"
	"repro/internal/stats"
)

func TestFitRoundTripsCategoryMix(t *testing.T) {
	src := testModel()
	jobs, err := src.Generate(8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := Fit("refit", jobs, src.Procs, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	regen, err := fitted.Generate(8000, 6)
	if err != nil {
		t.Fatal(err)
	}
	srcMix := job.CategoryMix(jobs, src.Thresholds)
	reMix := job.CategoryMix(regen, src.Thresholds)
	for _, c := range job.Categories() {
		if math.Abs(srcMix[c]-reMix[c]) > 0.03 {
			t.Errorf("%v: source %.3f vs refit %.3f", c, srcMix[c], reMix[c])
		}
	}
}

func TestFitPreservesMeanGap(t *testing.T) {
	src := testModel()
	jobs, err := src.Generate(5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := Fit("refit", jobs, src.Procs, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srcGap := float64(jobs[len(jobs)-1].Arrival-jobs[0].Arrival) / float64(len(jobs)-1)
	if math.Abs(fitted.Interarrival.Mean()-srcGap)/srcGap > 0.02 {
		t.Fatalf("fitted mean gap %v vs source %v", fitted.Interarrival.Mean(), srcGap)
	}
}

func TestFitPreservesRuntimeScale(t *testing.T) {
	src := testModel()
	jobs, err := src.Generate(5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := Fit("refit", jobs, src.Procs, FitOptions{Smooth: true})
	if err != nil {
		t.Fatal(err)
	}
	regen, err := fitted.Generate(5000, 12)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(js []*job.Job) float64 {
		var s float64
		for _, j := range js {
			s += float64(j.Runtime)
		}
		return s / float64(len(js))
	}
	a, b := mean(jobs), mean(regen)
	if math.Abs(a-b)/a > 0.12 {
		t.Fatalf("mean runtime drifted: source %.0f vs refit %.0f", a, b)
	}
}

func TestFitRuntimeDistributionKS(t *testing.T) {
	// The fitted model's regenerated runtimes must be statistically close
	// to the source's: two-sample KS below the 1% critical value per
	// category.
	src := testModel()
	jobs, err := src.Generate(6000, 13)
	if err != nil {
		t.Fatal(err)
	}
	fitted, err := Fit("refit", jobs, src.Procs, FitOptions{Smooth: false})
	if err != nil {
		t.Fatal(err)
	}
	regen, err := fitted.Generate(6000, 14)
	if err != nil {
		t.Fatal(err)
	}
	th := src.Thresholds
	for _, c := range job.Categories() {
		var a, b []float64
		for _, j := range jobs {
			if th.Classify(j) == c {
				a = append(a, float64(j.Runtime))
			}
		}
		for _, j := range regen {
			if th.Classify(j) == c {
				b = append(b, float64(j.Runtime))
			}
		}
		if len(a) < 50 || len(b) < 50 {
			continue // category too thin for a meaningful test
		}
		d, err := stats.KSStatistic(a, b)
		if err != nil {
			t.Fatal(err)
		}
		crit, err := stats.KSCriticalValue(len(a), len(b), 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if d >= crit {
			t.Errorf("%v: KS D = %.4f exceeds 1%% critical %.4f — fitted runtimes drifted", c, d, crit)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit("x", nil, 10, FitOptions{}); err == nil {
		t.Error("empty trace should error")
	}
	one := []*job.Job{{ID: 1, Runtime: 10, Estimate: 10, Width: 1}}
	if _, err := Fit("x", one, 10, FitOptions{}); err == nil {
		t.Error("single job should error")
	}
	two := []*job.Job{
		{ID: 1, Arrival: 100, Runtime: 10, Estimate: 10, Width: 1},
		{ID: 2, Arrival: 50, Runtime: 10, Estimate: 10, Width: 1},
	}
	if _, err := Fit("x", two, 10, FitOptions{}); err == nil {
		t.Error("unsorted trace should error")
	}
	sorted := []*job.Job{two[1], two[0]}
	if _, err := Fit("x", sorted, 0, FitOptions{}); err == nil {
		t.Error("zero procs should error")
	}
}

func TestFitDegenerateAllShortTrace(t *testing.T) {
	// A trace with only short narrow jobs must still fit into a valid
	// model (fallback distributions for the empty categories).
	var jobs []*job.Job
	for i := 1; i <= 100; i++ {
		jobs = append(jobs, &job.Job{
			ID: i, Arrival: int64(i * 60), Runtime: 120, Estimate: 120, Width: 2,
		})
	}
	m, err := Fit("short-only", jobs, 64, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Generate(50, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDailyCycleValidation(t *testing.T) {
	m := testModel()
	m.Daily = []float64{1, 2}
	if err := m.Validate(); err == nil {
		t.Error("short Daily should fail validation")
	}
	m.Daily = make([]float64, 24)
	if err := m.Validate(); err == nil {
		t.Error("zero weights should fail validation")
	}
	m.Daily = StandardDaily()
	if err := m.Validate(); err != nil {
		t.Errorf("StandardDaily should validate: %v", err)
	}
}

func TestStandardDailyNormalised(t *testing.T) {
	w := StandardDaily()
	if len(w) != 24 {
		t.Fatalf("len = %d", len(w))
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-24) > 1e-9 {
		t.Fatalf("weights sum to %v, want 24 (mean 1)", sum)
	}
}

func TestWeeklyCycleValidation(t *testing.T) {
	m := testModel()
	m.Weekly = []float64{1, 2}
	if err := m.Validate(); err == nil {
		t.Error("short Weekly should fail validation")
	}
	m.Weekly = make([]float64, 7)
	if err := m.Validate(); err == nil {
		t.Error("zero weekly weights should fail validation")
	}
	m.Weekly = StandardWeekly()
	if err := m.Validate(); err != nil {
		t.Errorf("StandardWeekly should validate: %v", err)
	}
}

func TestStandardWeeklyNormalised(t *testing.T) {
	w := StandardWeekly()
	if len(w) != 7 {
		t.Fatalf("len = %d", len(w))
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-7) > 1e-9 {
		t.Fatalf("weights sum to %v, want 7 (mean 1)", sum)
	}
	if w[5] >= w[0] || w[6] >= w[0] {
		t.Fatal("weekend should be quieter than Monday")
	}
}

func TestWeeklyCycleShapesArrivals(t *testing.T) {
	m := testModel()
	m.Weekly = StandardWeekly()
	jobs, err := m.Generate(20000, 37)
	if err != nil {
		t.Fatal(err)
	}
	var weekday, weekend int
	for _, j := range jobs {
		d := (j.Arrival / (24 * 3600)) % 7
		if d >= 5 {
			weekend++
		} else {
			weekday++
		}
	}
	weekdayRate := float64(weekday) / 5
	weekendRate := float64(weekend) / 2
	if weekdayRate < 1.5*weekendRate {
		t.Fatalf("weekly cycle too weak: weekday %.0f vs weekend %.0f per day-slot", weekdayRate, weekendRate)
	}
}

func TestDailyCycleShapesArrivals(t *testing.T) {
	m := testModel()
	m.Daily = StandardDaily()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	jobs, err := m.Generate(20000, 31)
	if err != nil {
		t.Fatal(err)
	}
	// Count arrivals by hour of day: working hours (9-16) must receive
	// clearly more than night hours (0-5).
	var day, night int
	for _, j := range jobs {
		h := (j.Arrival / 3600) % 24
		switch {
		case h >= 9 && h < 17:
			day++
		case h < 6:
			night++
		}
	}
	dayRate := float64(day) / 8
	nightRate := float64(night) / 6
	if dayRate < 2*nightRate {
		t.Fatalf("diurnal cycle too weak: day rate %.0f vs night rate %.0f per hour-slot", dayRate, nightRate)
	}
}
