package workload

import (
	"repro/internal/job"
	"repro/internal/stats"
)

// Target category mixes reconstructed from Tables 2 and 3 of the paper
// (fractions of jobs in SN/SW/LN/LW; see DESIGN.md for the OCR
// reconstruction).
var (
	// CTCMix is Table 2: the Cornell Theory Center trace.
	CTCMix = job.Mix{0.4506, 0.1184, 0.3026, 0.1284}
	// SDSCMix is Table 3: the SDSC SP2 trace. Wide jobs are rare (1.38 %
	// of jobs are long-wide) because the machine is only 128 nodes.
	SDSCMix = job.Mix{0.4724, 0.2144, 0.2994, 0.0138}
)

// Machine sizes from §3 of the paper.
const (
	CTCProcs  = 430
	SDSCProcs = 128
)

// narrowWidths builds the narrow-category width distribution: serial jobs
// dominate, powers of two are favored — the shape reported for both SP2
// traces.
func narrowWidths() stats.Dist {
	return stats.MustDiscrete(
		[]float64{1, 2, 3, 4, 5, 6, 7, 8},
		[]float64{34, 14, 3, 17, 2, 4, 2, 24},
	)
}

// wideWidths builds the wide-category width distribution for a machine
// with procs processors: mass on powers of two up to the machine size,
// decaying roughly as 1/width (very wide jobs are rare in the archive
// traces), mixed with a log-uniform body for the odd sizes concentrated at
// the small end of the wide range.
func wideWidths(procs int) stats.Dist {
	var values, weights []float64
	for w := 16; w <= procs; w *= 2 {
		values = append(values, float64(w))
		weights = append(weights, 1024/float64(w))
	}
	if len(values) == 0 {
		values, weights = []float64{float64(procs)}, []float64{1}
	}
	powers := stats.MustDiscrete(values, weights)
	bodyHi := float64(procs) / 4
	if bodyHi < 16 {
		bodyHi = 16
	}
	body := stats.LogUniformDist{Lo: 9, Hi: bodyHi}
	return stats.MustMixture([]stats.Dist{powers, body}, []float64{0.55, 0.45})
}

// shortRuntimes: a heavy mix of very short jobs (aborts, test runs) and
// sub-hour production jobs. Bounded to (0, 1h] by the generator.
func shortRuntimes() stats.Dist {
	return stats.MustMixture(
		[]stats.Dist{
			stats.LogUniformDist{Lo: 1, Hi: 120}, // seconds-scale debris
			stats.LognormalFromMoments(900, 0.9), // minutes-scale body
		},
		[]float64{0.35, 0.65},
	)
}

// longRuntimes: lognormal body over (1h, maxRuntime] with mass piling near
// common wall limits via truncation.
func longRuntimes(maxRuntime int64) stats.Dist {
	return stats.Truncated{
		Inner: stats.LognormalFromMoments(4*3600, 1.2),
		Lo:    3601,
		Hi:    float64(maxRuntime),
	}
}

// newSP2Model assembles a model for an SP2-class machine.
func newSP2Model(name string, procs int, mix job.Mix, maxRuntime int64) *Model {
	m := &Model{
		Name:       name,
		Procs:      procs,
		Thresholds: job.PaperThresholds(),
		Mix:        mix,
		MaxRuntime: maxRuntime,
		Users:      200,
		// Placeholder; callers calibrate to a target load.
		Interarrival: stats.Exponential{M: 600},
	}
	for _, c := range job.Categories() {
		if c.Short() {
			m.Runtime[c] = shortRuntimes()
		} else {
			m.Runtime[c] = longRuntimes(maxRuntime)
		}
		if c.Narrow() {
			m.Width[c] = narrowWidths()
		} else {
			m.Width[c] = wideWidths(procs)
		}
	}
	return m
}

// NewCTC returns the synthetic stand-in for the 430-node Cornell Theory
// Center SP2 trace, calibrated to the Table 2 category mix and the given
// offered load.
func NewCTC(load float64) (*Model, error) {
	m := newSP2Model("CTC", CTCProcs, CTCMix, 18*3600)
	if err := m.CalibrateLoad(load, 20000); err != nil {
		return nil, err
	}
	return m, nil
}

// NewSDSC returns the synthetic stand-in for the 128-node SDSC SP2 trace,
// calibrated to the Table 3 category mix and the given offered load.
func NewSDSC(load float64) (*Model, error) {
	m := newSP2Model("SDSC", SDSCProcs, SDSCMix, 18*3600)
	if err := m.CalibrateLoad(load, 20000); err != nil {
		return nil, err
	}
	return m, nil
}

// ByName returns a calibrated model by trace name ("CTC" or "SDSC").
func ByName(name string, load float64) (*Model, error) {
	switch name {
	case "CTC", "ctc":
		return NewCTC(load)
	case "SDSC", "sdsc":
		return NewSDSC(load)
	default:
		return nil, errUnknownModel(name)
	}
}

type errUnknownModel string

func (e errUnknownModel) Error() string {
	return "workload: unknown trace model \"" + string(e) + "\" (want CTC or SDSC)"
}
