package workload

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/stats"
)

// FitOptions tune trace fitting.
type FitOptions struct {
	// ReservoirSize bounds the per-category sample kept for the empirical
	// distributions (default 4096). Larger is more faithful.
	ReservoirSize int
	// Seed drives reservoir sampling (default 1).
	Seed int64
	// Smooth interpolates between observed runtimes when resampling
	// (widths are always resampled exactly — processor counts are
	// discrete).
	Smooth bool
}

func (o FitOptions) withDefaults() FitOptions {
	if o.ReservoirSize == 0 {
		o.ReservoirSize = 4096
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Fit builds a synthetic Model from an observed trace: per-category
// empirical runtime and width distributions, the observed category mix, and
// an exponential interarrival process matching the observed mean gap. The
// result generates statistically similar — but fresh — workloads, the
// standard methodology for capacity studies when replaying the log itself
// is too rigid (you cannot scale a replay's job mix independently of its
// arrival pattern).
//
// Jobs must be non-empty and sorted or sortable by arrival; procs is the
// machine size the trace ran on.
func Fit(name string, jobs []*job.Job, procs int, opts FitOptions) (*Model, error) {
	if len(jobs) < 2 {
		return nil, fmt.Errorf("workload: Fit needs at least 2 jobs, got %d", len(jobs))
	}
	if procs < 1 {
		return nil, fmt.Errorf("workload: Fit with %d processors", procs)
	}
	opts = opts.withDefaults()
	th := job.PaperThresholds()

	var rtRes, wRes [job.NumCategories]*stats.Reservoir
	for _, c := range job.Categories() {
		var err error
		if rtRes[c], err = stats.NewReservoir(opts.ReservoirSize, opts.Seed+int64(c)); err != nil {
			return nil, err
		}
		if wRes[c], err = stats.NewReservoir(opts.ReservoirSize, opts.Seed+100+int64(c)); err != nil {
			return nil, err
		}
	}

	var counts [job.NumCategories]int64
	maxRuntime := int64(0)
	var gapAcc stats.Accumulator
	prev := int64(-1)
	maxEst := int64(0)
	for _, j := range jobs {
		c := th.Classify(j)
		counts[c]++
		rtRes[c].Add(float64(j.Runtime))
		wRes[c].Add(float64(j.Width))
		if j.Runtime > maxRuntime {
			maxRuntime = j.Runtime
		}
		if j.Estimate > maxEst {
			maxEst = j.Estimate
		}
		if prev >= 0 {
			gap := j.Arrival - prev
			if gap < 0 {
				return nil, fmt.Errorf("workload: Fit input not sorted by arrival (job %d)", j.ID)
			}
			gapAcc.Add(float64(gap))
		}
		prev = j.Arrival
	}
	if maxRuntime <= th.MaxShortRuntime {
		// Degenerate trace with no long jobs: still give the model a
		// valid long-runtime range.
		maxRuntime = th.MaxShortRuntime * 2
	}

	m := &Model{
		Name:         name,
		Procs:        procs,
		Thresholds:   th,
		MaxRuntime:   maxRuntime,
		Users:        200,
		Interarrival: stats.Exponential{M: gapAcc.Mean()},
	}
	total := float64(len(jobs))
	for _, c := range job.Categories() {
		m.Mix[c] = float64(counts[c]) / total
		m.Runtime[c] = fittedDist(rtRes[c], opts.Smooth, c, th, maxRuntime)
		m.Width[c] = fittedWidthDist(wRes[c], c, th, procs)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("workload: fitted model invalid: %w", err)
	}
	return m, nil
}

// fittedDist returns the empirical runtime distribution for a category, or
// a sensible fallback when the trace had no jobs there.
func fittedDist(res *stats.Reservoir, smooth bool, c job.Category, th job.Thresholds, maxRuntime int64) stats.Dist {
	sample := res.Sample()
	if len(sample) == 0 {
		if c.Short() {
			return stats.Uniform{Lo: 1, Hi: float64(th.MaxShortRuntime)}
		}
		return stats.Uniform{Lo: float64(th.MaxShortRuntime + 1), Hi: float64(maxRuntime)}
	}
	e, err := stats.NewEmpirical(sample, smooth)
	if err != nil {
		panic(err) // unreachable: sample is non-empty
	}
	return e
}

// fittedWidthDist returns the empirical width distribution for a category,
// or a fallback covering the category's range.
func fittedWidthDist(res *stats.Reservoir, c job.Category, th job.Thresholds, procs int) stats.Dist {
	sample := res.Sample()
	if len(sample) == 0 {
		if c.Narrow() {
			return stats.Uniform{Lo: 1, Hi: float64(th.MaxNarrowWidth + 1)}
		}
		return stats.Uniform{Lo: float64(th.MaxNarrowWidth + 1), Hi: float64(procs + 1)}
	}
	e, err := stats.NewEmpirical(sample, false)
	if err != nil {
		panic(err) // unreachable: sample is non-empty
	}
	return e
}
