package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event types emitted into the journal.
const (
	EventRunStart        = "run_start"
	EventTaskStart       = "task_start"
	EventTaskFinish      = "task_finish"
	EventTaskRetry       = "task_retry"
	EventCacheWriteError = "cache_write_error"
	EventRunSummary      = "run_summary"
)

// Event is one JSONL journal line. Fields are omitted when not relevant to
// the event type.
type Event struct {
	Time     string      `json:"t,omitempty"`
	Type     string      `json:"type"`
	Task     string      `json:"task,omitempty"`
	Tasks    int         `json:"tasks,omitempty"`
	Workers  int         `json:"workers,omitempty"`
	Attempt  int         `json:"attempt,omitempty"`
	DurMS    float64     `json:"dur_ms,omitempty"`
	CacheHit bool        `json:"cache_hit,omitempty"`
	Err      string      `json:"err,omitempty"`
	Summary  *RunSummary `json:"summary,omitempty"`
}

// Journal records run events as JSON Lines and aggregates a cumulative
// summary across every Run call that shares it. It is safe for concurrent
// use; a nil writer makes it a pure counter (handy for tests and for
// printing a summary without persisting events).
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	sum RunSummary
	// now is swappable for tests.
	now func() time.Time
}

// NewJournal builds a journal writing JSONL events to w (nil: count only).
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, now: time.Now}
}

// Event stamps and writes one event. Encoding or write failures are
// deliberately dropped: the journal is observability, not control flow.
func (j *Journal) Event(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.write(e)
}

func (j *Journal) write(e Event) {
	if j.w == nil {
		return
	}
	if e.Time == "" {
		e.Time = j.now().UTC().Format(time.RFC3339Nano)
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	fmt.Fprintf(j.w, "%s\n", data)
}

// finishRun merges one Run's summary into the cumulative totals and
// journals it.
func (j *Journal) finishRun(s RunSummary) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sum.Tasks += s.Tasks
	j.sum.CacheHits += s.CacheHits
	j.sum.Misses += s.Misses
	j.sum.Errors += s.Errors
	j.sum.Retries += s.Retries
	j.sum.Wall += s.Wall
	j.sum.CPU += s.CPU
	j.write(Event{Type: EventRunSummary, Summary: &s})
}

// Summary returns the cumulative totals over every Run sharing this
// journal.
func (j *Journal) Summary() RunSummary {
	if j == nil {
		return RunSummary{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sum
}

// String renders a summary as the one-line report the commands print.
func (s RunSummary) String() string {
	return fmt.Sprintf("%d cells: %d cache hits, %d misses, %d errors, %d retries, wall %s, cpu %s",
		s.Tasks, s.CacheHits, s.Misses, s.Errors, s.Retries,
		s.Wall.Round(time.Millisecond), s.CPU.Round(time.Millisecond))
}
