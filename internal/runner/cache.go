package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// cacheFormatVersion salts every key so a change to the on-disk entry
// layout invalidates old caches wholesale instead of misreading them.
const cacheFormatVersion = "1"

// Cache is a content-addressed on-disk result cache. The key is the task's
// canonical spec string; its SHA-256 (salted with a caller-supplied code
// version salt) addresses one JSON file per entry. A cache is safe for
// concurrent use: writes are atomic (temp file + rename) and reads treat
// any unreadable, truncated or mismatched entry as a miss, never an error,
// so a corrupted cache only costs recomputation.
type Cache struct {
	dir  string
	salt string
}

// OpenCache opens (creating if needed) a cache rooted at dir. The salt
// should name the producing code's version — e.g. "sweep-v1" — so results
// computed by incompatible code never collide.
func OpenCache(dir, salt string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: open cache: %w", err)
	}
	return &Cache{dir: dir, salt: salt}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// entry is the on-disk envelope. Key is stored alongside the value so a
// (vanishingly unlikely) hash collision or a foreign file reads as a miss.
type entry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Path returns the file a key is stored at.
func (c *Cache) Path(key string) string {
	h := sha256.Sum256([]byte(cacheFormatVersion + "\x00" + c.salt + "\x00" + key))
	return filepath.Join(c.dir, hex.EncodeToString(h[:])+".json")
}

// Get loads the entry for key into v, reporting whether it hit. Every
// failure mode — absent file, truncated or corrupt JSON, key mismatch,
// undecodable value — is a miss.
func (c *Cache) Get(key string, v any) bool {
	data, err := os.ReadFile(c.Path(key))
	if err != nil {
		return false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key {
		return false
	}
	return json.Unmarshal(e.Value, v) == nil
}

// Put stores v under key atomically, so concurrent writers and crashed
// runs can never leave a half-written entry behind the final name.
func (c *Cache) Put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: cache encode %q: %w", key, err)
	}
	data, err := json.Marshal(entry{Key: key, Value: raw})
	if err != nil {
		return fmt.Errorf("runner: cache encode %q: %w", key, err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("runner: cache write %q: %w", key, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache write %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache write %q: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), c.Path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache write %q: %w", key, err)
	}
	return nil
}
