// Package runner is the experiment execution engine: it fans independent,
// deterministic simulation tasks out across a bounded worker pool while
// guaranteeing results come back in task order — so parallel output is
// byte-identical to a serial run — and layers on the operational pieces a
// factorial study wants: a content-addressed on-disk result cache (Cache),
// a JSONL run journal with an end-of-run summary (Journal), live progress
// with an ETA (Printer), per-task timeouts, bounded retries for transient
// failures, and fail-fast or collect-all error policies.
//
// The sweep and exp packages are built on it; cmd/sweep and
// cmd/experiments expose it through the -j, -cache-dir and -journal flags.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Task is one unit of work: a pure function with a deterministic identity.
type Task[T any] struct {
	// Key is the canonical spec of the task: every input that affects the
	// result must appear in it. It names the task in the journal and
	// progress output and, when a cache is configured, is hashed into the
	// cache filename.
	Key string
	// Cacheable marks the result as eligible for the on-disk cache. Only
	// set it when Fn is a pure function of Key.
	Cacheable bool
	// Fn computes the result. It should honor ctx cancellation where it
	// can; tasks that ignore ctx still work but cancel less promptly.
	Fn func(ctx context.Context) (T, error)
}

// Options tune one Run call. The zero value runs with NumCPU workers, no
// cache, no journal, no progress, fail-fast errors and no retries.
type Options struct {
	// Workers bounds the pool; <= 0 means runtime.NumCPU(). Workers == 1
	// runs every task inline on the calling goroutine in task order — the
	// legacy serial path, with no goroutines involved.
	Workers int
	// Cache, when non-nil, is consulted before running cacheable tasks and
	// updated after they succeed. Cache write failures are journalled but
	// never fail the run.
	Cache *Cache
	// Journal, when non-nil, receives one event per task start/finish plus
	// a run summary.
	Journal *Journal
	// Progress, when non-nil, receives one "[done/total] ... eta" line per
	// completed task.
	Progress *Printer
	// CollectErrors selects the failure policy: false (default) cancels
	// outstanding work on the first error and returns it; true keeps
	// going and returns every task error joined together.
	CollectErrors bool
	// Retries is how many times a task is re-run after a failure that
	// Transient reports as retryable.
	Retries int
	// Transient classifies errors worth retrying. Nil means no error is.
	Transient func(error) bool
	// Timeout, when positive, bounds each task attempt via its context.
	Timeout time.Duration
}

// TaskError wraps a task failure with the task's identity.
type TaskError struct {
	Index int
	Key   string
	Err   error
}

func (e *TaskError) Error() string { return fmt.Sprintf("task %q: %v", e.Key, e.Err) }
func (e *TaskError) Unwrap() error { return e.Err }

// RunSummary aggregates one Run call.
type RunSummary struct {
	Tasks     int `json:"tasks"`
	CacheHits int `json:"cache_hits"`
	Misses    int `json:"cache_misses"`
	Errors    int `json:"errors"`
	Retries   int `json:"retries"`
	// Wall is the elapsed time of the whole Run call; CPU is the summed
	// duration of the individual tasks. CPU/Wall approximates the speedup
	// the pool delivered.
	Wall time.Duration `json:"wall_ns"`
	CPU  time.Duration `json:"cpu_ns"`
}

// state carries the per-run shared counters; every mutation is serialized
// through mu so tasks on any worker can report safely.
type state struct {
	opt   Options
	total int
	start time.Time

	mu   sync.Mutex
	sum  RunSummary
	done int
}

// Run executes tasks on a bounded worker pool and returns their results in
// task order, regardless of completion order. With Options.Workers == 1 it
// degenerates to the plain serial loop. On a fail-fast error the returned
// slice holds the results completed so far (zero values elsewhere).
func Run[T any](ctx context.Context, tasks []Task[T], opt Options) ([]T, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}

	st := &state{opt: opt, total: len(tasks), start: time.Now()}
	st.sum.Tasks = len(tasks)
	if opt.Journal != nil {
		opt.Journal.Event(Event{Type: EventRunStart, Tasks: len(tasks), Workers: workers})
	}

	results := make([]T, len(tasks))
	errs := make([]error, len(tasks))

	if workers == 1 {
		for i := range tasks {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				if !opt.CollectErrors {
					break
				}
				continue
			}
			errs[i] = runOne(ctx, &tasks[i], i, results, st)
			if errs[i] != nil && !opt.CollectErrors {
				break
			}
		}
	} else {
		runParallel(ctx, tasks, results, errs, st, workers)
	}

	st.mu.Lock()
	st.sum.Wall = time.Since(st.start)
	sum := st.sum
	st.mu.Unlock()
	if opt.Journal != nil {
		opt.Journal.finishRun(sum)
	}
	return results, joinErrors(ctx, errs, opt.CollectErrors)
}

// runParallel is the pool path: a producer feeds task indices to workers,
// each of which records results/errors into the order-preserving slices.
func runParallel[T any](ctx context.Context, tasks []Task[T], results []T, errs []error, st *state, workers int) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range tasks {
			select {
			case idx <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				err := runOne(runCtx, &tasks[i], i, results, st)
				if err != nil {
					mu.Lock()
					errs[i] = err
					mu.Unlock()
					if !st.opt.CollectErrors {
						cancel()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// runOne executes (or loads from cache) a single task, journalling and
// reporting progress. It writes the result into results[i].
func runOne[T any](ctx context.Context, t *Task[T], i int, results []T, st *state) error {
	if st.opt.Journal != nil {
		st.opt.Journal.Event(Event{Type: EventTaskStart, Task: t.Key})
	}
	start := time.Now()

	cache := st.opt.Cache
	if cache != nil && t.Cacheable {
		var v T
		if cache.Get(t.Key, &v) {
			results[i] = v
			st.finishTask(t.Key, time.Since(start), true, 1, nil)
			return nil
		}
	}

	var v T
	var err error
	attempts := 0
	for {
		attempts++
		attemptCtx := ctx
		var cancelAttempt context.CancelFunc
		if st.opt.Timeout > 0 {
			attemptCtx, cancelAttempt = context.WithTimeout(ctx, st.opt.Timeout)
		}
		v, err = t.Fn(attemptCtx)
		if cancelAttempt != nil {
			cancelAttempt()
		}
		if err == nil || ctx.Err() != nil {
			break
		}
		if attempts > st.opt.Retries || st.opt.Transient == nil || !st.opt.Transient(err) {
			break
		}
		st.retry(t.Key, attempts, err)
	}

	dur := time.Since(start)
	if err != nil {
		st.finishTask(t.Key, dur, false, attempts, err)
		return &TaskError{Index: i, Key: t.Key, Err: err}
	}
	results[i] = v
	if cache != nil && t.Cacheable {
		if perr := cache.Put(t.Key, v); perr != nil && st.opt.Journal != nil {
			st.opt.Journal.Event(Event{Type: EventCacheWriteError, Task: t.Key, Err: perr.Error()})
		}
	}
	st.finishTask(t.Key, dur, false, attempts, nil)
	return nil
}

// retry records one retry of a transient failure.
func (st *state) retry(key string, attempt int, err error) {
	st.mu.Lock()
	st.sum.Retries++
	st.mu.Unlock()
	if st.opt.Journal != nil {
		st.opt.Journal.Event(Event{Type: EventTaskRetry, Task: key, Attempt: attempt, Err: err.Error()})
	}
	st.opt.Progress.Printf("[retry %d] %s: %v\n", attempt, key, err)
}

// finishTask updates counters, journals the completion, and prints one
// progress line with an ETA extrapolated from throughput so far.
func (st *state) finishTask(key string, dur time.Duration, hit bool, attempts int, err error) {
	st.mu.Lock()
	st.done++
	done := st.done
	st.sum.CPU += dur
	switch {
	case err != nil:
		st.sum.Errors++
	case hit:
		st.sum.CacheHits++
	default:
		st.sum.Misses++
	}
	elapsed := time.Since(st.start)
	st.mu.Unlock()

	if st.opt.Journal != nil {
		e := Event{Type: EventTaskFinish, Task: key, DurMS: durMS(dur), CacheHit: hit}
		if attempts > 1 {
			e.Attempt = attempts
		}
		if err != nil {
			e.Err = err.Error()
		}
		st.opt.Journal.Event(e)
	}

	verb := "done"
	switch {
	case err != nil:
		verb = "FAILED"
	case hit:
		verb = "cached"
	}
	var eta time.Duration
	if done > 0 {
		eta = time.Duration(float64(elapsed) / float64(done) * float64(st.total-done))
	}
	st.opt.Progress.Printf("[%d/%d] %s %s (%.0f ms, eta %s)\n",
		done, st.total, verb, key, durMS(dur), eta.Round(100*time.Millisecond))
}

// joinErrors folds per-task errors into one error honoring the policy.
func joinErrors(ctx context.Context, errs []error, collect bool) error {
	if !collect {
		// Prefer the root-cause failure: a cancelled sibling task (it lost
		// the race with the real error) is only reported when nothing
		// better exists.
		var cancelled error
		for _, err := range errs {
			if err == nil {
				continue
			}
			if errors.Is(err, context.Canceled) {
				if cancelled == nil {
					cancelled = err
				}
				continue
			}
			return err
		}
		if cancelled != nil {
			return cancelled
		}
		return ctx.Err()
	}
	all := make([]error, 0, len(errs)+1)
	for _, err := range errs {
		if err != nil {
			all = append(all, err)
		}
	}
	if err := ctx.Err(); err != nil {
		all = append(all, err)
	}
	return errors.Join(all...)
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
