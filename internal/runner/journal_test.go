package runner

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestJournalIsValidJSONL(t *testing.T) {
	var sb strings.Builder
	j := NewJournal(&sb)
	if _, err := Run(context.Background(), squares(4, false), Options{Workers: 2, Journal: j}); err != nil {
		t.Fatal(err)
	}

	var types []string
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad journal line %q: %v", sc.Text(), err)
		}
		if e.Time == "" {
			t.Errorf("event %+v missing timestamp", e)
		}
		types = append(types, e.Type)
	}
	// run_start + 4×(start+finish) + run_summary.
	if len(types) != 10 {
		t.Fatalf("journal lines = %d, want 10:\n%s", len(types), sb.String())
	}
	if types[0] != EventRunStart || types[len(types)-1] != EventRunSummary {
		t.Errorf("journal must open with %s and close with %s: %v", EventRunStart, EventRunSummary, types)
	}
	count := map[string]int{}
	for _, ty := range types {
		count[ty]++
	}
	if count[EventTaskStart] != 4 || count[EventTaskFinish] != 4 {
		t.Errorf("task events = %+v, want 4 starts and 4 finishes", count)
	}
}

func TestJournalSummaryAccumulatesAcrossRuns(t *testing.T) {
	j := NewJournal(nil)
	for i := 0; i < 3; i++ {
		if _, err := Run(context.Background(), squares(5, false), Options{Workers: 2, Journal: j}); err != nil {
			t.Fatal(err)
		}
	}
	s := j.Summary()
	if s.Tasks != 15 || s.Misses != 15 {
		t.Fatalf("summary = %+v, want 15 tasks over 3 runs", s)
	}
}

func TestJournalRecordsErrors(t *testing.T) {
	var sb strings.Builder
	j := NewJournal(&sb)
	tasks := []Task[int]{{
		Key: "doomed",
		Fn:  func(ctx context.Context) (int, error) { return 0, fmt.Errorf("kaput") },
	}}
	if _, err := Run(context.Background(), tasks, Options{Workers: 1, Journal: j}); err == nil {
		t.Fatal("want error")
	}
	if s := j.Summary(); s.Errors != 1 {
		t.Errorf("summary errors = %d, want 1", s.Errors)
	}
	if !strings.Contains(sb.String(), `"err":"kaput"`) {
		t.Errorf("journal missing error detail:\n%s", sb.String())
	}
}

func TestNilJournalSafe(t *testing.T) {
	var j *Journal
	j.Event(Event{Type: EventTaskStart})
	j.finishRun(RunSummary{})
	if s := j.Summary(); s.Tasks != 0 {
		t.Error("nil journal summary should be zero")
	}
}

func TestSummaryString(t *testing.T) {
	s := RunSummary{Tasks: 24, CacheHits: 22, Misses: 2}
	str := s.String()
	for _, frag := range []string{"24 cells", "22 cache hits", "2 misses"} {
		if !strings.Contains(str, frag) {
			t.Errorf("summary string missing %q: %q", frag, str)
		}
	}
}
