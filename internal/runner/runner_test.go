package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// squares builds n tasks computing i*i, optionally staggered so completion
// order scrambles relative to task order.
func squares(n int, stagger bool) []Task[int] {
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[int]{
			Key: fmt.Sprintf("sq-%d", i),
			Fn: func(ctx context.Context) (int, error) {
				if stagger {
					// Later tasks finish first.
					time.Sleep(time.Duration(n-i) * time.Millisecond)
				}
				return i * i, nil
			},
		}
	}
	return tasks
}

func TestSerialOrder(t *testing.T) {
	got, err := Run(context.Background(), squares(10, false), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParallelPreservesOrder(t *testing.T) {
	got, err := Run(context.Background(), squares(16, true), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("got[%d] = %d, want %d (order not preserved)", i, v, i*i)
		}
	}
}

func TestWorkerBound(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	tasks := make([]Task[int], 24)
	for i := range tasks {
		tasks[i] = Task[int]{
			Key: fmt.Sprintf("t%d", i),
			Fn: func(ctx context.Context) (int, error) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				return 0, nil
			},
		}
	}
	if _, err := Run(context.Background(), tasks, Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, worker bound is %d", p, workers)
	}
}

func TestFailFast(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	tasks := make([]Task[int], 32)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Key: fmt.Sprintf("t%d", i),
			Fn: func(ctx context.Context) (int, error) {
				ran.Add(1)
				if i == 3 {
					return 0, boom
				}
				// Honor cancellation so the pool can drain early.
				select {
				case <-ctx.Done():
					return 0, ctx.Err()
				case <-time.After(5 * time.Millisecond):
				}
				return i, nil
			},
		}
	}
	_, err := Run(context.Background(), tasks, Options{Workers: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Key != "t3" {
		t.Fatalf("err = %#v, want TaskError for t3", err)
	}
	if n := ran.Load(); n == 32 {
		t.Error("fail-fast ran every task")
	}
}

func TestCollectErrors(t *testing.T) {
	tasks := make([]Task[int], 6)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Key: fmt.Sprintf("t%d", i),
			Fn: func(ctx context.Context) (int, error) {
				if i%2 == 1 {
					return 0, fmt.Errorf("fail-%d", i)
				}
				return i, nil
			},
		}
	}
	got, err := Run(context.Background(), tasks, Options{Workers: 3, CollectErrors: true})
	if err == nil {
		t.Fatal("want joined errors")
	}
	for _, want := range []string{"fail-1", "fail-3", "fail-5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	for i := 0; i < 6; i += 2 {
		if got[i] != i {
			t.Errorf("successful result %d lost: got %d", i, got[i])
		}
	}
}

func TestRetriesTransient(t *testing.T) {
	transient := errors.New("transient glitch")
	var attempts atomic.Int32
	tasks := []Task[string]{{
		Key: "flaky",
		Fn: func(ctx context.Context) (string, error) {
			if attempts.Add(1) < 3 {
				return "", transient
			}
			return "ok", nil
		},
	}}
	j := NewJournal(nil)
	got, err := Run(context.Background(), tasks, Options{
		Workers:   1,
		Retries:   5,
		Transient: func(err error) bool { return errors.Is(err, transient) },
		Journal:   j,
	})
	if err != nil || got[0] != "ok" {
		t.Fatalf("got %q, %v", got[0], err)
	}
	if n := attempts.Load(); n != 3 {
		t.Errorf("attempts = %d, want 3", n)
	}
	if s := j.Summary(); s.Retries != 2 {
		t.Errorf("summary retries = %d, want 2", s.Retries)
	}
}

func TestNoRetryWithoutClassifier(t *testing.T) {
	var attempts atomic.Int32
	tasks := []Task[int]{{
		Key: "hard",
		Fn: func(ctx context.Context) (int, error) {
			attempts.Add(1)
			return 0, errors.New("permanent")
		},
	}}
	if _, err := Run(context.Background(), tasks, Options{Workers: 1, Retries: 5}); err == nil {
		t.Fatal("want error")
	}
	if n := attempts.Load(); n != 1 {
		t.Errorf("attempts = %d, want 1 (no Transient classifier)", n)
	}
}

func TestPerTaskTimeout(t *testing.T) {
	tasks := []Task[int]{{
		Key: "slow",
		Fn: func(ctx context.Context) (int, error) {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(5 * time.Second):
				return 1, nil
			}
		},
	}}
	start := time.Now()
	_, err := Run(context.Background(), tasks, Options{Workers: 1, Timeout: 20 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("timeout did not bound the task")
	}
}

func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := Run(ctx, squares(8, false), Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	_ = got
}

func TestCacheRoundTripThroughRun(t *testing.T) {
	cache, err := OpenCache(t.TempDir(), "test-v1")
	if err != nil {
		t.Fatal(err)
	}
	var computed atomic.Int32
	mk := func() []Task[int] {
		tasks := make([]Task[int], 5)
		for i := range tasks {
			i := i
			tasks[i] = Task[int]{
				Key:       fmt.Sprintf("cell-%d", i),
				Cacheable: true,
				Fn: func(ctx context.Context) (int, error) {
					computed.Add(1)
					return 100 + i, nil
				},
			}
		}
		return tasks
	}

	j1 := NewJournal(nil)
	cold, err := Run(context.Background(), mk(), Options{Workers: 2, Cache: cache, Journal: j1})
	if err != nil {
		t.Fatal(err)
	}
	if s := j1.Summary(); s.Misses != 5 || s.CacheHits != 0 {
		t.Fatalf("cold summary = %+v", s)
	}

	j2 := NewJournal(nil)
	warm, err := Run(context.Background(), mk(), Options{Workers: 2, Cache: cache, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if s := j2.Summary(); s.CacheHits != 5 || s.Misses != 0 {
		t.Fatalf("warm summary = %+v", s)
	}
	if n := computed.Load(); n != 5 {
		t.Errorf("computed %d times, want 5 (warm run must not recompute)", n)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Errorf("warm[%d] = %d, want %d", i, warm[i], cold[i])
		}
	}
}

func TestProgressLines(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	p := NewPrinter(writerFunc(func(b []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(b)
	}))
	if _, err := Run(context.Background(), squares(6, true), Options{Workers: 3, Progress: p}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	mu.Unlock()
	if len(lines) != 6 {
		t.Fatalf("progress lines = %d, want 6:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[5], "[6/6]") || !strings.Contains(lines[5], "eta") {
		t.Errorf("last line missing completion count or eta: %q", lines[5])
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }

func TestNilPrinterSafe(t *testing.T) {
	var p *Printer
	p.Printf("into the void %d\n", 1)
	NewPrinter(nil).Printf("also fine\n")
}
