package runner

import (
	"fmt"
	"io"
	"sync"
)

// Printer serializes progress lines from concurrently completing tasks
// onto one writer, so interleaved output can never shear mid-line. All
// methods are nil-receiver safe: a nil Printer (or one over a nil writer)
// is a silent sink, which lets callers wire progress unconditionally.
type Printer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewPrinter wraps w (which may be nil) in a concurrency-safe printer.
func NewPrinter(w io.Writer) *Printer { return &Printer{w: w} }

// Printf writes one formatted progress line.
func (p *Printer) Printf(format string, args ...any) {
	if p == nil || p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, format, args...)
}
