package runner

import (
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name string
	Vals []float64
}

func TestCachePutGet(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "cell", Vals: []float64{1.5, 2.25}}
	if err := c.Put("spec|a=1", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !c.Get("spec|a=1", &out) {
		t.Fatal("want hit")
	}
	if out.Name != in.Name || len(out.Vals) != 2 || out.Vals[1] != 2.25 {
		t.Fatalf("round trip mangled: %+v", out)
	}
}

func TestCacheMissOnAbsentAndChangedKey(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if c.Get("never-stored", &out) {
		t.Error("absent key hit")
	}
	if err := c.Put("spec|a=1", payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	// Any field change in the canonical spec must change the address.
	if c.Get("spec|a=2", &out) {
		t.Error("changed spec hit the old entry")
	}
}

func TestCacheSaltSeparatesVersions(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir, "code-v1")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir, "code-v2")
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("k", payload{Name: "old"}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if c2.Get("k", &out) {
		t.Error("new code version read old code version's entry")
	}
}

func TestCacheCorruptionIsAMiss(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", payload{Name: "good"}); err != nil {
		t.Fatal(err)
	}
	path := c.Path("k")

	// Truncated entry: a crash mid-write (outside the atomic path) or disk
	// trouble must read as a miss, not an error.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if c.Get("k", &out) {
		t.Error("truncated entry hit")
	}

	// Garbage entry.
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if c.Get("k", &out) {
		t.Error("garbage entry hit")
	}

	// A fresh Put repairs it.
	if err := c.Put("k", payload{Name: "repaired"}); err != nil {
		t.Fatal(err)
	}
	if !c.Get("k", &out) || out.Name != "repaired" {
		t.Fatalf("repair failed: %+v", out)
	}
}

func TestCacheNoTempLeftovers(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Put("k", payload{Vals: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}
