package viz

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func vp(id int, arr, start, rt int64, w int) sim.Placement {
	return sim.Placement{
		Job:   &job.Job{ID: id, Arrival: arr, Runtime: rt, Estimate: rt, Width: w},
		Start: start,
		End:   start + rt,
	}
}

func TestShadeBounds(t *testing.T) {
	if shade(0) != ' ' {
		t.Fatalf("shade(0) = %q", shade(0))
	}
	if shade(1) != '@' {
		t.Fatalf("shade(1) = %q", shade(1))
	}
	if shade(-5) != ' ' || shade(7) != '@' {
		t.Fatal("out-of-range shades should clamp")
	}
	if c := shade(0.5); c == ' ' || c == '@' {
		t.Fatalf("shade(0.5) = %q, want an intermediate density character", c)
	}
}

func TestRenderSmallSchedule(t *testing.T) {
	ps := []sim.Placement{
		vp(1, 0, 0, 100, 8),
		vp(2, 10, 100, 50, 4),
	}
	var sb strings.Builder
	if err := Render(&sb, ps, Options{Procs: 8, Width: 40}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"2 jobs, 8 procs", "busy", "queue", "gantt", "w8", "w4", "#"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	// Job 2 waits [10,100): its gantt row must contain '.' before '#'.
	lines := strings.Split(out, "\n")
	var row2 string
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "2 w4") {
			row2 = l
		}
	}
	if row2 == "" {
		t.Fatalf("no gantt row for job 2:\n%s", out)
	}
	if !strings.Contains(row2, ".") || !strings.Contains(row2, "#") {
		t.Fatalf("job 2 row should show waiting then running: %q", row2)
	}
	if strings.Index(row2, ".") > strings.Index(row2, "#") {
		t.Fatalf("waiting must precede running: %q", row2)
	}
}

func TestRenderLargeScheduleSkipsGantt(t *testing.T) {
	var ps []sim.Placement
	for i := 0; i < 100; i++ {
		ps = append(ps, vp(i+1, int64(i), int64(i), 100, 1))
	}
	var sb strings.Builder
	if err := Render(&sb, ps, Options{Procs: 128, Width: 40, MaxGanttJobs: 40}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "gantt") {
		t.Fatal("large schedule should not render a gantt chart")
	}
}

func TestRenderErrors(t *testing.T) {
	if err := Render(&strings.Builder{}, []sim.Placement{vp(1, 0, 0, 1, 1)}, Options{}); err == nil {
		t.Fatal("missing Procs should error")
	}
	var sb strings.Builder
	if err := Render(&sb, nil, Options{Procs: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty schedule") {
		t.Fatal("empty schedule message missing")
	}
}

func TestRenderHeatmap(t *testing.T) {
	var h metrics.Heatmap
	h.Add(0, 1.0)    // day 0, hour 0: hottest
	h.Add(3600, 0.5) // day 0, hour 1
	var sb strings.Builder
	if err := RenderHeatmap(&sb, &h, "utilization"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "utilization") {
		t.Fatalf("title missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 { // title + 7 day rows
		t.Fatalf("lines = %d", len(lines))
	}
	day0 := lines[1]
	if !strings.Contains(day0, "@") {
		t.Fatalf("hottest cell not rendered at max shade: %q", day0)
	}
	// Unsampled cells must show as '-'.
	if !strings.Contains(day0, "-") || !strings.Contains(lines[7], "-") {
		t.Fatal("unsampled cells should render '-'")
	}
}

func TestRenderRealSimulation(t *testing.T) {
	m, err := workload.NewSDSC(0.8)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := m.Generate(300, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Config{Procs: m.Procs, Scheduler: "easy"}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, res.Placements, Options{Procs: m.Procs, Width: 80}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "300 jobs") {
		t.Fatalf("header missing:\n%s", sb.String())
	}
	// The busy strip must show variation (not all blank).
	busyLine := ""
	for _, l := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(l, "busy") {
			busyLine = l
		}
	}
	if strings.TrimSpace(strings.Trim(busyLine, "busy |")) == "" {
		t.Fatalf("busy strip is blank: %q", busyLine)
	}
}
