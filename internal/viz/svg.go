package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// xmlEscaper rewrites the five XML metacharacters; every piece of free text
// (titles, axis labels, series names) passes through it before being
// interpolated into SVG markup, so caller-supplied strings cannot break the
// document or inject elements.
var xmlEscaper = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
	"'", "&apos;",
)

// xmlEscape returns s safe for use in SVG text content and attributes.
func xmlEscape(s string) string { return xmlEscaper.Replace(s) }

// SVGOptions configure vector rendering.
type SVGOptions struct {
	// Procs is the machine size (required).
	Procs int
	// Width is the drawing width in pixels (default 900).
	Width int
	// RowHeight is the per-job lane height in pixels (default 14).
	RowHeight int
	// MaxJobs caps the number of lanes (default 60); larger schedules are
	// truncated to the earliest arrivals with a note.
	MaxJobs int
}

func (o SVGOptions) withDefaults() SVGOptions {
	if o.Width <= 0 {
		o.Width = 900
	}
	if o.RowHeight <= 0 {
		o.RowHeight = 14
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 60
	}
	return o
}

// laneColors cycles per job; waiting segments render grey.
var laneColors = []string{
	"#4477aa", "#66ccee", "#228833", "#ccbb44", "#ee6677", "#aa3377",
}

// RenderSVG draws the schedule as a self-contained SVG Gantt chart: one
// lane per job, a grey bar while it waits, a coloured bar (height scaled by
// width) while it runs — the figure style scheduling papers use.
func RenderSVG(w io.Writer, ps []sim.Placement, opts SVGOptions) error {
	opts = opts.withDefaults()
	if opts.Procs < 1 {
		return fmt.Errorf("viz: SVGOptions.Procs = %d", opts.Procs)
	}
	if len(ps) == 0 {
		_, err := fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg" width="200" height="20"><text x="4" y="14">empty schedule</text></svg>`)
		return err
	}

	sorted := append([]sim.Placement(nil), ps...)
	sort.Slice(sorted, func(i, k int) bool {
		if sorted[i].Job.Arrival != sorted[k].Job.Arrival {
			return sorted[i].Job.Arrival < sorted[k].Job.Arrival
		}
		return sorted[i].Job.ID < sorted[k].Job.ID
	})
	truncated := false
	if len(sorted) > opts.MaxJobs {
		sorted = sorted[:opts.MaxJobs]
		truncated = true
	}

	minT, maxT := sorted[0].Job.Arrival, sorted[0].End
	for _, p := range sorted {
		if p.Job.Arrival < minT {
			minT = p.Job.Arrival
		}
		if p.End > maxT {
			maxT = p.End
		}
	}
	span := maxT - minT
	if span < 1 {
		span = 1
	}

	const leftPad, topPad = 60, 24
	plotW := opts.Width - leftPad - 10
	x := func(t int64) float64 {
		return float64(leftPad) + float64(t-minT)*float64(plotW)/float64(span)
	}
	height := topPad + len(sorted)*opts.RowHeight + 20

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`+"\n",
		opts.Width, height); err != nil {
		return err
	}
	title := fmt.Sprintf("%d jobs, %d procs, span %ds", len(ps), opts.Procs, span)
	if truncated {
		title += fmt.Sprintf(" (first %d lanes shown)", opts.MaxJobs)
	}
	if _, err := fmt.Fprintf(w, `<text x="4" y="14">%s</text>`+"\n", xmlEscape(title)); err != nil {
		return err
	}

	for i, p := range sorted {
		y := topPad + i*opts.RowHeight
		barH := opts.RowHeight - 3
		// Lane label.
		if _, err := fmt.Fprintf(w, `<text x="4" y="%d">%d w%d</text>`+"\n", y+barH-2, p.Job.ID, p.Job.Width); err != nil {
			return err
		}
		// Waiting segment.
		if p.Start > p.Job.Arrival {
			if _, err := fmt.Fprintf(w,
				`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="#cccccc"/>`+"\n",
				x(p.Job.Arrival), y, x(p.Start)-x(p.Job.Arrival), barH); err != nil {
				return err
			}
		}
		// Running segment; opacity hints at job width relative to machine.
		op := 0.35 + 0.65*float64(p.Job.Width)/float64(opts.Procs)
		if _, err := fmt.Fprintf(w,
			`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" fill-opacity="%.2f"><title>job %d: arr %d, start %d, end %d, w %d</title></rect>`+"\n",
			x(p.Start), y, x(p.End)-x(p.Start), barH,
			laneColors[i%len(laneColors)], op,
			p.Job.ID, p.Job.Arrival, p.Start, p.End, p.Job.Width); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
