package viz

import (
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRenderSVGBasics(t *testing.T) {
	ps := []sim.Placement{
		vp(1, 0, 0, 100, 8),
		vp(2, 10, 100, 50, 4),
	}
	var sb strings.Builder
	if err := RenderSVG(&sb, ps, SVGOptions{Procs: 8}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"<svg", "</svg>", "2 jobs, 8 procs",
		`fill="#cccccc"`, // job 2's waiting bar
		"job 2: arr 10, start 100, end 150, w 4",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("svg missing %q", frag)
		}
	}
	// Two running rects + one waiting rect.
	if got := strings.Count(out, "<rect"); got != 3 {
		t.Errorf("rects = %d, want 3", got)
	}
}

func TestRenderSVGEmptyAndErrors(t *testing.T) {
	var sb strings.Builder
	if err := RenderSVG(&sb, nil, SVGOptions{Procs: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty schedule") {
		t.Fatal("empty message missing")
	}
	if err := RenderSVG(&sb, []sim.Placement{vp(1, 0, 0, 1, 1)}, SVGOptions{}); err == nil {
		t.Fatal("missing Procs should error")
	}
}

func TestRenderSVGTruncatesLargeSchedules(t *testing.T) {
	var ps []sim.Placement
	for i := 0; i < 100; i++ {
		ps = append(ps, vp(i+1, int64(i), int64(i), 100, 1))
	}
	var sb strings.Builder
	if err := RenderSVG(&sb, ps, SVGOptions{Procs: 128, MaxJobs: 10}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "first 10 lanes shown") {
		t.Fatal("truncation note missing")
	}
	if got := strings.Count(out, "<rect"); got > 20 {
		t.Errorf("rects = %d after truncation to 10 lanes", got)
	}
}

func TestRenderSVGWellFormed(t *testing.T) {
	// Cheap well-formedness check: every opened rect is self-closed and
	// the tag counts balance.
	ps := []sim.Placement{vp(1, 0, 5, 10, 2), vp(2, 1, 15, 10, 2)}
	var sb strings.Builder
	if err := RenderSVG(&sb, ps, SVGOptions{Procs: 4}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "<svg") != strings.Count(out, "</svg>") {
		t.Fatal("svg tags unbalanced")
	}
	if strings.Count(out, "<text") != strings.Count(out, "</text>") {
		t.Fatal("text tags unbalanced")
	}
	if strings.Count(out, "<title>") != strings.Count(out, "</title>") {
		t.Fatal("title tags unbalanced")
	}
}

// wellFormedXML runs the stdlib parser over the document.
func wellFormedXML(s string) error {
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		_, err := dec.Token()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func TestRenderSVGWellFormedXML(t *testing.T) {
	ps := []sim.Placement{vp(1, 0, 5, 10, 2), vp(2, 1, 15, 10, 2)}
	var sb strings.Builder
	if err := RenderSVG(&sb, ps, SVGOptions{Procs: 4}); err != nil {
		t.Fatal(err)
	}
	if err := wellFormedXML(sb.String()); err != nil {
		t.Errorf("SVG not well-formed XML: %v", err)
	}
}

func TestXMLEscape(t *testing.T) {
	got := xmlEscape(`a&b<c>d"e'f`)
	want := "a&amp;b&lt;c&gt;d&quot;e&apos;f"
	if got != want {
		t.Errorf("xmlEscape = %q, want %q", got, want)
	}
}
