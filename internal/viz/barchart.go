package viz

import (
	"fmt"
	"io"
	"math"
)

// BarChart describes a grouped bar chart: one group per label, one bar per
// series within each group — the shape of the paper's Figures 1–4.
type BarChart struct {
	Title  string
	Labels []string    // group labels (x axis)
	Series []string    // bar names within a group (legend)
	Values [][]float64 // Values[group][series]
	// YLabel annotates the value axis.
	YLabel string
	// Width and Height are the drawing size in pixels (defaults 640×320).
	Width, Height int
}

// validate checks the chart's shape.
func (c *BarChart) validate() error {
	if len(c.Labels) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("viz: BarChart needs labels and series")
	}
	if len(c.Values) != len(c.Labels) {
		return fmt.Errorf("viz: BarChart has %d value groups for %d labels", len(c.Values), len(c.Labels))
	}
	for i, g := range c.Values {
		if len(g) != len(c.Series) {
			return fmt.Errorf("viz: BarChart group %d has %d values for %d series", i, len(g), len(c.Series))
		}
		for _, v := range g {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("viz: BarChart value %v not renderable", v)
			}
		}
	}
	return nil
}

// RenderBarChartSVG draws the chart as a self-contained SVG.
func RenderBarChartSVG(w io.Writer, c BarChart) error {
	if err := c.validate(); err != nil {
		return err
	}
	if c.Width <= 0 {
		c.Width = 640
	}
	if c.Height <= 0 {
		c.Height = 320
	}

	maxV := 0.0
	for _, g := range c.Values {
		for _, v := range g {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}

	const leftPad, rightPad, topPad, bottomPad = 56, 10, 40, 46
	plotW := float64(c.Width - leftPad - rightPad)
	plotH := float64(c.Height - topPad - bottomPad)
	groupW := plotW / float64(len(c.Labels))
	barW := groupW * 0.8 / float64(len(c.Series))

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`+"\n",
		c.Width, c.Height); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, `<text x="4" y="14" font-size="12">%s</text>`+"\n", xmlEscape(c.Title)); err != nil {
		return err
	}
	if c.YLabel != "" {
		if _, err := fmt.Fprintf(w, `<text x="4" y="28">%s</text>`+"\n", xmlEscape(c.YLabel)); err != nil {
			return err
		}
	}

	// Y gridlines at quarters.
	for q := 0; q <= 4; q++ {
		v := maxV * float64(q) / 4
		y := float64(topPad) + plotH - plotH*float64(q)/4
		if _, err := fmt.Fprintf(w,
			`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/><text x="4" y="%.1f">%.4g</text>`+"\n",
			leftPad, y, c.Width-rightPad, y, y+3, v); err != nil {
			return err
		}
	}

	// Bars.
	for gi := range c.Labels {
		gx := float64(leftPad) + groupW*float64(gi) + groupW*0.1
		for si, v := range c.Values[gi] {
			h := plotH * v / maxV
			x := gx + barW*float64(si)
			y := float64(topPad) + plotH - h
			if _, err := fmt.Fprintf(w,
				`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %.4g</title></rect>`+"\n",
				x, y, barW*0.92, h, laneColors[si%len(laneColors)],
				xmlEscape(c.Labels[gi]), xmlEscape(c.Series[si]), v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, `<text x="%.1f" y="%d">%s</text>`+"\n",
			gx, c.Height-bottomPad+14, xmlEscape(c.Labels[gi])); err != nil {
			return err
		}
	}

	// Legend.
	lx := leftPad
	ly := c.Height - 16
	for si, name := range c.Series {
		if _, err := fmt.Fprintf(w,
			`<rect x="%d" y="%d" width="9" height="9" fill="%s"/><text x="%d" y="%d">%s</text>`+"\n",
			lx, ly-8, laneColors[si%len(laneColors)], lx+12, ly, xmlEscape(name)); err != nil {
			return err
		}
		lx += 12 + 7*len(name) + 16
	}

	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
