// Package viz renders finished schedules as plain-text charts: a
// processor-utilization strip, a queue-depth strip, and — for small
// schedules — a per-job Gantt chart. Text output keeps the tool usable over
// ssh on the head node, which is where scheduling questions get debugged.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// shades maps a 0..1 fill fraction onto ASCII density.
var shades = []byte(" .:-=+*#%@")

// shade returns the character for a fraction in [0,1].
func shade(frac float64) byte {
	if frac <= 0 {
		return shades[0]
	}
	if frac >= 1 {
		return shades[len(shades)-1]
	}
	return shades[int(frac*float64(len(shades)-1)+0.5)]
}

// Options configure rendering.
type Options struct {
	// Width is the chart width in columns (default 100).
	Width int
	// Procs is the machine size; required for utilization scaling.
	Procs int
	// MaxGanttJobs caps the Gantt chart (default 40); larger schedules
	// render only the strips.
	MaxGanttJobs int
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 100
	}
	if o.MaxGanttJobs <= 0 {
		o.MaxGanttJobs = 40
	}
	return o
}

// Render writes the full visualization: header, utilization strip, queue
// strip, and (for small schedules) the Gantt chart.
func Render(w io.Writer, ps []sim.Placement, opts Options) error {
	opts = opts.withDefaults()
	if opts.Procs < 1 {
		return fmt.Errorf("viz: Options.Procs = %d", opts.Procs)
	}
	if len(ps) == 0 {
		_, err := fmt.Fprintln(w, "viz: empty schedule")
		return err
	}

	minT, maxT := span(ps)
	dur := maxT - minT
	if dur < 1 {
		dur = 1
	}
	step := dur / int64(opts.Width)
	if step < 1 {
		step = 1
	}
	tl, err := metrics.Timeline(ps, step)
	if err != nil {
		return err
	}

	if _, err := fmt.Fprintf(w, "%d jobs, %d procs, span %s (each column ~ %s)\n",
		len(ps), opts.Procs, time.Duration(dur)*time.Second, time.Duration(step)*time.Second); err != nil {
		return err
	}
	if err := renderStrip(w, "busy", tl, opts.Width, func(p metrics.TimelinePoint) float64 {
		return float64(p.Busy) / float64(opts.Procs)
	}); err != nil {
		return err
	}
	peak := metrics.PeakQueueDepth(ps)
	if peak < 1 {
		peak = 1
	}
	if err := renderStrip(w, "queue", tl, opts.Width, func(p metrics.TimelinePoint) float64 {
		return float64(p.Queued) / float64(peak)
	}); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "queue peak: %d jobs\n", metrics.PeakQueueDepth(ps)); err != nil {
		return err
	}

	if len(ps) <= opts.MaxGanttJobs {
		return renderGantt(w, ps, minT, maxT, opts)
	}
	return nil
}

func span(ps []sim.Placement) (int64, int64) {
	minT, maxT := ps[0].Start, ps[0].End
	for _, p := range ps {
		if p.Job.Arrival < minT {
			minT = p.Job.Arrival
		}
		if p.End > maxT {
			maxT = p.End
		}
	}
	return minT, maxT
}

// renderStrip draws one labelled density strip.
func renderStrip(w io.Writer, label string, tl []metrics.TimelinePoint, width int, f func(metrics.TimelinePoint) float64) error {
	var sb strings.Builder
	for i := 0; i < width && i < len(tl); i++ {
		sb.WriteByte(shade(f(tl[i])))
	}
	_, err := fmt.Fprintf(w, "%-6s|%s|\n", label, sb.String())
	return err
}

// RenderHeatmap draws a 7×24 week grid as shaded characters, normalising to
// the heatmap's max cell. Empty cells (no samples) render as '·'.
func RenderHeatmap(w io.Writer, h *metrics.Heatmap, title string) error {
	if _, err := fmt.Fprintf(w, "%s (rows: day of week, cols: hour 00-23; scale max %.2f)\n", title, h.Max()); err != nil {
		return err
	}
	max := h.Max()
	for d := 0; d < 7; d++ {
		row := make([]byte, 24)
		for hr := 0; hr < 24; hr++ {
			if h.Samples[d][hr] == 0 {
				row[hr] = '-'
				continue
			}
			frac := 0.0
			if max > 0 {
				frac = h.Values[d][hr] / max
			}
			row[hr] = shade(frac)
		}
		if _, err := fmt.Fprintf(w, "  d%d |%s|\n", d, row); err != nil {
			return err
		}
	}
	return nil
}

// renderGantt draws one row per job: '.' waiting, '#' running.
func renderGantt(w io.Writer, ps []sim.Placement, minT, maxT int64, opts Options) error {
	if _, err := fmt.Fprintln(w, "\ngantt ('.' waiting, '#' running):"); err != nil {
		return err
	}
	sorted := append([]sim.Placement(nil), ps...)
	sort.Slice(sorted, func(i, k int) bool {
		if sorted[i].Job.Arrival != sorted[k].Job.Arrival {
			return sorted[i].Job.Arrival < sorted[k].Job.Arrival
		}
		return sorted[i].Job.ID < sorted[k].Job.ID
	})
	dur := maxT - minT
	if dur < 1 {
		dur = 1
	}
	col := func(t int64) int {
		c := int((t - minT) * int64(opts.Width) / dur)
		if c < 0 {
			c = 0
		}
		if c >= opts.Width {
			c = opts.Width - 1
		}
		return c
	}
	for _, p := range sorted {
		row := make([]byte, opts.Width)
		for i := range row {
			row[i] = ' '
		}
		a, s, e := col(p.Job.Arrival), col(p.Start), col(p.End)
		for i := a; i < s; i++ {
			row[i] = '.'
		}
		for i := s; i <= e && i < opts.Width; i++ {
			row[i] = '#'
		}
		if _, err := fmt.Fprintf(w, "%5d w%-4d|%s|\n", p.Job.ID, p.Job.Width, row); err != nil {
			return err
		}
	}
	return nil
}
