package viz

import (
	"strings"
	"testing"
)

func sampleChart() BarChart {
	return BarChart{
		Title:  "demo",
		Labels: []string{"FCFS", "SJF"},
		Series: []string{"conservative", "easy"},
		Values: [][]float64{{21.3, 24.4}, {21.3, 5.7}},
		YLabel: "avg slowdown",
	}
}

func TestRenderBarChartSVG(t *testing.T) {
	var sb strings.Builder
	if err := RenderBarChartSVG(&sb, sampleChart()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"<svg", "</svg>", "demo", "avg slowdown",
		"FCFS", "SJF", "conservative", "easy",
		"SJF / easy: 5.7",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("chart missing %q", frag)
		}
	}
	// 4 bars + 2 legend swatches.
	if got := strings.Count(out, "<rect"); got != 6 {
		t.Errorf("rects = %d, want 6", got)
	}
}

func TestRenderBarChartSVGValidation(t *testing.T) {
	cases := []BarChart{
		{}, // empty
		{Labels: []string{"a"}, Series: []string{"s"}},                              // missing values
		{Labels: []string{"a"}, Series: []string{"s"}, Values: [][]float64{{1, 2}}}, // wrong arity
		{Labels: []string{"a"}, Series: []string{"s"}, Values: [][]float64{{-1}}},   // negative
	}
	for i, c := range cases {
		if err := RenderBarChartSVG(&strings.Builder{}, c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestRenderBarChartSVGAllZero(t *testing.T) {
	c := sampleChart()
	c.Values = [][]float64{{0, 0}, {0, 0}}
	var sb strings.Builder
	if err := RenderBarChartSVG(&sb, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "</svg>") {
		t.Fatal("all-zero chart should still render")
	}
}

func TestRenderBarChartSVGEscapesFreeText(t *testing.T) {
	// Caller-supplied text with XML metacharacters must not break the
	// document or inject elements.
	c := BarChart{
		Title:  `slowdown <script>&"attack"</script>`,
		Labels: []string{"a<b", "c&d"},
		Series: []string{`e"f`, "g'h"},
		Values: [][]float64{{1, 2}, {3, 4}},
		YLabel: "x < y & z",
	}
	var sb strings.Builder
	if err := RenderBarChartSVG(&sb, c); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, raw := range []string{"<script>", `"attack"`, "a<b", "c&d", `e"f`, "g'h", "x < y"} {
		if strings.Contains(out, raw) {
			t.Errorf("unescaped %q leaked into SVG", raw)
		}
	}
	for _, esc := range []string{
		"&lt;script&gt;", "&amp;&quot;attack&quot;", "a&lt;b", "c&amp;d",
		"e&quot;f", "g&apos;h", "x &lt; y &amp; z",
	} {
		if !strings.Contains(out, esc) {
			t.Errorf("chart missing escaped form %q", esc)
		}
	}
	if err := wellFormedXML(out); err != nil {
		t.Errorf("SVG not well-formed XML: %v", err)
	}
}
