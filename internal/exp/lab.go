package exp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Params size the experiments. The defaults reproduce the paper at a scale
// a laptop handles in seconds; raise Jobs for tighter statistics.
type Params struct {
	// Seed drives every stochastic component.
	Seed int64
	// Jobs is the number of jobs generated per trace.
	Jobs int
	// NormalLoad is the offered load the base traces are calibrated to
	// (the CTC trace's native utilization is ~0.56).
	NormalLoad float64
	// HighLoad is the offered load after the paper's interarrival
	// shrinking; the paper presents high-load results.
	HighLoad float64
}

// DefaultParams returns the standard experiment sizing.
func DefaultParams() Params {
	return Params{Seed: 42, Jobs: 5000, NormalLoad: 0.6, HighLoad: 0.85}
}

// validate normalises and checks parameters.
func (p Params) validate() error {
	if p.Jobs < 1 {
		return fmt.Errorf("exp: Params.Jobs = %d", p.Jobs)
	}
	if p.NormalLoad <= 0 || p.HighLoad <= 0 {
		return fmt.Errorf("exp: loads must be positive (normal=%v high=%v)", p.NormalLoad, p.HighLoad)
	}
	if p.HighLoad < p.NormalLoad {
		return fmt.Errorf("exp: HighLoad %v below NormalLoad %v", p.HighLoad, p.NormalLoad)
	}
	return nil
}

// group is a minimal memoizing singleflight: concurrent callers of Do with
// the same key share one execution and — forever after — its result. It is
// the concurrency-safe version of the lazy maps the Lab used when
// experiments ran strictly serially.
type group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

type call[V any] struct {
	ready chan struct{}
	v     V
	err   error
}

// Do runs fn once per key; other callers block until the first finishes.
// fn runs outside the group lock, so calls for different keys (including
// nested Do calls from within fn) proceed concurrently.
func (g *group[V]) Do(key string, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.ready
		return c.v, c.err
	}
	c := &call[V]{ready: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	c.v, c.err = fn()
	close(c.ready)
	return c.v, c.err
}

// keys returns the keys of completed or in-flight calls, sorted.
func (g *group[V]) keys() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.calls))
	for k := range g.calls {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Lab memoizes workloads and simulation results so experiments that share
// configurations (Figure 1 and Table 4, for instance) pay for each
// simulation once. A Lab is safe for concurrent use: experiments running
// in parallel (see RunExperiments) that request the same configuration
// share a single simulation instead of duplicating it.
type Lab struct {
	P Params

	workloads group[[]*job.Job]
	results   group[*core.Result]
	machines  group[int]

	mu      sync.Mutex
	journal *runner.Journal
}

// NewLab builds a Lab, validating the parameters.
func NewLab(p Params) (*Lab, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &Lab{P: p}, nil
}

// SetJournal wires a run journal: every simulation the Lab performs emits
// one "sim" event with its configuration key and duration.
func (l *Lab) SetJournal(j *runner.Journal) {
	l.mu.Lock()
	l.journal = j
	l.mu.Unlock()
}

func (l *Lab) getJournal() *runner.Journal {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.journal
}

// Load names the two load conditions.
type Load string

// The paper's two load conditions.
const (
	NormalLoad Load = "normal"
	HighLoad   Load = "high"
)

// Procs returns the machine size for a trace name.
func (l *Lab) Procs(traceName string) (int, error) {
	return l.machines.Do(traceName, func() (int, error) {
		m, err := workload.ByName(traceName, 0.5)
		if err != nil {
			return 0, err
		}
		return m.Procs, nil
	})
}

// Workload returns the jobs for (trace, load, estimate model), generating
// and caching on first use. Base traces are generated at NormalLoad and the
// high-load variant shrinks inter-arrival gaps, exactly as the paper does.
func (l *Lab) Workload(traceName string, load Load, estModel string) ([]*job.Job, error) {
	key := traceName + "|" + string(load) + "|" + estModel
	return l.workloads.Do(key, func() ([]*job.Job, error) {
		baseKey := traceName + "|" + string(load) + "|base"
		base, err := l.workloads.Do(baseKey, func() ([]*job.Job, error) {
			model, err := workload.ByName(traceName, l.P.NormalLoad)
			if err != nil {
				return nil, err
			}
			jobs, err := model.Generate(l.P.Jobs, l.P.Seed)
			if err != nil {
				return nil, err
			}
			if load == HighLoad {
				jobs, err = trace.ScaleLoad(jobs, l.P.NormalLoad/l.P.HighLoad)
				if err != nil {
					return nil, err
				}
			}
			return jobs, nil
		})
		if err != nil {
			return nil, err
		}
		em, err := workload.EstimateModelByName(estModel)
		if err != nil {
			return nil, err
		}
		return workload.ApplyEstimates(base, em, l.P.Seed+1), nil
	})
}

// Result runs (or returns the cached run of) one configuration.
func (l *Lab) Result(traceName string, load Load, estModel, scheduler, policy string) (*core.Result, error) {
	key := traceName + "|" + string(load) + "|" + estModel + "|" + scheduler + "|" + policy
	return l.results.Do(key, func() (*core.Result, error) {
		jobs, err := l.Workload(traceName, load, estModel)
		if err != nil {
			return nil, err
		}
		procs, err := l.Procs(traceName)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := core.Run(core.Config{
			Procs:     procs,
			Scheduler: scheduler,
			Policy:    policy,
			Audit:     true,
		}, jobs)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", key, err)
		}
		if j := l.getJournal(); j != nil {
			j.Event(runner.Event{Type: "sim", Task: "lab|" + key,
				DurMS: float64(time.Since(start)) / float64(time.Millisecond)})
		}
		return res, nil
	})
}
