package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Params size the experiments. The defaults reproduce the paper at a scale
// a laptop handles in seconds; raise Jobs for tighter statistics.
type Params struct {
	// Seed drives every stochastic component.
	Seed int64
	// Jobs is the number of jobs generated per trace.
	Jobs int
	// NormalLoad is the offered load the base traces are calibrated to
	// (the CTC trace's native utilization is ~0.56).
	NormalLoad float64
	// HighLoad is the offered load after the paper's interarrival
	// shrinking; the paper presents high-load results.
	HighLoad float64
}

// DefaultParams returns the standard experiment sizing.
func DefaultParams() Params {
	return Params{Seed: 42, Jobs: 5000, NormalLoad: 0.6, HighLoad: 0.85}
}

// validate normalises and checks parameters.
func (p Params) validate() error {
	if p.Jobs < 1 {
		return fmt.Errorf("exp: Params.Jobs = %d", p.Jobs)
	}
	if p.NormalLoad <= 0 || p.HighLoad <= 0 {
		return fmt.Errorf("exp: loads must be positive (normal=%v high=%v)", p.NormalLoad, p.HighLoad)
	}
	if p.HighLoad < p.NormalLoad {
		return fmt.Errorf("exp: HighLoad %v below NormalLoad %v", p.HighLoad, p.NormalLoad)
	}
	return nil
}

// Lab memoizes workloads and simulation results so experiments that share
// configurations (Figure 1 and Table 4, for instance) pay for each
// simulation once.
type Lab struct {
	P         Params
	workloads map[string][]*job.Job
	results   map[string]*core.Result
	machines  map[string]int
}

// NewLab builds a Lab, validating the parameters.
func NewLab(p Params) (*Lab, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &Lab{
		P:         p,
		workloads: make(map[string][]*job.Job),
		results:   make(map[string]*core.Result),
		machines:  make(map[string]int),
	}, nil
}

// Load names the two load conditions.
type Load string

// The paper's two load conditions.
const (
	NormalLoad Load = "normal"
	HighLoad   Load = "high"
)

// Procs returns the machine size for a trace name.
func (l *Lab) Procs(traceName string) (int, error) {
	if n, ok := l.machines[traceName]; ok {
		return n, nil
	}
	m, err := workload.ByName(traceName, 0.5)
	if err != nil {
		return 0, err
	}
	l.machines[traceName] = m.Procs
	return m.Procs, nil
}

// Workload returns the jobs for (trace, load, estimate model), generating
// and caching on first use. Base traces are generated at NormalLoad and the
// high-load variant shrinks inter-arrival gaps, exactly as the paper does.
func (l *Lab) Workload(traceName string, load Load, estModel string) ([]*job.Job, error) {
	key := traceName + "|" + string(load) + "|" + estModel
	if jobs, ok := l.workloads[key]; ok {
		return jobs, nil
	}

	baseKey := traceName + "|" + string(load) + "|base"
	base, ok := l.workloads[baseKey]
	if !ok {
		model, err := workload.ByName(traceName, l.P.NormalLoad)
		if err != nil {
			return nil, err
		}
		jobs, err := model.Generate(l.P.Jobs, l.P.Seed)
		if err != nil {
			return nil, err
		}
		if load == HighLoad {
			jobs, err = trace.ScaleLoad(jobs, l.P.NormalLoad/l.P.HighLoad)
			if err != nil {
				return nil, err
			}
		}
		l.workloads[baseKey] = jobs
		base = jobs
	}

	em, err := workload.EstimateModelByName(estModel)
	if err != nil {
		return nil, err
	}
	jobs := workload.ApplyEstimates(base, em, l.P.Seed+1)
	l.workloads[key] = jobs
	return jobs, nil
}

// Result runs (or returns the cached run of) one configuration.
func (l *Lab) Result(traceName string, load Load, estModel, scheduler, policy string) (*core.Result, error) {
	key := traceName + "|" + string(load) + "|" + estModel + "|" + scheduler + "|" + policy
	if r, ok := l.results[key]; ok {
		return r, nil
	}
	jobs, err := l.Workload(traceName, load, estModel)
	if err != nil {
		return nil, err
	}
	procs, err := l.Procs(traceName)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(core.Config{
		Procs:     procs,
		Scheduler: scheduler,
		Policy:    policy,
		Audit:     true,
	}, jobs)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", key, err)
	}
	l.results[key] = res
	return res, nil
}
