package exp

import (
	"math"
	"testing"
)

// TestGoldenHeadlineNumbers pins the exact values quoted in EXPERIMENTS.md
// at the default full-scale parameters (5000 jobs, seed 42). If a workload
// or scheduler change moves these, EXPERIMENTS.md must be regenerated — the
// failure is the reminder.
func TestGoldenHeadlineNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale golden run")
	}
	l, err := NewLab(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	slow := func(trace, est, kind, pol string) float64 {
		r, err := l.Result(trace, HighLoad, est, kind, pol)
		if err != nil {
			t.Fatal(err)
		}
		return r.Report.Overall.MeanSlowdown
	}
	maxTurn := func(trace, est, kind, pol string) int64 {
		r, err := l.Result(trace, HighLoad, est, kind, pol)
		if err != nil {
			t.Fatal(err)
		}
		return r.Report.Overall.MaxTurnaround
	}

	goldenFloat := []struct {
		name string
		got  float64
		want float64
	}{
		{"Figure1 CTC conservative", slow("CTC", "exact", "conservative", "FCFS"), 21.29},
		{"Figure1 CTC EASY(SJF)", slow("CTC", "exact", "easy", "SJF"), 5.66},
		{"Figure1 CTC EASY(XF)", slow("CTC", "exact", "easy", "XF"), 7.13},
		{"Figure1 SDSC conservative", slow("SDSC", "exact", "conservative", "FCFS"), 55.79},
		{"Figure1 SDSC EASY(SJF)", slow("SDSC", "exact", "easy", "SJF"), 22.60},
		{"Table5 R=4 conservative FCFS", slow("CTC", "R=4", "conservative", "FCFS"), 16.53},
		{"Figure3 CTC EASY(SJF) actual", slow("CTC", "actual", "easy", "SJF"), 6.64},
		{"Selective adaptive actual", slow("CTC", "actual", "selective:adaptive", "FCFS"), 10.01},
		{"Preemption xf>=5 slowdown", slow("CTC", "actual", "preemptive:5", "FCFS"), 7.54},
		{"SlackSweep s=1 slowdown", slow("CTC", "actual", "slack:1", "FCFS"), 15.06},
	}
	for _, g := range goldenFloat {
		if math.Abs(g.got-g.want) > 0.01 {
			t.Errorf("%s = %.2f, EXPERIMENTS.md says %.2f — regenerate the doc if the change is intentional",
				g.name, g.got, g.want)
		}
	}

	goldenInt := []struct {
		name string
		got  int64
		want int64
	}{
		{"Table4 conservative worst case", maxTurn("CTC", "exact", "conservative", "FCFS"), 91727},
		{"Table4 EASY(SJF) worst case", maxTurn("CTC", "exact", "easy", "SJF"), 355250},
		{"Table7 EASY(SJF) worst case", maxTurn("CTC", "actual", "easy", "SJF"), 528630},
	}
	for _, g := range goldenInt {
		if g.got != g.want {
			t.Errorf("%s = %d, EXPERIMENTS.md says %d — regenerate the doc if the change is intentional",
				g.name, g.got, g.want)
		}
	}
}
