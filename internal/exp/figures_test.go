package exp

import (
	"strings"
	"testing"

	"repro/internal/viz"
)

func TestTableBarChartNumericColumns(t *testing.T) {
	tab := &Table{
		ID:      "X",
		Title:   "demo",
		Headers: []string{"scheduler", "slowdown", "note", "turnaround"},
	}
	tab.AddRow("a", 1.5, "text", 100.0)
	tab.AddRow("b", 2.5, "more", 200.0)
	c, ok := tab.BarChart()
	if !ok {
		t.Fatal("chartable table rejected")
	}
	if len(c.Series) != 2 || c.Series[0] != "slowdown" || c.Series[1] != "turnaround" {
		t.Fatalf("series = %v", c.Series)
	}
	if len(c.Labels) != 2 || c.Labels[0] != "a" {
		t.Fatalf("labels = %v", c.Labels)
	}
	if c.Values[1][1] != 200 {
		t.Fatalf("values = %v", c.Values)
	}
	if !strings.Contains(c.Title, "demo") {
		t.Fatalf("title = %q", c.Title)
	}
	var sb strings.Builder
	if err := viz.RenderBarChartSVG(&sb, c); err != nil {
		t.Fatal(err)
	}
}

func TestTableBarChartTextualTable(t *testing.T) {
	tab := &Table{ID: "T1", Title: "words", Headers: []string{"", "a", "b"}}
	tab.AddRow("x", "SN", "SW")
	if _, ok := tab.BarChart(); ok {
		t.Fatal("purely textual table should not chart")
	}
	empty := &Table{ID: "E", Headers: []string{"a", "b"}}
	if _, ok := empty.BarChart(); ok {
		t.Fatal("empty table should not chart")
	}
}

func TestTableBarChartHandlesDecoratedNumbers(t *testing.T) {
	tab := &Table{ID: "F2", Title: "pct", Headers: []string{"cat", "change"}}
	tab.AddRow("SN", "+1.7%")
	tab.AddRow("LN", "-21.1%")
	c, ok := tab.BarChart()
	if !ok {
		t.Fatal("percent columns should chart")
	}
	if c.Values[0][0] != 1.7 {
		t.Fatalf("values = %v", c.Values)
	}
	// Negative magnitudes clamp to 0 for the bar view.
	if c.Values[1][0] != 0 {
		t.Fatalf("negative value not clamped: %v", c.Values[1][0])
	}
}
