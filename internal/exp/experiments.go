package exp

import (
	"context"
	"fmt"

	"repro/internal/job"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	// ID is the paper artifact name: "Table1" … "Table7", "Figure1" …
	// "Figure4", plus the extensions "Equivalence", "Selective",
	// "LoadSweep".
	ID string
	// Description summarises what the artifact shows.
	Description string
	// Run executes the experiment against the Lab and returns its tables.
	Run func(l *Lab) ([]*Table, error)
}

// backfillPolicies are the priority policies the paper crosses with the
// two backfilling schemes.
var backfillPolicies = []string{"FCFS", "SJF", "XF"}

// All returns the experiment registry: the paper's artifacts in paper
// order, followed by the extension and ablation studies.
func All() []Experiment {
	return append(paperExperiments(), extensionExperiments()...)
}

// paperExperiments lists the artifacts the paper itself contains.
func paperExperiments() []Experiment {
	return []Experiment{
		{ID: "Table1", Description: "Job categorization criteria (runtime 1h × width 8 procs)", Run: runTable1},
		{ID: "Table2", Description: "CTC trace category distribution", Run: runTable2},
		{ID: "Table3", Description: "SDSC trace category distribution", Run: runTable3},
		{ID: "Figure1", Description: "Overall slowdown & turnaround: conservative vs EASY × priority, accurate estimates", Run: runFigure1},
		{ID: "Figure2", Description: "Category-wise % slowdown change, EASY vs conservative (CTC, accurate)", Run: runFigure2},
		{ID: "Table4", Description: "Worst-case turnaround, accurate estimates (CTC)", Run: runTable4},
		{ID: "Table5", Description: "Systematic overestimation R∈{1,2,4}: conservative (CTC)", Run: runTable5},
		{ID: "Table6", Description: "Systematic overestimation R∈{1,2,4}: EASY (CTC)", Run: runTable6},
		{ID: "Figure3", Description: "Conservative vs EASY with actual user estimates", Run: runFigure3},
		{ID: "Figure4", Description: "Well vs poorly estimated jobs: accurate vs actual estimates (CTC)", Run: runFigure4},
		{ID: "Table7", Description: "Worst-case turnaround, actual estimates (CTC)", Run: runTable7},
		{ID: "Equivalence", Description: "§4.1 priority equivalence under conservative backfilling", Run: runEquivalence},
		{ID: "Selective", Description: "§6 future work: selective backfilling vs conservative and EASY", Run: runSelective},
		{ID: "LoadSweep", Description: "Extension: slowdown and utilization across offered loads", Run: runLoadSweep},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// IDs lists all experiment IDs in order.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// --- Table 1 --------------------------------------------------------------

func runTable1(l *Lab) ([]*Table, error) {
	th := job.PaperThresholds()
	t := &Table{
		ID:      "Table1",
		Title:   "Categorization of jobs based on their runtime and width",
		Headers: []string{"", fmt.Sprintf("<= %d procs", th.MaxNarrowWidth), fmt.Sprintf("> %d procs", th.MaxNarrowWidth)},
	}
	t.AddRow(fmt.Sprintf("<= %d s", th.MaxShortRuntime), "SN", "SW")
	t.AddRow(fmt.Sprintf("> %d s", th.MaxShortRuntime), "LN", "LW")
	return []*Table{t}, nil
}

// --- Tables 2 & 3: trace category mixes ------------------------------------

func runCategoryTable(l *Lab, id, traceName string, target job.Mix) ([]*Table, error) {
	jobs, err := l.Workload(traceName, HighLoad, "exact")
	if err != nil {
		return nil, err
	}
	mix := job.CategoryMix(jobs, job.PaperThresholds())
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s trace job distribution (%d jobs)", traceName, len(jobs)),
		Headers: []string{"category", "generated %", "paper %"},
		Notes:   []string{"generated mix should track the paper's within sampling noise"},
	}
	for _, c := range job.Categories() {
		t.AddRow(c.String(), fmt.Sprintf("%.2f", 100*mix[c]), fmt.Sprintf("%.2f", 100*target[c]))
	}
	return []*Table{t}, nil
}

func runTable2(l *Lab) ([]*Table, error) {
	return runCategoryTable(l, "Table2", "CTC", ctcMix())
}

func runTable3(l *Lab) ([]*Table, error) {
	return runCategoryTable(l, "Table3", "SDSC", sdscMix())
}

// The paper mixes, re-declared here to avoid exp depending on workload's
// internals in table output. Kept in sync by a test.
func ctcMix() job.Mix  { return job.Mix{0.4506, 0.1184, 0.3026, 0.1284} }
func sdscMix() job.Mix { return job.Mix{0.4724, 0.2144, 0.2994, 0.0138} }

// --- Figure 1 ---------------------------------------------------------------

func runFigure1(l *Lab) ([]*Table, error) {
	var tables []*Table
	for _, traceName := range []string{"CTC", "SDSC"} {
		t := &Table{
			ID:      "Figure1",
			Title:   fmt.Sprintf("Conservative vs EASY, accurate estimates, high load — %s trace", traceName),
			Headers: []string{"scheduler", "avg slowdown", "avg turnaround (s)"},
			Notes: []string{
				"expected shape: EASY(SJF) and EASY(XF) beat conservative on average slowdown",
				"under conservative backfilling all priority policies produce the same schedule",
			},
		}
		for _, kind := range []string{"conservative", "easy"} {
			for _, pol := range backfillPolicies {
				r, err := l.Result(traceName, HighLoad, "exact", kind, pol)
				if err != nil {
					return nil, err
				}
				t.AddRow(r.Report.Scheduler, r.Report.Overall.MeanSlowdown, r.Report.Overall.MeanTurnaround)
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// --- Figure 2 ---------------------------------------------------------------

func runFigure2(l *Lab) ([]*Table, error) {
	var tables []*Table
	for _, pol := range backfillPolicies {
		cons, err := l.Result("CTC", HighLoad, "exact", "conservative", pol)
		if err != nil {
			return nil, err
		}
		easy, err := l.Result("CTC", HighLoad, "exact", "easy", pol)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:      "Figure2",
			Title:   fmt.Sprintf("%% change in slowdown, EASY vs conservative under %s — CTC trace", pol),
			Headers: []string{"category", "% change (negative = EASY better)", "conservative", "EASY", "jobs"},
			Notes: []string{
				"expected shape: LN benefits from EASY; SW benefits from conservative",
			},
		}
		for _, c := range job.Categories() {
			b := cons.Report.ByCategory[c].MeanSlowdown
			v := easy.Report.ByCategory[c].MeanSlowdown
			change := "n/a"
			if b > 0 {
				change = fmt.Sprintf("%+.1f%%", 100*(v-b)/b)
			}
			t.AddRow(c.String(), change, b, v, cons.Report.ByCategory[c].N)
		}
		ob, ov := cons.Report.Overall.MeanSlowdown, easy.Report.Overall.MeanSlowdown
		t.AddRow("Overall", fmt.Sprintf("%+.1f%%", 100*(ov-ob)/ob), ob, ov, cons.Report.Overall.N)
		tables = append(tables, t)
	}
	return tables, nil
}

// --- Tables 4 & 7: worst-case turnaround -----------------------------------

func runWorstCase(l *Lab, id, estModel, title string) ([]*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Headers: []string{"scheduler", "FCFS", "SJF", "XF"},
		Notes: []string{
			"expected shape: EASY's worst case exceeds conservative's (no reservation bound)",
		},
	}
	for _, kind := range []string{"conservative", "easy"} {
		row := []any{kind}
		for _, pol := range backfillPolicies {
			r, err := l.Result("CTC", HighLoad, estModel, kind, pol)
			if err != nil {
				return nil, err
			}
			row = append(row, r.Report.Overall.MaxTurnaround)
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

func runTable4(l *Lab) ([]*Table, error) {
	return runWorstCase(l, "Table4", "exact", "Worst-case turnaround (s), accurate estimates — CTC trace")
}

func runTable7(l *Lab) ([]*Table, error) {
	return runWorstCase(l, "Table7", "actual", "Worst-case turnaround (s), actual estimates — CTC trace")
}

// --- Tables 5 & 6: systematic overestimation --------------------------------

func runSystematic(l *Lab, id, kind, title string) ([]*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Headers: []string{"R", "FCFS", "SJF", "XF"},
		Notes: []string{
			"expected shape: average slowdown drops as R grows (larger holes to backfill into)",
			"the drop is larger under conservative than under EASY",
		},
	}
	for _, est := range []string{"R=1", "R=2", "R=4"} {
		row := []any{est}
		for _, pol := range backfillPolicies {
			r, err := l.Result("CTC", HighLoad, est, kind, pol)
			if err != nil {
				return nil, err
			}
			row = append(row, r.Report.Overall.MeanSlowdown)
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

func runTable5(l *Lab) ([]*Table, error) {
	return runSystematic(l, "Table5", "conservative", "Systematic overestimation, conservative backfilling — CTC, avg slowdown")
}

func runTable6(l *Lab) ([]*Table, error) {
	return runSystematic(l, "Table6", "easy", "Systematic overestimation, EASY backfilling — CTC, avg slowdown")
}

// --- Figure 3: actual estimates ----------------------------------------------

func runFigure3(l *Lab) ([]*Table, error) {
	var tables []*Table
	for _, traceName := range []string{"CTC", "SDSC"} {
		t := &Table{
			ID:      "Figure3",
			Title:   fmt.Sprintf("Conservative vs EASY, actual user estimates, high load — %s trace", traceName),
			Headers: []string{"scheduler", "avg slowdown", "avg turnaround (s)"},
			Notes: []string{
				"expected shape: EASY has lower overall slowdown than conservative for all priority policies",
			},
		}
		for _, kind := range []string{"conservative", "easy"} {
			for _, pol := range backfillPolicies {
				r, err := l.Result(traceName, HighLoad, "actual", kind, pol)
				if err != nil {
					return nil, err
				}
				t.AddRow(r.Report.Scheduler, r.Report.Overall.MeanSlowdown, r.Report.Overall.MeanTurnaround)
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// --- Figure 4: well vs poorly estimated jobs ----------------------------------

func runFigure4(l *Lab) ([]*Table, error) {
	// The comparison is between the *same job sets* under two estimate
	// regimes: the well/poor split comes from the actual-estimate trace,
	// and those job IDs are then tracked in the accurate-estimate run.
	actualJobs, err := l.Workload("CTC", HighLoad, "actual")
	if err != nil {
		return nil, err
	}
	wellIDs := map[int]bool{}
	poorIDs := map[int]bool{}
	for _, j := range actualJobs {
		if job.ClassifyEstimate(j) == job.WellEstimated {
			wellIDs[j.ID] = true
		} else {
			poorIDs[j.ID] = true
		}
	}

	var tables []*Table
	for _, kind := range []string{"conservative", "easy"} {
		t := &Table{
			ID:      "Figure4",
			Title:   fmt.Sprintf("Avg slowdown of well/poorly estimated jobs, %s backfilling — CTC trace (FCFS)", kind),
			Headers: []string{"job set", "accurate estimates", "actual estimates"},
			Notes: []string{
				"expected shape: well-estimated jobs improve under actual estimates, poorly estimated worsen",
				"both effects are stronger under conservative than under EASY",
			},
		}
		exact, err := l.Result("CTC", HighLoad, "exact", kind, "FCFS")
		if err != nil {
			return nil, err
		}
		actual, err := l.Result("CTC", HighLoad, "actual", kind, "FCFS")
		if err != nil {
			return nil, err
		}
		for _, set := range []struct {
			name string
			ids  map[int]bool
		}{{"well estimated", wellIDs}, {"poorly estimated", poorIDs}} {
			accRow := subsetMeanSlowdown(exact, set.ids)
			actRow := subsetMeanSlowdown(actual, set.ids)
			t.AddRow(fmt.Sprintf("%s (%d jobs)", set.name, len(set.ids)), accRow, actRow)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// --- §4.1 equivalence ---------------------------------------------------------

func runEquivalence(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "Equivalence",
		Title:   "Schedule fingerprints: conservative backfilling with accurate estimates is priority-invariant (§4.1)",
		Headers: []string{"scheduler", "fingerprint", "same as Conservative(FCFS)"},
	}
	base, err := l.Result("CTC", HighLoad, "exact", "conservative", "FCFS")
	if err != nil {
		return nil, err
	}
	add := func(kind, pol string) error {
		r, err := l.Result("CTC", HighLoad, "exact", kind, pol)
		if err != nil {
			return err
		}
		t.AddRow(r.Report.Scheduler, fmt.Sprintf("%016x", r.Fingerprint),
			fmt.Sprintf("%v", r.Fingerprint == base.Fingerprint))
		return nil
	}
	for _, pol := range []string{"FCFS", "SJF", "XF", "LJF", "WFP"} {
		if err := add("conservative", pol); err != nil {
			return nil, err
		}
	}
	for _, pol := range backfillPolicies {
		if err := add("easy", pol); err != nil {
			return nil, err
		}
	}
	t.Notes = []string{"all conservative rows must match; EASY rows generally differ"}
	return []*Table{t}, nil
}

// --- §6 selective backfilling ---------------------------------------------------

func runSelective(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "Selective",
		Title:   "Selective backfilling vs conservative and EASY — CTC trace, actual estimates, FCFS",
		Headers: []string{"scheduler", "avg slowdown", "worst-case turnaround (s)", "avg turnaround (s)"},
		Notes: []string{
			"expected shape: selective keeps EASY-like average slowdown while pulling the worst case toward conservative's",
		},
	}
	kinds := []string{"conservative", "easy", "selective:2", "selective:5", "selective:10", "selective:adaptive"}
	for _, kind := range kinds {
		r, err := l.Result("CTC", HighLoad, "actual", kind, "FCFS")
		if err != nil {
			return nil, err
		}
		t.AddRow(r.Report.Scheduler, r.Report.Overall.MeanSlowdown,
			r.Report.Overall.MaxTurnaround, r.Report.Overall.MeanTurnaround)
	}
	return []*Table{t}, nil
}

// --- Extension: load sweep -------------------------------------------------------

func runLoadSweep(l *Lab) ([]*Table, error) {
	// An extension beyond the paper: how the schedulers separate as load
	// rises. Uses its own workloads (load-scaled variants of the normal
	// trace) rather than Lab's two fixed conditions.
	base, err := l.Workload("CTC", NormalLoad, "exact")
	if err != nil {
		return nil, err
	}
	procs, err := l.Procs("CTC")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "LoadSweep",
		Title:   "Avg slowdown vs offered load — CTC trace, accurate estimates",
		Headers: []string{"offered load", "NoBackfill(FCFS)", "Conservative(FCFS)", "EASY(FCFS)", "EASY(SJF)"},
		Notes:   []string{"expected shape: separation grows with load; no-backfill saturates first"},
	}
	for _, target := range []float64{0.6, 0.75, 0.85, 0.95} {
		jobs := base
		if target != l.P.NormalLoad {
			jobs, err = trace.ScaleLoad(base, l.P.NormalLoad/target)
			if err != nil {
				return nil, err
			}
		}
		offered := trace.OfferedLoad(jobs, procs)
		row := []any{fmt.Sprintf("%.2f", offered)}
		for _, cfg := range [][2]string{{"none", "FCFS"}, {"conservative", "FCFS"}, {"easy", "FCFS"}, {"easy", "SJF"}} {
			res, err := runRaw(procs, jobs, cfg[0], cfg[1])
			if err != nil {
				return nil, err
			}
			row = append(row, res)
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// CacheSalt versions the experiment table cache: bump it whenever Table's
// layout or any experiment's semantics change.
const CacheSalt = "exp-tables-v1"

// RunAll executes every experiment serially and returns the tables in
// registry order. It is the legacy entry point, equivalent to
// RunExperiments over All() with one worker and no cache.
func RunAll(l *Lab) ([]*Table, error) {
	return RunExperiments(context.Background(), l, All(), runner.Options{Workers: 1})
}

// RunExperiments executes experiments through the runner engine, returning
// their tables flattened in the given order regardless of completion
// order. Experiments running in parallel share the Lab's memoized
// simulations (duplicate configurations are simulated once), and with a
// cache in opt the finished tables themselves are content-addressed on the
// experiment ID and the Lab's parameters, so repeated runs are
// near-instant.
func RunExperiments(ctx context.Context, l *Lab, exps []Experiment, opt runner.Options) ([]*Table, error) {
	tasks := make([]runner.Task[[]*Table], len(exps))
	for i, e := range exps {
		e := e
		tasks[i] = runner.Task[[]*Table]{
			Key:       cacheKey(l.P, e.ID),
			Cacheable: true,
			Fn: func(ctx context.Context) ([]*Table, error) {
				ts, err := e.Run(l)
				if err != nil {
					return nil, fmt.Errorf("exp: %s: %w", e.ID, err)
				}
				return ts, nil
			},
		}
	}
	groups, err := runner.Run(ctx, tasks, opt)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, ts := range groups {
		tables = append(tables, ts...)
	}
	return tables, nil
}

// cacheKey is the canonical spec of one experiment's output: the artifact
// ID plus every Lab parameter that shapes it.
func cacheKey(p Params, id string) string {
	return fmt.Sprintf("exp|id=%s|jobs=%d|seed=%d|normal=%g|high=%g",
		id, p.Jobs, p.Seed, p.NormalLoad, p.HighLoad)
}

// SortedResultKeys is a test helper exposing which results a lab has
// cached, sorted.
func (l *Lab) SortedResultKeys() []string {
	return l.results.keys()
}
