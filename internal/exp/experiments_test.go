package exp

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/job"
)

// shapeLab runs the experiments at the size used to validate the paper's
// qualitative claims. Shared across shape tests (the Lab caches runs).
var shapeLabInstance *Lab

func shapeLab(t *testing.T) *Lab {
	t.Helper()
	if shapeLabInstance != nil {
		return shapeLabInstance
	}
	p := DefaultParams()
	p.Jobs = 3000
	l, err := NewLab(p)
	if err != nil {
		t.Fatal(err)
	}
	shapeLabInstance = l
	return l
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{
		"Table1", "Table2", "Table3", "Figure1", "Figure2", "Table4",
		"Table5", "Table6", "Figure3", "Figure4", "Table7",
		"Equivalence", "Selective", "LoadSweep",
		"DepthSweep", "SlackSweep", "CompressionAblation", "Fairness", "Confidence",
		"Burstiness", "BackfillOrder", "Significance", "Preemption",
		"PolicyMatrix", "Partitioning", "LoadConsistency", "MultiSite", "Distribution",
	}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs()[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	if _, err := ByID("Figure1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("Figure9"); err == nil {
		t.Fatal("unknown ID should error")
	}
}

func TestTable1Definition(t *testing.T) {
	l := shapeLab(t)
	ts, err := runTable1(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || len(ts[0].Rows) != 2 {
		t.Fatalf("Table1 = %+v", ts)
	}
	if ts[0].Rows[0][1] != "SN" || ts[0].Rows[1][2] != "LW" {
		t.Fatalf("Table1 cells wrong: %v", ts[0].Rows)
	}
}

func TestTables2And3MatchPaperMixes(t *testing.T) {
	l := shapeLab(t)
	for _, tc := range []struct {
		run    func(*Lab) ([]*Table, error)
		target job.Mix
	}{{runTable2, ctcMix()}, {runTable3, sdscMix()}} {
		ts, err := tc.run(l)
		if err != nil {
			t.Fatal(err)
		}
		rows := ts[0].Rows
		if len(rows) != 4 {
			t.Fatalf("category rows = %d", len(rows))
		}
		for i, c := range job.Categories() {
			got, err := strconv.ParseFloat(rows[i][1], 64)
			if err != nil {
				t.Fatal(err)
			}
			want := 100 * tc.target[c]
			if diff := got - want; diff > 2.5 || diff < -2.5 {
				t.Errorf("%s %s: generated %.2f%%, paper %.2f%%", ts[0].ID, c, got, want)
			}
		}
	}
}

// TestFigure1Shape: EASY with SJF or XF priority clearly outperforms
// conservative backfilling on average slowdown (the paper's headline
// Figure 1 claim), on both traces.
func TestFigure1Shape(t *testing.T) {
	l := shapeLab(t)
	for _, traceName := range []string{"CTC", "SDSC"} {
		cons, err := l.Result(traceName, HighLoad, "exact", "conservative", "FCFS")
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []string{"SJF", "XF"} {
			easy, err := l.Result(traceName, HighLoad, "exact", "easy", pol)
			if err != nil {
				t.Fatal(err)
			}
			if easy.Report.Overall.MeanSlowdown >= cons.Report.Overall.MeanSlowdown {
				t.Errorf("%s: EASY(%s) slowdown %.2f not below conservative %.2f",
					traceName, pol, easy.Report.Overall.MeanSlowdown, cons.Report.Overall.MeanSlowdown)
			}
		}
	}
}

// TestFigure2Shape: the category-wise trends of Figure 2 — LN benefits from
// EASY under every policy; SW benefits from conservative under FCFS; under
// SJF and XF the short categories (SN, SW) and LN all benefit from EASY.
func TestFigure2Shape(t *testing.T) {
	l := shapeLab(t)
	change := func(pol string, c job.Category) float64 {
		cons, err := l.Result("CTC", HighLoad, "exact", "conservative", pol)
		if err != nil {
			t.Fatal(err)
		}
		easy, err := l.Result("CTC", HighLoad, "exact", "easy", pol)
		if err != nil {
			t.Fatal(err)
		}
		b := cons.Report.ByCategory[c].MeanSlowdown
		v := easy.Report.ByCategory[c].MeanSlowdown
		return 100 * (v - b) / b
	}
	for _, pol := range []string{"FCFS", "SJF", "XF"} {
		if ch := change(pol, job.LongNarrow); ch >= 0 {
			t.Errorf("LN under %s: %+.1f%%, want EASY benefit (negative)", pol, ch)
		}
	}
	if ch := change("FCFS", job.ShortWide); ch <= 0 {
		t.Errorf("SW under FCFS: %+.1f%%, want conservative benefit (positive)", ch)
	}
	for _, pol := range []string{"SJF", "XF"} {
		for _, c := range []job.Category{job.ShortNarrow, job.ShortWide} {
			if ch := change(pol, c); ch >= 0 {
				t.Errorf("%s under %s: %+.1f%%, want EASY benefit (negative)", c, pol, ch)
			}
		}
	}
}

// TestTable4Shape: EASY's worst-case turnaround meets or exceeds
// conservative's for every policy, and strictly exceeds it under SJF (the
// unbounded-delay effect).
func TestTable4Shape(t *testing.T) {
	l := shapeLab(t)
	for _, pol := range []string{"FCFS", "SJF", "XF"} {
		cons, err := l.Result("CTC", HighLoad, "exact", "conservative", pol)
		if err != nil {
			t.Fatal(err)
		}
		easy, err := l.Result("CTC", HighLoad, "exact", "easy", pol)
		if err != nil {
			t.Fatal(err)
		}
		cw, ew := cons.Report.Overall.MaxTurnaround, easy.Report.Overall.MaxTurnaround
		if ew < cw {
			t.Errorf("%s: EASY worst case %d below conservative %d", pol, ew, cw)
		}
		if pol == "SJF" && ew <= cw {
			t.Errorf("SJF: EASY worst case %d should strictly exceed conservative %d", ew, cw)
		}
	}
}

// TestTable5Table6Shape: systematic overestimation lowers conservative's
// average slowdown substantially (R=4 < R=1 for every policy) while EASY is
// much less affected.
func TestTable5Table6Shape(t *testing.T) {
	l := shapeLab(t)
	slow := func(kind, est, pol string) float64 {
		r, err := l.Result("CTC", HighLoad, est, kind, pol)
		if err != nil {
			t.Fatal(err)
		}
		return r.Report.Overall.MeanSlowdown
	}
	for _, pol := range []string{"FCFS", "SJF", "XF"} {
		r1, r4 := slow("conservative", "R=1", pol), slow("conservative", "R=4", pol)
		if r4 >= r1 {
			t.Errorf("conservative %s: R=4 slowdown %.2f not below R=1 %.2f", pol, r4, r1)
		}
	}
	// Relative change under FCFS: conservative's improvement exceeds
	// EASY's.
	consDrop := (slow("conservative", "R=1", "FCFS") - slow("conservative", "R=4", "FCFS")) / slow("conservative", "R=1", "FCFS")
	easyDrop := (slow("easy", "R=1", "FCFS") - slow("easy", "R=4", "FCFS")) / slow("easy", "R=1", "FCFS")
	if consDrop <= easyDrop {
		t.Errorf("conservative relative drop %.3f not above EASY's %.3f", consDrop, easyDrop)
	}
}

// TestFigure3Shape: with actual estimates, EASY under SJF and XF still
// beats conservative (the policies the paper's conclusion emphasises). The
// FCFS comparison is trace-sensitive (Mu'alem & Feitelson report the
// opposite sign for CTC) and is not asserted.
func TestFigure3Shape(t *testing.T) {
	l := shapeLab(t)
	for _, tc := range []struct{ trace, pol string }{
		{"CTC", "SJF"}, {"CTC", "XF"}, {"SDSC", "XF"},
	} {
		cons, err := l.Result(tc.trace, HighLoad, "actual", "conservative", tc.pol)
		if err != nil {
			t.Fatal(err)
		}
		easy, err := l.Result(tc.trace, HighLoad, "actual", "easy", tc.pol)
		if err != nil {
			t.Fatal(err)
		}
		if easy.Report.Overall.MeanSlowdown >= cons.Report.Overall.MeanSlowdown {
			t.Errorf("%s %s: EASY %.2f not below conservative %.2f with actual estimates",
				tc.trace, tc.pol, easy.Report.Overall.MeanSlowdown, cons.Report.Overall.MeanSlowdown)
		}
	}
}

// TestFigure4Shape: under conservative backfilling, the well-estimated
// jobs' slowdown improves when estimates go from accurate to actual; under
// EASY the poorly estimated jobs' slowdown worsens. (The paper's remaining
// two quadrants are regime-sensitive; EXPERIMENTS.md discusses them.)
func TestFigure4Shape(t *testing.T) {
	l := shapeLab(t)
	tables, err := runFigure4(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	consWellAcc, consWellAct := parse(tables[0].Rows[0][1]), parse(tables[0].Rows[0][2])
	if consWellAct >= consWellAcc {
		t.Errorf("conservative well-estimated: actual %.2f not below accurate %.2f", consWellAct, consWellAcc)
	}
	easyPoorAcc, easyPoorAct := parse(tables[1].Rows[1][1]), parse(tables[1].Rows[1][2])
	if easyPoorAct <= easyPoorAcc {
		t.Errorf("EASY poorly-estimated: actual %.2f not above accurate %.2f", easyPoorAct, easyPoorAcc)
	}
}

// TestEquivalenceShape: every conservative fingerprint matches under exact
// estimates; EASY's differ from conservative's.
func TestEquivalenceShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runEquivalence(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range ts[0].Rows {
		isCons := strings.HasPrefix(row[0], "Conservative")
		same := row[2] == "true"
		if isCons && !same {
			t.Errorf("%s: fingerprint differs from Conservative(FCFS)", row[0])
		}
		if !isCons && same {
			t.Errorf("%s: fingerprint unexpectedly equals conservative's", row[0])
		}
	}
}

// TestSelectiveShape: selective backfilling's average slowdown beats plain
// EASY(FCFS) (fewer blocking reservations than conservative, protection for
// starving jobs), and its worst-case turnaround stays below EASY(SJF)'s
// unbounded tail.
func TestSelectiveShape(t *testing.T) {
	l := shapeLab(t)
	easyFCFS, err := l.Result("CTC", HighLoad, "actual", "easy", "FCFS")
	if err != nil {
		t.Fatal(err)
	}
	easySJF, err := l.Result("CTC", HighLoad, "actual", "easy", "SJF")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := l.Result("CTC", HighLoad, "actual", "selective:2", "FCFS")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Report.Overall.MeanSlowdown >= easyFCFS.Report.Overall.MeanSlowdown {
		t.Errorf("selective slowdown %.2f not below EASY(FCFS) %.2f",
			sel.Report.Overall.MeanSlowdown, easyFCFS.Report.Overall.MeanSlowdown)
	}
	if sel.Report.Overall.MaxTurnaround >= easySJF.Report.Overall.MaxTurnaround {
		t.Errorf("selective worst case %d not below EASY(SJF) %d",
			sel.Report.Overall.MaxTurnaround, easySJF.Report.Overall.MaxTurnaround)
	}
}

// TestLoadSweepShape: the no-backfill baseline deteriorates monotonically
// and much faster than the backfilling schedulers.
func TestLoadSweepShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runLoadSweep(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	prev := -1.0
	for _, row := range rows {
		nb := parse(row[1])
		if nb <= prev {
			t.Errorf("no-backfill slowdown not increasing with load: %v after %v", nb, prev)
		}
		prev = nb
		if easy := parse(row[3]); easy >= nb {
			t.Errorf("EASY slowdown %.2f not below no-backfill %.2f", easy, nb)
		}
	}
}

func TestRunAllProducesEveryTable(t *testing.T) {
	l := shapeLab(t)
	tables, err := RunAll(l)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		seen[tb.ID] = true
		if len(tb.Headers) == 0 || len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Headers) {
				t.Errorf("%s: row width %d != headers %d", tb.ID, len(row), len(tb.Headers))
			}
		}
	}
	for _, id := range IDs() {
		if !seen[id] {
			t.Errorf("RunAll missing %s", id)
		}
	}
}
