package exp

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/runner"
)

// TestRunExperimentsParallelMatchesSerial: running the full registry on 8
// workers must produce exactly the tables the serial path produces, in the
// same order.
func TestRunExperimentsParallelMatchesSerial(t *testing.T) {
	serialLab, err := NewLab(testParams())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunAll(serialLab)
	if err != nil {
		t.Fatal(err)
	}

	parallelLab, err := NewLab(testParams())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunExperiments(context.Background(), parallelLab, All(), runner.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(parallel) {
		t.Fatalf("table count: serial %d vs parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("table %d (%s) differs between serial and parallel", i, serial[i].ID)
		}
	}
}

// TestLabSharesConcurrentSimulations: many goroutines requesting the same
// configuration must trigger exactly one simulation.
func TestLabSharesConcurrentSimulations(t *testing.T) {
	l, err := NewLab(testParams())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]uint64, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := l.Result("CTC", HighLoad, "exact", "easy", "FCFS")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r.Fingerprint
		}(i)
	}
	wg.Wait()
	if keys := l.SortedResultKeys(); len(keys) != 1 {
		t.Fatalf("result keys = %v, want exactly one", keys)
	}
	for i, fp := range results {
		if fp != results[0] {
			t.Errorf("goroutine %d saw fingerprint %016x, want %016x", i, fp, results[0])
		}
	}
}

// TestExperimentTableCache: a second run against the same cache directory
// must hit for every experiment and reproduce the tables exactly.
func TestExperimentTableCache(t *testing.T) {
	cache, err := runner.OpenCache(t.TempDir(), CacheSalt)
	if err != nil {
		t.Fatal(err)
	}
	exps := []Experiment{}
	for _, id := range []string{"Table1", "Figure1", "Table4"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}

	lab1, err := NewLab(testParams())
	if err != nil {
		t.Fatal(err)
	}
	cold := runner.NewJournal(nil)
	want, err := RunExperiments(context.Background(), lab1, exps, runner.Options{Workers: 2, Cache: cache, Journal: cold})
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Summary(); s.Misses != 3 {
		t.Fatalf("cold summary = %+v", s)
	}

	lab2, err := NewLab(testParams())
	if err != nil {
		t.Fatal(err)
	}
	warm := runner.NewJournal(nil)
	got, err := RunExperiments(context.Background(), lab2, exps, runner.Options{Workers: 2, Cache: cache, Journal: warm})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Summary(); s.CacheHits != 3 || s.Misses != 0 {
		t.Fatalf("warm summary = %+v, want 3 hits", s)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("cached tables differ from computed tables")
	}
	if keys := lab2.SortedResultKeys(); len(keys) != 0 {
		t.Errorf("warm lab simulated %v despite full cache hits", keys)
	}

	// Different parameters must change every experiment's address.
	p := testParams()
	p.Seed++
	lab3, err := NewLab(p)
	if err != nil {
		t.Fatal(err)
	}
	j3 := runner.NewJournal(nil)
	if _, err := RunExperiments(context.Background(), lab3, exps[:1], runner.Options{Workers: 1, Cache: cache, Journal: j3}); err != nil {
		t.Fatal(err)
	}
	if s := j3.Summary(); s.CacheHits != 0 {
		t.Errorf("changed seed still hit the cache: %+v", s)
	}
}
