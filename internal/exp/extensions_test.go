package exp

import (
	"strconv"
	"strings"
	"testing"
)

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimPrefix(strings.TrimSpace(s), "±")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestDepthSweepShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runDepthSweep(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// LN (long narrow) slowdown should not improve as protection deepens:
	// reservations only add roofs that block LN backfilling. Allow noise.
	lnK1 := parseCell(t, rows[0][3])
	lnK16 := parseCell(t, rows[4][3])
	if lnK16 < lnK1*0.9 {
		t.Errorf("LN slowdown improved with depth (k=1: %.2f, k=16: %.2f) — roofs should hurt LN", lnK1, lnK16)
	}
}

func TestSlackSweepShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runSlackSweep(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Slack 0 must equal plain conservative on mean slowdown.
	cons, err := l.Result("CTC", HighLoad, "actual", "conservative", "FCFS")
	if err != nil {
		t.Fatal(err)
	}
	s0 := parseCell(t, rows[0][1])
	want := cons.Report.Overall.MeanSlowdown
	if diff := s0 - want; diff > 0.01 || diff < -0.01 {
		t.Errorf("slack 0 slowdown %.3f != conservative %.3f", s0, want)
	}
	// Generous slack should improve the average on this workload.
	s2 := parseCell(t, rows[3][1])
	if s2 > s0 {
		t.Errorf("slack 2 slowdown %.2f worse than slack 0 %.2f", s2, s0)
	}
}

func TestCompressionAblationShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runCompressionAblation(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	// R=1: identical (no holes ever).
	if rows[0][1] != rows[0][2] || rows[0][3] != rows[0][4] {
		t.Errorf("R=1: with/without differ (%v) — no holes should open", rows[0])
	}
	// R>=2: compression must clearly win on mean turnaround (stale
	// reservations strand jobs). Mean slowdown is deliberately NOT
	// asserted: short arrivals backfilling into the sparse phantom ladder
	// can make the uncompressed slowdown look better.
	for _, i := range []int{1, 2, 3} {
		with := parseCell(t, rows[i][3])
		without := parseCell(t, rows[i][4])
		if with >= without {
			t.Errorf("%s: compressed turnaround %.0f not below uncompressed %.0f", rows[i][0], with, without)
		}
	}
}

func TestFairnessShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runFairness(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts[0].Rows) != 6 {
		t.Fatalf("rows = %d", len(ts[0].Rows))
	}
	for _, row := range ts[0].Rows {
		g := parseCell(t, row[2])
		if g < 0 || g > 1 {
			t.Errorf("%s: Gini %v out of [0,1]", row[0], g)
		}
	}
}

func TestBurstinessShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runBurstiness(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Loads must be comparable across arrival processes (that is the whole
	// point of the comparison).
	loads := map[string]float64{}
	for _, r := range rows {
		loads[r[0]] = parseCell(t, r[1])
	}
	for name, v := range loads {
		if v < 0.5 || v > 1.0 {
			t.Errorf("%s offered load %.2f out of comparable band", name, v)
		}
	}
	// Session arrivals must produce a deeper peak queue than renewal ones
	// under the same scheduler (row order: renewal cons, renewal easy,
	// diurnal cons, diurnal easy, sessions cons, sessions easy).
	renewalPeak := parseCell(t, rows[0][5])
	sessionPeak := parseCell(t, rows[4][5])
	if sessionPeak <= renewalPeak {
		t.Errorf("session peak queue %v not above renewal %v", sessionPeak, renewalPeak)
	}
}

func TestSignificanceShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runSignificance(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The headline EASY(SJF) vs conservative comparison under exact
	// estimates must be significant with a negative mean difference.
	if rows[0][4] != "true" {
		t.Errorf("EASY(SJF) vs conservative not significant: %v", rows[0])
	}
	if !strings.HasPrefix(rows[0][3], "-") {
		t.Errorf("EASY(SJF) mean difference should be negative: %v", rows[0][3])
	}
}

func TestPreemptionShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runPreemption(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Preemption must cut the worst-case turnaround relative to plain EASY
	// (row 0 is EASY, rows 3..5 the preemptive thresholds).
	easyWorst := parseCell(t, rows[0][2])
	for _, i := range []int{3, 4, 5} {
		if w := parseCell(t, rows[i][2]); w > easyWorst {
			t.Errorf("%s worst case %.0f exceeds EASY's %.0f", rows[i][0], w, easyWorst)
		}
	}
}

func TestDistributionShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runDistribution(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// Quantiles must be monotone and every slowdown >= 1.
		prev := 0.0
		for i := 1; i <= 6; i++ {
			q := parseCell(t, row[i])
			if q < 1 {
				t.Errorf("%s: quantile %d = %v < 1", row[0], i, q)
			}
			if q < prev {
				t.Errorf("%s: quantiles not monotone at %d (%v < %v)", row[0], i, q, prev)
			}
			prev = q
		}
		// Medians stay small even where means are large: the tail story.
		if p50 := parseCell(t, row[3]); p50 > 5 {
			t.Errorf("%s: median slowdown %v implausibly high", row[0], p50)
		}
	}
}

func TestMultiSiteShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runMultiSite(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Row order per scheduler: single, least-loaded, replicate-all.
	for _, base := range []int{0, 3} {
		single := parseCell(t, rows[base][2])
		repl := parseCell(t, rows[base+2][2])
		if repl >= single {
			t.Errorf("%s: replicate-all slowdown %.2f not below single %.2f",
				rows[base][1], repl, single)
		}
	}
}

func TestLoadConsistencyShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runLoadConsistency(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	sign := func(s string) int {
		v := parseCell(t, strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%"))
		switch {
		case v > 0:
			return 1
		case v < 0:
			return -1
		}
		return 0
	}
	// The paper's §3 claim: same trend directions at both loads for the
	// categories with clear trends (SW conservative-favoured, LN
	// EASY-favoured).
	for _, row := range rows {
		cat := row[0]
		if cat != "SW" && cat != "LN" {
			continue
		}
		if sign(row[1]) != sign(row[2]) {
			t.Errorf("%s: trend sign flips between loads (%s vs %s)", cat, row[1], row[2])
		}
	}
}

func TestPartitioningShape(t *testing.T) {
	l := shapeLab(t)
	ts, err := runPartitioning(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The shared backfilling pool must beat the static split on mean wait
	// (rows: shared FCFS, shared SJF, split EASY, split NoBackfill).
	sharedWait := parseCell(t, rows[0][2])
	splitWait := parseCell(t, rows[2][2])
	if sharedWait >= splitWait {
		t.Errorf("shared pool wait %.0f not below static split %.0f", sharedWait, splitWait)
	}
}

func TestConfidenceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed experiment")
	}
	p := DefaultParams()
	p.Jobs = 800 // keep the 5-seed sweep quick
	l, err := NewLab(p)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := runConfidence(l)
	if err != nil {
		t.Fatal(err)
	}
	rows := ts[0].Rows
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The headline ordering must hold in multi-seed means: EASY(SJF)
	// beats conservative under exact estimates.
	consExact := parseCell(t, rows[0][2])
	easySJF := parseCell(t, rows[1][2])
	if easySJF >= consExact {
		t.Errorf("multi-seed: EASY(SJF) %.2f not below conservative %.2f", easySJF, consExact)
	}
	for _, row := range rows {
		if ci := parseCell(t, row[3]); ci < 0 {
			t.Errorf("negative CI in %v", row)
		}
	}
}
