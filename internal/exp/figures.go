package exp

import (
	"strconv"
	"strings"

	"repro/internal/viz"
)

// BarChart converts the table into a grouped bar chart when it has the
// right shape: the first column labels the groups and at least one other
// column is numeric in every row. Non-numeric columns are skipped; ok is
// false when no numeric column exists (purely textual tables such as
// Table 1).
func (t *Table) BarChart() (viz.BarChart, bool) {
	if len(t.Rows) == 0 || len(t.Headers) < 2 {
		return viz.BarChart{}, false
	}
	// A column is a series if every row parses as a number.
	var seriesCols []int
	for col := 1; col < len(t.Headers); col++ {
		numeric := true
		for _, row := range t.Rows {
			if col >= len(row) {
				numeric = false
				break
			}
			if _, err := strconv.ParseFloat(cleanNumber(row[col]), 64); err != nil {
				numeric = false
				break
			}
		}
		if numeric {
			seriesCols = append(seriesCols, col)
		}
	}
	if len(seriesCols) == 0 {
		return viz.BarChart{}, false
	}

	c := viz.BarChart{Title: t.ID + ": " + t.Title}
	for _, col := range seriesCols {
		c.Series = append(c.Series, t.Headers[col])
	}
	for _, row := range t.Rows {
		c.Labels = append(c.Labels, row[0])
		vals := make([]float64, len(seriesCols))
		for i, col := range seriesCols {
			v, _ := strconv.ParseFloat(cleanNumber(row[col]), 64)
			if v < 0 {
				v = 0 // bar charts render magnitudes; signed views keep their tables
			}
			vals[i] = v
		}
		c.Values = append(c.Values, vals)
	}
	return c, true
}

// cleanNumber strips the decorations AddRow formats produce (percent signs,
// leading plus) so numeric columns still chart.
func cleanNumber(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimPrefix(s, "+")
	return s
}
