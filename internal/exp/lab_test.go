package exp

import (
	"testing"

	"repro/internal/trace"
)

func testParams() Params {
	p := DefaultParams()
	p.Jobs = 400
	return p
}

func TestNewLabValidation(t *testing.T) {
	bad := []Params{
		{Jobs: 0, NormalLoad: 0.5, HighLoad: 0.9},
		{Jobs: 100, NormalLoad: 0, HighLoad: 0.9},
		{Jobs: 100, NormalLoad: 0.9, HighLoad: 0.5},
	}
	for i, p := range bad {
		if _, err := NewLab(p); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if _, err := NewLab(DefaultParams()); err != nil {
		t.Fatal(err)
	}
}

func TestLabProcs(t *testing.T) {
	l, err := NewLab(testParams())
	if err != nil {
		t.Fatal(err)
	}
	ctc, err := l.Procs("CTC")
	if err != nil || ctc != 430 {
		t.Fatalf("CTC procs = %d, %v", ctc, err)
	}
	sdsc, err := l.Procs("SDSC")
	if err != nil || sdsc != 128 {
		t.Fatalf("SDSC procs = %d, %v", sdsc, err)
	}
	if _, err := l.Procs("nope"); err == nil {
		t.Fatal("unknown trace should error")
	}
}

func TestLabWorkloadCachingAndLoads(t *testing.T) {
	l, err := NewLab(testParams())
	if err != nil {
		t.Fatal(err)
	}
	a, err := l.Workload("CTC", HighLoad, "exact")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Workload("CTC", HighLoad, "exact")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("workload not cached")
	}
	normal, err := l.Workload("CTC", NormalLoad, "exact")
	if err != nil {
		t.Fatal(err)
	}
	// High-load trace must be denser than the normal one.
	hi := trace.OfferedLoad(a, 430)
	lo := trace.OfferedLoad(normal, 430)
	if hi <= lo {
		t.Fatalf("high load %.3f not above normal %.3f", hi, lo)
	}
	// Same jobs, different estimates, same runtimes.
	actual, err := l.Workload("CTC", HighLoad, "actual")
	if err != nil {
		t.Fatal(err)
	}
	if len(actual) != len(a) {
		t.Fatal("estimate variant changed job count")
	}
	for i := range a {
		if actual[i].Runtime != a[i].Runtime || actual[i].Arrival != a[i].Arrival {
			t.Fatal("estimate variant changed runtimes/arrivals")
		}
	}
}

func TestLabResultCaching(t *testing.T) {
	l, err := NewLab(testParams())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := l.Result("SDSC", HighLoad, "exact", "easy", "FCFS")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Result("SDSC", HighLoad, "exact", "easy", "FCFS")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("result not cached")
	}
	if len(l.SortedResultKeys()) != 1 {
		t.Fatalf("cache keys = %v", l.SortedResultKeys())
	}
}

func TestLabResultErrors(t *testing.T) {
	l, err := NewLab(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Result("CTC", HighLoad, "exact", "bogus", "FCFS"); err == nil {
		t.Fatal("bad scheduler should error")
	}
	if _, err := l.Result("CTC", HighLoad, "bogus", "easy", "FCFS"); err == nil {
		t.Fatal("bad estimate model should error")
	}
	if _, err := l.Result("bogus", HighLoad, "exact", "easy", "FCFS"); err == nil {
		t.Fatal("bad trace should error")
	}
}
