package exp

import (
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
)

// subsetMeanSlowdown returns the mean slowdown of the jobs in ids within a
// finished result.
func subsetMeanSlowdown(r *core.Result, ids map[int]bool) float64 {
	return metrics.SubsetSummary(r.Outcomes, ids).MeanSlowdown
}

// runRaw runs one configuration outside the Lab cache (for sweeps over
// ad-hoc workloads) and returns the overall mean slowdown.
func runRaw(procs int, jobs []*job.Job, kind, pol string) (float64, error) {
	res, err := core.Run(core.Config{Procs: procs, Scheduler: kind, Policy: pol, Audit: true}, jobs)
	if err != nil {
		return 0, err
	}
	return res.Report.Overall.MeanSlowdown, nil
}
