// Package exp defines the paper's experiments — one per table and figure —
// on top of the core simulation API, and renders their results as aligned
// text tables or CSV. The cmd/experiments binary and the repository's
// benchmarks are thin wrappers around this package.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered result: the rows the paper's table carries, or the
// data series behind one of its figures.
type Table struct {
	// ID is the experiment identifier, e.g. "Figure1".
	ID string
	// Title describes the table.
	Title string
	// Notes carry interpretation hints printed under the table.
	Notes []string
	// Headers and Rows are the grid; all rows must have len(Headers)
	// cells.
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// magnitudes with two decimals, large with one.
func formatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Markdown writes the table as a GitHub-flavoured markdown table with the
// title as a heading and notes as a blockquote — ready to paste into a
// report or issue.
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	row := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | "))
		return err
	}
	if err := row(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}
